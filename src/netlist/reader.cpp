#include "netlist/reader.h"

#include <cctype>
#include <map>
#include <optional>

namespace desyn::nl {

namespace {

struct Token {
  enum Type { Id, Punct, Str, End } type = End;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip();
    if (pos_ >= text_.size()) return {Token::End, ""};
    char c = text_[pos_];
    if (c == '\\') {  // escaped identifier: up to next whitespace
      ++pos_;
      size_t s = pos_;
      while (pos_ < text_.size() && !std::isspace(uc(text_[pos_]))) ++pos_;
      return {Token::Id, std::string(text_.substr(s, pos_ - s))};
    }
    if (c == '"') {
      ++pos_;
      size_t s = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) fail("verilog: unterminated string");
      std::string v(text_.substr(s, pos_ - s));
      ++pos_;
      return {Token::Str, v};
    }
    if (std::isalnum(uc(c)) || c == '_') {
      size_t s = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(uc(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      return {Token::Id, std::string(text_.substr(s, pos_ - s))};
    }
    // Multi-char attribute delimiters (* and *).
    if (c == '(' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
      pos_ += 2;
      return {Token::Punct, "(*"};
    }
    if (c == '*' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ')') {
      pos_ += 2;
      return {Token::Punct, "*)"};
    }
    ++pos_;
    return {Token::Punct, std::string(1, c)};
  }

  Token peek() {
    size_t save = pos_;
    Token t = next();
    pos_ = save;
    return t;
  }

 private:
  static unsigned char uc(char c) { return static_cast<unsigned char>(c); }
  void skip() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

/// Maps "AND3" -> (Kind::And, arity 3); plain names -> fixed arity kinds.
std::pair<cell::Kind, int> parse_type(const std::string& t) {
  static const std::map<std::string, cell::Kind> fixed = [] {
    std::map<std::string, cell::Kind> m;
    for (int i = 0; i <= static_cast<int>(cell::Kind::Ram); ++i) {
      cell::Kind k = static_cast<cell::Kind>(i);
      m[cell::kind_name(k)] = k;
    }
    return m;
  }();
  auto it = fixed.find(t);
  if (it != fixed.end()) return {it->second, 0};
  // Trailing digits: variable-arity kind.
  size_t d = t.size();
  while (d > 0 && std::isdigit(static_cast<unsigned char>(t[d - 1]))) --d;
  if (d == t.size() || d == 0) fail("verilog: unknown cell type '", t, "'");
  auto base = fixed.find(t.substr(0, d));
  if (base == fixed.end()) fail("verilog: unknown cell type '", t, "'");
  return {base->second, std::stoi(t.substr(d))};
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  Netlist parse() {
    expect_id("module");
    Token name = expect(Token::Id);
    Netlist nl(name.text);
    expect_punct("(");
    parse_ports(nl);
    expect_punct(")");
    expect_punct(";");
    std::vector<NetId> pending_outputs;
    for (const std::string& out : output_names_) {
      NetId n = nl.add_net(out);
      DESYN_ASSERT(nl.net(n).name == out);
      nl.mark_output(n);
    }
    for (;;) {
      Token t = lex_.next();
      if (t.type == Token::Id && t.text == "endmodule") break;
      if (t.type == Token::End) fail("verilog: missing endmodule");
      if (t.type == Token::Id && t.text == "wire") {
        Token w = expect(Token::Id);
        NetId n = nl.add_net(w.text);
        DESYN_ASSERT(nl.net(n).name == w.text, "duplicate wire ", w.text);
        expect_punct(";");
        continue;
      }
      if (t.type == Token::Punct && t.text == "(*") {
        parse_attributes();
        continue;
      }
      if (t.type == Token::Id) {
        parse_instance(nl, t.text);
        continue;
      }
      fail("verilog: unexpected token '", t.text, "'");
    }
    (void)pending_outputs;
    return nl;
  }

 private:
  Token expect(Token::Type type) {
    Token t = lex_.next();
    if (t.type != type) fail("verilog: unexpected token '", t.text, "'");
    return t;
  }
  void expect_id(const std::string& s) {
    Token t = lex_.next();
    if (t.type != Token::Id || t.text != s) {
      fail("verilog: expected '", s, "', got '", t.text, "'");
    }
  }
  void expect_punct(const std::string& s) {
    Token t = lex_.next();
    if (t.type != Token::Punct || t.text != s) {
      fail("verilog: expected '", s, "', got '", t.text, "'");
    }
  }

  void parse_ports(Netlist& nl) {
    for (;;) {
      Token t = lex_.peek();
      if (t.type == Token::Punct && t.text == ")") return;
      Token dir = expect(Token::Id);
      Token pname = expect(Token::Id);
      if (dir.text == "input") {
        nl.add_input(pname.text);
      } else if (dir.text == "output") {
        output_names_.push_back(pname.text);
      } else {
        fail("verilog: bad port direction '", dir.text, "'");
      }
      Token sep = lex_.peek();
      if (sep.type == Token::Punct && sep.text == ",") lex_.next();
    }
  }

  void parse_attributes() {
    attrs_.clear();
    payload_.reset();
    for (;;) {
      Token key = lex_.next();
      if (key.type == Token::Punct && key.text == "*)") return;
      if (key.type == Token::Punct && key.text == ",") continue;
      if (key.type != Token::Id) fail("verilog: bad attribute");
      expect_punct("=");
      Token val = lex_.next();
      if (key.text == "payload") {
        if (val.type != Token::Str) fail("verilog: payload must be a string");
        payload_ = std::vector<uint64_t>();
        std::string cur;
        for (char c : val.text + ",") {
          if (c == ',') {
            if (!cur.empty()) payload_->push_back(std::stoull(cur, nullptr, 16));
            cur.clear();
          } else {
            cur += c;
          }
        }
      } else {
        if (val.type != Token::Id) fail("verilog: bad attribute value");
        attrs_[key.text] = std::stoll(val.text);
      }
    }
  }

  void parse_instance(Netlist& nl, const std::string& type) {
    auto [kind, arity] = parse_type(type);
    Token iname = expect(Token::Id);
    expect_punct("(");

    uint16_t p0 = static_cast<uint16_t>(attrs_.count("p0") ? attrs_["p0"] : 0);
    uint16_t p1 = static_cast<uint16_t>(attrs_.count("p1") ? attrs_["p1"] : 0);
    int nin = cell::num_inputs(kind, arity, p0, p1);
    int nout = cell::num_outputs(kind, p0, p1);

    // Pin-name -> index maps for this kind.
    std::map<std::string, int> in_idx, out_idx;
    for (int i = 0; i < nin; ++i) in_idx[cell::input_pin_name(kind, i, p0, p1)] = i;
    for (int o = 0; o < nout; ++o) out_idx[cell::output_pin_name(kind, o, p0, p1)] = o;

    std::vector<NetId> ins(static_cast<size_t>(nin), NetId::invalid());
    std::vector<NetId> outs(static_cast<size_t>(nout), NetId::invalid());
    for (;;) {
      Token t = lex_.next();
      if (t.type == Token::Punct && t.text == ")") break;
      if (t.type == Token::Punct && (t.text == "," || t.text == ".")) continue;
      if (t.type != Token::Id) fail("verilog: bad connection in ", iname.text);
      std::string pin = t.text;
      expect_punct("(");
      Token netname = expect(Token::Id);
      expect_punct(")");
      NetId n = nl.find_net(netname.text);
      if (!n.valid()) fail("verilog: unknown net '", netname.text, "'");
      if (auto it = in_idx.find(pin); it != in_idx.end()) {
        ins[static_cast<size_t>(it->second)] = n;
      } else if (auto ot = out_idx.find(pin); ot != out_idx.end()) {
        outs[static_cast<size_t>(ot->second)] = n;
      } else {
        fail("verilog: unknown pin '", pin, "' on ", type);
      }
    }
    expect_punct(";");
    for (NetId n : ins) {
      if (!n.valid()) fail("verilog: unconnected input on ", iname.text);
    }
    for (NetId n : outs) {
      if (!n.valid()) fail("verilog: unconnected output on ", iname.text);
    }

    cell::V init = cell::V::V0;
    if (auto it = attrs_.find("init"); it != attrs_.end()) {
      init = static_cast<cell::V>(it->second);
    }
    int32_t pl = -1;
    if (payload_) pl = nl.add_payload(std::move(*payload_));
    CellId c = nl.add_cell(kind, iname.text, std::move(ins), std::move(outs),
                           init, pl, p0, p1);
    if (auto it = attrs_.find("group"); it != attrs_.end()) {
      nl.set_group(c, static_cast<int32_t>(it->second));
    }
    attrs_.clear();
    payload_.reset();
  }

  Lexer lex_;
  std::vector<std::string> output_names_;
  std::map<std::string, int64_t> attrs_;
  std::optional<std::vector<uint64_t>> payload_;
};

}  // namespace

Netlist read_verilog(std::string_view text) { return Parser(text).parse(); }

}  // namespace desyn::nl
