#include "netlist/reader.h"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>

namespace desyn::nl {

namespace {

struct Token {
  enum Type { Id, Punct, Str, End } type = End;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip();
    if (pos_ >= text_.size()) return {Token::End, ""};
    char c = text_[pos_];
    if (c == '\\') {  // escaped identifier: up to next whitespace
      ++pos_;
      size_t s = pos_;
      while (pos_ < text_.size() && !std::isspace(uc(text_[pos_]))) ++pos_;
      return {Token::Id, std::string(text_.substr(s, pos_ - s))};
    }
    if (c == '"') {
      ++pos_;
      size_t s = pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) fail("verilog: unterminated string");
      std::string v(text_.substr(s, pos_ - s));
      ++pos_;
      return {Token::Str, v};
    }
    if (std::isalnum(uc(c)) || c == '_') {
      size_t s = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(uc(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      return {Token::Id, std::string(text_.substr(s, pos_ - s))};
    }
    // Multi-char attribute delimiters (* and *).
    if (c == '(' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
      pos_ += 2;
      return {Token::Punct, "(*"};
    }
    if (c == '*' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ')') {
      pos_ += 2;
      return {Token::Punct, "*)"};
    }
    ++pos_;
    return {Token::Punct, std::string(1, c)};
  }

  Token peek() {
    size_t save = pos_;
    Token t = next();
    pos_ = save;
    return t;
  }

  /// 1-based line of the current position (computed lazily: error paths
  /// only, so the hot path pays nothing for location tracking).
  int line() const {
    int l = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++l;
    }
    return l;
  }

 private:
  static unsigned char uc(char c) { return static_cast<unsigned char>(c); }
  void skip() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(uc(text_[pos_]))) ++pos_;
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' &&
          text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, std::string_view source)
      : lex_(text), source_(source) {}

  Netlist parse() {
    expect_id("module");
    Token name = expect(Token::Id);
    Netlist nl(name.text);
    expect_punct("(");
    parse_ports(nl);
    expect_punct(")");
    expect_punct(";");
    for (const std::string& out : output_names_) {
      NetId n = nl.add_net(out);
      if (nl.net(n).name != out) err("duplicate output '", out, "'");
      nl.mark_output(n);
    }
    for (;;) {
      Token t = lex_.next();
      if (t.type == Token::Id && t.text == "endmodule") break;
      if (t.type == Token::End) err("missing endmodule");
      if (t.type == Token::Id && t.text == "wire") {
        Token w = expect(Token::Id);
        NetId n = nl.add_net(w.text);
        if (nl.net(n).name != w.text) err("duplicate wire '", w.text, "'");
        expect_punct(";");
        continue;
      }
      if (t.type == Token::Punct && t.text == "(*") {
        parse_attributes();
        continue;
      }
      if (t.type == Token::Id) {
        parse_instance(nl, t.text);
        continue;
      }
      err("unexpected token '", t.text, "'");
    }
    return nl;
  }

 private:
  template <typename... Args>
  [[noreturn]] void err(const Args&... args) const {
    fail(source_, ":", lex_.line(), ": ", args...);
  }

  /// Checked integer parse: the whole token must be a number in
  /// [`lo`, `hi`]. Reports `what` with file/line on any malformed or
  /// out-of-range input (the job std::stoi used to abort instead of doing).
  int64_t parse_int(std::string_view digits, int64_t lo, int64_t hi,
                    const char* what, int base = 10) const {
    int64_t v = 0;
    auto [p, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), v, base);
    if (ec != std::errc() || p != digits.data() + digits.size()) {
      err("malformed ", what, " '", digits, "'");
    }
    if (v < lo || v > hi) {
      err(what, " ", v, " out of range [", lo, ", ", hi, "]");
    }
    return v;
  }

  uint64_t parse_u64(std::string_view digits, const char* what,
                     int base) const {
    uint64_t v = 0;
    auto [p, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), v, base);
    if (ec != std::errc() || p != digits.data() + digits.size() ||
        digits.empty()) {
      err("malformed ", what, " '", digits, "'");
    }
    return v;
  }

  /// Maps "AND3" -> (Kind::And, arity 3); plain names -> fixed arity kinds.
  std::pair<cell::Kind, int> parse_type(const std::string& t) const {
    static const std::map<std::string, cell::Kind> fixed = [] {
      std::map<std::string, cell::Kind> m;
      for (int i = 0; i <= static_cast<int>(cell::Kind::Ram); ++i) {
        cell::Kind k = static_cast<cell::Kind>(i);
        m[cell::kind_name(k)] = k;
      }
      return m;
    }();
    auto it = fixed.find(t);
    if (it != fixed.end()) return {it->second, 0};
    // Trailing digits: variable-arity kind. The suffix is untrusted input —
    // a checked parse bounded by the library's arity limits, not stoi.
    size_t d = t.size();
    while (d > 0 && std::isdigit(static_cast<unsigned char>(t[d - 1]))) --d;
    if (d == t.size() || d == 0) err("unknown cell type '", t, "'");
    auto base = fixed.find(t.substr(0, d));
    if (base == fixed.end()) err("unknown cell type '", t, "'");
    if (!cell::is_variable_arity(base->second)) {
      err("cell type '", base->first, "' takes no arity suffix: '", t, "'");
    }
    int arity = static_cast<int>(
        parse_int(t.substr(d), 2, cell::kMaxArity, "cell arity"));
    return {base->second, arity};
  }

  Token expect(Token::Type type) {
    Token t = lex_.next();
    if (t.type != type) err("unexpected token '", t.text, "'");
    return t;
  }
  void expect_id(const std::string& s) {
    Token t = lex_.next();
    if (t.type != Token::Id || t.text != s) {
      err("expected '", s, "', got '", t.text, "'");
    }
  }
  void expect_punct(const std::string& s) {
    Token t = lex_.next();
    if (t.type != Token::Punct || t.text != s) {
      err("expected '", s, "', got '", t.text, "'");
    }
  }

  void parse_ports(Netlist& nl) {
    for (;;) {
      Token t = lex_.peek();
      if (t.type == Token::Punct && t.text == ")") return;
      Token dir = expect(Token::Id);
      Token pname = expect(Token::Id);
      if (dir.text == "input") {
        nl.add_input(pname.text);
      } else if (dir.text == "output") {
        output_names_.push_back(pname.text);
      } else {
        err("bad port direction '", dir.text, "'");
      }
      Token sep = lex_.peek();
      if (sep.type == Token::Punct && sep.text == ",") lex_.next();
    }
  }

  void parse_attributes() {
    attrs_.clear();
    payload_.reset();
    for (;;) {
      Token key = lex_.next();
      if (key.type == Token::Punct && key.text == "*)") return;
      if (key.type == Token::Punct && key.text == ",") continue;
      if (key.type != Token::Id) err("bad attribute");
      expect_punct("=");
      Token val = lex_.next();
      if (key.text == "payload") {
        if (val.type != Token::Str) err("payload must be a string");
        payload_ = std::vector<uint64_t>();
        std::string cur;
        for (char c : val.text + ",") {
          if (c == ',') {
            if (!cur.empty()) {
              payload_->push_back(parse_u64(cur, "payload word", 16));
            }
            cur.clear();
          } else {
            cur += c;
          }
        }
      } else {
        if (val.type != Token::Id) err("bad attribute value");
        std::string_view digits = val.text;
        attrs_[key.text] =
            parse_int(digits, std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max(), "attribute value");
      }
    }
  }

  /// Attribute with a checked range (uncheckable garbage would otherwise
  /// flow into uint16 truncations and enum casts downstream).
  int64_t attr_in_range(const char* key, int64_t lo, int64_t hi,
                        int64_t dflt) {
    auto it = attrs_.find(key);
    if (it == attrs_.end()) return dflt;
    if (it->second < lo || it->second > hi) {
      err("attribute ", key, " = ", it->second, " out of range [", lo, ", ",
          hi, "]");
    }
    return it->second;
  }

  void parse_instance(Netlist& nl, const std::string& type) {
    auto [kind, arity] = parse_type(type);
    Token iname = expect(Token::Id);
    expect_punct("(");

    uint16_t p0 = static_cast<uint16_t>(attr_in_range("p0", 0, 24, 0));
    uint16_t p1 = static_cast<uint16_t>(attr_in_range("p1", 0, 64, 0));
    int nin = cell::num_inputs(kind, arity, p0, p1);
    int nout = cell::num_outputs(kind, p0, p1);

    // Pin-name -> index maps for this kind.
    std::map<std::string, int> in_idx, out_idx;
    for (int i = 0; i < nin; ++i) in_idx[cell::input_pin_name(kind, i, p0, p1)] = i;
    for (int o = 0; o < nout; ++o) out_idx[cell::output_pin_name(kind, o, p0, p1)] = o;

    std::vector<NetId> ins(static_cast<size_t>(nin), NetId::invalid());
    std::vector<NetId> outs(static_cast<size_t>(nout), NetId::invalid());
    for (;;) {
      Token t = lex_.next();
      if (t.type == Token::Punct && t.text == ")") break;
      if (t.type == Token::Punct && (t.text == "," || t.text == ".")) continue;
      if (t.type != Token::Id) err("bad connection in ", iname.text);
      std::string pin = t.text;
      expect_punct("(");
      Token netname = expect(Token::Id);
      expect_punct(")");
      NetId n = nl.find_net(netname.text);
      if (!n.valid()) err("unknown net '", netname.text, "'");
      if (auto it = in_idx.find(pin); it != in_idx.end()) {
        ins[static_cast<size_t>(it->second)] = n;
      } else if (auto ot = out_idx.find(pin); ot != out_idx.end()) {
        outs[static_cast<size_t>(ot->second)] = n;
      } else {
        err("unknown pin '", pin, "' on ", type);
      }
    }
    expect_punct(";");
    for (NetId n : ins) {
      if (!n.valid()) err("unconnected input on ", iname.text);
    }
    for (NetId n : outs) {
      if (!n.valid()) err("unconnected output on ", iname.text);
    }

    cell::V init =
        static_cast<cell::V>(attr_in_range("init", 0, 2, 0));
    int32_t pl = -1;
    if (payload_) {
      if (kind != cell::Kind::Rom && kind != cell::Kind::Ram) {
        err("payload on non-memory cell ", iname.text);
      }
      if (payload_->size() != (size_t{1} << p0)) {
        err("payload of ", iname.text, " has ", payload_->size(),
            " words, expected 2^p0 = ", (size_t{1} << p0));
      }
      pl = nl.add_payload(std::move(*payload_));
    } else if (kind == cell::Kind::Rom || kind == cell::Kind::Ram) {
      err("memory cell ", iname.text, " has no payload attribute");
    }
    CellId c = nl.add_cell(kind, iname.text, std::move(ins), std::move(outs),
                           init, pl, p0, p1);
    if (auto it = attrs_.find("group"); it != attrs_.end()) {
      nl.set_group(c, static_cast<int32_t>(attr_in_range(
                          "group", -1, std::numeric_limits<int32_t>::max(), -1)));
    }
    attrs_.clear();
    payload_.reset();
  }

  Lexer lex_;
  std::string source_;
  std::vector<std::string> output_names_;
  std::map<std::string, int64_t> attrs_;
  std::optional<std::vector<uint64_t>> payload_;
};

}  // namespace

Netlist read_verilog(std::string_view text, std::string_view source) {
  return Parser(text, source).parse();
}

}  // namespace desyn::nl
