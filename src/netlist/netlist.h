// Flat gate-level netlist: cells, nets, primary ports.
//
// Storage is arena-style (vectors indexed by 32-bit strong ids); cells are
// tombstoned on removal so ids stay stable across flow transformations
// (FF->latch conversion, clock-tree removal, controller insertion).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cell/cells.h"

namespace desyn::nl {

struct NetTag {};
struct CellTag {};
using NetId = Id<NetTag>;
using CellId = Id<CellTag>;

/// An input pin: (cell, input index).
struct Pin {
  CellId cell;
  uint16_t index = 0;
  friend bool operator==(const Pin& a, const Pin& b) {
    return a.cell == b.cell && a.index == b.index;
  }
};

struct NetData {
  std::string name;
  CellId driver;            ///< invalid for primary inputs / undriven nets
  uint16_t driver_pin = 0;  ///< output index on the driver cell
  std::vector<Pin> fanout;  ///< input pins reading this net
};

struct CellData {
  cell::Kind kind = cell::Kind::Buf;
  std::string name;
  std::vector<NetId> ins;
  std::vector<NetId> outs;
  cell::V init = cell::V::V0;  ///< initial state (storage / state-holding)
  int32_t payload = -1;        ///< ROM/RAM contents (index into payload table)
  uint16_t p0 = 0;             ///< macro parameter: address bits
  uint16_t p1 = 0;             ///< macro parameter: data width
  int32_t group = -1;          ///< flow annotation (latch-bank id, ...)
  bool dead = false;           ///< tombstone set by remove_cell()
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- construction -------------------------------------------------------

  /// Add an internal net. Empty name -> auto-generated; duplicate names are
  /// uniquified by suffixing.
  NetId add_net(std::string name = "");
  /// Add a primary input (a net with no driver, listed in inputs()).
  NetId add_input(std::string name);
  /// Mark an existing net as a primary output.
  void mark_output(NetId net);

  /// Add a cell. `ins`/`outs` nets must already exist; output nets must be
  /// undriven. Fanout/driver links are maintained automatically.
  CellId add_cell(cell::Kind kind, std::string name, std::vector<NetId> ins,
                  std::vector<NetId> outs, cell::V init = cell::V::V0,
                  int32_t payload = -1, uint16_t p0 = 0, uint16_t p1 = 0);

  /// Register ROM/RAM contents; returns the payload index.
  int32_t add_payload(std::vector<uint64_t> words);

  // ---- editing (used by the desynchronization flow) -----------------------

  /// Re-point input pin `index` of `c` from its current net to `to`.
  void rewire_input(CellId c, uint16_t index, NetId to);
  /// Remove a cell: detaches all pins, leaves its output nets undriven and
  /// tombstones the cell. Output nets with remaining fanout must be re-driven
  /// by the caller before the netlist is used again.
  void remove_cell(CellId c);

  void set_group(CellId c, int32_t g) { cell_mut(c).group = g; }
  void set_init(CellId c, cell::V v) { cell_mut(c).init = v; }
  /// Replace the contents of payload slot `idx` (ROM/RAM ECO). The word
  /// count must match: payload shape is structure, contents are data.
  void replace_payload(int32_t idx, std::vector<uint64_t> words) {
    DESYN_ASSERT(idx >= 0 && static_cast<size_t>(idx) < payloads_.size());
    DESYN_ASSERT(payloads_[static_cast<size_t>(idx)].size() == words.size());
    payloads_[static_cast<size_t>(idx)] = std::move(words);
  }
  /// Swap the cell kind for another with identical pin structure (used by
  /// the flow to flip latch polarity when enables move to pulse control).
  void set_kind(CellId c, cell::Kind k) {
    CellData& cd = cell_mut(c);
    DESYN_ASSERT(cell::num_inputs(k, static_cast<int>(cd.ins.size()), cd.p0,
                                  cd.p1) == static_cast<int>(cd.ins.size()));
    DESYN_ASSERT(cell::num_outputs(k, cd.p0, cd.p1) ==
                 static_cast<int>(cd.outs.size()));
    cd.kind = k;
  }

  // ---- access -------------------------------------------------------------

  size_t num_nets() const { return nets_.size(); }
  size_t num_cells() const { return cells_.size(); }
  /// Number of non-tombstoned cells.
  size_t num_live_cells() const { return live_cells_; }

  const NetData& net(NetId id) const {
    DESYN_ASSERT(id.value() < nets_.size());
    return nets_[id.value()];
  }
  const CellData& cell(CellId id) const {
    DESYN_ASSERT(id.value() < cells_.size());
    return cells_[id.value()];
  }
  bool is_live(CellId id) const { return !cell(id).dead; }

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  const std::vector<uint64_t>& payload(int32_t idx) const {
    DESYN_ASSERT(idx >= 0 && static_cast<size_t>(idx) < payloads_.size());
    return payloads_[static_cast<size_t>(idx)];
  }

  /// Name lookup; returns invalid id if absent.
  NetId find_net(std::string_view name) const;
  CellId find_cell(std::string_view name) const;

  /// True if `net` is a primary input.
  bool is_primary_input(NetId net) const;

  /// Iterate live cells: for (CellId c : nl.cells()) ...
  class CellRange;
  CellRange cells() const;

  /// Structural integrity validation (asserts on corruption). Called by
  /// tests and at flow boundaries.
  void check() const;

  /// Arity of a cell (number of input pins) — convenience.
  int arity(CellId c) const { return static_cast<int>(cell(c).ins.size()); }

 private:
  friend class Builder;
  CellData& cell_mut(CellId id) {
    DESYN_ASSERT(id.value() < cells_.size());
    return cells_[id.value()];
  }
  NetData& net_mut(NetId id) {
    DESYN_ASSERT(id.value() < nets_.size());
    return nets_[id.value()];
  }
  std::string unique_net_name(std::string base);
  std::string unique_cell_name(std::string base);

  std::string name_;
  std::vector<NetData> nets_;
  std::vector<CellData> cells_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<std::vector<uint64_t>> payloads_;
  std::unordered_map<std::string, uint32_t> net_by_name_;
  std::unordered_map<std::string, uint32_t> cell_by_name_;
  size_t live_cells_ = 0;
  uint64_t auto_name_counter_ = 0;
};

class Netlist::CellRange {
 public:
  class Iterator {
   public:
    Iterator(const Netlist* nl, uint32_t i) : nl_(nl), i_(i) { skip_dead(); }
    CellId operator*() const { return CellId(i_); }
    Iterator& operator++() {
      ++i_;
      skip_dead();
      return *this;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    void skip_dead() {
      while (i_ < nl_->num_cells() && nl_->cell(CellId(i_)).dead) ++i_;
    }
    const Netlist* nl_;
    uint32_t i_;
  };
  explicit CellRange(const Netlist* nl) : nl_(nl) {}
  Iterator begin() const { return Iterator(nl_, 0); }
  Iterator end() const {
    return Iterator(nl_, static_cast<uint32_t>(nl_->num_cells()));
  }

 private:
  const Netlist* nl_;
};

inline Netlist::CellRange Netlist::cells() const { return CellRange(this); }

}  // namespace desyn::nl
