#include "netlist/netlist.h"

#include <algorithm>

namespace desyn::nl {

std::string Netlist::unique_net_name(std::string base) {
  if (base.empty()) base = cat("n", auto_name_counter_++);
  while (net_by_name_.count(base)) base = cat(base, "_", auto_name_counter_++);
  return base;
}

std::string Netlist::unique_cell_name(std::string base) {
  if (base.empty()) base = cat("u", auto_name_counter_++);
  while (cell_by_name_.count(base)) base = cat(base, "_", auto_name_counter_++);
  return base;
}

NetId Netlist::add_net(std::string name) {
  NetId id(static_cast<uint32_t>(nets_.size()));
  NetData nd;
  nd.name = unique_net_name(std::move(name));
  net_by_name_[nd.name] = id.value();
  nets_.push_back(std::move(nd));
  return id;
}

NetId Netlist::add_input(std::string name) {
  DESYN_ASSERT(!name.empty(), "primary inputs must be named");
  NetId id = add_net(std::move(name));
  inputs_.push_back(id);
  return id;
}

void Netlist::mark_output(NetId net) {
  DESYN_ASSERT(net.valid() && net.value() < nets_.size());
  if (std::find(outputs_.begin(), outputs_.end(), net) == outputs_.end()) {
    outputs_.push_back(net);
  }
}

CellId Netlist::add_cell(cell::Kind kind, std::string name,
                         std::vector<NetId> ins, std::vector<NetId> outs,
                         cell::V init, int32_t payload, uint16_t p0,
                         uint16_t p1) {
  const int want_in = cell::num_inputs(kind, static_cast<int>(ins.size()), p0, p1);
  const int want_out = cell::num_outputs(kind, p0, p1);
  DESYN_ASSERT(static_cast<int>(ins.size()) == want_in, "cell ", name, " (",
               cell::kind_name(kind), "): expected ", want_in, " inputs, got ",
               ins.size());
  DESYN_ASSERT(static_cast<int>(outs.size()) == want_out);

  CellId id(static_cast<uint32_t>(cells_.size()));
  CellData cd;
  cd.kind = kind;
  cd.name = unique_cell_name(std::move(name));
  cd.ins = std::move(ins);
  cd.outs = std::move(outs);
  cd.init = init;
  cd.payload = payload;
  cd.p0 = p0;
  cd.p1 = p1;
  cell_by_name_[cd.name] = id.value();

  for (uint16_t i = 0; i < cd.ins.size(); ++i) {
    net_mut(cd.ins[i]).fanout.push_back(Pin{id, i});
  }
  for (uint16_t o = 0; o < cd.outs.size(); ++o) {
    NetData& nd = net_mut(cd.outs[o]);
    DESYN_ASSERT(!nd.driver.valid(), "net ", nd.name, " already driven");
    DESYN_ASSERT(!is_primary_input(cd.outs[o]), "cannot drive primary input ",
                 nd.name);
    nd.driver = id;
    nd.driver_pin = o;
  }
  cells_.push_back(std::move(cd));
  ++live_cells_;
  return id;
}

int32_t Netlist::add_payload(std::vector<uint64_t> words) {
  payloads_.push_back(std::move(words));
  return static_cast<int32_t>(payloads_.size() - 1);
}

void Netlist::rewire_input(CellId c, uint16_t index, NetId to) {
  CellData& cd = cell_mut(c);
  DESYN_ASSERT(!cd.dead && index < cd.ins.size());
  NetData& from = net_mut(cd.ins[index]);
  auto it = std::find(from.fanout.begin(), from.fanout.end(), Pin{c, index});
  DESYN_ASSERT(it != from.fanout.end());
  from.fanout.erase(it);
  cd.ins[index] = to;
  net_mut(to).fanout.push_back(Pin{c, index});
}

void Netlist::remove_cell(CellId c) {
  CellData& cd = cell_mut(c);
  DESYN_ASSERT(!cd.dead);
  for (uint16_t i = 0; i < cd.ins.size(); ++i) {
    NetData& nd = net_mut(cd.ins[i]);
    auto it = std::find(nd.fanout.begin(), nd.fanout.end(), Pin{c, i});
    DESYN_ASSERT(it != nd.fanout.end());
    nd.fanout.erase(it);
  }
  for (NetId o : cd.outs) {
    net_mut(o).driver = CellId::invalid();
  }
  cd.dead = true;
  --live_cells_;
}

NetId Netlist::find_net(std::string_view name) const {
  auto it = net_by_name_.find(std::string(name));
  return it == net_by_name_.end() ? NetId::invalid() : NetId(it->second);
}

CellId Netlist::find_cell(std::string_view name) const {
  auto it = cell_by_name_.find(std::string(name));
  return it == cell_by_name_.end() ? CellId::invalid() : CellId(it->second);
}

bool Netlist::is_primary_input(NetId net) const {
  return std::find(inputs_.begin(), inputs_.end(), net) != inputs_.end();
}

void Netlist::check() const {
  for (uint32_t ci = 0; ci < cells_.size(); ++ci) {
    const CellData& cd = cells_[ci];
    if (cd.dead) continue;
    const int want_in =
        cell::num_inputs(cd.kind, static_cast<int>(cd.ins.size()), cd.p0, cd.p1);
    DESYN_ASSERT(static_cast<int>(cd.ins.size()) == want_in);
    for (uint16_t i = 0; i < cd.ins.size(); ++i) {
      const NetData& nd = net(cd.ins[i]);
      auto it = std::find(nd.fanout.begin(), nd.fanout.end(), Pin{CellId(ci), i});
      DESYN_ASSERT(it != nd.fanout.end(), "cell ", cd.name,
                   " missing from fanout of net ", nd.name);
    }
    for (uint16_t o = 0; o < cd.outs.size(); ++o) {
      const NetData& nd = net(cd.outs[o]);
      DESYN_ASSERT(nd.driver == CellId(ci) && nd.driver_pin == o,
                   "driver mismatch on net ", nd.name);
    }
  }
  for (uint32_t ni = 0; ni < nets_.size(); ++ni) {
    const NetData& nd = nets_[ni];
    if (nd.driver.valid()) {
      const CellData& cd = cell(nd.driver);
      DESYN_ASSERT(!cd.dead, "net ", nd.name, " driven by dead cell");
      DESYN_ASSERT(nd.driver_pin < cd.outs.size() &&
                   cd.outs[nd.driver_pin] == NetId(ni));
    } else if (!nd.fanout.empty()) {
      DESYN_ASSERT(is_primary_input(NetId(ni)), "undriven net ", nd.name,
                   " has fanout");
    }
    for (const Pin& p : nd.fanout) {
      const CellData& cd = cell(p.cell);
      DESYN_ASSERT(!cd.dead && p.index < cd.ins.size() &&
                   cd.ins[p.index] == NetId(ni));
    }
  }
  for (NetId o : outputs_) {
    DESYN_ASSERT(o.valid() && o.value() < nets_.size());
  }
}

}  // namespace desyn::nl
