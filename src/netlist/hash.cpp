#include "netlist/hash.h"

#include <algorithm>

namespace desyn::nl {

Hash256 content_hash(const Netlist& nl) {
  Sha256 h;
  h.field("desyn-nl-v1");
  h.field(nl.name());

  // Ports, order-independently: declaration order is representation.
  auto port_names = [&](const std::vector<NetId>& ports) {
    std::vector<std::string_view> names;
    names.reserve(ports.size());
    for (NetId n : ports) names.push_back(nl.net(n).name);
    std::sort(names.begin(), names.end());
    h.field_u64(names.size());
    for (std::string_view n : names) h.field(n);
  };
  port_names(nl.inputs());
  port_names(nl.outputs());

  // Live cells in name order (names are unique, so this is canonical).
  std::vector<CellId> order;
  order.reserve(nl.num_live_cells());
  for (CellId c : nl.cells()) order.push_back(c);
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return nl.cell(a).name < nl.cell(b).name;
  });

  h.field_u64(order.size());
  for (CellId c : order) {
    const CellData& cd = nl.cell(c);
    h.field(cd.name);
    h.field_u64(static_cast<uint64_t>(cd.kind));
    h.field_u64(static_cast<uint64_t>(cd.init));
    h.field_u64(cd.p0);
    h.field_u64(cd.p1);
    h.field_i64(cd.group);
    // Connectivity: the net *names* each pin reads/drives. Net ids are
    // representation; names are content.
    h.field_u64(cd.ins.size());
    for (NetId n : cd.ins) h.field(nl.net(n).name);
    h.field_u64(cd.outs.size());
    for (NetId n : cd.outs) h.field(nl.net(n).name);
    // Payload contents, inline (the payload-table index is representation).
    if (cd.payload >= 0) {
      const std::vector<uint64_t>& words = nl.payload(cd.payload);
      h.field_u64(1);
      h.field_u64(words.size());
      for (uint64_t w : words) h.field_u64(w);
    } else {
      h.field_u64(0);
    }
  }
  return h.digest();
}

}  // namespace desyn::nl
