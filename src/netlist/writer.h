// Netlist export: structural Verilog (re-readable by reader.h) and Graphviz
// DOT for inspection/figures.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace desyn::nl {

/// Write structural Verilog. All identifiers are emitted in escaped form, so
/// hierarchical names ("ex.alu.n42") survive a roundtrip. Sequential-cell
/// initial state and macro parameters/contents are carried in `(* ... *)`
/// attributes.
void write_verilog(const Netlist& nl, std::ostream& os);
std::string to_verilog(const Netlist& nl);

/// Graphviz DOT of the cell graph (one node per cell, ports as ovals).
void write_dot(const Netlist& nl, std::ostream& os);

/// The instance type token used in Verilog output (e.g. "AND3", "CELEM2").
std::string verilog_type(const CellData& cd);

}  // namespace desyn::nl
