// Canonical content hash of a netlist — the cache-key primitive of the
// flow engine.
//
// Two netlists get the same hash iff they describe the same circuit in
// the same module: same module name, same primary ports, and the same
// set of (uniquely named) cells with identical kinds, attributes
// (init/p0/p1/group), payload contents, and pin-to-net-name connectivity.
// The hash is *representation independent*: cell/net insertion order, id
// numbering, tombstone positions, payload-table indices and port
// declaration order do not affect it. It is *content sensitive*: renaming
// a net, rewiring a pin, flipping an init value or editing one ROM word
// all change it.
//
// The engine treats hash equality as content equality (256-bit digest;
// see base/sha256.h), so a cached artifact answers for every
// representation of the same canonical content.
#pragma once

#include "base/sha256.h"
#include "netlist/netlist.h"

namespace desyn::nl {

/// Canonical hash of `nl` as described above. Cost is one sort of the
/// live cell names plus one SHA-256 pass — cheap enough to run per flow
/// submission.
Hash256 content_hash(const Netlist& nl);

}  // namespace desyn::nl
