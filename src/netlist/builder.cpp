#include "netlist/builder.h"

#include <algorithm>

namespace desyn::nl {

void Builder::push_scope(std::string_view s) {
  prefix_ += std::string(s);
  prefix_ += '.';
}

void Builder::pop_scope() {
  DESYN_ASSERT(!prefix_.empty());
  size_t pos = prefix_.rfind('.', prefix_.size() - 2);
  prefix_.resize(pos == std::string::npos ? 0 : pos + 1);
}

std::string Builder::scoped(std::string_view name) const {
  return prefix_ + std::string(name);
}

NetId Builder::cell1(cell::Kind k, std::vector<NetId> ins,
                     std::string_view name, cell::V init) {
  // Named constructions name both the net and the cell (nets and cells live
  // in separate namespaces); bank grouping keys off the cell name.
  NetId out = nl_.add_net(name.empty() ? "" : scoped(name));
  nl_.add_cell(k, name.empty() ? "" : scoped(name), std::move(ins), {out},
               init);
  return out;
}

NetId Builder::lo() {
  if (!lo_.valid()) lo_ = cell1(cell::Kind::TieLo, {}, "const0");
  return lo_;
}

NetId Builder::hi() {
  if (!hi_.valid()) hi_ = cell1(cell::Kind::TieHi, {}, "const1");
  return hi_;
}

NetId Builder::unary(cell::Kind k, NetId a, std::string_view name) {
  return cell1(k, {a}, name);
}

NetId Builder::buf(NetId a, std::string_view name) {
  return unary(cell::Kind::Buf, a, name);
}
NetId Builder::inv(NetId a, std::string_view name) {
  return unary(cell::Kind::Inv, a, name);
}
NetId Builder::delay(NetId a, std::string_view name) {
  return unary(cell::Kind::Delay, a, name);
}

NetId Builder::tree(cell::Kind outer, cell::Kind inner,
                    std::span<const NetId> ins, std::string_view name) {
  DESYN_ASSERT(!ins.empty());
  if (ins.size() == 1) {
    // Single input: reduce to buffer/inverter semantics.
    bool inverting = outer == cell::Kind::Nand || outer == cell::Kind::Nor;
    return inverting ? inv(ins[0], name) : buf(ins[0], name);
  }
  std::vector<NetId> level(ins.begin(), ins.end());
  // Reduce with the non-inverting inner kind until one cell remains, then
  // apply the requested outer kind at the root.
  while (static_cast<int>(level.size()) > cell::kMaxArity) {
    std::vector<NetId> next;
    for (size_t i = 0; i < level.size(); i += cell::kMaxArity) {
      size_t n = std::min<size_t>(cell::kMaxArity, level.size() - i);
      if (n == 1) {
        next.push_back(level[i]);
      } else {
        next.push_back(cell1(
            inner, std::vector<NetId>(level.begin() + static_cast<long>(i),
                                      level.begin() + static_cast<long>(i + n)),
            ""));
      }
    }
    level = std::move(next);
  }
  return cell1(outer, std::move(level), name);
}

NetId Builder::and_(std::span<const NetId> ins, std::string_view name) {
  return tree(cell::Kind::And, cell::Kind::And, ins, name);
}
NetId Builder::or_(std::span<const NetId> ins, std::string_view name) {
  return tree(cell::Kind::Or, cell::Kind::Or, ins, name);
}
NetId Builder::nand_(std::span<const NetId> ins, std::string_view name) {
  return tree(cell::Kind::Nand, cell::Kind::And, ins, name);
}
NetId Builder::nor_(std::span<const NetId> ins, std::string_view name) {
  return tree(cell::Kind::Nor, cell::Kind::Or, ins, name);
}

NetId Builder::xor_(NetId a, NetId b, std::string_view name) {
  return cell1(cell::Kind::Xor, {a, b}, name);
}
NetId Builder::xnor_(NetId a, NetId b, std::string_view name) {
  return cell1(cell::Kind::Xnor, {a, b}, name);
}
NetId Builder::mux2(NetId a, NetId b, NetId s, std::string_view name) {
  return cell1(cell::Kind::Mux2, {a, b, s}, name);
}
NetId Builder::aoi21(NetId a, NetId b, NetId c, std::string_view name) {
  return cell1(cell::Kind::Aoi21, {a, b, c}, name);
}
NetId Builder::oai21(NetId a, NetId b, NetId c, std::string_view name) {
  return cell1(cell::Kind::Oai21, {a, b, c}, name);
}

NetId Builder::celem(std::span<const NetId> ins, cell::V init,
                     std::string_view name) {
  DESYN_ASSERT(ins.size() >= 2 && static_cast<int>(ins.size()) <= cell::kMaxArity,
               "C-element arity out of range");
  return cell1(cell::Kind::CElem, std::vector<NetId>(ins.begin(), ins.end()),
               name, init);
}

NetId Builder::gc(NetId set, NetId reset, cell::V init, std::string_view name) {
  return cell1(cell::Kind::Gc, {set, reset}, name, init);
}

NetId Builder::latch(NetId d, NetId en, cell::V init, std::string_view name) {
  return cell1(cell::Kind::Latch, {d, en}, name, init);
}
NetId Builder::latchn(NetId d, NetId en, cell::V init, std::string_view name) {
  return cell1(cell::Kind::LatchN, {d, en}, name, init);
}
NetId Builder::dff(NetId d, NetId ck, cell::V init, std::string_view name) {
  return cell1(cell::Kind::Dff, {d, ck}, name, init);
}

std::vector<NetId> Builder::rom(std::span<const NetId> addr, int width,
                                std::vector<uint64_t> contents,
                                std::string_view name) {
  DESYN_ASSERT(width >= 1 && width <= 64);
  DESYN_ASSERT(contents.size() <= (1ull << addr.size()));
  contents.resize(1ull << addr.size(), 0);
  int32_t pl = nl_.add_payload(std::move(contents));
  std::vector<NetId> outs;
  for (int i = 0; i < width; ++i) {
    outs.push_back(nl_.add_net(scoped(cat(name, "_d", i))));
  }
  nl_.add_cell(cell::Kind::Rom, scoped(name),
               std::vector<NetId>(addr.begin(), addr.end()), outs,
               cell::V::V0, pl, static_cast<uint16_t>(addr.size()),
               static_cast<uint16_t>(width));
  return outs;
}

std::vector<NetId> Builder::ram(NetId ck, NetId we,
                                std::span<const NetId> waddr,
                                std::span<const NetId> wdata,
                                std::span<const NetId> raddr, int width,
                                std::string_view name,
                                std::vector<uint64_t> init_contents) {
  DESYN_ASSERT(width >= 1 && width <= 64);
  DESYN_ASSERT(waddr.size() == raddr.size());
  DESYN_ASSERT(static_cast<int>(wdata.size()) == width);
  init_contents.resize(1ull << waddr.size(), 0);
  int32_t pl = nl_.add_payload(std::move(init_contents));
  std::vector<NetId> ins;
  ins.push_back(ck);
  ins.push_back(we);
  ins.insert(ins.end(), waddr.begin(), waddr.end());
  ins.insert(ins.end(), wdata.begin(), wdata.end());
  ins.insert(ins.end(), raddr.begin(), raddr.end());
  std::vector<NetId> outs;
  for (int i = 0; i < width; ++i) {
    outs.push_back(nl_.add_net(scoped(cat(name, "_rd", i))));
  }
  nl_.add_cell(cell::Kind::Ram, scoped(name), std::move(ins), outs,
               cell::V::V0, pl, static_cast<uint16_t>(waddr.size()),
               static_cast<uint16_t>(width));
  return outs;
}

}  // namespace desyn::nl
