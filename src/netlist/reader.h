// Reader for the structural-Verilog subset produced by write_verilog().
#pragma once

#include <string_view>

#include "netlist/netlist.h"

namespace desyn::nl {

/// Parse a netlist previously written with write_verilog(). Throws
/// desyn::Error on any syntax or semantic problem.
Netlist read_verilog(std::string_view text);

}  // namespace desyn::nl
