// Reader for the structural-Verilog subset produced by write_verilog().
#pragma once

#include <string_view>

#include "netlist/netlist.h"

namespace desyn::nl {

/// Parse a netlist previously written with write_verilog(). Throws
/// desyn::Error on any syntax or semantic problem; messages are prefixed
/// "<source>:<line>:" so CLI users see where a corrupt file went wrong.
/// All numeric fields (cell-type arity suffixes, attribute values, payload
/// words) go through checked parses — a malformed or out-of-range number is
/// a reported error, never an uncaught std::invalid_argument/out_of_range.
Netlist read_verilog(std::string_view text,
                     std::string_view source = "verilog");

}  // namespace desyn::nl
