// Ergonomic gate-level construction API on top of Netlist.
//
// All methods return the freshly created output net. Wide AND/OR/NAND/NOR
// requests are decomposed into balanced trees of cells within the library's
// maximum arity. Name scoping (push_scope/pop_scope) gives hierarchical
// names ("ex.alu.n42") in the flat netlist.
#pragma once

#include <initializer_list>
#include <span>

#include "netlist/netlist.h"

namespace desyn::nl {

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  Netlist& netlist() { return nl_; }

  // ---- naming scopes ------------------------------------------------------
  void push_scope(std::string_view s);
  void pop_scope();
  /// RAII scope helper.
  class Scoped {
   public:
    Scoped(Builder& b, std::string_view s) : b_(b) { b_.push_scope(s); }
    ~Scoped() { b_.pop_scope(); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    Builder& b_;
  };
  /// Scoped name: prefix + given name.
  std::string scoped(std::string_view name) const;

  // ---- ports --------------------------------------------------------------
  NetId input(std::string_view name) { return nl_.add_input(scoped(name)); }
  void output(NetId net) { nl_.mark_output(net); }
  NetId net(std::string_view name = "") {
    return nl_.add_net(name.empty() ? "" : scoped(name));
  }

  // ---- combinational cells ------------------------------------------------
  NetId lo();
  NetId hi();
  NetId buf(NetId a, std::string_view name = "");
  NetId inv(NetId a, std::string_view name = "");
  NetId delay(NetId a, std::string_view name = "");
  NetId and_(std::span<const NetId> ins, std::string_view name = "");
  NetId or_(std::span<const NetId> ins, std::string_view name = "");
  NetId nand_(std::span<const NetId> ins, std::string_view name = "");
  NetId nor_(std::span<const NetId> ins, std::string_view name = "");
  NetId and_(std::initializer_list<NetId> ins, std::string_view name = "") {
    return and_(std::span(ins.begin(), ins.size()), name);
  }
  NetId or_(std::initializer_list<NetId> ins, std::string_view name = "") {
    return or_(std::span(ins.begin(), ins.size()), name);
  }
  NetId nand_(std::initializer_list<NetId> ins, std::string_view name = "") {
    return nand_(std::span(ins.begin(), ins.size()), name);
  }
  NetId nor_(std::initializer_list<NetId> ins, std::string_view name = "") {
    return nor_(std::span(ins.begin(), ins.size()), name);
  }
  NetId xor_(NetId a, NetId b, std::string_view name = "");
  NetId xnor_(NetId a, NetId b, std::string_view name = "");
  /// y = s ? b : a
  NetId mux2(NetId a, NetId b, NetId s, std::string_view name = "");
  NetId aoi21(NetId a, NetId b, NetId c, std::string_view name = "");
  NetId oai21(NetId a, NetId b, NetId c, std::string_view name = "");

  // ---- asynchronous-control cells ----------------------------------------
  NetId celem(std::span<const NetId> ins, cell::V init,
              std::string_view name = "");
  NetId celem(std::initializer_list<NetId> ins, cell::V init,
              std::string_view name = "") {
    return celem(std::span(ins.begin(), ins.size()), init, name);
  }
  NetId gc(NetId set, NetId reset, cell::V init, std::string_view name = "");

  // ---- storage -------------------------------------------------------------
  NetId latch(NetId d, NetId en, cell::V init, std::string_view name = "");
  NetId latchn(NetId d, NetId en, cell::V init, std::string_view name = "");
  NetId dff(NetId d, NetId ck, cell::V init, std::string_view name = "");

  // ---- memory macros -------------------------------------------------------
  /// Combinational ROM: 2^addr_bits words of `width` bits (payload-backed).
  std::vector<NetId> rom(std::span<const NetId> addr, int width,
                         std::vector<uint64_t> contents,
                         std::string_view name);
  /// RAM with async read and sync write (write on CK rising edge when WE=1).
  std::vector<NetId> ram(NetId ck, NetId we, std::span<const NetId> waddr,
                         std::span<const NetId> wdata,
                         std::span<const NetId> raddr, int width,
                         std::string_view name,
                         std::vector<uint64_t> init_contents = {});

 private:
  NetId unary(cell::Kind k, NetId a, std::string_view name);
  NetId tree(cell::Kind outer, cell::Kind inner, std::span<const NetId> ins,
             std::string_view name);
  NetId cell1(cell::Kind k, std::vector<NetId> ins, std::string_view name,
              cell::V init = cell::V::V0);

  Netlist& nl_;
  std::string prefix_;
  NetId lo_ = NetId::invalid();
  NetId hi_ = NetId::invalid();
};

}  // namespace desyn::nl
