// Structural queries: topological order, fanin cones, inventory statistics.
#pragma once

#include <array>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::nl {

/// Topological order of all live cells such that every cell evaluated
/// combinationally (gates, ROM, and the RAM read path) appears after the
/// drivers of its inputs. Latch/FF/CElem/Gc outputs are cut points (their
/// value at any instant is state, initialized from `init` and updated
/// event-wise by the simulator); those cells are appended at the end of the
/// order. Throws desyn::Error if the remaining graph contains a cycle,
/// i.e. a combinational loop not broken by any state element.
std::vector<CellId> topo_order(const Netlist& nl);

/// All cells in the combinational fanin cone of `net`, stopping at storage
/// outputs and primary inputs. Includes the RAM/ROM read path.
std::vector<CellId> combinational_fanin(const Netlist& nl, NetId net);

/// Inventory of a netlist: per-kind counts and area.
struct Stats {
  std::array<size_t, 21> count_by_kind{};
  size_t cells = 0;
  size_t nets = 0;
  size_t flipflops = 0;
  size_t latches = 0;
  size_t celems = 0;  ///< CElem + Gc (controller state)
  size_t delay_cells = 0;
  Um2 area = 0;

  size_t count(cell::Kind k) const {
    return count_by_kind[static_cast<size_t>(k)];
  }
  std::string to_string() const;
};

Stats stats(const Netlist& nl, const cell::Tech& tech);

}  // namespace desyn::nl
