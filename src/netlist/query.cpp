#include "netlist/query.h"

namespace desyn::nl {

namespace {

/// A cell whose output(s) are state: evaluation order does not depend on its
/// input drivers.
bool is_cut(cell::Kind k) {
  if (k == cell::Kind::Ram) return false;  // async read path is combinational
  return cell::is_storage(k) || cell::is_state_holding(k);
}

}  // namespace

std::vector<CellId> topo_order(const Netlist& nl) {
  // Kahn's algorithm over the "evaluated" cells (non-cut). In-degree counts
  // input nets driven by other evaluated cells.
  std::vector<uint32_t> indeg(nl.num_cells(), 0);
  // Worklist: a plain vector with a consuming head index (a deque's block
  // allocations showed up hot in simulator construction).
  std::vector<CellId> ready;
  size_t ready_head = 0;
  size_t eval_cells = 0;

  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    if (is_cut(cd.kind)) continue;
    ++eval_cells;
    uint32_t d = 0;
    for (NetId in : cd.ins) {
      CellId drv = nl.net(in).driver;
      if (drv.valid() && !is_cut(nl.cell(drv).kind)) ++d;
    }
    indeg[c.value()] = d;
    if (d == 0) ready.push_back(c);
  }

  std::vector<CellId> order;
  order.reserve(nl.num_live_cells());
  while (ready_head < ready.size()) {
    CellId c = ready[ready_head++];
    order.push_back(c);
    for (NetId out : nl.cell(c).outs) {
      for (const Pin& p : nl.net(out).fanout) {
        if (is_cut(nl.cell(p.cell).kind)) continue;
        if (--indeg[p.cell.value()] == 0) ready.push_back(p.cell);
      }
    }
  }
  if (order.size() != eval_cells) {
    fail("netlist '", nl.name(), "' has a combinational cycle (", eval_cells,
         " combinational cells, only ", order.size(), " orderable)");
  }
  for (CellId c : nl.cells()) {
    if (is_cut(nl.cell(c).kind)) order.push_back(c);
  }
  return order;
}

std::vector<CellId> combinational_fanin(const Netlist& nl, NetId net) {
  std::vector<CellId> cone;
  std::vector<bool> seen(nl.num_cells(), false);
  std::vector<NetId> stack{net};
  while (!stack.empty()) {
    NetId n = stack.back();
    stack.pop_back();
    CellId drv = nl.net(n).driver;
    if (!drv.valid() || seen[drv.value()]) continue;
    const CellData& cd = nl.cell(drv);
    if (is_cut(cd.kind)) continue;
    seen[drv.value()] = true;
    cone.push_back(drv);
    for (NetId in : cd.ins) stack.push_back(in);
  }
  return cone;
}

Stats stats(const Netlist& nl, const cell::Tech& tech) {
  Stats s;
  s.nets = nl.num_nets();
  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    ++s.cells;
    ++s.count_by_kind[static_cast<size_t>(cd.kind)];
    s.area += tech.area(cd.kind, static_cast<int>(cd.ins.size()), cd.p0, cd.p1);
    switch (cd.kind) {
      case cell::Kind::Dff: ++s.flipflops; break;
      case cell::Kind::Latch:
      case cell::Kind::LatchN: ++s.latches; break;
      case cell::Kind::CElem:
      case cell::Kind::Gc: ++s.celems; break;
      case cell::Kind::Delay: ++s.delay_cells; break;
      default: break;
    }
  }
  return s;
}

std::string Stats::to_string() const {
  std::ostringstream os;
  os << "cells=" << cells << " nets=" << nets << " area=" << area << "um2";
  os << " [";
  bool first = true;
  for (size_t i = 0; i < count_by_kind.size(); ++i) {
    if (count_by_kind[i] == 0) continue;
    if (!first) os << " ";
    first = false;
    os << cell::kind_name(static_cast<cell::Kind>(i)) << ":" << count_by_kind[i];
  }
  os << "]";
  return os.str();
}

}  // namespace desyn::nl
