#include "netlist/writer.h"

#include <charconv>
#include <ostream>
#include <sstream>

namespace desyn::nl {

namespace {

// The writer is on the flow engine's per-result path (every cold run and
// every ECO re-run materializes fresh Verilog), so it builds into a plain
// string with append — no per-cell stream construction, no per-token
// ostream sentry — and hands the buffer to the stream in one write.
void app_esc(std::string& out, const std::string& name) {
  out += '\\';
  out += name;
  out += ' ';
}

void app_u64(std::string& out, uint64_t v, int base = 10) {
  char b[24];
  char* end = std::to_chars(b, b + sizeof b, v, base).ptr;
  out.append(b, end);
}

void app_i64(std::string& out, int64_t v) {
  char b[24];
  char* end = std::to_chars(b, b + sizeof b, v).ptr;
  out.append(b, end);
}

void app_type(std::string& out, const CellData& cd) {
  out += cell::kind_name(cd.kind);
  if (cell::is_variable_arity(cd.kind)) app_u64(out, cd.ins.size());
}

void append_verilog(const Netlist& nl, std::string& out) {
  out.reserve(out.size() + 24 * nl.num_nets() + 112 * nl.num_live_cells());
  out += "// structural netlist written by desyn\n";
  out += "module ";
  app_esc(out, nl.name());
  out += "(\n";
  bool first = true;
  for (NetId in : nl.inputs()) {
    out += first ? "  " : ",\n  ";
    out += "input ";
    app_esc(out, nl.net(in).name);
    first = false;
  }
  for (NetId o : nl.outputs()) {
    out += first ? "  " : ",\n  ";
    out += "output ";
    app_esc(out, nl.net(o).name);
    first = false;
  }
  out += "\n);\n";

  // Wire declarations for all non-port nets.
  std::vector<bool> is_output(nl.num_nets(), false);
  for (NetId o : nl.outputs()) is_output[o.value()] = true;
  for (uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    NetId id(ni);
    if (nl.is_primary_input(id) || is_output[ni]) continue;
    out += "  wire ";
    app_esc(out, nl.net(id).name);
    out += ";\n";
  }

  std::string attrs;
  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    // Attributes: initial value, macro parameters, contents.
    attrs.clear();
    auto sep = [&] {
      if (!attrs.empty()) attrs += ", ";
    };
    if (cd.init != cell::V::V0 &&
        (cell::is_storage(cd.kind) || cell::is_state_holding(cd.kind))) {
      attrs += "init = ";
      app_i64(attrs, static_cast<int>(cd.init));
    }
    if (cd.kind == cell::Kind::Rom || cd.kind == cell::Kind::Ram) {
      sep();
      attrs += "p0 = ";
      app_u64(attrs, cd.p0);
      attrs += ", p1 = ";
      app_u64(attrs, cd.p1);
      if (cd.payload >= 0) {
        attrs += ", payload = \"";
        const auto& words = nl.payload(cd.payload);
        for (size_t i = 0; i < words.size(); ++i) {
          if (i) attrs += ',';
          app_u64(attrs, words[i], 16);
        }
        attrs += '"';
      }
    }
    if (cd.group >= 0) {
      sep();
      attrs += "group = ";
      app_i64(attrs, cd.group);
    }
    if (!attrs.empty()) {
      out += "  (* ";
      out += attrs;
      out += " *)\n";
    }

    out += "  ";
    app_type(out, cd);
    out += ' ';
    app_esc(out, cd.name);
    out += '(';
    bool fp = true;
    for (size_t i = 0; i < cd.ins.size(); ++i) {
      out += fp ? " ." : ", .";
      out += cell::input_pin_name(cd.kind, static_cast<int>(i), cd.p0, cd.p1);
      out += '(';
      app_esc(out, nl.net(cd.ins[i]).name);
      out += ')';
      fp = false;
    }
    for (size_t o = 0; o < cd.outs.size(); ++o) {
      out += fp ? " ." : ", .";
      out += cell::output_pin_name(cd.kind, static_cast<int>(o), cd.p0, cd.p1);
      out += '(';
      app_esc(out, nl.net(cd.outs[o]).name);
      out += ')';
      fp = false;
    }
    out += " );\n";
  }
  out += "endmodule\n";
}

}  // namespace

std::string verilog_type(const CellData& cd) {
  std::string t;
  app_type(t, cd);
  return t;
}

void write_verilog(const Netlist& nl, std::ostream& os) {
  std::string buf;
  append_verilog(nl, buf);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

std::string to_verilog(const Netlist& nl) {
  std::string buf;
  append_verilog(nl, buf);
  return buf;
}

void write_dot(const Netlist& nl, std::ostream& os) {
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (NetId in : nl.inputs()) {
    os << "  \"pi_" << nl.net(in).name << "\" [shape=oval,label=\""
       << nl.net(in).name << "\"];\n";
  }
  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    const char* shape = cell::is_storage(cd.kind) ? "box3d"
                        : cell::is_state_holding(cd.kind) ? "diamond"
                                                          : "box";
    os << "  \"c" << c.value() << "\" [shape=" << shape << ",label=\""
       << verilog_type(cd) << "\\n" << cd.name << "\"];\n";
  }
  // Edges: driver -> each fanout cell.
  for (uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetData& nd = nl.net(NetId(ni));
    std::string src = nd.driver.valid() ? cat("c", nd.driver.value())
                                        : cat("pi_", nd.name);
    if (!nd.driver.valid() && !nl.is_primary_input(NetId(ni))) continue;
    for (const Pin& p : nd.fanout) {
      os << "  \"" << src << "\" -> \"c" << p.cell.value() << "\";\n";
    }
  }
  os << "}\n";
}

}  // namespace desyn::nl
