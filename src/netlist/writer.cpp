#include "netlist/writer.h"

#include <ostream>
#include <sstream>

namespace desyn::nl {

namespace {

std::string esc(const std::string& name) { return cat("\\", name, " "); }

}  // namespace

std::string verilog_type(const CellData& cd) {
  std::string t = cell::kind_name(cd.kind);
  if (cell::is_variable_arity(cd.kind)) t += cat(cd.ins.size());
  return t;
}

void write_verilog(const Netlist& nl, std::ostream& os) {
  os << "// structural netlist written by desyn\n";
  os << "module " << esc(nl.name()) << "(\n";
  bool first = true;
  for (NetId in : nl.inputs()) {
    os << (first ? "  " : ",\n  ") << "input " << esc(nl.net(in).name);
    first = false;
  }
  for (NetId out : nl.outputs()) {
    os << (first ? "  " : ",\n  ") << "output " << esc(nl.net(out).name);
    first = false;
  }
  os << "\n);\n";

  // Wire declarations for all non-port nets.
  for (uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    NetId id(ni);
    if (nl.is_primary_input(id)) continue;
    bool is_out = false;
    for (NetId o : nl.outputs()) {
      if (o == id) { is_out = true; break; }
    }
    if (is_out) continue;
    os << "  wire " << esc(nl.net(id).name) << ";\n";
  }

  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    // Attributes: initial value, macro parameters, contents.
    std::ostringstream attrs;
    bool have = false;
    auto add = [&](const std::string& s) {
      attrs << (have ? ", " : "") << s;
      have = true;
    };
    if (cd.init != cell::V::V0 &&
        (cell::is_storage(cd.kind) || cell::is_state_holding(cd.kind))) {
      add(cat("init = ", static_cast<int>(cd.init)));
    }
    if (cd.kind == cell::Kind::Rom || cd.kind == cell::Kind::Ram) {
      add(cat("p0 = ", cd.p0));
      add(cat("p1 = ", cd.p1));
      if (cd.payload >= 0) {
        std::ostringstream pl;
        pl << "payload = \"";
        const auto& words = nl.payload(cd.payload);
        for (size_t i = 0; i < words.size(); ++i) {
          if (i) pl << ",";
          pl << std::hex << words[i] << std::dec;
        }
        pl << "\"";
        add(pl.str());
      }
    }
    if (cd.group >= 0) add(cat("group = ", cd.group));
    if (have) os << "  (* " << attrs.str() << " *)\n";

    os << "  " << verilog_type(cd) << " " << esc(cd.name) << "(";
    bool fp = true;
    for (size_t i = 0; i < cd.ins.size(); ++i) {
      os << (fp ? " " : ", ") << "."
         << cell::input_pin_name(cd.kind, static_cast<int>(i), cd.p0, cd.p1)
         << "(" << esc(nl.net(cd.ins[i]).name) << ")";
      fp = false;
    }
    for (size_t o = 0; o < cd.outs.size(); ++o) {
      os << (fp ? " " : ", ") << "."
         << cell::output_pin_name(cd.kind, static_cast<int>(o), cd.p0, cd.p1)
         << "(" << esc(nl.net(cd.outs[o]).name) << ")";
      fp = false;
    }
    os << " );\n";
  }
  os << "endmodule\n";
}

std::string to_verilog(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(nl, os);
  return os.str();
}

void write_dot(const Netlist& nl, std::ostream& os) {
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (NetId in : nl.inputs()) {
    os << "  \"pi_" << nl.net(in).name << "\" [shape=oval,label=\""
       << nl.net(in).name << "\"];\n";
  }
  for (CellId c : nl.cells()) {
    const CellData& cd = nl.cell(c);
    const char* shape = cell::is_storage(cd.kind) ? "box3d"
                        : cell::is_state_holding(cd.kind) ? "diamond"
                                                          : "box";
    os << "  \"c" << c.value() << "\" [shape=" << shape << ",label=\""
       << verilog_type(cd) << "\\n" << cd.name << "\"];\n";
  }
  // Edges: driver -> each fanout cell.
  for (uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetData& nd = nl.net(NetId(ni));
    std::string src = nd.driver.valid() ? cat("c", nd.driver.value())
                                        : cat("pi_", nd.name);
    if (!nd.driver.valid() && !nl.is_primary_input(NetId(ni))) continue;
    for (const Pin& p : nd.fanout) {
      os << "  \"" << src << "\" -> \"c" << p.cell.value() << "\";\n";
    }
  }
  os << "}\n";
}

}  // namespace desyn::nl
