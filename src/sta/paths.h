// Human-readable timing reports.
#pragma once

#include <string>

#include "sta/sta.h"

namespace desyn::sta {

/// One line per net on the path: "  @ 1234ps  net_name  (CELLKIND cell)".
std::string format_path(const nl::Netlist& nl, const std::vector<Ps>& arr,
                        const std::vector<nl::NetId>& path);

/// Summary of a PeriodReport ("min period 4400ps, launch ..., capture ...").
std::string format_period_report(const nl::Netlist& nl,
                                 const Sta::PeriodReport& rep);

}  // namespace desyn::sta
