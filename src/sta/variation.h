// Sampled path delays on top of cell::VariationModel.
//
// STA reports one worst-case number per combinational path; a Monte-Carlo
// sweep needs a *realization* of that path per sample. A path of nominal
// delay D through a library with delay quantum `unit` is modeled as
// ceil(D / unit) equal gate stages with independent per-stage factors:
// long paths then show the 1/sqrt(depth) relative-variance cancellation
// real logic cones have, where a single path-level draw would overstate
// their variation by exactly that factor.
#pragma once

#include "cell/variation.h"

namespace desyn::sta {

/// Sampled realization of a path with nominal worst-case delay `nominal`.
/// `stream` identifies the path (sub-streams are derived per stage);
/// deterministic in (model.seed, stream, sample). Nominal delays <= 0 pass
/// through unchanged.
Ps sample_path_delay(Ps nominal, Ps unit, const cell::VariationModel& model,
                     uint64_t stream, size_t sample);

}  // namespace desyn::sta
