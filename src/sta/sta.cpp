#include "sta/sta.h"

#include <algorithm>

#include "netlist/query.h"

namespace desyn::sta {

using cell::Kind;
using nl::CellId;
using nl::NetId;

namespace {

/// Cells STA propagates through combinationally.
bool propagates(Kind k) {
  return cell::is_combinational(k) || k == Kind::Ram;
}

/// True if input pin `i` of a cell participates in combinational
/// propagation (for RAM only the read-address pins do).
bool pin_propagates(const nl::CellData& cd, size_t i) {
  if (cd.kind != Kind::Ram) return true;
  size_t ra_begin = 2 + cd.p0 + cd.p1;
  return i >= ra_begin;
}

/// True if input pin `i` is a *data* capture endpoint with a setup
/// requirement (D of latch/FF; WE/WA/WD of RAM).
bool pin_is_data_endpoint(const nl::CellData& cd, size_t i) {
  switch (cd.kind) {
    case Kind::Latch:
    case Kind::LatchN:
    case Kind::Dff:
      return i == 0;  // D; pin 1 is EN/CK
    case Kind::Ram:
      return i >= 1 && i < size_t{2} + cd.p0 + cd.p1;  // WE, WA, WD
    default:
      return false;
  }
}

}  // namespace

Sta::Sta(const nl::Netlist& nl, const cell::Tech& tech)
    : nl_(nl), tech_(tech), topo_(nl::topo_order(nl)) {
  topo_pos_.assign(nl.num_cells(), UINT32_MAX);
  for (size_t i = 0; i < topo_.size(); ++i) {
    topo_pos_[topo_[i].value()] = static_cast<uint32_t>(i);
  }
}

bool Sta::data_endpoint_pin(const nl::CellData& cd, size_t i) {
  return pin_is_data_endpoint(cd, i);
}

Ps Sta::cell_delay(nl::CellId c) const {
  const nl::CellData& cd = nl_.cell(c);
  size_t fanout = 0;
  for (NetId o : cd.outs) fanout = std::max(fanout, nl_.net(o).fanout.size());
  return tech_.delay(cd.kind, static_cast<int>(cd.ins.size()),
                     static_cast<int>(fanout));
}

std::vector<Ps> Sta::arrivals(std::span<const Source> sources) const {
  std::vector<Ps> arr(nl_.num_nets(), kUnreached);
  for (const Source& s : sources) {
    DESYN_ASSERT(s.net.valid() && s.net.value() < nl_.num_nets());
    arr[s.net.value()] = std::max(arr[s.net.value()], s.at);
  }
  for (CellId c : topo_) {
    const nl::CellData& cd = nl_.cell(c);
    if (!propagates(cd.kind)) continue;
    Ps worst = kUnreached;
    for (size_t i = 0; i < cd.ins.size(); ++i) {
      if (!pin_propagates(cd, i)) continue;
      worst = std::max(worst, arr[cd.ins[i].value()]);
    }
    if (worst == kUnreached) continue;  // unreached (incl. tie cells)
    Ps out = worst + cell_delay(c);
    for (NetId o : cd.outs) {
      arr[o.value()] = std::max(arr[o.value()], out);
    }
  }
  return arr;
}

void Sta::SparseScratch::reset() {
  for (nl::NetId n : touched) arr[n.value()] = kUnreached;
  touched.clear();
}

void Sta::arrivals_sparse(std::span<const Source> sources,
                          SparseScratch& s) const {
  DESYN_ASSERT(s.touched.empty(), "call scratch.reset() between propagations");
  s.arr.resize(nl_.num_nets(), kUnreached);
  s.mark.resize(nl_.num_cells(), 0);
  ++s.epoch;
  s.heap.clear();
  auto cmp = [](const std::pair<uint32_t, uint32_t>& a,
                const std::pair<uint32_t, uint32_t>& b) { return a > b; };
  auto touch = [&](NetId n, Ps at) {
    Ps& slot = s.arr[n.value()];
    if (slot == kUnreached) s.touched.push_back(n);
    if (at <= slot) return;
    slot = at;
    // Wake every propagating consumer of the net. Each cell is processed
    // once (epoch mark on pop); duplicate heap entries are skipped then.
    for (const nl::Pin& p : nl_.net(n).fanout) {
      const nl::CellData& cd = nl_.cell(p.cell);
      if (!propagates(cd.kind) || !pin_propagates(cd, p.index)) continue;
      uint32_t pos = topo_pos_[p.cell.value()];
      if (pos == UINT32_MAX || s.mark[p.cell.value()] == s.epoch) continue;
      s.heap.push_back({pos, p.cell.value()});
      std::push_heap(s.heap.begin(), s.heap.end(), cmp);
    }
  };
  for (const Source& src : sources) {
    DESYN_ASSERT(src.net.valid() && src.net.value() < nl_.num_nets());
    touch(src.net, src.at);
  }
  // Ascending topo position guarantees every reached input of a cell is
  // final before the cell pops — the sparse twin of the dense sweep.
  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), cmp);
    auto [pos, cv] = s.heap.back();
    s.heap.pop_back();
    if (s.mark[cv] == s.epoch) continue;
    s.mark[cv] = s.epoch;
    const nl::CellData& cd = nl_.cell(nl::CellId(cv));
    Ps worst = kUnreached;
    for (size_t i = 0; i < cd.ins.size(); ++i) {
      if (!pin_propagates(cd, i)) continue;
      worst = std::max(worst, s.arr[cd.ins[i].value()]);
    }
    if (worst == kUnreached) continue;
    Ps out = worst + cell_delay(nl::CellId(cv));
    for (NetId o : cd.outs) touch(o, out);
  }
}

Ps Sta::storage_input_arrival(const std::vector<Ps>& arr, nl::CellId c) const {
  const nl::CellData& cd = nl_.cell(c);
  Ps worst = kUnreached;
  for (size_t i = 0; i < cd.ins.size(); ++i) {
    if (!pin_is_data_endpoint(cd, i)) continue;
    worst = std::max(worst, arr[cd.ins[i].value()]);
  }
  return worst;
}

Sta::PeriodReport Sta::min_clock_period() const {
  // Launch points: every storage output at its clk->q delay; primary inputs
  // at 0 (externally registered, zero input delay).
  std::vector<Source> sources;
  std::vector<CellId> launch_of_net(nl_.num_nets(), CellId::invalid());
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (!cell::is_storage(cd.kind)) continue;
    Ps clk2q = cell_delay(c);
    for (NetId o : cd.outs) {
      sources.push_back({o, clk2q});
      launch_of_net[o.value()] = c;
    }
  }
  for (NetId in : nl_.inputs()) sources.push_back({in, 0});

  std::vector<Ps> arr = arrivals(sources);

  PeriodReport rep;
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (!cell::is_storage(cd.kind)) continue;
    Ps a = storage_input_arrival(arr, c);
    if (a == kUnreached) continue;
    Ps setup = cell::is_latch(cd.kind) ? tech_.latch_setup() : tech_.dff_setup();
    Ps period = a + setup;
    if (period > rep.min_period) {
      rep.min_period = period;
      rep.worst_capture = c;
      rep.worst_path = a;
      // Identify the launch by tracing the critical path back to a source.
      std::vector<NetId> path;
      for (size_t i = 0; i < cd.ins.size(); ++i) {
        if (pin_is_data_endpoint(cd, i) &&
            arr[cd.ins[i].value()] == a) {
          path = trace_path(arr, cd.ins[i]);
          break;
        }
      }
      rep.worst_launch = path.empty()
                             ? CellId::invalid()
                             : launch_of_net[path.front().value()];
    }
  }
  if (rep.min_period == 0) {
    // Purely combinational design: period is the worst PI -> PO path.
    for (NetId o : nl_.outputs()) {
      if (arr[o.value()] != kUnreached) {
        rep.min_period = std::max(rep.min_period, arr[o.value()]);
      }
    }
  }
  return rep;
}

std::vector<NetId> Sta::trace_path(const std::vector<Ps>& arr,
                                   nl::NetId net) const {
  std::vector<NetId> rev;
  NetId cur = net;
  while (cur.valid() && arr[cur.value()] != kUnreached) {
    rev.push_back(cur);
    CellId drv = nl_.net(cur).driver;
    if (!drv.valid()) break;  // primary input
    const nl::CellData& cd = nl_.cell(drv);
    if (!propagates(cd.kind)) break;  // launched at a storage output
    Ps need = arr[cur.value()] - cell_delay(drv);
    NetId best = NetId::invalid();
    Ps best_arr = kUnreached;
    for (size_t i = 0; i < cd.ins.size(); ++i) {
      if (!pin_propagates(cd, i)) continue;
      Ps a = arr[cd.ins[i].value()];
      if (a != kUnreached && a <= need && a > best_arr) {
        best = cd.ins[i];
        best_arr = a;
      }
    }
    if (!best.valid()) break;  // source net (listed in sources)
    cur = best;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

}  // namespace desyn::sta
