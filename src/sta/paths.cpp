#include "sta/paths.h"

namespace desyn::sta {

std::string format_path(const nl::Netlist& nl, const std::vector<Ps>& arr,
                        const std::vector<nl::NetId>& path) {
  std::ostringstream os;
  for (nl::NetId n : path) {
    os << "  @ " << arr[n.value()] << "ps  " << nl.net(n).name;
    nl::CellId drv = nl.net(n).driver;
    if (drv.valid()) {
      os << "  (" << cell::kind_name(nl.cell(drv).kind) << " "
         << nl.cell(drv).name << ")";
    } else {
      os << "  (primary input)";
    }
    os << "\n";
  }
  return os.str();
}

std::string format_period_report(const nl::Netlist& nl,
                                 const Sta::PeriodReport& rep) {
  std::ostringstream os;
  os << "min clock period: " << rep.min_period << " ps";
  os << " (worst path " << rep.worst_path << " ps";
  if (rep.worst_launch.valid()) {
    os << ", launch " << nl.cell(rep.worst_launch).name;
  }
  if (rep.worst_capture.valid()) {
    os << ", capture " << nl.cell(rep.worst_capture).name;
  }
  os << ")";
  return os.str();
}

}  // namespace desyn::sta
