#include "sta/variation.h"

#include <cmath>

#include "base/rng.h"

namespace desyn::sta {

Ps sample_path_delay(Ps nominal, Ps unit, const cell::VariationModel& model,
                     uint64_t stream, size_t sample) {
  if (nominal <= 0) return nominal;
  const int64_t stages =
      unit > 0 ? (nominal + unit - 1) / unit : 1;  // ceil(D / unit)
  const double per_stage =
      static_cast<double>(nominal) / static_cast<double>(stages);
  double acc = 0.0;
  for (int64_t i = 0; i < stages; ++i) {
    // Whiten the stage index into the element stream so stage draws are
    // independent of each other and of other paths.
    uint64_t seg = splitmix64(stream + 0x9e3779b97f4a7c15ull *
                                           static_cast<uint64_t>(i + 1));
    acc += per_stage * model.factor(seg, sample);
  }
  return static_cast<Ps>(std::llround(acc));
}

}  // namespace desyn::sta
