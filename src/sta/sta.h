// Static timing analysis over the gate-level netlist.
//
// Model: every net has a worst-case arrival time; a cell adds
// tech.delay(kind, arity, fanout-of-output) from its worst input to its
// outputs. Storage outputs (latch/FF Q) and primary inputs are launch
// points; storage data inputs (D, RAM write pins) are capture endpoints.
//
// Two uses in the flow:
//  * min_clock_period(): the synchronous reference's achievable period
//    (worst FF->FF path + setup), as a commercial STA would report.
//  * arrivals(sources): generic worst-path propagation from a chosen set of
//    launch nets — this is what sizes the matched delays (worst path from a
//    latch bank's Q pins to the successor bank's D pins).
#pragma once

#include <span>
#include <vector>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::sta {

/// A launch point: `net` begins toggling at time `at`.
struct Source {
  nl::NetId net;
  Ps at = 0;
};

/// Arrival time used for unreachable nets.
inline constexpr Ps kUnreached = -1;

class Sta {
 public:
  Sta(const nl::Netlist& nl, const cell::Tech& tech);

  /// Worst arrival per net (indexed by NetId value) propagated through
  /// combinational logic from `sources`. Storage cells do not propagate
  /// (their outputs stay kUnreached unless listed as sources); the RAM/ROM
  /// read path (RA -> RD) does propagate. State-holding control cells
  /// (CElem/Gc) propagate like gates — the control-network analysis relies
  /// on this.
  std::vector<Ps> arrivals(std::span<const Source> sources) const;

  /// Reusable state for arrivals_sparse(): the arrival map plus the list
  /// of nets the last propagation touched. One per caller (or thread).
  struct SparseScratch {
    std::vector<Ps> arr;             ///< per net; valid only for `touched`
    std::vector<nl::NetId> touched;  ///< nets reached by the last call
    /// Restore `arr` to all-kUnreached (O(|touched|)) for the next call.
    void reset();

   private:
    friend class Sta;
    std::vector<uint32_t> mark;  ///< per-cell epoch stamps
    uint32_t epoch = 0;
    std::vector<std::pair<uint32_t, uint32_t>> heap;  ///< (topo pos, cell)
  };

  /// arrivals() restricted to the downstream cone of `sources`: visits
  /// only reached cells (in topographic order via a position heap) instead
  /// of sweeping the whole netlist, and records every touched net. The
  /// per-flip-flop control-graph extraction runs one propagation per bank,
  /// so the dense sweep's O(banks * netlist) becomes O(sum of cone sizes).
  /// Call scratch.reset() after consuming the result.
  void arrivals_sparse(std::span<const Source> sources,
                       SparseScratch& scratch) const;

  /// Worst arrival over the *data* inputs of storage cell `c` (D for
  /// latch/FF; WE/WA/WD for RAM), given a previously computed arrival map.
  Ps storage_input_arrival(const std::vector<Ps>& arr, nl::CellId c) const;

  /// True if input pin `i` of storage cell `cd` is a capture data endpoint
  /// (D; RAM WE/WA/WD) — the pins storage_input_arrival aggregates.
  static bool data_endpoint_pin(const nl::CellData& cd, size_t i);

  /// Propagation delay this STA (and the simulator) uses for `c`.
  Ps cell_delay(nl::CellId c) const;

  struct PeriodReport {
    Ps min_period = 0;           ///< max path + setup over all endpoints
    nl::CellId worst_launch;     ///< storage cell launching the worst path
    nl::CellId worst_capture;    ///< storage cell capturing it
    Ps worst_path = 0;           ///< launch clk->q + combinational
  };

  /// Minimum clock period of the FF-based synchronous circuit: for every
  /// storage->storage path, launch clk->q + combinational + setup.
  /// Primary-input-launched paths are included with launch time 0.
  PeriodReport min_clock_period() const;

  /// Critical path ending at `net` under arrival map `arr`: list of nets
  /// from a launch point to `net` (inclusive). Empty if unreached.
  std::vector<nl::NetId> trace_path(const std::vector<Ps>& arr,
                                    nl::NetId net) const;

  const std::vector<nl::CellId>& topo() const { return topo_; }

 private:
  const nl::Netlist& nl_;
  const cell::Tech& tech_;
  std::vector<nl::CellId> topo_;   ///< evaluation order (comb cells first)
  std::vector<uint32_t> topo_pos_; ///< cell id -> position in topo_
};

}  // namespace desyn::sta
