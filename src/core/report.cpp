#include "core/report.h"

#include <iomanip>

#include "netlist/query.h"

namespace desyn::flow {

Um2 total_area(const nl::Netlist& nl, const cell::Tech& tech) {
  return nl::stats(nl, tech).area;
}

std::string format_comparison(const ImplReport& sync,
                              const ImplReport& desync) {
  std::ostringstream os;
  auto pct = [](double a, double b) {
    if (a == 0) return 0.0;
    return 100.0 * (b - a) / a;
  };
  os << std::fixed;
  os << "                         " << std::setw(14) << sync.name
     << std::setw(16) << desync.name << std::setw(10) << "delta\n";
  os << "  Cycle Time        " << std::setw(15) << std::setprecision(2)
     << static_cast<double>(sync.cycle_time) / 1000.0 << "ns" << std::setw(14)
     << static_cast<double>(desync.cycle_time) / 1000.0 << "ns" << std::setw(8)
     << std::setprecision(1)
     << pct(static_cast<double>(sync.cycle_time),
            static_cast<double>(desync.cycle_time))
     << "%\n";
  os << "  Dyn. Power Cons.  " << std::setw(15) << std::setprecision(2)
     << sync.power_mw << "mW" << std::setw(14) << desync.power_mw << "mW"
     << std::setw(8) << std::setprecision(1)
     << pct(sync.power_mw, desync.power_mw) << "%\n";
  os << "    of which clock/ctl " << std::setw(12) << std::setprecision(2)
     << sync.clock_power_mw << "mW" << std::setw(14) << desync.clock_power_mw
     << "mW\n";
  os << "  Area              " << std::setw(14) << std::setprecision(0)
     << sync.area << "um2" << std::setw(13) << desync.area << "um2"
     << std::setw(8) << std::setprecision(1) << pct(sync.area, desync.area)
     << "%\n";
  os << "  Cells             " << std::setw(17) << sync.cells << std::setw(16)
     << desync.cells << "\n";
  return os.str();
}

}  // namespace desyn::flow
