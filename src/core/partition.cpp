#include "core/partition.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/adjacency.h"
#include "core/latchify.h"
#include "ctl/controller.h"
#include "netlist/builder.h"
#include "pn/mcr.h"

namespace desyn::flow {

// ---------------------------------------------------------------------------
// bank_prefix
// ---------------------------------------------------------------------------

std::string bank_prefix(const std::string& cell_name, int depth) {
  DESYN_ASSERT(depth >= 1, "bank_prefix depth must be >= 1");
  // Verilog escaped identifiers ('\foo.bar ') are atomic: their dots are
  // not hierarchy separators. Same fallback as dot-free names.
  if (!cell_name.empty() && cell_name[0] == '\\') return "core";
  std::string_view s = cell_name;
  for (int d = 0; d < depth; ++d) {
    size_t dot = s.rfind('.');
    if (dot == std::string_view::npos || dot == 0) {
      return d == 0 ? "core" : std::string(s);
    }
    s = s.substr(0, dot);
  }
  return std::string(s);
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

namespace {

/// Live storage cells of `nl` in id order: (DFFs, RAMs).
std::pair<std::vector<nl::CellId>, std::vector<nl::CellId>> storage_cells(
    const nl::Netlist& nl) {
  std::vector<nl::CellId> ffs, rams;
  for (nl::CellId c : nl.cells()) {
    switch (nl.cell(c).kind) {
      case cell::Kind::Dff: ffs.push_back(c); break;
      case cell::Kind::Ram: rams.push_back(c); break;
      default: break;
    }
  }
  return {std::move(ffs), std::move(rams)};
}

}  // namespace

int Partition::group_of(nl::CellId c) const {
  if (c.value() >= group_of_.size()) return -1;
  return group_of_[c.value()];
}

void Partition::index() {
  uint32_t max_id = 0;
  for (const PartitionGroup& g : groups_) {
    for (nl::CellId c : g.cells) max_id = std::max(max_id, c.value() + 1);
  }
  group_of_.assign(max_id, -1);
  for (size_t i = 0; i < groups_.size(); ++i) {
    for (nl::CellId c : groups_[i].cells) {
      group_of_[c.value()] = static_cast<int>(i);
    }
  }
}

void Partition::canonicalize() {
  for (PartitionGroup& g : groups_) {
    std::sort(g.cells.begin(), g.cells.end());
  }
  std::stable_sort(groups_.begin(), groups_.end(),
                   [](const PartitionGroup& a, const PartitionGroup& b) {
                     if (a.ram != b.ram) return !a.ram;  // FF groups first
                     // Empty groups (invalid; kept for validate() to name)
                     // sort last so the comparison below stays total.
                     if (a.cells.empty() || b.cells.empty()) {
                       return !a.cells.empty() && b.cells.empty();
                     }
                     return a.cells.front() < b.cells.front();
                   });
  index();
}

void Partition::validate(const nl::Netlist& nl) const {
  auto [ffs, rams] = storage_cells(nl);
  std::vector<char> is_storage(nl.num_cells(), 0), is_ram(nl.num_cells(), 0);
  for (nl::CellId c : ffs) is_storage[c.value()] = 1;
  for (nl::CellId c : rams) is_storage[c.value()] = is_ram[c.value()] = 1;

  std::vector<char> seen(nl.num_cells(), 0);
  for (const PartitionGroup& g : groups_) {
    if (g.cells.empty()) {
      throw PartitionError(PartitionError::Kind::EmptyGroup,
                           cat("partition group '", g.name, "' is empty"));
    }
    for (nl::CellId c : g.cells) {
      if (c.value() >= nl.num_cells() || !is_storage[c.value()]) {
        throw PartitionError(
            PartitionError::Kind::ForeignCell,
            cat("partition group '", g.name, "' contains cell ", c,
                c.value() < nl.num_cells()
                    ? cat(" ('", nl.cell(c).name,
                          "') which is not a storage cell")
                    : std::string(" which is not in the netlist")));
      }
      if (seen[c.value()]) {
        throw PartitionError(PartitionError::Kind::DuplicateCell,
                             cat("storage cell '", nl.cell(c).name,
                                 "' appears in more than one group"));
      }
      seen[c.value()] = 1;
      if (is_ram[c.value()] && g.cells.size() != 1) {
        throw PartitionError(
            PartitionError::Kind::MixedRamGroup,
            cat("RAM '", nl.cell(c).name, "' shares group '", g.name,
                "' with other storage; a RAM macro needs its own bank pair"));
      }
    }
  }
  for (nl::CellId c : ffs) {
    if (!seen[c.value()]) {
      throw PartitionError(PartitionError::Kind::UncoveredCell,
                           cat("flip-flop '", nl.cell(c).name,
                               "' is not covered by the partition"));
    }
  }
  for (nl::CellId c : rams) {
    if (!seen[c.value()]) {
      throw PartitionError(PartitionError::Kind::UncoveredCell,
                           cat("RAM '", nl.cell(c).name,
                               "' is not covered by the partition"));
    }
  }
}

std::string Partition::describe(const nl::Netlist& nl) const {
  std::string out = cat(groups_.size(), " groups:");
  for (const PartitionGroup& g : groups_) {
    out += cat(" {", g.name, ":");
    for (nl::CellId c : g.cells) out += cat(" ", nl.cell(c).name);
    out += "}";
  }
  return out;
}

Partition Partition::prefix(const nl::Netlist& nl, int depth) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  std::map<std::string, size_t> by_key;
  for (nl::CellId c : ffs) {
    std::string key = bank_prefix(nl.cell(c).name, depth);
    auto [it, inserted] = by_key.try_emplace(key, p.groups_.size());
    if (inserted) p.groups_.push_back(PartitionGroup{std::move(key), {}, false});
    p.groups_[it->second].cells.push_back(c);
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::per_flip_flop(const nl::Netlist& nl) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  for (nl::CellId c : ffs) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, false});
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::single(const nl::Netlist& nl) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  if (!ffs.empty()) {
    p.groups_.push_back(PartitionGroup{"all", std::move(ffs), false});
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::from_groups(const nl::Netlist& nl,
                                 std::vector<std::vector<nl::CellId>> groups) {
  Partition p;
  for (auto& g : groups) {
    p.groups_.push_back(PartitionGroup{"", std::move(g), false});
  }
  // Mark listed RAM singletons; RAMs not listed get their own groups.
  std::set<uint32_t> listed;
  for (PartitionGroup& g : p.groups_) {
    for (nl::CellId c : g.cells) {
      listed.insert(c.value());
      if (c.value() < nl.num_cells() && nl.is_live(c) &&
          nl.cell(c).kind == cell::Kind::Ram) {
        g.ram = g.cells.size() == 1;  // a mixed group stays !ram and is
                                      // rejected by validate() below
      }
    }
  }
  auto [ffs, rams] = storage_cells(nl);
  (void)ffs;
  for (nl::CellId c : rams) {
    if (!listed.count(c.value())) {
      p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
    }
  }
  p.canonicalize();
  // Names after canonical order so they are deterministic: member name for
  // singletons (matches the per-flip-flop strategy), g<i> for clusters.
  for (size_t i = 0; i < p.groups_.size(); ++i) {
    PartitionGroup& g = p.groups_[i];
    if (g.cells.size() == 1 && g.cells[0].value() < nl.num_cells() &&
        nl.is_live(g.cells[0])) {
      g.name = nl.cell(g.cells[0]).name;
    } else {
      g.name = cat("g", i);
    }
  }
  p.validate(nl);
  return p;
}

// ---------------------------------------------------------------------------
// PartitionSpec
// ---------------------------------------------------------------------------

PartitionSpec PartitionSpec::parse(std::string_view s) {
  PartitionSpec spec;
  auto arg_of = [&](std::string_view head) -> std::optional<std::string_view> {
    if (s == head) return std::nullopt;
    if (starts_with(s, std::string(head) + ":")) {
      return s.substr(head.size() + 1);
    }
    fail("unknown bank strategy '", s,
         "' (expected prefix[:N]|perff|single|auto[:B])");
  };
  if (s == "perff") {
    spec.mode = Mode::PerFlipFlop;
  } else if (s == "single") {
    spec.mode = Mode::Single;
  } else if (starts_with(s, "prefix")) {
    spec.mode = Mode::Prefix;
    if (auto a = arg_of("prefix")) {
      try {
        size_t used = 0;
        int d = std::stoi(std::string(*a), &used);
        if (used != a->size() || d < 1 || d > 16) fail("");
        spec.prefix_depth = d;
      } catch (...) {
        fail("malformed prefix depth '", *a, "' (need an integer in [1, 16])");
      }
    }
  } else if (starts_with(s, "auto")) {
    spec.mode = Mode::Auto;
    if (auto a = arg_of("auto")) {
      try {
        size_t used = 0;
        double b = std::stod(std::string(*a), &used);
        if (used != a->size() || !(b >= 1.0) || !(b <= 100.0)) fail("");
        spec.auto_budget = b;
      } catch (...) {
        fail("malformed auto budget '", *a, "' (need a number in [1, 100])");
      }
    }
  } else {
    fail("unknown bank strategy '", s,
         "' (expected prefix[:N]|perff|single|auto[:B])");
  }
  return spec;
}

std::string PartitionSpec::label() const {
  switch (mode) {
    case Mode::Prefix:
      return prefix_depth == 1 ? "prefix" : cat("prefix:", prefix_depth);
    case Mode::PerFlipFlop: return "perff";
    case Mode::Single: return "single";
    case Mode::Auto: return cat("auto:", auto_budget);
    case Mode::Explicit: return "explicit";
  }
  return "?";
}

Partition make_partition(const nl::Netlist& ff_netlist, nl::NetId clock,
                         const PartitionSpec& spec, const cell::Tech& tech,
                         ctl::Protocol protocol, double margin) {
  switch (spec.mode) {
    case PartitionSpec::Mode::Prefix:
      return Partition::prefix(ff_netlist, spec.prefix_depth);
    case PartitionSpec::Mode::PerFlipFlop:
      return Partition::per_flip_flop(ff_netlist);
    case PartitionSpec::Mode::Single:
      return Partition::single(ff_netlist);
    case PartitionSpec::Mode::Auto: {
      PartitionOptOptions opt;
      opt.period_budget = spec.auto_budget;
      opt.margin = margin;
      opt.protocol = protocol;
      return optimize_partition(ff_netlist, clock, tech, opt).partition;
    }
    case PartitionSpec::Mode::Explicit:
      DESYN_ASSERT(spec.partition.has_value(),
                   "explicit PartitionSpec without a partition");
      return *spec.partition;
  }
  fail("unreachable PartitionSpec mode");
}

// ---------------------------------------------------------------------------
// Scoring: the shared timed model
// ---------------------------------------------------------------------------

pn::MarkedGraph timed_model(const ctl::ControlGraph& cg, ctl::Protocol p,
                            const cell::Tech& tech, Ps pulse_width) {
  // Mirror the hardware line sizing: per-destination aggregation, response
  // credit, quantization to whole DELAY cells (minimum one).
  std::vector<Ps> worst(cg.num_banks(), 0);
  for (const auto& e : cg.edges()) {
    worst[static_cast<size_t>(e.to)] =
        std::max(worst[static_cast<size_t>(e.to)], e.matched_delay);
  }
  ctl::ControlGraph q;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    q.add_bank(cg.bank(static_cast<int>(i)).name,
               cg.bank(static_cast<int>(i)).even);
  }
  for (const auto& e : cg.edges()) {
    q.add_edge(e.from, e.to,
               ctl::matched_delay_cells(worst[static_cast<size_t>(e.to)],
                                        tech) *
                   tech.delay_unit());
  }
  Ps ctrl = tech.delay(cell::Kind::Inv, 1, 1) +
            tech.delay(cell::Kind::CElem, 2, 2);
  return ctl::hardware_mg(q, p, ctrl, pulse_width);
}

double predicted_period(const ctl::ControlGraph& cg, ctl::Protocol protocol,
                        const cell::Tech& tech) {
  // Every synthesis backend sizes the minimum transparency / pulse width
  // as three buffer delays (ctl::synthesize_controllers); use the same
  // constant so scores match flow::timed_control_model exactly.
  const Ps pulse_width = 3 * tech.spec(cell::Kind::Buf).delay;
  return pn::max_cycle_ratio(timed_model(cg, protocol, tech, pulse_width))
      .ratio;
}

// ---------------------------------------------------------------------------
// optimize_partition
// ---------------------------------------------------------------------------

namespace {

/// splitmix64 finalizer for deterministic candidate tie-breaking.
uint64_t mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Total controller + matched-delay cell count the real synthesis would
/// spend on `cg` — counted by running it against a scratch netlist, so the
/// optimizer's cost can never drift from the hardware.
size_t synthesis_cost(const ctl::ControlGraph& cg, ctl::Protocol p,
                      const cell::Tech& tech) {
  nl::Netlist scratch("cost_model");
  nl::Builder b(scratch);
  return ctl::synthesize_controllers(b, cg, p, tech).cells.size();
}

}  // namespace

PartitionOptResult optimize_partition(const nl::Netlist& ff_netlist,
                                      nl::NetId clock, const cell::Tech& tech,
                                      const PartitionOptOptions& opt) {
  DESYN_ASSERT(opt.period_budget >= 1.0,
               "period budget must be >= 1 (it multiplies the baseline)");
  PartitionOptResult res;
  const Partition perff = Partition::per_flip_flop(ff_netlist);
  const size_t G = perff.num_groups();
  if (G == 0) {
    res.partition = perff;
    return res;
  }

  // One STA pass: the per-flip-flop control graph. Every candidate
  // clustering's graph is a quotient of this one (arrivals are max-plus,
  // so the merged edge delay is exactly the max over member edges) — the
  // optimizer never re-runs timing.
  nl::Netlist latched = ff_netlist;
  const LatchifyResult lr = latchify(latched, clock, perff);
  const AdjacencyResult fine = extract_control_graph(
      latched, lr, clock, tech, opt.margin, opt.protocol);
  DESYN_ASSERT(fine.env_snk == static_cast<int>(2 * G) &&
               fine.env_src == static_cast<int>(2 * G) + 1);

  res.perff_period = predicted_period(fine.cg, opt.protocol, tech);
  res.perff_cost = synthesis_cost(fine.cg, opt.protocol, tech);
  {
    nl::Netlist l2 = ff_netlist;
    const LatchifyResult lr2 = latchify(l2, clock, Partition::prefix(ff_netlist));
    res.baseline_period = predicted_period(
        extract_control_graph(l2, lr2, clock, tech, opt.margin, opt.protocol)
            .cg,
        opt.protocol, tech);
  }
  // Coarsening only adds rendezvous, so merged periods are never below the
  // per-flip-flop start; measuring the budget against the larger of the
  // two baselines keeps the limit reachable.
  const double limit =
      opt.period_budget * std::max(res.baseline_period, res.perff_period);

  // Clustering state over fine groups. A cluster's label is the smallest
  // fine-group index it ever contained; labels are stable across merges,
  // which keeps the tie-break hash and the tried-set deterministic.
  std::vector<int> cluster(G);
  std::vector<std::vector<int>> members(G);
  std::vector<char> mergeable(G);
  for (size_t g = 0; g < G; ++g) {
    cluster[g] = static_cast<int>(g);
    members[g] = {static_cast<int>(g)};
    mergeable[g] = perff.groups()[g].ram ? 0 : 1;
  }

  // Quotient of the fine graph under the current clustering, optionally
  // with one tentative merge (drop -> keep) or one tentative single-group
  // move (fine group move_g joins cluster move_to) applied.
  auto build_quotient = [&](int keep, int drop, int move_g, int move_to) {
    std::vector<int> cl(G);
    for (size_t g = 0; g < G; ++g) {
      int c = cluster[g];
      if (c == drop) c = keep;
      cl[g] = c;
    }
    if (move_g >= 0) cl[static_cast<size_t>(move_g)] = move_to;
    std::vector<int> qidx(G, -1);
    std::vector<ctl::ControlGraph::Bank> banks;
    int nq = 0;
    for (size_t g = 0; g < G; ++g) {
      if (qidx[static_cast<size_t>(cl[g])] < 0) {
        qidx[static_cast<size_t>(cl[g])] = nq++;
        banks.push_back({cat("q", nq - 1, ".m"), true});
        banks.push_back({cat("q", nq - 1, ".s"), false});
      }
    }
    banks.push_back({"env_snk", true});
    banks.push_back({"env_src", false});
    std::vector<int> bank_map(fine.cg.num_banks());
    for (size_t g = 0; g < G; ++g) {
      bank_map[2 * g] = 2 * qidx[static_cast<size_t>(cl[g])];
      bank_map[2 * g + 1] = 2 * qidx[static_cast<size_t>(cl[g])] + 1;
    }
    bank_map[static_cast<size_t>(fine.env_snk)] = 2 * nq;
    bank_map[static_cast<size_t>(fine.env_src)] = 2 * nq + 1;
    return quotient_control_graph(fine.cg, bank_map, banks);
  };
  auto eval_period = [&](const ctl::ControlGraph& q) {
    ++res.evaluations;
    return predicted_period(q, opt.protocol, tech);
  };
  // Cluster of a fine bank; -1 for the environment pair.
  auto cluster_of_bank = [&](int bank) {
    return bank >= static_cast<int>(2 * G) ? -1 : cluster[static_cast<size_t>(bank) / 2];
  };

  // ---- greedy merge phase -------------------------------------------------
  // Candidates are cluster pairs that are adjacent or share a neighbour in
  // the current quotient, ranked by how many edges (and so delay lines)
  // the merge collapses. A candidate whose merged period busts the budget
  // is discarded permanently: any later state is coarser, and coarsening
  // is monotone in the predicted period.
  std::set<std::pair<int, int>> tried;
  const double eps = 1e-6;
  for (;;) {
    if (opt.max_merges && res.merges >= static_cast<int>(opt.max_merges)) break;
    // Score by co-occurrence: +1 per direct edge, +1 per shared
    // predecessor node, +1 per shared successor node.
    std::map<std::pair<int, int>, int> score;
    std::map<int, std::vector<int>> succs_of, preds_of;  // quotient node ->
    auto node_of = [&](int bank) {
      int c = cluster_of_bank(bank);
      if (c < 0) return -1 - (bank - static_cast<int>(2 * G));  // env nodes
      return 2 * c + (bank & 1);
    };
    for (const auto& e : fine.cg.edges()) {
      int cf = cluster_of_bank(e.from), ct = cluster_of_bank(e.to);
      if (cf >= 0 && ct >= 0 && cf != ct && mergeable[static_cast<size_t>(cf)] &&
          mergeable[static_cast<size_t>(ct)]) {
        score[{std::min(cf, ct), std::max(cf, ct)}] += 1;
      }
      if (ct >= 0 && mergeable[static_cast<size_t>(ct)]) {
        succs_of[node_of(e.from)].push_back(ct);
      }
      if (cf >= 0 && mergeable[static_cast<size_t>(cf)]) {
        preds_of[node_of(e.to)].push_back(cf);
      }
    }
    for (auto* side : {&succs_of, &preds_of}) {
      for (auto& [node, v] : *side) {
        (void)node;
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        for (size_t i = 0; i < v.size(); ++i) {
          for (size_t j = i + 1; j < v.size(); ++j) {
            score[{v[i], v[j]}] += 1;
          }
        }
      }
    }
    struct Cand {
      int a, b, s;
      uint64_t h;
    };
    std::vector<Cand> cands;
    for (const auto& [pair, s] : score) {
      if (tried.count(pair)) continue;
      cands.push_back({pair.first, pair.second, s,
                       mix(opt.seed ^ (static_cast<uint64_t>(
                                           static_cast<uint32_t>(pair.first))
                                           << 32 |
                                       static_cast<uint32_t>(pair.second)))});
    }
    if (cands.empty()) break;
    std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
      if (x.s != y.s) return x.s > y.s;
      if (x.h != y.h) return x.h < y.h;
      return std::tie(x.a, x.b) < std::tie(y.a, y.b);
    });
    bool committed = false;
    for (const Cand& c : cands) {
      double p = eval_period(build_quotient(c.a, c.b, -1, -1));
      if (p <= limit + eps) {
        for (int g : members[static_cast<size_t>(c.b)]) cluster[static_cast<size_t>(g)] = c.a;
        auto& win = members[static_cast<size_t>(c.a)];
        auto& lose = members[static_cast<size_t>(c.b)];
        win.insert(win.end(), lose.begin(), lose.end());
        std::sort(win.begin(), win.end());
        lose.clear();
        ++res.merges;
        committed = true;
        break;
      }
      tried.insert({c.a, c.b});
    }
    if (!committed) break;
  }

  // ---- refinement phase ---------------------------------------------------
  // Single-cell moves between adjacent clusters that strictly reduce the
  // synthesized gate cost while staying inside the budget. One pass, in
  // fine-group order: bounded and deterministic.
  if (opt.refine) {
    size_t cur_cost =
        synthesis_cost(build_quotient(-1, -1, -1, -1), opt.protocol, tech);
    for (size_t g = 0; g < G; ++g) {
      int c = cluster[g];
      if (!mergeable[static_cast<size_t>(c)] ||
          members[static_cast<size_t>(c)].size() < 2) {
        continue;
      }
      std::vector<int> targets;
      for (const auto& e : fine.cg.edges()) {
        for (int bank : {e.from, e.to}) {
          if (bank / 2 != static_cast<int>(g) ||
              bank >= static_cast<int>(2 * G)) {
            continue;
          }
          int other = cluster_of_bank(bank == e.from ? e.to : e.from);
          if (other >= 0 && other != c && mergeable[static_cast<size_t>(other)]) {
            targets.push_back(other);
          }
        }
      }
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
      for (int t : targets) {
        ctl::ControlGraph q = build_quotient(-1, -1, static_cast<int>(g), t);
        if (eval_period(q) > limit + eps) continue;
        size_t cost = synthesis_cost(q, opt.protocol, tech);
        if (cost >= cur_cost) continue;
        auto& from = members[static_cast<size_t>(c)];
        from.erase(std::find(from.begin(), from.end(), static_cast<int>(g)));
        members[static_cast<size_t>(t)].push_back(static_cast<int>(g));
        std::sort(members[static_cast<size_t>(t)].begin(),
                  members[static_cast<size_t>(t)].end());
        cluster[g] = t;
        cur_cost = cost;
        ++res.moves;
        break;
      }
    }
  }

  // ---- wrap up ------------------------------------------------------------
  std::vector<std::vector<nl::CellId>> out;
  for (size_t c = 0; c < G; ++c) {
    if (members[c].empty() || !mergeable[c]) continue;  // RAMs auto-append
    std::vector<nl::CellId> cells;
    for (int g : members[c]) {
      cells.push_back(perff.groups()[static_cast<size_t>(g)].cells[0]);
    }
    out.push_back(std::move(cells));
  }
  res.partition = Partition::from_groups(ff_netlist, std::move(out));
  ctl::ControlGraph final_q = build_quotient(-1, -1, -1, -1);
  res.period = predicted_period(final_q, opt.protocol, tech);
  res.cost = synthesis_cost(final_q, opt.protocol, tech);
  return res;
}

}  // namespace desyn::flow
