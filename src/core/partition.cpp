#include "core/partition.h"

#include "base/rng.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "core/adjacency.h"
#include "core/latchify.h"
#include "ctl/controller.h"
#include "netlist/builder.h"
#include "pn/mcr.h"

namespace desyn::flow {

// ---------------------------------------------------------------------------
// bank_prefix
// ---------------------------------------------------------------------------

std::string bank_prefix(const std::string& cell_name, int depth) {
  DESYN_ASSERT(depth >= 1, "bank_prefix depth must be >= 1");
  // Verilog escaped identifiers ('\foo.bar ') are atomic: their dots are
  // not hierarchy separators. Same fallback as dot-free names.
  if (!cell_name.empty() && cell_name[0] == '\\') return "core";
  std::string_view s = cell_name;
  for (int d = 0; d < depth; ++d) {
    size_t dot = s.rfind('.');
    if (dot == std::string_view::npos || dot == 0) {
      return d == 0 ? "core" : std::string(s);
    }
    s = s.substr(0, dot);
  }
  return std::string(s);
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

namespace {

/// Live storage cells of `nl` in id order: (DFFs, RAMs).
std::pair<std::vector<nl::CellId>, std::vector<nl::CellId>> storage_cells(
    const nl::Netlist& nl) {
  std::vector<nl::CellId> ffs, rams;
  for (nl::CellId c : nl.cells()) {
    switch (nl.cell(c).kind) {
      case cell::Kind::Dff: ffs.push_back(c); break;
      case cell::Kind::Ram: rams.push_back(c); break;
      default: break;
    }
  }
  return {std::move(ffs), std::move(rams)};
}

}  // namespace

int Partition::group_of(nl::CellId c) const {
  if (c.value() >= group_of_.size()) return -1;
  return group_of_[c.value()];
}

void Partition::index() {
  uint32_t max_id = 0;
  for (const PartitionGroup& g : groups_) {
    for (nl::CellId c : g.cells) max_id = std::max(max_id, c.value() + 1);
  }
  group_of_.assign(max_id, -1);
  for (size_t i = 0; i < groups_.size(); ++i) {
    for (nl::CellId c : groups_[i].cells) {
      group_of_[c.value()] = static_cast<int>(i);
    }
  }
}

void Partition::canonicalize() {
  for (PartitionGroup& g : groups_) {
    std::sort(g.cells.begin(), g.cells.end());
  }
  std::stable_sort(groups_.begin(), groups_.end(),
                   [](const PartitionGroup& a, const PartitionGroup& b) {
                     if (a.ram != b.ram) return !a.ram;  // FF groups first
                     // Empty groups (invalid; kept for validate() to name)
                     // sort last so the comparison below stays total.
                     if (a.cells.empty() || b.cells.empty()) {
                       return !a.cells.empty() && b.cells.empty();
                     }
                     return a.cells.front() < b.cells.front();
                   });
  index();
}

void Partition::validate(const nl::Netlist& nl) const {
  auto [ffs, rams] = storage_cells(nl);
  std::vector<char> is_storage(nl.num_cells(), 0), is_ram(nl.num_cells(), 0);
  for (nl::CellId c : ffs) is_storage[c.value()] = 1;
  for (nl::CellId c : rams) is_storage[c.value()] = is_ram[c.value()] = 1;

  std::vector<char> seen(nl.num_cells(), 0);
  for (const PartitionGroup& g : groups_) {
    if (g.cells.empty()) {
      throw PartitionError(PartitionError::Kind::EmptyGroup,
                           cat("partition group '", g.name, "' is empty"));
    }
    for (nl::CellId c : g.cells) {
      if (c.value() >= nl.num_cells() || !is_storage[c.value()]) {
        throw PartitionError(
            PartitionError::Kind::ForeignCell,
            cat("partition group '", g.name, "' contains cell ", c,
                c.value() < nl.num_cells()
                    ? cat(" ('", nl.cell(c).name,
                          "') which is not a storage cell")
                    : std::string(" which is not in the netlist")));
      }
      if (seen[c.value()]) {
        throw PartitionError(PartitionError::Kind::DuplicateCell,
                             cat("storage cell '", nl.cell(c).name,
                                 "' appears in more than one group"));
      }
      seen[c.value()] = 1;
      if (is_ram[c.value()] && g.cells.size() != 1) {
        throw PartitionError(
            PartitionError::Kind::MixedRamGroup,
            cat("RAM '", nl.cell(c).name, "' shares group '", g.name,
                "' with other storage; a RAM macro needs its own bank pair"));
      }
    }
  }
  for (nl::CellId c : ffs) {
    if (!seen[c.value()]) {
      throw PartitionError(PartitionError::Kind::UncoveredCell,
                           cat("flip-flop '", nl.cell(c).name,
                               "' is not covered by the partition"));
    }
  }
  for (nl::CellId c : rams) {
    if (!seen[c.value()]) {
      throw PartitionError(PartitionError::Kind::UncoveredCell,
                           cat("RAM '", nl.cell(c).name,
                               "' is not covered by the partition"));
    }
  }
}

std::string Partition::describe(const nl::Netlist& nl) const {
  std::string out = cat(groups_.size(), " groups:");
  for (const PartitionGroup& g : groups_) {
    out += cat(" {", g.name, ":");
    for (nl::CellId c : g.cells) out += cat(" ", nl.cell(c).name);
    out += "}";
  }
  return out;
}

Partition Partition::prefix(const nl::Netlist& nl, int depth) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  std::map<std::string, size_t> by_key;
  for (nl::CellId c : ffs) {
    std::string key = bank_prefix(nl.cell(c).name, depth);
    auto [it, inserted] = by_key.try_emplace(key, p.groups_.size());
    if (inserted) p.groups_.push_back(PartitionGroup{std::move(key), {}, false});
    p.groups_[it->second].cells.push_back(c);
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::per_flip_flop(const nl::Netlist& nl) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  for (nl::CellId c : ffs) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, false});
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::single(const nl::Netlist& nl) {
  auto [ffs, rams] = storage_cells(nl);
  Partition p;
  if (!ffs.empty()) {
    p.groups_.push_back(PartitionGroup{"all", std::move(ffs), false});
  }
  for (nl::CellId c : rams) {
    p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
  }
  p.canonicalize();
  return p;
}

Partition Partition::from_groups(const nl::Netlist& nl,
                                 std::vector<std::vector<nl::CellId>> groups) {
  Partition p;
  for (auto& g : groups) {
    p.groups_.push_back(PartitionGroup{"", std::move(g), false});
  }
  // Mark listed RAM singletons; RAMs not listed get their own groups.
  std::set<uint32_t> listed;
  for (PartitionGroup& g : p.groups_) {
    for (nl::CellId c : g.cells) {
      listed.insert(c.value());
      if (c.value() < nl.num_cells() && nl.is_live(c) &&
          nl.cell(c).kind == cell::Kind::Ram) {
        g.ram = g.cells.size() == 1;  // a mixed group stays !ram and is
                                      // rejected by validate() below
      }
    }
  }
  auto [ffs, rams] = storage_cells(nl);
  (void)ffs;
  for (nl::CellId c : rams) {
    if (!listed.count(c.value())) {
      p.groups_.push_back(PartitionGroup{nl.cell(c).name, {c}, true});
    }
  }
  p.canonicalize();
  // Names after canonical order so they are deterministic: member name for
  // singletons (matches the per-flip-flop strategy), g<i> for clusters.
  for (size_t i = 0; i < p.groups_.size(); ++i) {
    PartitionGroup& g = p.groups_[i];
    if (g.cells.size() == 1 && g.cells[0].value() < nl.num_cells() &&
        nl.is_live(g.cells[0])) {
      g.name = nl.cell(g.cells[0]).name;
    } else {
      g.name = cat("g", i);
    }
  }
  p.validate(nl);
  return p;
}

// ---------------------------------------------------------------------------
// PartitionSpec
// ---------------------------------------------------------------------------

PartitionSpec PartitionSpec::parse(std::string_view s) {
  PartitionSpec spec;
  auto arg_of = [&](std::string_view head) -> std::optional<std::string_view> {
    if (s == head) return std::nullopt;
    if (starts_with(s, std::string(head) + ":")) {
      return s.substr(head.size() + 1);
    }
    fail("unknown bank strategy '", s,
         "' (expected prefix[:N]|perff|single|auto[:B])");
  };
  if (s == "perff") {
    spec.mode = Mode::PerFlipFlop;
  } else if (s == "single") {
    spec.mode = Mode::Single;
  } else if (starts_with(s, "prefix")) {
    spec.mode = Mode::Prefix;
    if (auto a = arg_of("prefix")) {
      try {
        size_t used = 0;
        int d = std::stoi(std::string(*a), &used);
        if (used != a->size() || d < 1 || d > 16) fail("");
        spec.prefix_depth = d;
      } catch (...) {
        fail("malformed prefix depth '", *a, "' (need an integer in [1, 16])");
      }
    }
  } else if (starts_with(s, "auto")) {
    spec.mode = Mode::Auto;
    if (auto a = arg_of("auto")) {
      try {
        size_t used = 0;
        double b = std::stod(std::string(*a), &used);
        if (used != a->size() || !(b >= 1.0) || !(b <= 100.0)) fail("");
        spec.auto_budget = b;
      } catch (...) {
        fail("malformed auto budget '", *a, "' (need a number in [1, 100])");
      }
    }
  } else {
    fail("unknown bank strategy '", s,
         "' (expected prefix[:N]|perff|single|auto[:B])");
  }
  return spec;
}

std::string PartitionSpec::label() const {
  switch (mode) {
    case Mode::Prefix:
      return prefix_depth == 1 ? "prefix" : cat("prefix:", prefix_depth);
    case Mode::PerFlipFlop: return "perff";
    case Mode::Single: return "single";
    case Mode::Auto: return cat("auto:", auto_budget);
    case Mode::Explicit: return "explicit";
  }
  return "?";
}

Partition make_partition(const nl::Netlist& ff_netlist, nl::NetId clock,
                         const PartitionSpec& spec, const cell::Tech& tech,
                         ctl::Protocol protocol, double margin, int opt_jobs) {
  switch (spec.mode) {
    case PartitionSpec::Mode::Prefix:
      return Partition::prefix(ff_netlist, spec.prefix_depth);
    case PartitionSpec::Mode::PerFlipFlop:
      return Partition::per_flip_flop(ff_netlist);
    case PartitionSpec::Mode::Single:
      return Partition::single(ff_netlist);
    case PartitionSpec::Mode::Auto: {
      PartitionOptOptions opt;
      opt.period_budget = spec.auto_budget;
      opt.margin = margin;
      opt.protocol = protocol;
      opt.jobs = opt_jobs;
      return optimize_partition(ff_netlist, clock, tech, opt).partition;
    }
    case PartitionSpec::Mode::Explicit:
      DESYN_ASSERT(spec.partition.has_value(),
                   "explicit PartitionSpec without a partition");
      return *spec.partition;
  }
  fail("unreachable PartitionSpec mode");
}

// ---------------------------------------------------------------------------
// Scoring: the shared timed model
// ---------------------------------------------------------------------------

pn::MarkedGraph timed_model(const ctl::ControlGraph& cg, ctl::Protocol p,
                            const cell::Tech& tech, Ps pulse_width) {
  // Mirror the hardware line sizing: per-destination aggregation, response
  // credit, quantization to whole DELAY cells (minimum one).
  std::vector<Ps> worst(cg.num_banks(), 0);
  for (const auto& e : cg.edges()) {
    worst[static_cast<size_t>(e.to)] =
        std::max(worst[static_cast<size_t>(e.to)], e.matched_delay);
  }
  ctl::ControlGraph q;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    q.add_bank(cg.bank(static_cast<int>(i)).name,
               cg.bank(static_cast<int>(i)).even);
  }
  for (const auto& e : cg.edges()) {
    q.add_edge(e.from, e.to,
               ctl::matched_delay_cells(worst[static_cast<size_t>(e.to)],
                                        tech) *
                   tech.delay_unit());
  }
  return ctl::hardware_mg(q, p, ctl::controller_response_delay(tech),
                          pulse_width);
}

double predicted_period(const ctl::ControlGraph& cg, ctl::Protocol protocol,
                        const cell::Tech& tech) {
  // ctl::min_pulse_width is what every synthesis backend sizes, so scores
  // match flow::timed_control_model exactly.
  return pn::max_cycle_ratio(
             timed_model(cg, protocol, tech, ctl::min_pulse_width(tech)))
      .ratio;
}

// ---------------------------------------------------------------------------
// optimize_partition
// ---------------------------------------------------------------------------

namespace {

/// splitmix64 finalizer for deterministic candidate tie-breaking (the
/// shared mixing step from base/rng.h).
uint64_t mix(uint64_t z) { return splitmix64(z); }

/// Total controller + matched-delay cell count the real synthesis would
/// spend on `cg` — counted by running it against a scratch netlist, so the
/// optimizer's cost can never drift from the hardware.
size_t synthesis_cost(const ctl::ControlGraph& cg, ctl::Protocol p,
                      const cell::Tech& tech) {
  nl::Netlist scratch("cost_model");
  nl::Builder b(scratch);
  return ctl::synthesize_controllers(b, cg, p, tech).cells.size();
}

uint64_t pair_key(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

// ---------------------------------------------------------------------------
// Candidate evaluators: how a tentative delta gets a period and a cost.
//
// The search loop below is shared verbatim between the production
// incremental scorer and the cold reference oracle; only this interface
// differs. Both track the committed clustering themselves (driven by the
// commit_* calls) so a probe is always measured against the same state the
// loop believes in.
// ---------------------------------------------------------------------------

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Period of the per-flip-flop start (also primes any internal state).
  virtual double initial_period() = 0;
  /// The search's period budget, once known; lets the scorer decide which
  /// probe solutions are worth exporting for adoption.
  virtual void set_limit(double limit) = 0;
  /// Score each candidate merge (keep, drop) against the committed
  /// clustering, filling `periods` positionally. May fan out internally;
  /// results must not depend on the fan-out.
  virtual void probe_merges(std::span<const std::pair<int, int>> cands,
                            std::span<double> periods) = 0;
  virtual double probe_move_period(int g, int to) = 0;
  virtual size_t probe_move_cost(int g, int to) = 0;
  virtual void commit_merge(int keep, int drop) = 0;
  virtual void commit_move(int g, int to) = 0;
  /// The committed quotient control graph (for synthesis costing).
  virtual ctl::ControlGraph quotient() = 0;
  /// The committed clustering itself — the single source of truth the
  /// search loop reads (labels, members, liveness).
  virtual const IncrementalQuotient& clusters() const = 0;
  virtual size_t warm_solves() const = 0;
  virtual size_t cold_solves() const = 0;
};

/// The cold oracle: every probe re-derives the full quotient control graph
/// and solves it from scratch through the exact same timed_model /
/// max_cycle_ratio path the flow uses.
class ReferenceEvaluator final : public Evaluator {
 public:
  ReferenceEvaluator(const ctl::ControlGraph& fine,
                     std::vector<char> merge_ok, ctl::Protocol p,
                     const cell::Tech& tech)
      : fine_(fine), cq_(fine, std::move(merge_ok)), p_(p), tech_(tech) {}

  double initial_period() override {
    ++cold_;
    return predicted_period(fine_, p_, tech_);
  }
  void set_limit(double) override {}
  void probe_merges(std::span<const std::pair<int, int>> cands,
                    std::span<double> periods) override {
    for (size_t i = 0; i < cands.size(); ++i) {
      cq_.merge(cands[i].first, cands[i].second);
      ++cold_;
      periods[i] = predicted_period(cq_.materialize(), p_, tech_);
      cq_.undo();
    }
  }
  double probe_move_period(int g, int to) override {
    cq_.move(g, to);
    ++cold_;
    double p = predicted_period(cq_.materialize(), p_, tech_);
    cq_.undo();
    return p;
  }
  size_t probe_move_cost(int g, int to) override {
    cq_.move(g, to);
    size_t c = synthesis_cost(cq_.materialize(), p_, tech_);
    cq_.undo();
    return c;
  }
  void commit_merge(int keep, int drop) override { cq_.merge(keep, drop); }
  void commit_move(int g, int to) override { cq_.move(g, to); }
  ctl::ControlGraph quotient() override { return cq_.materialize(); }
  const IncrementalQuotient& clusters() const override { return cq_; }
  size_t warm_solves() const override { return 0; }
  size_t cold_solves() const override { return cold_; }

 private:
  const ctl::ControlGraph& fine_;
  IncrementalQuotient cq_;
  ctl::Protocol p_;
  const cell::Tech& tech_;
  size_t cold_ = 0;
};

/// The production scorer. One flat timed model of the fine hardware arc
/// list is kept materialized per replica: arc endpoints live in quotient
/// transition space (fine bank b of cluster c appears as bank 2c + parity,
/// transition 2*bank + sign; merged-away ids are holes Howard skips), and
/// every arc's delay follows the hardware line-sizing rule — pred-side
/// arcs carry the quantized per-destination worst-in of their target bank
/// plus the controller response, succ-side arcs the response alone,
/// alternation arcs the pulse width (+ edge) or nothing (- edge).
///
/// A candidate is applied as an O(deg) endpoint/delay patch with an undo
/// journal, solved by a Howard re-run warm-started from the committed
/// solution (pn::McrContext), and reverted; the winning candidate's probe
/// solution is adopted wholesale, so a commit costs no extra solve. Waves
/// fan out over per-thread replicas kept in sync by replaying the commit
/// log. Merging never removes arcs — parallel duplicates just pile onto
/// the surviving transitions (same tokens, same delay: both are functions
/// of parity, sign and destination alone, merge-invariant) — so every
/// kCompactEvery merges the arc list is deduplicated in place and the
/// baseline's policy arcs remapped, keeping each solve proportional to the
/// *live* quotient, not the original fine graph.
class IncrementalEvaluator final : public Evaluator {
 public:
  IncrementalEvaluator(const ctl::ControlGraph& fine,
                       std::vector<char> merge_ok, ctl::Protocol p,
                       const cell::Tech& tech, int jobs)
      : fine_(fine),
        tech_(tech),
        jobs_(std::max(1, jobs)),
        proto_(p),
        main_(fine, merge_ok) {
    G_ = merge_ok.size();
    num_nodes_ = 2 * static_cast<uint32_t>(fine.num_banks());
    ctrl_ = ctl::controller_response_delay(tech);
    pulse_ = ctl::min_pulse_width(tech);
    rebuild_fine();
  }

  double initial_period() override { return ctx_.solve(view(main_)).ratio; }
  void set_limit(double limit) override { limit_ = limit; }

  void probe_merges(std::span<const std::pair<int, int>> cands,
                    std::span<double> periods) override {
    probes_ += cands.size();
    wave_.assign(cands.begin(), cands.end());
    wave_sols_.assign(cands.size(), {});
    size_t workers = std::min<size_t>(static_cast<size_t>(jobs_), cands.size());
    if (workers <= 1) {
      for (size_t i = 0; i < cands.size(); ++i) {
        periods[i] = probe_merge(main_, cands[i], &wave_sols_[i]);
      }
      return;
    }
    while (replicas_.size() < workers - 1) {
      replicas_.push_back(std::make_unique<Replica>(main_));
      replicas_.back()->synced = log_.size();
    }
    std::atomic<size_t> next{0};
    auto run = [&](Replica& r) {
      sync(r);
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= cands.size()) return;
        periods[i] = probe_merge(r, cands[i], &wave_sols_[i]);
      }
    };
    std::vector<std::thread> pool;
    for (size_t w = 0; w + 1 < workers; ++w) {
      pool.emplace_back(run, std::ref(*replicas_[w]));
    }
    run(main_);
    for (std::thread& t : pool) t.join();
  }

  double probe_move_period(int g, int to) override {
    ensure_fine();
    ++probes_;
    journal_.clear();
    apply_move(main_, g, to, &journal_);
    double p = ctx_.probe(view(main_), main_.node_map, main_.scratch).ratio;
    move_sol_.valid = false;
    if (p <= limit_) {
      pn::McrContext::export_solution(main_.scratch, num_nodes_, &move_sol_);
      move_key_ = {g, to};
    }
    revert(main_, journal_);
    return p;
  }

  size_t probe_move_cost(int g, int to) override {
    main_.cq.move(g, to);
    size_t c = synthesis_cost(main_.cq.materialize(), proto_, tech_);
    main_.cq.undo();
    return c;
  }

  void commit_merge(int keep, int drop) override {
    apply_merge(main_, keep, drop, nullptr);
    log_.push_back({true, keep, drop});
    main_.synced = log_.size();
    // Rebase the warm-start baseline onto the committed graph. The
    // committed candidate was already solved by its probe — adopt that
    // solution outright; re-solve only if the probe had nothing to export.
    size_t idx = wave_.size();
    for (size_t i = 0; i < wave_.size(); ++i) {
      if (wave_[i] == std::make_pair(keep, drop)) {
        idx = i;
        break;
      }
    }
    if (idx < wave_sols_.size() && wave_sols_[idx].valid) {
      ctx_.adopt_solution(std::move(wave_sols_[idx]));
    } else {
      for (int s = 0; s < 4; ++s) {
        main_.node_map[static_cast<size_t>(4 * drop + s)] =
            static_cast<uint32_t>(4 * keep + s);
      }
      ctx_.resolve(view(main_), main_.node_map);
      for (int s = 0; s < 4; ++s) {
        main_.node_map[static_cast<size_t>(4 * drop + s)] =
            static_cast<uint32_t>(4 * drop + s);
      }
    }
    if (++merges_since_compact_ >= kCompactEvery) compact();
  }

  void commit_move(int g, int to) override {
    ensure_fine();
    apply_move(main_, g, to, nullptr);
    log_.push_back({false, g, to});
    main_.synced = log_.size();
    if (move_sol_.valid && move_key_ == std::make_pair(g, to)) {
      ctx_.adopt_solution(std::move(move_sol_));
      move_sol_.valid = false;
    } else {
      ctx_.resolve(view(main_), main_.node_map);  // identity: no nodes merge
    }
  }

  ctl::ControlGraph quotient() override { return main_.cq.materialize(); }
  const IncrementalQuotient& clusters() const override { return main_.cq; }
  size_t warm_solves() const override { return probes_ + ctx_.warm_solves(); }
  size_t cold_solves() const override { return ctx_.cold_solves(); }

 private:
  /// Compact when this many merges piled parallel arcs onto the quotient.
  static constexpr size_t kCompactEvery = 256;
  enum : uint8_t { kAltPlus = 0, kAltMinus = 1, kPred = 2, kSucc = 3 };

  struct Patch {
    uint32_t arc;
    uint32_t from, to;
    Ps delay;
  };
  struct CommitOp {
    bool is_merge;
    int a, b;
  };
  struct Replica {
    Replica(const ctl::ControlGraph& fine, const std::vector<char>& merge_ok)
        : cq(fine, merge_ok) {}
    Replica(const Replica&) = default;
    IncrementalQuotient cq;
    std::vector<uint32_t> from, to;  ///< arc endpoints, quotient transitions
    std::vector<Ps> delay;           ///< arc delays under the sizing rule
    std::vector<std::vector<uint32_t>> incident;  ///< arc ids per cluster
    std::vector<uint32_t> node_map;               ///< identity scratch map
    pn::McrScratch scratch;
    size_t synced = 0;  ///< commit-log prefix already applied
  };

  /// Quantized matched-delay-line length into quotient bank `qb` (per the
  /// current clustering of `r`), exactly as the synthesis sizes it.
  Ps qdelay(const Replica& r, uint32_t qb) const {
    Ps worst = qb >= 2 * G_
                   ? r.cq.fine_worst_in(static_cast<int>(qb))
                   : r.cq.worst_in(static_cast<int>(qb) / 2, (qb & 1) == 0);
    return ctl::matched_delay_cells(worst, tech_) * tech_.delay_unit();
  }

  Ps arc_delay(const Replica& r, size_t j, uint32_t to_bank) const {
    switch (kind_[j]) {
      case kAltPlus: return pulse_;
      case kAltMinus: return 0;
      case kPred: return qdelay(r, to_bank) + ctrl_;
      default: return ctrl_;
    }
  }

  /// (Re)build the fine-grained arc arrays — one arc per hardware arc of
  /// the per-flip-flop model — with endpoints mapped through main_'s
  /// current clustering. Run at construction (identity clustering) and
  /// when the refinement phase needs per-group arcs back after compaction.
  void rebuild_fine() {
    std::vector<ctl::ProtoArc> arcs = ctl::hardware_arcs(fine_, proto_);
    const size_t m = arcs.size();
    kind_.resize(m);
    tokens_.resize(m);
    ffrom_.resize(m);
    fto_.resize(m);
    group_arcs_.assign(G_, {});
    main_.from.resize(m);
    main_.to.resize(m);
    main_.delay.resize(m);
    main_.incident.assign(G_, {});
    auto mapped_bank = [&](int bank) {
      if (bank >= static_cast<int>(2 * G_)) return static_cast<uint32_t>(bank);
      return 2 * static_cast<uint32_t>(main_.cq.cluster_of(bank / 2)) +
             (static_cast<uint32_t>(bank) & 1);
    };
    for (size_t j = 0; j < m; ++j) {
      const ctl::ProtoArc& a = arcs[j];
      kind_[j] = a.alternation ? (a.from_plus ? kAltPlus : kAltMinus)
                               : (a.pred_side ? kPred : kSucc);
      tokens_[j] = a.marked ? 1 : 0;
      ffrom_[j] = a.from;
      fto_[j] = a.to;
      uint32_t mfb = mapped_bank(a.from);
      uint32_t mtb = mapped_bank(a.to);
      main_.from[j] = 2 * mfb + (a.from_plus ? 0u : 1u);
      main_.to[j] = 2 * mtb + (a.to_plus ? 0u : 1u);
      main_.delay[j] = arc_delay(main_, j, mtb);
      uint32_t last = UINT32_MAX;
      for (int bank : {a.from, a.to}) {
        if (bank < static_cast<int>(2 * G_) &&
            static_cast<uint32_t>(bank) / 2 != last) {
          last = static_cast<uint32_t>(bank) / 2;
          group_arcs_[last].push_back(static_cast<uint32_t>(j));
        }
      }
      last = UINT32_MAX;
      for (uint32_t mb : {mfb, mtb}) {
        if (mb < 2 * G_ && mb / 2 != last) {
          last = mb / 2;
          main_.incident[last].push_back(static_cast<uint32_t>(j));
        }
      }
    }
    main_.node_map.resize(num_nodes_);
    for (uint32_t i = 0; i < num_nodes_; ++i) main_.node_map[i] = i;
    fine_mode_ = true;
    replicas_.clear();
    log_.clear();
    main_.synced = 0;
  }

  /// Deduplicate parallel arcs in place (first-occurrence order, so the
  /// rebuild is deterministic) and remap the warm-start baseline's policy
  /// arcs. Fine-group arc lists die here; ensure_fine() resurrects them.
  void compact() {
    const size_t m = main_.from.size();
    std::unordered_map<uint64_t, uint32_t> seen;
    seen.reserve(m);
    std::vector<uint32_t> arc_map(m);
    std::vector<uint32_t> nfrom, nto;
    std::vector<Ps> ndelay;
    std::vector<uint8_t> nkind;
    std::vector<int32_t> ntokens;
    for (size_t j = 0; j < m; ++j) {
      uint64_t key = (static_cast<uint64_t>(main_.from[j]) << 35) |
                     (static_cast<uint64_t>(main_.to[j]) << 3) |
                     (static_cast<uint64_t>(kind_[j]) << 1) |
                     static_cast<uint64_t>(tokens_[j]);
      auto [it, inserted] =
          seen.try_emplace(key, static_cast<uint32_t>(nfrom.size()));
      arc_map[j] = it->second;
      if (inserted) {
        nfrom.push_back(main_.from[j]);
        nto.push_back(main_.to[j]);
        ndelay.push_back(main_.delay[j]);
        nkind.push_back(kind_[j]);
        ntokens.push_back(tokens_[j]);
      } else {
        // Parallel duplicates carry identical annotations by construction.
        DESYN_ASSERT(ndelay[it->second] == main_.delay[j]);
      }
    }
    main_.from = std::move(nfrom);
    main_.to = std::move(nto);
    main_.delay = std::move(ndelay);
    kind_ = std::move(nkind);
    tokens_ = std::move(ntokens);
    main_.incident.assign(G_, {});
    for (size_t j = 0; j < main_.from.size(); ++j) {
      uint32_t last = UINT32_MAX;
      for (uint32_t trans : {main_.from[j], main_.to[j]}) {
        uint32_t bank = trans >> 1;
        if (bank < 2 * G_ && bank / 2 != last) {
          last = bank / 2;
          main_.incident[last].push_back(static_cast<uint32_t>(j));
        }
      }
    }
    group_arcs_.clear();
    ffrom_.clear();
    fto_.clear();
    fine_mode_ = false;
    ctx_.remap_baseline_arcs(arc_map);
    replicas_.clear();
    log_.clear();
    main_.synced = 0;
    merges_since_compact_ = 0;
  }

  /// The refinement phase moves single fine groups, which needs the
  /// per-group arc structure compaction destroyed; rebuild and re-prime.
  void ensure_fine() {
    if (fine_mode_) return;
    rebuild_fine();
    ctx_.solve(view(main_));  // arc ids changed: one cold re-prime
  }

  pn::McrArcs view(const Replica& r) const {
    return {num_nodes_, r.from, r.to, tokens_, r.delay};
  }

  static uint32_t bank_of(uint32_t trans) { return trans >> 1; }

  /// Apply merge(drop -> keep) to `r`: O(deg) endpoint rewrites on the
  /// dropped cluster's incident arcs, delay re-quantization where the
  /// merged destination's worst-in grew. `journal` records the previous
  /// arc state for undo; committed merges (null journal) also splice the
  /// incident lists.
  void apply_merge(Replica& r, int keep, int drop,
                   std::vector<Patch>* journal) const {
    const Ps qe_old = qdelay(r, 2 * static_cast<uint32_t>(keep));
    const Ps qo_old = qdelay(r, 2 * static_cast<uint32_t>(keep) + 1);
    r.cq.merge(keep, drop);
    const Ps qe = qdelay(r, 2 * static_cast<uint32_t>(keep));
    const Ps qo = qdelay(r, 2 * static_cast<uint32_t>(keep) + 1);
    auto patch = [&](uint32_t j) {
      if (journal) journal->push_back({j, r.from[j], r.to[j], r.delay[j]});
    };
    for (uint32_t j : r.incident[static_cast<size_t>(drop)]) {
      patch(j);
      uint32_t fb = bank_of(r.from[j]);
      if (fb < 2 * G_ && static_cast<int>(fb) / 2 == drop) {
        r.from[j] = 2 * (2 * static_cast<uint32_t>(keep) + (fb & 1)) +
                    (r.from[j] & 1);
      }
      uint32_t tb = bank_of(r.to[j]);
      if (tb < 2 * G_ && static_cast<int>(tb) / 2 == drop) {
        uint32_t nb = 2 * static_cast<uint32_t>(keep) + (tb & 1);
        r.to[j] = 2 * nb + (r.to[j] & 1);
        if (kind_[j] == kPred) r.delay[j] = ((tb & 1) == 0 ? qe : qo) + ctrl_;
      }
    }
    if (qe != qe_old || qo != qo_old) {
      for (uint32_t j : r.incident[static_cast<size_t>(keep)]) {
        if (kind_[j] != kPred) continue;
        uint32_t tb = bank_of(r.to[j]);
        if (tb >= 2 * G_ || static_cast<int>(tb) / 2 != keep) continue;
        patch(j);
        r.delay[j] = ((tb & 1) == 0 ? qe : qo) + ctrl_;
      }
    }
    if (!journal) {
      auto& win = r.incident[static_cast<size_t>(keep)];
      auto& lose = r.incident[static_cast<size_t>(drop)];
      win.insert(win.end(), lose.begin(), lose.end());
      lose.clear();
    }
  }

  /// Apply move(g -> to): g's fine arcs re-point from its donor cluster to
  /// the receiver, both clusters' destinations re-quantize as needed.
  /// Only valid in fine mode (ensure_fine() ran).
  void apply_move(Replica& r, int g, int to, std::vector<Patch>* journal) const {
    DESYN_ASSERT(fine_mode_, "moves need the per-group arc structure");
    const int from_c = r.cq.cluster_of(g);
    const Ps qfe_old = qdelay(r, 2 * static_cast<uint32_t>(from_c));
    const Ps qfo_old = qdelay(r, 2 * static_cast<uint32_t>(from_c) + 1);
    const Ps qte_old = qdelay(r, 2 * static_cast<uint32_t>(to));
    const Ps qto_old = qdelay(r, 2 * static_cast<uint32_t>(to) + 1);
    r.cq.move(g, to);
    const Ps qfe = qdelay(r, 2 * static_cast<uint32_t>(from_c));
    const Ps qfo = qdelay(r, 2 * static_cast<uint32_t>(from_c) + 1);
    const Ps qte = qdelay(r, 2 * static_cast<uint32_t>(to));
    const Ps qto = qdelay(r, 2 * static_cast<uint32_t>(to) + 1);
    auto patch = [&](uint32_t j) {
      if (journal) journal->push_back({j, r.from[j], r.to[j], r.delay[j]});
    };
    for (uint32_t j : group_arcs_[static_cast<size_t>(g)]) {
      patch(j);
      if (ffrom_[j] / 2 == g) {
        uint32_t nb = 2 * static_cast<uint32_t>(to) +
                      (static_cast<uint32_t>(ffrom_[j]) & 1);
        r.from[j] = 2 * nb + (r.from[j] & 1);
      }
      if (fto_[j] / 2 == g) {
        uint32_t nb =
            2 * static_cast<uint32_t>(to) + (static_cast<uint32_t>(fto_[j]) & 1);
        r.to[j] = 2 * nb + (r.to[j] & 1);
        if (kind_[j] == kPred) {
          r.delay[j] = ((static_cast<uint32_t>(fto_[j]) & 1) == 0 ? qte : qto) +
                       ctrl_;
        }
      }
    }
    auto requant = [&](int c, Ps qe, Ps qo, Ps qe_old2, Ps qo_old2) {
      if (qe == qe_old2 && qo == qo_old2) return;
      for (uint32_t j : r.incident[static_cast<size_t>(c)]) {
        if (kind_[j] != kPred) continue;
        uint32_t tb = bank_of(r.to[j]);
        if (tb >= 2 * G_ || static_cast<int>(tb) / 2 != c) continue;
        patch(j);
        r.delay[j] = ((tb & 1) == 0 ? qe : qo) + ctrl_;
      }
    };
    requant(from_c, qfe, qfo, qfe_old, qfo_old);
    requant(to, qte, qto, qte_old, qto_old);
    if (!journal) {
      // Incident-list maintenance: g's arcs leave the donor, join the
      // receiver. Committed moves are rare (one refinement pass), so a
      // filter over the donor's list is fine.
      auto& donor = r.incident[static_cast<size_t>(from_c)];
      auto still = [&](uint32_t j) {
        uint32_t fb = bank_of(r.from[j]);
        uint32_t tb = bank_of(r.to[j]);
        return (fb < 2 * G_ && static_cast<int>(fb) / 2 == from_c) ||
               (tb < 2 * G_ && static_cast<int>(tb) / 2 == from_c);
      };
      donor.erase(std::remove_if(donor.begin(), donor.end(),
                                 [&](uint32_t j) { return !still(j); }),
                  donor.end());
      auto& recv = r.incident[static_cast<size_t>(to)];
      recv.insert(recv.end(), group_arcs_[static_cast<size_t>(g)].begin(),
                  group_arcs_[static_cast<size_t>(g)].end());
    }
  }

  void revert(Replica& r, const std::vector<Patch>& journal) const {
    for (size_t i = journal.size(); i-- > 0;) {
      const Patch& p = journal[i];
      r.from[p.arc] = p.from;
      r.to[p.arc] = p.to;
      r.delay[p.arc] = p.delay;
    }
    r.cq.undo();
  }

  double probe_merge(Replica& r, std::pair<int, int> cand,
                     pn::McrContext::Solution* sol) const {
    const int keep = cand.first, drop = cand.second;
    thread_local std::vector<Patch> journal;
    journal.clear();
    apply_merge(r, keep, drop, &journal);
    for (int s = 0; s < 4; ++s) {
      r.node_map[static_cast<size_t>(4 * drop + s)] =
          static_cast<uint32_t>(4 * keep + s);
    }
    double p = ctx_.probe(view(r), r.node_map, r.scratch).ratio;
    if (sol && p <= limit_) {
      pn::McrContext::export_solution(r.scratch, num_nodes_, sol);
    }
    for (int s = 0; s < 4; ++s) {
      r.node_map[static_cast<size_t>(4 * drop + s)] =
          static_cast<uint32_t>(4 * drop + s);
    }
    revert(r, journal);
    return p;
  }

  void sync(Replica& r) const {
    while (r.synced < log_.size()) {
      const CommitOp& op = log_[r.synced++];
      if (op.is_merge) {
        apply_merge(r, op.a, op.b, nullptr);
      } else {
        apply_move(r, op.a, op.b, nullptr);
      }
    }
  }

  const ctl::ControlGraph& fine_;
  const cell::Tech& tech_;
  int jobs_;
  ctl::Protocol proto_;
  size_t G_ = 0;
  uint32_t num_nodes_ = 0;
  Ps ctrl_ = 0, pulse_ = 0;
  double limit_ = std::numeric_limits<double>::infinity();
  std::vector<uint8_t> kind_;
  std::vector<int32_t> tokens_;
  std::vector<int> ffrom_, fto_;  ///< fine endpoint banks (fine mode)
  std::vector<std::vector<uint32_t>> group_arcs_;  ///< per group (fine mode)
  bool fine_mode_ = true;
  Replica main_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<CommitOp> log_;
  std::vector<Patch> journal_;
  std::vector<std::pair<int, int>> wave_;
  std::vector<pn::McrContext::Solution> wave_sols_;
  pn::McrContext::Solution move_sol_;
  std::pair<int, int> move_key_{-1, -1};
  pn::McrContext ctx_;
  size_t probes_ = 0;
  size_t merges_since_compact_ = 0;
};

// ---------------------------------------------------------------------------
// The shared greedy search
// ---------------------------------------------------------------------------

/// Candidate heap entry; stale entries are recognized by their epoch.
struct HeapEntry {
  int weight;
  uint64_t h;
  int a, b;
  uint32_t epoch;
};
struct HeapCmp {
  bool operator()(const HeapEntry& x, const HeapEntry& y) const {
    if (x.weight != y.weight) return x.weight < y.weight;
    if (x.h != y.h) return x.h > y.h;
    return std::tie(x.a, x.b) > std::tie(y.a, y.b);
  }
};

PartitionOptResult optimize_impl(const nl::Netlist& ff_netlist,
                                 nl::NetId clock, const cell::Tech& tech,
                                 const PartitionOptOptions& opt,
                                 bool incremental) {
  DESYN_ASSERT(opt.period_budget >= 1.0,
               "period budget must be >= 1 (it multiplies the baseline)");
  PartitionOptResult res;
  const Partition perff = Partition::per_flip_flop(ff_netlist);
  const size_t G = perff.num_groups();
  if (G == 0) {
    res.partition = perff;
    return res;
  }

  // One STA pass: the per-flip-flop control graph. Every candidate
  // clustering's graph is a quotient of this one (arrivals are max-plus,
  // so the merged edge delay is exactly the max over member edges) — the
  // optimizer never re-runs timing.
  nl::Netlist latched = ff_netlist;
  const LatchifyResult lr = latchify(latched, clock, perff);
  const AdjacencyResult fine = extract_control_graph(
      latched, lr, clock, tech, opt.margin, opt.protocol);
  DESYN_ASSERT(fine.env_snk == static_cast<int>(2 * G) &&
               fine.env_src == static_cast<int>(2 * G) + 1);

  std::vector<char> merge_ok(G);
  for (size_t g = 0; g < G; ++g) merge_ok[g] = perff.groups()[g].ram ? 0 : 1;

  std::unique_ptr<Evaluator> ev;
  if (incremental) {
    ev = std::make_unique<IncrementalEvaluator>(fine.cg, merge_ok,
                                                opt.protocol, tech, opt.jobs);
  } else {
    ev = std::make_unique<ReferenceEvaluator>(fine.cg, merge_ok,
                                              opt.protocol, tech);
  }

  res.perff_period = ev->initial_period();
  res.perff_cost = synthesis_cost(fine.cg, opt.protocol, tech);
  {
    nl::Netlist l2 = ff_netlist;
    const LatchifyResult lr2 =
        latchify(l2, clock, Partition::prefix(ff_netlist));
    res.baseline_period = predicted_period(
        extract_control_graph(l2, lr2, clock, tech, opt.margin, opt.protocol)
            .cg,
        opt.protocol, tech);
  }
  // Coarsening only adds rendezvous, so merged periods are never below the
  // per-flip-flop start; measuring the budget against the larger of the
  // two baselines keeps the limit reachable.
  const double limit =
      opt.period_budget * std::max(res.baseline_period, res.perff_period);
  const double eps = 1e-6;
  ev->set_limit(limit + eps);

  // The committed clustering, owned and advanced by the evaluator; labels
  // stay the smallest fine-group index, so the tie-break hash and the
  // bound cache are stable.
  const IncrementalQuotient& cq = ev->clusters();

  // ---- initial candidate weights -----------------------------------------
  // Co-occurrence mass over the *fine* graph: +1 per direct fine edge
  // between two groups, +1 per fine bank with edges to (from) both groups
  // on the same side. Additive under merging — W(a∪b, x) = W(a,x) +
  // W(b,x) — which is what lets the rank structure update in O(deg) per
  // commit instead of a full O(V+E) rescan per round. A flat sorted-vector
  // pass; the old per-round std::map rescan is gone.
  std::vector<uint64_t> raw;
  {
    const size_t B = fine.cg.num_banks();
    std::vector<std::vector<int>> succs(B), preds(B);
    auto group_of_bank = [&](int bank) {
      return bank < static_cast<int>(2 * G) ? bank / 2 : -1;
    };
    for (const auto& e : fine.cg.edges()) {
      int gf = group_of_bank(e.from), gt = group_of_bank(e.to);
      bool mf = gf >= 0 && merge_ok[static_cast<size_t>(gf)];
      bool mt = gt >= 0 && merge_ok[static_cast<size_t>(gt)];
      if (mf && mt && gf != gt) {
        raw.push_back(pair_key(std::min(gf, gt), std::max(gf, gt)));
      }
      if (mt) succs[static_cast<size_t>(e.from)].push_back(gt);
      if (mf) preds[static_cast<size_t>(e.to)].push_back(gf);
    }
    for (auto* side : {&succs, &preds}) {
      for (auto& v : *side) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        for (size_t i = 0; i < v.size(); ++i) {
          for (size_t j = i + 1; j < v.size(); ++j) {
            raw.push_back(pair_key(v[i], v[j]));
          }
        }
      }
    }
  }
  std::sort(raw.begin(), raw.end());

  struct PairInfo {
    int weight = 0;
    uint32_t epoch = 0;
  };
  std::unordered_map<uint64_t, PairInfo> pairs;
  std::unordered_map<uint64_t, double> bounds;
  std::vector<std::vector<int>> partners(G);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap;
  auto push_entry = [&](int a, int b, const PairInfo& pi) {
    heap.push({pi.weight,
               mix(opt.seed ^ pair_key(a, b)), a, b, pi.epoch});
  };
  for (size_t i = 0; i < raw.size();) {
    size_t j = i;
    while (j < raw.size() && raw[j] == raw[i]) ++j;
    int a = static_cast<int>(raw[i] >> 32);
    int b = static_cast<int>(raw[i] & 0xffffffffu);
    PairInfo pi{static_cast<int>(j - i), 0};
    pairs.emplace(raw[i], pi);
    partners[static_cast<size_t>(a)].push_back(b);
    partners[static_cast<size_t>(b)].push_back(a);
    push_entry(a, b, pi);
    i = j;
  }
  raw.clear();
  raw.shrink_to_fit();

  // ---- greedy merge waves -------------------------------------------------
  // Pop candidates in rank order; score a wave of them against the current
  // committed clustering (in parallel for the incremental evaluator);
  // commit the first in-budget candidate of the wave. A failed candidate's
  // ratio is a *monotone lower bound* — any later state is coarser and
  // coarsening only adds rendezvous — so it rejects the pair solve-free
  // forever after, surviving label folds by max-transfer. Wave size starts
  // at 1 (the top candidate usually passes) and doubles while a whole wave
  // fails, so the fail-heavy endgame is what actually fans out. Wave
  // composition depends only on committed history: byte-identical results
  // for any job count.
  size_t wave_cap = 1;
  std::vector<std::pair<int, int>> wave;
  std::vector<double> periods;
  std::vector<uint32_t> wave_epochs;
  for (;;) {
    if (opt.max_merges && res.merges >= static_cast<int>(opt.max_merges)) {
      break;
    }
    wave.clear();
    wave_epochs.clear();
    while (wave.size() < wave_cap && !heap.empty()) {
      HeapEntry e = heap.top();
      heap.pop();
      auto it = pairs.find(pair_key(e.a, e.b));
      if (it == pairs.end() || it->second.epoch != e.epoch) continue;  // stale
      ++res.stats.candidates;
      // The oracle deliberately skips bound pruning: it re-solves pruned
      // candidates cold, so an invalid bound would make the two searches
      // commit different merges and fail the equivalence tests.
      if (incremental) {
        auto bi = bounds.find(pair_key(e.a, e.b));
        if (bi != bounds.end() && bi->second > limit + eps) {
          ++res.stats.pruned;
          continue;  // permanently over budget: monotone bound
        }
      }
      wave.push_back({e.a, e.b});
      wave_epochs.push_back(e.epoch);
    }
    if (wave.empty()) break;
    ++res.stats.waves;
    periods.resize(wave.size());
    ev->probe_merges(wave, periods);
    size_t win = wave.size();
    for (size_t i = 0; i < wave.size(); ++i) {
      uint64_t k = pair_key(wave[i].first, wave[i].second);
      double& bd = bounds[k];
      bd = std::max(bd, periods[i]);
      if (win == wave.size() && periods[i] <= limit + eps) win = i;
    }
    if (win == wave.size()) {
      wave_cap = std::min<size_t>(32, wave_cap * 2);
      continue;
    }
    // Candidates ranked after the winner stay in play: re-arm their heap
    // entries (their just-solved ratios remain valid bounds).
    for (size_t i = win + 1; i < wave.size(); ++i) {
      auto it = pairs.find(pair_key(wave[i].first, wave[i].second));
      if (it == pairs.end()) continue;
      ++it->second.epoch;
      push_entry(wave[i].first, wave[i].second, it->second);
    }
    const int a = wave[win].first, b = wave[win].second;
    ev->commit_merge(a, b);
    ++res.merges;
    wave_cap = 1;
    // Fold b's rank structure into a: weights add, bounds max-transfer
    // (merging a∪b with x is coarser than merging b with x was, so b's
    // bound still holds).
    for (int x : partners[static_cast<size_t>(b)]) {
      uint64_t kbx = pair_key(std::min(b, x), std::max(b, x));
      auto it = pairs.find(kbx);
      if (it == pairs.end()) continue;
      int w = it->second.weight;
      pairs.erase(it);
      auto bx = bounds.find(kbx);
      double bound = bx != bounds.end() ? bx->second : 0.0;
      if (bx != bounds.end()) bounds.erase(bx);
      if (x == a) continue;  // the committed pair itself
      uint64_t kax = pair_key(std::min(a, x), std::max(a, x));
      if (bound > 0) {
        double& bd = bounds[kax];
        bd = std::max(bd, bound);
      }
      auto [pit, fresh] = pairs.try_emplace(kax);
      pit->second.weight += w;
      ++pit->second.epoch;
      push_entry(std::min(a, x), std::max(a, x), pit->second);
      if (fresh) {
        // An existing (a,x) already has the partner links; only a pair
        // born from the fold needs them.
        partners[static_cast<size_t>(a)].push_back(x);
        partners[static_cast<size_t>(x)].push_back(a);
      }
    }
    partners[static_cast<size_t>(b)].clear();
  }

  // ---- refinement phase ---------------------------------------------------
  // Single-group moves between adjacent clusters that strictly reduce the
  // synthesized gate cost while staying inside the budget. One pass, in
  // fine-group order: bounded and deterministic. (Moves are not monotone,
  // so no bound caching here.)
  if (opt.refine) {
    std::vector<std::vector<int>> nbr_banks(G);
    for (const auto& e : fine.cg.edges()) {
      if (e.from < static_cast<int>(2 * G)) {
        nbr_banks[static_cast<size_t>(e.from) / 2].push_back(e.to);
      }
      if (e.to < static_cast<int>(2 * G)) {
        nbr_banks[static_cast<size_t>(e.to) / 2].push_back(e.from);
      }
    }
    size_t cur_cost = synthesis_cost(ev->quotient(), opt.protocol, tech);
    for (size_t g = 0; g < G; ++g) {
      int c = cq.cluster_of(static_cast<int>(g));
      if (!cq.mergeable(c) || cq.members(c).size() < 2) continue;
      std::vector<int> targets;
      for (int nb : nbr_banks[g]) {
        if (nb >= static_cast<int>(2 * G)) continue;  // env
        int other = cq.cluster_of(nb / 2);
        if (other != c && cq.mergeable(other)) targets.push_back(other);
      }
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
      for (int t : targets) {
        ++res.stats.candidates;
        if (ev->probe_move_period(static_cast<int>(g), t) > limit + eps) {
          continue;
        }
        size_t cost = ev->probe_move_cost(static_cast<int>(g), t);
        if (cost >= cur_cost) continue;
        ev->commit_move(static_cast<int>(g), t);
        cur_cost = cost;
        ++res.moves;
        break;
      }
    }
  }

  // ---- wrap up ------------------------------------------------------------
  std::vector<std::vector<nl::CellId>> out;
  for (size_t c = 0; c < G; ++c) {
    if (!cq.live(static_cast<int>(c)) || !cq.mergeable(static_cast<int>(c))) {
      continue;  // RAMs auto-append
    }
    std::vector<nl::CellId> cells;
    for (int g : cq.members(static_cast<int>(c))) {
      cells.push_back(perff.groups()[static_cast<size_t>(g)].cells[0]);
    }
    out.push_back(std::move(cells));
  }
  res.partition = Partition::from_groups(ff_netlist, std::move(out));
  ctl::ControlGraph final_q = ev->quotient();
  res.period = predicted_period(final_q, opt.protocol, tech);
  res.cost = synthesis_cost(final_q, opt.protocol, tech);
  res.stats.warm_solves = ev->warm_solves();
  res.stats.cold_solves = ev->cold_solves();
  res.evaluations = res.stats.warm_solves + res.stats.cold_solves;
  return res;
}

}  // namespace

PartitionOptResult optimize_partition(const nl::Netlist& ff_netlist,
                                      nl::NetId clock, const cell::Tech& tech,
                                      const PartitionOptOptions& opt) {
  return optimize_impl(ff_netlist, clock, tech, opt, /*incremental=*/true);
}

PartitionOptResult optimize_partition_reference(
    const nl::Netlist& ff_netlist, nl::NetId clock, const cell::Tech& tech,
    const PartitionOptOptions& opt) {
  return optimize_impl(ff_netlist, clock, tech, opt, /*incremental=*/false);
}


}  // namespace desyn::flow
