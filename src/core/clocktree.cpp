#include "core/clocktree.h"

namespace desyn::flow {

ClockTree build_clock_tree(nl::Netlist& nl, nl::NetId clock,
                           const cell::Tech& tech, int max_fanout) {
  DESYN_ASSERT(max_fanout >= 2);
  ClockTree tree;
  // Current sink pins (copied: rewiring mutates the fanout list).
  std::vector<nl::Pin> sinks = nl.net(clock).fanout;
  if (sinks.empty()) return tree;

  // Build bottom-up: chunk sinks under leaf buffers, then chunk buffer
  // inputs under the next level, until one level fits under the root. Each
  // round creates buffers whose input pins become the next consumers.
  std::vector<nl::Pin> consumers = sinks;
  while (static_cast<int>(consumers.size()) > max_fanout) {
    std::vector<nl::Pin> next;
    for (size_t i = 0; i < consumers.size(); i += max_fanout) {
      size_t n = std::min<size_t>(max_fanout, consumers.size() - i);
      nl::NetId out = nl.add_net(cat("clktree.l", tree.levels, "_", i / max_fanout));
      nl::CellId buf = nl.add_cell(cell::Kind::Buf,
                                   cat("clkbuf.l", tree.levels, "_", i / max_fanout),
                                   {clock}, {out});
      // Temporarily driven by `clock`; re-pointed when the upper level forms.
      for (size_t k = 0; k < n; ++k) {
        nl.rewire_input(consumers[i + k].cell, consumers[i + k].index, out);
      }
      tree.buffers.push_back(buf);
      tree.nets.push_back(out);
      next.push_back(nl::Pin{buf, 0});
    }
    consumers = std::move(next);
    ++tree.levels;
  }
  // Remaining consumers hang directly off the clock input.
  tree.nets.push_back(clock);
  // Insertion delay: every sink sits under `levels` buffers.
  Ps per_buf = tech.delay(cell::Kind::Buf, 1, max_fanout);
  tree.insertion_delay = per_buf * tree.levels;
  return tree;
}

}  // namespace desyn::flow
