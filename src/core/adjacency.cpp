#include "core/adjacency.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sta/sta.h"

namespace desyn::flow {

namespace {

Ps with_margin(Ps delay, double margin) {
  return static_cast<Ps>(std::ceil(static_cast<double>(delay) * margin));
}

/// Shared machinery of full and ECO extraction: the STA, the
/// capture-endpoint watcher index, and the one-propagation-per-source-bank
/// destination aggregation. The ECO path reruns propagate_bank() for the
/// affected sources only, so everything a propagation needs lives here.
struct Extractor {
  const nl::Netlist& nl;
  const LatchifyResult& lr;
  const cell::Tech& tech;
  sta::Sta sta;
  /// Capture-endpoint index: the banks whose member data pins watch each
  /// net. With it, one sparse propagation aggregates destinations in
  /// O(touched nets) — per-flip-flop extraction runs one propagation per
  /// bank, and the old dense dest scan was O(banks^2 * member cells).
  std::vector<std::vector<int>> watchers;
  sta::Sta::SparseScratch scratch;
  std::vector<Ps> dest_worst;
  std::vector<int> dests;
  std::vector<sta::Source> sources;

  Extractor(const nl::Netlist& n, const LatchifyResult& l,
            const cell::Tech& t)
      : nl(n), lr(l), tech(t), sta(n, t) {
    watchers.assign(nl.num_nets(), {});
    for (size_t d = 0; d < lr.banks.size(); ++d) {
      const Bank& b = lr.banks[d];
      auto watch = [&](nl::CellId c) {
        const nl::CellData& cd = nl.cell(c);
        for (size_t i = 0; i < cd.ins.size(); ++i) {
          if (!sta::Sta::data_endpoint_pin(cd, i)) continue;
          auto& w = watchers[cd.ins[i].value()];
          if (w.empty() || w.back() != static_cast<int>(d)) {
            w.push_back(static_cast<int>(d));
          }
        }
      };
      for (nl::CellId c : b.latches) watch(c);
      for (nl::CellId c : b.rams) watch(c);
    }
    dest_worst.assign(lr.banks.size(), sta::kUnreached);
  }

  Ps setup_of(int bank) const {
    const Bank& b = lr.banks[static_cast<size_t>(bank)];
    return b.rams.empty() ? tech.latch_setup() : tech.dff_setup();
  }

  /// Worst data-pin arrival per reached bank under the scratch's map;
  /// restores its own state, leaves `dests` sorted for deterministic edge
  /// order (the order the dense scan produced).
  template <typename Emit>
  void collect_dests(int src_bank, Emit&& emit) {
    for (nl::NetId n : scratch.touched) {
      Ps a = scratch.arr[n.value()];
      for (int d : watchers[n.value()]) {
        if (d == src_bank) continue;
        if (dest_worst[static_cast<size_t>(d)] == sta::kUnreached) {
          dests.push_back(d);
        }
        dest_worst[static_cast<size_t>(d)] =
            std::max(dest_worst[static_cast<size_t>(d)], a);
      }
    }
    std::sort(dests.begin(), dests.end());
    for (int d : dests) {
      emit(d, dest_worst[static_cast<size_t>(d)]);
      dest_worst[static_cast<size_t>(d)] = sta::kUnreached;
    }
    dests.clear();
  }

  /// One arrival propagation from bank `s`'s launch points. Calls
  /// emit(dest_bank, worst_data_arrival) per reached destination in sorted
  /// order; returns the worst primary-output arrival (kUnreached when no
  /// PO is reached or the bank has no launch nets).
  template <typename Emit>
  Ps propagate_bank(size_t s, Emit&& emit) {
    const Bank& src = lr.banks[s];
    sources.clear();
    for (nl::CellId c : src.latches) {
      // Launch at the latch's propagation delay (enable -> Q).
      sources.push_back({nl.cell(c).outs[0], sta.cell_delay(c)});
    }
    for (nl::CellId c : src.rams) {
      // Read data launches at the RAM access time (relative to the write
      // pulse of this odd bank).
      for (nl::NetId rd : nl.cell(c).outs) {
        sources.push_back({rd, sta.cell_delay(c)});
      }
    }
    if (sources.empty()) return sta::kUnreached;
    sta.arrivals_sparse(sources, scratch);
    collect_dests(static_cast<int>(s), emit);
    // Primary outputs observed by the environment sink.
    Ps po = sta::kUnreached;
    for (nl::NetId out : nl.outputs()) {
      po = std::max(po, scratch.arr[out.value()]);
    }
    scratch.reset();
    return po;
  }

  /// One propagation from all non-clock primary inputs (the env_src
  /// launch). No-op when the design has none.
  template <typename Emit>
  void propagate_pis(nl::NetId clock, Emit&& emit) {
    sources.clear();
    for (nl::NetId in : nl.inputs()) {
      if (in == clock) continue;
      sources.push_back({in, 0});
    }
    if (sources.empty()) return;
    sta.arrivals_sparse(sources, scratch);
    collect_dests(-1, emit);
    scratch.reset();
  }
};

}  // namespace

AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech,
                                      const Margins& margins,
                                      ctl::Protocol protocol) {
  AdjacencyResult res;
  for (const Bank& b : lr.banks) res.cg.add_bank(b.name, b.even);
  res.env_snk = res.cg.add_bank("env_snk", true);
  res.env_src = res.cg.add_bank("env_src", false);

  Extractor ex(nl, lr, tech);

  // One arrival propagation per source bank. The margin is looked up per
  // *destination* bank: every matched delay protects the capture at its
  // endpoint, which is where optimize_margins shaves slack.
  for (size_t s = 0; s < lr.banks.size(); ++s) {
    Ps po = ex.propagate_bank(s, [&](int d, Ps a) {
      res.cg.add_edge(static_cast<int>(s), d,
                      with_margin(a + ex.setup_of(d), margins.of(d)));
    });
    if (po != sta::kUnreached && !lr.banks[s].even) {
      res.cg.add_edge(static_cast<int>(s), res.env_snk,
                      with_margin(po, margins.of(res.env_snk)));
    }
  }

  // Primary inputs: one propagation from all non-clock PIs.
  ex.propagate_pis(clock, [&](int d, Ps a) {
    res.cg.add_edge(res.env_src, d,
                    with_margin(a + ex.setup_of(d), margins.of(d)));
  });
  res.cg.add_edge(res.env_snk, res.env_src, 0);

  // Read-before-write ordering: a RAM's write pulse (odd bank) must follow
  // the captures of every bank that consumes its read data. Synchronous
  // circuits get this for free from edge-triggered simultaneity (the
  // capturing edge samples the pre-write value); the pulse protocol needs
  // the explicit reverse edge reader -> writer.
  {
    std::vector<std::pair<int, int>> ordering;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.from != static_cast<int>(s)) continue;
        if (e.to >= static_cast<int>(lr.banks.size())) continue;  // env
        if (!lr.banks[static_cast<size_t>(e.to)].even) continue;
        ordering.push_back({e.to, static_cast<int>(s)});
      }
    }
    for (auto [reader, writer] : ordering) {
      res.cg.add_edge(reader, writer, 0);
    }
  }

  // Command stability for the fully-decoupled protocol: a RAM commits its
  // write on the writer bank's opening (writer+), and the command pins are
  // held by master latches in other even banks. Lockstep and semi-decoupled
  // order writer+ after those masters' captures through their own arcs
  // (a- -> b- resp. a- -> b+); fully-decoupled has neither, so close the
  // loop explicitly with a writer -> command-source edge, whose b- -> a+
  // successor arc is exactly "commit only after every command source
  // captured".
  if (protocol == ctl::Protocol::FullyDecoupled) {
    std::vector<std::pair<int, int>> closures;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.to != static_cast<int>(s)) continue;
        if (e.from >= static_cast<int>(lr.banks.size())) continue;  // env
        closures.push_back({static_cast<int>(s), e.from});
      }
    }
    for (auto [writer, cmd_src] : closures) {
      res.cg.add_edge(writer, cmd_src, 0);
    }
  }

  // Banks without a predecessor or successor park on the environment so the
  // controller network stays connected (e.g. registers whose outputs are
  // unobservable).
  for (size_t i = 0; i < lr.banks.size(); ++i) {
    int bank = static_cast<int>(i);
    if (res.cg.preds(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(res.env_src, bank, 0);
      } else {
        res.cg.add_edge(res.env_snk, bank, 0);
      }
    }
    if (res.cg.succs(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(bank, res.env_src, 0);
      } else {
        res.cg.add_edge(bank, res.env_snk, 0);
      }
    }
  }
  res.cg.validate();
  return res;
}

AdjacencyResult extract_control_graph_eco(
    const nl::Netlist& nl, const LatchifyResult& lr, nl::NetId clock,
    const cell::Tech& tech, const Margins& margins, ctl::Protocol protocol,
    const AdjacencyResult& prev, std::span<const nl::CellId> changed,
    size_t* banks_recomputed) {
  (void)protocol;  // encoded in prev's ordering edges, which are copied
  const size_t nbanks = lr.banks.size();
  DESYN_ASSERT(prev.cg.num_banks() == nbanks + 2,
               "eco: prev built from a different partition");

  // Affected sources: walk *upstream* from the changed cells through
  // everything the STA propagates through (combinational cells, CElem/Gc,
  // the RAM/ROM read path). A storage cell reached on the walk launches
  // paths into the changed logic, so its bank's outgoing delays may move;
  // a primary input reached means the env_src propagation may move. Over-
  // approximation is safe (extra recomputation), under-approximation is a
  // correctness bug — so only latches/FFs stop the walk.
  std::vector<int> bank_of(nl.num_cells(), -1);
  for (size_t b = 0; b < nbanks; ++b) {
    for (nl::CellId c : lr.banks[b].latches) {
      bank_of[c.value()] = static_cast<int>(b);
    }
    for (nl::CellId c : lr.banks[b].rams) {
      bank_of[c.value()] = static_cast<int>(b);
    }
  }
  std::vector<char> affected(nbanks, 0);
  bool env_affected = false;
  std::vector<char> seen(nl.num_cells(), 0);
  std::vector<nl::CellId> work;
  auto enter = [&](nl::CellId c) {
    if (!seen[c.value()]) {
      seen[c.value()] = 1;
      work.push_back(c);
    }
  };
  for (nl::CellId c : changed) enter(c);
  while (!work.empty()) {
    nl::CellId c = work.back();
    work.pop_back();
    const nl::CellData& cd = nl.cell(c);
    if (cd.dead) continue;
    if (bank_of[c.value()] >= 0) affected[static_cast<size_t>(bank_of[c.value()])] = 1;
    if (cell::is_latch(cd.kind) || cd.kind == cell::Kind::Dff) continue;
    for (nl::NetId in : cd.ins) {
      const nl::NetData& nd = nl.net(in);
      if (!nd.driver.valid()) {
        env_affected = true;  // primary input (or undriven) in the cone
      } else {
        enter(nd.driver);
      }
    }
  }

  AdjacencyResult res;
  for (const Bank& b : lr.banks) res.cg.add_bank(b.name, b.even);
  res.env_snk = res.cg.add_bank("env_snk", true);
  res.env_src = res.cg.add_bank("env_src", false);
  DESYN_ASSERT(res.env_snk == prev.env_snk && res.env_src == prev.env_src);

  // Re-time the affected sources' outgoing edges.
  Extractor ex(nl, lr, tech);
  std::unordered_map<uint64_t, Ps> fresh;
  auto key = [](int f, int t) {
    return static_cast<uint64_t>(static_cast<uint32_t>(f)) << 32 |
           static_cast<uint32_t>(t);
  };
  size_t ran = 0;
  for (size_t s = 0; s < nbanks; ++s) {
    if (!affected[s]) continue;
    ++ran;
    Ps po = ex.propagate_bank(s, [&](int d, Ps a) {
      fresh[key(static_cast<int>(s), d)] =
          with_margin(a + ex.setup_of(d), margins.of(d));
    });
    if (po != sta::kUnreached && !lr.banks[s].even) {
      fresh[key(static_cast<int>(s), res.env_snk)] =
          with_margin(po, margins.of(res.env_snk));
    }
  }
  if (env_affected) {
    ex.propagate_pis(clock, [&](int d, Ps a) {
      fresh[key(res.env_src, d)] =
          with_margin(a + ex.setup_of(d), margins.of(d));
    });
  }
  if (banks_recomputed) *banks_recomputed = ran + (env_affected ? 1 : 0);

  // Replay the previous edge list in order. Identical structure means
  // identical reachability, so the full extraction would produce exactly
  // this edge set in exactly this order; only delays of re-timed sources
  // substitute. STA-sized delays are strictly positive (launch delay or
  // setup, margined), pure ordering/parking edges are 0 — the assert
  // catches a re-timed source whose timed edge the propagation missed.
  size_t used = 0;
  for (const auto& e : prev.cg.edges()) {
    Ps d = e.matched_delay;
    auto it = fresh.find(key(e.from, e.to));
    if (it != fresh.end()) {
      d = it->second;
      ++used;
    } else {
      bool retimed_src =
          e.from < static_cast<int>(nbanks)
              ? affected[static_cast<size_t>(e.from)] != 0
              : (e.from == res.env_src && env_affected);
      DESYN_ASSERT(!(retimed_src && e.matched_delay > 0),
                   "eco: timed edge of a re-timed source not re-timed "
                   "(structure changed?)");
    }
    res.cg.add_edge(e.from, e.to, d);
  }
  DESYN_ASSERT(used == fresh.size(),
               "eco: re-timed a pair the previous graph lacks "
               "(structure changed?)");
  res.cg.validate();
  return res;
}

ctl::ControlGraph quotient_control_graph(
    const ctl::ControlGraph& fine, std::span<const int> bank_map,
    std::span<const ctl::ControlGraph::Bank> banks) {
  DESYN_ASSERT(bank_map.size() == fine.num_banks());
  ctl::ControlGraph q;
  for (const ctl::ControlGraph::Bank& b : banks) q.add_bank(b.name, b.even);
  for (const ctl::ControlGraph::Edge& e : fine.edges()) {
    // add_edge merges duplicates keeping the larger delay: the quotient of
    // the max-plus arrival data is the max over member edges.
    q.add_edge(bank_map[static_cast<size_t>(e.from)],
               bank_map[static_cast<size_t>(e.to)], e.matched_delay);
  }
  q.validate();
  return q;
}

// ---------------------------------------------------------------------------
// IncrementalQuotient
// ---------------------------------------------------------------------------

IncrementalQuotient::IncrementalQuotient(const ctl::ControlGraph& fine,
                                         std::vector<char> mergeable)
    : fine_(fine), mergeable_(std::move(mergeable)) {
  G_ = mergeable_.size();
  live_ = G_;
  DESYN_ASSERT(fine.num_banks() == 2 * G_ + 2,
               "per-flip-flop layout: bank pair per group plus the env pair");
  cluster_.resize(G_);
  members_.resize(G_);
  for (size_t g = 0; g < G_; ++g) {
    cluster_[g] = static_cast<int>(g);
    members_[g] = {static_cast<int>(g)};
  }
  // Per-destination worst-in over the fine edges; a cluster bank's worst is
  // the max over its member banks' (the source of an edge never matters).
  fine_wi_.assign(fine.num_banks(), 0);
  for (const ctl::ControlGraph::Edge& e : fine.edges()) {
    Ps& w = fine_wi_[static_cast<size_t>(e.to)];
    w = std::max(w, e.matched_delay);
  }
  wi_.resize(2 * G_);
  for (size_t g = 0; g < G_; ++g) {
    wi_[2 * g] = fine_wi_[2 * g];          // even/master bank
    wi_[2 * g + 1] = fine_wi_[2 * g + 1];  // odd/slave bank
  }
}

void IncrementalQuotient::merge(int keep, int drop) {
  DESYN_ASSERT(keep != drop && live(keep) && live(drop));
  DESYN_ASSERT(mergeable(keep) && mergeable(drop));
  Delta d;
  d.is_merge = true;
  d.a = keep;
  d.b = drop;
  d.keep_size = members_[static_cast<size_t>(keep)].size();
  d.old_wi[0] = wi_[2 * static_cast<size_t>(keep)];
  d.old_wi[1] = wi_[2 * static_cast<size_t>(keep) + 1];
  auto& win = members_[static_cast<size_t>(keep)];
  auto& lose = members_[static_cast<size_t>(drop)];
  for (int g : lose) cluster_[static_cast<size_t>(g)] = keep;
  win.insert(win.end(), lose.begin(), lose.end());
  lose.clear();
  wi_[2 * static_cast<size_t>(keep)] =
      std::max(d.old_wi[0], wi_[2 * static_cast<size_t>(drop)]);
  wi_[2 * static_cast<size_t>(keep) + 1] =
      std::max(d.old_wi[1], wi_[2 * static_cast<size_t>(drop) + 1]);
  --live_;
  log_.push_back(d);
}

void IncrementalQuotient::move(int g, int to) {
  int from = cluster_[static_cast<size_t>(g)];
  DESYN_ASSERT(from != to && live(to));
  DESYN_ASSERT(mergeable(from) && mergeable(to));
  auto& donor = members_[static_cast<size_t>(from)];
  DESYN_ASSERT(donor.size() >= 2, "a move may not empty the donor cluster");
  Delta d;
  d.is_merge = false;
  d.a = g;
  d.b = to;
  d.from = from;
  d.old_wi[0] = wi_[2 * static_cast<size_t>(from)];
  d.old_wi[1] = wi_[2 * static_cast<size_t>(from) + 1];
  d.old_wi[2] = wi_[2 * static_cast<size_t>(to)];
  d.old_wi[3] = wi_[2 * static_cast<size_t>(to) + 1];
  auto it = std::find(donor.begin(), donor.end(), g);
  DESYN_ASSERT(it != donor.end());
  d.member_idx = static_cast<size_t>(it - donor.begin());
  donor.erase(it);
  members_[static_cast<size_t>(to)].push_back(g);
  cluster_[static_cast<size_t>(g)] = to;
  // Donor loses a max contributor: recompute from its member banks. The
  // receiver only gains one: max-combine.
  Ps we = 0, wo = 0;
  for (int m : donor) {
    we = std::max(we, fine_wi_[2 * static_cast<size_t>(m)]);
    wo = std::max(wo, fine_wi_[2 * static_cast<size_t>(m) + 1]);
  }
  wi_[2 * static_cast<size_t>(from)] = we;
  wi_[2 * static_cast<size_t>(from) + 1] = wo;
  wi_[2 * static_cast<size_t>(to)] =
      std::max(d.old_wi[2], fine_wi_[2 * static_cast<size_t>(g)]);
  wi_[2 * static_cast<size_t>(to) + 1] =
      std::max(d.old_wi[3], fine_wi_[2 * static_cast<size_t>(g) + 1]);
  log_.push_back(d);
}

void IncrementalQuotient::undo() {
  DESYN_ASSERT(!log_.empty(), "undo() without a pending delta");
  Delta d = log_.back();
  log_.pop_back();
  if (d.is_merge) {
    auto& win = members_[static_cast<size_t>(d.a)];
    auto& lose = members_[static_cast<size_t>(d.b)];
    DESYN_ASSERT(lose.empty() && win.size() > d.keep_size);
    lose.assign(win.begin() + static_cast<ptrdiff_t>(d.keep_size), win.end());
    win.resize(d.keep_size);
    for (int g : lose) cluster_[static_cast<size_t>(g)] = d.b;
    wi_[2 * static_cast<size_t>(d.a)] = d.old_wi[0];
    wi_[2 * static_cast<size_t>(d.a) + 1] = d.old_wi[1];
    ++live_;
  } else {
    auto& donor = members_[static_cast<size_t>(d.from)];
    auto& recv = members_[static_cast<size_t>(d.b)];
    DESYN_ASSERT(!recv.empty() && recv.back() == d.a);
    recv.pop_back();
    donor.insert(donor.begin() + static_cast<ptrdiff_t>(d.member_idx), d.a);
    cluster_[static_cast<size_t>(d.a)] = d.from;
    wi_[2 * static_cast<size_t>(d.from)] = d.old_wi[0];
    wi_[2 * static_cast<size_t>(d.from) + 1] = d.old_wi[1];
    wi_[2 * static_cast<size_t>(d.b)] = d.old_wi[2];
    wi_[2 * static_cast<size_t>(d.b) + 1] = d.old_wi[3];
  }
}

std::vector<int> IncrementalQuotient::bank_map(
    std::vector<ctl::ControlGraph::Bank>* banks) const {
  std::vector<int> qidx(G_, -1);
  int nq = 0;
  if (banks) banks->clear();
  for (size_t g = 0; g < G_; ++g) {
    int c = cluster_[g];
    if (qidx[static_cast<size_t>(c)] < 0) {
      qidx[static_cast<size_t>(c)] = nq++;
      if (banks) {
        banks->push_back({cat("q", nq - 1, ".m"), true});
        banks->push_back({cat("q", nq - 1, ".s"), false});
      }
    }
  }
  if (banks) {
    banks->push_back({"env_snk", true});
    banks->push_back({"env_src", false});
  }
  std::vector<int> map(fine_.num_banks());
  for (size_t g = 0; g < G_; ++g) {
    int q = qidx[static_cast<size_t>(cluster_[g])];
    map[2 * g] = 2 * q;
    map[2 * g + 1] = 2 * q + 1;
  }
  map[2 * G_] = 2 * nq;      // env_snk
  map[2 * G_ + 1] = 2 * nq + 1;  // env_src
  return map;
}

ctl::ControlGraph IncrementalQuotient::materialize() const {
  std::vector<ctl::ControlGraph::Bank> banks;
  std::vector<int> map = bank_map(&banks);
  return quotient_control_graph(fine_, map, banks);
}

}  // namespace desyn::flow
