#include "core/adjacency.h"

#include <cmath>

#include "sta/sta.h"

namespace desyn::flow {

namespace {

Ps with_margin(Ps delay, double margin) {
  return static_cast<Ps>(std::ceil(static_cast<double>(delay) * margin));
}

}  // namespace

AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech, double margin,
                                      ctl::Protocol protocol) {
  AdjacencyResult res;
  for (const Bank& b : lr.banks) res.cg.add_bank(b.name, b.even);
  res.env_snk = res.cg.add_bank("env_snk", true);
  res.env_src = res.cg.add_bank("env_src", false);

  sta::Sta sta(nl, tech);

  // Destination endpoints per bank: worst arrival over member data pins.
  auto dest_arrival = [&](const std::vector<Ps>& arr, int bank) -> Ps {
    const Bank& b = lr.banks[static_cast<size_t>(bank)];
    Ps worst = sta::kUnreached;
    for (nl::CellId c : b.latches) {
      worst = std::max(worst, sta.storage_input_arrival(arr, c));
    }
    for (nl::CellId c : b.rams) {
      worst = std::max(worst, sta.storage_input_arrival(arr, c));
    }
    return worst;
  };
  auto setup_of = [&](int bank) {
    const Bank& b = lr.banks[static_cast<size_t>(bank)];
    return b.rams.empty() ? tech.latch_setup() : tech.dff_setup();
  };

  // One arrival propagation per source bank.
  for (size_t s = 0; s < lr.banks.size(); ++s) {
    const Bank& src = lr.banks[s];
    std::vector<sta::Source> sources;
    for (nl::CellId c : src.latches) {
      // Launch at the latch's propagation delay (enable -> Q).
      sources.push_back({nl.cell(c).outs[0], sta.cell_delay(c)});
    }
    for (nl::CellId c : src.rams) {
      // Read data launches at the RAM access time (relative to the write
      // pulse of this odd bank).
      for (nl::NetId rd : nl.cell(c).outs) {
        sources.push_back({rd, sta.cell_delay(c)});
      }
    }
    if (sources.empty()) continue;
    std::vector<Ps> arr = sta.arrivals(sources);
    for (size_t d = 0; d < lr.banks.size(); ++d) {
      if (d == s) continue;
      Ps a = dest_arrival(arr, static_cast<int>(d));
      if (a == sta::kUnreached) continue;
      res.cg.add_edge(static_cast<int>(s), static_cast<int>(d),
                      with_margin(a + setup_of(static_cast<int>(d)), margin));
    }
    // Primary outputs observed by the environment sink.
    Ps po = sta::kUnreached;
    for (nl::NetId out : nl.outputs()) {
      po = std::max(po, arr[out.value()]);
    }
    if (po != sta::kUnreached && !src.even) {
      res.cg.add_edge(static_cast<int>(s), res.env_snk, with_margin(po, margin));
    }
  }

  // Primary inputs: one propagation from all non-clock PIs.
  {
    std::vector<sta::Source> sources;
    for (nl::NetId in : nl.inputs()) {
      if (in == clock) continue;
      sources.push_back({in, 0});
    }
    if (!sources.empty()) {
      std::vector<Ps> arr = sta.arrivals(sources);
      for (size_t d = 0; d < lr.banks.size(); ++d) {
        Ps a = dest_arrival(arr, static_cast<int>(d));
        if (a == sta::kUnreached) continue;
        res.cg.add_edge(res.env_src, static_cast<int>(d),
                        with_margin(a + setup_of(static_cast<int>(d)), margin));
      }
    }
  }
  res.cg.add_edge(res.env_snk, res.env_src, 0);

  // Read-before-write ordering: a RAM's write pulse (odd bank) must follow
  // the captures of every bank that consumes its read data. Synchronous
  // circuits get this for free from edge-triggered simultaneity (the
  // capturing edge samples the pre-write value); the pulse protocol needs
  // the explicit reverse edge reader -> writer.
  {
    std::vector<std::pair<int, int>> ordering;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.from != static_cast<int>(s)) continue;
        if (e.to >= static_cast<int>(lr.banks.size())) continue;  // env
        if (!lr.banks[static_cast<size_t>(e.to)].even) continue;
        ordering.push_back({e.to, static_cast<int>(s)});
      }
    }
    for (auto [reader, writer] : ordering) {
      res.cg.add_edge(reader, writer, 0);
    }
  }

  // Command stability for the fully-decoupled protocol: a RAM commits its
  // write on the writer bank's opening (writer+), and the command pins are
  // held by master latches in other even banks. Lockstep and semi-decoupled
  // order writer+ after those masters' captures through their own arcs
  // (a- -> b- resp. a- -> b+); fully-decoupled has neither, so close the
  // loop explicitly with a writer -> command-source edge, whose b- -> a+
  // successor arc is exactly "commit only after every command source
  // captured".
  if (protocol == ctl::Protocol::FullyDecoupled) {
    std::vector<std::pair<int, int>> closures;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.to != static_cast<int>(s)) continue;
        if (e.from >= static_cast<int>(lr.banks.size())) continue;  // env
        closures.push_back({static_cast<int>(s), e.from});
      }
    }
    for (auto [writer, cmd_src] : closures) {
      res.cg.add_edge(writer, cmd_src, 0);
    }
  }

  // Banks without a predecessor or successor park on the environment so the
  // controller network stays connected (e.g. registers whose outputs are
  // unobservable).
  for (size_t i = 0; i < lr.banks.size(); ++i) {
    int bank = static_cast<int>(i);
    if (res.cg.preds(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(res.env_src, bank, 0);
      } else {
        res.cg.add_edge(res.env_snk, bank, 0);
      }
    }
    if (res.cg.succs(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(bank, res.env_src, 0);
      } else {
        res.cg.add_edge(bank, res.env_snk, 0);
      }
    }
  }
  res.cg.validate();
  return res;
}

ctl::ControlGraph quotient_control_graph(
    const ctl::ControlGraph& fine, std::span<const int> bank_map,
    std::span<const ctl::ControlGraph::Bank> banks) {
  DESYN_ASSERT(bank_map.size() == fine.num_banks());
  ctl::ControlGraph q;
  for (const ctl::ControlGraph::Bank& b : banks) q.add_bank(b.name, b.even);
  for (const ctl::ControlGraph::Edge& e : fine.edges()) {
    // add_edge merges duplicates keeping the larger delay: the quotient of
    // the max-plus arrival data is the max over member edges.
    q.add_edge(bank_map[static_cast<size_t>(e.from)],
               bank_map[static_cast<size_t>(e.to)], e.matched_delay);
  }
  q.validate();
  return q;
}

}  // namespace desyn::flow
