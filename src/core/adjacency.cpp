#include "core/adjacency.h"

#include <algorithm>
#include <cmath>

#include "sta/sta.h"

namespace desyn::flow {

namespace {

Ps with_margin(Ps delay, double margin) {
  return static_cast<Ps>(std::ceil(static_cast<double>(delay) * margin));
}

}  // namespace

AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech, double margin,
                                      ctl::Protocol protocol) {
  AdjacencyResult res;
  for (const Bank& b : lr.banks) res.cg.add_bank(b.name, b.even);
  res.env_snk = res.cg.add_bank("env_snk", true);
  res.env_src = res.cg.add_bank("env_src", false);

  sta::Sta sta(nl, tech);

  auto setup_of = [&](int bank) {
    const Bank& b = lr.banks[static_cast<size_t>(bank)];
    return b.rams.empty() ? tech.latch_setup() : tech.dff_setup();
  };

  // Capture-endpoint index: the banks whose member data pins watch each
  // net. With it, one sparse propagation aggregates destinations in
  // O(touched nets) — per-flip-flop extraction runs one propagation per
  // bank, and the old dense dest scan was O(banks^2 * member cells).
  std::vector<std::vector<int>> watchers(nl.num_nets());
  for (size_t d = 0; d < lr.banks.size(); ++d) {
    const Bank& b = lr.banks[d];
    auto watch = [&](nl::CellId c) {
      const nl::CellData& cd = nl.cell(c);
      for (size_t i = 0; i < cd.ins.size(); ++i) {
        if (!sta::Sta::data_endpoint_pin(cd, i)) continue;
        auto& w = watchers[cd.ins[i].value()];
        if (w.empty() || w.back() != static_cast<int>(d)) {
          w.push_back(static_cast<int>(d));
        }
      }
    };
    for (nl::CellId c : b.latches) watch(c);
    for (nl::CellId c : b.rams) watch(c);
  }

  sta::Sta::SparseScratch scratch;
  std::vector<Ps> dest_worst(lr.banks.size(), sta::kUnreached);
  std::vector<int> dests;
  std::vector<sta::Source> sources;
  // Worst data-pin arrival per reached bank under the scratch's map;
  // restores its own state, leaves `dests` sorted for deterministic edge
  // order (the order the dense scan produced).
  auto collect_dests = [&](int src_bank, auto&& emit) {
    for (nl::NetId n : scratch.touched) {
      Ps a = scratch.arr[n.value()];
      for (int d : watchers[n.value()]) {
        if (d == src_bank) continue;
        if (dest_worst[static_cast<size_t>(d)] == sta::kUnreached) {
          dests.push_back(d);
        }
        dest_worst[static_cast<size_t>(d)] =
            std::max(dest_worst[static_cast<size_t>(d)], a);
      }
    }
    std::sort(dests.begin(), dests.end());
    for (int d : dests) {
      emit(d, dest_worst[static_cast<size_t>(d)]);
      dest_worst[static_cast<size_t>(d)] = sta::kUnreached;
    }
    dests.clear();
  };

  // One arrival propagation per source bank.
  for (size_t s = 0; s < lr.banks.size(); ++s) {
    const Bank& src = lr.banks[s];
    sources.clear();
    for (nl::CellId c : src.latches) {
      // Launch at the latch's propagation delay (enable -> Q).
      sources.push_back({nl.cell(c).outs[0], sta.cell_delay(c)});
    }
    for (nl::CellId c : src.rams) {
      // Read data launches at the RAM access time (relative to the write
      // pulse of this odd bank).
      for (nl::NetId rd : nl.cell(c).outs) {
        sources.push_back({rd, sta.cell_delay(c)});
      }
    }
    if (sources.empty()) continue;
    sta.arrivals_sparse(sources, scratch);
    collect_dests(static_cast<int>(s), [&](int d, Ps a) {
      res.cg.add_edge(static_cast<int>(s), d,
                      with_margin(a + setup_of(d), margin));
    });
    // Primary outputs observed by the environment sink.
    Ps po = sta::kUnreached;
    for (nl::NetId out : nl.outputs()) {
      po = std::max(po, scratch.arr[out.value()]);
    }
    if (po != sta::kUnreached && !src.even) {
      res.cg.add_edge(static_cast<int>(s), res.env_snk, with_margin(po, margin));
    }
    scratch.reset();
  }

  // Primary inputs: one propagation from all non-clock PIs.
  {
    sources.clear();
    for (nl::NetId in : nl.inputs()) {
      if (in == clock) continue;
      sources.push_back({in, 0});
    }
    if (!sources.empty()) {
      sta.arrivals_sparse(sources, scratch);
      collect_dests(-1, [&](int d, Ps a) {
        res.cg.add_edge(res.env_src, d,
                        with_margin(a + setup_of(d), margin));
      });
      scratch.reset();
    }
  }
  res.cg.add_edge(res.env_snk, res.env_src, 0);

  // Read-before-write ordering: a RAM's write pulse (odd bank) must follow
  // the captures of every bank that consumes its read data. Synchronous
  // circuits get this for free from edge-triggered simultaneity (the
  // capturing edge samples the pre-write value); the pulse protocol needs
  // the explicit reverse edge reader -> writer.
  {
    std::vector<std::pair<int, int>> ordering;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.from != static_cast<int>(s)) continue;
        if (e.to >= static_cast<int>(lr.banks.size())) continue;  // env
        if (!lr.banks[static_cast<size_t>(e.to)].even) continue;
        ordering.push_back({e.to, static_cast<int>(s)});
      }
    }
    for (auto [reader, writer] : ordering) {
      res.cg.add_edge(reader, writer, 0);
    }
  }

  // Command stability for the fully-decoupled protocol: a RAM commits its
  // write on the writer bank's opening (writer+), and the command pins are
  // held by master latches in other even banks. Lockstep and semi-decoupled
  // order writer+ after those masters' captures through their own arcs
  // (a- -> b- resp. a- -> b+); fully-decoupled has neither, so close the
  // loop explicitly with a writer -> command-source edge, whose b- -> a+
  // successor arc is exactly "commit only after every command source
  // captured".
  if (protocol == ctl::Protocol::FullyDecoupled) {
    std::vector<std::pair<int, int>> closures;
    for (size_t s = 0; s < lr.banks.size(); ++s) {
      if (lr.banks[s].rams.empty() || lr.banks[s].even) continue;
      for (const auto& e : res.cg.edges()) {
        if (e.to != static_cast<int>(s)) continue;
        if (e.from >= static_cast<int>(lr.banks.size())) continue;  // env
        closures.push_back({static_cast<int>(s), e.from});
      }
    }
    for (auto [writer, cmd_src] : closures) {
      res.cg.add_edge(writer, cmd_src, 0);
    }
  }

  // Banks without a predecessor or successor park on the environment so the
  // controller network stays connected (e.g. registers whose outputs are
  // unobservable).
  for (size_t i = 0; i < lr.banks.size(); ++i) {
    int bank = static_cast<int>(i);
    if (res.cg.preds(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(res.env_src, bank, 0);
      } else {
        res.cg.add_edge(res.env_snk, bank, 0);
      }
    }
    if (res.cg.succs(bank).empty()) {
      if (lr.banks[i].even) {
        res.cg.add_edge(bank, res.env_src, 0);
      } else {
        res.cg.add_edge(bank, res.env_snk, 0);
      }
    }
  }
  res.cg.validate();
  return res;
}

ctl::ControlGraph quotient_control_graph(
    const ctl::ControlGraph& fine, std::span<const int> bank_map,
    std::span<const ctl::ControlGraph::Bank> banks) {
  DESYN_ASSERT(bank_map.size() == fine.num_banks());
  ctl::ControlGraph q;
  for (const ctl::ControlGraph::Bank& b : banks) q.add_bank(b.name, b.even);
  for (const ctl::ControlGraph::Edge& e : fine.edges()) {
    // add_edge merges duplicates keeping the larger delay: the quotient of
    // the max-plus arrival data is the max over member edges.
    q.add_edge(bank_map[static_cast<size_t>(e.from)],
               bank_map[static_cast<size_t>(e.to)], e.matched_delay);
  }
  q.validate();
  return q;
}

// ---------------------------------------------------------------------------
// IncrementalQuotient
// ---------------------------------------------------------------------------

IncrementalQuotient::IncrementalQuotient(const ctl::ControlGraph& fine,
                                         std::vector<char> mergeable)
    : fine_(fine), mergeable_(std::move(mergeable)) {
  G_ = mergeable_.size();
  live_ = G_;
  DESYN_ASSERT(fine.num_banks() == 2 * G_ + 2,
               "per-flip-flop layout: bank pair per group plus the env pair");
  cluster_.resize(G_);
  members_.resize(G_);
  for (size_t g = 0; g < G_; ++g) {
    cluster_[g] = static_cast<int>(g);
    members_[g] = {static_cast<int>(g)};
  }
  // Per-destination worst-in over the fine edges; a cluster bank's worst is
  // the max over its member banks' (the source of an edge never matters).
  fine_wi_.assign(fine.num_banks(), 0);
  for (const ctl::ControlGraph::Edge& e : fine.edges()) {
    Ps& w = fine_wi_[static_cast<size_t>(e.to)];
    w = std::max(w, e.matched_delay);
  }
  wi_.resize(2 * G_);
  for (size_t g = 0; g < G_; ++g) {
    wi_[2 * g] = fine_wi_[2 * g];          // even/master bank
    wi_[2 * g + 1] = fine_wi_[2 * g + 1];  // odd/slave bank
  }
}

void IncrementalQuotient::merge(int keep, int drop) {
  DESYN_ASSERT(keep != drop && live(keep) && live(drop));
  DESYN_ASSERT(mergeable(keep) && mergeable(drop));
  Delta d;
  d.is_merge = true;
  d.a = keep;
  d.b = drop;
  d.keep_size = members_[static_cast<size_t>(keep)].size();
  d.old_wi[0] = wi_[2 * static_cast<size_t>(keep)];
  d.old_wi[1] = wi_[2 * static_cast<size_t>(keep) + 1];
  auto& win = members_[static_cast<size_t>(keep)];
  auto& lose = members_[static_cast<size_t>(drop)];
  for (int g : lose) cluster_[static_cast<size_t>(g)] = keep;
  win.insert(win.end(), lose.begin(), lose.end());
  lose.clear();
  wi_[2 * static_cast<size_t>(keep)] =
      std::max(d.old_wi[0], wi_[2 * static_cast<size_t>(drop)]);
  wi_[2 * static_cast<size_t>(keep) + 1] =
      std::max(d.old_wi[1], wi_[2 * static_cast<size_t>(drop) + 1]);
  --live_;
  log_.push_back(d);
}

void IncrementalQuotient::move(int g, int to) {
  int from = cluster_[static_cast<size_t>(g)];
  DESYN_ASSERT(from != to && live(to));
  DESYN_ASSERT(mergeable(from) && mergeable(to));
  auto& donor = members_[static_cast<size_t>(from)];
  DESYN_ASSERT(donor.size() >= 2, "a move may not empty the donor cluster");
  Delta d;
  d.is_merge = false;
  d.a = g;
  d.b = to;
  d.from = from;
  d.old_wi[0] = wi_[2 * static_cast<size_t>(from)];
  d.old_wi[1] = wi_[2 * static_cast<size_t>(from) + 1];
  d.old_wi[2] = wi_[2 * static_cast<size_t>(to)];
  d.old_wi[3] = wi_[2 * static_cast<size_t>(to) + 1];
  auto it = std::find(donor.begin(), donor.end(), g);
  DESYN_ASSERT(it != donor.end());
  d.member_idx = static_cast<size_t>(it - donor.begin());
  donor.erase(it);
  members_[static_cast<size_t>(to)].push_back(g);
  cluster_[static_cast<size_t>(g)] = to;
  // Donor loses a max contributor: recompute from its member banks. The
  // receiver only gains one: max-combine.
  Ps we = 0, wo = 0;
  for (int m : donor) {
    we = std::max(we, fine_wi_[2 * static_cast<size_t>(m)]);
    wo = std::max(wo, fine_wi_[2 * static_cast<size_t>(m) + 1]);
  }
  wi_[2 * static_cast<size_t>(from)] = we;
  wi_[2 * static_cast<size_t>(from) + 1] = wo;
  wi_[2 * static_cast<size_t>(to)] =
      std::max(d.old_wi[2], fine_wi_[2 * static_cast<size_t>(g)]);
  wi_[2 * static_cast<size_t>(to) + 1] =
      std::max(d.old_wi[3], fine_wi_[2 * static_cast<size_t>(g) + 1]);
  log_.push_back(d);
}

void IncrementalQuotient::undo() {
  DESYN_ASSERT(!log_.empty(), "undo() without a pending delta");
  Delta d = log_.back();
  log_.pop_back();
  if (d.is_merge) {
    auto& win = members_[static_cast<size_t>(d.a)];
    auto& lose = members_[static_cast<size_t>(d.b)];
    DESYN_ASSERT(lose.empty() && win.size() > d.keep_size);
    lose.assign(win.begin() + static_cast<ptrdiff_t>(d.keep_size), win.end());
    win.resize(d.keep_size);
    for (int g : lose) cluster_[static_cast<size_t>(g)] = d.b;
    wi_[2 * static_cast<size_t>(d.a)] = d.old_wi[0];
    wi_[2 * static_cast<size_t>(d.a) + 1] = d.old_wi[1];
    ++live_;
  } else {
    auto& donor = members_[static_cast<size_t>(d.from)];
    auto& recv = members_[static_cast<size_t>(d.b)];
    DESYN_ASSERT(!recv.empty() && recv.back() == d.a);
    recv.pop_back();
    donor.insert(donor.begin() + static_cast<ptrdiff_t>(d.member_idx), d.a);
    cluster_[static_cast<size_t>(d.a)] = d.from;
    wi_[2 * static_cast<size_t>(d.from)] = d.old_wi[0];
    wi_[2 * static_cast<size_t>(d.from) + 1] = d.old_wi[1];
    wi_[2 * static_cast<size_t>(d.b)] = d.old_wi[2];
    wi_[2 * static_cast<size_t>(d.b) + 1] = d.old_wi[3];
  }
}

std::vector<int> IncrementalQuotient::bank_map(
    std::vector<ctl::ControlGraph::Bank>* banks) const {
  std::vector<int> qidx(G_, -1);
  int nq = 0;
  if (banks) banks->clear();
  for (size_t g = 0; g < G_; ++g) {
    int c = cluster_[g];
    if (qidx[static_cast<size_t>(c)] < 0) {
      qidx[static_cast<size_t>(c)] = nq++;
      if (banks) {
        banks->push_back({cat("q", nq - 1, ".m"), true});
        banks->push_back({cat("q", nq - 1, ".s"), false});
      }
    }
  }
  if (banks) {
    banks->push_back({"env_snk", true});
    banks->push_back({"env_src", false});
  }
  std::vector<int> map(fine_.num_banks());
  for (size_t g = 0; g < G_; ++g) {
    int q = qidx[static_cast<size_t>(cluster_[g])];
    map[2 * g] = 2 * q;
    map[2 * g + 1] = 2 * q + 1;
  }
  map[2 * G_] = 2 * nq;      // env_snk
  map[2 * G_ + 1] = 2 * nq + 1;  // env_src
  return map;
}

ctl::ControlGraph IncrementalQuotient::materialize() const {
  std::vector<ctl::ControlGraph::Bank> banks;
  std::vector<int> map = bank_map(&banks);
  return quotient_control_graph(fine_, map, banks);
}

}  // namespace desyn::flow
