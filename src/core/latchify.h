// Step 1 of de-synchronization (paper Fig. 1a -> 1b): convert every D
// flip-flop into a master/slave latch pair.
//
//   DFF(D, CK -> Q)   ==>   master = LATCHN(D, CK)   (transparent at CK=0)
//                           slave  = LATCH(m, CK)    (transparent at CK=1)
//
// The slave drives the original Q net, so the rest of the netlist is
// untouched; with EN pins on the global clock the latch-based circuit is
// cycle-equivalent to the FF-based one. Both latches inherit the flip-flop's
// initial value.
//
// Banks: latches are grouped into control banks (one controller per bank in
// the desynchronized circuit). *Which* cells share a bank is the caller's
// choice, expressed as a flow::Partition (see core/partition.h): group `g`
// of the partition becomes bank pair (2g, 2g+1). RAM macros always own a
// bank pair: the master side holds the write command, the slave side owns
// the read data.
#pragma once

#include <map>
#include <vector>

#include "core/partition.h"
#include "netlist/netlist.h"

namespace desyn::flow {

struct Bank {
  std::string name;
  bool even = false;                 ///< master side (captures like FF edge)
  std::vector<nl::CellId> latches;   ///< member latch cells
  std::vector<nl::CellId> rams;      ///< member RAM macros (master side only)
};

struct LatchifyResult {
  std::vector<Bank> banks;  ///< even/odd pairs, ordered master-then-slave
  /// Per original FF: (master cell, slave cell).
  std::map<nl::CellId, std::pair<nl::CellId, nl::CellId>> ff_map;
};

/// Thrown by latchify()/desynchronize() when storage cells are clocked by
/// nets other than the designated clock (the flow handles single-clock
/// designs only, as in the paper). Names the offending clock nets so the
/// caller can report exactly which domains would need their own flow run.
class MultiClockError : public Error {
 public:
  MultiClockError(const std::string& what, std::vector<std::string> clocks)
      : Error(what), clocks_(std::move(clocks)) {}
  /// Distinct non-`clock` nets found driving storage clock pins.
  const std::vector<std::string>& clocks() const { return clocks_; }

 private:
  std::vector<std::string> clocks_;
};

/// In-place conversion of every DFF in `nl` clocked by `clock`, banked by
/// `p`: partition group `g` becomes banks 2g (masters) and 2g+1 (slaves).
/// Pure mechanism: all policy lives in the Partition. Throws
/// MultiClockError if any DFF or RAM is clocked by a different net
/// (single-clock designs only, as in the paper) and PartitionError if `p`
/// does not cover the storage of `nl` exactly.
LatchifyResult latchify(nl::Netlist& nl, nl::NetId clock, const Partition& p);

}  // namespace desyn::flow
