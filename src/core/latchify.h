// Step 1 of de-synchronization (paper Fig. 1a -> 1b): convert every D
// flip-flop into a master/slave latch pair.
//
//   DFF(D, CK -> Q)   ==>   master = LATCHN(D, CK)   (transparent at CK=0)
//                           slave  = LATCH(m, CK)    (transparent at CK=1)
//
// The slave drives the original Q net, so the rest of the netlist is
// untouched; with EN pins on the global clock the latch-based circuit is
// cycle-equivalent to the FF-based one. Both latches inherit the flip-flop's
// initial value.
//
// Banks: latches are grouped into control banks (one controller per bank in
// the desynchronized circuit). RAM macros get a bank pair of their own: the
// master side owns the write port, the slave side owns the read data.
#pragma once

#include <map>
#include <vector>

#include "netlist/netlist.h"

namespace desyn::flow {

enum class BankStrategy {
  Prefix,      ///< group FFs by hierarchical name prefix (up to last '.')
  PerFlipFlop, ///< one bank pair per flip-flop (finest granularity)
  Single,      ///< one bank pair for the whole design
};

struct Bank {
  std::string name;
  bool even = false;                 ///< master side (captures like FF edge)
  std::vector<nl::CellId> latches;   ///< member latch cells
  std::vector<nl::CellId> rams;      ///< member RAM macros (master side only)
};

struct LatchifyResult {
  std::vector<Bank> banks;  ///< even/odd pairs, ordered master-then-slave
  /// Per original FF: (master cell, slave cell).
  std::map<nl::CellId, std::pair<nl::CellId, nl::CellId>> ff_map;
};

/// In-place conversion of every DFF in `nl` clocked by `clock`. FFs clocked
/// by other nets are rejected (single-clock designs only, as in the paper).
/// RAM macros clocked by `clock` are assigned their own bank pairs.
LatchifyResult latchify(nl::Netlist& nl, nl::NetId clock, BankStrategy s);

/// Bank-name prefix of a cell name ("ifid.pc_q3" -> "ifid"; no dot -> "core").
std::string bank_prefix(const std::string& cell_name);

}  // namespace desyn::flow
