#include "core/latchify.h"

#include <algorithm>

namespace desyn::flow {

LatchifyResult latchify(nl::Netlist& nl, nl::NetId clock, const Partition& p) {
  LatchifyResult res;

  // Collect first: we edit the netlist as we go. Reject multi-clock designs
  // with a typed error naming every offending clock net, so callers (and
  // users of the CLI) see the full extent of the problem at once.
  std::vector<nl::CellId> ffs;
  std::vector<nl::CellId> rams;
  std::vector<std::string> other_clocks;
  auto note_clock = [&](nl::NetId ck) {
    const std::string& name = nl.net(ck).name;
    if (std::find(other_clocks.begin(), other_clocks.end(), name) ==
        other_clocks.end()) {
      other_clocks.push_back(name);
    }
  };
  for (nl::CellId c : nl.cells()) {
    const nl::CellData& cd = nl.cell(c);
    if (cd.kind == cell::Kind::Dff) {
      if (cd.ins[1] != clock) note_clock(cd.ins[1]);
      ffs.push_back(c);
    } else if (cd.kind == cell::Kind::Ram) {
      if (cd.ins[0] != clock) note_clock(cd.ins[0]);
      rams.push_back(c);
    }
  }
  if (!other_clocks.empty()) {
    std::string list;
    for (size_t i = 0; i < other_clocks.size(); ++i) {
      list += (i ? ", " : "") + other_clocks[i];
    }
    throw MultiClockError(
        cat("multi-clock design: storage clocked by { ", list,
            " } besides the designated clock '", nl.net(clock).name,
            "'; desynchronize one clock domain at a time"),
        std::move(other_clocks));
  }
  p.validate(nl);

  // Banks in partition-group order: group g -> banks 2g (even) / 2g+1 (odd).
  for (const PartitionGroup& g : p.groups()) {
    res.banks.push_back(Bank{g.name + ".m", true, {}, {}});
    res.banks.push_back(Bank{g.name + ".s", false, {}, {}});
  }

  for (nl::CellId c : ffs) {
    const nl::CellData cd = nl.cell(c);  // copy: remove_cell invalidates view
    int even_idx = 2 * p.group_of(c);
    nl::NetId d = cd.ins[0];
    nl::NetId q = cd.outs[0];
    cell::V init = cd.init;
    std::string name = cd.name;
    nl.remove_cell(c);

    nl::NetId mid = nl.add_net(name + ".mq");
    nl::CellId master = nl.add_cell(cell::Kind::LatchN, name + ".m",
                                    {d, clock}, {mid}, init);
    nl::CellId slave =
        nl.add_cell(cell::Kind::Latch, name + ".s", {mid, clock}, {q}, init);
    res.banks[static_cast<size_t>(even_idx)].latches.push_back(master);
    res.banks[static_cast<size_t>(even_idx) + 1].latches.push_back(slave);
    res.ff_map[c] = {master, slave};
    nl.set_group(master, even_idx);
    nl.set_group(slave, even_idx + 1);
  }

  for (nl::CellId c : rams) {
    // A RAM owns its bank pair (the partition guarantees its group is a
    // singleton). Master latches are inserted on the write-command pins
    // (WE/WA/WD): in the synchronous reference they are transparent during
    // the low phase and capture at the writing edge, preserving cycle
    // equivalence; in the desynchronized circuit they hold the command
    // stable until the write commits on the slave-side pulse (RAM CK is
    // rewired to the odd bank's enable).
    const std::string name = nl.cell(c).name;
    int even_idx = 2 * p.group_of(c);
    const nl::CellData& cd = nl.cell(c);
    const size_t cmd_end = size_t{2} + cd.p0 + cd.p1;  // WE, WA, WD
    for (size_t pin = 1; pin < cmd_end; ++pin) {
      nl::NetId src = nl.cell(c).ins[pin];
      nl::NetId held = nl.add_net(cat(name, ".m_h", pin));
      nl::CellId latch = nl.add_cell(cell::Kind::LatchN, cat(name, ".m_p", pin),
                                     {src, clock}, {held}, cell::V::V0);
      nl.rewire_input(c, static_cast<uint16_t>(pin), held);
      res.banks[static_cast<size_t>(even_idx)].latches.push_back(latch);
      nl.set_group(latch, even_idx);
    }
    res.banks[static_cast<size_t>(even_idx) + 1].rams.push_back(c);
    nl.set_group(c, even_idx + 1);
  }

  return res;
}

}  // namespace desyn::flow
