// First-class bank partitioning: the assignment of storage cells (DFFs and
// RAM macros) of a synchronous netlist to control-bank pairs.
//
// The paper fixes one controller per register bank but leaves the *choice*
// of banks open — it is the central area/throughput knob of
// de-synchronization: coarse banks share controllers and matched-delay
// lines (cheap, slow — every member waits for the slowest input), fine
// banks handshake independently (fast, expensive). This header turns that
// choice from a hardwired enum into data:
//
//   * `Partition` — an explicit, validated, canonically-ordered clustering
//     of the storage cells. Constructors cover the three classic
//     strategies (prefix / per-flip-flop / single) plus `from_groups()`
//     for arbitrary user- or tool-supplied clusterings.
//   * `PartitionSpec` — the *recipe* for a partition as it travels through
//     options structs and CLI flags ("prefix:2", "auto:1.05", ...).
//   * `optimize_partition()` — an MCR-guided greedy clustering search:
//     start from per-flip-flop, merge banks while the predicted period
//     (Howard max-cycle-ratio of the timed control model) stays within a
//     user budget of the Prefix baseline, minimizing controller +
//     matched-delay gate cost.
//
// Group invariants (enforced by validate()):
//   * every group is non-empty,
//   * every member is a storage cell (DFF or RAM) of the netlist, exactly
//     once across all groups, and every storage cell is covered,
//   * a RAM macro is always the *sole* member of its group — its
//     master/slave bank pair owns the write port and the read data and
//     cannot be shared (RAM bank-pair integrity).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cell/tech.h"
#include "ctl/protocol.h"
#include "netlist/netlist.h"

namespace desyn::flow {

/// Thrown when a partition fails validation. `kind()` says how, so tests
/// and tools can react to the specific defect rather than string-matching.
class PartitionError : public Error {
 public:
  enum class Kind {
    EmptyGroup,    ///< a group with no members
    ForeignCell,   ///< a member that is not a storage cell of the netlist
    DuplicateCell, ///< a storage cell listed in two groups (or twice)
    UncoveredCell, ///< a storage cell of the netlist missing from the partition
    MixedRamGroup, ///< a RAM macro sharing a group with other storage
  };
  PartitionError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct PartitionGroup {
  std::string name;                ///< bank-pair base name ("<name>.m/.s")
  std::vector<nl::CellId> cells;   ///< member storage cells, sorted by id
  bool ram = false;                ///< singleton RAM group
};

/// An explicit storage-cell clustering. Group `g` becomes bank pair
/// (2g, 2g+1) of the latchified netlist: 2g the even (master) bank, 2g+1
/// the odd (slave) bank. Canonical order: FF groups by smallest member
/// cell id, then RAM groups by cell id — the order the legacy strategies
/// produced, so bank indices stay stable across the refactor.
class Partition {
 public:
  Partition() = default;

  /// Group FFs by hierarchical name prefix (see bank_prefix()); every RAM
  /// gets its own group. `depth` = number of trailing '.'-segments
  /// stripped (depth 1 is the classic "up to the last dot" grouping).
  static Partition prefix(const nl::Netlist& nl, int depth = 1);
  /// One group per flip-flop and per RAM — the finest granularity.
  static Partition per_flip_flop(const nl::Netlist& nl);
  /// All FFs in one group ("all"); RAMs still get their own groups.
  static Partition single(const nl::Netlist& nl);
  /// Arbitrary clustering of the *flip-flops*: `groups` lists DFF cell
  /// ids; RAM singleton groups are appended automatically. Validates and
  /// canonicalizes; throws PartitionError on any invariant violation.
  static Partition from_groups(const nl::Netlist& nl,
                               std::vector<std::vector<nl::CellId>> groups);

  const std::vector<PartitionGroup>& groups() const { return groups_; }
  size_t num_groups() const { return groups_.size(); }
  /// Group index of storage cell `c`; -1 if not a member.
  int group_of(nl::CellId c) const;

  /// Check every invariant against `nl` (see the header comment); throws
  /// PartitionError naming the offending group/cell. The single-clock
  /// requirement is checked by latchify() (MultiClockError), which sees
  /// the clock net.
  void validate(const nl::Netlist& nl) const;

  /// Sort groups into canonical order (FF groups by smallest member id,
  /// then RAM groups) and members by id. All constructors return
  /// canonical partitions; call after editing groups() by hand.
  void canonicalize();

  /// "12 groups: {s0: s0.a s0.b} {s1: ...}" — deterministic, for tests
  /// and debug output.
  std::string describe(const nl::Netlist& nl) const;

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.groups_ == b.groups_;
  }

 private:
  void index();  ///< rebuild the cell -> group map
  std::vector<PartitionGroup> groups_;
  std::vector<int> group_of_;  ///< dense by cell id; -1 = not a member
};

inline bool operator==(const PartitionGroup& a, const PartitionGroup& b) {
  return a.name == b.name && a.cells == b.cells && a.ram == b.ram;
}

/// Bank-name prefix of a cell name: the name with its last `depth`
/// '.'-segments stripped ("ifid.pc_q3" -> "ifid"; "st3.d.r0" with depth 2
/// -> "st3"). Names with no hierarchy left — no dot, a leading dot, or a
/// Verilog escaped identifier (leading backslash, where dots are not
/// hierarchy separators) — fall back to "core" uniformly.
std::string bank_prefix(const std::string& cell_name, int depth = 1);

/// The partition *recipe* carried by DesyncOptions and the CLI: how to
/// build the Partition once the netlist (and, for Auto, the timing model)
/// is at hand.
struct PartitionSpec {
  enum class Mode { Prefix, PerFlipFlop, Single, Auto, Explicit };
  Mode mode = Mode::Prefix;
  int prefix_depth = 1;    ///< Mode::Prefix: segments stripped
  double auto_budget = 1.05;  ///< Mode::Auto: allowed predicted-period
                              ///< ratio over the Prefix baseline
  /// Mode::Explicit: the partition itself (cell ids of the FF netlist).
  std::optional<Partition> partition;

  PartitionSpec() = default;
  static PartitionSpec explicit_(Partition p) {
    PartitionSpec s;
    s.mode = Mode::Explicit;
    s.partition = std::move(p);
    return s;
  }

  /// Parse a CLI strategy: "prefix", "prefix:N", "perff", "single",
  /// "auto", "auto:B" (B = period budget, e.g. 1.05). Throws Error.
  static PartitionSpec parse(std::string_view s);
  /// The canonical CLI name back ("prefix:2", "auto:1.05", "explicit").
  std::string label() const;
};

/// Materialize `spec` for `ff_netlist`. Mode::Auto runs
/// optimize_partition() with `protocol`/`margin` (the knobs that shape the
/// control graph being scored) across `opt_jobs` scoring threads; the
/// other modes ignore tech entirely.
Partition make_partition(const nl::Netlist& ff_netlist, nl::NetId clock,
                         const PartitionSpec& spec, const cell::Tech& tech,
                         ctl::Protocol protocol, double margin,
                         int opt_jobs = 1);

// ---------------------------------------------------------------------------
// The MCR-guided clustering optimizer
// ---------------------------------------------------------------------------

struct PartitionOptOptions {
  /// Allowed predicted-period degradation: the optimized partition's
  /// predicted period must stay <= budget * (Prefix baseline period).
  double period_budget = 1.05;
  double margin = 1.10;  ///< matched-delay margin (mirrors DesyncOptions)
  ctl::Protocol protocol = ctl::Protocol::Pulse;
  /// Tie-break seed: candidates with equal savings are ordered by a
  /// seeded hash. The search is fully deterministic for a fixed seed.
  uint64_t seed = 1;
  /// Upper bound on merge rounds (0 = unlimited); a safety valve for
  /// interactive use on very large designs.
  size_t max_merges = 0;
  /// Run the post-merge refinement pass (single-cell moves between
  /// adjacent groups that further reduce gate cost within budget).
  bool refine = true;
  /// Candidate-scoring threads. The search result is byte-identical for
  /// any job count: scoring waves have a jobs-independent composition and
  /// a deterministic reduction (fixed candidate order, seeded tie-breaks).
  int jobs = 1;
};

/// Where the optimizer's time went — the scaling counters the benches and
/// CI track. `candidates` counts every merge/move the search considered;
/// most are settled without any solver run (`pruned`, rejected by a cached
/// monotone lower bound) or by a warm-started Howard re-solve
/// (`warm_solves`); `cold_solves` counts full cold solves (the baselines
/// plus structural-invalidation fallbacks) and should stay a small
/// constant regardless of design size.
struct OptimizeStats {
  size_t candidates = 0;
  size_t pruned = 0;
  size_t warm_solves = 0;
  size_t cold_solves = 0;
  size_t waves = 0;  ///< scoring waves dispatched (parallelism grain)
};

struct PartitionOptResult {
  Partition partition;        ///< the optimized clustering
  double perff_period = 0;    ///< predicted period of the PerFlipFlop start
  double baseline_period = 0; ///< predicted period of the Prefix baseline
  double period = 0;          ///< predicted period of `partition`
  size_t perff_cost = 0;      ///< controller+delay cells of the start
  size_t cost = 0;            ///< controller+delay cells of `partition`
  int merges = 0;             ///< committed group merges
  int moves = 0;              ///< committed refinement moves
  size_t evaluations = 0;     ///< MCR solver runs spent (warm + cold)
  OptimizeStats stats;        ///< the scaling breakdown
};

/// Search for a cheap partition of `ff_netlist` whose predicted period
/// stays within `opt.period_budget` of the Prefix baseline. Greedy
/// agglomerative: start from per-flip-flop and repeatedly commit the
/// highest-ranked candidate merge that keeps the predicted period (Howard
/// max-cycle-ratio of the candidate's timed control model) within budget;
/// a refinement pass then retries single-group moves that reduce the real
/// synthesized controller + matched-delay gate cost.
///
/// The scoring loop is incremental end to end: one STA pass sizes the
/// per-flip-flop control graph, every candidate is a delta on the current
/// quotient (IncrementalQuotient, O(deg) apply/undo), its model is solved
/// by a Howard re-run warm-started from the committed solution
/// (pn::McrContext), failed candidates leave a monotone lower bound that
/// rejects them solve-free forever after (coarsening only adds
/// rendezvous), and scoring waves fan out across `opt.jobs` threads with a
/// deterministic reduction. Deterministic for a fixed seed at any job
/// count.
PartitionOptResult optimize_partition(const nl::Netlist& ff_netlist,
                                      nl::NetId clock, const cell::Tech& tech,
                                      const PartitionOptOptions& opt = {});

/// The cold oracle: the identical search, but every candidate is scored by
/// re-deriving its whole quotient control graph from scratch and solving
/// it cold — no incremental state, no warm starts, no bound pruning.
/// Exists to pin optimize_partition(): both must return the same partition
/// (equivalence-tested over the circuit suite). Use only for testing;
/// it is orders of magnitude slower on large fabrics.
PartitionOptResult optimize_partition_reference(
    const nl::Netlist& ff_netlist, nl::NetId clock, const cell::Tech& tech,
    const PartitionOptOptions& opt = {});

/// The timed protocol model of a control graph with hardware line sizing
/// (per-destination aggregation, response credit, quantization to whole
/// DELAY cells): the shared core of flow::timed_control_model and the
/// optimizer's scoring loop.
pn::MarkedGraph timed_model(const ctl::ControlGraph& cg, ctl::Protocol p,
                            const cell::Tech& tech, Ps pulse_width);

/// Predicted cycle time of a control graph under `protocol`: timed_model
/// with the synthesis' pulse width, solved by Howard max-cycle-ratio. The
/// single scoring rule shared by the flow and the optimizer.
double predicted_period(const ctl::ControlGraph& cg, ctl::Protocol protocol,
                        const cell::Tech& tech);

}  // namespace desyn::flow
