// First-class bank partitioning: the assignment of storage cells (DFFs and
// RAM macros) of a synchronous netlist to control-bank pairs.
//
// The paper fixes one controller per register bank but leaves the *choice*
// of banks open — it is the central area/throughput knob of
// de-synchronization: coarse banks share controllers and matched-delay
// lines (cheap, slow — every member waits for the slowest input), fine
// banks handshake independently (fast, expensive). This header turns that
// choice from a hardwired enum into data:
//
//   * `Partition` — an explicit, validated, canonically-ordered clustering
//     of the storage cells. Constructors cover the three classic
//     strategies (prefix / per-flip-flop / single) plus `from_groups()`
//     for arbitrary user- or tool-supplied clusterings.
//   * `PartitionSpec` — the *recipe* for a partition as it travels through
//     options structs and CLI flags ("prefix:2", "auto:1.05", ...).
//   * `optimize_partition()` — an MCR-guided greedy clustering search:
//     start from per-flip-flop, merge banks while the predicted period
//     (Howard max-cycle-ratio of the timed control model) stays within a
//     user budget of the Prefix baseline, minimizing controller +
//     matched-delay gate cost.
//
// Group invariants (enforced by validate()):
//   * every group is non-empty,
//   * every member is a storage cell (DFF or RAM) of the netlist, exactly
//     once across all groups, and every storage cell is covered,
//   * a RAM macro is always the *sole* member of its group — its
//     master/slave bank pair owns the write port and the read data and
//     cannot be shared (RAM bank-pair integrity).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cell/tech.h"
#include "ctl/protocol.h"
#include "netlist/netlist.h"

namespace desyn::flow {

/// Legacy three-value strategy knob. Deprecated: construct a `Partition`
/// (or a `PartitionSpec`) instead; kept for one PR as a thin shim —
/// `PartitionSpec` converts implicitly from it.
enum class BankStrategy {
  Prefix,      ///< group FFs by hierarchical name prefix (up to last '.')
  PerFlipFlop, ///< one bank pair per flip-flop (finest granularity)
  Single,      ///< one bank pair for the whole design
};

/// Thrown when a partition fails validation. `kind()` says how, so tests
/// and tools can react to the specific defect rather than string-matching.
class PartitionError : public Error {
 public:
  enum class Kind {
    EmptyGroup,    ///< a group with no members
    ForeignCell,   ///< a member that is not a storage cell of the netlist
    DuplicateCell, ///< a storage cell listed in two groups (or twice)
    UncoveredCell, ///< a storage cell of the netlist missing from the partition
    MixedRamGroup, ///< a RAM macro sharing a group with other storage
  };
  PartitionError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

struct PartitionGroup {
  std::string name;                ///< bank-pair base name ("<name>.m/.s")
  std::vector<nl::CellId> cells;   ///< member storage cells, sorted by id
  bool ram = false;                ///< singleton RAM group
};

/// An explicit storage-cell clustering. Group `g` becomes bank pair
/// (2g, 2g+1) of the latchified netlist: 2g the even (master) bank, 2g+1
/// the odd (slave) bank. Canonical order: FF groups by smallest member
/// cell id, then RAM groups by cell id — the order the legacy strategies
/// produced, so bank indices stay stable across the refactor.
class Partition {
 public:
  Partition() = default;

  /// Group FFs by hierarchical name prefix (see bank_prefix()); every RAM
  /// gets its own group. `depth` = number of trailing '.'-segments
  /// stripped (depth 1 is the classic "up to the last dot" grouping).
  static Partition prefix(const nl::Netlist& nl, int depth = 1);
  /// One group per flip-flop and per RAM — the finest granularity.
  static Partition per_flip_flop(const nl::Netlist& nl);
  /// All FFs in one group ("all"); RAMs still get their own groups.
  static Partition single(const nl::Netlist& nl);
  /// Arbitrary clustering of the *flip-flops*: `groups` lists DFF cell
  /// ids; RAM singleton groups are appended automatically. Validates and
  /// canonicalizes; throws PartitionError on any invariant violation.
  static Partition from_groups(const nl::Netlist& nl,
                               std::vector<std::vector<nl::CellId>> groups);

  const std::vector<PartitionGroup>& groups() const { return groups_; }
  size_t num_groups() const { return groups_.size(); }
  /// Group index of storage cell `c`; -1 if not a member.
  int group_of(nl::CellId c) const;

  /// Check every invariant against `nl` (see the header comment); throws
  /// PartitionError naming the offending group/cell. The single-clock
  /// requirement is checked by latchify() (MultiClockError), which sees
  /// the clock net.
  void validate(const nl::Netlist& nl) const;

  /// Sort groups into canonical order (FF groups by smallest member id,
  /// then RAM groups) and members by id. All constructors return
  /// canonical partitions; call after editing groups() by hand.
  void canonicalize();

  /// "12 groups: {s0: s0.a s0.b} {s1: ...}" — deterministic, for tests
  /// and debug output.
  std::string describe(const nl::Netlist& nl) const;

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.groups_ == b.groups_;
  }

 private:
  void index();  ///< rebuild the cell -> group map
  std::vector<PartitionGroup> groups_;
  std::vector<int> group_of_;  ///< dense by cell id; -1 = not a member
};

inline bool operator==(const PartitionGroup& a, const PartitionGroup& b) {
  return a.name == b.name && a.cells == b.cells && a.ram == b.ram;
}

/// Bank-name prefix of a cell name: the name with its last `depth`
/// '.'-segments stripped ("ifid.pc_q3" -> "ifid"; "st3.d.r0" with depth 2
/// -> "st3"). Names with no hierarchy left — no dot, a leading dot, or a
/// Verilog escaped identifier (leading backslash, where dots are not
/// hierarchy separators) — fall back to "core" uniformly.
std::string bank_prefix(const std::string& cell_name, int depth = 1);

/// The partition *recipe* carried by DesyncOptions and the CLI: how to
/// build the Partition once the netlist (and, for Auto, the timing model)
/// is at hand. Implicitly convertible from the legacy BankStrategy enum
/// so existing call sites keep compiling for one PR.
struct PartitionSpec {
  enum class Mode { Prefix, PerFlipFlop, Single, Auto, Explicit };
  Mode mode = Mode::Prefix;
  int prefix_depth = 1;    ///< Mode::Prefix: segments stripped
  double auto_budget = 1.05;  ///< Mode::Auto: allowed predicted-period
                              ///< ratio over the Prefix baseline
  /// Mode::Explicit: the partition itself (cell ids of the FF netlist).
  std::optional<Partition> partition;

  PartitionSpec() = default;
  PartitionSpec(BankStrategy s) {  // NOLINT(google-explicit-constructor)
    switch (s) {
      case BankStrategy::Prefix: mode = Mode::Prefix; break;
      case BankStrategy::PerFlipFlop: mode = Mode::PerFlipFlop; break;
      case BankStrategy::Single: mode = Mode::Single; break;
    }
  }
  static PartitionSpec explicit_(Partition p) {
    PartitionSpec s;
    s.mode = Mode::Explicit;
    s.partition = std::move(p);
    return s;
  }

  /// Parse a CLI strategy: "prefix", "prefix:N", "perff", "single",
  /// "auto", "auto:B" (B = period budget, e.g. 1.05). Throws Error.
  static PartitionSpec parse(std::string_view s);
  /// The canonical CLI name back ("prefix:2", "auto:1.05", "explicit").
  std::string label() const;
};

/// Materialize `spec` for `ff_netlist`. Mode::Auto runs
/// optimize_partition() with `protocol`/`margin` (the knobs that shape the
/// control graph being scored); the other modes ignore tech entirely.
Partition make_partition(const nl::Netlist& ff_netlist, nl::NetId clock,
                         const PartitionSpec& spec, const cell::Tech& tech,
                         ctl::Protocol protocol, double margin);

// ---------------------------------------------------------------------------
// The MCR-guided clustering optimizer
// ---------------------------------------------------------------------------

struct PartitionOptOptions {
  /// Allowed predicted-period degradation: the optimized partition's
  /// predicted period must stay <= budget * (Prefix baseline period).
  double period_budget = 1.05;
  double margin = 1.10;  ///< matched-delay margin (mirrors DesyncOptions)
  ctl::Protocol protocol = ctl::Protocol::Pulse;
  /// Tie-break seed: candidates with equal savings are ordered by a
  /// seeded hash. The search is fully deterministic for a fixed seed.
  uint64_t seed = 1;
  /// Upper bound on merge rounds (0 = unlimited); a safety valve for
  /// interactive use on very large designs.
  size_t max_merges = 0;
  /// Run the post-merge refinement pass (single-cell moves between
  /// adjacent groups that further reduce gate cost within budget).
  bool refine = true;
};

struct PartitionOptResult {
  Partition partition;        ///< the optimized clustering
  double perff_period = 0;    ///< predicted period of the PerFlipFlop start
  double baseline_period = 0; ///< predicted period of the Prefix baseline
  double period = 0;          ///< predicted period of `partition`
  size_t perff_cost = 0;      ///< controller+delay cells of the start
  size_t cost = 0;            ///< controller+delay cells of `partition`
  int merges = 0;             ///< committed group merges
  int moves = 0;              ///< committed refinement moves
  size_t evaluations = 0;     ///< MCR evaluations spent
};

/// Search for a cheap partition of `ff_netlist` whose predicted period
/// stays within `opt.period_budget` of the Prefix baseline. Greedy
/// agglomerative: start from per-flip-flop, score candidate merges by the
/// Howard max-cycle-ratio of the candidate's timed control model —
/// rebuilt incrementally as a quotient of the per-flip-flop control graph,
/// so only the merged banks' rows change and no re-timing (STA) is ever
/// needed — and by controller + matched-delay gate cost, computed by the
/// real controller synthesis on the candidate control graph. Coarsening
/// only adds rendezvous, so the predicted period is monotone in merging;
/// a candidate that busts the budget once is discarded permanently.
/// Deterministic for a fixed seed.
PartitionOptResult optimize_partition(const nl::Netlist& ff_netlist,
                                      nl::NetId clock, const cell::Tech& tech,
                                      const PartitionOptOptions& opt = {});

/// The timed protocol model of a control graph with hardware line sizing
/// (per-destination aggregation, response credit, quantization to whole
/// DELAY cells): the shared core of flow::timed_control_model and the
/// optimizer's scoring loop.
pn::MarkedGraph timed_model(const ctl::ControlGraph& cg, ctl::Protocol p,
                            const cell::Tech& tech, Ps pulse_width);

/// Predicted cycle time of a control graph under `protocol`: timed_model
/// with the synthesis' pulse width, solved by Howard max-cycle-ratio. The
/// single scoring rule shared by the flow and the optimizer.
double predicted_period(const ctl::ControlGraph& cg, ctl::Protocol protocol,
                        const cell::Tech& tech);

}  // namespace desyn::flow
