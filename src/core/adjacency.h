// Step 2+3 prerequisites: extract the bank-level control graph of a
// latchified netlist and size the matched delays from static timing.
//
// An edge a->b exists when combinational logic connects bank a's storage
// outputs to bank b's data inputs; its matched delay is
//
//   margin * (worst STA path from a's outputs, launched at the latch
//             propagation delay, to b's data pins  +  setup)
//
// The environment is modeled as a bank pair: env_src (odd) feeds every bank
// whose input cone reaches a primary input (delay = worst PI path) and
// env_snk (even) absorbs every bank whose output cone reaches a primary
// output; env_snk -> env_src closes the loop. This guarantees every bank
// has a predecessor and a successor, which the controller network requires.
#pragma once

#include "cell/tech.h"
#include "core/latchify.h"
#include "ctl/protocol.h"

namespace desyn::flow {

struct AdjacencyResult {
  ctl::ControlGraph cg;  ///< banks in LatchifyResult order, then env pair
  int env_snk = -1;
  int env_src = -1;
};

/// `protocol` only affects RAM-bearing designs: the ordering edges that
/// keep a RAM's write commit inside the window its readers and command
/// sources expect differ between the pulse and the level-enable protocols
/// (see the read-before-write and command-stability notes in the .cpp).
AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech, double margin,
                                      ctl::Protocol protocol =
                                          ctl::Protocol::Pulse);

}  // namespace desyn::flow
