// Step 2+3 prerequisites: extract the bank-level control graph of a
// latchified netlist and size the matched delays from static timing.
//
// An edge a->b exists when combinational logic connects bank a's storage
// outputs to bank b's data inputs; its matched delay is
//
//   margin * (worst STA path from a's outputs, launched at the latch
//             propagation delay, to b's data pins  +  setup)
//
// The environment is modeled as a bank pair: env_src (odd) feeds every bank
// whose input cone reaches a primary input (delay = worst PI path) and
// env_snk (even) absorbs every bank whose output cone reaches a primary
// output; env_snk -> env_src closes the loop. This guarantees every bank
// has a predecessor and a successor, which the controller network requires.
#pragma once

#include <span>

#include "cell/tech.h"
#include "core/latchify.h"
#include "ctl/protocol.h"

namespace desyn::flow {

struct AdjacencyResult {
  ctl::ControlGraph cg;  ///< banks in LatchifyResult order, then env pair
  int env_snk = -1;
  int env_src = -1;
};

/// Matched-delay safety margins. The flow historically applied one global
/// scalar to every STA-sized matched delay; flow::optimize_margins (flow/
/// mc.h) emits a per-destination-bank vector instead — every matched delay
/// into bank `b` is scaled by of(b). Indexing follows the control-graph
/// bank ids (banks in LatchifyResult order, then the env pair); a bank
/// with no entry, or a non-positive one, falls back to the global factor.
/// A plain double converts implicitly, so single-margin callers read as
/// before.
struct Margins {
  double global = 1.10;
  std::vector<double> per_bank;

  Margins() = default;
  Margins(double g) : global(g) {}  // NOLINT(google-explicit-constructor)
  Margins(double g, std::vector<double> pb)
      : global(g), per_bank(std::move(pb)) {}

  double of(int bank) const {
    size_t b = static_cast<size_t>(bank);
    return bank >= 0 && b < per_bank.size() && per_bank[b] > 0 ? per_bank[b]
                                                               : global;
  }
};

/// `protocol` only affects RAM-bearing designs: the ordering edges that
/// keep a RAM's write commit inside the window its readers and command
/// sources expect differ between the pulse and the level-enable protocols
/// (see the read-before-write and command-stability notes in the .cpp).
AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech,
                                      const Margins& margins,
                                      ctl::Protocol protocol =
                                          ctl::Protocol::Pulse);

/// ECO re-extraction — the flow engine's cone-limited STA delta.
///
/// Precondition: `nl` is *structurally identical* to the netlist that
/// produced `prev` under the same (lr, clock, tech, margin, protocol):
/// same nets, cells, names, pin connectivity and bank membership; only
/// per-cell fields (kind within the same pin structure, init, payload
/// contents) differ, and `changed` lists every cell whose fields do.
///
/// Only source banks whose combinational output cone contains a changed
/// cell re-run sparse STA propagation (plus the primary-input propagation
/// when a changed cell sits in a PI cone); every other edge delay is
/// copied from `prev`. Because structure is unchanged, reachability — and
/// hence the edge set and its deterministic order — is unchanged, so the
/// result is byte-identical to a full extract_control_graph on `nl`
/// (internally asserted: every previously-timed edge of a recomputed
/// source must be re-timed, and vice versa).
///
/// `banks_recomputed` (optional) reports how many source-bank
/// propagations actually ran — the engine's ECO counters and bench_flow
/// surface it.
AdjacencyResult extract_control_graph_eco(
    const nl::Netlist& nl, const LatchifyResult& lr, nl::NetId clock,
    const cell::Tech& tech, const Margins& margins, ctl::Protocol protocol,
    const AdjacencyResult& prev, std::span<const nl::CellId> changed,
    size_t* banks_recomputed = nullptr);

/// The control graph of a *coarser* partition, derived from a finer one
/// without re-running timing: `bank_map[i]` is the quotient bank of fine
/// bank `i` (parity must be preserved; map the fine env pair onto the
/// quotient env pair), `banks` the quotient banks in order. Edges mapping
/// to the same quotient pair merge keeping the larger matched delay —
/// exactly what STA extraction of the merged banks would produce, since
/// arrival times are max-plus. This is the optimizer's cold re-scoring
/// hook: only the merged banks' rows change, the rest of the graph is
/// copied.
ctl::ControlGraph quotient_control_graph(
    const ctl::ControlGraph& fine, std::span<const int> bank_map,
    std::span<const ctl::ControlGraph::Bank> banks);

/// Incrementally maintained quotient of a per-flip-flop control graph
/// under a mutable clustering of its fine groups — the partition
/// optimizer's candidate-scoring substrate. Where quotient_control_graph
/// re-derives the whole quotient (O(V+E)), this class keeps the current
/// quotient materialized and applies each candidate as a *delta* with an
/// undo log: a merge collapses two clusters (O(1) state, max-combining the
/// per-destination worst-in delays exactly as the hardware line sizing
/// aggregates them), a refinement move relabels one fine group and
/// recomputes the donor's worst-in from its member banks. undo() reverts
/// the latest delta, so a tentative candidate costs O(deg), not O(V+E).
///
/// Layout contract (the per-flip-flop extraction): fine group `g` owns
/// banks 2g (even/master) and 2g+1 (odd/slave); the env pair env_snk
/// (even) / env_src (odd) sits at banks 2G, 2G+1 and never merges.
class IncrementalQuotient {
 public:
  /// `mergeable[g]` marks the FF groups; RAM singletons never merge.
  IncrementalQuotient(const ctl::ControlGraph& fine,
                      std::vector<char> mergeable);

  size_t num_groups() const { return G_; }
  size_t num_live() const { return live_; }
  int cluster_of(int g) const { return cluster_[static_cast<size_t>(g)]; }
  bool live(int c) const { return !members_[static_cast<size_t>(c)].empty(); }
  bool mergeable(int c) const { return mergeable_[static_cast<size_t>(c)]; }
  /// Fine groups of cluster `c`, in merge-arrival order (not sorted).
  const std::vector<int>& members(int c) const {
    return members_[static_cast<size_t>(c)];
  }

  /// Raw (pre-quantization) worst matched delay into the even/odd bank of
  /// live cluster `c`: the per-destination aggregation the hardware
  /// matched-delay sizing performs, maintained under merges as a max.
  Ps worst_in(int c, bool even) const {
    return wi_[2 * static_cast<size_t>(c) + (even ? 0 : 1)];
  }
  /// Static per-fine-bank worst-in (env banks included).
  Ps fine_worst_in(int bank) const {
    return fine_wi_[static_cast<size_t>(bank)];
  }

  /// Merge live mergeable cluster `drop` into live mergeable `keep`.
  void merge(int keep, int drop);
  /// Move fine group `g` out of its (multi-member) cluster into live
  /// mergeable cluster `to`.
  void move(int g, int to);
  /// Revert the most recent un-undone merge/move (LIFO).
  void undo();
  /// Committed (un-undone) delta count — replicas replay by it.
  size_t ops() const { return log_.size(); }

  /// Fine-bank -> quotient-bank map of the current clustering: quotient
  /// indices in first-seen fine-group order, env pair last (the order
  /// quotient_control_graph consumers expect).
  std::vector<int> bank_map(std::vector<ctl::ControlGraph::Bank>* banks) const;
  /// Materialize the current quotient as a validated ControlGraph — byte
  /// for byte what a from-scratch quotient_control_graph build produces.
  ctl::ControlGraph materialize() const;

 private:
  struct Delta {
    bool is_merge = true;
    int a = -1, b = -1;      ///< merge: keep/drop; move: group/to-cluster
    int from = -1;           ///< move: donor cluster
    size_t keep_size = 0;    ///< merge: members_[keep] size before
    size_t member_idx = 0;   ///< move: g's index in the donor's members
    Ps old_wi[4] = {0, 0, 0, 0};  ///< affected clusters' worst-in pairs
  };

  const ctl::ControlGraph& fine_;
  size_t G_ = 0;
  size_t live_ = 0;
  std::vector<int> cluster_;              ///< per fine group
  std::vector<std::vector<int>> members_; ///< per cluster label
  std::vector<char> mergeable_;
  std::vector<Ps> fine_wi_;               ///< per fine bank (static)
  std::vector<Ps> wi_;                    ///< per cluster bank [2c + odd]
  std::vector<Delta> log_;
};

}  // namespace desyn::flow
