// Step 2+3 prerequisites: extract the bank-level control graph of a
// latchified netlist and size the matched delays from static timing.
//
// An edge a->b exists when combinational logic connects bank a's storage
// outputs to bank b's data inputs; its matched delay is
//
//   margin * (worst STA path from a's outputs, launched at the latch
//             propagation delay, to b's data pins  +  setup)
//
// The environment is modeled as a bank pair: env_src (odd) feeds every bank
// whose input cone reaches a primary input (delay = worst PI path) and
// env_snk (even) absorbs every bank whose output cone reaches a primary
// output; env_snk -> env_src closes the loop. This guarantees every bank
// has a predecessor and a successor, which the controller network requires.
#pragma once

#include <span>

#include "cell/tech.h"
#include "core/latchify.h"
#include "ctl/protocol.h"

namespace desyn::flow {

struct AdjacencyResult {
  ctl::ControlGraph cg;  ///< banks in LatchifyResult order, then env pair
  int env_snk = -1;
  int env_src = -1;
};

/// `protocol` only affects RAM-bearing designs: the ordering edges that
/// keep a RAM's write commit inside the window its readers and command
/// sources expect differ between the pulse and the level-enable protocols
/// (see the read-before-write and command-stability notes in the .cpp).
AdjacencyResult extract_control_graph(const nl::Netlist& nl,
                                      const LatchifyResult& lr,
                                      nl::NetId clock,
                                      const cell::Tech& tech, double margin,
                                      ctl::Protocol protocol =
                                          ctl::Protocol::Pulse);

/// The control graph of a *coarser* partition, derived from a finer one
/// without re-running timing: `bank_map[i]` is the quotient bank of fine
/// bank `i` (parity must be preserved; map the fine env pair onto the
/// quotient env pair), `banks` the quotient banks in order. Edges mapping
/// to the same quotient pair merge keeping the larger matched delay —
/// exactly what STA extraction of the merged banks would produce, since
/// arrival times are max-plus. This is the optimizer's incremental
/// re-scoring hook: only the merged banks' rows change, the rest of the
/// graph is copied.
ctl::ControlGraph quotient_control_graph(
    const ctl::ControlGraph& fine, std::span<const int> bank_map,
    std::span<const ctl::ControlGraph::Bank> banks);

}  // namespace desyn::flow
