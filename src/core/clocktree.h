// Clock-tree synthesis for the synchronous reference implementation.
//
// The paper's comparison only makes sense if the synchronous circuit pays
// for its clock network; this module builds a balanced, fanout-bounded
// buffer tree from the clock input to every clock sink (FF CK / latch EN /
// RAM CK pins) so that simulation and power estimation account for it.
// Uniform chunking keeps every sink at the same depth: insertion delay is
// equal for all sinks (zero skew), matching the ideal-clock STA assumption.
#pragma once

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::flow {

struct ClockTree {
  std::vector<nl::CellId> buffers;  ///< tree buffer cells
  std::vector<nl::NetId> nets;      ///< tree nets (for power attribution)
  int levels = 0;
  Ps insertion_delay = 0;           ///< clock pin to sink pin
};

/// Build the tree in place; all pins previously connected to `clock` are
/// re-pointed at leaf buffers. `max_fanout` bounds every tree node's load
/// (8 is a typical CTS buffer fanout). The returned net list includes the
/// clock root, so power attribution covers the whole network.
ClockTree build_clock_tree(nl::Netlist& nl, nl::NetId clock,
                           const cell::Tech& tech, int max_fanout = 8);

}  // namespace desyn::flow
