#include "core/desynchronizer.h"

#include "core/clocktree.h"

namespace desyn::flow {

DesyncResult desynchronize(const nl::Netlist& ff_netlist, nl::NetId clock,
                           const cell::Tech& tech, const DesyncOptions& opt) {
  DESYN_ASSERT(opt.margin >= 1.0, "matched-delay margin must be >= 1");
  DesyncResult res{ff_netlist, {}, {}, {}, -1, -1};
  nl::Netlist& nl = res.netlist;

  res.banks = latchify(nl, clock, opt.strategy);
  AdjacencyResult adj =
      extract_control_graph(nl, res.banks, clock, tech, opt.margin);
  res.cg = std::move(adj.cg);
  res.env_snk = adj.env_snk;
  res.env_src = adj.env_src;

  nl::Builder b(nl);
  res.ctrl = ctl::synthesize_controllers(b, res.cg, ctl::Protocol::Pulse, tech);

  // Rewire storage control pins from the clock to the local pulses. The
  // pulse is transparent-high for every bank, so masters flip LatchN->Latch.
  for (size_t i = 0; i < res.banks.banks.size(); ++i) {
    const Bank& bank = res.banks.banks[i];
    nl::NetId en = res.ctrl.enables[i];
    for (nl::CellId c : bank.latches) {
      if (nl.cell(c).kind == cell::Kind::LatchN) {
        nl.set_kind(c, cell::Kind::Latch);
      }
      nl.rewire_input(c, 1, en);  // EN pin
    }
    for (nl::CellId c : bank.rams) {
      nl.rewire_input(c, 0, en);  // CK pin: write on this bank's pulse
    }
    // High-fanout enables get a distribution tree so no buffer stage's
    // loaded delay approaches the pulse width (inertial swallowing).
    if (nl.net(en).fanout.size() > 8) {
      ClockTree tree = build_clock_tree(nl, en, tech, 8);
      for (nl::NetId n : tree.nets) res.ctrl.control_nets.push_back(n);
      for (nl::CellId c : tree.buffers) res.ctrl.cells.push_back(c);
    }
  }
  nl.check();
  return res;
}

pn::MarkedGraph timed_control_model(const DesyncResult& r,
                                    const cell::Tech& tech) {
  // Mirror the hardware line sizing: per-destination aggregation, response
  // credit, quantization to whole DELAY cells (minimum one).
  const Ps unit = tech.delay_unit();
  const Ps credit = ctl::controller_response_credit(tech);
  std::vector<Ps> worst(r.cg.num_banks(), 0);
  for (const auto& e : r.cg.edges()) {
    worst[static_cast<size_t>(e.to)] =
        std::max(worst[static_cast<size_t>(e.to)], e.matched_delay);
  }
  ctl::ControlGraph q;
  for (size_t i = 0; i < r.cg.num_banks(); ++i) {
    q.add_bank(r.cg.bank(static_cast<int>(i)).name,
               r.cg.bank(static_cast<int>(i)).even);
  }
  for (const auto& e : r.cg.edges()) {
    Ps cells = std::max<Ps>(
        1, (std::max<Ps>(0, worst[static_cast<size_t>(e.to)] - credit) +
            unit - 1) /
               unit);
    q.add_edge(e.from, e.to, cells * unit);
  }
  Ps ctrl = tech.delay(cell::Kind::Inv, 1, 1) +
            tech.delay(cell::Kind::CElem, 2, 2);
  return ctl::protocol_mg(q, ctl::Protocol::Pulse, ctrl, r.ctrl.pulse_width);
}

}  // namespace desyn::flow
