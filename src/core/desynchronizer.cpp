#include "core/desynchronizer.h"

#include <set>

#include "core/clocktree.h"
#include "flow/engine.h"

namespace desyn::flow {

namespace {

/// An enable distribution tree extends a bank's transparency window past
/// its root enable: the leaves open and close one insertion delay later
/// than the controller believes. Left uncompensated, the bank's capture
/// acknowledge releases its producers (including the environment) while
/// leaf latches are still transparent — new data races straight into the
/// capture — and its launch request undersells the data launch time by the
/// same amount. This bites exactly the wide banks the partition optimizer
/// makes first-class (a per-flip-flop producer has no tree at all, so the
/// two insertion delays do not cancel). Compensate by delaying the bank's
/// outgoing handshake signals (the round net under Pulse, both transition
/// signals under the level protocols) by the insertion delay, rounded up
/// to whole DELAY cells. Only the bank's own enable generator (and, for
/// Pulse, its pulse-generator buffer chain) keeps the raw signals —
/// delaying those would shift the window itself and re-create the skew.
void compensate_enable_skew(nl::Netlist& nl, ctl::ControllerNetwork& ctrl,
                            size_t bank, Ps insertion_delay,
                            const cell::Tech& tech) {
  const Ps unit = tech.delay_unit();
  DESYN_ASSERT(unit > 0);
  const int units = static_cast<int>((insertion_delay + unit - 1) / unit);
  if (units <= 0) return;
  std::set<uint32_t> keep;  // cells that must keep the raw signal
  nl::CellId eg = nl.net(ctrl.enables[bank]).driver;
  DESYN_ASSERT(eg.valid());
  keep.insert(eg.value());
  for (nl::NetId in : nl.cell(eg).ins) {
    nl::CellId d = nl.net(in).driver;
    while (d.valid() && nl.cell(d).kind == cell::Kind::Buf) {
      keep.insert(d.value());
      d = nl.net(nl.cell(d).ins[0]).driver;
    }
  }
  for (nl::NetId s : {ctrl.rounds[bank], ctrl.falls[bank]}) {
    if (!s.valid()) continue;
    std::vector<nl::Pin> pins;  // copy: rewiring mutates the fanout list
    for (const nl::Pin& p : nl.net(s).fanout) {
      if (!keep.count(p.cell.value())) pins.push_back(p);
    }
    if (pins.empty()) continue;
    nl::NetId tap = s;
    for (int k = 0; k < units; ++k) {
      nl::NetId next = nl.add_net(cat(nl.net(s).name, ".skew", k));
      nl::CellId c = nl.add_cell(cell::Kind::Delay, "", {tap}, {next});
      ctrl.cells.push_back(c);
      ctrl.control_nets.push_back(next);
      ++ctrl.delay_units;
      tap = next;
    }
    for (const nl::Pin& p : pins) nl.rewire_input(p.cell, p.index, tap);
  }
}

}  // namespace

ctl::ControllerNetwork attach_controllers(nl::Netlist& nl,
                                          const LatchifyResult& banks,
                                          const ctl::ControlGraph& cg,
                                          ctl::Protocol protocol,
                                          const cell::Tech& tech) {
  nl::Builder b(nl);
  ctl::ControllerNetwork ctrl = ctl::synthesize_controllers(b, cg, protocol,
                                                            tech);

  // Rewire storage control pins from the clock to the local enables. The
  // enable is transparent-high for every bank under every protocol, so
  // masters flip LatchN->Latch.
  for (size_t i = 0; i < banks.banks.size(); ++i) {
    const Bank& bank = banks.banks[i];
    nl::NetId en = ctrl.enables[i];
    for (nl::CellId c : bank.latches) {
      if (nl.cell(c).kind == cell::Kind::LatchN) {
        nl.set_kind(c, cell::Kind::Latch);
      }
      nl.rewire_input(c, 1, en);  // EN pin
    }
    // RAM CK: the write commits on the enable's rise (the pulse start /
    // writer+). Every protocol orders writer+ after the captures of the
    // banks reading the RAM (the adjacency's reader -> writer edges) and
    // after the command-hold masters' captures, so the commit samples a
    // stable command and readers see strictly pre-write data.
    for (nl::CellId c : bank.rams) {
      nl.rewire_input(c, 0, en);
    }
    // High-fanout enables get a distribution tree so no buffer stage's
    // loaded delay approaches the pulse width (inertial swallowing), plus
    // handshake-side compensation for the tree's insertion delay.
    if (nl.net(en).fanout.size() > 8) {
      ClockTree tree = build_clock_tree(nl, en, tech, 8);
      for (nl::NetId n : tree.nets) ctrl.control_nets.push_back(n);
      for (nl::CellId c : tree.buffers) ctrl.cells.push_back(c);
      compensate_enable_skew(nl, ctrl, i, tree.insertion_delay, tech);
    }
  }
  nl.check();
  return ctrl;
}

DesyncResult desynchronize(const nl::Netlist& ff_netlist, nl::NetId clock,
                           const cell::Tech& tech, const DesyncOptions& opt) {
  return *Engine::process(tech).desynchronize(ff_netlist, clock, opt);
}

DesyncResult desynchronize_reference(const nl::Netlist& ff_netlist,
                                     nl::NetId clock, const cell::Tech& tech,
                                     const DesyncOptions& opt) {
  DESYN_ASSERT(opt.margin >= 1.0, "matched-delay margin must be >= 1");
  for (double m : opt.margins) {
    DESYN_ASSERT(m <= 0.0 || m >= 1.0,
                 "per-bank margins must be >= 1 (or <= 0 = unset)");
  }
  DesyncResult res{ff_netlist, {}, {}, {}, {}, -1, -1, opt.protocol};
  nl::Netlist& nl = res.netlist;

  // Resolve the partition against the *input* netlist (cell ids are stable
  // across the copy): Auto runs the MCR-guided optimizer here. Per-bank
  // margins do not feed the partitioner — bank ids only exist once the
  // clustering is fixed, so the optimizer always scores at the global
  // margin (mirrored in the engine's partition stage key).
  res.partition = make_partition(ff_netlist, clock, opt.strategy, tech,
                                 opt.protocol, opt.margin, opt.opt_jobs);
  res.banks = latchify(nl, clock, res.partition);
  AdjacencyResult adj =
      extract_control_graph(nl, res.banks, clock, tech,
                            Margins(opt.margin, opt.margins), opt.protocol);
  res.cg = std::move(adj.cg);
  res.env_snk = adj.env_snk;
  res.env_src = adj.env_src;
  res.ctrl = attach_controllers(nl, res.banks, res.cg, opt.protocol, tech);
  return res;
}

pn::MarkedGraph timed_control_model(const DesyncResult& r,
                                    const cell::Tech& tech) {
  // The line-sizing rules (per-destination aggregation, response credit,
  // quantization) live in flow::timed_model, shared with the partition
  // optimizer's scoring loop so predictions cannot drift apart.
  return timed_model(r.cg, r.protocol, tech, r.ctrl.pulse_width);
}

sim::DomainMap sim_domains(const DesyncResult& r) {
  const nl::Netlist& nl = r.netlist;
  const auto groups = static_cast<uint32_t>(r.partition.num_groups());
  std::vector<int32_t> seed(nl.num_cells(), -1);
  // Bank-pair storage seeds its partition group: banks (2g, 2g+1) -> g.
  for (size_t b = 0; b < r.banks.banks.size(); ++b) {
    const auto g = static_cast<int32_t>(b / 2);
    for (nl::CellId c : r.banks.banks[b].latches) seed[c.value()] = g;
    for (nl::CellId c : r.banks.banks[b].rams) seed[c.value()] = g;
  }
  // Each bank's controller cone seeds the same group via the drivers of
  // its handshake nets (enable, round token, capture acknowledge); without
  // these the nearest-seed flood would pull every controller toward one
  // group through the strongly-connected handshake graph. The env bank
  // pair gets its own seed domain, `groups`.
  std::vector<nl::CellId> driver(nl.num_nets());
  for (nl::CellId c : nl.cells()) {
    for (nl::NetId o : nl.cell(c).outs) driver[o.value()] = c;
  }
  auto seed_driver = [&](nl::NetId n, int32_t g) {
    if (!n.valid()) return;
    const nl::CellId d = driver[n.value()];
    if (d.valid() && seed[d.value()] < 0) seed[d.value()] = g;
  };
  const size_t data_banks = 2 * static_cast<size_t>(groups);
  for (size_t b = 0; b < r.ctrl.enables.size(); ++b) {
    const int32_t g = b < data_banks ? static_cast<int32_t>(b / 2)
                                     : static_cast<int32_t>(groups);
    seed_driver(r.ctrl.enables[b], g);
    seed_driver(r.ctrl.rounds[b], g);
    if (b < r.ctrl.falls.size()) seed_driver(r.ctrl.falls[b], g);
  }
  return sim::derive_domains(nl, groups + 1, seed);
}

sim::DomainMap sync_sim_domains(const nl::Netlist& snl, const Partition& p) {
  std::vector<int32_t> seed(snl.num_cells(), -1);
  const auto& gs = p.groups();
  for (size_t g = 0; g < gs.size(); ++g) {
    for (nl::CellId c : gs[g].cells) {
      seed[c.value()] = static_cast<int32_t>(g);
    }
  }
  // The clock tree and the datapath cones flood toward their consuming
  // groups; the tree root lands wherever its nearest leaves do.
  return sim::derive_domains(snl, static_cast<uint32_t>(gs.size()), seed);
}

}  // namespace desyn::flow
