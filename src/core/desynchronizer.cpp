#include "core/desynchronizer.h"

#include "core/clocktree.h"

namespace desyn::flow {

DesyncResult desynchronize(const nl::Netlist& ff_netlist, nl::NetId clock,
                           const cell::Tech& tech, const DesyncOptions& opt) {
  DESYN_ASSERT(opt.margin >= 1.0, "matched-delay margin must be >= 1");
  DesyncResult res{ff_netlist, {}, {}, {}, -1, -1, opt.protocol};
  nl::Netlist& nl = res.netlist;

  res.banks = latchify(nl, clock, opt.strategy);
  AdjacencyResult adj = extract_control_graph(nl, res.banks, clock, tech,
                                              opt.margin, opt.protocol);
  res.cg = std::move(adj.cg);
  res.env_snk = adj.env_snk;
  res.env_src = adj.env_src;

  nl::Builder b(nl);
  res.ctrl = ctl::synthesize_controllers(b, res.cg, opt.protocol, tech);

  // Rewire storage control pins from the clock to the local enables. The
  // enable is transparent-high for every bank under every protocol, so
  // masters flip LatchN->Latch.
  for (size_t i = 0; i < res.banks.banks.size(); ++i) {
    const Bank& bank = res.banks.banks[i];
    nl::NetId en = res.ctrl.enables[i];
    for (nl::CellId c : bank.latches) {
      if (nl.cell(c).kind == cell::Kind::LatchN) {
        nl.set_kind(c, cell::Kind::Latch);
      }
      nl.rewire_input(c, 1, en);  // EN pin
    }
    // RAM CK: the write commits on the enable's rise (the pulse start /
    // writer+). Every protocol orders writer+ after the captures of the
    // banks reading the RAM (the adjacency's reader -> writer edges) and
    // after the command-hold masters' captures, so the commit samples a
    // stable command and readers see strictly pre-write data.
    for (nl::CellId c : bank.rams) {
      nl.rewire_input(c, 0, en);
    }
    // High-fanout enables get a distribution tree so no buffer stage's
    // loaded delay approaches the pulse width (inertial swallowing).
    if (nl.net(en).fanout.size() > 8) {
      ClockTree tree = build_clock_tree(nl, en, tech, 8);
      for (nl::NetId n : tree.nets) res.ctrl.control_nets.push_back(n);
      for (nl::CellId c : tree.buffers) res.ctrl.cells.push_back(c);
    }
  }
  nl.check();
  return res;
}

pn::MarkedGraph timed_control_model(const DesyncResult& r,
                                    const cell::Tech& tech) {
  // Mirror the hardware line sizing: per-destination aggregation, response
  // credit, quantization to whole DELAY cells (minimum one).
  std::vector<Ps> worst(r.cg.num_banks(), 0);
  for (const auto& e : r.cg.edges()) {
    worst[static_cast<size_t>(e.to)] =
        std::max(worst[static_cast<size_t>(e.to)], e.matched_delay);
  }
  ctl::ControlGraph q;
  for (size_t i = 0; i < r.cg.num_banks(); ++i) {
    q.add_bank(r.cg.bank(static_cast<int>(i)).name,
               r.cg.bank(static_cast<int>(i)).even);
  }
  for (const auto& e : r.cg.edges()) {
    q.add_edge(e.from, e.to,
               ctl::matched_delay_cells(worst[static_cast<size_t>(e.to)],
                                        tech) *
                   tech.delay_unit());
  }
  Ps ctrl = tech.delay(cell::Kind::Inv, 1, 1) +
            tech.delay(cell::Kind::CElem, 2, 2);
  return ctl::hardware_mg(q, r.protocol, ctrl, r.ctrl.pulse_width);
}

}  // namespace desyn::flow
