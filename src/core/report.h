// Implementation reports and the paper-style comparison table.
#pragma once

#include <string>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::flow {

/// One implementation's headline numbers (one column of Table 1).
struct ImplReport {
  std::string name;
  Ps cycle_time = 0;          ///< ps
  double power_mw = 0;        ///< total dynamic power
  double clock_power_mw = 0;  ///< clock tree / control network share
  Um2 area = 0;
  size_t cells = 0;
};

/// Total cell area of a netlist under `tech`.
Um2 total_area(const nl::Netlist& nl, const cell::Tech& tech);

/// Render a Table-1-style comparison (rows: cycle time, dynamic power,
/// area; columns: the given implementations) with relative overheads.
std::string format_comparison(const ImplReport& sync, const ImplReport& desync);

}  // namespace desyn::flow
