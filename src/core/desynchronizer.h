// The end-to-end de-synchronization flow (the paper's contribution):
//
//   synchronous FF netlist
//     -> latch-based conversion            (latchify)
//     -> bank adjacency + matched delays   (adjacency, STA-sized)
//     -> handshake controller network      (ctl, any protocol)
//     -> clock pins rewired to local latch enables; the global clock net
//        is left without load (the clock tree is simply never built).
//
// The result is flow-equivalent to the synchronous circuit: the i-th value
// captured by every (master) latch equals the i-th value captured by the
// corresponding flip-flop (verified by desyn::verif, for every protocol).
#pragma once

#include "core/adjacency.h"
#include "core/latchify.h"
#include "ctl/controller.h"
#include "sim/domains.h"

namespace desyn::flow {

struct DesyncOptions {
  /// How to cluster storage cells into control banks: a parsed CLI spec
  /// ("prefix:2", "auto:1.05", ...) or an explicit Partition via
  /// PartitionSpec::explicit_().
  PartitionSpec strategy;
  /// Safety factor applied to every STA-sized matched delay; plays the role
  /// of the synchronous flow's clock-uncertainty margin.
  double margin = 1.10;
  /// Optional per-destination-bank margin overrides (control-graph bank
  /// ids; see flow::Margins). Empty = uniform `margin` everywhere. Every
  /// entry must be >= 1 (or 0/negative = use the global); flow::
  /// optimize_margins produces these. Unlike the job counts this *changes
  /// the hardware*, so the engine hashes it into every stage key.
  std::vector<double> margins;
  /// Handshake protocol the controllers are synthesized for. Pulse is the
  /// historical default; the Fig. 4 family (Lockstep/Semi/Fully) yields
  /// level-sensitive enables with progressively more overlap.
  ctl::Protocol protocol = ctl::Protocol::Pulse;
  /// Candidate-scoring threads for the Auto strategy's partition
  /// optimizer (byte-identical results for any value; see
  /// PartitionOptOptions::jobs). Ignored by the other strategies.
  int opt_jobs = 1;
  /// Worker threads for the sharded event simulator wherever the flow
  /// simulates (flow equivalence, sweeps). Byte-identical results for any
  /// value (see sim::SimOptions::jobs); 1 = the serial oracle.
  int sim_jobs = 1;
};

struct DesyncResult {
  nl::Netlist netlist;          ///< the desynchronized circuit
  Partition partition;          ///< the storage clustering actually used
  LatchifyResult banks;         ///< cell ids valid in `netlist`
  ctl::ControlGraph cg;         ///< control graph with matched delays
  ctl::ControllerNetwork ctrl;  ///< enables/round nets in `netlist`
  int env_snk = -1;
  int env_src = -1;
  ctl::Protocol protocol = ctl::Protocol::Pulse;  ///< protocol synthesized

  /// Enable net of bank `i` (latch pulse / transparency level).
  nl::NetId enable(int bank) const {
    return ctrl.enables[static_cast<size_t>(bank)];
  }
  nl::NetId env_src_enable() const { return enable(env_src); }
};

/// Run the flow on a copy of `ff_netlist` through the process-wide staged
/// engine (flow/engine.h): every stage is served from the content-addressed
/// artifact cache when its inputs are unchanged, and the result is
/// byte-identical to desynchronize_reference(). Throws MultiClockError on
/// multi-clock designs.
DesyncResult desynchronize(const nl::Netlist& ff_netlist, nl::NetId clock,
                           const cell::Tech& tech,
                           const DesyncOptions& opt = {});

/// The monolithic, uncached flow — the oracle the staged engine is pinned
/// against, the same way optimize_partition_reference() pins the partition
/// optimizer: for identical inputs the engine must emit byte-identical
/// Verilog (tests compare both on every circuit x protocol).
DesyncResult desynchronize_reference(const nl::Netlist& ff_netlist,
                                     nl::NetId clock, const cell::Tech& tech,
                                     const DesyncOptions& opt = {});

/// Steps 3+4 of the flow on an already-latchified netlist: synthesize the
/// controller network for `cg`, rewire every bank's storage control pins
/// from the clock to its local enable (masters flip LatchN->Latch, RAM CK
/// commits on the enable rise), grow distribution trees for high-fanout
/// enables and compensate their insertion skew on the handshake side.
/// Ends with nl.check(). Shared by desynchronize_reference() and the
/// engine's synth stage so the two cannot drift apart.
ctl::ControllerNetwork attach_controllers(nl::Netlist& nl,
                                          const LatchifyResult& banks,
                                          const ctl::ControlGraph& cg,
                                          ctl::Protocol protocol,
                                          const cell::Tech& tech);

/// The timed protocol model of a desynchronized circuit, ready for
/// max-cycle-ratio throughput prediction (bench A3). Delays are quantized
/// exactly as the hardware delay lines are.
pn::MarkedGraph timed_control_model(const DesyncResult& r,
                                    const cell::Tech& tech);

/// Simulation domain map of a desynchronized circuit, derived from the
/// resolved partition: one domain per bank-pair group (its latches, RAMs
/// and controller cone, with receiver-side ownership of the data cones and
/// matched-delay lines between groups), one for the environment bank pair,
/// and one for whatever reaches no bank (primary-output cones) —
/// `partition.num_groups() + 2` in total. Purely a performance policy:
/// sim::Simulator results are byte-identical for any map (sim/domains.h).
sim::DomainMap sim_domains(const DesyncResult& r);

/// Simulation domain map for the synchronous reference circuit (`snl` =
/// the FF netlist, possibly with a clock tree attached): storage cells
/// seed the same partition groups the desynchronized side uses, so the
/// clock/datapath cut shards identically on both sides of a
/// flow-equivalence run.
sim::DomainMap sync_sim_domains(const nl::Netlist& snl, const Partition& p);

}  // namespace desyn::flow
