#include "dlx/isa.h"

namespace desyn::dlx {

namespace {

// Opcode / funct values (MIPS-inspired).
constexpr uint32_t kOpR = 0x00, kFAdd = 0x20, kFSub = 0x22, kFAnd = 0x24,
                   kFOr = 0x25, kFXor = 0x26, kFSlt = 0x2a;
constexpr uint32_t kOpAddi = 0x08, kOpSlti = 0x0a, kOpAndi = 0x0c,
                   kOpOri = 0x0d, kOpXori = 0x0e, kOpLui = 0x0f,
                   kOpLw = 0x23, kOpSw = 0x2b, kOpBeq = 0x04, kOpBne = 0x05,
                   kOpJ = 0x02;

uint32_t r_type(uint32_t funct, int rd, int rs, int rt) {
  return (kOpR << 26) | (static_cast<uint32_t>(rs) << 21) |
         (static_cast<uint32_t>(rt) << 16) |
         (static_cast<uint32_t>(rd) << 11) | funct;
}

uint32_t i_type(uint32_t op, int rt, int rs, int32_t imm) {
  return (op << 26) | (static_cast<uint32_t>(rs) << 21) |
         (static_cast<uint32_t>(rt) << 16) |
         (static_cast<uint32_t>(imm) & 0xffffu);
}

}  // namespace

uint32_t encode(const Ins& ins) {
  switch (ins.op) {
    case Op::NOP: return 0;
    case Op::ADD: return r_type(kFAdd, ins.rd, ins.rs, ins.rt);
    case Op::SUB: return r_type(kFSub, ins.rd, ins.rs, ins.rt);
    case Op::AND_: return r_type(kFAnd, ins.rd, ins.rs, ins.rt);
    case Op::OR_: return r_type(kFOr, ins.rd, ins.rs, ins.rt);
    case Op::XOR_: return r_type(kFXor, ins.rd, ins.rs, ins.rt);
    case Op::SLT: return r_type(kFSlt, ins.rd, ins.rs, ins.rt);
    case Op::ADDI: return i_type(kOpAddi, ins.rt, ins.rs, ins.imm);
    case Op::ANDI: return i_type(kOpAndi, ins.rt, ins.rs, ins.imm);
    case Op::ORI: return i_type(kOpOri, ins.rt, ins.rs, ins.imm);
    case Op::XORI: return i_type(kOpXori, ins.rt, ins.rs, ins.imm);
    case Op::SLTI: return i_type(kOpSlti, ins.rt, ins.rs, ins.imm);
    case Op::LUI: return i_type(kOpLui, ins.rt, 0, ins.imm);
    case Op::LW: return i_type(kOpLw, ins.rt, ins.rs, ins.imm);
    case Op::SW: return i_type(kOpSw, ins.rt, ins.rs, ins.imm);
    case Op::BEQ: return i_type(kOpBeq, ins.rt, ins.rs, ins.imm);
    case Op::BNE: return i_type(kOpBne, ins.rt, ins.rs, ins.imm);
    case Op::J: return (kOpJ << 26) | (static_cast<uint32_t>(ins.imm) & 0x3ffffffu);
  }
  fail("encode: bad opcode");
}

Ins decode(uint32_t w) {
  Ins ins;
  if (w == 0) return ins;  // NOP
  uint32_t op = w >> 26;
  ins.rs = static_cast<int>((w >> 21) & 31);
  ins.rt = static_cast<int>((w >> 16) & 31);
  ins.rd = static_cast<int>((w >> 11) & 31);
  int32_t imm16 = static_cast<int16_t>(w & 0xffffu);
  ins.imm = imm16;
  switch (op) {
    case kOpR:
      switch (w & 0x3fu) {
        case kFAdd: ins.op = Op::ADD; break;
        case kFSub: ins.op = Op::SUB; break;
        case kFAnd: ins.op = Op::AND_; break;
        case kFOr: ins.op = Op::OR_; break;
        case kFXor: ins.op = Op::XOR_; break;
        case kFSlt: ins.op = Op::SLT; break;
        default: fail("decode: bad funct ", w & 0x3fu);
      }
      return ins;
    case kOpAddi: ins.op = Op::ADDI; return ins;
    case kOpAndi: ins.op = Op::ANDI; ins.imm = static_cast<int32_t>(w & 0xffffu); return ins;
    case kOpOri: ins.op = Op::ORI; ins.imm = static_cast<int32_t>(w & 0xffffu); return ins;
    case kOpXori: ins.op = Op::XORI; ins.imm = static_cast<int32_t>(w & 0xffffu); return ins;
    case kOpSlti: ins.op = Op::SLTI; return ins;
    case kOpLui: ins.op = Op::LUI; ins.imm = static_cast<int32_t>(w & 0xffffu); return ins;
    case kOpLw: ins.op = Op::LW; return ins;
    case kOpSw: ins.op = Op::SW; return ins;
    case kOpBeq: ins.op = Op::BEQ; return ins;
    case kOpBne: ins.op = Op::BNE; return ins;
    case kOpJ:
      ins.op = Op::J;
      ins.imm = static_cast<int32_t>(w & 0x3ffffffu);
      return ins;
    default:
      fail("decode: bad opcode ", op);
  }
}

std::string to_string(const Ins& i) {
  switch (i.op) {
    case Op::NOP: return "nop";
    case Op::ADD: return cat("add r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::SUB: return cat("sub r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::AND_: return cat("and r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::OR_: return cat("or r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::XOR_: return cat("xor r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::SLT: return cat("slt r", i.rd, ", r", i.rs, ", r", i.rt);
    case Op::ADDI: return cat("addi r", i.rt, ", r", i.rs, ", ", i.imm);
    case Op::ANDI: return cat("andi r", i.rt, ", r", i.rs, ", ", i.imm);
    case Op::ORI: return cat("ori r", i.rt, ", r", i.rs, ", ", i.imm);
    case Op::XORI: return cat("xori r", i.rt, ", r", i.rs, ", ", i.imm);
    case Op::SLTI: return cat("slti r", i.rt, ", r", i.rs, ", ", i.imm);
    case Op::LUI: return cat("lui r", i.rt, ", ", i.imm);
    case Op::LW: return cat("lw r", i.rt, ", ", i.imm, "(r", i.rs, ")");
    case Op::SW: return cat("sw r", i.rt, ", ", i.imm, "(r", i.rs, ")");
    case Op::BEQ: return cat("beq r", i.rs, ", r", i.rt, ", ", i.imm);
    case Op::BNE: return cat("bne r", i.rs, ", r", i.rt, ", ", i.imm);
    case Op::J: return cat("j ", i.imm);
  }
  return "?";
}

}  // namespace desyn::dlx
