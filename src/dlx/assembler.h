// Scheduling assembler: emits instructions while automatically inserting
// the NOPs the interlock-free pipeline requires (register-use latency of 3
// intervening slots, 2 branch delay slots) and resolving branch targets.
#pragma once

#include <vector>

#include "dlx/isa.h"

namespace desyn::dlx {

class Asm {
 public:
  int here() const { return static_cast<int>(prog_.size()); }

  /// Append without scheduling (trusted placement).
  void raw(const Ins& ins);
  /// Append with automatic RAW NOP insertion; branches/jumps get their two
  /// delay-slot NOPs appended.
  void emit(const Ins& ins);

  // Convenience builders.
  void op3(Op op, int rd, int rs, int rt) { emit({op, rd, rs, rt, 0}); }
  void opi(Op op, int rt, int rs, int32_t imm) { emit({op, 0, rs, rt, imm}); }
  void nop(int count = 1);

  /// Bind-later label support.
  int label() const { return here(); }
  /// Backward branch to an already bound label.
  void branch_to(Op op, int rs, int rt, int target);
  /// Forward branch; returns a fixup handle for bind().
  int branch_fwd(Op op, int rs, int rt);
  void bind(int fixup);
  void jump_to(int target);
  /// Infinite self-loop terminator.
  void halt();

  const std::vector<Ins>& instructions() const { return prog_; }
  std::vector<uint32_t> assemble() const;

 private:
  void schedule_reads(const Ins& ins);
  std::vector<Ins> prog_;
  int def_index_[32];

 public:
  Asm() {
    for (int& d : def_index_) d = -1000;
  }
};

}  // namespace desyn::dlx
