// Gate-level 5-stage DLX pipeline generator (the paper's case study).
//
// Stages IF / ID / EX / MEM / WB with stage registers ifid, idex, exmem,
// memwb, a flip-flop register file, ROM instruction memory and RAM data
// memory. No interlocks or forwarding: the ISA defines the scheduling
// contract (see isa.h), which the assembler-produced programs respect, so
// the pipeline is cycle-equivalent to the sequential ISS.
//
// Register banks are named per stage ("pc", "ifid", "idex", "exmem",
// "memwb", "rf"), which is exactly what the desynchronization flow's
// prefix banking groups into one controller each — mirroring the paper's
// one-controller-per-pipeline-register structure.
#pragma once

#include "dlx/iss.h"
#include "rtl/bus.h"

namespace desyn::dlx {

struct DlxInfo {
  nl::NetId clk;
  rtl::Bus pc;        ///< primary output: current fetch address
  rtl::Bus wb_value;  ///< primary output: write-back value
  nl::NetId wb_we;    ///< primary output: write-back enable
  nl::CellId dmem;    ///< the data-memory macro (for state inspection)
};

/// Build the processor into `nl`. The program is padded to the instruction
/// memory size with NOPs.
DlxInfo build_dlx(nl::Netlist& nl, const DlxConfig& cfg,
                  std::vector<uint32_t> program);

/// Net carrying bit `bit` of architectural register `r` ("rf.x<r>_q<bit>");
/// lets testbenches read register state out of a simulated netlist.
nl::NetId reg_bit_net(const nl::Netlist& nl, int r, int bit);

}  // namespace desyn::dlx
