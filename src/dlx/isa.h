// The DLX-subset ISA used by the case study (paper §3).
//
// 32-bit instructions, word-addressed memory, MIPS-like encodings. The
// pipeline has no interlocks or forwarding: the architecture defines a
// 3-instruction register-use latency and 2 branch/jump delay slots, and the
// assembler schedules NOPs accordingly (both the ISS and the gate-level
// pipeline implement exactly these semantics, so they agree cycle for
// cycle).
#pragma once

#include <cstdint>
#include <string>

#include "base/common.h"

namespace desyn::dlx {

enum class Op : uint8_t {
  NOP,   // encoded as the all-zero word
  ADD, SUB, AND_, OR_, XOR_, SLT,          // R-type: rd = rs op rt
  ADDI, ANDI, ORI, XORI, SLTI,             // I-type: rt = rs op imm
  LUI,                                     // rt = imm << 16
  LW, SW,                                  // rt <-> mem[rs + imm]
  BEQ, BNE,                                // pc = pc+1+imm after 2 slots
  J,                                       // pc = target     after 2 slots
};

struct Ins {
  Op op = Op::NOP;
  int rd = 0;   ///< R-type destination
  int rs = 0;
  int rt = 0;   ///< I-type destination / store source / branch operand
  int32_t imm = 0;
};

uint32_t encode(const Ins& ins);
Ins decode(uint32_t word);
std::string to_string(const Ins& ins);

/// Register-use latency (producer to consumer distance the scheduler must
/// respect) and branch delay slots of the architecture.
inline constexpr int kUseLatency = 3;
inline constexpr int kBranchSlots = 2;

}  // namespace desyn::dlx
