#include "dlx/assembler.h"

namespace desyn::dlx {

namespace {

/// Registers read by an instruction.
void reads_of(const Ins& i, int out[2]) {
  out[0] = out[1] = -1;
  switch (i.op) {
    case Op::NOP:
    case Op::J:
    case Op::LUI:
      return;
    case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
    case Op::XOR_: case Op::SLT:
    case Op::BEQ: case Op::BNE:
    case Op::SW:
      out[0] = i.rs;
      out[1] = i.rt;
      return;
    default:  // I-type ALU + LW
      out[0] = i.rs;
      return;
  }
}

/// Register written (or -1).
int write_of(const Ins& i) {
  switch (i.op) {
    case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
    case Op::XOR_: case Op::SLT:
      return i.rd;
    case Op::ADDI: case Op::ANDI: case Op::ORI: case Op::XORI:
    case Op::SLTI: case Op::LUI: case Op::LW:
      return i.rt;
    default:
      return -1;
  }
}

bool is_control(Op op) { return op == Op::BEQ || op == Op::BNE || op == Op::J; }

}  // namespace

void Asm::raw(const Ins& ins) {
  int wr = write_of(ins);
  if (wr > 0) def_index_[wr] = here();
  prog_.push_back(ins);
}

void Asm::schedule_reads(const Ins& ins) {
  int rd[2];
  reads_of(ins, rd);
  for (int r : rd) {
    if (r <= 0) continue;
    while (here() - def_index_[r] <= kUseLatency) prog_.push_back(Ins{});
  }
}

void Asm::emit(const Ins& ins) {
  schedule_reads(ins);
  raw(ins);
  if (is_control(ins.op)) nop(kBranchSlots);
}

void Asm::nop(int count) {
  for (int i = 0; i < count; ++i) prog_.push_back(Ins{});
}

void Asm::branch_to(Op op, int rs, int rt, int target) {
  Ins ins{op, 0, rs, rt, 0};
  schedule_reads(ins);
  ins.imm = target - (here() + 1);
  raw(ins);
  nop(kBranchSlots);
}

int Asm::branch_fwd(Op op, int rs, int rt) {
  Ins ins{op, 0, rs, rt, 0};
  schedule_reads(ins);
  int at = here();
  raw(ins);
  nop(kBranchSlots);
  return at;
}

void Asm::bind(int fixup) {
  DESYN_ASSERT(fixup >= 0 && fixup < here());
  prog_[static_cast<size_t>(fixup)].imm = here() - (fixup + 1);
}

void Asm::jump_to(int target) {
  raw(Ins{Op::J, 0, 0, 0, target});
  nop(kBranchSlots);
}

void Asm::halt() {
  int self = here();
  jump_to(self);
}

std::vector<uint32_t> Asm::assemble() const {
  std::vector<uint32_t> out;
  out.reserve(prog_.size());
  for (const Ins& i : prog_) out.push_back(encode(i));
  return out;
}

}  // namespace desyn::dlx
