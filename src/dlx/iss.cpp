#include "dlx/iss.h"

namespace desyn::dlx {

Iss::Iss(const DlxConfig& cfg, std::vector<uint32_t> program)
    : cfg_(cfg), imem_(std::move(program)) {
  DESYN_ASSERT(imem_.size() <= (1u << cfg.imem_bits));
  imem_.resize(1u << cfg.imem_bits, 0);
  regs_.assign(static_cast<size_t>(cfg.regs), 0);
  dmem_.assign(1u << cfg.dmem_bits, 0);
}

void Iss::step() {
  const uint32_t pc_mask = (1u << cfg_.imem_bits) - 1;
  const uint32_t dmask = (1u << cfg_.dmem_bits) - 1;
  const int rmask = cfg_.regs - 1;
  Ins ins = decode(imem_[pc_ & pc_mask]);
  uint32_t next = (pc_ + 1) & pc_mask;

  auto rs = [&] { return regs_[static_cast<size_t>(ins.rs & rmask)]; };
  auto rt = [&] { return regs_[static_cast<size_t>(ins.rt & rmask)]; };
  uint32_t imm = static_cast<uint32_t>(ins.imm);

  switch (ins.op) {
    case Op::NOP: break;
    case Op::ADD: write_reg(ins.rd & rmask, rs() + rt()); break;
    case Op::SUB: write_reg(ins.rd & rmask, rs() - rt()); break;
    case Op::AND_: write_reg(ins.rd & rmask, rs() & rt()); break;
    case Op::OR_: write_reg(ins.rd & rmask, rs() | rt()); break;
    case Op::XOR_: write_reg(ins.rd & rmask, rs() ^ rt()); break;
    case Op::SLT:
      write_reg(ins.rd & rmask, static_cast<int32_t>(rs()) <
                                        static_cast<int32_t>(rt())
                                    ? 1
                                    : 0);
      break;
    case Op::ADDI: write_reg(ins.rt & rmask, rs() + imm); break;
    case Op::ANDI: write_reg(ins.rt & rmask, rs() & (imm & 0xffffu)); break;
    case Op::ORI: write_reg(ins.rt & rmask, rs() | (imm & 0xffffu)); break;
    case Op::XORI: write_reg(ins.rt & rmask, rs() ^ (imm & 0xffffu)); break;
    case Op::SLTI:
      write_reg(ins.rt & rmask,
                static_cast<int32_t>(rs()) < ins.imm ? 1 : 0);
      break;
    case Op::LUI: write_reg(ins.rt & rmask, (imm & 0xffffu) << 16); break;
    case Op::LW: write_reg(ins.rt & rmask, dmem_[(rs() + imm) & dmask]); break;
    case Op::SW: dmem_[(rs() + imm) & dmask] = rt(); break;
    case Op::BEQ:
      if (rs() == rt()) {
        pending_ = kBranchSlots;
        redirect_ = (pc_ + 1 + imm) & pc_mask;
      }
      break;
    case Op::BNE:
      if (rs() != rt()) {
        pending_ = kBranchSlots;
        redirect_ = (pc_ + 1 + imm) & pc_mask;
      }
      break;
    case Op::J:
      pending_ = kBranchSlots;
      redirect_ = imm & pc_mask;
      break;
  }

  if (pending_ == 0) {
    next = redirect_;
    pending_ = -1;
  } else if (pending_ > 0) {
    --pending_;
  }
  pc_ = next;
  ++retired_;
}

}  // namespace desyn::dlx
