// Workload programs for the DLX case study. All are scheduled by the Asm
// class (NOP insertion) and terminate in a halt spin, so running "too many"
// cycles is harmless.
#pragma once

#include <vector>

#include "dlx/assembler.h"

namespace desyn::dlx {

/// fib(0..n-1) stored to dmem[0..n-1].
std::vector<uint32_t> fibonacci_program(int n);
/// Writes a[i]=3i+7 to dmem[0..n-1], then stores sum at dmem[n] and xor
/// checksum at dmem[n+1].
std::vector<uint32_t> checksum_program(int n);
/// Fills dmem[0..n-1] with a pseudo-random sequence and bubble-sorts it.
std::vector<uint32_t> sort_program(int n);
/// Fills dmem[0..n-1], then copies it to dmem[n..2n-1].
std::vector<uint32_t> memcpy_program(int n);

struct Workload {
  const char* name;
  std::vector<uint32_t> words;
  int cycles;  ///< suggested simulation length (includes halt spin)
};

/// The benchmark mix used by the Table-1 reproduction.
std::vector<Workload> standard_workloads();

}  // namespace desyn::dlx
