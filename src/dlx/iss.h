// Golden instruction-set simulator: the architectural reference the
// gate-level pipeline is validated against (co-simulation tests).
#pragma once

#include <vector>

#include "dlx/isa.h"

namespace desyn::dlx {

struct DlxConfig {
  int regs = 16;       ///< architectural registers (power of two)
  int imem_bits = 8;   ///< instruction memory address bits (words)
  int dmem_bits = 6;   ///< data memory address bits (words)
};

class Iss {
 public:
  Iss(const DlxConfig& cfg, std::vector<uint32_t> program);

  /// Execute one instruction (including NOPs / delay slots).
  void step();
  void run(int steps) {
    for (int i = 0; i < steps; ++i) step();
  }

  uint32_t pc() const { return pc_; }
  uint32_t reg(int i) const { return regs_[static_cast<size_t>(i)]; }
  uint32_t dmem(uint32_t addr) const {
    return dmem_[addr & ((1u << cfg_.dmem_bits) - 1)];
  }
  const std::vector<uint32_t>& dmem_words() const { return dmem_; }
  uint64_t instructions_retired() const { return retired_; }

 private:
  void write_reg(int r, uint32_t v) {
    if (r != 0) regs_[static_cast<size_t>(r)] = v;
  }
  DlxConfig cfg_;
  std::vector<uint32_t> imem_;
  std::vector<uint32_t> regs_;
  std::vector<uint32_t> dmem_;
  uint32_t pc_ = 0;
  int pending_ = -1;        ///< branch delay-slot countdown
  uint32_t redirect_ = 0;
  uint64_t retired_ = 0;
};

}  // namespace desyn::dlx
