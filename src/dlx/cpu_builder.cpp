#include "dlx/cpu_builder.h"

namespace desyn::dlx {

using nl::NetId;
using rtl::Bus;
using rtl::Word;

namespace {

/// True when `bus` equals the constant `value` (XNOR/AND tree).
NetId match(Word& w, const Bus& bus, uint64_t value) {
  nl::Builder& b = w.builder();
  std::vector<NetId> bits;
  for (size_t i = 0; i < bus.size(); ++i) {
    bits.push_back((value >> i) & 1 ? bus[i] : b.inv(bus[i]));
  }
  return b.and_(bits);
}

int log2i(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

/// Placeholder bus to be driven later (forward references in the loop).
Bus placeholders(nl::Netlist& nl, std::string_view name, int width) {
  Bus bus;
  for (int i = 0; i < width; ++i) bus.push_back(nl.add_net(cat(name, i)));
  return bus;
}

/// Drive each placeholder from the computed value through a buffer.
void drive(nl::Netlist& nl, const Bus& ph, const Bus& value) {
  DESYN_ASSERT(ph.size() == value.size());
  for (size_t i = 0; i < ph.size(); ++i) {
    nl.add_cell(cell::Kind::Buf, "", {value[i]}, {ph[i]});
  }
}

}  // namespace

DlxInfo build_dlx(nl::Netlist& nl, const DlxConfig& cfg,
                  std::vector<uint32_t> program) {
  DESYN_ASSERT(cfg.regs >= 2 && (cfg.regs & (cfg.regs - 1)) == 0);
  nl::Builder b(nl);
  Word w(b);
  const int rbits = log2i(cfg.regs);
  const int pbits = cfg.imem_bits;

  DlxInfo info;
  info.clk = b.input("clk");
  NetId clk = info.clk;

  // Forward references resolved at the end of the function.
  Bus pc_next = placeholders(nl, "if.pcnext", pbits);
  Bus wb_value = placeholders(nl, "wb.value", 32);
  Bus wb_dst = placeholders(nl, "wb.dst", rbits);
  Bus wb_we_b = placeholders(nl, "wb.we", 1);

  // ------------------------------------------------------------------- IF
  Bus pc = w.reg(pc_next, clk, 0, "pc.pc");
  program.resize(size_t{1} << cfg.imem_bits, 0);
  std::vector<uint64_t> payload(program.begin(), program.end());
  Bus instr_if = b.rom(pc, 32, payload, "imem");
  Bus pc1 = w.add(pc, w.constant(1, pbits));

  Bus instr = w.reg(instr_if, clk, 0, "ifid.ins");
  Bus pc1_id = w.reg(pc1, clk, 0, "ifid.pc1");

  // ------------------------------------------------------------------- ID
  Bus op = w.slice(instr, 26, 6);
  Bus funct = w.slice(instr, 0, 6);
  Bus rs_idx = w.slice(instr, 21, rbits);
  Bus rt_idx = w.slice(instr, 16, rbits);
  Bus rd_idx = w.slice(instr, 11, rbits);
  Bus imm16 = w.slice(instr, 0, 16);

  NetId is_r = match(w, op, 0x00);
  NetId f_add = b.and_({is_r, match(w, funct, 0x20)});
  NetId f_sub = b.and_({is_r, match(w, funct, 0x22)});
  NetId f_and = b.and_({is_r, match(w, funct, 0x24)});
  NetId f_or = b.and_({is_r, match(w, funct, 0x25)});
  NetId f_xor = b.and_({is_r, match(w, funct, 0x26)});
  NetId f_slt = b.and_({is_r, match(w, funct, 0x2a)});
  NetId op_addi = match(w, op, 0x08);
  NetId op_slti = match(w, op, 0x0a);
  NetId op_andi = match(w, op, 0x0c);
  NetId op_ori = match(w, op, 0x0d);
  NetId op_xori = match(w, op, 0x0e);
  NetId op_lui = match(w, op, 0x0f);
  NetId op_lw = match(w, op, 0x23);
  NetId op_sw = match(w, op, 0x2b);
  NetId op_beq = match(w, op, 0x04);
  NetId op_bne = match(w, op, 0x05);
  NetId op_j = match(w, op, 0x02);

  NetId sel_add = b.or_({f_add, op_addi, op_lw, op_sw});
  NetId sel_sub = f_sub;
  NetId sel_and = b.or_({f_and, op_andi});
  NetId sel_or = b.or_({f_or, op_ori});
  NetId sel_xor = b.or_({f_xor, op_xori});
  NetId sel_slt = b.or_({f_slt, op_slti});
  NetId sel_lui = op_lui;
  NetId alu_imm =
      b.or_({op_addi, op_andi, op_ori, op_xori, op_slti, op_lui, op_lw, op_sw});
  NetId sign_imm = b.or_({op_addi, op_slti, op_lw, op_sw, op_beq, op_bne});
  NetId we_reg = b.or_({f_add, f_sub, f_and, f_or, f_xor, f_slt, op_addi,
                        op_andi, op_ori, op_xori, op_slti, op_lui, op_lw});

  rtl::RegFile rf = rtl::regfile(w, clk, cfg.regs, 32, wb_dst, wb_value,
                                 wb_we_b[0], {rs_idx, rt_idx}, "rf");
  Bus a_id = rf.read_data[0];
  Bus b_id = rf.read_data[1];
  Bus imm32 =
      w.mux(w.zero_extend(imm16, 32), w.sign_extend(imm16, 32), sign_imm);
  Bus dst_id = w.mux(rt_idx, rd_idx, is_r);
  Bus jt_id = w.slice(instr, 0, pbits);

  // idex stage registers (one bank: prefix "idex").
  Bus a_ex = w.reg(a_id, clk, 0, "idex.a");
  Bus b_ex = w.reg(b_id, clk, 0, "idex.b");
  Bus imm_ex = w.reg(imm32, clk, 0, "idex.imm");
  Bus pc1_ex = w.reg(pc1_id, clk, 0, "idex.pc1");
  Bus dst_ex = w.reg(dst_id, clk, 0, "idex.dst");
  Bus jt_ex = w.reg(jt_id, clk, 0, "idex.jt");
  Bus ctrl_id = {sel_add, sel_sub, sel_and, sel_or,  sel_xor, sel_slt, sel_lui,
                 alu_imm, we_reg,  op_sw,   op_lw,   op_beq,  op_bne,  op_j};
  Bus ctrl_ex = w.reg(ctrl_id, clk, 0, "idex.ctl");
  NetId x_sel_add = ctrl_ex[0], x_sel_sub = ctrl_ex[1], x_sel_and = ctrl_ex[2],
        x_sel_or = ctrl_ex[3], x_sel_xor = ctrl_ex[4], x_sel_slt = ctrl_ex[5],
        x_sel_lui = ctrl_ex[6], x_alu_imm = ctrl_ex[7], x_we_reg = ctrl_ex[8],
        x_we_mem = ctrl_ex[9], x_is_load = ctrl_ex[10], x_beq = ctrl_ex[11],
        x_bne = ctrl_ex[12], x_j = ctrl_ex[13];

  // ------------------------------------------------------------------- EX
  Bus in2 = w.mux(b_ex, imm_ex, x_alu_imm);
  Bus r_add = w.add(a_ex, in2);
  Bus r_sub = w.sub(a_ex, in2);
  Bus r_and = w.and_(a_ex, in2);
  Bus r_or = w.or_(a_ex, in2);
  Bus r_xor = w.xor_(a_ex, in2);
  Bus r_slt = w.zero_extend({w.slt(a_ex, in2)}, 32);
  Bus r_lui = w.shl_const(imm_ex, 16);
  Bus alu = w.gate(r_add, x_sel_add);
  alu = w.or_(alu, w.gate(r_sub, x_sel_sub));
  alu = w.or_(alu, w.gate(r_and, x_sel_and));
  alu = w.or_(alu, w.gate(r_or, x_sel_or));
  alu = w.or_(alu, w.gate(r_xor, x_sel_xor));
  alu = w.or_(alu, w.gate(r_slt, x_sel_slt));
  alu = w.or_(alu, w.gate(r_lui, x_sel_lui));

  NetId eq_ab = w.eq(a_ex, b_ex);
  NetId taken = b.or_({b.and_({x_beq, eq_ab}), b.and_({x_bne, b.inv(eq_ab)})});
  NetId redirect = b.or_({taken, x_j});
  Bus btarget = w.add(pc1_ex, w.slice(imm_ex, 0, pbits));
  Bus target = w.mux(btarget, jt_ex, x_j);
  drive(nl, pc_next, w.mux(pc1, target, redirect));

  Bus alu_m = w.reg(alu, clk, 0, "exmem.alu");
  Bus st_m = w.reg(b_ex, clk, 0, "exmem.st");
  Bus dst_m = w.reg(dst_ex, clk, 0, "exmem.dst");
  Bus mctrl = w.reg({x_we_reg, x_we_mem, x_is_load}, clk, 0, "exmem.ctl");
  NetId m_we_reg = mctrl[0], m_we_mem = mctrl[1], m_is_load = mctrl[2];

  // ------------------------------------------------------------------ MEM
  Bus addr = w.slice(alu_m, 0, cfg.dmem_bits);
  Bus rd = b.ram(clk, m_we_mem, addr, st_m, addr, 32, "dmem");
  info.dmem = nl.find_cell("dmem");
  Bus value_m = w.mux(alu_m, rd, m_is_load);

  Bus value_wb = w.reg(value_m, clk, 0, "memwb.val");
  Bus dst_wb = w.reg(dst_m, clk, 0, "memwb.dst");
  Bus wctrl = w.reg({m_we_reg}, clk, 0, "memwb.ctl");

  // ------------------------------------------------------------------- WB
  drive(nl, wb_value, value_wb);
  drive(nl, wb_dst, dst_wb);
  drive(nl, wb_we_b, wctrl);

  // Observability: fetch address and write-back results.
  w.output(pc);
  w.output(value_wb);
  b.output(wctrl[0]);

  info.pc = pc;
  info.wb_value = value_wb;
  info.wb_we = wctrl[0];
  nl.check();
  return info;
}

nl::NetId reg_bit_net(const nl::Netlist& nl, int r, int bit) {
  return nl.find_net(cat("rf.x", r, "_q", bit));
}

}  // namespace desyn::dlx
