#include "dlx/programs.h"

namespace desyn::dlx {

std::vector<uint32_t> fibonacci_program(int n) {
  Asm a;
  a.opi(Op::ADDI, 1, 0, 0);  // r1 = fib(i)
  a.opi(Op::ADDI, 2, 0, 1);  // r2 = fib(i+1)
  a.opi(Op::ADDI, 3, 0, 0);  // r3 = i
  a.opi(Op::ADDI, 4, 0, n);  // r4 = n
  int loop = a.label();
  a.emit({Op::SW, 0, 3, 1, 0});    // mem[i] = fib(i)
  a.op3(Op::ADD, 5, 1, 2);         // r5 = fib(i+2)
  a.op3(Op::ADD, 1, 0, 2);         // r1 = r2
  a.opi(Op::ADDI, 3, 3, 1);        // ++i
  a.op3(Op::ADD, 2, 0, 5);         // r2 = r5
  a.op3(Op::SLT, 6, 3, 4);
  a.branch_to(Op::BNE, 6, 0, loop);
  a.halt();
  return a.assemble();
}

std::vector<uint32_t> checksum_program(int n) {
  Asm a;
  a.opi(Op::ADDI, 1, 0, 0);  // i
  a.opi(Op::ADDI, 2, 0, n);
  a.opi(Op::ADDI, 3, 0, 7);  // val
  int init = a.label();
  a.emit({Op::SW, 0, 1, 3, 0});
  a.opi(Op::ADDI, 3, 3, 3);
  a.opi(Op::ADDI, 1, 1, 1);
  a.op3(Op::SLT, 4, 1, 2);
  a.branch_to(Op::BNE, 4, 0, init);

  a.opi(Op::ADDI, 1, 0, 0);
  a.opi(Op::ADDI, 5, 0, 0);  // sum
  a.opi(Op::ADDI, 6, 0, 0);  // xor
  int loop = a.label();
  a.emit({Op::LW, 0, 1, 7, 0});  // r7 = mem[i]
  a.opi(Op::ADDI, 1, 1, 1);
  a.op3(Op::ADD, 5, 5, 7);
  a.op3(Op::XOR_, 6, 6, 7);
  a.op3(Op::SLT, 4, 1, 2);
  a.branch_to(Op::BNE, 4, 0, loop);
  a.emit({Op::SW, 0, 0, 5, n});      // mem[n]   = sum
  a.emit({Op::SW, 0, 0, 6, n + 1});  // mem[n+1] = xor
  a.halt();
  return a.assemble();
}

std::vector<uint32_t> sort_program(int n) {
  Asm a;
  // Fill with r3 = 3*r3 + 5 starting from 11 (mod 2^32).
  a.opi(Op::ADDI, 1, 0, 0);
  a.opi(Op::ADDI, 2, 0, n);
  a.opi(Op::ADDI, 3, 0, 11);
  int fill = a.label();
  a.emit({Op::SW, 0, 1, 3, 0});
  a.op3(Op::ADD, 4, 3, 3);
  a.opi(Op::ADDI, 1, 1, 1);
  a.op3(Op::ADD, 3, 4, 3);
  a.opi(Op::ADDI, 3, 3, 5);
  a.opi(Op::ANDI, 3, 3, 0xff);  // keep values small/positive for slt
  a.op3(Op::SLT, 4, 1, 2);
  a.branch_to(Op::BNE, 4, 0, fill);

  // n passes of adjacent compare-and-swap.
  a.opi(Op::ADDI, 8, 0, 0);      // pass counter
  a.opi(Op::ADDI, 9, 0, n);      // pass limit
  a.opi(Op::ADDI, 10, 0, n - 1); // inner limit
  int pass = a.label();
  a.opi(Op::ADDI, 1, 0, 0);
  int inner = a.label();
  a.emit({Op::LW, 0, 1, 5, 0});   // r5 = a[j]
  a.emit({Op::LW, 0, 1, 6, 1});   // r6 = a[j+1]
  a.op3(Op::SLT, 7, 6, 5);        // r7 = a[j+1] < a[j]
  int skip = a.branch_fwd(Op::BEQ, 7, 0);
  a.emit({Op::SW, 0, 1, 6, 0});   // swap
  a.emit({Op::SW, 0, 1, 5, 1});
  a.bind(skip);
  a.opi(Op::ADDI, 1, 1, 1);
  a.op3(Op::SLT, 4, 1, 10);
  a.branch_to(Op::BNE, 4, 0, inner);
  a.opi(Op::ADDI, 8, 8, 1);
  a.op3(Op::SLT, 4, 8, 9);
  a.branch_to(Op::BNE, 4, 0, pass);
  a.halt();
  return a.assemble();
}

std::vector<uint32_t> memcpy_program(int n) {
  Asm a;
  a.opi(Op::ADDI, 1, 0, 0);
  a.opi(Op::ADDI, 2, 0, n);
  a.opi(Op::ADDI, 3, 0, 0x21);
  int fill = a.label();
  a.emit({Op::SW, 0, 1, 3, 0});
  a.opi(Op::ADDI, 3, 3, 0x11);
  a.opi(Op::ADDI, 1, 1, 1);
  a.op3(Op::SLT, 4, 1, 2);
  a.branch_to(Op::BNE, 4, 0, fill);

  a.opi(Op::ADDI, 1, 0, 0);
  int copy = a.label();
  a.emit({Op::LW, 0, 1, 5, 0});
  a.opi(Op::ADDI, 1, 1, 1);
  a.emit({Op::SW, 0, 1, 5, n - 1});  // mem[(i-1)+n] — r1 already incremented
  a.op3(Op::SLT, 4, 1, 2);
  a.branch_to(Op::BNE, 4, 0, copy);
  a.halt();
  return a.assemble();
}

std::vector<Workload> standard_workloads() {
  // Cycle budgets include slack over the nominal instruction counts: the
  // pipeline trails the sequential ISS by its fill depth, and both converge
  // in the halt spin.
  return {
      {"fib", fibonacci_program(10), 260},
      {"checksum", checksum_program(10), 360},
      {"sort", sort_program(6), 1700},
      {"memcpy", memcpy_program(10), 420},
  };
}

}  // namespace desyn::dlx
