#include "base/cli_args.h"

#include <stdexcept>

#include "base/common.h"

namespace desyn::cli {

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : list + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  return out;
}

int parse_count(const std::string& s, const char* what) {
  try {
    size_t used = 0;
    int v = std::stoi(s, &used);
    if (used != s.size() || v <= 0) fail("");
    return v;
  } catch (...) {
    fail("malformed ", what, " '", s, "' (need a positive integer)");
  }
}

double parse_nonneg(const std::string& s, const char* what) {
  try {
    size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size() || !(v >= 0)) fail("");
    return v;
  } catch (...) {
    fail("malformed ", what, " '", s, "' (need a non-negative number)");
  }
}

double parse_margin(const std::string& s) {
  try {
    size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size() || !(v >= 1.0) || !(v <= 100.0)) fail("");
    return v;
  } catch (...) {
    fail("malformed margin '", s, "' (need a number in [1, 100])");
  }
}

std::vector<double> parse_margins(const std::string& list) {
  std::vector<double> out;
  for (const std::string& s : split_list(list)) out.push_back(parse_margin(s));
  if (out.empty()) fail("--margins needs at least one value");
  return out;
}

std::vector<flow::PartitionSpec> parse_strategies(const std::string& list) {
  std::vector<flow::PartitionSpec> out;
  for (const std::string& s : split_list(list)) {
    out.push_back(flow::PartitionSpec::parse(s));
  }
  if (out.empty()) fail("--strategies needs at least one value");
  return out;
}

std::string need_value(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) fail(flag, " needs a value");
  return argv[++i];
}

}  // namespace desyn::cli
