#include "base/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/common.h"

namespace desyn::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) err("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void err(const char* what) {
    fail("json: ", what, " at offset ", pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) err("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) err("unexpected character");
    ++pos_;
  }

  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    char c = peek();
    Value v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind = Value::Kind::String;
        v.string = string();
        return v;
      case 't':
        if (!consume_lit("true")) err("bad literal");
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_lit("false")) err("bad literal");
        v.kind = Value::Kind::Bool;
        return v;
      case 'n':
        if (!consume_lit("null")) err("bad literal");
        return v;
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') err("expected ',' or '}' in object");
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') err("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) err("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) err("control char in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) err("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) err("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              err("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any writer in this repo; reject them).
          if (cp >= 0xd800 && cp <= 0xdfff) err("surrogate in \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default:
          err("bad escape character");
      }
    }
  }

  Value number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size() || !std::isfinite(v)) {
      pos_ = start;
      err("malformed number");
    }
    Value out;
    out.kind = Value::Kind::Number;
    out.number = v;
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* v = get(key);
  return v && v->kind == Kind::String ? v->string : std::string(fallback);
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = get(key);
  return v && v->kind == Kind::Number ? v->number : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = get(key);
  return v && v->kind == Kind::Bool ? v->boolean : fallback;
}

Value parse(std::string_view text) { return Parser(text).run(); }

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace desyn::json
