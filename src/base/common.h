// Shared utilities: error handling, asserts, string formatting, ids, RNG.
//
// Conventions (see DESIGN.md §7): exceptions signal construction/parse/user
// errors; DESYN_ASSERT guards internal invariants and is active in all build
// types (EDA data-structure corruption must never propagate silently).
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace desyn {

/// Library-level error. Thrown for user-visible failures (bad input files,
/// malformed netlists handed to the flow, impossible requests).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
inline void cat_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  cat_into(os, rest...);
}
}  // namespace detail

/// Concatenate arbitrary streamable values into a std::string.
/// (gcc 12 has no std::format; this is the project-wide substitute.)
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::cat_into(os, args...);
  return os.str();
}

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);

#define DESYN_ASSERT(expr, ...)                                        \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::desyn::assert_fail(#expr, __FILE__, __LINE__,                  \
                           ::desyn::cat("" __VA_ARGS__));              \
    }                                                                  \
  } while (0)

template <typename... Args>
[[noreturn]] void fail(const Args&... args) {
  throw Error(cat(args...));
}

/// Strongly-typed 32-bit index. Tag is an empty struct unique per id space.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(uint32_t v) : v_(v) {}
  constexpr bool valid() const { return v_ != kInvalid; }
  constexpr uint32_t value() const { return v_; }
  constexpr friend bool operator==(Id a, Id b) { return a.v_ == b.v_; }
  constexpr friend bool operator!=(Id a, Id b) { return a.v_ != b.v_; }
  constexpr friend bool operator<(Id a, Id b) { return a.v_ < b.v_; }
  static constexpr Id invalid() { return Id(); }

 private:
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();
  uint32_t v_ = kInvalid;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

/// Time in picoseconds. All delays/periods in the library use this unit.
using Ps = int64_t;
/// Capacitance in femtofarads.
using Ff = double;
/// Area in square micrometers.
using Um2 = double;

/// splitmix64-based deterministic RNG: reproducible across platforms, good
/// enough for workload generation and property tests.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n). n must be > 0.
  uint64_t below(uint64_t n) {
    DESYN_ASSERT(n > 0);
    return next() % n;
  }
  /// Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    DESYN_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }
  bool flip(double p = 0.5) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t state_;
};

/// True if `s` starts with `prefix` (string_view convenience).
inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Split `s` on whitespace into tokens.
std::vector<std::string> split_ws(std::string_view s);

}  // namespace desyn
