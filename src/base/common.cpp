#include "base/common.h"

#include <cstdio>
#include <cstdlib>

namespace desyn {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "DESYN_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace desyn
