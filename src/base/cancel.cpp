#include "base/cancel.h"

namespace desyn::detail {

thread_local const CancelToken* t_cancel = nullptr;

}  // namespace desyn::detail
