// Deterministic fault injection.
//
// A fault *site* is a compiled-in probe (`fault::maybe_throw("engine.stage.synth")`,
// `fault::should_fail("svc.read")`) at a place where the real world can fail:
// a disk write, a socket read, a stage boundary. Sites are inert until a
// single process-wide *spec* is armed; the disarmed fast path is one relaxed
// atomic load and a predictable branch, so probes may sit on hot paths.
//
// Firing is a pure function of (spec, site, hit-index): the k-th arrival at a
// site either fires or does not, independent of threads, wall clock, or any
// other site. Armed with the same spec, a run fails at exactly the same
// operation every time — which is what makes a fault report reproducible
// from nothing but the `--fault-spec` string.
//
// Spec grammar (comma-separated `key=value`, parsed by `Spec::parse`):
//
//   site=<name>      required; a catalog name, or a prefix ending in '*'
//   hit=<N>          first firing hit-index (default 0)
//   count=<K>        fire on hits [hit, hit+count); 0 = every hit from `hit`
//   p=<X>,seed=<S>   probabilistic mode: fire iff hash(seed, site, k) < X,
//                    ignoring hit/count. X in [0, 1].
//   action=fail|kill fail (default): the probe reports/throws.
//                    kill: raise SIGKILL at the firing probe — a real
//                    crash for crash-recovery tests, no unwinding.
//
// Sites must come from the compiled-in catalog (`all_sites()`); arming an
// unknown site is an error, so specs cannot silently probe nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/common.h"

namespace desyn::fault {

// Thrown by `maybe_throw` at a firing site with action=fail.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(std::string_view site)
      : Error(cat("injected fault at site '", site, "'")), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

struct Spec {
  std::string site;      // catalog name, or prefix ending in '*'
  uint64_t hit = 0;      // first firing hit-index
  uint64_t count = 1;    // number of consecutive firing hits; 0 = unlimited
  double p = -1.0;       // in [0,1]: probabilistic mode (hit/count ignored)
  uint64_t seed = 0;     // probabilistic-mode hash seed
  enum class Action { Fail, Kill };
  Action action = Action::Fail;

  // Parses the `key=value,...` grammar above. Throws Error on unknown keys,
  // malformed values, or a missing site.
  static Spec parse(std::string_view text);
  // Round-trips through parse(): to_string() omits defaulted keys.
  std::string to_string() const;

  // True iff this spec matches `site_name` (exact, or armed prefix).
  bool matches(std::string_view site_name) const;
  // Pure firing decision for the k-th arrival at `site_name`.
  bool fires(std::string_view site_name, uint64_t k) const;
};

// Arms `spec` process-wide, resetting all hit counters. Throws Error if the
// spec's site (or prefix) matches nothing in the catalog.
void arm(const Spec& spec);
// Returns all probes to the inert fast path and resets counters.
void disarm();
bool armed();

// Per-site observation counters, valid while armed (reset by arm/disarm).
struct SiteStats {
  uint64_t hits = 0;   // arrivals at the site since arm()
  uint64_t fired = 0;  // arrivals that fired
};
SiteStats stats(std::string_view site_name);

// The compiled-in site catalog, sorted, for `arm` validation, test sweeps,
// and docs.
const std::vector<std::string>& all_sites();

namespace detail {
extern std::atomic<bool> g_armed;
bool should_fail_slow(const char* site);
}  // namespace detail

// Probe: true iff an armed spec fires on this arrival. Disarmed cost is one
// relaxed load + branch. With action=kill, a firing probe does not return.
inline bool should_fail(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::should_fail_slow(site);
}

// Probe that throws InjectedFault when it fires.
inline void maybe_throw(const char* site) {
  if (should_fail(site)) throw InjectedFault(site);
}

}  // namespace desyn::fault
