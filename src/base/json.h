// Minimal JSON support for the service layer.
//
// The desyn server speaks line-delimited JSON (one request/response per
// line). This is a deliberately small recursive-descent parser for that
// protocol — objects, arrays, strings (with \uXXXX escapes), numbers,
// booleans, null — plus the escape helper every JSON *writer* in the repo
// shares (sweep reports, bench reports, server responses). Writers keep
// emitting via snprintf/streams; only reading needs a DOM.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace desyn::json {

/// Parsed JSON value. Object keys keep a std::map so iteration order is
/// deterministic (sorted), which the tests rely on when echoing.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_string() const { return kind == Kind::String; }
  bool is_number() const { return kind == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* get(std::string_view key) const;

  /// Typed member access with defaults — the server's option parsing.
  std::string get_string(std::string_view key,
                         std::string_view fallback = "") const;
  double get_number(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
};

/// Parse one JSON document. Throws desyn::Error with a position-annotated
/// message on malformed input; trailing garbage after the document is an
/// error too.
Value parse(std::string_view text);

/// Escape `s` for embedding in a JSON string literal (quotes not added).
std::string escape(const std::string& s);

}  // namespace desyn::json
