// SHA-256 — the content-address primitive of the artifact store.
//
// The flow engine keys every stage artifact by a canonical hash of the
// stage's inputs (netlist content, tech name, options). SHA-256 is used
// not for security but for its negligible collision rate at 256 bits: a
// key equality is treated as input equality, so the hash must make
// accidental collisions implausible for the lifetime of a cache
// directory. Self-contained public-domain-style implementation (FIPS
// 180-4); no external dependency.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace desyn {

/// A 256-bit digest. Comparable and hashable so it can key maps directly.
struct Hash256 {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Hash256&) const = default;
  auto operator<=>(const Hash256&) const = default;

  /// Lower-case hex, 64 chars — the on-disk cache file name.
  std::string hex() const;

  /// First 8 bytes as an integer, for unordered_map bucketing.
  uint64_t prefix64() const;
};

/// Incremental SHA-256. Feed bytes with update(), finish with digest().
/// Helper mixers append a length prefix before each field so that
/// concatenated variable-length fields cannot alias each other
/// ("ab","c" vs "a","bc").
class Sha256 {
 public:
  Sha256();

  Sha256& update(const void* data, size_t len);
  Sha256& update(std::string_view s) { return update(s.data(), s.size()); }

  /// Length-prefixed field mixers for building canonical keys.
  Sha256& field(std::string_view s);
  Sha256& field_u64(uint64_t v);
  Sha256& field_i64(int64_t v) { return field_u64(static_cast<uint64_t>(v)); }
  /// Bit pattern of a double (deterministic across platforms for the
  /// finite values the flow produces).
  Sha256& field_f64(double v);

  /// Finalize. The object must not be reused afterwards.
  Hash256 digest();

 private:
  void compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buf_;
  size_t buf_len_ = 0;
  uint64_t total_ = 0;
};

/// One-shot convenience.
Hash256 sha256(std::string_view data);

}  // namespace desyn

template <>
struct std::hash<desyn::Hash256> {
  size_t operator()(const desyn::Hash256& h) const noexcept {
    return static_cast<size_t>(h.prefix64());
  }
};
