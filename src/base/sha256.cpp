#include "base/sha256.h"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define DESYN_SHA_NI 1
#endif

namespace desyn {

namespace {

constexpr std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void compress_scalar(std::array<uint32_t, 8>& state, const uint8_t* block,
                     size_t blocks) {
  for (; blocks > 0; --blocks, block += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<uint32_t>(block[4 * i]) << 24 |
             static_cast<uint32_t>(block[4 * i + 1]) << 16 |
             static_cast<uint32_t>(block[4 * i + 2]) << 8 |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef DESYN_SHA_NI

// Hardware SHA extension path (x86 SHA-NI). Same digest, ~8x the scalar
// throughput — content hashing is on the flow engine's key-derivation path
// for every submission, cached or not, so it is worth a dedicated kernel.
//
// Quad-round macro: runs four rounds with the schedule quad C, computes the
// msg2 half of the *next* schedule quad N, and the msg1 half of a future
// quad into P (the quad preceding C). Round constants come straight from
// kK, which already holds the four words of each quad in lane order.
#define DESYN_QUAD(C, P, N, R)                                              \
  MSG = _mm_add_epi32(                                                      \
      C, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4 * (R)]))); \
  STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);                      \
  TMP = _mm_alignr_epi8(C, P, 4);                                           \
  N = _mm_add_epi32(N, TMP);                                                \
  N = _mm_sha256msg2_epu32(N, C);                                           \
  MSG = _mm_shuffle_epi32(MSG, 0x0E);                                       \
  STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG)

__attribute__((target("sha,sse4.1"))) void compress_ni(
    std::array<uint32_t, 8>& state, const uint8_t* block, size_t blocks) {
  const __m128i kMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);
  const __m128i* kp = reinterpret_cast<const __m128i*>(kK.data());

  // Pack {a..h} into the ABEF/CDGH lane layout the instructions expect.
  __m128i TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i STATE1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);
  __m128i STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);

  for (; blocks > 0; --blocks, block += 64) {
    const __m128i abef_save = STATE0;
    const __m128i cdgh_save = STATE1;
    __m128i MSG;

    // Rounds 0-15: load and byte-swap the four message quads, start msg1.
    __m128i m0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), kMask);
    MSG = _mm_add_epi32(m0, _mm_loadu_si128(kp + 0));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    __m128i m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kMask);
    MSG = _mm_add_epi32(m1, _mm_loadu_si128(kp + 1));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    m0 = _mm_sha256msg1_epu32(m0, m1);

    __m128i m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kMask);
    MSG = _mm_add_epi32(m2, _mm_loadu_si128(kp + 2));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    m1 = _mm_sha256msg1_epu32(m1, m2);

    __m128i m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kMask);
    DESYN_QUAD(m3, m2, m0, 3);
    m2 = _mm_sha256msg1_epu32(m2, m3);

    // Rounds 16-47: full schedule recurrence, quads rotating m0→m1→m2→m3.
    DESYN_QUAD(m0, m3, m1, 4);
    m3 = _mm_sha256msg1_epu32(m3, m0);
    DESYN_QUAD(m1, m0, m2, 5);
    m0 = _mm_sha256msg1_epu32(m0, m1);
    DESYN_QUAD(m2, m1, m3, 6);
    m1 = _mm_sha256msg1_epu32(m1, m2);
    DESYN_QUAD(m3, m2, m0, 7);
    m2 = _mm_sha256msg1_epu32(m2, m3);
    DESYN_QUAD(m0, m3, m1, 8);
    m3 = _mm_sha256msg1_epu32(m3, m0);
    DESYN_QUAD(m1, m0, m2, 9);
    m0 = _mm_sha256msg1_epu32(m0, m1);
    DESYN_QUAD(m2, m1, m3, 10);
    m1 = _mm_sha256msg1_epu32(m1, m2);
    DESYN_QUAD(m3, m2, m0, 11);
    m2 = _mm_sha256msg1_epu32(m2, m3);

    // Rounds 48-59: schedule tapers off (last msg1 feeds w60-63).
    DESYN_QUAD(m0, m3, m1, 12);
    m3 = _mm_sha256msg1_epu32(m3, m0);
    DESYN_QUAD(m1, m0, m2, 13);
    DESYN_QUAD(m2, m1, m3, 14);

    // Rounds 60-63.
    MSG = _mm_add_epi32(m3, _mm_loadu_si128(kp + 15));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, abef_save);
    STATE1 = _mm_add_epi32(STATE1, cdgh_save);
  }

  TMP = _mm_shuffle_epi32(STATE0, 0x1B);
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

#undef DESYN_QUAD

#endif  // DESYN_SHA_NI

using CompressFn = void (*)(std::array<uint32_t, 8>&, const uint8_t*, size_t);

CompressFn pick_compress() {
#ifdef DESYN_SHA_NI
  if (__builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1")) {
    return &compress_ni;
  }
#endif
  return &compress_scalar;
}

CompressFn compress_fn() {
  static const CompressFn fn = pick_compress();
  return fn;
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const uint8_t* block) {
  compress_fn()(state_, block, 1);
}

Sha256& Sha256::update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_ += len;
  if (buf_len_ > 0) {
    size_t take = std::min(len, buf_.size() - buf_len_);
    std::memcpy(buf_.data() + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    len -= take;
    if (buf_len_ == buf_.size()) {
      compress(buf_.data());
      buf_len_ = 0;
    }
  }
  if (len >= 64) {
    size_t blocks = len / 64;
    compress_fn()(state_, p, blocks);
    p += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buf_.data(), p, len);
    buf_len_ = len;
  }
  return *this;
}

Sha256& Sha256::field(std::string_view s) {
  field_u64(s.size());
  return update(s);
}

Sha256& Sha256::field_u64(uint64_t v) {
  uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
  return update(b, sizeof b);
}

Sha256& Sha256::field_f64(double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return field_u64(bits);
}

Hash256 Sha256::digest() {
  uint64_t bit_len = total_ * 8;
  uint8_t pad = 0x80;
  update(&pad, 1);
  uint8_t zero = 0;
  while (buf_len_ != 56) update(&zero, 1);
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  // Bypass total_ bookkeeping: write the final block directly.
  std::memcpy(buf_.data() + 56, len_be, 8);
  compress(buf_.data());
  Hash256 out;
  for (int i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

std::string Hash256::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

uint64_t Hash256::prefix64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | bytes[i];
  return v;
}

Hash256 sha256(std::string_view data) {
  Sha256 h;
  h.update(data);
  return h.digest();
}

}  // namespace desyn
