// Deadlines and cooperative cancellation.
//
// A CancelToken carries an optional deadline and a cancel flag; long-running
// code calls `cancel_point()` at loop heads and stage boundaries, which
// throws DeadlineError / CancelledError when the current thread's token has
// tripped. Tokens are installed per thread with a RAII CancelScope rather
// than threaded through signatures: flow stages are keyed by content hashes
// of their *inputs*, and a deadline is not an input — keeping it out of the
// call graph keeps it out of the cache keys by construction.
//
// With no scope installed (the default everywhere outside a svc request),
// `cancel_point()` is a thread-local pointer load and a branch.
#pragma once

#include <atomic>
#include <chrono>

#include "base/common.h"

namespace desyn {

class CancelledError : public Error {
 public:
  CancelledError() : Error("operation cancelled") {}
};

class DeadlineError : public Error {
 public:
  DeadlineError() : Error("deadline exceeded") {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms a deadline `ms` from now (steady clock). ms <= 0 arms nothing.
  void set_deadline_after_ms(int64_t ms) {
    if (ms <= 0) return;
    deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    // Release pairs with the acquire in expired(): a thread that sees the
    // flag also sees the deadline value.
    has_deadline_.store(true, std::memory_order_release);
  }
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  bool expired() const {
    return has_deadline_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() >= deadline_;
  }
  /// Throws CancelledError / DeadlineError if tripped. Cancellation wins
  /// over expiry so a drain-initiated cancel reports as "cancelled" even on
  /// requests whose deadline has also passed.
  void check() const {
    if (cancelled()) throw CancelledError();
    if (expired()) throw DeadlineError();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

namespace detail {
extern thread_local const CancelToken* t_cancel;
}  // namespace detail

/// Installs `token` as the current thread's cancel token for the scope's
/// lifetime; nests (the previous token is restored on destruction). Pass the
/// result of current_cancel() to a worker thread's scope to propagate the
/// caller's token across the spawn.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) : prev_(detail::t_cancel) {
    detail::t_cancel = token;
  }
  ~CancelScope() { detail::t_cancel = prev_; }
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* prev_;
};

/// The current thread's token, or nullptr when none is installed.
inline const CancelToken* current_cancel() { return detail::t_cancel; }

/// Throws if the current thread's token (if any) has tripped.
inline void cancel_point() {
  if (const CancelToken* t = detail::t_cancel) t->check();
}

}  // namespace desyn
