#include "base/fault.h"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <map>
#include <mutex>

namespace desyn::fault {

namespace {

// The compiled-in site catalog. One entry per probe in the tree; a probe
// whose name is missing here can never be armed, and an armed name that
// matches nothing here is rejected, so the catalog and the probes cannot
// drift apart silently (tests sweep all_sites()).
const char* const kSites[] = {
    "artifact.disk.corrupt",       // disk entry digest-verifies but is treated corrupt
    "artifact.disk.read",          // disk entry unreadable on get()
    "artifact.disk.write.fsync",   // fsync of the tmp file fails
    "artifact.disk.write.open",    // tmp file creation fails
    "artifact.disk.write.rename",  // tmp -> final rename fails
    "artifact.disk.write.write",   // write() of the payload fails
    "engine.stage.adjacency",      // throws in the adjacency compute branch
    "engine.stage.latchify",       // throws in the latchify compute branch
    "engine.stage.mcr",            // throws in the mcr compute branch
    "engine.stage.partition",      // throws in the partition compute branch
    "engine.stage.result",         // throws before the result artifact is stored
    "engine.stage.synth",          // throws in the synth compute branch
    "svc.accept",                  // accepted connection dropped immediately
    "svc.read",                    // connection dropped before a socket read
    "svc.write",                   // connection dropped before a response write
};

struct State {
  std::mutex mu;
  Spec spec;
  std::map<std::string, SiteStats, std::less<>> counters;
};

State& state() {
  static State s;
  return s;
}

uint64_t parse_u64(std::string_view key, std::string_view v) {
  uint64_t out = 0;
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || p != v.data() + v.size())
    fail("fault spec: bad value '", v, "' for key '", key, "'");
  return out;
}

// splitmix64-style finalizer over (seed, site, k); uniform in [0, 1).
double site_hash01(uint64_t seed, std::string_view site, uint64_t k) {
  uint64_t z = seed ^ (0x9e3779b97f4a7c15ull * (k + 1));
  for (char c : site) z = (z ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

Spec Spec::parse(std::string_view text) {
  Spec spec;
  bool have_site = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view field = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string_view::npos)
      fail("fault spec: field '", field, "' is not key=value");
    std::string_view key = field.substr(0, eq);
    std::string_view value = field.substr(eq + 1);
    if (key == "site") {
      spec.site = std::string(value);
      have_site = true;
    } else if (key == "hit") {
      spec.hit = parse_u64(key, value);
    } else if (key == "count") {
      spec.count = parse_u64(key, value);
    } else if (key == "seed") {
      spec.seed = parse_u64(key, value);
    } else if (key == "p") {
      char* end = nullptr;
      std::string v(value);
      spec.p = std::strtod(v.c_str(), &end);
      if (end != v.c_str() + v.size() || spec.p < 0.0 || spec.p > 1.0)
        fail("fault spec: p must be a probability in [0,1], got '", value, "'");
    } else if (key == "action") {
      if (value == "fail")
        spec.action = Action::Fail;
      else if (value == "kill")
        spec.action = Action::Kill;
      else
        fail("fault spec: action must be fail or kill, got '", value, "'");
    } else {
      fail("fault spec: unknown key '", key, "'");
    }
  }
  if (!have_site || spec.site.empty()) fail("fault spec: missing site=<name>");
  return spec;
}

std::string Spec::to_string() const {
  std::string out = cat("site=", site);
  if (p >= 0.0) {
    out += cat(",p=", p, ",seed=", seed);
  } else {
    if (hit != 0) out += cat(",hit=", hit);
    if (count != 1) out += cat(",count=", count);
  }
  if (action == Action::Kill) out += ",action=kill";
  return out;
}

bool Spec::matches(std::string_view site_name) const {
  if (!site.empty() && site.back() == '*')
    return starts_with(site_name, std::string_view(site).substr(0, site.size() - 1));
  return site_name == site;
}

bool Spec::fires(std::string_view site_name, uint64_t k) const {
  if (!matches(site_name)) return false;
  if (p >= 0.0) return site_hash01(seed, site_name, k) < p;
  return k >= hit && (count == 0 || k - hit < count);
}

void arm(const Spec& spec) {
  const auto& sites = all_sites();
  bool any = std::any_of(sites.begin(), sites.end(),
                         [&](const std::string& s) { return spec.matches(s); });
  if (!any) fail("fault spec: site '", spec.site, "' matches no registered site");
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.spec = spec;
  s.counters.clear();
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_armed.store(false, std::memory_order_release);
  s.counters.clear();
}

bool armed() { return detail::g_armed.load(std::memory_order_acquire); }

SiteStats stats(std::string_view site_name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.counters.find(site_name);
  return it == s.counters.end() ? SiteStats{} : it->second;
}

const std::vector<std::string>& all_sites() {
  static const std::vector<std::string> sites(std::begin(kSites),
                                              std::end(kSites));
  return sites;
}

namespace detail {

bool should_fail_slow(const char* site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Re-check under the lock: a concurrent disarm() must win.
  if (!g_armed.load(std::memory_order_acquire)) return false;
  SiteStats& c = s.counters[site];
  const uint64_t k = c.hits++;
  if (!s.spec.fires(site, k)) return false;
  c.fired++;
  if (s.spec.action == Spec::Action::Kill) {
    // A real crash, not an exception: nothing unwinds, nothing flushes.
    ::kill(::getpid(), SIGKILL);
  }
  return true;
}

}  // namespace detail

}  // namespace desyn::fault
