// Counter-based (stateless) deterministic random draws.
//
// The sequential Rng in base/common.h walks a splitmix64 stream: draw i
// exists only after draws 0..i-1 were made, so anything that samples in
// parallel must either serialize or invent an ad-hoc per-draw seed (the
// stimulus hash in verif/testbench.cpp grew exactly that). This header is
// the shared primitive instead: rng_draw(seed, stream, counter) is a pure
// function of its arguments, so the i-th draw of any logical stream is
// identical no matter which thread computes it or in what order —
// order-independence by construction. Monte-Carlo delay sampling
// (cell/variation.h) keys every per-gate draw this way, which is what makes
// sample i byte-identical at any --mc-jobs count.
#pragma once

#include <cstdint>

namespace desyn {

/// splitmix64 finalizer: the bijective mixing step of Rng::next(), exposed
/// for key whitening and tie-breaking hashes.
constexpr uint64_t splitmix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The `counter`-th draw of logical stream `stream` under `seed`: a pure
/// function (no state), uniform over uint64_t. The golden-ratio Weyl step
/// on the counter and the pre-whitened stream keep distinct
/// (seed, stream, counter) triples from colliding under the combination.
constexpr uint64_t rng_draw(uint64_t seed, uint64_t stream,
                            uint64_t counter) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (counter + 1);
  return splitmix64(z ^ splitmix64(stream + 0xbf58476d1ce4e5b9ull));
}

/// Uniform double in [0, 1) from a counter-based draw (53-bit mantissa,
/// the same construction as Rng::flip).
constexpr double rng_unit(uint64_t seed, uint64_t stream, uint64_t counter) {
  return static_cast<double>(rng_draw(seed, stream, counter) >> 11) *
         0x1.0p-53;
}

/// Sequential facade over counter-based draws for workload generators that
/// want Rng's call style: the only state is the draw counter, so two
/// CounterRng instances on different streams can never interact, and a
/// generator's k-th draw is reproducible from (seed, stream, k) alone.
class CounterRng {
 public:
  explicit constexpr CounterRng(uint64_t seed, uint64_t stream = 0)
      : seed_(seed), stream_(stream) {}

  constexpr uint64_t next() { return rng_draw(seed_, stream_, counter_++); }
  /// Uniform in [0, n). n must be > 0.
  constexpr uint64_t below(uint64_t n) { return next() % n; }
  constexpr bool flip(double p = 0.5) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t seed_;
  uint64_t stream_;
  uint64_t counter_ = 0;
};

}  // namespace desyn
