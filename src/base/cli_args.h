// Shared command-line parsing helpers.
//
// desyn_cli, bench_partition and bench_mcr grew the same checked argument
// parsers independently (comma lists, positive counts, margins, partition
// spec strings, the `--flag value` idiom). This is the single home: every
// malformed value is a clean `error: ...` exit via fail(), never an
// uncaught std::invalid_argument out of stoi/stod.
//
// Note on layering: this lives in base/ because every executable links it,
// but parse_strategies() necessarily speaks the flow layer's PartitionSpec
// vocabulary — it is a CLI-facade helper, not base infrastructure.
#pragma once

#include <string>
#include <vector>

#include "core/partition.h"

namespace desyn::cli {

/// "a,b,,c" -> {"a","b","c"} (empty fields dropped).
std::vector<std::string> split_list(const std::string& list);

/// Positive integer (--jobs, --opt-jobs, --rounds, --threads, ...).
int parse_count(const std::string& s, const char* what);

/// Non-negative real (--budget-ms and friends).
double parse_nonneg(const std::string& s, const char* what);

/// Timing margin in [1, 100].
double parse_margin(const std::string& s);

/// Comma list of margins; at least one required.
std::vector<double> parse_margins(const std::string& list);

/// Comma list of partition spec strings (prefix[:N]|perff|single|auto[:B]|
/// explicit specs accepted by PartitionSpec::parse); at least one required.
std::vector<flow::PartitionSpec> parse_strategies(const std::string& list);

/// The `--flag value` idiom: returns argv[i+1] and advances i, or fails
/// with "<flag> needs a value" when the list ends at the flag.
std::string need_value(int argc, char** argv, int& i, const char* flag);

}  // namespace desyn::cli
