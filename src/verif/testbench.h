// Stimulus generation shared by the verification harness and the benches.
#pragma once

#include <functional>

#include "base/common.h"
#include "cell/cells.h"

namespace desyn::verif {

/// Value of primary input `input_index` during round `round`.
using Stimulus = std::function<cell::V(int round, size_t input_index)>;

/// Deterministic pseudo-random vectors.
Stimulus random_stimulus(uint64_t seed);
/// All inputs constant.
Stimulus constant_stimulus(cell::V v);
/// Walking-ones pattern (input i high when round % n_inputs == i).
Stimulus walking_ones(size_t n_inputs);

}  // namespace desyn::verif
