// Flow-equivalence checking — the correctness property of
// de-synchronization [Guernic et al., "Polychrony for system design"]:
// for every register, the sequence of values it stores is identical in the
// synchronous and the desynchronized circuit (time is abstracted away; the
// *flows* of data must match).
//
// Both implementations are built from the same FF netlist and simulated at
// gate level with identical per-round input vectors:
//  * sync: clock tree + free-running clock at the STA minimum period (plus
//    a small margin); capture stream of FF f = D pin sampled at every
//    rising edge of f's clock leaf.
//  * desync: the flow's output, self-timed; capture stream of FF f = D pin
//    of f's master latch sampled at every falling edge of its bank pulse.
//
// The checker compares the two streams per FF for `rounds` entries and also
// reports throughput (measured periods) and any setup violations — a
// mis-sized matched delay shows up here first (bench A4 exploits this).
#pragma once

#include "core/desynchronizer.h"
#include "verif/testbench.h"

namespace desyn::verif {

struct FlowEqOptions {
  int rounds = 40;
  flow::DesyncOptions desync;
  /// Sync clock period factor over the STA minimum.
  double clock_margin = 1.10;
  /// Simulation watchdog: give up (deadlock) after this many ps per round.
  Ps round_timeout = 1'000'000;
};

struct FlowEqResult {
  bool equivalent = false;
  std::string mismatch;          ///< human-readable first difference
  size_t registers_compared = 0;
  size_t captures_compared = 0;
  Ps sync_period = 0;            ///< clock period used
  double desync_period = 0;      ///< measured average round period
  /// Analytic cycle-time prediction: max cycle ratio of the timed control
  /// model of the desynchronized circuit this check built (saves callers
  /// re-running the whole flow just to predict).
  double predicted_period = 0;
  uint64_t sync_setup_violations = 0;
  uint64_t desync_setup_violations = 0;
  /// Gate counts of the two implementations actually simulated (the sync
  /// one includes its clock tree, the desync one its controllers and
  /// matched-delay lines) — the sweep reports these per cell.
  size_t sync_cells = 0;
  size_t desync_cells = 0;
  /// Partition stats of the desynchronized implementation: control banks
  /// (incl. the environment pair), controller logic cells (C-elements,
  /// inverters, enable gates, ...) and matched-delay DELAY cells — the
  /// disjoint split of the control network the strategy sweep compares.
  size_t banks = 0;
  size_t controller_cells = 0;
  size_t delay_cells = 0;
  double sync_power_mw = 0;      ///< total dynamic power (measured window)
  double desync_power_mw = 0;
  double sync_clock_power_mw = 0;   ///< clock-tree share
  double desync_ctl_power_mw = 0;   ///< controller+delay-line share
};

/// Build both implementations of `ff_netlist` and check flow equivalence
/// under `stim`. The FF netlist must be single-clock with `clock` as the
/// clock input.
FlowEqResult check_flow_equivalence(const nl::Netlist& ff_netlist,
                                    nl::NetId clock, const Stimulus& stim,
                                    const cell::Tech& tech,
                                    const FlowEqOptions& opt = {});

}  // namespace desyn::verif
