#include "verif/testbench.h"

namespace desyn::verif {

Stimulus random_stimulus(uint64_t seed) {
  return [seed](int round, size_t input_index) {
    // Stateless hash so the stimulus is identical across both simulations
    // regardless of query order.
    Rng rng(seed ^ (static_cast<uint64_t>(round) << 20) ^ input_index);
    return rng.flip() ? cell::V::V1 : cell::V::V0;
  };
}

Stimulus constant_stimulus(cell::V v) {
  return [v](int, size_t) { return v; };
}

Stimulus walking_ones(size_t n_inputs) {
  return [n_inputs](int round, size_t input_index) {
    return cell::from_bool(static_cast<size_t>(round) % n_inputs ==
                           input_index);
  };
}

}  // namespace desyn::verif
