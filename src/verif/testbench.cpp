#include "verif/testbench.h"

#include "base/rng.h"

namespace desyn::verif {

Stimulus random_stimulus(uint64_t seed) {
  return [seed](int round, size_t input_index) {
    // Counter-based draw (base/rng.h): a pure function of (seed, round,
    // input), so the stimulus is identical across both simulations
    // regardless of query order — and rounds never collide with inputs.
    uint64_t stream =
        (static_cast<uint64_t>(round) << 32) ^ static_cast<uint64_t>(input_index);
    return rng_unit(seed, stream, 0) < 0.5 ? cell::V::V1 : cell::V::V0;
  };
}

Stimulus constant_stimulus(cell::V v) {
  return [v](int, size_t) { return v; };
}

Stimulus walking_ones(size_t n_inputs) {
  return [n_inputs](int round, size_t input_index) {
    return cell::from_bool(static_cast<size_t>(round) % n_inputs ==
                           input_index);
  };
}

}  // namespace desyn::verif
