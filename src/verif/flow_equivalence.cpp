#include "verif/flow_equivalence.h"

#include <map>

#include "core/clocktree.h"
#include "pn/mcr.h"
#include "sim/power.h"
#include "sim/sim.h"
#include "sta/sta.h"

namespace desyn::verif {

using cell::V;

namespace {

struct Tap {
  std::string name;   // original FF name
  nl::NetId d;        // data net sampled at capture
};

/// Apply stimulus vector `round` to every non-clock primary input.
void apply_vector(sim::Simulator& sim, const nl::Netlist& nl, nl::NetId clock,
                  const Stimulus& stim, int round) {
  size_t idx = 0;
  for (nl::NetId in : nl.inputs()) {
    if (in == clock) continue;
    sim.set_input(in, stim(round, idx), sim.now());
    ++idx;
  }
}

}  // namespace

FlowEqResult check_flow_equivalence(const nl::Netlist& ff_netlist,
                                    nl::NetId clock, const Stimulus& stim,
                                    const cell::Tech& tech,
                                    const FlowEqOptions& opt) {
  FlowEqResult res;
  const int rounds = opt.rounds;

  // The desynchronized circuit is produced first (served from the staged
  // engine's cache on re-runs): its resolved partition seeds the domain
  // maps of *both* simulators, so the sync reference shards by the same
  // clock/datapath cut the desynchronized side banks by.
  flow::DesyncResult dr =
      flow::desynchronize(ff_netlist, clock, tech, opt.desync);
  const int sim_jobs = opt.desync.sim_jobs;

  // ------------------------------------------------------------------ sync
  std::map<std::string, std::vector<V>> sync_stream;
  {
    nl::Netlist snl = ff_netlist;
    flow::ClockTree tree = flow::build_clock_tree(snl, clock, tech);
    res.sync_cells = snl.num_live_cells();

    sta::Sta sta(ff_netlist, tech);
    Ps period = static_cast<Ps>(
        static_cast<double>(sta.min_clock_period().min_period) *
        opt.clock_margin);
    period += period % 2;  // clock generator needs an even period
    res.sync_period = period;

    sim::Simulator sim(
        snl, tech,
        sim::SimOptions{sim_jobs, flow::sync_sim_domains(snl, dr.partition)});

    // Capture taps grouped by clock leaf: D sampled at the leaf's rise.
    std::map<uint32_t, std::vector<Tap>> by_leaf;
    for (nl::CellId c : snl.cells()) {
      const nl::CellData& cd = snl.cell(c);
      if (cd.kind != cell::Kind::Dff) continue;
      by_leaf[cd.ins[1].value()].push_back(Tap{cd.name, cd.ins[0]});
    }
    for (auto& [leaf, taps] : by_leaf) {
      sim.watch(nl::NetId(leaf), [&sim, &sync_stream, taps](Ps, V v) {
        if (v != V::V1) return;
        for (const Tap& t : taps) {
          sync_stream[t.name].push_back(sim.value(t.d));
        }
      });
    }
    apply_vector(sim, snl, clock, stim, 0);
    int round = 0;
    sim.watch(clock, [&](Ps at, V v) {
      // New vector mid-cycle (falling edge): safely after the capture edge
      // reached every leaf, and a half period before the next one. The
      // initial X->0 reset assignment at t=0 is not a falling edge.
      if (v == V::V0 && at > 0 && round <= rounds + 2) {
        ++round;
        apply_vector(sim, snl, clock, stim, round);
      }
    });
    sim.add_clock(clock, period, period / 2);
    sim.run_until(period * (rounds + 2));
    res.sync_setup_violations = sim.setup_violation_count();

    // The clock tree is globally routed wiring; bank enables are local.
    sim::PowerReport p = sim::estimate_power(sim, tech, tree.nets, tree.nets);
    res.sync_power_mw = p.total_mw;
    res.sync_clock_power_mw = p.clock_network_mw;
  }

  // ---------------------------------------------------------------- desync
  std::map<std::string, std::vector<V>> desync_stream;
  {
    res.desync_cells = dr.netlist.num_live_cells();
    res.banks = dr.cg.num_banks();
    res.controller_cells = dr.ctrl.cells.size() - dr.ctrl.delay_units;
    res.delay_cells = dr.ctrl.delay_units;
    res.predicted_period =
        pn::max_cycle_ratio(flow::timed_control_model(dr, tech)).ratio;
    sim::Simulator sim(dr.netlist, tech,
                       sim::SimOptions{sim_jobs, flow::sim_domains(dr)});

    std::vector<Ps> round_times;  // capture times of the first master bank
    size_t master_banks = 0;
    uint64_t captures = 0;
    uint64_t min_needed = 0;
    std::vector<uint64_t> bank_captures(dr.banks.banks.size(), 0);

    for (size_t i = 0; i < dr.banks.banks.size(); ++i) {
      const flow::Bank& bank = dr.banks.banks[i];
      if (!bank.even || bank.latches.empty()) continue;
      // Group taps by the latch's actual EN net: high-fanout enables get a
      // buffered distribution tree, so the latch captures at its *leaf*
      // enable, insertion-delay after the bank root — on a wide bank the D
      // pin can legitimately change in between (mirrors the sync side's
      // per-clock-leaf sampling).
      std::map<uint32_t, std::vector<Tap>> by_en;
      for (nl::CellId c : bank.latches) {
        std::string name = dr.netlist.cell(c).name;
        // FF masters are named "<ff>.m"; other even-bank latches (RAM
        // write-port holds, "<ram>.m_p<i>") have no FF counterpart.
        if (name.size() <= 2 || name.substr(name.size() - 2) != ".m") continue;
        by_en[dr.netlist.cell(c).ins[1].value()].push_back(
            Tap{name.substr(0, name.size() - 2), dr.netlist.cell(c).ins[0]});
      }
      if (by_en.empty()) continue;
      ++master_banks;
      bool first_bank = master_banks == 1;
      // Round accounting and progress detection stay on the bank root (one
      // event per capture, before any tree delay).
      sim.watch(dr.enable(static_cast<int>(i)),
                [&captures, &bank_captures, i, &round_times,
                 first_bank](Ps at, V v) {
                  if (v != V::V0) return;
                  ++captures;
                  ++bank_captures[i];
                  if (first_bank) round_times.push_back(at);
                });
      for (auto& [en, taps] : by_en) {
        sim.watch(nl::NetId(en),
                  [&sim, &desync_stream, taps](Ps, V v) {
                    if (v != V::V0) return;
                    for (const Tap& t : taps) {
                      desync_stream[t.name].push_back(sim.value(t.d));
                    }
                  });
      }
    }
    min_needed = master_banks * static_cast<uint64_t>(rounds + 1);

    // The environment publishes vectors where the matched-delay model puts
    // the env bank's data launch. Under Pulse ([O+ O- E+ E-]) that is the
    // pulse itself: vectors change on the enable's falling edge, and the
    // environment's first close precedes the masters' first capture, which
    // must see vector 0. Under the synchronous order ([E- O+ O- E+]) the
    // masters capture first — vector 0 is applied at reset (as the sync
    // testbench does) and the environment's k-th *opening* publishes
    // vector k+1: the opening is the a+ launch event the a+ -> b- matched
    // delays are sized from, and the b- -> a+ arcs guarantee every
    // consumer captured vector k before it.
    const bool pulse_env = dr.protocol == ctl::Protocol::Pulse;
    apply_vector(sim, dr.netlist, clock, stim, 0);
    int dround = pulse_env ? 0 : 1;
    sim.watch(dr.env_src_enable(), [&](Ps, V v) {
      if (v == (pulse_env ? V::V0 : V::V1)) {
        apply_vector(sim, dr.netlist, clock, stim, dround);
        ++dround;
      }
    });

    Ps t = 0;
    while (captures < min_needed) {
      uint64_t before = captures;
      t += opt.round_timeout;
      sim.run_until(t);
      if (captures == before) {
        res.mismatch =
            cat("desynchronized circuit made no progress (deadlock?) after ",
                captures, " captures at t=", sim.now(), "ps");
        return res;
      }
    }
    // Flush: the leaf-enable captures of the last round trail the root
    // event by the distribution tree's insertion delay.
    sim.run_until(sim.now() + 100'000);
    res.desync_setup_violations = sim.setup_violation_count();
    if (round_times.size() >= 2) {
      res.desync_period =
          static_cast<double>(round_times.back() - round_times.front()) /
          static_cast<double>(round_times.size() - 1);
    }
    sim::PowerReport p = sim::estimate_power(sim, tech, dr.ctrl.control_nets);
    res.desync_power_mw = p.total_mw;
    res.desync_ctl_power_mw = p.clock_network_mw;
  }

  // --------------------------------------------------------------- compare
  res.registers_compared = sync_stream.size();
  if (sync_stream.size() != desync_stream.size()) {
    res.mismatch = cat("register count differs: sync=", sync_stream.size(),
                       " desync=", desync_stream.size());
    return res;
  }
  for (const auto& [name, svals] : sync_stream) {
    auto it = desync_stream.find(name);
    if (it == desync_stream.end()) {
      res.mismatch = cat("register ", name, " missing in desync streams");
      return res;
    }
    const auto& dvals = it->second;
    for (int k = 0; k < rounds; ++k) {
      if (static_cast<size_t>(k) >= svals.size() ||
          static_cast<size_t>(k) >= dvals.size()) {
        res.mismatch = cat("register ", name, " has too few captures (sync=",
                           svals.size(), ", desync=", dvals.size(), ")");
        return res;
      }
      if (svals[static_cast<size_t>(k)] != dvals[static_cast<size_t>(k)]) {
        res.mismatch = cat("register ", name, " differs at round ", k,
                           ": sync=", cell::to_char(svals[static_cast<size_t>(k)]),
                           " desync=", cell::to_char(dvals[static_cast<size_t>(k)]));
        return res;
      }
      ++res.captures_compared;
    }
  }
  res.equivalent = true;
  return res;
}

}  // namespace desyn::verif
