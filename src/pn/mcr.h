// Timed marked-graph performance analysis.
//
// For a strongly-connected live MG with arc delays, the asymptotic period
// (time between successive firings of any transition in the steady state)
// equals the maximum cycle ratio  max_C  D(C) / T(C)  over directed cycles
// C, where D is total delay and T total tokens. This predicts the cycle
// time of a desynchronized circuit analytically; bench A3 cross-checks it
// against event-driven simulation.
#pragma once

#include "pn/petri.h"

namespace desyn::pn {

struct CycleRatioResult {
  double ratio = 0;               ///< asymptotic period (ps per token)
  std::vector<TransId> cycle;     ///< one critical cycle (transition list)
};

/// Maximum cycle ratio via parametric binary search + Bellman-Ford positive
/// cycle detection. Requires a live MG with at least one cycle; arcs not on
/// any cycle are handled naturally (they never bound the ratio).
CycleRatioResult max_cycle_ratio(const MarkedGraph& mg);

/// Earliest-firing schedule: fire time of the k-th firing (k = 0..rounds-1)
/// of every transition under the greedy timed semantics (a transition fires
/// as soon as every input arc holds a token whose availability time has
/// passed). Requires liveness. Result[t][k] is the k-th firing time of
/// transition t.
std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds);

}  // namespace desyn::pn
