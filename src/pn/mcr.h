// Timed marked-graph performance analysis.
//
// For a strongly-connected live MG with arc delays, the asymptotic period
// (time between successive firings of any transition in the steady state)
// equals the maximum cycle ratio  max_C  D(C) / T(C)  over directed cycles
// C, where D is total delay and T total tokens. This predicts the cycle
// time of a desynchronized circuit analytically; bench A3 cross-checks it
// against event-driven simulation.
//
// Two solvers are provided (see docs/PERF.md for the full comparison):
//  * max_cycle_ratio — Howard's policy iteration, the production solver.
//    Near-linear in practice; the hot path of every throughput query.
//  * max_cycle_ratio_reference — parametric binary search over Bellman-Ford
//    positive-cycle detection, O(64·n·m). Kept as an independent oracle for
//    cross-checking (tests compare the two on randomized marked graphs).
#pragma once

#include <span>

#include "pn/petri.h"

namespace desyn::pn {

struct CycleRatioResult {
  double ratio = 0;               ///< asymptotic period (ps per token)
  std::vector<TransId> cycle;     ///< critical cycle: transitions in order
  /// Arcs of the critical cycle: cycle_arcs[i] runs from cycle[i] to
  /// cycle[(i+1) % size]. Empty iff the graph has no cycle at all. The
  /// cycle is genuine: cycle_ratio(mg, cycle_arcs) == ratio.
  std::vector<ArcId> cycle_arcs;
};

/// Exact delay/token ratio of the closed cycle formed by `arcs`
/// (consecutive arcs must chain head-to-tail and wrap around). Asserts the
/// cycle carries at least one token, as liveness guarantees.
double cycle_ratio(const MarkedGraph& mg, std::span<const ArcId> arcs);

/// Maximum cycle ratio via Howard's policy iteration, run independently on
/// every strongly-connected component (arcs not on any cycle never bound
/// the ratio). Requires a live MG; graphs without any cycle yield ratio 0
/// and an empty cycle.
CycleRatioResult max_cycle_ratio(const MarkedGraph& mg);

/// Reference solver: parametric binary search + Bellman-Ford positive-cycle
/// detection, followed by an exact cycle-ratio climb so the returned cycle
/// is genuinely critical (its exact D/T is the returned ratio).
CycleRatioResult max_cycle_ratio_reference(const MarkedGraph& mg);

/// Earliest-firing schedule: fire time of the k-th firing (k = 0..rounds-1)
/// of every transition under the greedy timed semantics (a transition fires
/// as soon as every input arc holds a token whose availability time has
/// passed). Requires liveness. Result[t][k] is the k-th firing time of
/// transition t.
std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds);

}  // namespace desyn::pn
