// Timed marked-graph performance analysis.
//
// For a strongly-connected live MG with arc delays, the asymptotic period
// (time between successive firings of any transition in the steady state)
// equals the maximum cycle ratio  max_C  D(C) / T(C)  over directed cycles
// C, where D is total delay and T total tokens. This predicts the cycle
// time of a desynchronized circuit analytically; bench A3 cross-checks it
// against event-driven simulation.
//
// Two solvers are provided (see docs/PERF.md for the full comparison):
//  * max_cycle_ratio — Howard's policy iteration, the production solver.
//    Near-linear in practice; the hot path of every throughput query.
//  * max_cycle_ratio_reference — parametric binary search over Bellman-Ford
//    positive-cycle detection, O(64·n·m). Kept as an independent oracle for
//    cross-checking (tests compare the two on randomized marked graphs).
//
// For callers that solve long sequences of *related* graphs — the partition
// optimizer scores thousands of candidate clusterings, each one merge away
// from the last — the solver is also exposed as a reusable McrContext that
// retains the converged policy and potentials of its last solve and
// warm-starts the next one through a node map, typically converging in one
// or two sweeps instead of a full cold iteration. Warm and cold solves
// return bit-equal ratios (property-tested): both terminate on a genuinely
// critical cycle and report its exact delay/token quotient.
#pragma once

#include <span>

#include "pn/petri.h"

namespace desyn::pn {

struct CycleRatioResult {
  double ratio = 0;               ///< asymptotic period (ps per token)
  std::vector<TransId> cycle;     ///< critical cycle: transitions in order
  /// Arcs of the critical cycle: cycle_arcs[i] runs from cycle[i] to
  /// cycle[(i+1) % size]. Empty iff the graph has no cycle at all. The
  /// cycle is genuine: cycle_ratio(mg, cycle_arcs) == ratio.
  std::vector<ArcId> cycle_arcs;
};

/// Exact delay/token ratio of the closed cycle formed by `arcs`
/// (consecutive arcs must chain head-to-tail and wrap around). Asserts the
/// cycle carries at least one token, as liveness guarantees.
double cycle_ratio(const MarkedGraph& mg, std::span<const ArcId> arcs);

/// Maximum cycle ratio via Howard's policy iteration, run independently on
/// every strongly-connected component (arcs not on any cycle never bound
/// the ratio). Requires a live MG; graphs without any cycle yield ratio 0
/// and an empty cycle.
CycleRatioResult max_cycle_ratio(const MarkedGraph& mg);

/// Reference solver: parametric binary search + Bellman-Ford positive-cycle
/// detection, followed by an exact cycle-ratio climb so the returned cycle
/// is genuinely critical (its exact D/T is the returned ratio).
CycleRatioResult max_cycle_ratio_reference(const MarkedGraph& mg);

// ---------------------------------------------------------------------------
// Flat solver interface: repeated solves over related graphs
// ---------------------------------------------------------------------------

/// Non-owning struct-of-arrays view of a timed marked graph: arc `j` runs
/// from node `from[j]` to `to[j]` carrying `tokens[j]` initial tokens and
/// `delay[j]` ps. Node and arc indices double as the TransId/ArcId values
/// of the returned CycleRatioResult. Nodes without arcs are allowed (the
/// optimizer leaves merged-away transitions as holes); self-loops are
/// allowed; parallel arcs are allowed (the larger-delay one dominates).
struct McrArcs {
  uint32_t num_nodes = 0;
  std::span<const uint32_t> from;
  std::span<const uint32_t> to;
  std::span<const int32_t> tokens;
  std::span<const Ps> delay;
  size_t num_arcs() const { return from.size(); }
};

/// Owning flat copy of a MarkedGraph: node i is TransId(i), arc j ArcId(j).
struct McrFlat {
  uint32_t num_nodes = 0;
  std::vector<uint32_t> from, to;
  std::vector<int32_t> tokens;
  std::vector<Ps> delay;
  McrArcs view() const { return {num_nodes, from, to, tokens, delay}; }
};
McrFlat flatten(const MarkedGraph& mg);

/// Exact delay/token ratio of a closed arc cycle of a flat graph (the
/// McrArcs twin of cycle_ratio above).
double cycle_ratio(const McrArcs& g, std::span<const ArcId> arcs);

/// Reusable per-solve working memory. One per thread: a McrContext::probe
/// is const and thread-safe provided every thread brings its own scratch.
///
/// The solve decomposes into two phases with different data dependence:
/// build_structure() (out-arc CSR, Tarjan SCCs, intra-SCC policy-candidate
/// CSR, members by component) reads only the arc *structure* — never a
/// delay — while init_policy_cold()/howard() read the delays. McrBatch
/// exploits the split: one structure build amortized over every
/// Monte-Carlo sample.
class McrScratch {
 public:
  McrScratch() = default;

 private:
  friend class McrContext;
  friend class McrBatch;

  /// Phases of a solve (bodies in mcr.cpp). build_structure returns the
  /// component count; howard requires the structure to describe `g` and
  /// policy_ to hold an intra-SCC out-arc for every SCC node, and sets
  /// howard_converged_ (false = epsilon-induced policy cycling, caller
  /// falls back to the reference solver).
  int build_structure(const McrArcs& g);
  void init_policy_cold(const McrArcs& g);
  CycleRatioResult howard(const McrArcs& g, int comps);

  // Tarjan + CSR adjacency + Howard state, sized on first use and reused.
  std::vector<uint32_t> csr_off_, csr_arc_;        // intra-SCC out-arcs
  std::vector<uint32_t> out_off_, out_arc_;        // all out-arcs (Tarjan)
  std::vector<int> comp_;
  std::vector<uint32_t> index_, low_, stack_, members_, comp_off_;
  std::vector<uint8_t> on_stack_, state_;
  std::vector<uint32_t> policy_, path_;
  std::vector<double> r_, d_;
  std::vector<uint32_t> cycle_;
  bool howard_converged_ = true;
};

/// Howard's policy iteration with warm-start across graph deltas.
///
/// solve() runs cold and retains the converged policy and node potentials
/// as the context's baseline. resolve()/probe() solve a *related* graph:
/// `node_map[u]` names the node of the new graph that baseline node `u`
/// became (many-to-one for merges; UINT32_MAX drops the node). Arc indices
/// must be preserved across the delta — the caller re-points endpoints of
/// the same arc list rather than rebuilding it — so an inherited policy arc
/// can be validated structurally (it must still leave its node inside its
/// strongly-connected component). Nodes whose inherited policy fails
/// validation fall back to a cold initialization; an empty or mismatched
/// node_map falls back to a full cold solve (structural invalidation).
///
/// Warm starts change the iteration path, not the answer: the returned
/// ratio is the exact D/T of a genuinely critical cycle, bit-equal to a
/// cold solve of the same graph (property-tested in test_pn.cpp).
class McrContext {
 public:
  /// A detached converged solution, exported from a probe's scratch so the
  /// caller can later adopt it as the baseline without re-solving (the
  /// committed candidate of a scoring wave was already solved by its
  /// probe).
  struct Solution {
    bool valid = false;
    uint32_t num_nodes = 0;
    std::vector<uint32_t> policy;
    std::vector<double> r, d;
  };

  /// Cold solve; the solution becomes the warm-start baseline.
  CycleRatioResult solve(const McrArcs& g);
  /// Warm re-solve after a delta; adopts the new solution as the baseline.
  CycleRatioResult resolve(const McrArcs& g,
                           std::span<const uint32_t> node_map);
  /// Warm solve of a tentative delta *without* adopting it — the candidate
  /// probe of the partition optimizer. Thread-safe against concurrent
  /// probes of the same context (each thread passes its own scratch).
  CycleRatioResult probe(const McrArcs& g, std::span<const uint32_t> node_map,
                         McrScratch& scratch) const;
  /// Copy the converged solution out of a just-probed scratch. Call before
  /// reusing the scratch; `num_nodes` names the probed graph's node count.
  static void export_solution(const McrScratch& scratch, uint32_t num_nodes,
                              Solution* out);
  /// Install an exported solution as the warm-start baseline (it must
  /// describe the caller's current graph).
  void adopt_solution(Solution sol);
  /// Rewrite the baseline's policy arc ids through `arc_map` (old id ->
  /// new id, UINT32_MAX drops the arc) after the caller compacted its arc
  /// list. Node ids must be unchanged.
  void remap_baseline_arcs(std::span<const uint32_t> arc_map);

  bool has_baseline() const { return base_nodes_ > 0; }
  size_t cold_solves() const { return cold_solves_; }
  size_t warm_solves() const { return warm_solves_; }

 private:
  CycleRatioResult run(const McrArcs& g, std::span<const uint32_t> node_map,
                       McrScratch& scratch, bool* warmed) const;
  void adopt(const McrArcs& g);  ///< scratch_ solution -> baseline

  // Baseline: per-node chosen out-arc (UINT32_MAX = none), cycle ratio and
  // potential of the last adopted solve.
  std::vector<uint32_t> base_policy_;
  std::vector<double> base_r_, base_d_;
  uint32_t base_nodes_ = 0;
  McrScratch scratch_;
  size_t cold_solves_ = 0, warm_solves_ = 0;
};

/// Structure-shared batch Howard solver for Monte-Carlo throughput sweeps.
///
/// A variation sweep solves the *same* marked graph under hundreds of
/// sampled delay assignments; only the delays change. McrBatch runs the
/// delay-independent analysis once at construction — CSR builds, Tarjan
/// SCCs, and a dictionary of every 1- and 2-arc cycle (on handshake control
/// graphs the critical cycle is almost always one of these local loops) —
/// and then solves most samples without running Howard at all:
///
///   1. Score the dictionary under the sample's delays (exact integer D/T
///      comparison) and take the best ratio as the candidate lambda.
///   2. Repair the previous sample's node potentials by worklist
///      relaxation until every intra-SCC candidate arc satisfies
///      d[v] >= d[w] + delay - lambda * tokens - eps — the very inequality
///      Howard's convergence establishes. Summing it around any cycle
///      bounds every cycle ratio by lambda (integer picosecond delays
///      separate distinct cycle ratios by far more than the epsilon
///      slack), so the certificate pins the exact answer.
///
/// A sample whose relaxation diverges has a critical cycle outside the
/// dictionary; it falls back to a full warm-started Howard solve, which
/// grows the block's dictionary and refreshes the potentials. Results are
/// bit-equal to independent cold solves either way (property-tested).
///
/// Parallelism contract (same as PartitionOptOptions::jobs): samples are
/// processed in fixed blocks of kBlock; a block's first sample solves from
/// the cold policy and later samples reuse certificate state within the
/// block only, so every block is independent of every other. Workers claim
/// whole blocks and write results by sample index — byte-identical output
/// at any `jobs` count, and identical to jobs = 1.
class McrBatch {
 public:
  /// Samples per certificate block (also the parallel work granule). Each
  /// block pays one full Howard solve up front; a larger block amortizes
  /// that head further but leaves fewer independent granules for `jobs`.
  static constexpr size_t kBlock = 64;

  /// Copies the structure (from/to/tokens) and runs the delay-independent
  /// analysis once; `g.delay` is ignored and may be empty.
  explicit McrBatch(const McrArcs& g);

  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_arcs() const { return from_.size(); }

  /// Solve all `samples` rows of the row-major samples x num_arcs() delay
  /// matrix. Every returned cycle is genuinely critical for its row
  /// (cycle_ratio(row view, cycle_arcs) == ratio), bit-equal to
  /// solve_one_cold on the same row (property-tested in test_pn.cpp).
  std::vector<CycleRatioResult> solve_all(std::span<const Ps> delays,
                                          size_t samples, int jobs = 1) const;

  /// Independent per-sample oracle: a fresh cold McrContext solve of one
  /// row, sharing nothing with the batch machinery (also the baseline the
  /// bench_mc speedup is measured against).
  CycleRatioResult solve_one_cold(std::span<const Ps> delay_row) const;

 private:
  McrArcs row_view(std::span<const Ps> row) const {
    return {num_nodes_, from_, to_, tokens_, row};
  }

  uint32_t num_nodes_ = 0;
  std::vector<uint32_t> from_, to_;
  std::vector<int32_t> tokens_;
  McrScratch structure_;  ///< built once; copied into each worker's scratch
  int comps_ = 0;
  /// Every 1- and 2-arc cycle of the graph, canonical arc order — the
  /// structural seed of each block's critical-cycle dictionary.
  std::vector<std::vector<ArcId>> seed_cycles_;
  /// Intra-SCC candidate arcs indexed by *target* node: when a relaxation
  /// raises d[v], exactly the arcs pred_arc_[pred_off_[v]..pred_off_[v+1])
  /// can newly violate the certificate inequality.
  std::vector<uint32_t> pred_off_, pred_arc_;
};

/// Earliest-firing schedule: fire time of the k-th firing (k = 0..rounds-1)
/// of every transition under the greedy timed semantics (a transition fires
/// as soon as every input arc holds a token whose availability time has
/// passed). Requires liveness. Result[t][k] is the k-th firing time of
/// transition t.
std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds);

}  // namespace desyn::pn
