#include "pn/petri.h"

#include <sstream>

namespace desyn::pn {

TransId MarkedGraph::add_transition(std::string name) {
  TransId id(static_cast<uint32_t>(trans_.size()));
  trans_.push_back(Transition{std::move(name), {}, {}});
  return id;
}

ArcId MarkedGraph::add_arc(TransId from, TransId to, int tokens, Ps delay) {
  DESYN_ASSERT(from.valid() && from.value() < trans_.size());
  DESYN_ASSERT(to.valid() && to.value() < trans_.size());
  DESYN_ASSERT(tokens >= 0);
  ArcId id(static_cast<uint32_t>(arcs_.size()));
  arcs_.push_back(Arc{from, to, tokens, delay});
  trans_[from.value()].out.push_back(id);
  trans_[to.value()].in.push_back(id);
  return id;
}

TransId MarkedGraph::find(std::string_view name) const {
  for (uint32_t i = 0; i < trans_.size(); ++i) {
    if (trans_[i].name == name) return TransId(i);
  }
  return TransId::invalid();
}

Marking MarkedGraph::initial_marking() const {
  Marking m(arcs_.size());
  for (size_t i = 0; i < arcs_.size(); ++i) m[i] = arcs_[i].tokens;
  return m;
}

bool MarkedGraph::enabled(TransId t, const Marking& m) const {
  for (ArcId a : transition(t).in) {
    if (m[a.value()] < 1) return false;
  }
  return true;
}

void MarkedGraph::fire(TransId t, Marking& m) const {
  DESYN_ASSERT(enabled(t, m), "firing disabled transition ",
               transition(t).name);
  for (ArcId a : transition(t).in) --m[a.value()];
  for (ArcId a : transition(t).out) ++m[a.value()];
}

std::vector<TransId> MarkedGraph::enabled_set(const Marking& m) const {
  std::vector<TransId> out;
  for (uint32_t i = 0; i < trans_.size(); ++i) {
    if (enabled(TransId(i), m)) out.push_back(TransId(i));
  }
  return out;
}

std::string MarkedGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n";
  for (uint32_t i = 0; i < trans_.size(); ++i) {
    os << "  t" << i << " [shape=box,label=\"" << trans_[i].name << "\"];\n";
  }
  for (const Arc& a : arcs_) {
    os << "  t" << a.from.value() << " -> t" << a.to.value() << " [label=\"";
    for (int k = 0; k < a.tokens; ++k) os << "*";
    if (a.delay > 0) os << " " << a.delay << "ps";
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace desyn::pn
