#include "pn/mcr.h"

#include <algorithm>
#include <cmath>

#include "pn/analysis.h"

namespace desyn::pn {

namespace {

/// Longest-path relaxation with weights (delay - lambda * tokens); returns
/// true if a positive cycle exists. When `cycle_out` is non-null and a
/// positive cycle is found, the arcs of one such cycle are stored there in
/// cycle order (every cycle of the predecessor graph after n rounds of
/// relaxation is a positive cycle).
bool positive_cycle(const MarkedGraph& mg, double lambda,
                    std::vector<ArcId>* cycle_out) {
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());
  std::vector<double> dist(n, 0.0);
  std::vector<ArcId> parent(n, ArcId::invalid());
  uint32_t changed_node = UINT32_MAX;
  for (uint32_t iter = 0; iter <= n; ++iter) {
    changed_node = UINT32_MAX;
    for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
      const Arc& arc = mg.arc(ArcId(a));
      double w = static_cast<double>(arc.delay) -
                 lambda * static_cast<double>(arc.tokens);
      double nd = dist[arc.from.value()] + w;
      if (nd > dist[arc.to.value()] + 1e-9) {
        dist[arc.to.value()] = nd;
        parent[arc.to.value()] = ArcId(a);
        changed_node = arc.to.value();
      }
    }
    if (changed_node == UINT32_MAX) return false;  // converged: no cycle
  }
  if (cycle_out) {
    // Walk parents n steps to land inside a predecessor-graph cycle, then
    // collect its arcs.
    uint32_t v = changed_node;
    for (uint32_t i = 0; i < n && parent[v].valid(); ++i) {
      v = mg.arc(parent[v]).from.value();
    }
    cycle_out->clear();
    uint32_t u = v;
    do {
      ArcId a = parent[u];
      if (!a.valid()) break;  // defensive; cycle nodes all have parents
      cycle_out->push_back(a);
      u = mg.arc(a).from.value();
    } while (u != v && cycle_out->size() <= n);
    std::reverse(cycle_out->begin(), cycle_out->end());
  }
  return true;
}

/// Rotate so the cycle starts at its smallest transition id (canonical,
/// deterministic output) and fill in the transition list.
void set_cycle(const MarkedGraph& mg, std::vector<ArcId> arcs,
               CycleRatioResult* res) {
  if (!arcs.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < arcs.size(); ++i) {
      if (mg.arc(arcs[i]).from < mg.arc(arcs[best]).from) best = i;
    }
    std::rotate(arcs.begin(), arcs.begin() + static_cast<ptrdiff_t>(best),
                arcs.end());
  }
  res->cycle.clear();
  for (ArcId a : arcs) res->cycle.push_back(mg.arc(a).from);
  res->cycle_arcs = std::move(arcs);
}

/// Iterative Tarjan (the control models of large register fabrics would
/// overflow the stack recursively). Returns the component id per
/// transition and the component count.
std::vector<int> tarjan_scc(const MarkedGraph& mg, int* num_comps) {
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());
  std::vector<int> comp(n, -1);
  std::vector<uint32_t> index(n, UINT32_MAX), low(n, 0);
  std::vector<uint32_t> stack;
  std::vector<uint8_t> on_stack(n, 0);
  struct Frame {
    uint32_t v;
    size_t next_out;
  };
  std::vector<Frame> work;
  uint32_t next_index = 0;
  int comps = 0;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    work.push_back({root, 0});
    while (!work.empty()) {
      uint32_t v = work.back().v;
      if (work.back().next_out == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      const std::vector<ArcId>& outs = mg.transition(TransId(v)).out;
      bool descended = false;
      while (work.back().next_out < outs.size()) {
        uint32_t w = mg.arc(outs[work.back().next_out]).to.value();
        ++work.back().next_out;
        if (index[w] == UINT32_MAX) {
          work.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = comps;
          if (w == v) break;
        }
        ++comps;
      }
      work.pop_back();
      if (!work.empty()) low[work.back().v] = std::min(low[work.back().v], low[v]);
    }
  }
  *num_comps = comps;
  return comp;
}

/// Howard's policy iteration over one strongly-connected component,
/// maximizing D(C)/T(C). Every node of a nontrivial SCC has at least one
/// out-arc staying inside it, so the policy graph (one chosen out-arc per
/// node) is a functional graph whose cycles are genuine MG cycles; policy
/// evaluation scores them and policy improvement switches to arcs reaching
/// a better cycle (first by ratio, then by potential). The best policy
/// cycle is monotone non-decreasing, so the final evaluation's best cycle
/// attains the component's maximum cycle ratio.
class Howard {
 public:
  explicit Howard(const MarkedGraph& mg)
      : mg_(mg),
        n_(static_cast<uint32_t>(mg.num_transitions())),
        intra_out_(n_),
        policy_(n_, ArcId::invalid()),
        r_(n_, 0.0),
        d_(n_, 0.0),
        state_(n_, 0) {}

  /// Register arc `a` as staying inside its endpoint's component.
  void add_intra_arc(ArcId a) {
    intra_out_[mg_.arc(a).from.value()].push_back(a);
  }

  bool has_out(uint32_t v) const { return !intra_out_[v].empty(); }

  /// Run on one component; returns false if the iteration cap was hit
  /// (callers then fall back to the reference solver).
  bool run(const std::vector<uint32_t>& members) {
    for (uint32_t v : members) {
      DESYN_ASSERT(!intra_out_[v].empty(),
                   "SCC node without an intra-component out-arc");
      policy_[v] = intra_out_[v][0];
    }
    // Howard converges in a handful of iterations in practice; the cap is a
    // safety net against epsilon-induced policy cycling.
    const int cap = 64 + 4 * static_cast<int>(members.size());
    for (int iter = 0; iter < cap; ++iter) {
      evaluate(members);
      if (!improve(members)) return true;
    }
    return false;
  }

  double best_ratio() const { return best_ratio_; }
  const std::vector<ArcId>& best_cycle() const { return best_cycle_; }

 private:
  uint32_t succ(uint32_t v) const { return mg_.arc(policy_[v]).to.value(); }

  /// Score the current policy graph: per-node cycle ratio r_ and potential
  /// d_ (d_[u] = w_u - r*t_u + d_[succ(u)], anchored at one cycle node).
  /// Tracks the best policy cycle seen in this evaluation.
  void evaluate(const std::vector<uint32_t>& members) {
    for (uint32_t v : members) state_[v] = 0;
    best_ratio_ = -1.0;
    best_cycle_.clear();
    std::vector<uint32_t> path;
    for (uint32_t v0 : members) {
      if (state_[v0] != 0) continue;
      path.clear();
      uint32_t u = v0;
      while (state_[u] == 0) {
        state_[u] = 1;
        path.push_back(u);
        u = succ(u);
      }
      size_t start = path.size();  // first index of the new cycle, if any
      if (state_[u] == 1) {
        // Found a fresh policy cycle beginning at u; score it.
        while (start > 0 && path[start - 1] != u) --start;
        --start;
        double dsum = 0.0, tsum = 0.0;
        for (size_t i = start; i < path.size(); ++i) {
          const Arc& a = mg_.arc(policy_[path[i]]);
          dsum += static_cast<double>(a.delay);
          tsum += static_cast<double>(a.tokens);
        }
        DESYN_ASSERT(tsum > 0, "token-free cycle in a live marked graph");
        double rc = dsum / tsum;
        if (rc > best_ratio_) {
          best_ratio_ = rc;
          best_cycle_.clear();
          for (size_t i = start; i < path.size(); ++i) {
            best_cycle_.push_back(policy_[path[i]]);
          }
        }
        // Anchor d at the cycle head and walk the cycle forward.
        double dv = 0.0;
        for (size_t i = start; i < path.size(); ++i) {
          uint32_t w = path[i];
          r_[w] = rc;
          d_[w] = dv;
          const Arc& a = mg_.arc(policy_[w]);
          dv -= static_cast<double>(a.delay) -
                rc * static_cast<double>(a.tokens);
        }
      }
      // Nodes draining into the cycle (or into an already-evaluated
      // region) inherit ratio and accumulate potential, tail first.
      for (size_t i = start; i-- > 0;) {
        uint32_t w = path[i];
        const Arc& a = mg_.arc(policy_[w]);
        r_[w] = r_[succ(w)];
        d_[w] = static_cast<double>(a.delay) -
                r_[w] * static_cast<double>(a.tokens) + d_[succ(w)];
      }
      for (uint32_t w : path) state_[w] = 2;
    }
  }

  bool improve(const std::vector<uint32_t>& members) {
    bool improved = false;
    // Phase 1: switch to arcs reaching a strictly better cycle ratio.
    for (uint32_t v : members) {
      double br = r_[v];
      ArcId ba = policy_[v];
      for (ArcId a : intra_out_[v]) {
        uint32_t w = mg_.arc(a).to.value();
        if (r_[w] > br + kEpsRatio) {
          br = r_[w];
          ba = a;
        }
      }
      if (ba != policy_[v]) {
        policy_[v] = ba;
        improved = true;
      }
    }
    if (improved) return true;
    // Phase 2: same ratio class, strictly better potential.
    for (uint32_t v : members) {
      double bd = d_[v];
      ArcId ba = policy_[v];
      for (ArcId a : intra_out_[v]) {
        const Arc& arc = mg_.arc(a);
        uint32_t w = arc.to.value();
        if (r_[w] + kEpsRatio < r_[v]) continue;
        double val = d_[w] + static_cast<double>(arc.delay) -
                     r_[v] * static_cast<double>(arc.tokens);
        if (val > bd + kEpsPotential) {
          bd = val;
          ba = a;
        }
      }
      if (ba != policy_[v]) {
        policy_[v] = ba;
        improved = true;
      }
    }
    return improved;
  }

  static constexpr double kEpsRatio = 1e-9;
  static constexpr double kEpsPotential = 1e-7;

  const MarkedGraph& mg_;
  uint32_t n_;
  std::vector<std::vector<ArcId>> intra_out_;
  std::vector<ArcId> policy_;
  std::vector<double> r_, d_;
  std::vector<uint8_t> state_;
  double best_ratio_ = -1.0;
  std::vector<ArcId> best_cycle_;  ///< arcs of the latest evaluation's best
};

}  // namespace

double cycle_ratio(const MarkedGraph& mg, std::span<const ArcId> arcs) {
  DESYN_ASSERT(!arcs.empty(), "cycle_ratio needs a non-empty cycle");
  Ps delay = 0;
  int64_t tokens = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = mg.arc(arcs[i]);
    const Arc& next = mg.arc(arcs[(i + 1) % arcs.size()]);
    DESYN_ASSERT(a.to == next.from, "arcs do not chain into a closed cycle");
    delay += a.delay;
    tokens += a.tokens;
  }
  DESYN_ASSERT(tokens > 0, "cycle carries no token (dead marked graph?)");
  return static_cast<double>(delay) / static_cast<double>(tokens);
}

CycleRatioResult max_cycle_ratio(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg), "max_cycle_ratio requires a live marked graph");
  CycleRatioResult res;
  int num_comps = 0;
  std::vector<int> comp = tarjan_scc(mg, &num_comps);

  Howard howard(mg);
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    if (comp[arc.from.value()] == comp[arc.to.value()]) {
      howard.add_intra_arc(ArcId(a));
    }
  }
  std::vector<std::vector<uint32_t>> members(
      static_cast<size_t>(num_comps));
  for (uint32_t v = 0; v < mg.num_transitions(); ++v) {
    members[static_cast<size_t>(comp[v])].push_back(v);
  }

  double best = -1.0;
  std::vector<ArcId> best_arcs;
  for (const std::vector<uint32_t>& m : members) {
    // Singleton components without a self-loop contain no cycle.
    if (m.size() == 1 && !howard.has_out(m[0])) continue;
    if (!howard.run(m)) return max_cycle_ratio_reference(mg);
    if (howard.best_ratio() > best) {
      best = howard.best_ratio();
      best_arcs = howard.best_cycle();
    }
  }
  if (best_arcs.empty()) {
    res.ratio = 0.0;  // acyclic graph: nothing bounds the throughput
    return res;
  }
  res.ratio = cycle_ratio(mg, best_arcs);  // exact D/T of the critical cycle
  set_cycle(mg, std::move(best_arcs), &res);
  return res;
}

CycleRatioResult max_cycle_ratio_reference(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg),
               "max_cycle_ratio_reference requires a live marked graph");
  CycleRatioResult res;
  std::vector<ArcId> arcs;
  if (!positive_cycle(mg, 0.0, nullptr)) {
    // All cycles have zero total delay (or there are none). Any cycle is
    // critical; at lambda = -1 every cycle has weight D + T >= 1 > 0, so
    // detection finds one iff one exists.
    res.ratio = 0.0;
    if (positive_cycle(mg, -1.0, &arcs)) set_cycle(mg, std::move(arcs), &res);
    return res;
  }
  double lo = 0.0, hi = 1.0;
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    hi += static_cast<double>(mg.arc(ArcId(a)).delay);
  }
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    if (positive_cycle(mg, mid, nullptr)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Extraction: probe just below the answer, then climb by exact cycle
  // ratios. Each extracted predecessor-graph cycle is positive at the probe
  // lambda but not necessarily critical; adopting its exact D/T and
  // re-probing strictly above it terminates (finitely many cycle ratios)
  // with a genuinely critical cycle.
  double probe = std::max(0.0, lo * (1.0 - 1e-9) - 1e-9);
  if (!positive_cycle(mg, probe, &arcs)) {
    bool found = positive_cycle(mg, 0.0, &arcs);
    DESYN_ASSERT(found);
  }
  double r = cycle_ratio(mg, arcs);
  for (;;) {
    std::vector<ArcId> better;
    if (!positive_cycle(mg, r + 1e-9 * (1.0 + r), &better)) break;
    double r2 = cycle_ratio(mg, better);
    if (!(r2 > r)) break;
    r = r2;
    arcs = std::move(better);
  }
  res.ratio = r;
  set_cycle(mg, std::move(arcs), &res);
  return res;
}

std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds) {
  DESYN_ASSERT(rounds > 0);
  DESYN_ASSERT(is_live(mg), "earliest_schedule requires liveness");
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());

  // Topological order of the zero-token subgraph (acyclic by liveness):
  // within one round, a transition may depend on same-round firings only
  // through token-free arcs.
  std::vector<uint32_t> indeg(n, 0);
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    if (arc.tokens == 0) ++indeg[arc.to.value()];
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (indeg[t] == 0) order.push_back(t);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (ArcId out : mg.transition(TransId(order[i])).out) {
      const Arc& arc = mg.arc(out);
      if (arc.tokens == 0 && --indeg[arc.to.value()] == 0) {
        order.push_back(arc.to.value());
      }
    }
  }
  DESYN_ASSERT(order.size() == n);

  std::vector<std::vector<Ps>> fire(n, std::vector<Ps>(rounds, 0));
  for (int k = 0; k < rounds; ++k) {
    for (uint32_t t : order) {
      Ps at = 0;
      for (ArcId in : mg.transition(TransId(t)).in) {
        const Arc& arc = mg.arc(in);
        int src_round = k - arc.tokens;
        if (src_round < 0) {
          // The needed token is part of the initial marking: available at 0.
          continue;
        }
        at = std::max(at, fire[arc.from.value()][src_round] + arc.delay);
      }
      fire[t][k] = at;
    }
  }
  return fire;
}

}  // namespace desyn::pn
