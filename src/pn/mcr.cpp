#include "pn/mcr.h"

#include <algorithm>
#include <cmath>

#include "pn/analysis.h"

namespace desyn::pn {

namespace {

/// Longest-path relaxation with weights (delay - lambda * tokens); returns
/// true if a positive cycle exists. When `cycle_out` is non-null and a
/// positive cycle is found, one such cycle's transitions are stored there.
bool positive_cycle(const MarkedGraph& mg, double lambda,
                    std::vector<TransId>* cycle_out) {
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());
  std::vector<double> dist(n, 0.0);
  std::vector<uint32_t> parent(n, UINT32_MAX);
  uint32_t changed_node = UINT32_MAX;
  for (uint32_t iter = 0; iter <= n; ++iter) {
    changed_node = UINT32_MAX;
    for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
      const Arc& arc = mg.arc(ArcId(a));
      double w = static_cast<double>(arc.delay) -
                 lambda * static_cast<double>(arc.tokens);
      double nd = dist[arc.from.value()] + w;
      if (nd > dist[arc.to.value()] + 1e-9) {
        dist[arc.to.value()] = nd;
        parent[arc.to.value()] = arc.from.value();
        changed_node = arc.to.value();
      }
    }
    if (changed_node == UINT32_MAX) return false;  // converged: no cycle
  }
  if (cycle_out) {
    // Walk parents n steps to land inside the cycle, then collect it.
    uint32_t v = changed_node;
    for (uint32_t i = 0; i < n && parent[v] != UINT32_MAX; ++i) v = parent[v];
    cycle_out->clear();
    uint32_t u = v;
    do {
      cycle_out->push_back(TransId(u));
      u = parent[u];
    } while (u != UINT32_MAX && u != v && cycle_out->size() <= n);
    std::reverse(cycle_out->begin(), cycle_out->end());
  }
  return true;
}

}  // namespace

CycleRatioResult max_cycle_ratio(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg), "max_cycle_ratio requires a live marked graph");
  CycleRatioResult res;
  double lo = 0.0, hi = 1.0;
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    hi += static_cast<double>(mg.arc(ArcId(a)).delay);
  }
  if (!positive_cycle(mg, 0.0, nullptr)) {
    // All cycles have zero total delay (or there are none).
    res.ratio = 0.0;
    return res;
  }
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    if (positive_cycle(mg, mid, nullptr)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  res.ratio = hi;
  // Extract a critical cycle just below the ratio.
  positive_cycle(mg, std::max(0.0, res.ratio * (1.0 - 1e-7) - 1e-7),
                 &res.cycle);
  return res;
}

std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds) {
  DESYN_ASSERT(rounds > 0);
  DESYN_ASSERT(is_live(mg), "earliest_schedule requires liveness");
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());

  // Topological order of the zero-token subgraph (acyclic by liveness):
  // within one round, a transition may depend on same-round firings only
  // through token-free arcs.
  std::vector<uint32_t> indeg(n, 0);
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    if (arc.tokens == 0) ++indeg[arc.to.value()];
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (indeg[t] == 0) order.push_back(t);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (ArcId out : mg.transition(TransId(order[i])).out) {
      const Arc& arc = mg.arc(out);
      if (arc.tokens == 0 && --indeg[arc.to.value()] == 0) {
        order.push_back(arc.to.value());
      }
    }
  }
  DESYN_ASSERT(order.size() == n);

  std::vector<std::vector<Ps>> fire(n, std::vector<Ps>(rounds, 0));
  for (int k = 0; k < rounds; ++k) {
    for (uint32_t t : order) {
      Ps at = 0;
      for (ArcId in : mg.transition(TransId(t)).in) {
        const Arc& arc = mg.arc(in);
        int src_round = k - arc.tokens;
        if (src_round < 0) {
          // The needed token is part of the initial marking: available at 0.
          continue;
        }
        at = std::max(at, fire[arc.from.value()][src_round] + arc.delay);
      }
      fire[t][k] = at;
    }
  }
  return fire;
}

}  // namespace desyn::pn
