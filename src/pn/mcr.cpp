#include "pn/mcr.h"

#include <algorithm>
#include <cmath>

#include "pn/analysis.h"

namespace desyn::pn {

namespace {

/// Longest-path relaxation with weights (delay - lambda * tokens); returns
/// true if a positive cycle exists. When `cycle_out` is non-null and a
/// positive cycle is found, the arcs of one such cycle are stored there in
/// cycle order (every cycle of the predecessor graph after n rounds of
/// relaxation is a positive cycle).
bool positive_cycle(const McrArcs& g, double lambda,
                    std::vector<ArcId>* cycle_out) {
  const uint32_t n = g.num_nodes;
  const uint32_t m = static_cast<uint32_t>(g.num_arcs());
  std::vector<double> dist(n, 0.0);
  std::vector<uint32_t> parent(n, UINT32_MAX);
  uint32_t changed_node = UINT32_MAX;
  for (uint32_t iter = 0; iter <= n; ++iter) {
    changed_node = UINT32_MAX;
    for (uint32_t a = 0; a < m; ++a) {
      double w = static_cast<double>(g.delay[a]) -
                 lambda * static_cast<double>(g.tokens[a]);
      double nd = dist[g.from[a]] + w;
      if (nd > dist[g.to[a]] + 1e-9) {
        dist[g.to[a]] = nd;
        parent[g.to[a]] = a;
        changed_node = g.to[a];
      }
    }
    if (changed_node == UINT32_MAX) return false;  // converged: no cycle
  }
  if (cycle_out) {
    // Walk parents n steps to land inside a predecessor-graph cycle, then
    // collect its arcs.
    uint32_t v = changed_node;
    for (uint32_t i = 0; i < n && parent[v] != UINT32_MAX; ++i) {
      v = g.from[parent[v]];
    }
    cycle_out->clear();
    uint32_t u = v;
    do {
      uint32_t a = parent[u];
      if (a == UINT32_MAX) break;  // defensive; cycle nodes all have parents
      cycle_out->push_back(ArcId(a));
      u = g.from[a];
    } while (u != v && cycle_out->size() <= n);
    std::reverse(cycle_out->begin(), cycle_out->end());
  }
  return true;
}

/// Rotate so the cycle starts at its smallest transition id (canonical,
/// deterministic output) and fill in the transition list.
void set_cycle(const McrArcs& g, std::vector<ArcId> arcs,
               CycleRatioResult* res) {
  if (!arcs.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < arcs.size(); ++i) {
      if (g.from[arcs[i].value()] < g.from[arcs[best].value()]) best = i;
    }
    std::rotate(arcs.begin(), arcs.begin() + static_cast<ptrdiff_t>(best),
                arcs.end());
  }
  res->cycle.clear();
  for (ArcId a : arcs) res->cycle.push_back(TransId(g.from[a.value()]));
  res->cycle_arcs = std::move(arcs);
}

/// Reference solver on the flat view; max_cycle_ratio_reference wraps it
/// (node/arc indices of a flattened MarkedGraph coincide with its ids).
CycleRatioResult reference_flat(const McrArcs& g) {
  CycleRatioResult res;
  std::vector<ArcId> arcs;
  if (!positive_cycle(g, 0.0, nullptr)) {
    // All cycles have zero total delay (or there are none). Any cycle is
    // critical; at lambda = -1 every cycle has weight D + T >= 1 > 0, so
    // detection finds one iff one exists.
    res.ratio = 0.0;
    if (positive_cycle(g, -1.0, &arcs)) set_cycle(g, std::move(arcs), &res);
    return res;
  }
  double lo = 0.0, hi = 1.0;
  for (size_t a = 0; a < g.num_arcs(); ++a) {
    hi += static_cast<double>(g.delay[a]);
  }
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    if (positive_cycle(g, mid, nullptr)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Extraction: probe just below the answer, then climb by exact cycle
  // ratios. Each extracted predecessor-graph cycle is positive at the probe
  // lambda but not necessarily critical; adopting its exact D/T and
  // re-probing strictly above it terminates (finitely many cycle ratios)
  // with a genuinely critical cycle.
  double probe = std::max(0.0, lo * (1.0 - 1e-9) - 1e-9);
  if (!positive_cycle(g, probe, &arcs)) {
    bool found = positive_cycle(g, 0.0, &arcs);
    DESYN_ASSERT(found);
  }
  double r = cycle_ratio(g, arcs);
  for (;;) {
    std::vector<ArcId> better;
    if (!positive_cycle(g, r + 1e-9 * (1.0 + r), &better)) break;
    double r2 = cycle_ratio(g, better);
    if (!(r2 > r)) break;
    r = r2;
    arcs = std::move(better);
  }
  res.ratio = r;
  set_cycle(g, std::move(arcs), &res);
  return res;
}

constexpr double kEpsRatio = 1e-9;
constexpr double kEpsPotential = 1e-7;
constexpr uint32_t kNoArc = UINT32_MAX;

}  // namespace

McrFlat flatten(const MarkedGraph& mg) {
  McrFlat f;
  f.num_nodes = static_cast<uint32_t>(mg.num_transitions());
  const uint32_t m = static_cast<uint32_t>(mg.num_arcs());
  f.from.reserve(m);
  f.to.reserve(m);
  f.tokens.reserve(m);
  f.delay.reserve(m);
  for (uint32_t a = 0; a < m; ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    f.from.push_back(arc.from.value());
    f.to.push_back(arc.to.value());
    f.tokens.push_back(arc.tokens);
    f.delay.push_back(arc.delay);
  }
  return f;
}

double cycle_ratio(const McrArcs& g, std::span<const ArcId> arcs) {
  DESYN_ASSERT(!arcs.empty(), "cycle_ratio needs a non-empty cycle");
  Ps delay = 0;
  int64_t tokens = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    uint32_t a = arcs[i].value();
    uint32_t next = arcs[(i + 1) % arcs.size()].value();
    DESYN_ASSERT(g.to[a] == g.from[next],
                 "arcs do not chain into a closed cycle");
    delay += g.delay[a];
    tokens += g.tokens[a];
  }
  DESYN_ASSERT(tokens > 0, "cycle carries no token (dead marked graph?)");
  return static_cast<double>(delay) / static_cast<double>(tokens);
}

double cycle_ratio(const MarkedGraph& mg, std::span<const ArcId> arcs) {
  DESYN_ASSERT(!arcs.empty(), "cycle_ratio needs a non-empty cycle");
  Ps delay = 0;
  int64_t tokens = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = mg.arc(arcs[i]);
    const Arc& next = mg.arc(arcs[(i + 1) % arcs.size()]);
    DESYN_ASSERT(a.to == next.from, "arcs do not chain into a closed cycle");
    delay += a.delay;
    tokens += a.tokens;
  }
  DESYN_ASSERT(tokens > 0, "cycle carries no token (dead marked graph?)");
  return static_cast<double>(delay) / static_cast<double>(tokens);
}

// ---------------------------------------------------------------------------
// McrContext: Howard's policy iteration on the flat view, warm-startable
// ---------------------------------------------------------------------------

CycleRatioResult McrContext::run(const McrArcs& g,
                                 std::span<const uint32_t> node_map,
                                 McrScratch& s, bool* warmed) const {
  const uint32_t n = g.num_nodes;
  const uint32_t m = static_cast<uint32_t>(g.num_arcs());
  *warmed = false;
  DESYN_ASSERT(g.to.size() == m && g.tokens.size() == m && g.delay.size() == m);

  // ---- out-arc CSR (for Tarjan), arc ids ascending per node -------------
  s.out_off_.assign(n + 1, 0);
  for (uint32_t a = 0; a < m; ++a) ++s.out_off_[g.from[a] + 1];
  for (uint32_t v = 0; v < n; ++v) s.out_off_[v + 1] += s.out_off_[v];
  s.out_arc_.resize(m);
  s.csr_off_.assign(s.out_off_.begin(), s.out_off_.end());  // cursor reuse
  for (uint32_t a = 0; a < m; ++a) s.out_arc_[s.csr_off_[g.from[a]]++] = a;

  // ---- iterative Tarjan (large fabrics would overflow the call stack) ---
  s.comp_.assign(n, -1);
  s.index_.assign(n, UINT32_MAX);
  s.low_.assign(n, 0);
  s.on_stack_.assign(n, 0);
  s.stack_.clear();
  struct Frame {
    uint32_t v;
    uint32_t next_out;
  };
  std::vector<Frame> work;
  uint32_t next_index = 0;
  int comps = 0;
  for (uint32_t root = 0; root < n; ++root) {
    if (s.index_[root] != UINT32_MAX) continue;
    work.push_back({root, 0});
    while (!work.empty()) {
      uint32_t v = work.back().v;
      if (work.back().next_out == 0) {
        s.index_[v] = s.low_[v] = next_index++;
        s.stack_.push_back(v);
        s.on_stack_[v] = 1;
      }
      bool descended = false;
      while (s.out_off_[v] + work.back().next_out < s.out_off_[v + 1]) {
        uint32_t w = g.to[s.out_arc_[s.out_off_[v] + work.back().next_out]];
        ++work.back().next_out;
        if (s.index_[w] == UINT32_MAX) {
          work.push_back({w, 0});
          descended = true;
          break;
        }
        if (s.on_stack_[w]) s.low_[v] = std::min(s.low_[v], s.index_[w]);
      }
      if (descended) continue;
      if (s.low_[v] == s.index_[v]) {
        for (;;) {
          uint32_t w = s.stack_.back();
          s.stack_.pop_back();
          s.on_stack_[w] = 0;
          s.comp_[w] = comps;
          if (w == v) break;
        }
        ++comps;
      }
      work.pop_back();
      if (!work.empty()) {
        s.low_[work.back().v] = std::min(s.low_[work.back().v], s.low_[v]);
      }
    }
  }

  // ---- intra-SCC out-arc CSR (policy candidates), arc ids ascending -----
  s.csr_off_.assign(n + 1, 0);
  for (uint32_t a = 0; a < m; ++a) {
    if (s.comp_[g.from[a]] == s.comp_[g.to[a]]) ++s.csr_off_[g.from[a] + 1];
  }
  for (uint32_t v = 0; v < n; ++v) s.csr_off_[v + 1] += s.csr_off_[v];
  s.csr_arc_.resize(s.csr_off_[n]);
  s.index_.assign(s.csr_off_.begin(), s.csr_off_.end() - 1);  // cursor reuse
  for (uint32_t a = 0; a < m; ++a) {
    if (s.comp_[g.from[a]] == s.comp_[g.to[a]]) {
      s.csr_arc_[s.index_[g.from[a]]++] = a;
    }
  }

  // ---- members grouped by component, node ids ascending within ----------
  s.comp_off_.assign(static_cast<size_t>(comps) + 1, 0);
  for (uint32_t v = 0; v < n; ++v) ++s.comp_off_[static_cast<size_t>(s.comp_[v]) + 1];
  for (int c = 0; c < comps; ++c) s.comp_off_[static_cast<size_t>(c) + 1] += s.comp_off_[static_cast<size_t>(c)];
  s.members_.resize(n);
  s.low_.assign(s.comp_off_.begin(), s.comp_off_.end() - 1);  // cursor reuse
  for (uint32_t v = 0; v < n; ++v) {
    s.members_[s.low_[static_cast<size_t>(s.comp_[v])]++] = v;
  }

  // ---- policy initialization: cold default, then inherited baseline -----
  s.policy_.assign(n, kNoArc);
  s.r_.assign(n, 0.0);
  s.d_.assign(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    if (s.csr_off_[v] < s.csr_off_[v + 1]) {
      s.policy_[v] = s.csr_arc_[s.csr_off_[v]];
    }
  }
  // state_ doubles as "node already inherited a policy" during init.
  s.state_.assign(n, 0);
  if (!node_map.empty() && base_nodes_ > 0 &&
      node_map.size() == base_nodes_) {
    // Map the baseline policy through the delta. The arc list is shared
    // across the delta (endpoints re-pointed in place), so a policy arc is
    // inherited iff it still leaves its mapped node and stays inside the
    // node's strongly-connected component. When several baseline nodes map
    // to one node (a merge), the one whose baseline cycle ratio is larger
    // wins — it was the binding constraint — ties to the smaller node id.
    for (uint32_t u = 0; u < base_nodes_; ++u) {
      uint32_t v = node_map[u];
      if (v >= n) continue;
      uint32_t a = base_policy_[u];
      if (a == kNoArc || a >= m) continue;
      if (g.from[a] != v) continue;
      if (s.comp_[g.from[a]] != s.comp_[g.to[a]]) continue;
      if (s.state_[v] && !(base_r_[u] > s.r_[v])) continue;
      s.policy_[v] = a;
      s.r_[v] = base_r_[u];
      s.state_[v] = 1;
      *warmed = true;
    }
  }

  // ---- Howard per component ---------------------------------------------
  double best = -1.0;
  std::vector<uint32_t> best_arcs;
  s.howard_converged_ = true;
  for (int c = 0; c < comps; ++c) {
    const uint32_t mb = s.comp_off_[static_cast<size_t>(c)];
    const uint32_t me = s.comp_off_[static_cast<size_t>(c) + 1];
    // Singleton components without a self-loop contain no cycle.
    if (me - mb == 1 && s.policy_[s.members_[mb]] == kNoArc) continue;
    for (uint32_t i = mb; i < me; ++i) {
      DESYN_ASSERT(s.policy_[s.members_[i]] != kNoArc,
                   "SCC node without an intra-component out-arc");
    }
    // Howard converges in a handful of iterations in practice; the cap is
    // a safety net against epsilon-induced policy cycling.
    const int cap = 64 + 4 * static_cast<int>(me - mb);
    double comp_best = -1.0;
    size_t comp_best_off = 0, comp_best_len = 0;
    bool converged = false;
    for (int iter = 0; iter < cap; ++iter) {
      // -- evaluate: score the policy graph, track its best cycle --------
      comp_best = -1.0;
      comp_best_len = 0;
      for (uint32_t i = mb; i < me; ++i) s.state_[s.members_[i]] = 0;
      s.cycle_.clear();
      for (uint32_t i = mb; i < me; ++i) {
        uint32_t v0 = s.members_[i];
        if (s.state_[v0] != 0) continue;
        s.path_.clear();
        uint32_t u = v0;
        while (s.state_[u] == 0) {
          s.state_[u] = 1;
          s.path_.push_back(u);
          u = g.to[s.policy_[u]];
        }
        size_t start = s.path_.size();  // first index of the new cycle
        if (s.state_[u] == 1) {
          // Found a fresh policy cycle beginning at u; score it.
          while (start > 0 && s.path_[start - 1] != u) --start;
          --start;
          double dsum = 0.0, tsum = 0.0;
          for (size_t k = start; k < s.path_.size(); ++k) {
            uint32_t a = s.policy_[s.path_[k]];
            dsum += static_cast<double>(g.delay[a]);
            tsum += static_cast<double>(g.tokens[a]);
          }
          DESYN_ASSERT(tsum > 0, "token-free cycle in a live marked graph");
          double rc = dsum / tsum;
          if (rc > comp_best) {
            comp_best = rc;
            comp_best_off = s.cycle_.size();
            comp_best_len = s.path_.size() - start;
            for (size_t k = start; k < s.path_.size(); ++k) {
              s.cycle_.push_back(s.policy_[s.path_[k]]);
            }
          }
          // Anchor d at the cycle head and walk the cycle forward.
          double dv = 0.0;
          for (size_t k = start; k < s.path_.size(); ++k) {
            uint32_t w = s.path_[k];
            uint32_t a = s.policy_[w];
            s.r_[w] = rc;
            s.d_[w] = dv;
            dv -= static_cast<double>(g.delay[a]) -
                  rc * static_cast<double>(g.tokens[a]);
          }
        }
        // Nodes draining into the cycle (or into an already-evaluated
        // region) inherit ratio and accumulate potential, tail first.
        for (size_t k = start; k-- > 0;) {
          uint32_t w = s.path_[k];
          uint32_t a = s.policy_[w];
          uint32_t succ = g.to[a];
          s.r_[w] = s.r_[succ];
          s.d_[w] = static_cast<double>(g.delay[a]) -
                    s.r_[w] * static_cast<double>(g.tokens[a]) + s.d_[succ];
        }
        for (uint32_t w : s.path_) s.state_[w] = 2;
      }
      // -- improve: better cycle ratio first, then better potential ------
      bool improved = false;
      for (uint32_t i = mb; i < me; ++i) {
        uint32_t v = s.members_[i];
        double br = s.r_[v];
        uint32_t ba = s.policy_[v];
        for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
          uint32_t a = s.csr_arc_[k];
          if (s.r_[g.to[a]] > br + kEpsRatio) {
            br = s.r_[g.to[a]];
            ba = a;
          }
        }
        if (ba != s.policy_[v]) {
          s.policy_[v] = ba;
          improved = true;
        }
      }
      if (!improved) {
        for (uint32_t i = mb; i < me; ++i) {
          uint32_t v = s.members_[i];
          double bd = s.d_[v];
          uint32_t ba = s.policy_[v];
          for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
            uint32_t a = s.csr_arc_[k];
            uint32_t w = g.to[a];
            if (s.r_[w] + kEpsRatio < s.r_[v]) continue;
            double val = s.d_[w] + static_cast<double>(g.delay[a]) -
                         s.r_[v] * static_cast<double>(g.tokens[a]);
            if (val > bd + kEpsPotential) {
              bd = val;
              ba = a;
            }
          }
          if (ba != s.policy_[v]) {
            s.policy_[v] = ba;
            improved = true;
          }
        }
      }
      if (!improved) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      // Epsilon-induced policy cycling (never observed in practice): hand
      // the whole graph to the independent reference solver.
      s.howard_converged_ = false;
      return reference_flat(g);
    }
    if (comp_best > best) {
      best = comp_best;
      best_arcs.assign(
          s.cycle_.begin() + static_cast<ptrdiff_t>(comp_best_off),
          s.cycle_.begin() +
              static_cast<ptrdiff_t>(comp_best_off + comp_best_len));
    }
  }

  CycleRatioResult res;
  if (best_arcs.empty()) {
    res.ratio = 0.0;  // acyclic graph: nothing bounds the throughput
    return res;
  }
  std::vector<ArcId> arcs;
  arcs.reserve(best_arcs.size());
  for (uint32_t a : best_arcs) arcs.push_back(ArcId(a));
  res.ratio = cycle_ratio(g, arcs);  // exact D/T of the critical cycle
  set_cycle(g, std::move(arcs), &res);
  return res;
}

void McrContext::adopt(const McrArcs& g) {
  if (!scratch_.howard_converged_) {
    base_nodes_ = 0;  // fell back to the reference solver: no baseline
    return;
  }
  base_nodes_ = g.num_nodes;
  base_policy_ = scratch_.policy_;
  base_r_ = scratch_.r_;
  base_d_ = scratch_.d_;
}

CycleRatioResult McrContext::solve(const McrArcs& g) {
  bool warmed = false;
  CycleRatioResult res = run(g, {}, scratch_, &warmed);
  ++cold_solves_;
  adopt(g);
  return res;
}

CycleRatioResult McrContext::resolve(const McrArcs& g,
                                     std::span<const uint32_t> node_map) {
  bool warmed = false;
  CycleRatioResult res = run(g, node_map, scratch_, &warmed);
  if (warmed) {
    ++warm_solves_;
  } else {
    ++cold_solves_;
  }
  adopt(g);
  return res;
}

CycleRatioResult McrContext::probe(const McrArcs& g,
                                   std::span<const uint32_t> node_map,
                                   McrScratch& scratch) const {
  bool warmed = false;
  return run(g, node_map, scratch, &warmed);
}

void McrContext::export_solution(const McrScratch& scratch,
                                 uint32_t num_nodes, Solution* out) {
  DESYN_ASSERT(out != nullptr);
  out->valid = scratch.howard_converged_;
  if (!out->valid) return;
  out->num_nodes = num_nodes;
  out->policy = scratch.policy_;
  out->r = scratch.r_;
  out->d = scratch.d_;
}

void McrContext::adopt_solution(Solution sol) {
  if (!sol.valid) {
    base_nodes_ = 0;
    return;
  }
  base_nodes_ = sol.num_nodes;
  base_policy_ = std::move(sol.policy);
  base_r_ = std::move(sol.r);
  base_d_ = std::move(sol.d);
}

void McrContext::remap_baseline_arcs(std::span<const uint32_t> arc_map) {
  for (uint32_t& a : base_policy_) {
    if (a == kNoArc) continue;
    a = a < arc_map.size() ? arc_map[a] : kNoArc;
  }
}

// ---------------------------------------------------------------------------
// MarkedGraph entry points
// ---------------------------------------------------------------------------

CycleRatioResult max_cycle_ratio(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg), "max_cycle_ratio requires a live marked graph");
  McrFlat flat = flatten(mg);
  McrContext ctx;
  return ctx.solve(flat.view());
}

CycleRatioResult max_cycle_ratio_reference(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg),
               "max_cycle_ratio_reference requires a live marked graph");
  McrFlat flat = flatten(mg);
  return reference_flat(flat.view());
}

std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds) {
  DESYN_ASSERT(rounds > 0);
  DESYN_ASSERT(is_live(mg), "earliest_schedule requires liveness");
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());

  // Topological order of the zero-token subgraph (acyclic by liveness):
  // within one round, a transition may depend on same-round firings only
  // through token-free arcs.
  std::vector<uint32_t> indeg(n, 0);
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    if (arc.tokens == 0) ++indeg[arc.to.value()];
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (indeg[t] == 0) order.push_back(t);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (ArcId out : mg.transition(TransId(order[i])).out) {
      const Arc& arc = mg.arc(out);
      if (arc.tokens == 0 && --indeg[arc.to.value()] == 0) {
        order.push_back(arc.to.value());
      }
    }
  }
  DESYN_ASSERT(order.size() == n);

  std::vector<std::vector<Ps>> fire(n, std::vector<Ps>(rounds, 0));
  for (int k = 0; k < rounds; ++k) {
    for (uint32_t t : order) {
      Ps at = 0;
      for (ArcId in : mg.transition(TransId(t)).in) {
        const Arc& arc = mg.arc(in);
        int src_round = k - arc.tokens;
        if (src_round < 0) {
          // The needed token is part of the initial marking: available at 0.
          continue;
        }
        at = std::max(at, fire[arc.from.value()][src_round] + arc.delay);
      }
      fire[t][k] = at;
    }
  }
  return fire;
}

}  // namespace desyn::pn
