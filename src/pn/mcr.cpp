#include "pn/mcr.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "base/cancel.h"
#include "pn/analysis.h"

namespace desyn::pn {

namespace {

/// Longest-path relaxation with weights (delay - lambda * tokens); returns
/// true if a positive cycle exists. When `cycle_out` is non-null and a
/// positive cycle is found, the arcs of one such cycle are stored there in
/// cycle order (every cycle of the predecessor graph after n rounds of
/// relaxation is a positive cycle).
bool positive_cycle(const McrArcs& g, double lambda,
                    std::vector<ArcId>* cycle_out) {
  const uint32_t n = g.num_nodes;
  const uint32_t m = static_cast<uint32_t>(g.num_arcs());
  std::vector<double> dist(n, 0.0);
  std::vector<uint32_t> parent(n, UINT32_MAX);
  uint32_t changed_node = UINT32_MAX;
  for (uint32_t iter = 0; iter <= n; ++iter) {
    changed_node = UINT32_MAX;
    for (uint32_t a = 0; a < m; ++a) {
      double w = static_cast<double>(g.delay[a]) -
                 lambda * static_cast<double>(g.tokens[a]);
      double nd = dist[g.from[a]] + w;
      if (nd > dist[g.to[a]] + 1e-9) {
        dist[g.to[a]] = nd;
        parent[g.to[a]] = a;
        changed_node = g.to[a];
      }
    }
    if (changed_node == UINT32_MAX) return false;  // converged: no cycle
  }
  if (cycle_out) {
    // Walk parents n steps to land inside a predecessor-graph cycle, then
    // collect its arcs.
    uint32_t v = changed_node;
    for (uint32_t i = 0; i < n && parent[v] != UINT32_MAX; ++i) {
      v = g.from[parent[v]];
    }
    cycle_out->clear();
    uint32_t u = v;
    do {
      uint32_t a = parent[u];
      if (a == UINT32_MAX) break;  // defensive; cycle nodes all have parents
      cycle_out->push_back(ArcId(a));
      u = g.from[a];
    } while (u != v && cycle_out->size() <= n);
    std::reverse(cycle_out->begin(), cycle_out->end());
  }
  return true;
}

/// Rotate so the cycle starts at its smallest transition id (canonical,
/// deterministic output) and fill in the transition list.
void set_cycle(const McrArcs& g, std::vector<ArcId> arcs,
               CycleRatioResult* res) {
  if (!arcs.empty()) {
    size_t best = 0;
    for (size_t i = 1; i < arcs.size(); ++i) {
      if (g.from[arcs[i].value()] < g.from[arcs[best].value()]) best = i;
    }
    std::rotate(arcs.begin(), arcs.begin() + static_cast<ptrdiff_t>(best),
                arcs.end());
  }
  res->cycle.clear();
  for (ArcId a : arcs) res->cycle.push_back(TransId(g.from[a.value()]));
  res->cycle_arcs = std::move(arcs);
}

/// Reference solver on the flat view; max_cycle_ratio_reference wraps it
/// (node/arc indices of a flattened MarkedGraph coincide with its ids).
CycleRatioResult reference_flat(const McrArcs& g) {
  CycleRatioResult res;
  std::vector<ArcId> arcs;
  if (!positive_cycle(g, 0.0, nullptr)) {
    // All cycles have zero total delay (or there are none). Any cycle is
    // critical; at lambda = -1 every cycle has weight D + T >= 1 > 0, so
    // detection finds one iff one exists.
    res.ratio = 0.0;
    if (positive_cycle(g, -1.0, &arcs)) set_cycle(g, std::move(arcs), &res);
    return res;
  }
  double lo = 0.0, hi = 1.0;
  for (size_t a = 0; a < g.num_arcs(); ++a) {
    hi += static_cast<double>(g.delay[a]);
  }
  for (int it = 0; it < 64; ++it) {
    double mid = 0.5 * (lo + hi);
    if (positive_cycle(g, mid, nullptr)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // Extraction: probe just below the answer, then climb by exact cycle
  // ratios. Each extracted predecessor-graph cycle is positive at the probe
  // lambda but not necessarily critical; adopting its exact D/T and
  // re-probing strictly above it terminates (finitely many cycle ratios)
  // with a genuinely critical cycle.
  double probe = std::max(0.0, lo * (1.0 - 1e-9) - 1e-9);
  if (!positive_cycle(g, probe, &arcs)) {
    bool found = positive_cycle(g, 0.0, &arcs);
    DESYN_ASSERT(found);
  }
  double r = cycle_ratio(g, arcs);
  for (;;) {
    std::vector<ArcId> better;
    if (!positive_cycle(g, r + 1e-9 * (1.0 + r), &better)) break;
    double r2 = cycle_ratio(g, better);
    if (!(r2 > r)) break;
    r = r2;
    arcs = std::move(better);
  }
  res.ratio = r;
  set_cycle(g, std::move(arcs), &res);
  return res;
}

constexpr double kEpsRatio = 1e-9;
constexpr double kEpsPotential = 1e-7;
// Caps for the Gauss-Seidel fast path (attempt 0 of McrScratch::howard).
// kMaxImproveSweeps bounds the inner sweeps per improve phase: one forward
// plus one backward sweep delivers most of the propagation win, and every
// further full-graph sweep chases a handful of trailing flips that the next
// evaluate+improve round picks up anyway (measured: 2 beats both 1 and
// larger caps on the mesh control graphs). kGsIterCap bounds the outer GS
// iterations: a converging GS run finishes in well under 32, so anything
// longer is the self-referential-propagation cycle described at the attempt
// loop and should restart as plain Jacobi instead of burning the full
// component cap.
constexpr int kMaxImproveSweeps = 2;
constexpr int kGsIterCap = 32;
// Pop budget of the certificate-repair worklist in McrBatch::solve_all, as
// a multiple of the node count. Warm potentials from the previous sample
// settle after roughly one node's worth of pops plus local cascades; a
// relaxation that keeps popping has a cycle with ratio above the candidate
// lambda (d rises around it forever) and must fall back to a full Howard
// solve.
constexpr size_t kCertPopFactor = 8;
constexpr uint32_t kNoArc = UINT32_MAX;

}  // namespace

McrFlat flatten(const MarkedGraph& mg) {
  McrFlat f;
  f.num_nodes = static_cast<uint32_t>(mg.num_transitions());
  const uint32_t m = static_cast<uint32_t>(mg.num_arcs());
  f.from.reserve(m);
  f.to.reserve(m);
  f.tokens.reserve(m);
  f.delay.reserve(m);
  for (uint32_t a = 0; a < m; ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    f.from.push_back(arc.from.value());
    f.to.push_back(arc.to.value());
    f.tokens.push_back(arc.tokens);
    f.delay.push_back(arc.delay);
  }
  return f;
}

double cycle_ratio(const McrArcs& g, std::span<const ArcId> arcs) {
  DESYN_ASSERT(!arcs.empty(), "cycle_ratio needs a non-empty cycle");
  Ps delay = 0;
  int64_t tokens = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    uint32_t a = arcs[i].value();
    uint32_t next = arcs[(i + 1) % arcs.size()].value();
    DESYN_ASSERT(g.to[a] == g.from[next],
                 "arcs do not chain into a closed cycle");
    delay += g.delay[a];
    tokens += g.tokens[a];
  }
  DESYN_ASSERT(tokens > 0, "cycle carries no token (dead marked graph?)");
  return static_cast<double>(delay) / static_cast<double>(tokens);
}

double cycle_ratio(const MarkedGraph& mg, std::span<const ArcId> arcs) {
  DESYN_ASSERT(!arcs.empty(), "cycle_ratio needs a non-empty cycle");
  Ps delay = 0;
  int64_t tokens = 0;
  for (size_t i = 0; i < arcs.size(); ++i) {
    const Arc& a = mg.arc(arcs[i]);
    const Arc& next = mg.arc(arcs[(i + 1) % arcs.size()]);
    DESYN_ASSERT(a.to == next.from, "arcs do not chain into a closed cycle");
    delay += a.delay;
    tokens += a.tokens;
  }
  DESYN_ASSERT(tokens > 0, "cycle carries no token (dead marked graph?)");
  return static_cast<double>(delay) / static_cast<double>(tokens);
}

// ---------------------------------------------------------------------------
// McrScratch: the delay-independent and per-solve phases of a Howard solve
// ---------------------------------------------------------------------------

int McrScratch::build_structure(const McrArcs& g) {
  McrScratch& s = *this;
  const uint32_t n = g.num_nodes;
  const uint32_t m = static_cast<uint32_t>(g.num_arcs());

  // ---- out-arc CSR (for Tarjan), arc ids ascending per node -------------
  s.out_off_.assign(n + 1, 0);
  for (uint32_t a = 0; a < m; ++a) ++s.out_off_[g.from[a] + 1];
  for (uint32_t v = 0; v < n; ++v) s.out_off_[v + 1] += s.out_off_[v];
  s.out_arc_.resize(m);
  s.csr_off_.assign(s.out_off_.begin(), s.out_off_.end());  // cursor reuse
  for (uint32_t a = 0; a < m; ++a) s.out_arc_[s.csr_off_[g.from[a]]++] = a;

  // ---- iterative Tarjan (large fabrics would overflow the call stack) ---
  s.comp_.assign(n, -1);
  s.index_.assign(n, UINT32_MAX);
  s.low_.assign(n, 0);
  s.on_stack_.assign(n, 0);
  s.stack_.clear();
  struct Frame {
    uint32_t v;
    uint32_t next_out;
  };
  std::vector<Frame> work;
  uint32_t next_index = 0;
  int comps = 0;
  for (uint32_t root = 0; root < n; ++root) {
    if (s.index_[root] != UINT32_MAX) continue;
    work.push_back({root, 0});
    while (!work.empty()) {
      uint32_t v = work.back().v;
      if (work.back().next_out == 0) {
        s.index_[v] = s.low_[v] = next_index++;
        s.stack_.push_back(v);
        s.on_stack_[v] = 1;
      }
      bool descended = false;
      while (s.out_off_[v] + work.back().next_out < s.out_off_[v + 1]) {
        uint32_t w = g.to[s.out_arc_[s.out_off_[v] + work.back().next_out]];
        ++work.back().next_out;
        if (s.index_[w] == UINT32_MAX) {
          work.push_back({w, 0});
          descended = true;
          break;
        }
        if (s.on_stack_[w]) s.low_[v] = std::min(s.low_[v], s.index_[w]);
      }
      if (descended) continue;
      if (s.low_[v] == s.index_[v]) {
        for (;;) {
          uint32_t w = s.stack_.back();
          s.stack_.pop_back();
          s.on_stack_[w] = 0;
          s.comp_[w] = comps;
          if (w == v) break;
        }
        ++comps;
      }
      work.pop_back();
      if (!work.empty()) {
        s.low_[work.back().v] = std::min(s.low_[work.back().v], s.low_[v]);
      }
    }
  }

  // ---- intra-SCC out-arc CSR (policy candidates), arc ids ascending -----
  s.csr_off_.assign(n + 1, 0);
  for (uint32_t a = 0; a < m; ++a) {
    if (s.comp_[g.from[a]] == s.comp_[g.to[a]]) ++s.csr_off_[g.from[a] + 1];
  }
  for (uint32_t v = 0; v < n; ++v) s.csr_off_[v + 1] += s.csr_off_[v];
  s.csr_arc_.resize(s.csr_off_[n]);
  s.index_.assign(s.csr_off_.begin(), s.csr_off_.end() - 1);  // cursor reuse
  for (uint32_t a = 0; a < m; ++a) {
    if (s.comp_[g.from[a]] == s.comp_[g.to[a]]) {
      s.csr_arc_[s.index_[g.from[a]]++] = a;
    }
  }

  // ---- members grouped by component, node ids ascending within ----------
  s.comp_off_.assign(static_cast<size_t>(comps) + 1, 0);
  for (uint32_t v = 0; v < n; ++v) ++s.comp_off_[static_cast<size_t>(s.comp_[v]) + 1];
  for (int c = 0; c < comps; ++c) s.comp_off_[static_cast<size_t>(c) + 1] += s.comp_off_[static_cast<size_t>(c)];
  s.members_.resize(n);
  s.low_.assign(s.comp_off_.begin(), s.comp_off_.end() - 1);  // cursor reuse
  for (uint32_t v = 0; v < n; ++v) {
    s.members_[s.low_[static_cast<size_t>(s.comp_[v])]++] = v;
  }
  return comps;
}

void McrScratch::init_policy_cold(const McrArcs& g) {
  McrScratch& s = *this;
  const uint32_t n = g.num_nodes;
  s.policy_.assign(n, kNoArc);
  s.r_.assign(n, 0.0);
  s.d_.assign(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    if (s.csr_off_[v] < s.csr_off_[v + 1]) {
      s.policy_[v] = s.csr_arc_[s.csr_off_[v]];
    }
  }
  // state_ doubles as "node already inherited a policy" during a warm
  // init (McrContext::run); Howard itself resets it per component.
  s.state_.assign(n, 0);
}

CycleRatioResult McrScratch::howard(const McrArcs& g, int comps) {
  McrScratch& s = *this;
  DESYN_ASSERT(g.to.size() == g.from.size() &&
               g.tokens.size() == g.from.size() &&
               g.delay.size() == g.from.size());

  // ---- Howard per component ---------------------------------------------
  double best = -1.0;
  std::vector<uint32_t> best_arcs;
  s.howard_converged_ = true;
  for (int c = 0; c < comps; ++c) {
    const uint32_t mb = s.comp_off_[static_cast<size_t>(c)];
    const uint32_t me = s.comp_off_[static_cast<size_t>(c) + 1];
    // Singleton components without a self-loop contain no cycle.
    if (me - mb == 1 && s.policy_[s.members_[mb]] == kNoArc) continue;
    for (uint32_t i = mb; i < me; ++i) {
      DESYN_ASSERT(s.policy_[s.members_[i]] != kNoArc,
                   "SCC node without an intra-component out-arc");
    }
    // Howard converges in a handful of iterations in practice; the cap is
    // a safety net against epsilon-induced policy cycling.
    const int cap = 64 + 4 * static_cast<int>(me - mb);
    double comp_best = -1.0;
    size_t comp_best_off = 0, comp_best_len = 0;
    bool converged = false;
    for (int attempt = 0; attempt < 2 && !converged; ++attempt) {
    // Attempt 0 accelerates improvement with Gauss-Seidel sweeps (immediate
    // value updates, alternating direction). GS collapses the improvement
    // chains that plain Jacobi resolves one hop per evaluate, but mutual
    // r-propagation can occasionally close a self-referential policy cycle
    // whose true ratio is below the propagated values — evaluate then
    // lowers r and the flips repeat. Attempt 1 therefore restarts the
    // component cold and runs the plain Jacobi improvement (one
    // un-propagated pass per phase), which has converged on every graph
    // seen in practice; the reference solver remains the last resort.
    const bool gs = attempt == 0;
    const int acap = gs ? kGsIterCap : cap;
    if (attempt == 1) {
      for (uint32_t i = mb; i < me; ++i) {
        uint32_t v = s.members_[i];
        s.policy_[v] =
            s.csr_off_[v] < s.csr_off_[v + 1] ? s.csr_arc_[s.csr_off_[v]]
                                              : kNoArc;
        s.r_[v] = 0.0;
        s.d_[v] = 0.0;
      }
    }
    for (int iter = 0; iter < acap; ++iter) {
      // Deadline/cancel probe: policy iteration is the only unbounded-ish
      // loop in the flow's hot path, so a tripped request token must be
      // able to abort a solve mid-component.
      cancel_point();
      // -- evaluate: score the policy graph, track its best cycle --------
      comp_best = -1.0;
      comp_best_len = 0;
      for (uint32_t i = mb; i < me; ++i) s.state_[s.members_[i]] = 0;
      s.cycle_.clear();
      for (uint32_t i = mb; i < me; ++i) {
        uint32_t v0 = s.members_[i];
        if (s.state_[v0] != 0) continue;
        s.path_.clear();
        uint32_t u = v0;
        while (s.state_[u] == 0) {
          s.state_[u] = 1;
          s.path_.push_back(u);
          u = g.to[s.policy_[u]];
        }
        size_t start = s.path_.size();  // first index of the new cycle
        if (s.state_[u] == 1) {
          // Found a fresh policy cycle beginning at u; score it.
          while (start > 0 && s.path_[start - 1] != u) --start;
          --start;
          double dsum = 0.0, tsum = 0.0;
          for (size_t k = start; k < s.path_.size(); ++k) {
            uint32_t a = s.policy_[s.path_[k]];
            dsum += static_cast<double>(g.delay[a]);
            tsum += static_cast<double>(g.tokens[a]);
          }
          DESYN_ASSERT(tsum > 0, "token-free cycle in a live marked graph");
          double rc = dsum / tsum;
          if (rc > comp_best) {
            comp_best = rc;
            comp_best_off = s.cycle_.size();
            comp_best_len = s.path_.size() - start;
            for (size_t k = start; k < s.path_.size(); ++k) {
              s.cycle_.push_back(s.policy_[s.path_[k]]);
            }
          }
          // Anchor d at the cycle head and walk the cycle forward.
          double dv = 0.0;
          for (size_t k = start; k < s.path_.size(); ++k) {
            uint32_t w = s.path_[k];
            uint32_t a = s.policy_[w];
            s.r_[w] = rc;
            s.d_[w] = dv;
            dv -= static_cast<double>(g.delay[a]) -
                  rc * static_cast<double>(g.tokens[a]);
          }
        }
        // Nodes draining into the cycle (or into an already-evaluated
        // region) inherit ratio and accumulate potential, tail first.
        for (size_t k = start; k-- > 0;) {
          uint32_t w = s.path_[k];
          uint32_t a = s.policy_[w];
          uint32_t succ = g.to[a];
          s.r_[w] = s.r_[succ];
          s.d_[w] = static_cast<double>(g.delay[a]) -
                    s.r_[w] * static_cast<double>(g.tokens[a]) + s.d_[succ];
        }
        for (uint32_t w : s.path_) s.state_[w] = 2;
      }
      // -- improve: better cycle ratio first, then better potential.
      // Convergence is judged on evaluated values either way: an iteration
      // whose first ratio sweep and first potential sweep flip nothing is
      // converged (with one sweep and no value writes, the gs = false body
      // is exactly the classic Jacobi improvement pass).
      bool improved = false;
      for (int sweep = 0; sweep < (gs ? kMaxImproveSweeps : 1); ++sweep) {
        bool any = false;
        const bool fwd = (sweep % 2) == 0;
        for (uint32_t step = 0; step < me - mb; ++step) {
          uint32_t v = s.members_[fwd ? mb + step : me - 1 - step];
          double br = s.r_[v];
          uint32_t ba = s.policy_[v];
          for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
            uint32_t a = s.csr_arc_[k];
            if (s.r_[g.to[a]] > br + kEpsRatio) {
              br = s.r_[g.to[a]];
              ba = a;
            }
          }
          if (ba != s.policy_[v]) {
            s.policy_[v] = ba;
            if (gs) s.r_[v] = br;
            any = true;
            improved = true;
          }
        }
        if (!any) break;
      }
      if (!improved) {
        for (int sweep = 0; sweep < (gs ? kMaxImproveSweeps : 1); ++sweep) {
          bool any = false;
          const bool fwd = (sweep % 2) == 0;
          for (uint32_t step = 0; step < me - mb; ++step) {
            uint32_t v = s.members_[fwd ? mb + step : me - 1 - step];
            double bd = s.d_[v];
            uint32_t ba = s.policy_[v];
            for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
              uint32_t a = s.csr_arc_[k];
              uint32_t w = g.to[a];
              if (s.r_[w] + kEpsRatio < s.r_[v]) continue;
              double val = s.d_[w] + static_cast<double>(g.delay[a]) -
                           s.r_[v] * static_cast<double>(g.tokens[a]);
              if (val > bd + kEpsPotential) {
                bd = val;
                ba = a;
              }
            }
            if (ba != s.policy_[v]) {
              s.policy_[v] = ba;
              if (gs) s.d_[v] = bd;
              any = true;
              improved = true;
            }
          }
          if (!any) break;
        }
      }
      if (!improved) {
        converged = true;
        break;
      }
    }
    }
    if (!converged) {
      // Epsilon-induced policy cycling survived even a component-local
      // cold restart (never observed in practice): hand the whole graph to
      // the independent reference solver.
      s.howard_converged_ = false;
      return reference_flat(g);
    }
    if (comp_best > best) {
      best = comp_best;
      best_arcs.assign(
          s.cycle_.begin() + static_cast<ptrdiff_t>(comp_best_off),
          s.cycle_.begin() +
              static_cast<ptrdiff_t>(comp_best_off + comp_best_len));
    }
  }

  CycleRatioResult res;
  if (best_arcs.empty()) {
    res.ratio = 0.0;  // acyclic graph: nothing bounds the throughput
    return res;
  }
  std::vector<ArcId> arcs;
  arcs.reserve(best_arcs.size());
  for (uint32_t a : best_arcs) arcs.push_back(ArcId(a));
  res.ratio = cycle_ratio(g, arcs);  // exact D/T of the critical cycle
  set_cycle(g, std::move(arcs), &res);
  return res;
}

// ---------------------------------------------------------------------------
// McrContext: Howard's policy iteration on the flat view, warm-startable
// ---------------------------------------------------------------------------

CycleRatioResult McrContext::run(const McrArcs& g,
                                 std::span<const uint32_t> node_map,
                                 McrScratch& s, bool* warmed) const {
  const uint32_t n = g.num_nodes;
  const uint32_t m = static_cast<uint32_t>(g.num_arcs());
  *warmed = false;
  DESYN_ASSERT(g.to.size() == m && g.tokens.size() == m && g.delay.size() == m);

  const int comps = s.build_structure(g);

  // ---- policy initialization: cold default, then inherited baseline -----
  s.init_policy_cold(g);
  if (!node_map.empty() && base_nodes_ > 0 &&
      node_map.size() == base_nodes_) {
    // Map the baseline policy through the delta. The arc list is shared
    // across the delta (endpoints re-pointed in place), so a policy arc is
    // inherited iff it still leaves its mapped node and stays inside the
    // node's strongly-connected component. When several baseline nodes map
    // to one node (a merge), the one whose baseline cycle ratio is larger
    // wins — it was the binding constraint — ties to the smaller node id.
    for (uint32_t u = 0; u < base_nodes_; ++u) {
      uint32_t v = node_map[u];
      if (v >= n) continue;
      uint32_t a = base_policy_[u];
      if (a == kNoArc || a >= m) continue;
      if (g.from[a] != v) continue;
      if (s.comp_[g.from[a]] != s.comp_[g.to[a]]) continue;
      if (s.state_[v] && !(base_r_[u] > s.r_[v])) continue;
      s.policy_[v] = a;
      s.r_[v] = base_r_[u];
      s.state_[v] = 1;
      *warmed = true;
    }
  }

  return s.howard(g, comps);
}

void McrContext::adopt(const McrArcs& g) {
  if (!scratch_.howard_converged_) {
    base_nodes_ = 0;  // fell back to the reference solver: no baseline
    return;
  }
  base_nodes_ = g.num_nodes;
  base_policy_ = scratch_.policy_;
  base_r_ = scratch_.r_;
  base_d_ = scratch_.d_;
}

CycleRatioResult McrContext::solve(const McrArcs& g) {
  bool warmed = false;
  CycleRatioResult res = run(g, {}, scratch_, &warmed);
  ++cold_solves_;
  adopt(g);
  return res;
}

CycleRatioResult McrContext::resolve(const McrArcs& g,
                                     std::span<const uint32_t> node_map) {
  bool warmed = false;
  CycleRatioResult res = run(g, node_map, scratch_, &warmed);
  if (warmed) {
    ++warm_solves_;
  } else {
    ++cold_solves_;
  }
  adopt(g);
  return res;
}

CycleRatioResult McrContext::probe(const McrArcs& g,
                                   std::span<const uint32_t> node_map,
                                   McrScratch& scratch) const {
  bool warmed = false;
  return run(g, node_map, scratch, &warmed);
}

void McrContext::export_solution(const McrScratch& scratch,
                                 uint32_t num_nodes, Solution* out) {
  DESYN_ASSERT(out != nullptr);
  out->valid = scratch.howard_converged_;
  if (!out->valid) return;
  out->num_nodes = num_nodes;
  out->policy = scratch.policy_;
  out->r = scratch.r_;
  out->d = scratch.d_;
}

void McrContext::adopt_solution(Solution sol) {
  if (!sol.valid) {
    base_nodes_ = 0;
    return;
  }
  base_nodes_ = sol.num_nodes;
  base_policy_ = std::move(sol.policy);
  base_r_ = std::move(sol.r);
  base_d_ = std::move(sol.d);
}

void McrContext::remap_baseline_arcs(std::span<const uint32_t> arc_map) {
  for (uint32_t& a : base_policy_) {
    if (a == kNoArc) continue;
    a = a < arc_map.size() ? arc_map[a] : kNoArc;
  }
}

// ---------------------------------------------------------------------------
// McrBatch: structure-shared batch solves for Monte-Carlo sweeps
// ---------------------------------------------------------------------------

McrBatch::McrBatch(const McrArcs& g)
    : num_nodes_(g.num_nodes),
      from_(g.from.begin(), g.from.end()),
      to_(g.to.begin(), g.to.end()),
      tokens_(g.tokens.begin(), g.tokens.end()) {
  DESYN_ASSERT(g.to.size() == from_.size() &&
               g.tokens.size() == from_.size());
  comps_ = structure_.build_structure(row_view({}));

  // Predecessor index over the intra-SCC candidate arcs (certificate
  // worklist: raising d[v] can only violate arcs *into* v).
  const uint32_t n = num_nodes_;
  const McrScratch& s = structure_;
  pred_off_.assign(n + 1, 0);
  for (uint32_t v = 0; v < n; ++v) {
    for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
      ++pred_off_[to_[s.csr_arc_[k]] + 1];
    }
  }
  for (uint32_t v = 0; v < n; ++v) pred_off_[v + 1] += pred_off_[v];
  pred_arc_.resize(pred_off_[n]);
  {
    std::vector<uint32_t> fill(pred_off_.begin(), pred_off_.end() - 1);
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
        uint32_t a = s.csr_arc_[k];
        pred_arc_[fill[to_[a]]++] = a;
      }
    }
  }

  // Structural cycle dictionary: every self-loop and every mutual arc
  // pair. On handshake control graphs these local loops are the entire
  // population the per-sample critical cycle is drawn from (longer
  // critical cycles are learned per block via the Howard fallback).
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t k = s.csr_off_[u]; k < s.csr_off_[u + 1]; ++k) {
      uint32_t a = s.csr_arc_[k];
      uint32_t v = to_[a];
      if (v == u) {
        if (tokens_[a] > 0) seed_cycles_.push_back({ArcId(a)});
      } else if (v > u) {
        for (uint32_t j = s.csr_off_[v]; j < s.csr_off_[v + 1]; ++j) {
          uint32_t b = s.csr_arc_[j];
          if (to_[b] == u && tokens_[a] + tokens_[b] > 0) {
            seed_cycles_.push_back({ArcId(a), ArcId(b)});
          }
        }
      }
    }
  }
}

CycleRatioResult McrBatch::solve_one_cold(
    std::span<const Ps> delay_row) const {
  DESYN_ASSERT(delay_row.size() == num_arcs());
  McrContext ctx;
  return ctx.solve(row_view(delay_row));
}

std::vector<CycleRatioResult> McrBatch::solve_all(std::span<const Ps> delays,
                                                  size_t samples,
                                                  int jobs) const {
  const size_t m = num_arcs();
  DESYN_ASSERT(delays.size() == samples * m,
               "delay matrix must be samples x num_arcs, row-major");
  std::vector<CycleRatioResult> out(samples);
  if (samples == 0) return out;

  const size_t blocks = (samples + kBlock - 1) / kBlock;
  // Per-block Monte-Carlo state for the certificate fast path. Adjacent
  // samples perturb the same nominal delays, so the critical cycle is drawn
  // from a tiny per-block dictionary (every cycle a full solve of this
  // block ever returned), and a converged solve's potentials remain a
  // near-valid optimality certificate for the next sample's delays.
  //
  // A sample is solved *without* Howard when (a) the best dictionary cycle
  // under its delays — an exact integer D/T comparison — yields lambda, and
  // (b) relaxing the inherited potentials settles every intra-SCC candidate
  // arc into d[v] >= d[w] + delay(a) - lambda * tokens(a) - eps, the exact
  // inequality Howard's own convergence establishes. Summing it around any
  // cycle bounds every cycle ratio by lambda + len * eps / T; with integer
  // picosecond delays and small token sums, distinct cycle ratios are
  // separated by far more than that slack, so the certificate pins the same
  // ratio a cold solve returns, bit for bit (property-tested). A sample
  // whose relaxation does not settle — a new critical cycle makes it
  // diverge — falls back to a full warm Howard solve, which then grows the
  // dictionary and refreshes the potentials.
  struct BlockState {
    std::vector<std::vector<ArcId>> learned;  // cycles beyond the seeds
    std::vector<double> dcert;                // certificate potentials
    std::vector<uint32_t> queue;              // relaxation worklist (FIFO)
    std::vector<uint8_t> in_queue;
    bool have_cert = false;
  };
  auto remember = [&](BlockState& bs, const CycleRatioResult& r) {
    if (r.cycle_arcs.empty()) return;
    for (const auto& c : seed_cycles_) {
      if (c == r.cycle_arcs) return;
    }
    for (const auto& c : bs.learned) {
      if (c == r.cycle_arcs) return;
    }
    bs.learned.push_back(r.cycle_arcs);
  };
  // Exact argmax over the dictionary under this row's delays: compare
  // D1/T1 vs D2/T2 by integer cross-multiplication (delays are integer Ps,
  // token sums are tiny — no overflow at any realistic model size).
  auto best_cycle = [&](const BlockState& bs, const McrArcs& g) {
    const std::vector<ArcId>* best = nullptr;
    int64_t bd = -1, bt = 1;
    auto consider = [&](const std::vector<ArcId>& cyc) {
      int64_t d = 0, t = 0;
      for (ArcId a : cyc) {
        d += static_cast<int64_t>(g.delay[a.value()]);
        t += static_cast<int64_t>(g.tokens[a.value()]);
      }
      if (d * bt > bd * t) {
        best = &cyc;
        bd = d;
        bt = t;
      }
    };
    for (const auto& c : seed_cycles_) consider(c);
    for (const auto& c : bs.learned) consider(c);
    return best;
  };
  // Worklist relaxation: raise d until every intra-SCC candidate arc
  // satisfies the certificate inequality, or give up once the pop budget
  // signals divergence (a cycle with ratio above lambda raises d around
  // itself forever). Deterministic: sequential FIFO seeded in node order.
  auto certify = [&](const McrScratch& s, BlockState& bs, const McrArcs& g,
                     double lambda) {
    const uint32_t n = num_nodes_;
    auto& d = bs.dcert;
    auto& q = bs.queue;
    q.clear();
    bs.in_queue.assign(n, 0);
    for (uint32_t i = n; i-- > 0;) {
      const uint32_t v = i;
      if (s.csr_off_[v] < s.csr_off_[v + 1]) {
        q.push_back(v);
        bs.in_queue[v] = 1;
      }
    }
    const size_t budget = kCertPopFactor * static_cast<size_t>(n) + 64;
    size_t head = 0;
    while (head < q.size()) {
      if (head > budget) return false;
      const uint32_t v = q[head++];
      bs.in_queue[v] = 0;
      double dv = d[v];
      bool raised = false;
      for (uint32_t k = s.csr_off_[v]; k < s.csr_off_[v + 1]; ++k) {
        const uint32_t a = s.csr_arc_[k];
        const double val = d[g.to[a]] + static_cast<double>(g.delay[a]) -
                           lambda * static_cast<double>(g.tokens[a]);
        if (val > dv + kEpsPotential) {
          dv = val;
          raised = true;
        }
      }
      if (raised) {
        d[v] = dv;
        for (uint32_t k = pred_off_[v]; k < pred_off_[v + 1]; ++k) {
          const uint32_t x = from_[pred_arc_[k]];
          if (!bs.in_queue[x]) {
            bs.in_queue[x] = 1;
            q.push_back(x);
          }
        }
      }
    }
    return true;
  };
  auto run_block = [&](McrScratch& s, size_t b) {
    const size_t lo = b * kBlock;
    const size_t hi = std::min(samples, lo + kBlock);
    BlockState bs;
    bool cold = true;  // block starts are cold: blocks stay independent
    for (size_t i = lo; i < hi; ++i) {
      McrArcs g = row_view(delays.subspan(i * m, m));
      if (!cold && bs.have_cert) {
        const std::vector<ArcId>* cyc = best_cycle(bs, g);
        if (cyc) {
          const double lambda = cycle_ratio(g, *cyc);
          if (certify(s, bs, g, lambda)) {
            out[i].ratio = lambda;
            set_cycle(g, *cyc, &out[i]);
            continue;
          }
        }
      }
      if (cold) s.init_policy_cold(g);
      cold = false;
      out[i] = s.howard(g, comps_);
      if (!s.howard_converged_) {
        // howard() already handed the row to the reference solver; the
        // cycling policy converged nowhere worth inheriting, so restart
        // the warm chain (and the certificate state) at the next sample.
        cold = true;
        bs.have_cert = false;
      } else {
        remember(bs, out[i]);
        // The converged potentials certify this solve's per-component
        // ratios; with the global lambda only larger on token-bearing
        // arcs, they remain a valid starting certificate.
        bs.dcert = s.d_;
        bs.have_cert = true;
      }
    }
  };

  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(jobs, 1)), blocks));
  if (workers <= 1) {
    McrScratch s = structure_;
    for (size_t b = 0; b < blocks; ++b) run_block(s, b);
    return out;
  }
  // Workers claim whole blocks; every block's solves depend only on data
  // inside the block and results land at fixed sample indices, so the
  // output is byte-identical at any worker count.
  //
  // The caller's cancel token (a thread-local) is re-installed inside each
  // worker so a request deadline also aborts batch solves; a throw inside a
  // worker is parked and rethrown on the caller after the join, because an
  // exception escaping a std::thread body is std::terminate.
  const CancelToken* cancel = current_cancel();
  std::atomic<size_t> next{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      CancelScope scope(cancel);
      McrScratch s = structure_;  // shared structure, private solve state
      try {
        for (size_t b = next.fetch_add(1);
             b < blocks && !aborted.load(std::memory_order_relaxed);
             b = next.fetch_add(1)) {
          run_block(s, b);
        }
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  return out;
}

// ---------------------------------------------------------------------------
// MarkedGraph entry points
// ---------------------------------------------------------------------------

CycleRatioResult max_cycle_ratio(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg), "max_cycle_ratio requires a live marked graph");
  McrFlat flat = flatten(mg);
  McrContext ctx;
  return ctx.solve(flat.view());
}

CycleRatioResult max_cycle_ratio_reference(const MarkedGraph& mg) {
  DESYN_ASSERT(is_live(mg),
               "max_cycle_ratio_reference requires a live marked graph");
  McrFlat flat = flatten(mg);
  return reference_flat(flat.view());
}

std::vector<std::vector<Ps>> earliest_schedule(const MarkedGraph& mg,
                                               int rounds) {
  DESYN_ASSERT(rounds > 0);
  DESYN_ASSERT(is_live(mg), "earliest_schedule requires liveness");
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());

  // Topological order of the zero-token subgraph (acyclic by liveness):
  // within one round, a transition may depend on same-round firings only
  // through token-free arcs.
  std::vector<uint32_t> indeg(n, 0);
  for (uint32_t a = 0; a < mg.num_arcs(); ++a) {
    const Arc& arc = mg.arc(ArcId(a));
    if (arc.tokens == 0) ++indeg[arc.to.value()];
  }
  std::vector<uint32_t> order;
  order.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (indeg[t] == 0) order.push_back(t);
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (ArcId out : mg.transition(TransId(order[i])).out) {
      const Arc& arc = mg.arc(out);
      if (arc.tokens == 0 && --indeg[arc.to.value()] == 0) {
        order.push_back(arc.to.value());
      }
    }
  }
  DESYN_ASSERT(order.size() == n);

  std::vector<std::vector<Ps>> fire(n, std::vector<Ps>(rounds, 0));
  for (int k = 0; k < rounds; ++k) {
    for (uint32_t t : order) {
      Ps at = 0;
      for (ArcId in : mg.transition(TransId(t)).in) {
        const Arc& arc = mg.arc(in);
        int src_round = k - arc.tokens;
        if (src_round < 0) {
          // The needed token is part of the initial marking: available at 0.
          continue;
        }
        at = std::max(at, fire[arc.from.value()][src_round] + arc.delay);
      }
      fire[t][k] = at;
    }
  }
  return fire;
}

}  // namespace desyn::pn
