#include "pn/analysis.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <queue>

namespace desyn::pn {

namespace {

/// DFS cycle detection over the subgraph of arcs satisfying `use_arc`.
bool has_cycle(const MarkedGraph& mg,
               const std::function<bool(const Arc&)>& use_arc) {
  enum class Color : uint8_t { White, Grey, Black };
  std::vector<Color> color(mg.num_transitions(), Color::White);
  std::vector<std::pair<uint32_t, size_t>> stack;  // (transition, next out idx)
  for (uint32_t s = 0; s < mg.num_transitions(); ++s) {
    if (color[s] != Color::White) continue;
    stack.push_back({s, 0});
    color[s] = Color::Grey;
    while (!stack.empty()) {
      auto& [t, idx] = stack.back();
      const auto& outs = mg.transition(TransId(t)).out;
      bool descended = false;
      while (idx < outs.size()) {
        const Arc& a = mg.arc(outs[idx]);
        ++idx;
        if (!use_arc(a)) continue;
        uint32_t v = a.to.value();
        if (color[v] == Color::Grey) return true;
        if (color[v] == Color::White) {
          color[v] = Color::Grey;
          stack.push_back({v, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[t] = Color::Black;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

bool is_live(const MarkedGraph& mg) {
  return !has_cycle(mg, [](const Arc& a) { return a.tokens == 0; });
}

int place_bound(const MarkedGraph& mg, ArcId a) {
  // Min-token path from head(a) back to tail(a); plus a's own tokens.
  const Arc& target = mg.arc(a);
  const uint32_t n = static_cast<uint32_t>(mg.num_transitions());
  constexpr int kInf = std::numeric_limits<int>::max() / 2;
  std::vector<int> dist(n, kInf);
  using Item = std::pair<int, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[target.to.value()] = 0;
  pq.push({0, target.to.value()});
  while (!pq.empty()) {
    auto [d, t] = pq.top();
    pq.pop();
    if (d > dist[t]) continue;
    for (ArcId out : mg.transition(TransId(t)).out) {
      const Arc& arc = mg.arc(out);
      int nd = d + arc.tokens;
      if (nd < dist[arc.to.value()]) {
        dist[arc.to.value()] = nd;
        pq.push({nd, arc.to.value()});
      }
    }
  }
  if (dist[target.from.value()] >= kInf) return -1;
  return dist[target.from.value()] + target.tokens;
}

bool is_safe(const MarkedGraph& mg) {
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    int b = place_bound(mg, ArcId(i));
    if (b != 1) return false;
  }
  return true;
}

ReachResult explore(const MarkedGraph& mg, uint64_t max_states) {
  ReachResult res;
  std::map<Marking, bool> seen;
  std::queue<Marking> frontier;
  Marking m0 = mg.initial_marking();
  seen[m0] = true;
  frontier.push(m0);
  res.states = 1;
  for (int t : m0) res.max_tokens = std::max(res.max_tokens, t);
  while (!frontier.empty()) {
    Marking m = frontier.front();
    frontier.pop();
    for (TransId t : mg.enabled_set(m)) {
      Marking next = m;
      mg.fire(t, next);
      if (seen.emplace(next, true).second) {
        ++res.states;
        for (int tok : next) res.max_tokens = std::max(res.max_tokens, tok);
        if (res.states >= max_states) return res;  // complete stays false
        frontier.push(next);
      }
    }
  }
  res.complete = true;
  return res;
}

long admits_sequence(const MarkedGraph& mg, std::span<const TransId> seq) {
  Marking m = mg.initial_marking();
  for (size_t i = 0; i < seq.size(); ++i) {
    if (!mg.enabled(seq[i], m)) return static_cast<long>(i);
    mg.fire(seq[i], m);
  }
  return -1;
}

}  // namespace desyn::pn
