// Structural and behavioral analyses on marked graphs.
//
// Classical results used here (Commoner/Genrich/Murata):
//  * An MG is live iff every directed cycle carries at least one token —
//    equivalently, the subgraph of zero-token arcs is acyclic.
//  * In a live MG, the bound of a place equals the minimum token count over
//    the cycles through it; the MG is safe iff every such minimum is 1.
#pragma once

#include <span>

#include "pn/petri.h"

namespace desyn::pn {

/// Liveness: no token-free directed cycle.
bool is_live(const MarkedGraph& mg);

/// Token bound of the place on `a`: minimum initial token count over all
/// cycles through `a`. Returns -1 if `a` lies on no cycle (structurally
/// unbounded under repeated firing of its producer).
int place_bound(const MarkedGraph& mg, ArcId a);

/// Safety: every arc lies on a cycle and has bound 1. Requires liveness.
bool is_safe(const MarkedGraph& mg);

/// Explicit reachability (for small control graphs and conformance tests).
struct ReachResult {
  uint64_t states = 0;    ///< distinct markings found
  bool complete = false;  ///< false if max_states was hit
  int max_tokens = 0;     ///< max tokens observed on any single arc
};
ReachResult explore(const MarkedGraph& mg, uint64_t max_states = 1 << 20);

/// Replay validator: returns the index of the first transition in `seq`
/// that is not enabled when its turn comes (firing all previous ones), or
/// -1 if the entire sequence is admissible from the initial marking.
long admits_sequence(const MarkedGraph& mg, std::span<const TransId> seq);

}  // namespace desyn::pn
