// Marked graphs (a.k.a. event graphs): the concurrency model underlying
// de-synchronization. Every place has exactly one producer and one consumer
// transition, so places are represented directly as arcs with a token count
// and an optional delay annotation (used for timed analyses).
//
// The de-synchronization model of a netlist (paper Fig. 2) is a marked
// graph whose transitions are the rising (a+) and falling (a-) events of
// each latch-bank control signal; see ctl/protocol.h for its construction.
#pragma once

#include <string>
#include <vector>

#include "base/common.h"

namespace desyn::pn {

struct TransTag {};
struct ArcTag {};
using TransId = Id<TransTag>;
using ArcId = Id<ArcTag>;

struct Arc {
  TransId from;
  TransId to;
  int tokens = 0;  ///< initial marking of the place on this arc
  Ps delay = 0;    ///< time from producer firing to token availability
};

struct Transition {
  std::string name;
  std::vector<ArcId> in;
  std::vector<ArcId> out;
};

/// Marking: token count per arc (indexed by ArcId value).
using Marking = std::vector<int>;

class MarkedGraph {
 public:
  explicit MarkedGraph(std::string name = "mg") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  TransId add_transition(std::string name);
  ArcId add_arc(TransId from, TransId to, int tokens = 0, Ps delay = 0);

  size_t num_transitions() const { return trans_.size(); }
  size_t num_arcs() const { return arcs_.size(); }
  const Transition& transition(TransId t) const {
    DESYN_ASSERT(t.value() < trans_.size());
    return trans_[t.value()];
  }
  const Arc& arc(ArcId a) const {
    DESYN_ASSERT(a.value() < arcs_.size());
    return arcs_[a.value()];
  }
  /// Lookup by name; invalid id if absent.
  TransId find(std::string_view name) const;

  // ---- token game -----------------------------------------------------------

  Marking initial_marking() const;
  bool enabled(TransId t, const Marking& m) const;
  /// Fire `t` (must be enabled): consume one token per input arc, produce
  /// one per output arc.
  void fire(TransId t, Marking& m) const;
  /// All transitions enabled under `m`.
  std::vector<TransId> enabled_set(const Marking& m) const;

  /// Graphviz DOT; arcs annotated with tokens (bullet) and delays.
  std::string to_dot() const;

 private:
  std::string name_;
  std::vector<Transition> trans_;
  std::vector<Arc> arcs_;
};

}  // namespace desyn::pn
