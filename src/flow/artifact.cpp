#include "flow/artifact.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/common.h"
#include "base/fault.h"

namespace desyn::flow {

namespace fs = std::filesystem;

namespace {

// Distinguishes two threads of one process publishing under the same key:
// pid alone would collide on the tmp name and one writer would rename the
// other's half-written file into place.
std::atomic<uint64_t> g_tmp_seq{0};

// A tmp filename is "<entry>.art.tmp.<pid>[.<seq>]". Returns the writer
// pid, or -1 if the name does not parse.
long tmp_writer_pid(std::string_view name) {
  size_t pos = name.rfind(".art.tmp.");
  if (pos == std::string_view::npos) return -1;
  std::string_view rest = name.substr(pos + 9);
  size_t dot = rest.find('.');
  if (dot != std::string_view::npos) rest = rest.substr(0, dot);
  long pid = 0;
  auto [p, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), pid);
  if (ec != std::errc() || p != rest.data() + rest.size() || pid <= 0)
    return -1;
  return pid;
}

bool pid_alive(long pid) {
  // Signal 0 probes existence; EPERM means it exists under another uid.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

// "<kind>-<hex>.art" -> kind; empty when the name is not a store entry.
std::string entry_kind(std::string_view name) {
  if (name.size() < 5 || name.substr(name.size() - 4) != ".art") return {};
  std::string_view stem = name.substr(0, name.size() - 4);
  size_t dash = stem.rfind('-');
  if (dash == std::string_view::npos || dash == 0) return {};
  return std::string(stem.substr(0, dash));
}

}  // namespace

ArtifactStore::ArtifactStore(const Options& opt) : opt_(opt) {
  DESYN_ASSERT(opt_.capacity > 0);
  if (opt_.dir.empty()) return;
  std::error_code ec;
  fs::create_directories(opt_.dir, ec);
  if (ec) fail("cannot create cache dir ", opt_.dir, ": ", ec.message());
  // Heal the directory before trusting it: reap tmp files whose writer is
  // dead (a crashed put() mid-publish), and — unless disabled — verify
  // every entry so corruption surfaces as a counted discard now instead
  // of a latent miss later.
  CacheScan scan = scan_cache_dir(opt_.dir, opt_.scrub_on_open);
  for (const std::string& path : scan.tmp_orphan_paths) {
    if (fs::remove(path, ec)) ++stats_.tmp_reaped;
  }
  for (const std::string& path : scan.corrupt_paths) {
    if (fs::remove(path, ec)) ++stats_.disk_corrupt;
  }
}

std::string ArtifactStore::disk_path(std::string_view kind,
                                     const Hash256& key) const {
  return cat(opt_.dir, "/", kind, "-", key.hex(), ".art");
}

void ArtifactStore::insert_locked(std::string&& mapkey, Ptr value) {
  auto it = map_.find(mapkey);
  if (it != map_.end()) {
    // Benign double compute (or promotion race): keep the existing entry,
    // both values are identical by keying discipline.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({mapkey, std::move(value)});
  map_[std::move(mapkey)] = lru_.begin();
  while (lru_.size() > opt_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ArtifactStore::Ptr ArtifactStore::get(std::string_view kind,
                                      const Hash256& key,
                                      const Deserializer& des) {
  std::string mapkey = cat(kind, ":", key.hex());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(mapkey);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->value;
    }
  }
  if (!opt_.dir.empty() && des) {
    std::string path = disk_path(kind, key);
    std::string body;
    if (fs::exists(path)) {
      Ptr value;
      // Fault probes model an unreadable file and a digest mismatch; both
      // take the same recovery path as the real thing (discard, recompute).
      if (!fault::should_fail("artifact.disk.read") &&
          read_artifact_file(path, kind, &body) &&
          !fault::should_fail("artifact.disk.corrupt")) {
        try {
          value = des(body);
        } catch (const std::exception&) {
          value = nullptr;  // deserializer rejected the body
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (value) {
        ++stats_.disk_hits;
        insert_locked(std::move(mapkey), value);
        return value;
      }
      // Corrupt: discard, never trust. The caller recomputes and put()
      // rewrites a good entry.
      ++stats_.disk_corrupt;
      std::error_code ec;
      fs::remove(path, ec);
      ++stats_.misses;
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return nullptr;
}

void ArtifactStore::put(std::string_view kind, const Hash256& key, Ptr value,
                        const std::string& serialized) {
  DESYN_ASSERT(value != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(cat(kind, ":", key.hex()), std::move(value));
  }
  if (opt_.dir.empty() || serialized.empty()) return;
  // Atomic, durable publish: write a uniquely-named tmp file, fsync it,
  // then rename into place. The fsync must precede the rename — rename is
  // metadata-only on most filesystems, so without it a crash after the
  // rename can expose a complete-looking entry whose pages were never
  // written. A reader sees no file, a tmp it ignores, or a full entry.
  // Any failure (real or injected) abandons the publish; the memory tier
  // already holds the value, so the disk tier stays best-effort.
  std::string path = disk_path(kind, key);
  std::string tmp = cat(path, ".tmp.", ::getpid(), ".",
                        g_tmp_seq.fetch_add(1, std::memory_order_relaxed));
  std::string blob = with_integrity_header(kind, serialized);
  int fd = fault::should_fail("artifact.disk.write.open")
               ? -1
               : ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  bool ok = !fault::should_fail("artifact.disk.write.write");
  size_t off = 0;
  while (ok && off < blob.size()) {
    ssize_t w = ::write(fd, blob.data() + off, blob.size() - off);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      ok = false;
      break;
    }
    off += static_cast<size_t>(w);
  }
  if (ok)
    ok = !fault::should_fail("artifact.disk.write.fsync") && ::fsync(fd) == 0;
  ::close(fd);
  if (ok)
    ok = !fault::should_fail("artifact.disk.write.rename") &&
         ::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp.c_str());
    return;
  }
  // Best-effort directory fsync so the rename itself survives a crash.
  int dfd = ::open(opt_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void ArtifactStore::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

std::string with_integrity_header(std::string_view kind,
                                  const std::string& body) {
  return cat(kind, "-v1 ", sha256(body).hex(), "\n", body);
}

bool read_artifact_file(const std::string& path, std::string_view kind,
                        std::string* body) {
  body->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = std::move(ss).str();
  size_t nl = text.find('\n');
  if (nl == std::string::npos) return false;
  std::string header = text.substr(0, nl);
  std::string want_prefix = cat(kind, "-v1 ");
  if (!starts_with(header, want_prefix)) return false;
  std::string digest = header.substr(want_prefix.size());
  *body = text.substr(nl + 1);
  if (sha256(*body).hex() != digest) {
    body->clear();
    return false;
  }
  return true;
}

CacheScan scan_cache_dir(const std::string& dir, bool verify) {
  CacheScan scan;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) fail("cannot scan cache dir ", dir, ": ", ec.message());
  std::vector<std::string> names;
  for (const auto& de : it) {
    std::error_code fec;
    if (!de.is_regular_file(fec)) continue;
    names.push_back(de.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::string path = cat(dir, "/", name);
    if (name.find(".art.tmp.") != std::string::npos) {
      ++scan.tmp_total;
      long pid = tmp_writer_pid(name);
      if (pid > 0 && !pid_alive(pid)) {
        ++scan.tmp_orphans;
        scan.tmp_orphan_paths.push_back(path);
      }
      continue;
    }
    std::string kind = entry_kind(name);
    if (kind.empty()) continue;  // not a store file; leave it alone
    ++scan.entries;
    std::error_code fec;
    uintmax_t sz = fs::file_size(path, fec);
    if (!fec) scan.bytes += sz;
    ++scan.kinds[kind];
    if (verify) {
      std::string body;
      if (!read_artifact_file(path, kind, &body)) {
        ++scan.corrupt;
        scan.corrupt_paths.push_back(path);
      }
    }
  }
  return scan;
}

ScrubResult scrub_cache_dir(const std::string& dir) {
  CacheScan scan = scan_cache_dir(dir, /*verify=*/true);
  ScrubResult out;
  std::error_code ec;
  for (const std::string& path : scan.corrupt_paths)
    if (fs::remove(path, ec)) ++out.corrupt_removed;
  for (const std::string& path : scan.tmp_orphan_paths)
    if (fs::remove(path, ec)) ++out.tmp_removed;
  return out;
}

}  // namespace desyn::flow
