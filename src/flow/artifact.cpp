#include "flow/artifact.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/common.h"

namespace desyn::flow {

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(const Options& opt) : opt_(opt) {
  DESYN_ASSERT(opt_.capacity > 0);
  if (!opt_.dir.empty()) {
    std::error_code ec;
    fs::create_directories(opt_.dir, ec);
    if (ec) fail("cannot create cache dir ", opt_.dir, ": ", ec.message());
  }
}

std::string ArtifactStore::disk_path(std::string_view kind,
                                     const Hash256& key) const {
  return cat(opt_.dir, "/", kind, "-", key.hex(), ".art");
}

void ArtifactStore::insert_locked(std::string&& mapkey, Ptr value) {
  auto it = map_.find(mapkey);
  if (it != map_.end()) {
    // Benign double compute (or promotion race): keep the existing entry,
    // both values are identical by keying discipline.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({mapkey, std::move(value)});
  map_[std::move(mapkey)] = lru_.begin();
  while (lru_.size() > opt_.capacity) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ArtifactStore::Ptr ArtifactStore::get(std::string_view kind,
                                      const Hash256& key,
                                      const Deserializer& des) {
  std::string mapkey = cat(kind, ":", key.hex());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(mapkey);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      return it->second->value;
    }
  }
  if (!opt_.dir.empty() && des) {
    std::string path = disk_path(kind, key);
    std::string body;
    if (fs::exists(path)) {
      Ptr value;
      if (read_artifact_file(path, kind, &body)) {
        try {
          value = des(body);
        } catch (const std::exception&) {
          value = nullptr;  // deserializer rejected the body
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (value) {
        ++stats_.disk_hits;
        insert_locked(std::move(mapkey), value);
        return value;
      }
      // Corrupt: discard, never trust. The caller recomputes and put()
      // rewrites a good entry.
      ++stats_.disk_corrupt;
      std::error_code ec;
      fs::remove(path, ec);
      ++stats_.misses;
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return nullptr;
}

void ArtifactStore::put(std::string_view kind, const Hash256& key, Ptr value,
                        const std::string& serialized) {
  DESYN_ASSERT(value != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(cat(kind, ":", key.hex()), std::move(value));
  }
  if (opt_.dir.empty() || serialized.empty()) return;
  // Atomic publish: a reader sees either no file or a complete one.
  std::string path = disk_path(kind, key);
  std::string tmp = cat(path, ".tmp.", ::getpid());
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return;  // disk tier is best-effort; memory tier has it
    out << with_integrity_header(kind, serialized);
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void ArtifactStore::clear_memory() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

std::string with_integrity_header(std::string_view kind,
                                  const std::string& body) {
  return cat(kind, "-v1 ", sha256(body).hex(), "\n", body);
}

bool read_artifact_file(const std::string& path, std::string_view kind,
                        std::string* body) {
  body->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = std::move(ss).str();
  size_t nl = text.find('\n');
  if (nl == std::string::npos) return false;
  std::string header = text.substr(0, nl);
  std::string want_prefix = cat(kind, "-v1 ");
  if (!starts_with(header, want_prefix)) return false;
  std::string digest = header.substr(want_prefix.size());
  *body = text.substr(nl + 1);
  if (sha256(*body).hex() != digest) {
    body->clear();
    return false;
  }
  return true;
}

}  // namespace desyn::flow
