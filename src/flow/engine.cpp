#include "flow/engine.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <sstream>

#include "base/cancel.h"
#include "base/fault.h"
#include "check/check.h"
#include "core/adjacency.h"
#include "ctl/controller.h"
#include "netlist/writer.h"
#include "pn/mcr.h"

namespace desyn::flow {

// ---------------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------------

struct Engine::LatchArtifact : Artifact {
  nl::Netlist netlist;  ///< the latchified circuit (pre-controller)
  LatchifyResult lr;
  LatchArtifact(nl::Netlist n, LatchifyResult l)
      : netlist(std::move(n)), lr(std::move(l)) {}
};

struct Engine::AdjArtifact : Artifact {
  AdjacencyResult adj;
  Hash256 cg_hash;  ///< content hash of adj — the mcr stage's key input
  explicit AdjArtifact(AdjacencyResult a) : adj(std::move(a)) {}
};

struct Engine::SynthArtifact : Artifact {
  DesyncResult result;
  explicit SynthArtifact(DesyncResult r) : result(std::move(r)) {}
};

struct Engine::McrArtifact : Artifact {
  pn::McrFlat flat;     ///< the timed model, kept for the next warm start
  pn::McrContext ctx;   ///< converged Howard baseline
  double period = 0;    ///< the max-cycle-ratio prediction
};

namespace {

struct PartArtifact : Artifact {
  Partition partition;
  explicit PartArtifact(Partition p) : partition(std::move(p)) {}
};

struct OptArtifact : Artifact {
  PartitionOptResult result;
  explicit OptArtifact(PartitionOptResult r) : result(std::move(r)) {}
};

struct LintArtifact : Artifact {
  check::LintReport rep;
};

struct McAnalysisArtifact : Artifact {
  McReport rep;
};

struct ResultArtifact : Artifact {
  std::shared_ptr<const std::string> verilog;
  FlowStats stats;
};

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

Sha256& mix(Sha256& h, const Hash256& k) {
  return h.field(std::string_view(reinterpret_cast<const char*>(k.bytes.data()),
                                  k.bytes.size()));
}

/// Hash the per-bank margin overrides (DesyncOptions::margins) into a
/// stage key. They change the hardware, so every stage from adjacency on
/// must key on them — unlike opt_jobs/sim_jobs/mc jobs, which never do.
/// Deliberately *not* part of the partition key: the partitioner always
/// scores at the global margin (bank ids do not exist before the
/// clustering is fixed), so per-bank overrides cannot change its answer —
/// pinned by EngineTest.CacheKeySensitivity.
Sha256& hash_margins(Sha256& h, const std::vector<double>& margins) {
  h.field_u64(margins.size());
  for (double m : margins) h.field_f64(m);
  return h;
}

/// Hash of the storage-cell layout (id, name, kind, macro params) in id
/// order. The legacy partition strategies read exactly this, and a cached
/// Partition's member ids are valid in any netlist with the same census.
Hash256 census_hash(const nl::Netlist& nl) {
  Sha256 h;
  h.field("census-v1");
  for (nl::CellId c : nl.cells()) {
    const nl::CellData& cd = nl.cell(c);
    if (!cell::is_storage(cd.kind)) continue;
    h.field_u64(c.value());
    h.field(cd.name);
    h.field_u64(static_cast<uint64_t>(cd.kind));
    h.field_u64(cd.p0).field_u64(cd.p1);
  }
  return h.digest();
}

/// Content hash of an explicit partition (group names, ram flags, member
/// cell names — id independent; the census pins the ids separately).
Hash256 partition_content_hash(const Partition& p, const nl::Netlist& nl) {
  Sha256 h;
  h.field("part-v1");
  h.field_u64(p.num_groups());
  for (const PartitionGroup& g : p.groups()) {
    h.field(g.name).field_u64(g.ram ? 1 : 0).field_u64(g.cells.size());
    for (nl::CellId c : g.cells) h.field(nl.cell(c).name);
  }
  return h.digest();
}

Hash256 control_graph_hash(const AdjacencyResult& a) {
  Sha256 h;
  h.field("cg-v1");
  h.field_u64(a.cg.num_banks());
  for (size_t i = 0; i < a.cg.num_banks(); ++i) {
    const ctl::ControlGraph::Bank& b = a.cg.bank(static_cast<int>(i));
    h.field(b.name).field_u64(b.even ? 1 : 0);
  }
  h.field_i64(a.env_snk).field_i64(a.env_src);
  h.field_u64(a.cg.edges().size());
  for (const ctl::ControlGraph::Edge& e : a.cg.edges()) {
    h.field_i64(e.from).field_i64(e.to).field_i64(e.matched_delay);
  }
  return h.digest();
}

// A delay-only edit leaves controller synthesis byte-identical when every
// edge's quantized matched-delay chain is unchanged: synthesis sizes each
// chain to a per-group maximum of the monotone matched_delay_cells(), so
// per-edge quantized equality implies every aggregate chain length is equal
// and the synthesized cells (and their names) come out identical.
bool same_quantized_control(const AdjacencyResult& a, const AdjacencyResult& b,
                            const cell::Tech& tech) {
  if (a.env_snk != b.env_snk || a.env_src != b.env_src ||
      a.cg.num_banks() != b.cg.num_banks() ||
      a.cg.edges().size() != b.cg.edges().size()) {
    return false;
  }
  for (size_t i = 0; i < a.cg.num_banks(); ++i) {
    const ctl::ControlGraph::Bank& ba = a.cg.bank(static_cast<int>(i));
    const ctl::ControlGraph::Bank& bb = b.cg.bank(static_cast<int>(i));
    if (ba.name != bb.name || ba.even != bb.even) return false;
  }
  for (size_t i = 0; i < a.cg.edges().size(); ++i) {
    const ctl::ControlGraph::Edge& ea = a.cg.edges()[i];
    const ctl::ControlGraph::Edge& eb = b.cg.edges()[i];
    if (ea.from != eb.from || ea.to != eb.to) return false;
    if (ctl::matched_delay_cells(ea.matched_delay, tech) !=
        ctl::matched_delay_cells(eb.matched_delay, tech)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Structural diff — the gate of every ECO fast path
// ---------------------------------------------------------------------------

struct NetlistDiff {
  /// True when the netlists are structurally identical (same nets, cells,
  /// names, connectivity, payload shapes) and differ at most in per-cell
  /// fields: a pin-compatible kind, an init value, payload contents.
  bool structural_same = false;
  std::vector<nl::CellId> changed;  ///< the field-edited cells
};

NetlistDiff diff_netlists(const nl::Netlist& a, const nl::Netlist& b) {
  NetlistDiff d;
  if (a.name() != b.name() || a.num_nets() != b.num_nets() ||
      a.num_cells() != b.num_cells() ||
      a.num_live_cells() != b.num_live_cells() ||
      a.inputs() != b.inputs() || a.outputs() != b.outputs()) {
    return d;
  }
  for (uint32_t i = 0; i < a.num_nets(); ++i) {
    const nl::NetData& na = a.net(nl::NetId(i));
    const nl::NetData& nb = b.net(nl::NetId(i));
    if (na.name != nb.name || na.driver != nb.driver ||
        na.driver_pin != nb.driver_pin) {
      return d;
    }
  }
  for (uint32_t i = 0; i < a.num_cells(); ++i) {
    const nl::CellData& ca = a.cell(nl::CellId(i));
    const nl::CellData& cb = b.cell(nl::CellId(i));
    if (ca.name != cb.name || ca.dead != cb.dead || ca.ins != cb.ins ||
        ca.outs != cb.outs || ca.p0 != cb.p0 || ca.p1 != cb.p1 ||
        ca.group != cb.group) {
      return d;
    }
    if (ca.dead) continue;
    if ((ca.payload < 0) != (cb.payload < 0) ||
        (ca.payload >= 0 &&
         (ca.payload != cb.payload ||
          a.payload(ca.payload).size() != b.payload(cb.payload).size()))) {
      return d;  // payload shape is structure, contents are data
    }
    bool edited = false;
    if (ca.kind != cb.kind) {
      // Only pin-structure-preserving kind flips qualify as field edits.
      if (cell::num_inputs(cb.kind, static_cast<int>(ca.ins.size()), ca.p0,
                           ca.p1) != static_cast<int>(ca.ins.size()) ||
          cell::num_outputs(cb.kind, ca.p0, ca.p1) !=
              static_cast<int>(ca.outs.size())) {
        return d;
      }
      edited = true;
    }
    if (ca.init != cb.init) edited = true;
    if (ca.payload >= 0 && a.payload(ca.payload) != b.payload(cb.payload)) {
      edited = true;
    }
    if (edited) d.changed.push_back(nl::CellId(i));
  }
  d.structural_same = true;
  return d;
}

// ---------------------------------------------------------------------------
// Disk serialization (the kinds worth persisting)
// ---------------------------------------------------------------------------

std::string serialize_partition(const Partition& p, const nl::Netlist& nl) {
  // FF groups as member-name lines; RAM singletons are reconstructed by
  // from_groups(), and group naming is deterministic post-canonicalize,
  // so the round trip is exact for optimizer output.
  std::ostringstream os;
  size_t ff_groups = 0;
  for (const PartitionGroup& g : p.groups()) ff_groups += g.ram ? 0 : 1;
  os << "groups " << ff_groups << "\n";
  for (const PartitionGroup& g : p.groups()) {
    if (g.ram) continue;
    for (size_t i = 0; i < g.cells.size(); ++i) {
      os << (i ? " " : "") << nl.cell(g.cells[i]).name;
    }
    os << "\n";
  }
  return std::move(os).str();
}

Partition deserialize_partition(const std::string& body,
                                const nl::Netlist& nl) {
  std::istringstream is(body);
  std::string tag;
  size_t n = 0;
  if (!(is >> tag >> n) || tag != "groups") fail("partition artifact header");
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  std::vector<std::vector<nl::CellId>> groups;
  std::string line;
  while (groups.size() < n && std::getline(is, line)) {
    std::istringstream ls(line);
    std::vector<nl::CellId> group;
    std::string name;
    while (ls >> name) {
      nl::CellId c = nl.find_cell(name);
      if (!c.valid()) fail("partition artifact: unknown cell ", name);
      group.push_back(c);
    }
    if (group.empty()) fail("partition artifact: empty group line");
    groups.push_back(std::move(group));
  }
  if (groups.size() != n) fail("partition artifact: truncated");
  return Partition::from_groups(nl, std::move(groups));  // validates
}

std::string serialize_adjacency(const AdjacencyResult& a) {
  std::ostringstream os;
  os << "banks " << a.cg.num_banks() << " edges " << a.cg.edges().size()
     << " env " << a.env_snk << " " << a.env_src << "\n";
  for (size_t i = 0; i < a.cg.num_banks(); ++i) {
    const ctl::ControlGraph::Bank& b = a.cg.bank(static_cast<int>(i));
    os << (b.even ? "e " : "o ") << b.name << "\n";
  }
  for (const ctl::ControlGraph::Edge& e : a.cg.edges()) {
    os << e.from << " " << e.to << " " << e.matched_delay << "\n";
  }
  return std::move(os).str();
}

AdjacencyResult deserialize_adjacency(const std::string& body) {
  std::istringstream is(body);
  std::string t0, t1, t2;
  size_t banks = 0, edges = 0;
  AdjacencyResult a;
  if (!(is >> t0 >> banks >> t1 >> edges >> t2 >> a.env_snk >> a.env_src) ||
      t0 != "banks" || t1 != "edges" || t2 != "env") {
    fail("adjacency artifact header");
  }
  for (size_t i = 0; i < banks; ++i) {
    std::string parity, name;
    if (!(is >> parity >> name) || (parity != "e" && parity != "o")) {
      fail("adjacency artifact: bad bank line");
    }
    a.cg.add_bank(std::move(name), parity == "e");
  }
  for (size_t i = 0; i < edges; ++i) {
    int from = 0, to = 0;
    Ps delay = 0;
    if (!(is >> from >> to >> delay)) fail("adjacency artifact: bad edge");
    a.cg.add_edge(from, to, delay);
  }
  if (a.env_snk < 0 || a.env_src < 0 ||
      static_cast<size_t>(a.env_snk) >= banks ||
      static_cast<size_t>(a.env_src) >= banks) {
    fail("adjacency artifact: bad env pair");
  }
  a.cg.validate();
  return a;
}

std::string serialize_result(const ResultArtifact& r) {
  uint64_t period_bits = 0;
  static_assert(sizeof(period_bits) == sizeof(r.stats.predicted_period_ps));
  std::memcpy(&period_bits, &r.stats.predicted_period_ps, sizeof(period_bits));
  std::ostringstream os;
  os << "stats " << r.stats.banks << " " << r.stats.controller_cells << " "
     << r.stats.delay_cells << " " << r.stats.cells_in << " "
     << r.stats.cells_out << " " << period_bits << "\n"
     << *r.verilog;
  return std::move(os).str();
}

std::shared_ptr<ResultArtifact> deserialize_result(const std::string& body) {
  size_t eol = body.find('\n');
  if (eol == std::string::npos) fail("result artifact: no stats line");
  std::istringstream is(body.substr(0, eol));
  std::string tag;
  uint64_t period_bits = 0;
  auto r = std::make_shared<ResultArtifact>();
  if (!(is >> tag >> r->stats.banks >> r->stats.controller_cells >>
        r->stats.delay_cells >> r->stats.cells_in >> r->stats.cells_out >>
        period_bits) ||
      tag != "stats") {
    fail("result artifact: bad stats line");
  }
  std::memcpy(&r->stats.predicted_period_ps, &period_bits,
              sizeof(period_bits));
  r->verilog = std::make_shared<const std::string>(body.substr(eol + 1));
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const cell::Tech& tech, const EngineOptions& opt)
    : tech_(tech),
      store_(ArtifactStore::Options{opt.capacity, opt.cache_dir}) {}

Engine::~Engine() = default;

StageCounters Engine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ArtifactStore::Stats Engine::store_stats() const { return store_.stats(); }

Engine::Lineage Engine::lineage_snapshot(const Hash256& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lineage_.find(key);
  return it == lineage_.end() ? Lineage{} : it->second;
}

Engine& Engine::process(const cell::Tech& tech) {
  static std::mutex m;
  // Leaked on purpose: process-lifetime engines, usable from static
  // destructors of any translation unit.
  static auto* engines = new std::map<std::string, std::unique_ptr<Engine>>();
  std::lock_guard<std::mutex> lock(m);
  std::unique_ptr<Engine>& e = (*engines)[tech.name()];
  if (!e) e = std::make_unique<Engine>(tech);
  return *e;
}

Hash256 Engine::partition_key(const nl::Netlist& ff, nl::NetId clock,
                              const DesyncOptions& opt,
                              const Hash256& ff_hash) {
  Sha256 h;
  h.field("partition-v1").field(tech_.name());
  mix(h, census_hash(ff));
  using M = PartitionSpec::Mode;
  switch (opt.strategy.mode) {
    case M::Prefix:
      h.field("prefix").field_u64(
          static_cast<uint64_t>(opt.strategy.prefix_depth));
      break;
    case M::PerFlipFlop:
      h.field("perff");
      break;
    case M::Single:
      h.field("single");
      break;
    case M::Explicit:
      h.field("explicit");
      mix(h, partition_content_hash(*opt.strategy.partition, ff));
      break;
    case M::Auto:
      // The optimizer reads the whole netlist (timing!) and the knobs
      // that shape its search; the job-count knobs (opt_jobs, sim_jobs)
      // are excluded from every stage key: results are byte-identical at
      // any job count, so a submission re-run with different parallelism
      // must stay a pure cache hit.
      h.field("auto");
      mix(h, ff_hash);
      h.field(ff.net(clock).name);
      h.field_f64(opt.strategy.auto_budget).field_f64(opt.margin);
      h.field_u64(static_cast<uint64_t>(opt.protocol));
      break;
  }
  return h.digest();
}

std::shared_ptr<const PartitionOptResult> Engine::optimize(
    const nl::Netlist& ff, nl::NetId clock, const PartitionOptOptions& opt) {
  Sha256 h;
  h.field("optimize-v1").field(tech_.name());
  mix(h, census_hash(ff));
  mix(h, nl::content_hash(ff));
  h.field(ff.net(clock).name);
  h.field_f64(opt.period_budget).field_f64(opt.margin);
  h.field_u64(static_cast<uint64_t>(opt.protocol));
  h.field_u64(opt.seed).field_u64(opt.max_merges);
  h.field_u64(opt.refine ? 1 : 0);
  Hash256 key = h.digest();

  if (ArtifactStore::Ptr a = store_.get("optimize", key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.optimize_hits;
    auto oa = std::static_pointer_cast<const OptArtifact>(a);
    return {oa, &oa->result};
  }
  PartitionOptResult r = optimize_partition(ff, clock, tech_, opt);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.optimize_runs;
  }
  auto oa = std::make_shared<OptArtifact>(std::move(r));
  store_.put("optimize", key, oa);
  return {oa, &oa->result};
}

Engine::Stages Engine::run_stages(const nl::Netlist& ff, nl::NetId clock,
                                  const DesyncOptions& opt,
                                  const Hash256& ff_hash,
                                  const Hash256& part_key) {
  DESYN_ASSERT(opt.margin >= 1.0, "matched-delay margin must be >= 1");
  for (double m : opt.margins) {
    DESYN_ASSERT(m <= 0.0 || m >= 1.0,
                 "per-bank margins must be >= 1 (or <= 0 = unset)");
  }
  const std::string clock_name = ff.net(clock).name;

  // ---- partition stage ----------------------------------------------------
  const bool is_auto = opt.strategy.mode == PartitionSpec::Mode::Auto;
  std::shared_ptr<const PartArtifact> part;
  {
    ArtifactStore::Deserializer des;
    if (is_auto) {
      // Only Auto partitions earn a disk entry: the cheap strategies
      // recompute faster than a disk round trip, and only from_groups
      // output round-trips the naming exactly.
      des = [&ff](const std::string& body) -> ArtifactStore::Ptr {
        return std::make_shared<PartArtifact>(
            deserialize_partition(body, ff));
      };
    }
    ArtifactStore::Ptr a = store_.get("partition", part_key, des);
    if (a) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.partition_hits;
    } else {
      // Stage-boundary probes sit in the compute branch only: a cache hit
      // involves none of the machinery the probe models. Likewise the
      // cancel points — hits are too cheap to be worth aborting.
      fault::maybe_throw("engine.stage.partition");
      cancel_point();
      Partition p;
      if (is_auto) {
        PartitionOptOptions po;
        po.period_budget = opt.strategy.auto_budget;
        po.margin = opt.margin;
        po.protocol = opt.protocol;
        po.jobs = opt.opt_jobs;
        p = optimize(ff, clock, po)->partition;
      } else {
        p = make_partition(ff, clock, opt.strategy, tech_, opt.protocol,
                           opt.margin, opt.opt_jobs);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.partition_runs;
      }
      auto pa = std::make_shared<PartArtifact>(std::move(p));
      store_.put("partition", part_key, pa,
                 is_auto ? serialize_partition(pa->partition, ff)
                         : std::string());
      a = pa;
    }
    part = std::static_pointer_cast<const PartArtifact>(a);
  }

  // ---- latchify stage -----------------------------------------------------
  Hash256 latch_key;
  {
    Sha256 h;
    h.field("latchify-v1").field(tech_.name());
    mix(h, ff_hash);
    h.field(clock_name);
    mix(h, part_key);
    latch_key = h.digest();
  }
  std::shared_ptr<const LatchArtifact> latch;
  if (ArtifactStore::Ptr a = store_.get("latchify", latch_key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.latchify_hits;
    latch = std::static_pointer_cast<const LatchArtifact>(a);
  } else {
    fault::maybe_throw("engine.stage.latchify");
    cancel_point();
    nl::Netlist copy = ff;
    LatchifyResult lr = latchify(copy, clock, part->partition);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.latchify_runs;
    }
    auto la = std::make_shared<LatchArtifact>(std::move(copy), std::move(lr));
    store_.put("latchify", latch_key, la);
    latch = la;
  }
  // The cached latched netlist may be another (canonically equal)
  // representation of the submission: re-resolve the clock by name.
  nl::NetId lclock = latch->netlist.find_net(clock_name);
  DESYN_ASSERT(lclock.valid());

  // ---- lineage: the previous submission of this design coordinate --------
  Hash256 lineage_key;
  {
    Sha256 h;
    h.field("lineage-v1").field(tech_.name());
    h.field(ff.name()).field(clock_name);
    h.field(opt.strategy.label());
    if (opt.strategy.mode == PartitionSpec::Mode::Explicit) {
      mix(h, partition_content_hash(*opt.strategy.partition, ff));
    }
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    lineage_key = h.digest();
  }
  Lineage prev = lineage_snapshot(lineage_key);
  std::optional<NetlistDiff> diff;  // computed lazily, at most once
  auto diff_vs_prev = [&]() -> const NetlistDiff& {
    if (!diff) {
      if (prev.latch == latch) {
        diff = NetlistDiff{true, {}};  // same artifact: trivially identical
      } else {
        diff = diff_netlists(prev.latch->netlist, latch->netlist);
      }
    }
    return *diff;
  };

  // ---- adjacency stage ----------------------------------------------------
  Hash256 adj_key;
  {
    Sha256 h;
    h.field("adjacency-v1").field(tech_.name());
    mix(h, latch_key);
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    adj_key = h.digest();
  }
  std::shared_ptr<const AdjArtifact> adj;
  {
    ArtifactStore::Deserializer des =
        [](const std::string& body) -> ArtifactStore::Ptr {
      auto aa = std::make_shared<AdjArtifact>(deserialize_adjacency(body));
      aa->cg_hash = control_graph_hash(aa->adj);
      return aa;
    };
    if (ArtifactStore::Ptr a = store_.get("adjacency", adj_key, des)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.adjacency_hits;
      adj = std::static_pointer_cast<const AdjArtifact>(a);
    } else {
      fault::maybe_throw("engine.stage.adjacency");
      cancel_point();
      AdjacencyResult ar;
      if (prev.latch && prev.adj && diff_vs_prev().structural_same) {
        size_t retimed = 0;
        ar = extract_control_graph_eco(latch->netlist, latch->lr, lclock,
                                       tech_, Margins(opt.margin, opt.margins),
                                       opt.protocol, prev.adj->adj,
                                       diff_vs_prev().changed, &retimed);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.adjacency_eco;
        counters_.eco_banks_retimed += retimed;
      } else {
        ar = extract_control_graph(latch->netlist, latch->lr, lclock, tech_,
                                   Margins(opt.margin, opt.margins),
                                   opt.protocol);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.adjacency_runs;
      }
      auto aa = std::make_shared<AdjArtifact>(std::move(ar));
      aa->cg_hash = control_graph_hash(aa->adj);
      store_.put("adjacency", adj_key, aa, serialize_adjacency(aa->adj));
      adj = aa;
    }
  }

  // ---- synth stage --------------------------------------------------------
  Hash256 synth_key;
  {
    Sha256 h;
    h.field("synth-v1").field(tech_.name());
    mix(h, latch_key);
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    synth_key = h.digest();
  }
  std::shared_ptr<const SynthArtifact> synth;
  if (ArtifactStore::Ptr a = store_.get("synth", synth_key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.synth_hits;
    synth = std::static_pointer_cast<const SynthArtifact>(a);
  } else {
    fault::maybe_throw("engine.stage.synth");
    cancel_point();
    // Patch path: the edit left the synthesized control structure alone —
    // either no matched delay moved (cg hash unchanged) or every moved
    // delay stayed inside its quantization bucket — so controller
    // synthesis would reproduce the previous netlist exactly: copy it and
    // replay the field edits onto the same cell ids. Kind flips on bank
    // latches are excluded: attach_controllers rewrites latch kinds, so
    // the delta would not commute with it.
    bool patchable =
        prev.latch && prev.adj && prev.synth &&
        diff_vs_prev().structural_same &&
        (prev.adj->cg_hash == adj->cg_hash ||
         same_quantized_control(prev.adj->adj, adj->adj, tech_));
    if (patchable) {
      std::set<uint32_t> bank_latches;
      for (const Bank& b : latch->lr.banks) {
        for (nl::CellId c : b.latches) bank_latches.insert(c.value());
      }
      for (nl::CellId c : diff_vs_prev().changed) {
        if (prev.latch->netlist.cell(c).kind != latch->netlist.cell(c).kind &&
            bank_latches.count(c.value())) {
          patchable = false;
          break;
        }
      }
    }
    if (patchable) {
      DesyncResult r = prev.synth->result;  // deep copy, then field-patch
      for (nl::CellId c : diff_vs_prev().changed) {
        const nl::CellData& pc = prev.latch->netlist.cell(c);
        const nl::CellData& nc = latch->netlist.cell(c);
        if (pc.kind != nc.kind) r.netlist.set_kind(c, nc.kind);
        if (pc.init != nc.init) r.netlist.set_init(c, nc.init);
        if (nc.payload >= 0 && prev.latch->netlist.payload(pc.payload) !=
                                   latch->netlist.payload(nc.payload)) {
          r.netlist.replace_payload(nc.payload,
                                    latch->netlist.payload(nc.payload));
        }
      }
      if (prev.adj->cg_hash != adj->cg_hash) {
        // Delays moved within their quantization buckets: the hardware is
        // unchanged but the result must carry the re-extracted graph.
        r.cg = adj->adj.cg;
        r.env_snk = adj->adj.env_snk;
        r.env_src = adj->adj.env_src;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.synth_patched;
      }
      auto sa = std::make_shared<SynthArtifact>(std::move(r));
      store_.put("synth", synth_key, sa);
      synth = sa;
    } else {
      DesyncResult r{latch->netlist, part->partition, latch->lr, adj->adj.cg,
                     {},             adj->adj.env_snk, adj->adj.env_src,
                     opt.protocol};
      r.ctrl = attach_controllers(r.netlist, r.banks, r.cg, opt.protocol,
                                  tech_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.synth_runs;
      }
      auto sa = std::make_shared<SynthArtifact>(std::move(r));
      store_.put("synth", synth_key, sa);
      synth = sa;
    }
  }

  // ---- lineage update -----------------------------------------------------
  {
    std::lock_guard<std::mutex> lock(mu_);
    constexpr size_t kMaxLineage = 64;
    if (lineage_.size() > kMaxLineage && !lineage_.count(lineage_key)) {
      lineage_.clear();  // crude bound; lineage is an accelerator, not state
    }
    Lineage& l = lineage_[lineage_key];
    l.latch = latch;
    l.adj = adj;
    l.synth = synth;  // l.mcr is owned by mcr_stage
  }
  return {synth, adj, lineage_key};
}

std::shared_ptr<const Engine::McrArtifact> Engine::mcr_stage(
    const AdjArtifact& adj, ctl::Protocol protocol,
    const Hash256& lineage_key) {
  Hash256 key;
  {
    Sha256 h;
    h.field("mcr-v1").field(tech_.name());
    mix(h, adj.cg_hash);
    h.field_u64(static_cast<uint64_t>(protocol));
    key = h.digest();
  }
  if (ArtifactStore::Ptr a = store_.get("mcr", key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.mcr_hits;
    return std::static_pointer_cast<const McrArtifact>(a);
  }
  fault::maybe_throw("engine.stage.mcr");
  cancel_point();
  Lineage prev = lineage_snapshot(lineage_key);
  auto m = std::make_shared<McrArtifact>();
  // The same pulse width every synthesis backend sizes: predictions match
  // flow::timed_control_model / flow::predicted_period exactly.
  m->flat = pn::flatten(
      timed_model(adj.adj.cg, protocol, tech_, ctl::min_pulse_width(tech_)));
  const McrArtifact* p = prev.mcr.get();
  bool warm = p && p->flat.num_nodes == m->flat.num_nodes &&
              p->flat.from == m->flat.from && p->flat.to == m->flat.to &&
              p->flat.tokens == m->flat.tokens;
  pn::CycleRatioResult res;
  if (warm) {
    // Same structure, only delays moved: warm-restart Howard from the
    // previous converged policy (bit-equal to a cold solve by contract).
    m->ctx = p->ctx;
    std::vector<uint32_t> identity(m->flat.num_nodes);
    std::iota(identity.begin(), identity.end(), 0u);
    res = m->ctx.resolve(m->flat.view(), identity);
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.mcr_warm;
  } else {
    res = m->ctx.solve(m->flat.view());
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.mcr_runs;
  }
  m->period = res.ratio;
  store_.put("mcr", key, m);
  {
    std::lock_guard<std::mutex> lock(mu_);
    lineage_[lineage_key].mcr = m;
  }
  return m;
}

std::shared_ptr<const DesyncResult> Engine::desynchronize(
    const nl::Netlist& ff, nl::NetId clock, const DesyncOptions& opt) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.runs;
  }
  Hash256 ff_hash = nl::content_hash(ff);
  Hash256 part_key = partition_key(ff, clock, opt, ff_hash);
  Stages st = run_stages(ff, clock, opt, ff_hash, part_key);
  return {st.synth, &st.synth->result};
}

std::shared_ptr<const check::LintReport> Engine::lint(
    const nl::Netlist& ff, nl::NetId clock, const DesyncOptions& opt) {
  Hash256 ff_hash = nl::content_hash(ff);
  Hash256 part_key = partition_key(ff, clock, opt, ff_hash);
  Hash256 key;
  {
    // Same coordinates as the result cache: anything that can change the
    // desynchronized netlist can change the report, nothing else can.
    Sha256 h;
    h.field("lint-v1").field(tech_.name());
    mix(h, ff_hash);
    h.field(ff.net(clock).name);
    mix(h, part_key);
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    key = h.digest();
  }
  if (ArtifactStore::Ptr a = store_.get("lint", key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.lint_hits;
    auto la = std::static_pointer_cast<const LintArtifact>(a);
    return {la, &la->rep};
  }
  Stages st = run_stages(ff, clock, opt, ff_hash, part_key);
  auto la = std::make_shared<LintArtifact>();
  la->rep = check::lint(st.synth->result, tech_,
                        check::LintOptions{opt.margin, opt.margins});
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.lint_runs;
  }
  store_.put("lint", key, la);  // memory tier only: reports are cheap to redo
  return {std::shared_ptr<const LintArtifact>(la), &la->rep};
}

std::shared_ptr<const McReport> Engine::mc(const nl::Netlist& ff,
                                           nl::NetId clock,
                                           const DesyncOptions& opt,
                                           const McOptions& mc) {
  Hash256 ff_hash = nl::content_hash(ff);
  Hash256 part_key = partition_key(ff, clock, opt, ff_hash);
  Hash256 key;
  {
    // Result-cache coordinates plus the sampling knobs that shape the
    // distribution. `mc.jobs` is excluded: the batch solver is
    // byte-identical at any worker count (pn::McrBatch contract), the same
    // exclusion the partition/sim job counts get.
    Sha256 h;
    h.field("mc-v1").field(tech_.name());
    mix(h, ff_hash);
    h.field(ff.net(clock).name);
    mix(h, part_key);
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    h.field_u64(mc.samples).field_u64(mc.seed);
    h.field_f64(mc.sigma);
    h.field_u64(mc.corners.size());
    for (double c : mc.corners) h.field_f64(c);
    key = h.digest();
  }
  if (ArtifactStore::Ptr a = store_.get("mc", key)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.mc_hits;
    auto ma = std::static_pointer_cast<const McAnalysisArtifact>(a);
    return {ma, &ma->rep};
  }
  Stages st = run_stages(ff, clock, opt, ff_hash, part_key);
  auto ma = std::make_shared<McAnalysisArtifact>();
  ma->rep = mc_analysis(st.synth->result, tech_,
                        Margins(opt.margin, opt.margins), mc);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.mc_runs;
  }
  store_.put("mc", key, ma);  // memory tier only, like lint
  return {std::shared_ptr<const McAnalysisArtifact>(ma), &ma->rep};
}

FlowOutcome Engine::run(const nl::Netlist& ff, nl::NetId clock,
                        const DesyncOptions& opt) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.runs;
  }
  Hash256 ff_hash = nl::content_hash(ff);
  Hash256 part_key = partition_key(ff, clock, opt, ff_hash);
  Hash256 result_key;
  {
    Sha256 h;
    h.field("result-v1").field(tech_.name());
    mix(h, ff_hash);
    h.field(ff.net(clock).name);
    mix(h, part_key);
    h.field_f64(opt.margin);
    hash_margins(h, opt.margins);
    h.field_u64(static_cast<uint64_t>(opt.protocol));
    result_key = h.digest();
  }
  ArtifactStore::Deserializer des =
      [](const std::string& body) -> ArtifactStore::Ptr {
    return deserialize_result(body);
  };
  if (ArtifactStore::Ptr a = store_.get("result", result_key, des)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.result_hits;
    }
    auto ra = std::static_pointer_cast<const ResultArtifact>(a);
    return {ra->verilog, ra->stats, true};
  }

  Stages st = run_stages(ff, clock, opt, ff_hash, part_key);
  std::shared_ptr<const McrArtifact> mcr =
      mcr_stage(*st.adj, opt.protocol, st.lineage_key);
  // Last probe before the result artifact is assembled and published: a
  // fault here proves a failed submission leaves no partial result entry.
  fault::maybe_throw("engine.stage.result");
  cancel_point();

  const DesyncResult& dr = st.synth->result;
  auto ra = std::make_shared<ResultArtifact>();
  {
    std::ostringstream os;
    nl::write_verilog(dr.netlist, os);
    ra->verilog = std::make_shared<const std::string>(std::move(os).str());
  }
  // The same cost split verif::check_flow_equivalence reports.
  ra->stats.banks = dr.cg.num_banks();
  ra->stats.controller_cells = dr.ctrl.cells.size() - dr.ctrl.delay_units;
  ra->stats.delay_cells = dr.ctrl.delay_units;
  ra->stats.cells_in = ff.num_live_cells();
  ra->stats.cells_out = dr.netlist.num_live_cells();
  ra->stats.predicted_period_ps = mcr->period;
  store_.put("result", result_key, ra, serialize_result(*ra));
  return {ra->verilog, ra->stats, false};
}

}  // namespace desyn::flow
