// Variation-aware timing analysis of a desynchronized circuit.
//
// STA sizes every matched-delay line against one worst-case number; silicon
// delivers a distribution. This module asks the distributional questions:
//
//   mc_analysis      Monte-Carlo sweep of the hardware timed model. Every
//                    sampled element (delay-line cell, controller gate,
//                    pulse-generator buffer, data-path realization) gets an
//                    independent counter-based draw (cell::VariationModel),
//                    the period of every sample is solved by one
//                    structure-shared pn::McrBatch, and the per-bank setup
//                    slack (line + response credit vs. sampled data path)
//                    yields a violation count per sample.
//
//   optimize_margins Replace the uniform matched-delay margin with a
//                    per-destination-bank vector: shave every delay line to
//                    the minimum cell count that keeps *zero* setup
//                    violations across all samples, back-map the cell
//                    counts to margins (DesyncOptions::margins), re-run the
//                    flow and report both MC analyses. Sample 0 is the
//                    nominal corner (factor 1.0), so the shaved hardware
//                    still covers the worst-case STA path and stays
//                    flow-equivalent (asserted by tests/test_mc.cpp).
//
// Determinism: every draw is a pure function of (seed, stream, sample), so
// reports are byte-identical for any --mc-jobs count (the batch solver's
// block contract) and for any evaluation order.
#pragma once

#include "cell/variation.h"
#include "core/desynchronizer.h"

namespace desyn::flow {

struct McOptions {
  size_t samples = 256;  ///< statistical samples beyond the corner list
  uint64_t seed = 1;     ///< RNG seed (cell::VariationModel::seed)
  double sigma = 0.05;   ///< per-element relative sigma (truncated +/-3)
  /// Corner factors prepended to the sample space; keep 1.0 first so
  /// sample 0 is the nominal design (optimize_margins relies on it).
  std::vector<double> corners = {1.0};
  /// Worker threads for the batch MCR solve; byte-identical results for
  /// any value (pn::McrBatch contract). Excluded from engine cache keys.
  int jobs = 1;
};

/// Distribution summary over samples (values in ps).
struct McStats {
  double p50 = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
};

struct McReport {
  size_t samples = 0;         ///< total rows = corners + statistical
  size_t corner_samples = 0;  ///< leading corner rows
  size_t mcr_arcs = 0;        ///< arcs of the timed model solved per sample
  double nominal_period = 0;  ///< sample 0's period (the 1.0 corner)
  McStats period;             ///< MCR period distribution, ps per token
  McStats min_slack;          ///< per-sample worst setup slack distribution
  size_t violation_samples = 0;  ///< samples with >= 1 negative slack
  double yield = 1.0;  ///< fraction of samples with zero violations
  std::vector<double> periods;     ///< per-sample period (size `samples`)
  std::vector<double> min_slacks;  ///< per-sample worst slack (size `samples`)
};

/// Monte-Carlo sweep of `r`'s hardware timed model. `margins` must be the
/// margins the flow ran with (DesyncResult does not carry them; same
/// contract as check::LintOptions) — the slack model de-margins the sized
/// matched delays with them to recover the raw data-path requirement.
McReport mc_analysis(const DesyncResult& r, const cell::Tech& tech,
                     const Margins& margins, const McOptions& opt = {});

struct MarginOptResult {
  /// Per-destination-bank margin vector for DesyncOptions::margins
  /// (0 = keep the global margin for that bank).
  std::vector<double> margins;
  size_t banks_shaved = 0;       ///< banks whose line lost >= 1 cell
  size_t delay_cells_before = 0; ///< ControllerNetwork::delay_units, uniform
  size_t delay_cells_after = 0;  ///< ... at the optimized margin vector
  McReport baseline;             ///< MC analysis at the uniform margin
  McReport optimized;            ///< MC analysis at the optimized vector
};

/// Run the flow at `opt`, shave every matched-delay line to the minimum
/// length with zero setup violations across all `mc` samples, re-run the
/// flow at the back-mapped per-bank margin vector and report both MC
/// analyses. The partition is identical in both runs (per-bank margins do
/// not feed the partitioner), so bank indices line up by construction.
MarginOptResult optimize_margins(const nl::Netlist& ff, nl::NetId clock,
                                 const cell::Tech& tech,
                                 const DesyncOptions& opt,
                                 const McOptions& mc = {});

}  // namespace desyn::flow
