#include "flow/mc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/rng.h"
#include "ctl/controller.h"
#include "pn/mcr.h"
#include "sta/variation.h"

namespace desyn::flow {

namespace {

/// Safety band (ps) the margin optimizer keeps above the sampled
/// requirement. The optimized flow re-derives the raw data path by
/// de-margining the re-sized matched delays, which can differ from the
/// optimizer's own derivation by a couple of ps of ceil rounding (and, via
/// path re-staging, a few more in the sampled realization); the band keeps
/// every shave decision valid under the re-derived requirement.
constexpr Ps kGuardPs = 8;

// Stream-key derivation: every sampled element owns a distinct 64-bit
// stream, a pure function of what the element *is* (kind, bank, index) —
// never of evaluation order, so reports are byte-identical for any
// --mc-jobs count or loop restructuring.
enum StreamKind : uint64_t {
  kLineCell = 1,  ///< (bank, cell index): one DELAY cell of the bank's line
  kCtrlInv = 2,   ///< (bank): the marking inverter of its controller
  kCtrlCElem = 3, ///< (bank): the C-element of its controller
  kCtrlXor = 4,   ///< (bank): the pulse/enable XOR of its controller
  kPulseBuf = 5,  ///< (bank): the pulse-generator buffer chain
  kDataPath = 6,  ///< (bank): the worst data path it captures
};

uint64_t skey(uint64_t kind, uint64_t a, uint64_t b = 0) {
  return splitmix64(kind * 0x9e3779b97f4a7c15ull +
                    splitmix64(a * 0xbf58476d1ce4e5b9ull + b));
}

/// The hardware timed model in batchable form: the quantized control
/// graph's arc list (flat MG arc j corresponds to arcs[j] — mg_from_arcs
/// adds arcs in list order) plus the per-bank sizing data the sampler
/// needs. Mirrors flow::timed_model's per-destination aggregation and
/// quantization exactly, so sample 0 (the 1.0 corner) reproduces the
/// nominal predicted period bit-for-bit.
struct Model {
  std::vector<ctl::ProtoArc> arcs;
  pn::McrFlat flat;
  std::vector<int> units;        ///< delay-line cells per destination bank
  std::vector<Ps> raw_required;  ///< de-margined worst path (+setup) per bank
  std::vector<size_t> timed_banks;  ///< banks with a timed incoming edge
  Ps inv = 0, celem = 0, xorg = 0, unit = 0;
  Ps pulse_width = 0;
};

Model build_model(const ctl::ControlGraph& cg, ctl::Protocol p,
                  const cell::Tech& tech, Ps pulse_width,
                  const Margins& margins) {
  Model m;
  m.inv = tech.delay(cell::Kind::Inv, 1, 1);
  m.celem = tech.delay(cell::Kind::CElem, 2, 2);
  m.xorg = tech.delay(cell::Kind::Xor, 2, 1);
  m.unit = tech.delay_unit();
  m.pulse_width = pulse_width;

  const size_t nb = cg.num_banks();
  std::vector<Ps> worst(nb, 0);
  for (const auto& e : cg.edges()) {
    worst[static_cast<size_t>(e.to)] =
        std::max(worst[static_cast<size_t>(e.to)], e.matched_delay);
  }
  m.units.resize(nb);
  m.raw_required.assign(nb, 0);
  for (size_t b = 0; b < nb; ++b) {
    m.units[b] = ctl::matched_delay_cells(worst[b], tech);
    if (worst[b] > 0) {
      m.timed_banks.push_back(b);
      // worst = ceil(raw * margin), so worst / margin bounds the raw STA
      // requirement from above by < 1 ps — conservative, never optimistic.
      m.raw_required[b] = static_cast<Ps>(std::ceil(
          static_cast<double>(worst[b]) / margins.of(static_cast<int>(b))));
    }
  }
  ctl::ControlGraph q;
  for (size_t i = 0; i < nb; ++i) {
    q.add_bank(cg.bank(static_cast<int>(i)).name,
               cg.bank(static_cast<int>(i)).even);
  }
  for (const auto& e : cg.edges()) {
    q.add_edge(e.from, e.to, m.units[static_cast<size_t>(e.to)] * m.unit);
  }
  m.arcs = ctl::hardware_arcs(q, p);
  m.flat = pn::flatten(ctl::mg_from_arcs(
      "mc", q, m.arcs, ctl::controller_response_delay(tech), pulse_width));
  DESYN_ASSERT(m.flat.from.size() == m.arcs.size());
  return m;
}

/// One DELAY cell of bank `b`'s matched line. Each physical cell rounds to
/// whole ps independently, like every hardware delay in the simulator.
Ps line_cell(const Model& m, const cell::VariationModel& vm, size_t b, int k,
             size_t s) {
  return static_cast<Ps>(std::llround(
      static_cast<double>(m.unit) * vm.factor(skey(kLineCell, b, static_cast<uint64_t>(k)), s)));
}

Ps line_total(const Model& m, const cell::VariationModel& vm, size_t b,
              int cells, size_t s) {
  Ps sum = 0;
  for (int k = 0; k < cells; ++k) sum += line_cell(m, vm, b, k, s);
  return sum;
}

/// Sampled controller response (marking inverter + C-element) of bank `b`.
Ps ctrl_response(const Model& m, const cell::VariationModel& vm, size_t b,
                 size_t s) {
  return static_cast<Ps>(std::llround(static_cast<double>(m.inv) *
                                      vm.factor(skey(kCtrlInv, b), s))) +
         static_cast<Ps>(std::llround(static_cast<double>(m.celem) *
                                      vm.factor(skey(kCtrlCElem, b), s)));
}

/// Sampled response *credit* (inverter + C-element + pulse XOR): the
/// control stages a request traverses before the capture edge, credited
/// against the matched line exactly as controller_response_credit is.
Ps credit_sample(const Model& m, const cell::VariationModel& vm, size_t b,
                 size_t s) {
  return ctrl_response(m, vm, b, s) +
         static_cast<Ps>(std::llround(static_cast<double>(m.xorg) *
                                      vm.factor(skey(kCtrlXor, b), s)));
}

/// Sampled realization of the worst data path captured by bank `b`.
Ps required_sample(const Model& m, const cell::VariationModel& vm, size_t b,
                   Ps raw, size_t s) {
  return sta::sample_path_delay(raw, m.unit, vm, skey(kDataPath, b), s);
}

McStats stats_of(std::vector<double> v) {
  McStats st;
  if (v.empty()) return st;
  std::sort(v.begin(), v.end());
  auto pct = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double t = idx - static_cast<double>(lo);
    return v[lo] * (1 - t) + v[hi] * t;
  };
  st.p50 = pct(0.5);
  st.p95 = pct(0.95);
  st.min = v.front();
  st.max = v.back();
  return st;
}

}  // namespace

McReport mc_analysis(const DesyncResult& r, const cell::Tech& tech,
                     const Margins& margins, const McOptions& opt) {
  const Model m =
      build_model(r.cg, r.protocol, tech, r.ctrl.pulse_width, margins);
  const cell::VariationModel vm{opt.seed, opt.sigma, opt.corners};
  const size_t S = vm.total_samples(opt.samples);
  const size_t nb = r.cg.num_banks();
  const size_t na = m.arcs.size();
  DESYN_ASSERT(S > 0);

  McReport rep;
  rep.samples = S;
  rep.corner_samples = vm.corners.size();
  rep.mcr_arcs = na;
  rep.periods.resize(S);
  rep.min_slacks.resize(S);

  // The samples x arcs delay matrix plus the per-sample slack scan. The
  // fill is counter-based (order-free); only the batch solve is threaded.
  std::vector<Ps> delays(S * na);
  std::vector<Ps> line(nb), ctrl(nb), pulse(nb);
  for (size_t s = 0; s < S; ++s) {
    for (size_t b = 0; b < nb; ++b) {
      line[b] = line_total(m, vm, b, m.units[b], s);
      ctrl[b] = ctrl_response(m, vm, b, s);
      // The pulse generator is a buffer chain; sample it as the staged
      // path it is (3 stages at the nominal minimum width).
      pulse[b] = sta::sample_path_delay(m.pulse_width, m.unit, vm,
                                        skey(kPulseBuf, b), s);
    }
    const std::span<Ps> row(delays.data() + s * na, na);
    for (size_t j = 0; j < na; ++j) {
      const ctl::ProtoArc& a = m.arcs[j];
      const size_t to = static_cast<size_t>(a.to);
      if (a.alternation) {
        row[j] = a.from_plus ? pulse[static_cast<size_t>(a.from)] : 0;
      } else if (a.pred_side) {
        row[j] = line[to] + ctrl[to];
      } else {
        row[j] = ctrl[to];
      }
    }
    double worst_slack = std::numeric_limits<double>::infinity();
    size_t violations = 0;
    for (size_t b : m.timed_banks) {
      const Ps avail = line[b] + credit_sample(m, vm, b, s);
      const Ps req = required_sample(m, vm, b, m.raw_required[b], s);
      const double slack = static_cast<double>(avail - req);
      worst_slack = std::min(worst_slack, slack);
      if (slack < 0) ++violations;
    }
    rep.min_slacks[s] = m.timed_banks.empty() ? 0.0 : worst_slack;
    if (violations > 0) ++rep.violation_samples;
  }

  const pn::McrBatch batch(m.flat.view());
  const std::vector<pn::CycleRatioResult> res =
      batch.solve_all(delays, S, opt.jobs);
  for (size_t s = 0; s < S; ++s) rep.periods[s] = res[s].ratio;
  rep.nominal_period = rep.corner_samples > 0 ? rep.periods[0] : 0.0;
  rep.period = stats_of(rep.periods);
  rep.min_slack = stats_of(rep.min_slacks);
  rep.yield = 1.0 - static_cast<double>(rep.violation_samples) /
                        static_cast<double>(S);
  return rep;
}

MarginOptResult optimize_margins(const nl::Netlist& ff, nl::NetId clock,
                                 const cell::Tech& tech,
                                 const DesyncOptions& opt,
                                 const McOptions& mc) {
  MarginOptResult out;
  const DesyncResult base = desynchronize(ff, clock, tech, opt);
  const Margins base_margins(opt.margin, opt.margins);
  out.baseline = mc_analysis(base, tech, base_margins, mc);
  out.delay_cells_before = base.ctrl.delay_units;

  const Model m = build_model(base.cg, base.protocol, tech,
                              base.ctrl.pulse_width, base_margins);
  const cell::VariationModel vm{mc.seed, mc.sigma, mc.corners};
  const size_t S = vm.total_samples(mc.samples);
  const size_t nb = base.cg.num_banks();
  const Ps credit_nom = ctl::controller_response_credit(tech);

  std::vector<double> margins(nb, 0.0);
  for (size_t b = 0; b < nb && b < opt.margins.size(); ++b) {
    margins[b] = opt.margins[b];
  }

  for (size_t b : m.timed_banks) {
    const int u0 = m.units[b];
    if (u0 <= 1) continue;
    const Ps raw = m.raw_required[b];

    // Minimum cells that keep every sample's setup slack >= kGuardPs. The
    // line prefix is monotone in the cell count (delays are positive), so
    // the scan per sample stops at the first sufficient length; a sample
    // even the full line cannot satisfy pins the bank at u0 (no shave —
    // the bank's yield loss is a baseline property, not ours to worsen).
    int need = 1;
    for (size_t s = 0; s < S && need < u0; ++s) {
      const Ps cr = credit_sample(m, vm, b, s);
      const Ps req = required_sample(m, vm, b, raw, s) + kGuardPs;
      Ps acc = 0;
      int u = 0;
      while (u < u0 && acc + cr < req) {
        acc += line_cell(m, vm, b, u, s);
        ++u;
      }
      need = std::max(need, u);
    }

    // Back-map the cell count to a margin landing mid-bucket on `cells`
    // after the flow's own ceil + quantization, floored at 1.0 (margins
    // below one are rejected everywhere). Then re-check every sample
    // against the *re-derived* requirement — the optimized flow will
    // de-margin its re-sized delays, which shifts the raw path by a ps or
    // two of rounding; the recheck (plus the guard band above) keeps the
    // shave valid under that derivation too.
    for (int cells = std::max(need, 1); cells < u0; ++cells) {
      double mb = (static_cast<double>(credit_nom) +
                   (static_cast<double>(cells) - 0.5) *
                       static_cast<double>(m.unit)) /
                  static_cast<double>(raw);
      mb = std::clamp(mb, 1.0, base_margins.of(static_cast<int>(b)));
      const Ps worst_new =
          static_cast<Ps>(std::ceil(static_cast<double>(raw) * mb));
      const int achieved = ctl::matched_delay_cells(worst_new, tech);
      if (achieved >= u0) break;     // the 1.0 floor undid the shave
      if (achieved < cells) continue;
      const Ps raw2 = static_cast<Ps>(
          std::ceil(static_cast<double>(worst_new) / mb));
      bool ok = true;
      for (size_t s = 0; s < S && ok; ++s) {
        const Ps avail = line_total(m, vm, b, achieved, s) +
                         credit_sample(m, vm, b, s);
        ok = avail >= required_sample(m, vm, b, raw2, s);
      }
      if (ok) {
        margins[b] = mb;
        ++out.banks_shaved;
        break;
      }
    }
  }
  out.margins = margins;

  DesyncOptions opt2 = opt;
  opt2.margins = margins;
  const DesyncResult shaved = desynchronize(ff, clock, tech, opt2);
  out.optimized =
      mc_analysis(shaved, tech, Margins(opt.margin, opt2.margins), mc);
  out.delay_cells_after = shaved.ctrl.delay_units;
  return out;
}

}  // namespace desyn::flow
