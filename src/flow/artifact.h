// Content-addressed artifact store: the flow engine's memory.
//
// Every stage of the staged pipeline (engine.h) produces an immutable
// artifact addressed by a 256-bit key derived from the canonical content
// of the stage's inputs. The store is a two-tier cache:
//
//  * an in-memory LRU of shared_ptr<const Artifact> (capacity counted in
//    entries — the working set of a server process),
//  * an optional on-disk tier (`dir`), holding only the artifact kinds
//    whose serialization round-trips exactly (text formats with an
//    integrity digest in the header). A disk hit is promoted into memory.
//
// Disk entries are *untrusted*: a torn write, truncation, or manual edit
// is detected by the integrity digest (or by the deserializer rejecting
// the body), and the entry is discarded and recomputed, never served.
// Writes are atomic and durable (temp file + fsync + rename), so a
// crashed writer leaves no corrupt visible entry — at worst an orphan
// `.tmp.<pid>.<seq>` file, which open() reaps once the writer pid is
// dead — and two processes racing on the same directory at worst both
// write the same bytes. Opening a store scrubs the directory by default:
// corrupt entries are counted and discarded up front rather than on
// first touch (docs/ROBUSTNESS.md has the full crash-consistency
// contract).
//
// Thread safety: all public methods are safe to call concurrently. A
// cache miss on two threads may compute the same artifact twice; both
// results are identical by construction (that is the point of the keying
// discipline), so the race is benign.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/sha256.h"

namespace desyn::flow {

/// Base class for everything the store holds. Artifacts are immutable
/// once published; stages downcast by kind (the kind string is part of
/// the map key, so a key can never resolve to the wrong type).
struct Artifact {
  virtual ~Artifact() = default;
};

class ArtifactStore {
 public:
  using Ptr = std::shared_ptr<const Artifact>;
  /// Rebuild an artifact from a disk body (header already stripped and
  /// verified). Return nullptr or throw to reject the entry as corrupt.
  using Deserializer = std::function<Ptr(const std::string& body)>;

  struct Options {
    size_t capacity = 96;       ///< in-memory entries before LRU eviction
    std::string dir;            ///< on-disk tier; empty = memory only
    bool scrub_on_open = true;  ///< verify + discard corrupt entries on open
  };

  struct Stats {
    size_t hits = 0;          ///< in-memory hits
    size_t disk_hits = 0;     ///< disk hits (promoted to memory)
    size_t misses = 0;        ///< neither tier had a usable entry
    size_t evictions = 0;     ///< LRU entries dropped
    size_t disk_corrupt = 0;  ///< disk entries rejected and discarded
                              ///< (on get() or by scrub-on-open)
    size_t tmp_reaped = 0;    ///< orphan tmp files from dead writers removed
  };

  ArtifactStore() : ArtifactStore(Options()) {}
  explicit ArtifactStore(const Options& opt);

  /// Look up (kind, key). On an in-memory hit the entry is refreshed in
  /// the LRU. On a miss with a disk tier and a deserializer, the disk
  /// entry (if any) is verified, deserialized, promoted and returned;
  /// a rejected entry is unlinked and counted in disk_corrupt.
  Ptr get(std::string_view kind, const Hash256& key,
          const Deserializer& des = {});

  /// Publish an artifact. With a disk tier and non-empty `serialized`,
  /// the body is also written to disk under an integrity header.
  void put(std::string_view kind, const Hash256& key, Ptr value,
           const std::string& serialized = {});

  Stats stats() const;
  size_t size() const;
  const std::string& dir() const { return opt_.dir; }

  /// Drop the in-memory tier (tests: force disk reloads / recomputes).
  void clear_memory();

 private:
  struct Entry {
    std::string key;  ///< "<kind>:<hex>"
    Ptr value;
  };
  using Lru = std::list<Entry>;

  std::string disk_path(std::string_view kind, const Hash256& key) const;
  void insert_locked(std::string&& mapkey, Ptr value);

  Options opt_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recent
  std::unordered_map<std::string, Lru::iterator> map_;
  Stats stats_;
};

/// Serialize with the store's integrity header: "<kind>-v1 <sha256(body)>
/// \n" + body. read_artifact_file() verifies and strips it.
std::string with_integrity_header(std::string_view kind,
                                  const std::string& body);

/// Read + verify an artifact file. Returns false (and clears `body`) when
/// the file is missing, the header is malformed, the kind mismatches, or
/// the digest does not match the body.
bool read_artifact_file(const std::string& path, std::string_view kind,
                        std::string* body);

/// Offline inventory of a cache directory (desyn_cli `cache stats|verify`).
struct CacheScan {
  size_t entries = 0;    ///< *.art files seen
  uint64_t bytes = 0;    ///< their total size
  std::map<std::string, size_t> kinds;  ///< entry count per artifact kind
  size_t tmp_total = 0;    ///< in-flight/orphan tmp files seen
  size_t tmp_orphans = 0;  ///< tmp files whose writer pid is dead
  size_t corrupt = 0;      ///< entries failing verification (verify=true)
  std::vector<std::string> corrupt_paths;
  std::vector<std::string> tmp_orphan_paths;
};

/// Scans `dir`. With verify=true every entry's integrity header is checked
/// (reads every file). Results are sorted by path for stable output.
CacheScan scan_cache_dir(const std::string& dir, bool verify);

/// Removes corrupt entries and orphan tmp files from `dir`. Tmp files from
/// still-live writers are left alone.
struct ScrubResult {
  size_t corrupt_removed = 0;
  size_t tmp_removed = 0;
};
ScrubResult scrub_cache_dir(const std::string& dir);

}  // namespace desyn::flow
