// The staged flow engine: the desynchronization flow as a pipeline of
// content-addressed stages over an ArtifactStore.
//
//   partition  ->  latchify  ->  adjacency  ->  synth  ->  mcr  ->  result
//
// Every stage produces an immutable artifact keyed by a canonical hash of
// exactly the inputs that stage depends on:
//
//   partition   H(tech, census | ff_hash, strategy knobs)
//   latchify    H(tech, ff_hash, clock, partition key)
//   adjacency   H(tech, latchify key, margin, protocol)
//   synth       H(tech, latchify key, margin, protocol)
//   mcr         H(tech, cg content hash, protocol)
//   result      H(tech, ff_hash, clock, partition key, margin, protocol)
//
// Re-submitting an unchanged design is a pure result-cache hit: no stage
// runs, the stored Verilog is returned. An *edited* design re-runs only
// the stages whose inputs actually changed; on top of that, per-design
// lineage enables three ECO fast paths when the edit is field-only (cell
// kind within the same pin structure, init value, payload contents):
//
//   * adjacency: cone-limited re-timing via extract_control_graph_eco —
//     only source banks whose output cone contains a changed cell re-run
//     sparse STA, every other matched delay is copied.
//   * synth: when the edit does not move any matched delay (cg hash
//     unchanged), the previous synthesized netlist is copied and the
//     field edits are replayed onto the same cell ids — no controller
//     re-synthesis.
//   * mcr: when the timed model's structure is unchanged, the previous
//     Howard context is warm-restarted (bit-equal ratios by the
//     McrContext contract).
//
// Determinism contract: every cached, ECO-patched or warm-started result
// is byte-identical to what the cold monolithic flow
// (desynchronize_reference) produces for the same canonical content.
// Hash keys address canonical content, not bytes: two netlists that
// differ only in construction order share artifacts, and both receive
// the first submission's (semantically equivalent) output bytes.
//
// Thread safety: a single Engine may be used from many threads (the
// persistent server does); stages compute outside the locks, double
// computation on a racing miss is benign.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/desynchronizer.h"
#include "flow/artifact.h"
#include "flow/mc.h"
#include "netlist/hash.h"

namespace desyn::check {
struct LintReport;
}

namespace desyn::flow {

struct EngineOptions {
  size_t capacity = 96;   ///< in-memory artifact entries before eviction
  std::string cache_dir;  ///< on-disk artifact tier; empty = memory only
};

/// What ran vs. what was served — the observable behavior of the staged
/// pipeline, pinned by the engine tests (cached-vs-cold, ECO scenarios).
struct StageCounters {
  size_t runs = 0;            ///< flow submissions (run/desynchronize)
  size_t result_hits = 0;     ///< submissions answered by the result cache
  size_t partition_runs = 0;
  size_t partition_hits = 0;
  size_t latchify_runs = 0;
  size_t latchify_hits = 0;
  size_t adjacency_runs = 0;  ///< full STA extractions
  size_t adjacency_hits = 0;
  size_t adjacency_eco = 0;   ///< cone-limited ECO re-extractions
  size_t eco_banks_retimed = 0;  ///< source-bank STA reruns across all ECOs
  size_t synth_runs = 0;      ///< full controller synthesis
  size_t synth_hits = 0;
  size_t synth_patched = 0;   ///< field-patch replays of a cached synth
  size_t mcr_runs = 0;        ///< cold Howard solves
  size_t mcr_hits = 0;
  size_t mcr_warm = 0;        ///< warm-restarted Howard solves
  size_t optimize_runs = 0;   ///< partition-optimizer searches
  size_t optimize_hits = 0;
  size_t lint_runs = 0;       ///< static-verification (check::lint) runs
  size_t lint_hits = 0;       ///< lint reports served from the cache
  size_t mc_runs = 0;         ///< Monte-Carlo analyses (flow::mc_analysis)
  size_t mc_hits = 0;         ///< MC reports served from the cache
};

/// The summary a flow submission reports (the server's response payload;
/// field split matches verif::check_flow_equivalence's cost accounting).
struct FlowStats {
  size_t banks = 0;             ///< control banks incl. the env pair
  size_t controller_cells = 0;  ///< handshake cells excluding delay lines
  size_t delay_cells = 0;       ///< matched-delay DELAY cells
  size_t cells_in = 0;          ///< live cells of the submitted netlist
  size_t cells_out = 0;         ///< live cells of the desynchronized one
  double predicted_period_ps = 0;  ///< Howard max-cycle-ratio prediction
};

struct FlowOutcome {
  std::shared_ptr<const std::string> verilog;  ///< the emitted circuit
  FlowStats stats;
  bool cached = false;  ///< true when served from the result cache
};

class Engine {
 public:
  /// `tech` must outlive the engine (it is a process-lifetime registry in
  /// every current caller).
  explicit Engine(const cell::Tech& tech, const EngineOptions& opt = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submit a flow: run (or serve) every stage through the MCR period
  /// prediction and return the emitted Verilog plus summary stats.
  FlowOutcome run(const nl::Netlist& ff_netlist, nl::NetId clock,
                  const DesyncOptions& opt);

  /// The staged equivalent of desynchronize_reference(): everything up to
  /// and including controller synthesis, served from the artifact cache.
  /// The returned result is immutable and shared with the cache.
  std::shared_ptr<const DesyncResult> desynchronize(
      const nl::Netlist& ff_netlist, nl::NetId clock,
      const DesyncOptions& opt);

  /// Cached optimize_partition(): keyed on the search knobs that shape the
  /// result (`opt.jobs` is excluded — results are byte-identical for any
  /// job count).
  std::shared_ptr<const PartitionOptResult> optimize(
      const nl::Netlist& ff_netlist, nl::NetId clock,
      const PartitionOptOptions& opt);

  /// Static verification (check::lint) of the desynchronized design as a
  /// content-addressed stage: keyed at the same coordinates as the result
  /// cache, so re-linting an unchanged submission is a pure cache hit and
  /// an edited one reuses every flow stage the edit did not invalidate.
  std::shared_ptr<const check::LintReport> lint(const nl::Netlist& ff_netlist,
                                                nl::NetId clock,
                                                const DesyncOptions& opt);

  /// Cached flow::mc_analysis of the desynchronized design: keyed at the
  /// result-cache coordinates plus the sampling knobs (samples, seed,
  /// sigma, corners). `mc.jobs` is excluded — reports are byte-identical
  /// for any worker count.
  std::shared_ptr<const McReport> mc(const nl::Netlist& ff_netlist,
                                     nl::NetId clock, const DesyncOptions& opt,
                                     const McOptions& mc);

  StageCounters counters() const;
  ArtifactStore::Stats store_stats() const;
  const cell::Tech& tech() const { return tech_; }

  /// The process-wide engine for `tech` (memory tier only) — what the
  /// flow::desynchronize() free function routes through. One engine per
  /// tech name, created on first use, never destroyed.
  static Engine& process(const cell::Tech& tech);

 private:
  struct LatchArtifact;
  struct AdjArtifact;
  struct SynthArtifact;
  struct McrArtifact;

  /// Per-design stage lineage: the previous submission's artifacts under
  /// the same (design name, clock, strategy, margin, protocol) coordinate,
  /// kept so the *next* submission of an edited design can diff against
  /// them and take the ECO fast paths. Bounded (see kMaxLineage).
  struct Lineage {
    std::shared_ptr<const LatchArtifact> latch;
    std::shared_ptr<const AdjArtifact> adj;
    std::shared_ptr<const SynthArtifact> synth;
    std::shared_ptr<const McrArtifact> mcr;
  };

  /// Everything run() needs beyond what desynchronize() returns.
  struct Stages {
    std::shared_ptr<const SynthArtifact> synth;
    std::shared_ptr<const AdjArtifact> adj;
    Hash256 lineage_key;
  };

  Stages run_stages(const nl::Netlist& ff, nl::NetId clock,
                    const DesyncOptions& opt, const Hash256& ff_hash,
                    const Hash256& part_key);
  std::shared_ptr<const McrArtifact> mcr_stage(const AdjArtifact& adj,
                                               ctl::Protocol protocol,
                                               const Hash256& lineage_key);
  Hash256 partition_key(const nl::Netlist& ff, nl::NetId clock,
                        const DesyncOptions& opt, const Hash256& ff_hash);
  Lineage lineage_snapshot(const Hash256& key) const;

  const cell::Tech& tech_;
  ArtifactStore store_;
  mutable std::mutex mu_;  ///< counters_ + lineage_
  StageCounters counters_;
  std::unordered_map<Hash256, Lineage> lineage_;
};

}  // namespace desyn::flow
