#include "cell/variation.h"

#include <algorithm>
#include <cmath>

#include "base/rng.h"

namespace desyn::cell {

double inverse_normal_cdf(double p) {
  DESYN_ASSERT(p > 0.0 && p < 1.0);
  // Acklam's rational approximation: three regions, central one on the
  // quantile directly, tails via sqrt(-2 ln p) with reflected coefficients.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  double q = p - 0.5;
  double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double VariationModel::factor(uint64_t stream, size_t sample) const {
  if (sample < corners.size()) return corners[sample];
  // Midpoint offset keeps the uniform strictly inside (0, 1) so the
  // inverse CDF is always defined.
  double u = (static_cast<double>(rng_draw(seed, stream, sample) >> 11) +
              0.5) *
             0x1.0p-53;
  double z = std::clamp(inverse_normal_cdf(u), -3.0, 3.0);
  // A delay factor cannot reach zero no matter how large sigma is set.
  return std::max(0.01, 1.0 + sigma * z);
}

}  // namespace desyn::cell
