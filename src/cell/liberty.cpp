#include "cell/liberty.h"

#include <cctype>
#include <map>
#include <optional>

namespace desyn::cell {

namespace {

/// Whitespace/brace tokenizer with '#' line comments.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::optional<std::string> next() {
    skip_space();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{' || c == '}') {
      ++pos_;
      return std::string(1, c);
    }
    size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(uc(text_[pos_])) &&
           text_[pos_] != '{' && text_[pos_] != '}' && text_[pos_] != '#') {
      ++pos_;
    }
    DESYN_ASSERT(pos_ > start);
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string expect() {
    auto t = next();
    if (!t) fail("liberty: unexpected end of input");
    return *t;
  }

  double expect_number() {
    std::string t = expect();
    try {
      size_t used = 0;
      double v = std::stod(t, &used);
      if (used != t.size()) fail("liberty: bad number '", t, "'");
      return v;
    } catch (const std::logic_error&) {
      fail("liberty: bad number '", t, "'");
    }
  }

 private:
  static unsigned char uc(char c) { return static_cast<unsigned char>(c); }
  void skip_space() {
    while (pos_ < text_.size()) {
      if (std::isspace(uc(text_[pos_]))) {
        ++pos_;
      } else if (text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

const std::map<std::string, Kind>& kind_by_name() {
  static const std::map<std::string, Kind> m = [] {
    std::map<std::string, Kind> r;
    for (int i = 0; i <= static_cast<int>(Kind::Ram); ++i) {
      Kind k = static_cast<Kind>(i);
      r[kind_name(k)] = k;
    }
    return r;
  }();
  return m;
}

CellSpec parse_cell_body(Lexer& lex) {
  CellSpec s;
  if (lex.expect() != "{") fail("liberty: expected '{' after cell name");
  for (;;) {
    std::string key = lex.expect();
    if (key == "}") break;
    double v = lex.expect_number();
    if (key == "delay") {
      s.delay = static_cast<Ps>(v);
    } else if (key == "per_input") {
      s.per_input = static_cast<Ps>(v);
    } else if (key == "area") {
      s.area = v;
    } else if (key == "area_per_input") {
      s.area_per_input = v;
    } else if (key == "cap") {
      s.input_cap = v;
    } else if (key == "energy") {
      s.energy = v;
    } else if (key == "clock_energy") {
      s.clock_energy = v;
    } else {
      fail("liberty: unknown cell attribute '", key, "'");
    }
  }
  return s;
}

}  // namespace

Tech parse_liberty(std::string_view text) {
  Lexer lex(text);
  if (lex.expect() != "library") fail("liberty: expected 'library'");
  Tech tech;
  tech.name_ = lex.expect();
  if (lex.expect() != "{") fail("liberty: expected '{'");

  std::array<bool, 21> seen{};
  for (;;) {
    std::string key = lex.expect();
    if (key == "}") break;
    if (key == "cell") {
      std::string cname = lex.expect();
      auto it = kind_by_name().find(cname);
      if (it == kind_by_name().end()) fail("liberty: unknown cell '", cname, "'");
      size_t idx = static_cast<size_t>(it->second);
      if (seen[idx]) fail("liberty: duplicate cell '", cname, "'");
      seen[idx] = true;
      tech.specs_[idx] = parse_cell_body(lex);
    } else if (key == "voltage") {
      tech.voltage_ = lex.expect_number();
    } else if (key == "wire_cap_per_fanout") {
      tech.wire_cap_per_fanout_ = lex.expect_number();
    } else if (key == "global_wire_factor") {
      tech.global_wire_factor_ = lex.expect_number();
    } else if (key == "load_ps_per_fanout") {
      tech.load_ps_per_fanout_ = static_cast<Ps>(lex.expect_number());
    } else if (key == "setup_ff") {
      tech.dff_setup_ = static_cast<Ps>(lex.expect_number());
    } else if (key == "setup_latch") {
      tech.latch_setup_ = static_cast<Ps>(lex.expect_number());
    } else {
      fail("liberty: unknown library attribute '", key, "'");
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      fail("liberty: library '", tech.name_, "' is missing cell '",
           kind_name(static_cast<Kind>(i)), "'");
    }
  }
  return tech;
}

std::string_view generic90_liberty_text() {
  // A generic 90nm-class library. DELAY is the matched-delay quantum; its
  // area/energy are those of two cascaded buffers, which is how such cells
  // are typically laid out.
  return R"(
library generic90 {
  voltage 1.0
  wire_cap_per_fanout 1.8
  global_wire_factor 2.0
  load_ps_per_fanout 3
  setup_ff 45
  setup_latch 30
  cell TIELO  { delay 0   area 2.2  cap 0.0 energy 0.0 }
  cell TIEHI  { delay 0   area 2.2  cap 0.0 energy 0.0 }
  cell BUF    { delay 30  area 5.8  cap 1.5 energy 1.2 }
  cell INV    { delay 18  area 4.4  cap 1.4 energy 1.0 }
  cell DELAY  { delay 120 area 11.6 cap 1.5 energy 2.4 }
  cell AND    { delay 35 per_input 8  area 7.3 area_per_input 1.8 cap 1.6 energy 1.5 }
  cell NAND   { delay 28 per_input 8  area 5.8 area_per_input 1.6 cap 1.6 energy 1.3 }
  cell OR     { delay 36 per_input 9  area 7.3 area_per_input 1.8 cap 1.6 energy 1.5 }
  cell NOR    { delay 30 per_input 9  area 5.8 area_per_input 1.6 cap 1.6 energy 1.3 }
  cell XOR    { delay 45  area 11.7 cap 1.9 energy 2.1 }
  cell XNOR   { delay 45  area 11.7 cap 1.9 energy 2.1 }
  cell MUX2   { delay 42  area 10.2 cap 1.7 energy 1.9 }
  cell AOI21  { delay 33  area 7.3  cap 1.6 energy 1.4 }
  cell OAI21  { delay 33  area 7.3  cap 1.6 energy 1.4 }
  cell CELEM  { delay 55 per_input 10 area 13.1 area_per_input 2.4 cap 1.8 energy 2.4 }
  cell GC     { delay 50  area 11.7 cap 1.8 energy 2.2 }
  # A DFF is internally a master/slave latch pair: its clock pin drives two
  # latch clock networks, so it carries twice the EN-pin capacitance and
  # twice the internal clock energy of a single level-sensitive latch.
  cell LATCH  { delay 65  area 16.0 cap 1.0 energy 2.6 clock_energy 1.3 }
  cell LATCHN { delay 65  area 16.0 cap 1.0 energy 2.6 clock_energy 1.3 }
  cell DFF    { delay 95  area 32.1 cap 2.0 energy 4.4 clock_energy 2.6 }
  # Memory macros: `area` is per bit.
  cell ROM    { delay 180 area 0.35 cap 1.8 energy 6.0 }
  cell RAM    { delay 220 area 1.50 cap 1.8 energy 9.0 clock_energy 6.0 }
}
)";
}

}  // namespace desyn::cell
