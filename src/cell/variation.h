// Process-variation delay model for Monte-Carlo timing analysis.
//
// Each sampled element (a gate, a delay-line segment, a controller
// response) gets a multiplicative delay factor. Two regimes share one
// sample index space:
//   * corner samples — sample i < corners.size() applies the global factor
//     corners[i] to every element (classic PVT corners; keeping 1.0 first
//     makes sample 0 the nominal design), and
//   * statistical samples — every later sample draws an independent
//     truncated-Gaussian factor per element.
// Draws are counter-based (base/rng.h): factor(stream, sample) is a pure
// function of (seed, stream, sample), so sample i is byte-identical no
// matter how many --mc-jobs workers compute it or in which order.
#pragma once

#include <cstdint>
#include <vector>

#include "base/common.h"

namespace desyn::cell {

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below sampling noise). p in (0, 1).
double inverse_normal_cdf(double p);

struct VariationModel {
  /// Seed of every draw (the --mc-seed of a sweep).
  uint64_t seed = 1;
  /// Relative sigma of the per-element Gaussian, truncated at +/-3 sigma
  /// (a physical delay cannot go negative, and far tails would only model
  /// manufacturing rejects).
  double sigma = 0.05;
  /// Global corner factors applied before statistical sampling starts.
  std::vector<double> corners = {1.0};

  /// Multiplicative delay factor of element `stream` in sample `sample`.
  double factor(uint64_t stream, size_t sample) const;

  /// Total sample count needed for `statistical` non-corner samples.
  size_t total_samples(size_t statistical) const {
    return corners.size() + statistical;
  }
};

}  // namespace desyn::cell
