// Liberty-lite: a minimal text format for technology libraries.
//
//   library <name> {
//     voltage 1.0
//     wire_cap_per_fanout 1.8
//     load_ps_per_fanout 3
//     setup_ff 45
//     setup_latch 30
//     cell INV { delay 18 area 4.4 cap 1.4 energy 1.0 }
//     cell AND { delay 35 per_input 8 area 7.3 area_per_input 1.8 ... }
//     ...
//   }
//
// Unknown keys are rejected; every cell kind must be defined exactly once.
#pragma once

#include <string_view>

#include "cell/tech.h"

namespace desyn::cell {

/// Parse a liberty-lite description. Throws desyn::Error on malformed input.
Tech parse_liberty(std::string_view text);

/// The embedded source of the built-in generic90 library.
std::string_view generic90_liberty_text();

}  // namespace desyn::cell
