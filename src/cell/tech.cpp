#include "cell/tech.h"

#include <cmath>

#include "cell/liberty.h"

namespace desyn::cell {

const Tech& Tech::generic90() {
  static const Tech tech = parse_liberty(generic90_liberty_text());
  return tech;
}

Ps Tech::delay(Kind k, int arity, int fanout) const {
  const CellSpec& s = spec(k);
  Ps d = s.delay;
  if (arity > 2) d += s.per_input * (arity - 2);
  if (fanout > 1) d += load_ps_per_fanout_ * (fanout - 1);
  return d;
}

Um2 Tech::area(Kind k, int arity, int p0, int p1) const {
  const CellSpec& s = spec(k);
  if (k == Kind::Rom || k == Kind::Ram) {
    // Macro area scales with the bit count; `area` is the per-bit figure.
    double bits = std::ldexp(static_cast<double>(p1), p0);  // 2^p0 * p1
    return s.area * bits;
  }
  Um2 a = s.area;
  if (arity > 2) a += s.area_per_input * (arity - 2);
  return a;
}

}  // namespace desyn::cell
