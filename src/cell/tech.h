// Technology data: per-cell timing, area, capacitance and energy, plus the
// handful of library-level constants (voltage, wireload, setup margins) the
// flow and the analyses need.
//
// Absolute numbers are those of a generic 90 nm-class standard-cell library;
// the paper's comparison is *relative* (sync vs. desynchronized under the
// same models), so the shape of the results does not depend on them.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "cell/cells.h"

namespace desyn::cell {

struct CellSpec {
  Ps delay = 0;          ///< intrinsic propagation delay (any pin -> output)
  Ps per_input = 0;      ///< extra delay per input beyond the 2nd
  Um2 area = 0;          ///< base cell area (per-bit for memory macros)
  Um2 area_per_input = 0;///< extra area per input beyond the 2nd
  Ff input_cap = 0;      ///< capacitance of each input pin
  double energy = 0;     ///< internal energy per output transition, fJ
  double clock_energy = 0;  ///< storage cells: internal energy per CK/EN
                            ///< transition (burned even when D is idle), fJ
};

/// Immutable technology library. Construct via `generic90()` or by parsing a
/// liberty-lite description with `parse_liberty()` (see liberty.h).
class Tech {
 public:
  /// The built-in library (parsed from an embedded liberty-lite description,
  /// so the parser is exercised on every construction).
  static const Tech& generic90();

  const std::string& name() const { return name_; }
  double voltage() const { return voltage_; }

  const CellSpec& spec(Kind k) const {
    return specs_[static_cast<size_t>(k)];
  }

  /// Instance propagation delay: intrinsic + arity scaling + load term.
  /// Both STA and the event simulator use exactly this function, so analytic
  /// and simulated timing agree by construction.
  Ps delay(Kind k, int arity, int fanout) const;

  /// Instance area; memory macros scale with their bit count.
  Um2 area(Kind k, int arity, int p0 = 0, int p1 = 0) const;

  Ff input_cap(Kind k) const { return spec(k).input_cap; }
  /// Fanout-based wireload estimate for one net.
  Ff wire_cap(int fanout) const {
    return wire_cap_per_fanout_ * static_cast<double>(fanout);
  }
  /// Wireload multiplier for globally routed nets (a chip-spanning clock
  /// tree vs. local control wiring — the locality the paper exploits).
  double global_wire_factor() const { return global_wire_factor_; }

  /// Delay of one DELAY cell (the matched-delay line quantum).
  Ps delay_unit() const { return spec(Kind::Delay).delay; }

  Ps dff_setup() const { return dff_setup_; }
  Ps latch_setup() const { return latch_setup_; }
  /// Extra delay per unit of fanout load, ps per fanout (part of delay()).
  Ps load_ps_per_fanout() const { return load_ps_per_fanout_; }

 private:
  friend Tech parse_liberty(std::string_view text);

  std::string name_;
  double voltage_ = 1.0;
  Ff wire_cap_per_fanout_ = 1.8;
  double global_wire_factor_ = 2.0;
  Ps load_ps_per_fanout_ = 3;
  Ps dff_setup_ = 45;
  Ps latch_setup_ = 30;
  std::array<CellSpec, 21> specs_{};
};

}  // namespace desyn::cell
