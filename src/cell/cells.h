// Cell kinds and logic evaluation.
//
// The library is deliberately small but covers everything the
// desynchronization flow needs: a standard combinational family, the
// asynchronous-control primitives (Muller C-element, generalized C), level
// latches of both polarities, D flip-flops, tie cells, an explicit DELAY
// buffer used to build matched-delay lines, and behavioral ROM/RAM macros
// (the equivalent of the SRAM macros a commercial flow would place).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/common.h"

namespace desyn::cell {

enum class Kind : uint8_t {
  TieLo,   // -> Y = 0
  TieHi,   // -> Y = 1
  Buf,     // A -> Y
  Inv,     // A -> Y
  Delay,   // A -> Y   (a buffer with a deliberately long, well-known delay)
  And,     // A0..A{n-1} -> Y, 2 <= n <= 8
  Nand,    // "
  Or,      // "
  Nor,     // "
  Xor,     // A0,A1 -> Y
  Xnor,    // A0,A1 -> Y
  Mux2,    // A,B,S -> Y = S ? B : A
  Aoi21,   // A,B,C -> Y = !((A&B)|C)
  Oai21,   // A,B,C -> Y = !((A|B)&C)
  CElem,   // A0..A{n-1} -> Y: rises when all 1, falls when all 0, else holds
  Gc,      // S,R -> Y: rises on S, falls on R, holds otherwise (set/reset
           //            simultaneously asserted is a protocol hazard -> X)
  Latch,   // D,EN -> Q: transparent when EN=1
  LatchN,  // D,EN -> Q: transparent when EN=0
  Dff,     // D,CK -> Q: rising edge
  Rom,     // A0..A{p0-1} -> D0..D{p1-1}; combinational; payload = contents
  Ram,     // CK,WE,WA..,WD..,RA.. -> RD..; async read, sync write on CK rise
};

constexpr int kMaxArity = 8;

/// Three-valued logic. X models unknown/uninitialized state.
enum class V : uint8_t { V0 = 0, V1 = 1, VX = 2 };

inline V from_bool(bool b) { return b ? V::V1 : V::V0; }
inline char to_char(V v) { return v == V::V0 ? '0' : (v == V::V1 ? '1' : 'x'); }

const char* kind_name(Kind k);

/// True for cells whose output depends only on current inputs.
bool is_combinational(Kind k);
/// True for kinds whose instances carry a per-instance arity (written as a
/// numeric type suffix, e.g. "AND3"). The single source of truth for the
/// Verilog writer and reader.
bool is_variable_arity(Kind k);
/// True for cells with internal state updated by the simulator (latches,
/// flip-flops, RAM write port).
bool is_storage(Kind k);
/// True for C-elements / gC whose next output depends on the previous output.
bool is_state_holding(Kind k);
/// Latch of either polarity.
inline bool is_latch(Kind k) { return k == Kind::Latch || k == Kind::LatchN; }

/// Number of inputs a cell of kind `k` with parameters (p0, p1) has; for
/// variable-arity kinds `arity` is the instance arity.
int num_inputs(Kind k, int arity, int p0 = 0, int p1 = 0);
/// Number of outputs (1 except for memories).
int num_outputs(Kind k, int p0 = 0, int p1 = 0);

/// Evaluate a purely combinational cell. `ins.size()` defines the arity.
V eval_comb(Kind k, std::span<const V> ins);

/// Evaluate a state-holding control cell (CElem/Gc) given its previous output.
V eval_state_holding(Kind k, std::span<const V> ins, V prev);

/// Human-readable pin name for the writer (input index `i` or output `o`).
std::string input_pin_name(Kind k, int i, int p0 = 0, int p1 = 0);
std::string output_pin_name(Kind k, int o, int p0 = 0, int p1 = 0);

}  // namespace desyn::cell
