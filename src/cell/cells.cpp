#include "cell/cells.h"

namespace desyn::cell {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::TieLo: return "TIELO";
    case Kind::TieHi: return "TIEHI";
    case Kind::Buf: return "BUF";
    case Kind::Inv: return "INV";
    case Kind::Delay: return "DELAY";
    case Kind::And: return "AND";
    case Kind::Nand: return "NAND";
    case Kind::Or: return "OR";
    case Kind::Nor: return "NOR";
    case Kind::Xor: return "XOR";
    case Kind::Xnor: return "XNOR";
    case Kind::Mux2: return "MUX2";
    case Kind::Aoi21: return "AOI21";
    case Kind::Oai21: return "OAI21";
    case Kind::CElem: return "CELEM";
    case Kind::Gc: return "GC";
    case Kind::Latch: return "LATCH";
    case Kind::LatchN: return "LATCHN";
    case Kind::Dff: return "DFF";
    case Kind::Rom: return "ROM";
    case Kind::Ram: return "RAM";
  }
  return "?";
}

bool is_combinational(Kind k) {
  switch (k) {
    case Kind::TieLo:
    case Kind::TieHi:
    case Kind::Buf:
    case Kind::Inv:
    case Kind::Delay:
    case Kind::And:
    case Kind::Nand:
    case Kind::Or:
    case Kind::Nor:
    case Kind::Xor:
    case Kind::Xnor:
    case Kind::Mux2:
    case Kind::Aoi21:
    case Kind::Oai21:
    case Kind::Rom:
      return true;
    default:
      return false;
  }
}

bool is_variable_arity(Kind k) {
  switch (k) {
    case Kind::And:
    case Kind::Nand:
    case Kind::Or:
    case Kind::Nor:
    case Kind::CElem:
      return true;
    default:
      return false;
  }
}

bool is_storage(Kind k) {
  return k == Kind::Latch || k == Kind::LatchN || k == Kind::Dff ||
         k == Kind::Ram;
}

bool is_state_holding(Kind k) { return k == Kind::CElem || k == Kind::Gc; }

int num_inputs(Kind k, int arity, int p0, int p1) {
  switch (k) {
    case Kind::TieLo:
    case Kind::TieHi:
      return 0;
    case Kind::Buf:
    case Kind::Inv:
    case Kind::Delay:
      return 1;
    case Kind::Xor:
    case Kind::Xnor:
    case Kind::Gc:
      return 2;
    case Kind::Mux2:
    case Kind::Aoi21:
    case Kind::Oai21:
      return 3;
    case Kind::And:
    case Kind::Nand:
    case Kind::Or:
    case Kind::Nor:
    case Kind::CElem:
      DESYN_ASSERT(arity >= 2 && arity <= kMaxArity);
      return arity;
    case Kind::Latch:
    case Kind::LatchN:
    case Kind::Dff:
      return 2;
    case Kind::Rom:
      return p0;
    case Kind::Ram:
      return 2 + p0 + p1 + p0;  // CK, WE, WA, WD, RA
  }
  return 0;
}

int num_outputs(Kind k, int p0, int p1) {
  (void)p0;
  switch (k) {
    case Kind::Rom:
    case Kind::Ram:
      return p1;
    default:
      return 1;
  }
}

namespace {

// AND over three-valued inputs: 0 dominates, else X dominates, else 1.
V and_all(std::span<const V> ins) {
  bool any_x = false;
  for (V v : ins) {
    if (v == V::V0) return V::V0;
    if (v == V::VX) any_x = true;
  }
  return any_x ? V::VX : V::V1;
}

V or_all(std::span<const V> ins) {
  bool any_x = false;
  for (V v : ins) {
    if (v == V::V1) return V::V1;
    if (v == V::VX) any_x = true;
  }
  return any_x ? V::VX : V::V0;
}

V inv(V v) {
  if (v == V::VX) return V::VX;
  return v == V::V0 ? V::V1 : V::V0;
}

V xor2(V a, V b) {
  if (a == V::VX || b == V::VX) return V::VX;
  return from_bool((a == V::V1) != (b == V::V1));
}

}  // namespace

V eval_comb(Kind k, std::span<const V> ins) {
  switch (k) {
    case Kind::TieLo: return V::V0;
    case Kind::TieHi: return V::V1;
    case Kind::Buf:
    case Kind::Delay: return ins[0];
    case Kind::Inv: return inv(ins[0]);
    case Kind::And: return and_all(ins);
    case Kind::Nand: return inv(and_all(ins));
    case Kind::Or: return or_all(ins);
    case Kind::Nor: return inv(or_all(ins));
    case Kind::Xor: return xor2(ins[0], ins[1]);
    case Kind::Xnor: return inv(xor2(ins[0], ins[1]));
    case Kind::Mux2: {
      V s = ins[2];
      if (s == V::V0) return ins[0];
      if (s == V::V1) return ins[1];
      // Unknown select: output known only if both data inputs agree.
      return ins[0] == ins[1] ? ins[0] : V::VX;
    }
    case Kind::Aoi21: {
      V ab[2] = {ins[0], ins[1]};
      V t[2] = {and_all(ab), ins[2]};
      return inv(or_all(t));
    }
    case Kind::Oai21: {
      V ab[2] = {ins[0], ins[1]};
      V t[2] = {or_all(ab), ins[2]};
      return inv(and_all(t));
    }
    default:
      fail("eval_comb on non-combinational cell ", kind_name(k));
  }
}

V eval_state_holding(Kind k, std::span<const V> ins, V prev) {
  if (k == Kind::CElem) {
    bool all1 = true, all0 = true;
    for (V v : ins) {
      if (v != V::V1) all1 = false;
      if (v != V::V0) all0 = false;
    }
    if (all1) return V::V1;
    if (all0) return V::V0;
    return prev;
  }
  DESYN_ASSERT(k == Kind::Gc);
  V s = ins[0], r = ins[1];
  if (s == V::V1 && r == V::V1) return V::VX;  // set/reset conflict: hazard
  if (s == V::V1) return V::V1;
  if (r == V::V1) return V::V0;
  if (s == V::VX || r == V::VX) return prev == V::VX ? V::VX : prev;
  return prev;
}

std::string input_pin_name(Kind k, int i, int p0, int p1) {
  switch (k) {
    case Kind::Buf:
    case Kind::Inv:
    case Kind::Delay:
      return "A";
    case Kind::Mux2:
      return i == 0 ? "A" : (i == 1 ? "B" : "S");
    case Kind::Aoi21:
    case Kind::Oai21:
      return std::string(1, static_cast<char>('A' + i));
    case Kind::Gc:
      return i == 0 ? "S" : "R";
    case Kind::Latch:
    case Kind::LatchN:
      return i == 0 ? "D" : "EN";
    case Kind::Dff:
      return i == 0 ? "D" : "CK";
    case Kind::Rom:
      return cat("A", i);
    case Kind::Ram: {
      if (i == 0) return "CK";
      if (i == 1) return "WE";
      i -= 2;
      if (i < p0) return cat("WA", i);
      i -= p0;
      if (i < p1) return cat("WD", i);
      i -= p1;
      return cat("RA", i);
    }
    default:
      return cat("A", i);
  }
}

std::string output_pin_name(Kind k, int o, int p0, int p1) {
  (void)p0;
  (void)p1;
  switch (k) {
    case Kind::Latch:
    case Kind::LatchN:
    case Kind::Dff:
      return "Q";
    case Kind::Rom:
      return cat("D", o);
    case Kind::Ram:
      return cat("RD", o);
    default:
      return o == 0 ? "Y" : cat("Y", o);
  }
}

}  // namespace desyn::cell
