// Event-driven gate-level simulator with three-valued logic (0/1/X) and
// per-cell inertial delays taken from the technology library.
//
// Delays are identical to what STA assumes (both call Tech::delay with the
// instance's arity and fanout), so analytic and simulated timing agree.
//
// Semantics:
//  * Nets initialize to X; tie cells, storage `init` values and
//    state-holding cells' `init` establish the reset state, which is then
//    settled combinationally at t=0 (models the end of a reset sequence).
//  * A cell re-evaluates whenever one of its (relevant) inputs changes and
//    schedules its output(s) after its propagation delay. Re-evaluation
//    before the pending event matures overwrites it (inertial delay:
//    too-narrow pulses are swallowed).
//  * DFF samples D on the rising edge of CK; RAM commits a write on the
//    rising edge of CK when WE=1; latches are transparent at EN=1 (Latch) /
//    EN=0 (LatchN).
//  * Setup checks: a capture edge (FF CK rise, latch closing edge, RAM CK
//    rise) with a data input that changed less than `setup` ago is recorded
//    as a violation. The margin bench uses this to find the failure point
//    of under-sized matched delays.
#pragma once

#include <functional>
#include <queue>
#include <span>
#include <unordered_map>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::sim {

using cell::V;

struct SetupViolation {
  Ps at = 0;             ///< capture edge time
  nl::CellId cell;       ///< capturing storage cell
  nl::NetId data_net;    ///< offending data net
  Ps slack = 0;          ///< (negative) setup slack observed
};

class Simulator {
 public:
  Simulator(const nl::Netlist& nl, const cell::Tech& tech);

  const nl::Netlist& netlist() const { return nl_; }

  // ---- stimulus -----------------------------------------------------------

  /// Schedule a primary-input change at absolute time `at` (>= now).
  void set_input(nl::NetId net, V v, Ps at);
  /// Free-running clock on a primary input: first rising edge at
  /// `first_rise`, then toggling every period/2. The clock sustains itself
  /// until the simulation stops.
  void add_clock(nl::NetId net, Ps period, Ps first_rise);

  // ---- execution ----------------------------------------------------------

  /// Process events up to and including time `t`.
  void run_until(Ps t);
  /// Run until no events remain or `max_t` is reached. Returns true if the
  /// circuit quiesced (self-clocking circuits and circuits with clocks
  /// never do).
  bool run_until_quiet(Ps max_t);
  Ps now() const { return now_; }

  // ---- observation --------------------------------------------------------

  V value(nl::NetId net) const { return val_[net.value()]; }
  /// 0<->1 transition count since construction / clear_activity().
  uint64_t toggles(nl::NetId net) const { return toggles_[net.value()]; }
  /// Reset all toggle counters and the activity window (for steady-state
  /// power measurement).
  void clear_activity();
  /// Time of the last clear_activity() (start of the measurement window).
  Ps activity_window_start() const { return window_start_; }

  using Watcher = std::function<void(Ps, V)>;
  /// Invoke `w` after every applied value change of `net`.
  void watch(nl::NetId net, Watcher w);

  const std::vector<SetupViolation>& setup_violations() const {
    return violations_;
  }
  uint64_t setup_violation_count() const { return violation_count_; }

  uint64_t events_processed() const { return events_processed_; }

  /// Current contents word of a RAM cell (for testbench inspection).
  uint64_t ram_word(nl::CellId ram, uint64_t addr) const;

 private:
  struct Event {
    Ps time;
    uint64_t seq;  // FIFO tie-break for equal times
    nl::NetId net;
    V value;
    uint64_t version;
    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void schedule(nl::NetId net, V v, Ps at);
  void apply(const Event& ev);
  void evaluate_pin(nl::Pin p, V old_cause);
  void settle_initial_state();
  Ps cell_delay(nl::CellId c) const;
  void check_setup(nl::CellId c, Ps edge_time);

  const nl::Netlist& nl_;
  const cell::Tech& tech_;

  std::vector<V> val_;             // per net
  std::vector<Ps> last_change_;    // per net, for setup checks
  std::vector<uint64_t> toggles_;  // per net
  std::vector<uint64_t> version_;  // per net, pending-event version
  std::vector<uint8_t> pending_;   // per net, 1 if latest schedule not applied
  std::vector<Ps> delay_;          // per cell, cached
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  uint64_t seq_ = 0;

  std::unordered_map<uint32_t, std::vector<uint64_t>> ram_state_;  // by cell
  std::unordered_map<uint32_t, std::vector<Watcher>> watchers_;    // by net

  struct Clock {
    nl::NetId net;
    Ps half_period;
  };
  std::vector<Clock> clocks_;

  std::vector<SetupViolation> violations_;
  uint64_t violation_count_ = 0;
  static constexpr size_t kMaxRecordedViolations = 64;

  Ps now_ = 0;
  Ps window_start_ = 0;
  uint64_t events_processed_ = 0;
};

/// Read a little-endian word off a bus of nets (LSB first). X bits read as 0;
/// *has_x reports whether any bit was unknown.
uint64_t read_word(const Simulator& sim, std::span<const nl::NetId> bus,
                   bool* has_x = nullptr);

/// Schedule a word onto a bus of primary inputs at time `at`.
void poke_word(Simulator& sim, std::span<const nl::NetId> bus, uint64_t value,
               Ps at);

}  // namespace desyn::sim
