// Event-driven gate-level simulator with three-valued logic (0/1/X) and
// per-cell inertial delays taken from the technology library.
//
// Delays are identical to what STA assumes (both call Tech::delay with the
// instance's arity and fanout), so analytic and simulated timing agree.
//
// Semantics:
//  * Nets initialize to X; tie cells, storage `init` values and
//    state-holding cells' `init` establish the reset state, which is then
//    settled combinationally at t=0 (models the end of a reset sequence).
//  * A cell re-evaluates whenever one of its (relevant) inputs changes and
//    schedules its output(s) after its propagation delay. Re-evaluation
//    before the pending event matures overwrites it (inertial delay:
//    too-narrow pulses are swallowed).
//  * DFF samples D on the rising edge of CK; RAM commits a write on the
//    rising edge of CK when WE=1; latches are transparent at EN=1 (Latch) /
//    EN=0 (LatchN).
//  * Setup checks: a capture edge (FF CK rise, latch closing edge, RAM CK
//    rise) with a data input that changed less than `setup` ago is recorded
//    as a violation. The margin bench uses this to find the failure point
//    of under-sized matched delays.
//
// Performance: all per-net and per-cell state (values, toggle counters,
// RAM contents, watchers, clock periods, cached delays) lives in dense
// vectors indexed by id, and the pending-event set is a time-bucketed
// calendar queue (timing wheel + overflow heap) — O(1) schedule/pop
// instead of hash lookups and binary-heap reshuffles on the inner loop.
#pragma once

#include <array>
#include <functional>
#include <queue>
#include <span>
#include <vector>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::sim {

using cell::V;

struct SetupViolation {
  Ps at = 0;             ///< capture edge time
  nl::CellId cell;       ///< capturing storage cell
  nl::NetId data_net;    ///< offending data net
  Ps slack = 0;          ///< (negative) setup slack observed
};

class Simulator {
 public:
  Simulator(const nl::Netlist& nl, const cell::Tech& tech);

  const nl::Netlist& netlist() const { return nl_; }

  // ---- stimulus -----------------------------------------------------------

  /// Schedule a primary-input change at absolute time `at` (>= now).
  void set_input(nl::NetId net, V v, Ps at);
  /// Free-running clock on a primary input: first rising edge at
  /// `first_rise`, then toggling every period/2. The clock sustains itself
  /// until the simulation stops.
  void add_clock(nl::NetId net, Ps period, Ps first_rise);

  // ---- execution ----------------------------------------------------------

  /// Process events up to and including time `t`.
  void run_until(Ps t);
  /// Run until no events remain or `max_t` is reached. Returns true if the
  /// circuit quiesced (self-clocking circuits and circuits with clocks
  /// never do).
  bool run_until_quiet(Ps max_t);
  Ps now() const { return now_; }

  // ---- observation --------------------------------------------------------

  V value(nl::NetId net) const { return val_[net.value()]; }
  /// 0<->1 transition count since construction / clear_activity().
  uint64_t toggles(nl::NetId net) const { return toggles_[net.value()]; }
  /// Reset all toggle counters and the activity window (for steady-state
  /// power measurement).
  void clear_activity();
  /// Time of the last clear_activity() (start of the measurement window).
  Ps activity_window_start() const { return window_start_; }

  using Watcher = std::function<void(Ps, V)>;
  /// Invoke `w` after every applied value change of `net`.
  void watch(nl::NetId net, Watcher w);

  const std::vector<SetupViolation>& setup_violations() const {
    return violations_;
  }
  uint64_t setup_violation_count() const { return violation_count_; }

  uint64_t events_processed() const { return events_processed_; }

  /// Current contents word of a RAM cell (for testbench inspection).
  uint64_t ram_word(nl::CellId ram, uint64_t addr) const;

 private:
  struct Event {
    Ps time;
    uint64_t seq;  // FIFO tie-break for equal times
    nl::NetId net;
    V value;
    uint64_t version;
    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Time-bucketed calendar queue. A timing wheel of 1 ps buckets covers the
  /// next kWheelSize picoseconds; events beyond that horizon wait in a
  /// binary-heap overflow and migrate into the wheel as the cursor advances.
  /// Within a bucket (one picosecond) events drain FIFO — push order equals
  /// seq order, including migrated overflow events (the heap ties on seq and
  /// migration happens the instant the horizon first covers a time, before
  /// any direct push at that time can occur) — so inertial-delay semantics
  /// are identical to the former priority_queue, with O(1) push/pop on the
  /// hot path instead of O(log n).
  class EventQueue {
   public:
    EventQueue() : wheel_(kWheelSize) {}
    /// `ev.time` must be >= the last popped/clamped time (simulation time
    /// is monotone; Simulator guarantees this via its `now_` asserts).
    void push(const Event& ev);
    /// Pops the next event with time <= `limit` into `*out`. Returns false
    /// when none exists; the cursor then rests at min(next event, limit) so
    /// later pushes at the current simulation time stay reachable.
    bool pop_next(Ps limit, Event* out);
    bool empty() const { return wheel_size_ == 0 && overflow_.empty(); }

   private:
    static constexpr size_t kWheelSize = size_t{1} << 10;  // 1024 ps window
    static constexpr size_t kWords = kWheelSize / 64;      // occupancy bitmap

    std::vector<Event>& bucket(Ps t) {
      return wheel_[static_cast<uint64_t>(t) & (kWheelSize - 1)];
    }
    /// Smallest occupied wheel time strictly greater than `t` (which must
    /// be the cursor; the window invariant makes the mapping from bucket
    /// index back to absolute time unique). -1 if the wheel is empty.
    Ps next_occupied_after(Ps t) const;
    /// Move overflow events now inside the horizon onto the wheel.
    void migrate();

    std::vector<std::vector<Event>> wheel_;
    std::array<uint64_t, kWords> occupied_{};  // bit per non-empty bucket
    size_t wheel_size_ = 0;  // live (unpopped) events on the wheel
    size_t drain_pos_ = 0;   // consumed prefix of bucket(cursor_)
    Ps cursor_ = 0;          // current drain time; never retreats
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        overflow_;
  };

  void schedule(nl::NetId net, V v, Ps at);
  void apply(const Event& ev);
  void evaluate_pin(nl::Pin p, V old_cause);
  void settle_initial_state();
  Ps cell_delay(nl::CellId c) const;
  void check_setup(nl::CellId c, Ps edge_time);

  const nl::Netlist& nl_;
  const cell::Tech& tech_;

  std::vector<V> val_;             // per net
  std::vector<Ps> last_change_;    // per net, for setup checks
  std::vector<uint64_t> toggles_;  // per net
  std::vector<uint64_t> version_;  // per net, pending-event version
  std::vector<uint8_t> pending_;   // per net, 1 if latest schedule not applied
  std::vector<Ps> delay_;          // per cell, cached
  EventQueue queue_;
  uint64_t seq_ = 0;
  std::vector<V> eval_buf_;  // scratch for cell evaluation (no per-event
                             // allocation on the hot path)

  std::vector<std::vector<uint64_t>> ram_state_;  // per cell; empty unless RAM
  std::vector<std::vector<Watcher>> watchers_;    // per net
  std::vector<Ps> clock_half_period_;  // per net; 0 = not a free-running clock

  /// Flattened fanout, CSR-indexed by net id. DFF clock pins — the bulk of
  /// a clocked design's event traffic — are pre-resolved into a dedicated
  /// record (D net, Q net, delay) acted on only for rising edges, so the
  /// inner loop touches no CellData at all and falling clock edges skip
  /// every flip-flop. All remaining pins go through evaluate_pin.
  struct FfCkPin {
    nl::NetId d, q;
    nl::CellId cell;  // for setup-violation reporting
    Ps delay;
  };
  std::vector<FfCkPin> ff_ck_;
  std::vector<uint32_t> ff_ck_off_;  // num_nets + 1 offsets into ff_ck_
  std::vector<nl::Pin> fan_pins_;
  std::vector<uint32_t> fan_off_;  // num_nets + 1 offsets into fan_pins_
  Ps dff_setup_ = 0;               // cached tech_.dff_setup()

  std::vector<SetupViolation> violations_;
  uint64_t violation_count_ = 0;
  static constexpr size_t kMaxRecordedViolations = 64;

  Ps now_ = 0;
  Ps window_start_ = 0;
  uint64_t events_processed_ = 0;
};

/// Read a little-endian word off a bus of nets (LSB first). X bits read as 0;
/// *has_x reports whether any bit was unknown.
uint64_t read_word(const Simulator& sim, std::span<const nl::NetId> bus,
                   bool* has_x = nullptr);

/// Schedule a word onto a bus of primary inputs at time `at`.
void poke_word(Simulator& sim, std::span<const nl::NetId> bus, uint64_t value,
               Ps at);

}  // namespace desyn::sim
