// Event-driven gate-level simulator with three-valued logic (0/1/X),
// per-cell inertial delays taken from the technology library, and an
// optional domain-sharded parallel execution mode.
//
// Delays are identical to what STA assumes (both call Tech::delay with the
// instance's arity and fanout), so analytic and simulated timing agree.
//
// Semantics:
//  * Nets initialize to X; tie cells, storage `init` values and
//    state-holding cells' `init` establish the reset state, which is then
//    settled combinationally at t=0 (models the end of a reset sequence).
//  * A cell re-evaluates whenever one of its (relevant) inputs changes and
//    schedules its output(s) after its propagation delay. Re-evaluation
//    before the pending event matures overwrites it (inertial delay:
//    too-narrow pulses are swallowed).
//  * DFF samples D on the rising edge of CK; RAM commits a write on the
//    rising edge of CK when WE=1; latches are transparent at EN=1 (Latch) /
//    EN=0 (LatchN).
//  * Setup checks: a capture edge (FF CK rise, latch closing edge, RAM CK
//    rise) with a data input that changed less than `setup` ago is recorded
//    as a violation. The margin bench uses this to find the failure point
//    of under-sized matched delays.
//
// Execution model (the key to parallel byte-identity): every picosecond
// with pending events is processed as one or more two-phase sub-rounds.
//  * Commit phase: each active domain drains its own calendar queue at the
//    current time and commits the value changes of the nets it owns.
//  * Merge: the changes are concatenated in canonical (domain id, commit
//    order) order; watchers fire here, single-threaded, in that order.
//  * Evaluate phase: every domain with a fanout pin on a changed net
//    re-evaluates those cells, reading the committed (post-barrier) values
//    of any net but scheduling only onto nets it owns, with a domain-local
//    FIFO sequence.
// All writes are owner-disjoint and all cross-domain reads happen after a
// barrier, so the result is independent of thread interleaving: `jobs = 1`
// runs the identical algorithm inline and is the serial oracle the parallel
// path is pinned against (tests/test_sim_parallel.cpp). A sub-round whose
// phase has a single active domain runs on the coordinator without touching
// the pool — the common case between handshake interactions, whose spacing
// is bounded below by the cross-domain matched-delay/handshake latency.
//
// Performance: all per-net and per-cell state (values, toggle counters,
// RAM contents, watchers, clock periods, cached delays) lives in dense
// vectors indexed by id, and each domain's pending-event set is a
// time-bucketed calendar queue (timing wheel + overflow heap) — O(1)
// schedule/pop instead of hash lookups and binary-heap reshuffles on the
// inner loop.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "cell/tech.h"
#include "netlist/netlist.h"

namespace desyn::sim {

using cell::V;

struct SetupViolation {
  Ps at = 0;             ///< capture edge time
  nl::CellId cell;       ///< capturing storage cell
  nl::NetId data_net;    ///< offending data net
  Ps slack = 0;          ///< (negative) setup slack observed
};

/// Assignment of every cell to a simulation domain. A net is owned by its
/// driver's domain (driverless nets by their first reader's); only the
/// owner commits its value or schedules events on it. Any assignment is
/// *correct*: for a fixed map, every observable is byte-identical at every
/// job count, and across different maps the trajectory (values, times,
/// toggle/event counts, violations) is identical too — only the
/// within-timestamp ordering of watcher callbacks (and hence VCD line
/// order inside one `#t` block) follows the map's canonical domain order.
/// Parallel speedup comes from maps that follow the circuit's natural cuts
/// (see sim/domains.h and flow::sim_domains()).
struct DomainMap {
  uint32_t num_domains = 1;
  /// Per cell id; empty means every cell is in domain 0. Values must be
  /// < num_domains.
  std::vector<uint32_t> cell_domain;
};

struct SimOptions {
  /// Worker threads for multi-domain phases. 1 = serial (the oracle);
  /// any value yields byte-identical results.
  int jobs = 1;
  DomainMap domains;  ///< default: a single domain
};

class Simulator {
 public:
  Simulator(const nl::Netlist& nl, const cell::Tech& tech);
  Simulator(const nl::Netlist& nl, const cell::Tech& tech, SimOptions opt);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const nl::Netlist& netlist() const { return nl_; }

  // ---- stimulus -----------------------------------------------------------

  /// Schedule a primary-input change at absolute time `at` (>= now).
  void set_input(nl::NetId net, V v, Ps at);
  /// Free-running clock on a primary input: first rising edge at
  /// `first_rise`, then toggling every period/2. The clock sustains itself
  /// until the simulation stops.
  void add_clock(nl::NetId net, Ps period, Ps first_rise);

  // ---- execution ----------------------------------------------------------

  /// Process events up to and including time `t`.
  void run_until(Ps t);
  /// Run until no events remain or `max_t` is reached. Returns true if the
  /// circuit quiesced (self-clocking circuits and circuits with clocks
  /// never do).
  bool run_until_quiet(Ps max_t);
  Ps now() const { return now_; }

  // ---- observation --------------------------------------------------------

  V value(nl::NetId net) const { return val_[net.value()]; }
  /// 0<->1 transition count since construction / clear_activity().
  uint64_t toggles(nl::NetId net) const { return toggles_[net.value()]; }
  /// Reset all toggle counters and the activity window (for steady-state
  /// power measurement).
  void clear_activity();
  /// Time of the last clear_activity() (start of the measurement window).
  Ps activity_window_start() const { return window_start_; }

  using Watcher = std::function<void(Ps, V)>;
  /// Invoke `w` after every applied value change of `net`. Watchers always
  /// run on the calling thread, in canonical order, regardless of `jobs`.
  void watch(nl::NetId net, Watcher w);

  const std::vector<SetupViolation>& setup_violations() const {
    return violations_;
  }
  uint64_t setup_violation_count() const { return violation_count_; }

  uint64_t events_processed() const;

  /// Current contents word of a RAM cell (for testbench inspection).
  uint64_t ram_word(nl::CellId ram, uint64_t addr) const;

  size_t num_domains() const { return dom_.size(); }
  int jobs() const { return jobs_; }
  /// Domain a cell was assigned to (diagnostics / tests).
  uint32_t cell_domain(nl::CellId c) const { return cell_dom_[c.value()]; }
  /// Domain that owns (commits) a net.
  uint32_t net_domain(nl::NetId n) const { return net_dom_[n.value()]; }
  /// Sub-rounds that dispatched work to the thread pool (diagnostics; 0
  /// when jobs = 1 or only one domain was ever active at a time).
  uint64_t parallel_phases() const { return parallel_phases_; }

 private:
  struct Event {
    Ps time;
    uint64_t seq;  // FIFO tie-break for equal times (domain-local)
    nl::NetId net;
    V value;
    uint64_t version;
    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Time-bucketed calendar queue. A timing wheel of 1 ps buckets covers
  /// the next `wheel_size` picoseconds; events beyond that horizon wait in
  /// a binary-heap overflow and migrate into the wheel as the cursor
  /// advances. Within a bucket (one picosecond) events drain FIFO — push
  /// order equals seq order, including migrated overflow events (the heap
  /// ties on seq and migration happens the instant the horizon first covers
  /// a time, before any direct push at that time can occur) — so
  /// inertial-delay semantics are identical to a priority_queue, with O(1)
  /// push/pop on the hot path.
  class EventQueue {
   public:
    /// `wheel_size` must be a power of two. Many-domain simulators use a
    /// smaller wheel per domain to bound memory.
    explicit EventQueue(size_t wheel_size)
        : wheel_(wheel_size),
          occupied_(wheel_size / 64),
          mask_(wheel_size - 1) {}
    /// `ev.time` must be >= the last popped/clamped time (simulation time
    /// is monotone; Simulator guarantees this via its `now_` asserts).
    void push(const Event& ev);
    /// Pops the next event with time <= `limit` into `*out`. Returns false
    /// when none exists; the cursor then rests at min(next event, limit) so
    /// later pushes at the current simulation time stay reachable.
    bool pop_next(Ps limit, Event* out);
    bool empty() const { return wheel_size_ == 0 && overflow_.empty(); }
    /// Time of the earliest pending event, or -1 when empty. Does not
    /// advance the cursor.
    Ps next_event_time() const;

   private:
    const std::vector<Event>& bucket(Ps t) const {
      return wheel_[static_cast<uint64_t>(t) & mask_];
    }
    std::vector<Event>& bucket(Ps t) {
      return wheel_[static_cast<uint64_t>(t) & mask_];
    }
    /// Smallest occupied wheel time strictly greater than `t` (which must
    /// be the cursor; the window invariant makes the mapping from bucket
    /// index back to absolute time unique). -1 if the wheel is empty.
    Ps next_occupied_after(Ps t) const;
    /// Move overflow events now inside the horizon onto the wheel.
    void migrate();

    std::vector<std::vector<Event>> wheel_;
    std::vector<uint64_t> occupied_;  // bit per non-empty bucket
    uint64_t mask_;
    size_t wheel_size_ = 0;  // live (unpopped) events on the wheel
    size_t drain_pos_ = 0;   // consumed prefix of bucket(cursor_)
    Ps cursor_ = 0;          // current drain time; never retreats
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        overflow_;
  };

  /// A committed value change, queued for the merge + evaluate phases.
  struct Change {
    nl::NetId net;
    V oldv, newv;
  };
  /// One unit of evaluate-phase work: changed net x reader domain.
  struct WorkItem {
    uint32_t change;  // index into merged_
    uint32_t range;   // index into ranges_
  };
  /// Per-net slice of the flattened fanout owned by one reader domain.
  struct NetRange {
    uint32_t dom;
    uint32_t ff_begin, ff_end;    // ff_ck_ slice (DFF clock pins)
    uint32_t fan_begin, fan_end;  // fan_pins_ slice (everything else)
  };

  /// All mutable per-domain state, cache-line separated so worker threads
  /// never false-share hot counters.
  struct alignas(64) Domain {
    explicit Domain(size_t wheel_size) : q(wheel_size) {}
    EventQueue q;
    uint64_t seq = 0;     // FIFO tie-break, domain-local
    uint64_t events = 0;  // events processed (summed for the public count)
    std::vector<Change> changes;        // commit-phase output
    std::vector<WorkItem> work;         // evaluate-phase input
    std::vector<V> eval_buf;            // cell-eval scratch
    std::vector<SetupViolation> viol;   // merged canonically per sub-round
    uint64_t viol_count = 0;
  };

  class Pool;  // spin-barrier worker pool, defined in sim.cpp

  enum Phase : int { kCommit = 0, kEvaluate = 1 };

  void schedule(uint32_t d, nl::NetId net, V v, Ps at);
  void settle_initial_state();
  Ps cell_delay(nl::CellId c) const;

  void ensure_heap();
  Ps next_global_time();
  void collect_active(Ps t);
  void round_at(Ps t);
  void round_at_single(Ps t);
  void run_phase(Phase phase, const std::vector<uint32_t>& domains);
  void phase_work(Phase phase, uint32_t d);
  void commit_domain(uint32_t d, Ps t);
  void evaluate_domain(uint32_t d, Ps t);
  void evaluate_range(const NetRange& r, const Change& ch, Ps t, Domain& dm,
                      uint32_t d);
  void evaluate_pin(nl::Pin p, V oldv, Ps t, Domain& dm, uint32_t d);
  void check_setup(nl::CellId c, Ps edge_time, Domain& dm);
  void record_violation(Domain& dm, const SetupViolation& v);
  void finish_run(Ps t);

  const nl::Netlist& nl_;
  const cell::Tech& tech_;
  int jobs_ = 1;

  std::vector<V> val_;             // per net
  std::vector<Ps> last_change_;    // per net, for setup checks
  std::vector<uint64_t> toggles_;  // per net
  std::vector<uint64_t> version_;  // per net, pending-event version
  std::vector<uint8_t> pending_;   // per net, 1 if latest schedule not applied
  std::vector<Ps> delay_;          // per cell, cached
  std::vector<uint32_t> cell_dom_;  // per cell
  std::vector<uint32_t> net_dom_;   // per net: owner (committer) domain

  std::vector<Domain> dom_;
  std::unique_ptr<Pool> pool_;  // created on first parallel phase

  std::vector<std::vector<uint64_t>> ram_state_;  // per cell; empty unless RAM
  std::vector<std::vector<Watcher>> watchers_;    // per net
  std::vector<Ps> clock_half_period_;  // per net; 0 = not a free-running clock

  /// Flattened fanout, CSR-indexed by net id and grouped by reader domain
  /// (ranges_/range_off_). DFF clock pins — the bulk of a clocked design's
  /// event traffic — are pre-resolved into a dedicated record (D net, Q
  /// net, delay) acted on only for rising edges, so the inner loop touches
  /// no CellData at all and falling clock edges skip every flip-flop. All
  /// remaining pins go through evaluate_pin.
  struct FfCkPin {
    nl::NetId d, q;
    nl::CellId cell;  // for setup-violation reporting
    Ps delay;
  };
  std::vector<FfCkPin> ff_ck_;
  std::vector<nl::Pin> fan_pins_;
  std::vector<NetRange> ranges_;
  std::vector<uint32_t> range_off_;  // num_nets + 1 offsets into ranges_
  Ps dff_setup_ = 0;                 // cached tech_.dff_setup()

  // Round/merge scratch (coordinator only).
  std::vector<Change> merged_;       // canonical change order of a sub-round
  std::vector<uint32_t> active_;     // domains with events at the round time
  std::vector<uint32_t> touched_;    // domains with evaluate work
  std::vector<uint32_t> wdirty_;     // domains poked by watchers this round
  std::vector<uint32_t> scratch_;    // candidate collection
  std::vector<uint8_t> dom_flag_;    // per domain, dedup scratch
  Ps round_time_ = 0;                // read by workers during a phase
  bool in_watch_ = false;            // set_input bookkeeping

  /// Lazy min-heap of (next event time, domain): every queue push outside a
  /// round adds a candidate; rounds re-add their participants. Stale
  /// entries are validated against the queue on pop.
  std::priority_queue<std::pair<Ps, uint32_t>,
                      std::vector<std::pair<Ps, uint32_t>>,
                      std::greater<std::pair<Ps, uint32_t>>>
      head_heap_;
  bool heap_init_ = false;

  std::vector<SetupViolation> violations_;
  uint64_t violation_count_ = 0;
  static constexpr size_t kMaxRecordedViolations = 64;

  Ps now_ = 0;
  Ps window_start_ = 0;
  uint64_t parallel_phases_ = 0;
};

/// Read a little-endian word off a bus of nets (LSB first). X bits read as 0;
/// *has_x reports whether any bit was unknown.
uint64_t read_word(const Simulator& sim, std::span<const nl::NetId> bus,
                   bool* has_x = nullptr);

/// Schedule a word onto a bus of primary inputs at time `at`.
void poke_word(Simulator& sim, std::span<const nl::NetId> bus, uint64_t value,
               Ps at);

}  // namespace desyn::sim
