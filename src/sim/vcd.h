// VCD (value change dump) writer: subscribe to nets and stream their
// changes in standard VCD format for waveform viewers.
#pragma once

#include <iosfwd>
#include <vector>

#include "sim/sim.h"

namespace desyn::sim {

class VcdWriter {
 public:
  /// Registers watchers on `nets`; the header and initial values are
  /// emitted immediately. The stream must outlive the simulation run.
  VcdWriter(Simulator& sim, std::ostream& os, std::vector<nl::NetId> nets);

  /// Emit the final timestamp. Call after the last run_until().
  void finish();

 private:
  static std::string code_for(size_t index);
  Simulator& sim_;
  std::ostream& os_;
  std::vector<nl::NetId> nets_;
  Ps last_time_ = -1;
};

}  // namespace desyn::sim
