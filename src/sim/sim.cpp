#include "sim/sim.h"

#include <algorithm>
#include <bit>

#include "netlist/query.h"

namespace desyn::sim {

using cell::Kind;
using nl::CellId;
using nl::NetId;
using nl::Pin;

void Simulator::EventQueue::push(const Event& ev) {
  // The cursor never passes an undrained time and never exceeds the
  // simulation's `now_`, so a (time >= now) push is always reachable.
  DESYN_ASSERT(ev.time >= cursor_, "event scheduled in the past");
  if (ev.time >= cursor_ + static_cast<Ps>(kWheelSize)) {
    overflow_.push(ev);
  } else {
    const uint64_t idx = static_cast<uint64_t>(ev.time) & (kWheelSize - 1);
    occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
    wheel_[idx].push_back(ev);
    ++wheel_size_;
  }
}

void Simulator::EventQueue::migrate() {
  const Ps horizon = cursor_ + static_cast<Ps>(kWheelSize);
  while (!overflow_.empty() && overflow_.top().time < horizon) {
    Event ev = overflow_.top();
    overflow_.pop();
    const uint64_t idx = static_cast<uint64_t>(ev.time) & (kWheelSize - 1);
    occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
    wheel_[idx].push_back(ev);
    ++wheel_size_;
  }
}

Ps Simulator::EventQueue::next_occupied_after(Ps t) const {
  const uint64_t start = (static_cast<uint64_t>(t) + 1) & (kWheelSize - 1);
  uint64_t w = start >> 6;
  uint64_t word = occupied_[w] & (~uint64_t{0} << (start & 63));
  // <= kWords iterations: the wrapped-around first word re-checks only the
  // bits below `start`, which map to the far end of the window.
  for (size_t i = 0; i <= kWords; ++i) {
    if (word != 0) {
      const uint64_t idx = (w << 6) + static_cast<uint64_t>(
                                          std::countr_zero(word));
      const uint64_t off = (idx - static_cast<uint64_t>(t)) & (kWheelSize - 1);
      return t + static_cast<Ps>(off);
    }
    w = (w + 1) & (kWords - 1);
    word = occupied_[w];
  }
  return -1;
}

bool Simulator::EventQueue::pop_next(Ps limit, Event* out) {
  for (;;) {
    std::vector<Event>& b = bucket(cursor_);
    if (drain_pos_ < b.size()) {
      if (cursor_ > limit) return false;
      *out = b[drain_pos_++];
      --wheel_size_;
      return true;
    }
    if (!b.empty()) {
      b.clear();
      const uint64_t idx = static_cast<uint64_t>(cursor_) & (kWheelSize - 1);
      occupied_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
    }
    drain_pos_ = 0;
    // Jump the cursor straight to the next event: the nearest occupied
    // wheel bucket, or the overflow head once the wheel is drained (the
    // overflow never holds anything earlier than the wheel).
    Ps next;
    if (wheel_size_ > 0) {
      next = next_occupied_after(cursor_);
      DESYN_ASSERT(next >= 0);
    } else if (!overflow_.empty()) {
      next = overflow_.top().time;
    } else {
      return false;
    }
    if (next > limit) {
      if (cursor_ < limit) {
        cursor_ = limit;
        // The clamp grew the horizon: pull newly covered overflow events
        // onto the wheel NOW, before any between-runs push at the same
        // picosecond could slip in ahead of them and break FIFO seq order.
        migrate();
      }
      return false;
    }
    cursor_ = next;
    migrate();
  }
}

Simulator::Simulator(const nl::Netlist& nl, const cell::Tech& tech)
    : nl_(nl), tech_(tech) {
  val_.assign(nl_.num_nets(), V::VX);
  last_change_.assign(nl_.num_nets(), -1);
  toggles_.assign(nl_.num_nets(), 0);
  version_.assign(nl_.num_nets(), 0);
  pending_.assign(nl_.num_nets(), 0);
  delay_.resize(nl_.num_cells(), 0);
  ram_state_.resize(nl_.num_cells());
  watchers_.resize(nl_.num_nets());
  clock_half_period_.assign(nl_.num_nets(), 0);
  for (CellId c : nl_.cells()) delay_[c.value()] = cell_delay(c);
  dff_setup_ = tech_.dff_setup();
  // Flatten each net's fanout into the DFF-clock fast path + the rest.
  ff_ck_off_.reserve(nl_.num_nets() + 1);
  fan_off_.reserve(nl_.num_nets() + 1);
  for (uint32_t n = 0; n < nl_.num_nets(); ++n) {
    ff_ck_off_.push_back(static_cast<uint32_t>(ff_ck_.size()));
    fan_off_.push_back(static_cast<uint32_t>(fan_pins_.size()));
    for (const Pin& p : nl_.net(NetId(n)).fanout) {
      const nl::CellData& cd = nl_.cell(p.cell);
      if (cd.kind == Kind::Dff && p.index == 1) {
        ff_ck_.push_back(
            FfCkPin{cd.ins[0], cd.outs[0], p.cell, delay_[p.cell.value()]});
      } else {
        fan_pins_.push_back(p);
      }
    }
  }
  ff_ck_off_.push_back(static_cast<uint32_t>(ff_ck_.size()));
  fan_off_.push_back(static_cast<uint32_t>(fan_pins_.size()));
  settle_initial_state();
}

Ps Simulator::cell_delay(CellId c) const {
  const nl::CellData& cd = nl_.cell(c);
  size_t fanout = 0;
  for (NetId o : cd.outs) fanout = std::max(fanout, nl_.net(o).fanout.size());
  return tech_.delay(cd.kind, static_cast<int>(cd.ins.size()),
                     static_cast<int>(fanout));
}

namespace {

/// Gathers current input values of a cell into `buf`.
void gather(const std::vector<V>& val, const nl::CellData& cd,
            std::vector<V>& buf) {
  buf.clear();
  for (NetId in : cd.ins) buf.push_back(val[in.value()]);
}

/// Decodes an address from bit nets (index 0 = LSB). Returns false on X.
bool decode_addr(const std::vector<V>& val, const std::vector<NetId>& ins,
                 size_t begin, size_t bits, uint64_t* addr) {
  uint64_t a = 0;
  for (size_t i = 0; i < bits; ++i) {
    V v = val[ins[begin + i].value()];
    if (v == V::VX) return false;
    if (v == V::V1) a |= (1ull << i);
  }
  *addr = a;
  return true;
}

}  // namespace

void Simulator::settle_initial_state() {
  // Reset state: storage and state-holding outputs take their init value;
  // RAM contents copy their payload.
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (cd.kind == Kind::Ram) {
      ram_state_[c.value()] = nl_.payload(cd.payload);
      continue;
    }
    if (cell::is_storage(cd.kind) || cell::is_state_holding(cd.kind)) {
      for (NetId o : cd.outs) val_[o.value()] = cd.init;
    }
  }
  // Combinational settle in topological order (zero time).
  std::vector<V> buf;
  for (CellId c : nl::topo_order(nl_)) {
    const nl::CellData& cd = nl_.cell(c);
    if (cell::is_combinational(cd.kind) && cd.kind != Kind::Rom) {
      gather(val_, cd, buf);
      val_[cd.outs[0].value()] = cell::eval_comb(cd.kind, buf);
    } else if (cd.kind == Kind::Rom || cd.kind == Kind::Ram) {
      size_t ra_begin = cd.kind == Kind::Rom ? 0 : size_t{2} + cd.p0 + cd.p1;
      uint64_t addr = 0;
      bool known = decode_addr(val_, cd.ins, ra_begin, cd.p0, &addr);
      const auto& mem = cd.kind == Kind::Rom ? nl_.payload(cd.payload)
                                             : ram_state_[c.value()];
      for (size_t b = 0; b < cd.outs.size(); ++b) {
        val_[cd.outs[b].value()] =
            known ? cell::from_bool((mem[addr] >> b) & 1) : V::VX;
      }
    }
  }
  // Kick state elements whose settled inputs already disagree with their
  // reset output (transparent latches, enabled C-elements). This models the
  // release of reset: the circuit starts moving on its own.
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (cell::is_latch(cd.kind)) {
      V t = cd.kind == Kind::Latch ? V::V1 : V::V0;
      if (val_[cd.ins[1].value()] == t) {
        V d = val_[cd.ins[0].value()];
        if (d != val_[cd.outs[0].value()]) {
          schedule(cd.outs[0], d, delay_[c.value()]);
        }
      }
    } else if (cell::is_state_holding(cd.kind)) {
      gather(val_, cd, buf);
      V nv = cell::eval_state_holding(cd.kind, buf, val_[cd.outs[0].value()]);
      if (nv != val_[cd.outs[0].value()]) {
        schedule(cd.outs[0], nv, delay_[c.value()]);
      }
    }
  }
}

void Simulator::schedule(NetId net, V v, Ps at) {
  // No-op evaluations with nothing in flight need no event.
  if (v == val_[net.value()] && !pending_[net.value()]) return;
  // Inertial: a newer decision for the same net supersedes pending ones.
  ++version_[net.value()];
  pending_[net.value()] = 1;
  queue_.push(Event{at, seq_++, net, v, version_[net.value()]});
}

void Simulator::set_input(NetId net, V v, Ps at) {
  DESYN_ASSERT(nl_.is_primary_input(net), "set_input on non-input net ",
               nl_.net(net).name);
  DESYN_ASSERT(at >= now_);
  // Transport semantics: stimulus events do not cancel each other, so a
  // whole waveform can be scheduled up front. The event carries the version
  // current at *application* time; stimulus nets are never cell-driven, so
  // their version never advances.
  queue_.push(Event{at, seq_++, net, v, version_[net.value()]});
}

void Simulator::add_clock(NetId net, Ps period, Ps first_rise) {
  DESYN_ASSERT(period > 0 && period % 2 == 0, "clock period must be even");
  DESYN_ASSERT(nl_.is_primary_input(net));
  set_input(net, V::V0, now_);
  set_input(net, V::V1, first_rise);
  clock_half_period_[net.value()] = period / 2;
}

void Simulator::watch(NetId net, Watcher w) {
  watchers_[net.value()].push_back(std::move(w));
}

void Simulator::clear_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  window_start_ = now_;
}

uint64_t Simulator::ram_word(CellId ram, uint64_t addr) const {
  const auto& mem = ram_state_[ram.value()];
  DESYN_ASSERT(addr < mem.size());
  return mem[addr];
}

void Simulator::run_until(Ps t) {
  Event ev;
  while (queue_.pop_next(t, &ev)) {
    DESYN_ASSERT(ev.time >= now_);
    now_ = ev.time;
    apply(ev);
  }
  now_ = std::max(now_, t);
}

bool Simulator::run_until_quiet(Ps max_t) {
  Event ev;
  while (queue_.pop_next(max_t, &ev)) {
    now_ = ev.time;
    apply(ev);
  }
  if (queue_.empty()) return true;
  now_ = max_t;
  return false;
}

void Simulator::apply(const Event& ev) {
  ++events_processed_;
  if (ev.version != version_[ev.net.value()]) return;  // superseded
  pending_[ev.net.value()] = 0;
  V oldv = val_[ev.net.value()];
  if (ev.value == oldv) return;
  val_[ev.net.value()] = ev.value;
  last_change_[ev.net.value()] = ev.time;
  if (oldv != V::VX && ev.value != V::VX) ++toggles_[ev.net.value()];

  // Self-sustaining clocks reschedule their own next toggle. The initial
  // X->0 reset assignment does not count as an edge.
  if (Ps hp = clock_half_period_[ev.net.value()];
      hp > 0 && ev.value != V::VX && oldv != V::VX) {
    V nxt = ev.value == V::V1 ? V::V0 : V::V1;
    queue_.push(
        Event{ev.time + hp, seq_++, ev.net, nxt, version_[ev.net.value()]});
  }

  for (const Watcher& w : watchers_[ev.net.value()]) w(ev.time, ev.value);

  const uint32_t ni = ev.net.value();
  // Rising edge: clocked flip-flops capture D (setup-checked) — the
  // flattened fast path. Falling edges skip the whole flip-flop fanout.
  if (oldv == V::V0 && ev.value == V::V1) {
    const uint32_t end = ff_ck_off_[ni + 1];
    for (uint32_t i = ff_ck_off_[ni]; i < end; ++i) {
      const FfCkPin& ff = ff_ck_[i];
      const Ps lc = last_change_[ff.d.value()];
      if (lc >= 0) {
        const Ps slack = (ev.time - lc) - dff_setup_;
        if (slack < 0) {
          ++violation_count_;
          if (violations_.size() < kMaxRecordedViolations) {
            violations_.push_back(
                SetupViolation{ev.time, ff.cell, ff.d, slack});
          }
        }
      }
      schedule(ff.q, val_[ff.d.value()], ev.time + ff.delay);
    }
  }
  const uint32_t end = fan_off_[ni + 1];
  for (uint32_t i = fan_off_[ni]; i < end; ++i) {
    evaluate_pin(fan_pins_[i], oldv);
  }
}

void Simulator::check_setup(CellId c, Ps edge_time) {
  const nl::CellData& cd = nl_.cell(c);
  // DFF capture edges are setup-checked inline by apply()'s fast path;
  // this generic path covers the latch closing edge and the RAM clock.
  Ps setup = cell::is_latch(cd.kind) ? tech_.latch_setup() : tech_.dff_setup();
  size_t lo = 0, hi = 0;
  switch (cd.kind) {
    case Kind::Latch:
    case Kind::LatchN:
      lo = 0;
      hi = 1;
      break;
    case Kind::Ram:
      lo = 1;
      hi = size_t{2} + cd.p0 + cd.p1;
      break;
    default:
      return;
  }
  for (size_t i = lo; i < hi; ++i) {
    Ps lc = last_change_[cd.ins[i].value()];
    if (lc < 0) continue;
    Ps slack = (edge_time - lc) - setup;
    if (slack < 0) {
      ++violation_count_;
      if (violations_.size() < kMaxRecordedViolations) {
        violations_.push_back(SetupViolation{edge_time, c, cd.ins[i], slack});
      }
    }
  }
}

void Simulator::evaluate_pin(Pin p, V oldv) {
  const nl::CellData& cd = nl_.cell(p.cell);
  const Ps d = delay_[p.cell.value()];
  switch (cd.kind) {
    case Kind::Dff:
      // Only the D pin (index 0) is routed here, and D changes alone never
      // act; clock pins take the flattened ff_ck_ fast path in apply().
      return;
    case Kind::Latch:
    case Kind::LatchN: {
      const V t = cd.kind == Kind::Latch ? V::V1 : V::V0;
      const V en = val_[cd.ins[1].value()];
      if (p.index == 1) {  // EN edge
        if (en == t) {
          schedule(cd.outs[0], val_[cd.ins[0].value()], now_ + d);
        } else if (oldv == t) {
          check_setup(p.cell, now_);  // closing edge captures
        }
      } else if (p.index == 0 && en == t) {  // D moves while transparent
        schedule(cd.outs[0], val_[cd.ins[0].value()], now_ + d);
      }
      return;
    }
    case Kind::Ram: {
      const size_t ra_begin = size_t{2} + cd.p0 + cd.p1;
      bool read_dirty = p.index >= ra_begin;
      if (p.index == 0) {  // CK
        V nv = val_[cd.ins[0].value()];
        if (oldv == V::V0 && nv == V::V1) {
          check_setup(p.cell, now_);
          if (val_[cd.ins[1].value()] == V::V1) {  // WE
            uint64_t wa = 0;
            if (decode_addr(val_, cd.ins, 2, cd.p0, &wa)) {
              uint64_t word = 0;
              bool known = true;
              for (size_t b = 0; b < cd.p1; ++b) {
                V v = val_[cd.ins[2 + cd.p0 + b].value()];
                if (v == V::VX) known = false;
                if (v == V::V1) word |= (1ull << b);
              }
              if (known) {
                ram_state_[p.cell.value()][wa] = word;
                read_dirty = true;  // write-through visibility
              }
            }
          }
        }
      }
      if (read_dirty) {
        uint64_t ra = 0;
        bool known = decode_addr(val_, cd.ins, ra_begin, cd.p0, &ra);
        const auto& mem = ram_state_[p.cell.value()];
        for (size_t b = 0; b < cd.outs.size(); ++b) {
          V v = known ? cell::from_bool((mem[ra] >> b) & 1) : V::VX;
          schedule(cd.outs[b], v, now_ + d);
        }
      }
      return;
    }
    case Kind::Rom: {
      uint64_t a = 0;
      bool known = decode_addr(val_, cd.ins, 0, cd.p0, &a);
      const auto& mem = nl_.payload(cd.payload);
      for (size_t b = 0; b < cd.outs.size(); ++b) {
        V v = known ? cell::from_bool((mem[a] >> b) & 1) : V::VX;
        schedule(cd.outs[b], v, now_ + d);
      }
      return;
    }
    case Kind::CElem:
    case Kind::Gc: {
      gather(val_, cd, eval_buf_);
      V nv = cell::eval_state_holding(cd.kind, eval_buf_,
                                      val_[cd.outs[0].value()]);
      schedule(cd.outs[0], nv, now_ + d);
      return;
    }
    default: {
      gather(val_, cd, eval_buf_);
      schedule(cd.outs[0], cell::eval_comb(cd.kind, eval_buf_), now_ + d);
      return;
    }
  }
}

}  // namespace desyn::sim

namespace desyn::sim {

uint64_t read_word(const Simulator& sim, std::span<const nl::NetId> bus,
                   bool* has_x) {
  uint64_t v = 0;
  bool x = false;
  for (size_t i = 0; i < bus.size(); ++i) {
    V bit = sim.value(bus[i]);
    if (bit == V::V1) v |= (1ull << i);
    if (bit == V::VX) x = true;
  }
  if (has_x) *has_x = x;
  return v;
}

void poke_word(Simulator& sim, std::span<const nl::NetId> bus, uint64_t value,
               Ps at) {
  for (size_t i = 0; i < bus.size(); ++i) {
    sim.set_input(bus[i], (value >> i) & 1 ? V::V1 : V::V0, at);
  }
}

}  // namespace desyn::sim
