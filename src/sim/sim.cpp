#include "sim/sim.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "netlist/query.h"

namespace desyn::sim {

using cell::Kind;
using nl::CellId;
using nl::NetId;
using nl::Pin;

// ---------------------------------------------------------------------------
// EventQueue

void Simulator::EventQueue::push(const Event& ev) {
  // The cursor never passes an undrained time and never exceeds the
  // simulation's `now_`, so a (time >= now) push is always reachable.
  DESYN_ASSERT(ev.time >= cursor_, "event scheduled in the past");
  if (ev.time >= cursor_ + static_cast<Ps>(wheel_.size())) {
    overflow_.push(ev);
  } else {
    const uint64_t idx = static_cast<uint64_t>(ev.time) & mask_;
    occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
    wheel_[idx].push_back(ev);
    ++wheel_size_;
  }
}

void Simulator::EventQueue::migrate() {
  const Ps horizon = cursor_ + static_cast<Ps>(wheel_.size());
  while (!overflow_.empty() && overflow_.top().time < horizon) {
    Event ev = overflow_.top();
    overflow_.pop();
    const uint64_t idx = static_cast<uint64_t>(ev.time) & mask_;
    occupied_[idx >> 6] |= uint64_t{1} << (idx & 63);
    wheel_[idx].push_back(ev);
    ++wheel_size_;
  }
}

Ps Simulator::EventQueue::next_occupied_after(Ps t) const {
  const size_t words = occupied_.size();
  const uint64_t start = (static_cast<uint64_t>(t) + 1) & mask_;
  uint64_t w = start >> 6;
  uint64_t word = occupied_[w] & (~uint64_t{0} << (start & 63));
  // <= words iterations: the wrapped-around first word re-checks only the
  // bits below `start`, which map to the far end of the window.
  for (size_t i = 0; i <= words; ++i) {
    if (word != 0) {
      const uint64_t idx =
          (w << 6) + static_cast<uint64_t>(std::countr_zero(word));
      const uint64_t off = (idx - static_cast<uint64_t>(t)) & mask_;
      return t + static_cast<Ps>(off);
    }
    w = (w + 1) & (words - 1);
    word = occupied_[w];
  }
  return -1;
}

Ps Simulator::EventQueue::next_event_time() const {
  if (drain_pos_ < bucket(cursor_).size()) return cursor_;
  if (wheel_size_ > 0) {
    const Ps next = next_occupied_after(cursor_);
    DESYN_ASSERT(next >= 0);
    return next;
  }
  if (!overflow_.empty()) return overflow_.top().time;
  return -1;
}

bool Simulator::EventQueue::pop_next(Ps limit, Event* out) {
  for (;;) {
    std::vector<Event>& b = bucket(cursor_);
    if (drain_pos_ < b.size()) {
      if (cursor_ > limit) return false;
      *out = b[drain_pos_++];
      --wheel_size_;
      return true;
    }
    if (!b.empty()) {
      b.clear();
      const uint64_t idx = static_cast<uint64_t>(cursor_) & mask_;
      occupied_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
    }
    drain_pos_ = 0;
    // Jump the cursor straight to the next event: the nearest occupied
    // wheel bucket, or the overflow head once the wheel is drained (the
    // overflow never holds anything earlier than the wheel).
    Ps next;
    if (wheel_size_ > 0) {
      next = next_occupied_after(cursor_);
      DESYN_ASSERT(next >= 0);
    } else if (!overflow_.empty()) {
      next = overflow_.top().time;
    } else {
      return false;
    }
    if (next > limit) {
      if (cursor_ < limit) {
        cursor_ = limit;
        // The clamp grew the horizon: pull newly covered overflow events
        // onto the wheel NOW, before any between-runs push at the same
        // picosecond could slip in ahead of them and break FIFO seq order.
        migrate();
      }
      return false;
    }
    cursor_ = next;
    migrate();
  }
}

// ---------------------------------------------------------------------------
// Pool: a persistent worker pool with a spin-then-park barrier. The
// coordinator publishes a (phase, domain list) work unit by bumping
// `epoch_`; workers watch the epoch, pull domain indices from a shared
// atomic counter, and count themselves done once the counter runs out. The
// coordinator participates in the pull loop and then waits until every
// worker has checked in — that release/acquire pairing (reinforced by the
// barrier mutex) is what orders one phase's owner-disjoint writes before
// the next phase's cross-domain reads.
//
// Waiting is hybrid: a bounded busy spin (fast path on multicore, where a
// phase completes within the spin window and no syscall is ever made)
// followed by parking on a condition variable. The parking path is what
// keeps oversubscribed machines sane — with more threads than cores a pure
// spin barrier degrades to scheduler-timeslice ping-pong (observed: three
// orders of magnitude slowdown on a single-core container), while parked
// threads hand the core over in a few context switches. When the hardware
// cannot run all pool threads at once the spin window is skipped entirely.

namespace {
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

class Simulator::Pool {
 public:
  Pool(Simulator* sim, int workers) : sim_(sim) {
    const unsigned cores = std::thread::hardware_concurrency();
    spin_limit_ = cores > static_cast<unsigned>(workers) ? 1 << 12 : 0;
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }
  ~Pool() {
    stop_.store(true, std::memory_order_release);
    publish_epoch();
    for (std::thread& t : threads_) t.join();
  }
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  void run(Phase phase, const std::vector<uint32_t>& domains) {
    items_ = &domains;
    phase_ = phase;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    publish_epoch();
    pull();
    const uint32_t n = static_cast<uint32_t>(threads_.size());
    for (int spins = 0; done_.load(std::memory_order_acquire) != n;) {
      if (++spins < spin_limit_) {
        cpu_pause();
        continue;
      }
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return done_.load(std::memory_order_acquire) == n;
      });
      break;
    }
  }

 private:
  /// Bump the epoch inside the barrier mutex: a worker's park predicate
  /// runs under the same mutex, so it cannot read a stale epoch and then
  /// block past the wake-up (the classic lost-notify race).
  void publish_epoch() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
  }

  void pull() {
    const std::vector<uint32_t>& items = *items_;
    for (;;) {
      const uint32_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) break;
      sim_->phase_work(phase_, items[i]);
    }
  }
  void worker() {
    uint64_t seen = 0;
    for (;;) {
      uint64_t e = 0;
      for (int spins = 0;
           (e = epoch_.load(std::memory_order_acquire)) == seen;) {
        if (++spins < spin_limit_) {
          cpu_pause();
          continue;
        }
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return (e = epoch_.load(std::memory_order_acquire)) != seen;
        });
        break;
      }
      seen = e;
      if (stop_.load(std::memory_order_acquire)) return;
      pull();
      if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          threads_.size()) {
        // The empty critical section pairs with the coordinator's park
        // predicate: either it has not blocked yet (and the predicate,
        // evaluated after our unlock, sees the final count) or the notify
        // wakes it.
        { std::lock_guard<std::mutex> lock(mu_); }
        done_cv_.notify_one();
      }
    }
  }

  Simulator* sim_;
  const std::vector<uint32_t>* items_ = nullptr;
  Phase phase_ = kCommit;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> done_{0};
  std::atomic<bool> stop_{false};
  int spin_limit_ = 0;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// Construction

Simulator::Simulator(const nl::Netlist& nl, const cell::Tech& tech)
    : Simulator(nl, tech, SimOptions{}) {}

Simulator::Simulator(const nl::Netlist& nl, const cell::Tech& tech,
                     SimOptions opt)
    : nl_(nl), tech_(tech) {
  jobs_ = std::max(1, opt.jobs);
  const uint32_t nd = std::max<uint32_t>(1, opt.domains.num_domains);
  cell_dom_ = std::move(opt.domains.cell_domain);
  cell_dom_.resize(nl_.num_cells(), 0);
  for (uint32_t d : cell_dom_) {
    DESYN_ASSERT(d < nd, "cell domain out of range");
  }

  val_.assign(nl_.num_nets(), V::VX);
  last_change_.assign(nl_.num_nets(), -1);
  toggles_.assign(nl_.num_nets(), 0);
  version_.assign(nl_.num_nets(), 0);
  pending_.assign(nl_.num_nets(), 0);
  delay_.resize(nl_.num_cells(), 0);
  ram_state_.resize(nl_.num_cells());
  watchers_.resize(nl_.num_nets());
  clock_half_period_.assign(nl_.num_nets(), 0);
  for (CellId c : nl_.cells()) delay_[c.value()] = cell_delay(c);
  dff_setup_ = tech_.dff_setup();

  // Net ownership: the driver cell's domain; driverless nets (primary
  // inputs) go to their first reader so their stimulus drains next to its
  // consumers. Nets with neither stay in domain 0.
  net_dom_.assign(nl_.num_nets(), nd);  // nd = "unowned" sentinel
  for (CellId c : nl_.cells()) {
    for (NetId o : nl_.cell(c).outs) net_dom_[o.value()] = cell_dom_[c.value()];
  }
  for (uint32_t n = 0; n < nl_.num_nets(); ++n) {
    if (net_dom_[n] != nd) continue;
    const auto& fanout = nl_.net(NetId(n)).fanout;
    net_dom_[n] = fanout.empty() ? 0 : cell_dom_[fanout.front().cell.value()];
  }

  // Many-domain simulators get a smaller wheel per domain: a bank-pair
  // domain sees only its own traffic, and 1025 x 1024-bucket wheels would
  // dominate the footprint. Events past the horizon ride the overflow heap.
  const size_t wheel = nd <= 8 ? size_t{1} << 10 : size_t{1} << 8;
  dom_.reserve(nd);
  for (uint32_t d = 0; d < nd; ++d) dom_.emplace_back(wheel);
  dom_flag_.assign(nd, 0);

  // Flatten each net's fanout into the DFF-clock fast path + the rest,
  // grouped by reader domain so the evaluate phase can hand each domain
  // exactly its slice.
  range_off_.reserve(nl_.num_nets() + 1);
  ranges_.reserve(nl_.num_nets());
  {
    size_t pins = 0;
    for (uint32_t n = 0; n < nl_.num_nets(); ++n) {
      pins += nl_.net(NetId(n)).fanout.size();
    }
    fan_pins_.reserve(pins);
  }
  std::vector<std::pair<uint32_t, FfCkPin>> ffs;
  std::vector<std::pair<uint32_t, Pin>> fans;
  for (uint32_t n = 0; n < nl_.num_nets(); ++n) {
    range_off_.push_back(static_cast<uint32_t>(ranges_.size()));
    const auto& fanout = nl_.net(NetId(n)).fanout;
    if (fanout.empty()) continue;

    // Common case — the whole fanout reads in one domain (every net of a
    // single-domain map, and every interior net of a sharded one): emit
    // the slice straight from the fanout list, no grouping pass. The
    // slice order matches the general path below (stable by fanout
    // position), so the flattened tables are identical either way.
    uint32_t d0 = cell_dom_[fanout.front().cell.value()];
    bool uniform = true;
    if (nd > 1) {
      for (const Pin& p : fanout) {
        if (cell_dom_[p.cell.value()] != d0) {
          uniform = false;
          break;
        }
      }
    }
    if (uniform) {
      NetRange r{};
      r.dom = d0;
      r.ff_begin = static_cast<uint32_t>(ff_ck_.size());
      r.fan_begin = static_cast<uint32_t>(fan_pins_.size());
      for (const Pin& p : fanout) {
        const nl::CellData& cd = nl_.cell(p.cell);
        if (cd.kind == Kind::Dff && p.index == 1) {
          ff_ck_.push_back(FfCkPin{cd.ins[0], cd.outs[0], p.cell,
                                   delay_[p.cell.value()]});
        } else {
          fan_pins_.push_back(p);
        }
      }
      r.ff_end = static_cast<uint32_t>(ff_ck_.size());
      r.fan_end = static_cast<uint32_t>(fan_pins_.size());
      ranges_.push_back(r);
      continue;
    }

    ffs.clear();
    fans.clear();
    for (const Pin& p : fanout) {
      const nl::CellData& cd = nl_.cell(p.cell);
      const uint32_t d = cell_dom_[p.cell.value()];
      if (cd.kind == Kind::Dff && p.index == 1) {
        ffs.emplace_back(d, FfCkPin{cd.ins[0], cd.outs[0], p.cell,
                                    delay_[p.cell.value()]});
      } else {
        fans.emplace_back(d, p);
      }
    }
    std::stable_sort(ffs.begin(), ffs.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::stable_sort(fans.begin(), fans.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    size_t fi = 0, pi = 0;
    while (fi < ffs.size() || pi < fans.size()) {
      uint32_t d = ~uint32_t{0};
      if (fi < ffs.size()) d = ffs[fi].first;
      if (pi < fans.size()) d = std::min(d, fans[pi].first);
      NetRange r{};
      r.dom = d;
      r.ff_begin = static_cast<uint32_t>(ff_ck_.size());
      for (; fi < ffs.size() && ffs[fi].first == d; ++fi) {
        ff_ck_.push_back(ffs[fi].second);
      }
      r.ff_end = static_cast<uint32_t>(ff_ck_.size());
      r.fan_begin = static_cast<uint32_t>(fan_pins_.size());
      for (; pi < fans.size() && fans[pi].first == d; ++pi) {
        fan_pins_.push_back(fans[pi].second);
      }
      r.fan_end = static_cast<uint32_t>(fan_pins_.size());
      ranges_.push_back(r);
    }
  }
  range_off_.push_back(static_cast<uint32_t>(ranges_.size()));

  settle_initial_state();
}

Simulator::~Simulator() = default;

Ps Simulator::cell_delay(CellId c) const {
  const nl::CellData& cd = nl_.cell(c);
  size_t fanout = 0;
  for (NetId o : cd.outs) fanout = std::max(fanout, nl_.net(o).fanout.size());
  return tech_.delay(cd.kind, static_cast<int>(cd.ins.size()),
                     static_cast<int>(fanout));
}

namespace {

/// Gathers current input values of a cell into `buf`.
void gather(const std::vector<V>& val, const nl::CellData& cd,
            std::vector<V>& buf) {
  buf.clear();
  for (NetId in : cd.ins) buf.push_back(val[in.value()]);
}

/// Decodes an address from bit nets (index 0 = LSB). Returns false on X.
bool decode_addr(const std::vector<V>& val, const std::vector<NetId>& ins,
                 size_t begin, size_t bits, uint64_t* addr) {
  uint64_t a = 0;
  for (size_t i = 0; i < bits; ++i) {
    V v = val[ins[begin + i].value()];
    if (v == V::VX) return false;
    if (v == V::V1) a |= (1ull << i);
  }
  *addr = a;
  return true;
}

}  // namespace

void Simulator::settle_initial_state() {
  // Reset state: storage and state-holding outputs take their init value;
  // RAM contents copy their payload.
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (cd.kind == Kind::Ram) {
      ram_state_[c.value()] = nl_.payload(cd.payload);
      continue;
    }
    if (cell::is_storage(cd.kind) || cell::is_state_holding(cd.kind)) {
      for (NetId o : cd.outs) val_[o.value()] = cd.init;
    }
  }
  // Combinational settle in topological order (zero time).
  std::vector<V> buf;
  for (CellId c : nl::topo_order(nl_)) {
    const nl::CellData& cd = nl_.cell(c);
    if (cell::is_combinational(cd.kind) && cd.kind != Kind::Rom) {
      gather(val_, cd, buf);
      val_[cd.outs[0].value()] = cell::eval_comb(cd.kind, buf);
    } else if (cd.kind == Kind::Rom || cd.kind == Kind::Ram) {
      size_t ra_begin = cd.kind == Kind::Rom ? 0 : size_t{2} + cd.p0 + cd.p1;
      uint64_t addr = 0;
      bool known = decode_addr(val_, cd.ins, ra_begin, cd.p0, &addr);
      const auto& mem = cd.kind == Kind::Rom ? nl_.payload(cd.payload)
                                             : ram_state_[c.value()];
      for (size_t b = 0; b < cd.outs.size(); ++b) {
        val_[cd.outs[b].value()] =
            known ? cell::from_bool((mem[addr] >> b) & 1) : V::VX;
      }
    }
  }
  // Kick state elements whose settled inputs already disagree with their
  // reset output (transparent latches, enabled C-elements). This models the
  // release of reset: the circuit starts moving on its own.
  for (CellId c : nl_.cells()) {
    const nl::CellData& cd = nl_.cell(c);
    if (cell::is_latch(cd.kind)) {
      V t = cd.kind == Kind::Latch ? V::V1 : V::V0;
      if (val_[cd.ins[1].value()] == t) {
        V d = val_[cd.ins[0].value()];
        if (d != val_[cd.outs[0].value()]) {
          schedule(net_dom_[cd.outs[0].value()], cd.outs[0], d,
                   delay_[c.value()]);
        }
      }
    } else if (cell::is_state_holding(cd.kind)) {
      gather(val_, cd, buf);
      V nv = cell::eval_state_holding(cd.kind, buf, val_[cd.outs[0].value()]);
      if (nv != val_[cd.outs[0].value()]) {
        schedule(net_dom_[cd.outs[0].value()], cd.outs[0], nv,
                 delay_[c.value()]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stimulus and observation

void Simulator::schedule(uint32_t d, NetId net, V v, Ps at) {
  const uint32_t ni = net.value();
  DESYN_ASSERT(net_dom_[ni] == d, "cross-domain schedule on net ",
               nl_.net(net).name);
  // No-op evaluations with nothing in flight need no event.
  if (v == val_[ni] && !pending_[ni]) return;
  // Inertial: a newer decision for the same net supersedes pending ones.
  ++version_[ni];
  pending_[ni] = 1;
  Domain& dm = dom_[d];
  dm.q.push(Event{at, dm.seq++, net, v, version_[ni]});
}

void Simulator::set_input(NetId net, V v, Ps at) {
  DESYN_ASSERT(nl_.is_primary_input(net), "set_input on non-input net ",
               nl_.net(net).name);
  DESYN_ASSERT(at >= now_);
  // Transport semantics: stimulus events do not cancel each other, so a
  // whole waveform can be scheduled up front. The event carries the version
  // current at *application* time; stimulus nets are never cell-driven, so
  // their version never advances.
  const uint32_t d = net_dom_[net.value()];
  Domain& dm = dom_[d];
  dm.q.push(Event{at, dm.seq++, net, v, version_[net.value()]});
  if (in_watch_) {
    wdirty_.push_back(d);
  } else if (heap_init_) {
    head_heap_.push({at, d});
  }
}

void Simulator::add_clock(NetId net, Ps period, Ps first_rise) {
  DESYN_ASSERT(period > 0 && period % 2 == 0, "clock period must be even");
  DESYN_ASSERT(nl_.is_primary_input(net));
  set_input(net, V::V0, now_);
  set_input(net, V::V1, first_rise);
  clock_half_period_[net.value()] = period / 2;
}

void Simulator::watch(NetId net, Watcher w) {
  watchers_[net.value()].push_back(std::move(w));
}

void Simulator::clear_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  window_start_ = now_;
}

uint64_t Simulator::ram_word(CellId ram, uint64_t addr) const {
  const auto& mem = ram_state_[ram.value()];
  DESYN_ASSERT(addr < mem.size());
  return mem[addr];
}

uint64_t Simulator::events_processed() const {
  uint64_t total = 0;
  for (const Domain& dm : dom_) total += dm.events;
  return total;
}

// ---------------------------------------------------------------------------
// Execution

void Simulator::ensure_heap() {
  if (heap_init_) return;
  heap_init_ = true;
  for (uint32_t d = 0; d < dom_.size(); ++d) {
    const Ps t = dom_[d].q.next_event_time();
    if (t >= 0) head_heap_.push({t, d});
  }
}

Ps Simulator::next_global_time() {
  while (!head_heap_.empty()) {
    const auto [t, d] = head_heap_.top();
    const Ps actual = dom_[d].q.next_event_time();
    if (actual == t) return t;
    head_heap_.pop();
    if (actual >= 0) head_heap_.push({actual, d});
  }
  return -1;
}

void Simulator::collect_active(Ps t) {
  active_.clear();
  while (!head_heap_.empty() && head_heap_.top().first == t) {
    const uint32_t d = head_heap_.top().second;
    head_heap_.pop();
    if (dom_flag_[d]) continue;
    const Ps actual = dom_[d].q.next_event_time();
    if (actual == t) {
      dom_flag_[d] = 1;
      active_.push_back(d);
    } else if (actual >= 0) {
      head_heap_.push({actual, d});
    }
  }
  for (uint32_t d : active_) dom_flag_[d] = 0;
  std::sort(active_.begin(), active_.end());
}

void Simulator::run_phase(Phase phase, const std::vector<uint32_t>& domains) {
  if (domains.size() > 1 && jobs_ > 1) {
    if (!pool_) {
      pool_ = std::make_unique<Pool>(this, jobs_ - 1);
    }
    ++parallel_phases_;
    pool_->run(phase, domains);
    return;
  }
  for (uint32_t d : domains) phase_work(phase, d);
}

void Simulator::phase_work(Phase phase, uint32_t d) {
  if (phase == kCommit) {
    commit_domain(d, round_time_);
  } else {
    evaluate_domain(d, round_time_);
  }
}

void Simulator::commit_domain(uint32_t d, Ps t) {
  Domain& dm = dom_[d];
  Event ev;
  while (dm.q.pop_next(t, &ev)) {
    DESYN_ASSERT(ev.time == t);
    ++dm.events;
    const uint32_t ni = ev.net.value();
    if (ev.version != version_[ni]) continue;  // superseded
    pending_[ni] = 0;
    const V oldv = val_[ni];
    if (ev.value == oldv) continue;
    val_[ni] = ev.value;
    last_change_[ni] = t;
    if (oldv != V::VX && ev.value != V::VX) ++toggles_[ni];
    // Self-sustaining clocks reschedule their own next toggle. The initial
    // X->0 reset assignment does not count as an edge.
    if (Ps hp = clock_half_period_[ni];
        hp > 0 && ev.value != V::VX && oldv != V::VX) {
      const V nxt = ev.value == V::V1 ? V::V0 : V::V1;
      dm.q.push(Event{t + hp, dm.seq++, ev.net, nxt, version_[ni]});
    }
    dm.changes.push_back(Change{ev.net, oldv, ev.value});
  }
}

void Simulator::evaluate_range(const NetRange& r, const Change& ch, Ps t,
                               Domain& dm, uint32_t d) {
  // Rising edge: clocked flip-flops capture D (setup-checked) — the
  // flattened fast path. Falling edges skip the whole flip-flop fanout.
  if (ch.oldv == V::V0 && ch.newv == V::V1) {
    for (uint32_t i = r.ff_begin; i < r.ff_end; ++i) {
      const FfCkPin& ff = ff_ck_[i];
      const Ps lc = last_change_[ff.d.value()];
      if (lc >= 0) {
        const Ps slack = (t - lc) - dff_setup_;
        if (slack < 0) {
          record_violation(dm, SetupViolation{t, ff.cell, ff.d, slack});
        }
      }
      schedule(d, ff.q, val_[ff.d.value()], t + ff.delay);
    }
  }
  for (uint32_t i = r.fan_begin; i < r.fan_end; ++i) {
    evaluate_pin(fan_pins_[i], ch.oldv, t, dm, d);
  }
}

void Simulator::evaluate_domain(uint32_t d, Ps t) {
  Domain& dm = dom_[d];
  for (const WorkItem& w : dm.work) {
    evaluate_range(ranges_[w.range], merged_[w.change], t, dm, d);
  }
}

void Simulator::record_violation(Domain& dm, const SetupViolation& v) {
  ++dm.viol_count;
  if (dm.viol.size() < kMaxRecordedViolations) dm.viol.push_back(v);
}

// Single-domain round: with one queue, commit order IS the canonical
// merge order, every change routes to at most one range, and no other
// domain can be touched — the generic sub-round machinery (merge buffer,
// work-item routing, active/touched bookkeeping) collapses to a
// pop-commit-evaluate loop with identical observables. This is the
// default engine for plain `Simulator(nl, tech)` construction, so it
// must not pay for sharding it doesn't use.
void Simulator::round_at_single(Ps t) {
  Domain& dm = dom_[0];
  while (dm.q.next_event_time() == t) {
    commit_domain(0, t);
    wdirty_.clear();  // entries can only name domain 0; the loop re-checks
    in_watch_ = true;
    for (const Change& ch : dm.changes) {
      for (const Watcher& w : watchers_[ch.net.value()]) w(t, ch.newv);
    }
    in_watch_ = false;
    for (const Change& ch : dm.changes) {
      const uint32_t ni = ch.net.value();
      for (uint32_t r = range_off_[ni]; r < range_off_[ni + 1]; ++r) {
        evaluate_range(ranges_[r], ch, t, dm, 0);
      }
    }
    dm.changes.clear();
    for (const SetupViolation& v : dm.viol) {
      if (violations_.size() < kMaxRecordedViolations) {
        violations_.push_back(v);
      }
    }
    violation_count_ += dm.viol_count;
    dm.viol.clear();
    dm.viol_count = 0;
  }
  const Ps nt = dm.q.next_event_time();
  if (nt >= 0) head_heap_.push({nt, 0});
}

void Simulator::round_at(Ps t) {
  round_time_ = t;
  if (dom_.size() == 1) {
    round_at_single(t);
    return;
  }
  while (!active_.empty()) {
    // Commit phase: active domains drain their queues at `t` in parallel;
    // every write is to owner state only.
    run_phase(kCommit, active_);

    // Merge: canonical (domain id, commit order) change order. Watchers
    // fire here, single-threaded, and may inject same-time stimulus.
    merged_.clear();
    touched_.clear();
    wdirty_.clear();
    for (uint32_t d : active_) {
      Domain& dm = dom_[d];
      merged_.insert(merged_.end(), dm.changes.begin(), dm.changes.end());
      dm.changes.clear();
    }
    in_watch_ = true;
    for (const Change& ch : merged_) {
      for (const Watcher& w : watchers_[ch.net.value()]) w(t, ch.newv);
    }
    in_watch_ = false;

    // Route each change to the reader domains of its net.
    for (uint32_t i = 0; i < merged_.size(); ++i) {
      const uint32_t ni = merged_[i].net.value();
      for (uint32_t r = range_off_[ni]; r < range_off_[ni + 1]; ++r) {
        const uint32_t d = ranges_[r].dom;
        if (!dom_flag_[d]) {
          dom_flag_[d] = 1;
          touched_.push_back(d);
        }
        dom_[d].work.push_back(WorkItem{i, r});
      }
    }
    for (uint32_t d : touched_) dom_flag_[d] = 0;
    std::sort(touched_.begin(), touched_.end());

    // Evaluate phase: touched domains re-evaluate their fanout slices in
    // parallel, reading committed values, scheduling only onto own nets.
    run_phase(kEvaluate, touched_);

    // Fold per-domain setup violations in canonical order.
    for (uint32_t d : touched_) {
      Domain& dm = dom_[d];
      for (const SetupViolation& v : dm.viol) {
        if (violations_.size() < kMaxRecordedViolations) {
          violations_.push_back(v);
        }
      }
      violation_count_ += dm.viol_count;
      dm.viol.clear();
      dm.viol_count = 0;
      dm.work.clear();
    }

    // Every queue touched this sub-round (and only those) may hold new
    // events: refresh the head heap and collect same-time continuations
    // (zero-delay cells, watcher-injected stimulus at `t`).
    scratch_.clear();
    auto consider = [&](uint32_t d) {
      if (!dom_flag_[d]) {
        dom_flag_[d] = 1;
        scratch_.push_back(d);
      }
    };
    for (uint32_t d : active_) consider(d);
    for (uint32_t d : touched_) consider(d);
    for (uint32_t d : wdirty_) consider(d);
    active_.clear();
    for (uint32_t d : scratch_) {
      dom_flag_[d] = 0;
      const Ps nt = dom_[d].q.next_event_time();
      if (nt == t) {
        active_.push_back(d);
      } else if (nt >= 0) {
        head_heap_.push({nt, d});
      }
    }
    std::sort(active_.begin(), active_.end());
  }
}

void Simulator::finish_run(Ps t) {
  // Clamp every queue's cursor to `t` (and migrate overflow) so later
  // pushes at the current simulation time stay FIFO-reachable, exactly as
  // the serial single-queue engine behaved.
  Event ev;
  for (Domain& dm : dom_) {
    const bool popped = dm.q.pop_next(t, &ev);
    DESYN_ASSERT(!popped, "events left behind the global clock");
  }
}

void Simulator::run_until(Ps t) {
  ensure_heap();
  for (;;) {
    const Ps next = next_global_time();
    if (next < 0 || next > t) break;
    DESYN_ASSERT(next >= now_);
    now_ = next;
    collect_active(next);
    round_at(next);
  }
  finish_run(t);
  now_ = std::max(now_, t);
}

bool Simulator::run_until_quiet(Ps max_t) {
  ensure_heap();
  for (;;) {
    const Ps next = next_global_time();
    if (next < 0) return true;  // quiesced; now_ rests at the last event
    if (next > max_t) break;
    DESYN_ASSERT(next >= now_);
    now_ = next;
    collect_active(next);
    round_at(next);
  }
  finish_run(max_t);
  now_ = max_t;
  return false;
}

// ---------------------------------------------------------------------------
// Cell evaluation

void Simulator::check_setup(CellId c, Ps edge_time, Domain& dm) {
  const nl::CellData& cd = nl_.cell(c);
  // DFF capture edges are setup-checked inline by the evaluate phase's fast
  // path; this generic path covers the latch closing edge and the RAM clock.
  Ps setup = cell::is_latch(cd.kind) ? tech_.latch_setup() : tech_.dff_setup();
  size_t lo = 0, hi = 0;
  switch (cd.kind) {
    case Kind::Latch:
    case Kind::LatchN:
      lo = 0;
      hi = 1;
      break;
    case Kind::Ram:
      lo = 1;
      hi = size_t{2} + cd.p0 + cd.p1;
      break;
    default:
      return;
  }
  for (size_t i = lo; i < hi; ++i) {
    Ps lc = last_change_[cd.ins[i].value()];
    if (lc < 0) continue;
    Ps slack = (edge_time - lc) - setup;
    if (slack < 0) {
      record_violation(dm, SetupViolation{edge_time, c, cd.ins[i], slack});
    }
  }
}

void Simulator::evaluate_pin(Pin p, V oldv, Ps t, Domain& dm, uint32_t d) {
  const nl::CellData& cd = nl_.cell(p.cell);
  const Ps delay = delay_[p.cell.value()];
  switch (cd.kind) {
    case Kind::Dff:
      // Only the D pin (index 0) is routed here, and D changes alone never
      // act; clock pins take the flattened fast path in evaluate_domain().
      return;
    case Kind::Latch:
    case Kind::LatchN: {
      const V tr = cd.kind == Kind::Latch ? V::V1 : V::V0;
      const V en = val_[cd.ins[1].value()];
      if (p.index == 1) {  // EN edge
        if (en == tr) {
          schedule(d, cd.outs[0], val_[cd.ins[0].value()], t + delay);
        } else if (oldv == tr) {
          check_setup(p.cell, t, dm);  // closing edge captures
        }
      } else if (p.index == 0 && en == tr) {  // D moves while transparent
        schedule(d, cd.outs[0], val_[cd.ins[0].value()], t + delay);
      }
      return;
    }
    case Kind::Ram: {
      const size_t ra_begin = size_t{2} + cd.p0 + cd.p1;
      bool read_dirty = p.index >= ra_begin;
      if (p.index == 0) {  // CK
        V nv = val_[cd.ins[0].value()];
        if (oldv == V::V0 && nv == V::V1) {
          check_setup(p.cell, t, dm);
          if (val_[cd.ins[1].value()] == V::V1) {  // WE
            uint64_t wa = 0;
            if (decode_addr(val_, cd.ins, 2, cd.p0, &wa)) {
              uint64_t word = 0;
              bool known = true;
              for (size_t b = 0; b < cd.p1; ++b) {
                V v = val_[cd.ins[2 + cd.p0 + b].value()];
                if (v == V::VX) known = false;
                if (v == V::V1) word |= (1ull << b);
              }
              if (known) {
                ram_state_[p.cell.value()][wa] = word;
                read_dirty = true;  // write-through visibility
              }
            }
          }
        }
      }
      if (read_dirty) {
        uint64_t ra = 0;
        bool known = decode_addr(val_, cd.ins, ra_begin, cd.p0, &ra);
        const auto& mem = ram_state_[p.cell.value()];
        for (size_t b = 0; b < cd.outs.size(); ++b) {
          V v = known ? cell::from_bool((mem[ra] >> b) & 1) : V::VX;
          schedule(d, cd.outs[b], v, t + delay);
        }
      }
      return;
    }
    case Kind::Rom: {
      uint64_t a = 0;
      bool known = decode_addr(val_, cd.ins, 0, cd.p0, &a);
      const auto& mem = nl_.payload(cd.payload);
      for (size_t b = 0; b < cd.outs.size(); ++b) {
        V v = known ? cell::from_bool((mem[a] >> b) & 1) : V::VX;
        schedule(d, cd.outs[b], v, t + delay);
      }
      return;
    }
    case Kind::CElem:
    case Kind::Gc: {
      gather(val_, cd, dm.eval_buf);
      V nv = cell::eval_state_holding(cd.kind, dm.eval_buf,
                                      val_[cd.outs[0].value()]);
      schedule(d, cd.outs[0], nv, t + delay);
      return;
    }
    default: {
      gather(val_, cd, dm.eval_buf);
      schedule(d, cd.outs[0], cell::eval_comb(cd.kind, dm.eval_buf),
               t + delay);
      return;
    }
  }
}

}  // namespace desyn::sim

namespace desyn::sim {

uint64_t read_word(const Simulator& sim, std::span<const nl::NetId> bus,
                   bool* has_x) {
  uint64_t v = 0;
  bool x = false;
  for (size_t i = 0; i < bus.size(); ++i) {
    V bit = sim.value(bus[i]);
    if (bit == V::V1) v |= (1ull << i);
    if (bit == V::VX) x = true;
  }
  if (has_x) *has_x = x;
  return v;
}

void poke_word(Simulator& sim, std::span<const nl::NetId> bus, uint64_t value,
               Ps at) {
  for (size_t i = 0; i < bus.size(); ++i) {
    sim.set_input(bus[i], (value >> i) & 1 ? V::V1 : V::V0, at);
  }
}

}  // namespace desyn::sim
