#include "sim/domains.h"

#include <algorithm>

namespace desyn::sim {

using nl::CellId;
using nl::NetId;

DomainMap derive_domains(const nl::Netlist& nl, uint32_t num_seed_domains,
                         const std::vector<int32_t>& cell_seed) {
  const uint32_t env = num_seed_domains;
  DomainMap map;
  map.num_domains = num_seed_domains + 1;
  map.cell_domain.assign(nl.num_cells(), env);

  // Driver cell of every net (invalid for primary inputs).
  std::vector<CellId> driver(nl.num_nets());
  for (CellId c : nl.cells()) {
    for (NetId o : nl.cell(c).outs) driver[o.value()] = c;
  }

  // Multi-source BFS on reverse edges, one wave at a time: a cell reached
  // in wave k takes the minimum domain over all of its wave-(k-1)
  // consumers, which makes the result independent of frontier order.
  constexpr int32_t kUnassigned = -1;
  std::vector<int32_t> dom(nl.num_cells(), kUnassigned);
  std::vector<CellId> frontier;
  for (CellId c : nl.cells()) {
    const int32_t s = cell_seed[c.value()];
    if (s < 0) continue;
    DESYN_ASSERT(static_cast<uint32_t>(s) < num_seed_domains,
                 "domain seed out of range");
    dom[c.value()] = s;
    frontier.push_back(c);
  }

  std::vector<CellId> next;
  std::vector<int32_t> relax(nl.num_cells(), kUnassigned);
  while (!frontier.empty()) {
    next.clear();
    for (CellId c : frontier) {
      const int32_t label = dom[c.value()];
      for (NetId in : nl.cell(c).ins) {
        const CellId p = driver[in.value()];
        if (!p.valid() || dom[p.value()] != kUnassigned) continue;
        if (relax[p.value()] == kUnassigned) next.push_back(p);
        if (relax[p.value()] == kUnassigned || label < relax[p.value()]) {
          relax[p.value()] = label;
        }
      }
    }
    for (CellId c : next) {
      dom[c.value()] = relax[c.value()];
      relax[c.value()] = kUnassigned;
    }
    frontier.swap(next);
  }

  for (CellId c : nl.cells()) {
    if (dom[c.value()] >= 0) {
      map.cell_domain[c.value()] = static_cast<uint32_t>(dom[c.value()]);
    }
  }
  return map;
}

}  // namespace desyn::sim
