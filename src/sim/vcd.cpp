#include "sim/vcd.h"

#include <ostream>

namespace desyn::sim {

std::string VcdWriter::code_for(size_t index) {
  // Base-94 over printable ASCII '!'..'~'.
  std::string s;
  do {
    s += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return s;
}

VcdWriter::VcdWriter(Simulator& sim, std::ostream& os,
                     std::vector<nl::NetId> nets)
    : sim_(sim), os_(os), nets_(std::move(nets)) {
  os_ << "$timescale 1ps $end\n$scope module "
      << sim_.netlist().name() << " $end\n";
  for (size_t i = 0; i < nets_.size(); ++i) {
    std::string name = sim_.netlist().net(nets_[i]).name;
    for (char& c : name) {
      if (c == ' ') c = '_';
    }
    os_ << "$var wire 1 " << code_for(i) << " " << name << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n";
  os_ << "#0\n$dumpvars\n";
  for (size_t i = 0; i < nets_.size(); ++i) {
    os_ << cell::to_char(sim_.value(nets_[i])) << code_for(i) << "\n";
  }
  os_ << "$end\n";
  last_time_ = 0;
  for (size_t i = 0; i < nets_.size(); ++i) {
    std::string code = code_for(i);
    sim_.watch(nets_[i], [this, code](Ps t, V v) {
      if (t != last_time_) {
        os_ << "#" << t << "\n";
        last_time_ = t;
      }
      os_ << cell::to_char(v) << code << "\n";
    });
  }
}

void VcdWriter::finish() {
  os_ << "#" << sim_.now() << "\n";
  os_.flush();
}

}  // namespace desyn::sim
