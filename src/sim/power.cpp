#include "sim/power.h"

#include <vector>

namespace desyn::sim {

namespace {

/// True when `p` is the clocking pin of a storage cell (latch EN, FF CK,
/// RAM CK).
bool is_clock_pin(const nl::Netlist& nl, const nl::Pin& p) {
  switch (nl.cell(p.cell).kind) {
    case cell::Kind::Latch:
    case cell::Kind::LatchN:
    case cell::Kind::Dff:
      return p.index == 1;
    case cell::Kind::Ram:
      return p.index == 0;
    default:
      return false;
  }
}

}  // namespace

PowerReport estimate_power(const Simulator& sim, const cell::Tech& tech,
                           std::span<const nl::NetId> clock_nets,
                           std::span<const nl::NetId> global_nets) {
  const nl::Netlist& nl = sim.netlist();
  PowerReport rep;
  rep.window = sim.now() - sim.activity_window_start();
  if (rep.window <= 0) return rep;

  std::vector<bool> is_clock(nl.num_nets(), false);
  for (nl::NetId n : clock_nets) is_clock[n.value()] = true;
  std::vector<bool> is_global(nl.num_nets(), false);
  for (nl::NetId n : global_nets) is_global[n.value()] = true;

  const double v2 = tech.voltage() * tech.voltage();
  double total_fj = 0, switching_fj = 0, internal_fj = 0, clock_fj = 0;

  for (uint32_t ni = 0; ni < nl.num_nets(); ++ni) {
    nl::NetId net(ni);
    uint64_t tg = sim.toggles(net);
    if (tg == 0) continue;
    const nl::NetData& nd = nl.net(net);
    Ff cap = tech.wire_cap(static_cast<int>(nd.fanout.size()));
    if (is_global[ni]) cap *= tech.global_wire_factor();
    double e_int = 0;
    for (const nl::Pin& p : nd.fanout) {
      cap += tech.input_cap(nl.cell(p.cell).kind);
      if (is_clock_pin(nl, p)) {
        e_int += tech.spec(nl.cell(p.cell).kind).clock_energy *
                 static_cast<double>(tg);
      }
    }
    double e_net = 0.5 * cap * v2 * static_cast<double>(tg);
    if (nd.driver.valid()) {
      e_int += tech.spec(nl.cell(nd.driver).kind).energy *
               static_cast<double>(tg);
    }
    switching_fj += e_net;
    internal_fj += e_int;
    total_fj += e_net + e_int;
    if (is_clock[ni]) clock_fj += e_net + e_int;
  }

  const double w = static_cast<double>(rep.window);
  rep.net_switching_mw = switching_fj / w;
  rep.cell_internal_mw = internal_fj / w;
  rep.total_mw = total_fj / w;
  rep.clock_network_mw = clock_fj / w;
  return rep;
}

}  // namespace desyn::sim
