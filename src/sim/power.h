// Dynamic power estimation from simulated switching activity.
//
// Energy per net transition = 1/2 * C * V^2 with C = fanout wireload +
// the input-pin capacitances the net drives, plus the driving cell's
// internal energy per output transition. 1 fJ/ps == 1 mW, so the report is
// in milliwatts directly.
#pragma once

#include <span>

#include "sim/sim.h"

namespace desyn::sim {

struct PowerReport {
  double total_mw = 0;
  double net_switching_mw = 0;   ///< wire + pin capacitance charging
  double cell_internal_mw = 0;   ///< per-transition internal energy
  double clock_network_mw = 0;   ///< subset of total attributed to `clock_nets`
  Ps window = 0;                 ///< measurement window length (ps)
};

/// Estimate average dynamic power over the activity window (since the last
/// clear_activity()). `clock_nets` selects nets whose dissipation is
/// reported separately (clock tree for the sync design; controller +
/// matched-delay nets for the desynchronized one). `global_nets` marks nets
/// with chip-spanning routing (a clock tree) whose wireload is scaled by
/// Tech::global_wire_factor(); local control wiring is not.
///
/// Storage cells additionally burn their `clock_energy` on every transition
/// of their CK/EN pin (internal clocking, paid even when data is idle).
PowerReport estimate_power(const Simulator& sim, const cell::Tech& tech,
                           std::span<const nl::NetId> clock_nets = {},
                           std::span<const nl::NetId> global_nets = {});

}  // namespace desyn::sim
