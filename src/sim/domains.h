// Domain-map derivation for the sharded simulator (sim/sim.h).
//
// A simulation domain is a set of cells whose events share one calendar
// queue. Any assignment is correct — for a fixed map, Simulator results
// are byte-identical at every job count, and across maps the trajectory
// is identical too (see the DomainMap contract in sim/sim.h) — so
// derivation is purely a performance
// policy: follow the circuit's natural cuts so that domains interact only
// through a few boundary nets (handshake wires, matched-delay lines, the
// clock tree) and the evaluate phase parallelizes.
//
// derive_domains() grows a seeded assignment over the whole netlist by a
// nearest-seed flood on the reverse (consumer -> producer) graph: every
// unseeded cell joins the domain of the closest seeded consumer it feeds,
// measured in reverse hops, ties broken toward the smallest domain id.
// Seeded cells act as cuts — the flood never passes through them — so a
// combinational cone between two banks splits at the receiving bank's
// storage, matching the receiver-side ownership of matched-delay lines.
// Cells that reach no seed (primary-output cones) fall into a shared
// environment domain, always the last one.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "sim/sim.h"

namespace desyn::sim {

/// Expand a partial per-cell seeding (`cell_seed[c]` in [0, num_seed_domains)
/// or -1 for unseeded) into a total DomainMap with
/// `num_seed_domains + 1` domains; domain `num_seed_domains` is the
/// environment bucket for cells that reach no seed. Deterministic for a
/// given netlist + seeding.
DomainMap derive_domains(const nl::Netlist& nl, uint32_t num_seed_domains,
                         const std::vector<int32_t>& cell_seed);

}  // namespace desyn::sim
