#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "base/json.h"
#include "netlist/query.h"
#include "pn/analysis.h"
#include "sta/sta.h"

namespace desyn::check {

namespace {

using cell::Kind;
using cell::V;

/// The adjacency extractor's margin rule — must match core/adjacency.cpp so
/// the timing pass recomputes exactly the delays the flow would size.
Ps with_margin(Ps delay, double margin) {
  return static_cast<Ps>(std::ceil(static_cast<double>(delay) * margin));
}

/// topo_order's cut rule (netlist/query.cpp): storage and state-holding
/// cells break combinational paths, the RAM read path does not.
bool is_cut_kind(Kind k) {
  return k != Kind::Ram && (cell::is_storage(k) || cell::is_state_holding(k));
}

const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

std::string sign_name(int bank, bool plus, const ctl::ControlGraph& cg) {
  return cat(cg.bank(bank).name, plus ? "+" : "-");
}

// ---- extracted control structure -----------------------------------------

/// A control arc recovered from the gate level: source/target transition,
/// initial marking (from reset values + path inversion parity) and the
/// number of DELAY cells traversed (matched-delay line + skew chain).
struct ExtArc {
  int from = 0;
  bool from_plus = false;
  int to = 0;
  bool to_plus = false;
  bool marked = false;
  int delays = 0;
};

/// (from, from_plus, to, to_plus) — the identity of an arc up to marking.
using Quad = std::tuple<int, bool, int, bool>;

Quad quad_of(const ExtArc& a) { return {a.from, a.from_plus, a.to, a.to_plus}; }
Quad quad_of(const ctl::ProtoArc& a) {
  return {a.from, a.from_plus, a.to, a.to_plus};
}

/// One backward path from a C-element input to a source transition net:
/// inversion parity and DELAY count accumulated along the way.
struct PathEnd {
  int bank = 0;
  bool plus = false;
  int parity = 0;
  int delays = 0;
};

/// Reverse-extracts the marked graph from the synthesized Muller network.
/// Every transition net (ctrl.rounds / ctrl.falls) must be driven by a
/// C-element; each of its input cones is traced backward through the cell
/// vocabulary the synthesis emits — buffers, delay lines, marking
/// inverters, join C-elements, the reset-kick AND gate and its tie-high
/// generator — until another transition net is reached. Anything else in
/// the cone (datapath cells, primary inputs, undriven nets, cyclic
/// structure) fails the extraction with DSN201.
struct ControlExtractor {
  const nl::Netlist& nl;
  /// net -> (bank, plus) for every transition net.
  std::unordered_map<uint32_t, std::pair<int, bool>> terminal;
  /// net -> reset value of the transition signal (its C-element's init).
  std::unordered_map<uint32_t, V> terminal_init;
  std::unordered_map<uint32_t, std::vector<PathEnd>> memo;
  std::vector<uint8_t> on_stack;  ///< per-net cycle guard
  bool failed = false;
  std::string fail_msg;
  std::string fail_net;

  explicit ControlExtractor(const nl::Netlist& n)
      : nl(n), on_stack(n.num_nets(), 0) {}

  void set_fail(nl::NetId n, std::string msg) {
    if (failed) return;
    failed = true;
    fail_msg = std::move(msg);
    fail_net = nl.net(n).name;
  }

  const std::vector<PathEnd>& trace(nl::NetId n) {
    static const std::vector<PathEnd> kEmpty;
    if (failed) return kEmpty;
    auto memoized = memo.find(n.value());
    if (memoized != memo.end()) return memoized->second;
    if (auto t = terminal.find(n.value()); t != terminal.end()) {
      return memo
          .emplace(n.value(),
                   std::vector<PathEnd>{{t->second.first, t->second.second,
                                         /*parity=*/0, /*delays=*/0}})
          .first->second;
    }
    if (on_stack[n.value()]) {
      set_fail(n, "cyclic controller structure (non-transition feedback)");
      return kEmpty;
    }
    const nl::NetData& nd = nl.net(n);
    if (!nd.driver.valid()) {
      set_fail(n, nl.is_primary_input(n)
                      ? "controller cone driven by a primary input"
                      : "undriven net in controller cone");
      return kEmpty;
    }
    on_stack[n.value()] = 1;
    const nl::CellData& cd = nl.cell(nd.driver);
    std::vector<PathEnd> out;
    switch (cd.kind) {
      case Kind::TieHi:
      case Kind::TieLo:
        break;  // the kick generator's constants: no arc on this branch
      case Kind::Buf:
      case Kind::Delay:
      case Kind::Inv: {
        out = trace(cd.ins[0]);
        for (PathEnd& p : out) {
          if (cd.kind == Kind::Delay) ++p.delays;
          if (cd.kind == Kind::Inv) p.parity ^= 1;
        }
        break;
      }
      case Kind::And:    // reset-kick gating of marked predecessor arcs
      case Kind::CElem:  // join trees (and the kick one-shot itself)
        for (nl::NetId in : cd.ins) {
          const std::vector<PathEnd>& sub = trace(in);
          out.insert(out.end(), sub.begin(), sub.end());
        }
        break;
      default:
        set_fail(n, cat("unexpected ", cell::kind_name(cd.kind), " cell '",
                        cd.name, "' in controller cone"));
        break;
    }
    on_stack[n.value()] = 0;
    if (failed) return kEmpty;
    return memo.emplace(n.value(), std::move(out)).first->second;
  }
};

// ---- the linter ----------------------------------------------------------

struct Linter {
  const flow::DesyncResult& r;
  const cell::Tech& tech;
  const LintOptions& opt;
  const nl::Netlist& nl;
  const ctl::ControlGraph& cg;
  LintReport rep;

  bool comb_cycle = false;
  bool level = false;  ///< level protocols have a- transitions; Pulse not

  std::vector<ExtArc> extracted;
  std::set<std::pair<Quad, bool>> ext_set;  ///< (quad, marked)
  std::map<Quad, int> ext_delays;           ///< quad -> max DELAY count
  std::vector<ctl::ProtoArc> model;
  /// Recomputed launch->capture delay per bank pair (the STA mirror).
  std::map<std::pair<int, int>, Ps> recomputed;

  Linter(const flow::DesyncResult& res, const cell::Tech& t,
         const LintOptions& o)
      : r(res), tech(t), opt(o), nl(res.netlist), cg(res.cg) {
    level = r.protocol != ctl::Protocol::Pulse;
  }

  void add(int code, Severity sev, std::string msg, std::string net = "",
           std::string cell = "") {
    rep.diags.push_back(
        {code, sev, std::move(msg), std::move(net), std::move(cell)});
  }

  int real_banks() const { return static_cast<int>(r.banks.banks.size()); }

  // ---- pass 1: netlist structural lint -----------------------------------

  void pass_structure() {
    size_t before = rep.diags.size();
    check_floating_nets();
    check_comb_cycles();
    if (!comb_cycle) {
      check_enable_roots();
      check_reset_settling();
    }
    rep.structure_clean = rep.diags.size() == before;
  }

  void check_floating_nets() {
    for (uint32_t i = 0; i < nl.num_nets(); ++i) {
      nl::NetId n(i);
      const nl::NetData& nd = nl.net(n);
      if (nd.driver.valid() || nd.fanout.empty()) continue;
      if (nl.is_primary_input(n)) continue;
      add(kFloatingNet, Severity::Error,
          cat("net '", nd.name, "' has ", nd.fanout.size(),
              " reader(s) but no driver"),
          nd.name);
    }
  }

  /// Kahn's algorithm with topo_order's cut rule: leftover cells sit on or
  /// behind a genuine combinational cycle (C-element feedback is cut and
  /// therefore never reported).
  void check_comb_cycles() {
    std::vector<int> degree(nl.num_cells(), 0);
    std::vector<nl::CellId> queue;
    for (nl::CellId c : nl.cells()) {
      const nl::CellData& cd = nl.cell(c);
      if (is_cut_kind(cd.kind)) continue;
      int d = 0;
      for (nl::NetId in : cd.ins) {
        nl::CellId drv = nl.net(in).driver;
        if (drv.valid() && !is_cut_kind(nl.cell(drv).kind)) ++d;
      }
      degree[c.value()] = d;
      if (d == 0) queue.push_back(c);
    }
    size_t processed = 0, comb_total = 0;
    for (nl::CellId c : nl.cells()) {
      if (!is_cut_kind(nl.cell(c).kind)) ++comb_total;
    }
    while (!queue.empty()) {
      nl::CellId c = queue.back();
      queue.pop_back();
      ++processed;
      for (nl::NetId out : nl.cell(c).outs) {
        for (const nl::Pin& p : nl.net(out).fanout) {
          if (is_cut_kind(nl.cell(p.cell).kind)) continue;
          if (--degree[p.cell.value()] == 0) queue.push_back(p.cell);
        }
      }
    }
    if (processed == comb_total) return;
    comb_cycle = true;
    // Walk backward through still-blocked predecessors until a repeat: the
    // repeated cell is a member of an actual cycle, not just downstream.
    nl::CellId seed;
    for (nl::CellId c : nl.cells()) {
      if (!is_cut_kind(nl.cell(c).kind) && degree[c.value()] > 0) {
        seed = c;
        break;
      }
    }
    std::set<uint32_t> seen;
    nl::CellId at = seed;
    while (seen.insert(at.value()).second) {
      for (nl::NetId in : nl.cell(at).ins) {
        nl::CellId drv = nl.net(in).driver;
        if (drv.valid() && !is_cut_kind(nl.cell(drv).kind) &&
            degree[drv.value()] > 0) {
          at = drv;
          break;
        }
      }
    }
    add(kCombCycle, Severity::Error,
        cat("combinational cycle through cell '", nl.cell(at).name,
            "' (not C-element feedback)"),
        "", nl.cell(at).name);
  }

  /// Walk a storage control pin's net up through distribution buffers to
  /// the gate that generates it.
  nl::NetId enable_root(nl::NetId n) const {
    for (size_t guard = 0; guard < nl.num_cells() + 1; ++guard) {
      const nl::NetData& nd = nl.net(n);
      if (!nd.driver.valid()) return n;
      const nl::CellData& cd = nl.cell(nd.driver);
      if (cd.kind != Kind::Buf) return n;
      n = cd.ins[0];
    }
    return n;
  }

  void check_enable_roots() {
    for (int b = 0; b < real_banks(); ++b) {
      const flow::Bank& bank = r.banks.banks[static_cast<size_t>(b)];
      nl::NetId want = r.ctrl.enables[static_cast<size_t>(b)];
      auto check_pin = [&](nl::CellId c, uint16_t pin, const char* what) {
        const nl::CellData& cd = nl.cell(c);
        nl::NetId root = enable_root(cd.ins[pin]);
        if (root == want) return;
        add(kDanglingEnable, Severity::Error,
            cat(what, " of '", cd.name, "' (bank ", bank.name,
                ") is rooted at net '", nl.net(root).name,
                "', not the bank enable '", nl.net(want).name, "'"),
            nl.net(cd.ins[pin]).name, cd.name);
      };
      for (nl::CellId c : bank.latches) {
        if (nl.cell(c).kind != Kind::Latch) {
          add(kDanglingEnable, Severity::Error,
              cat("latch '", nl.cell(c).name, "' (bank ", bank.name,
                  ") kept kind ", cell::kind_name(nl.cell(c).kind),
                  " — masters must flip to LATCH under pulse control"),
              "", nl.cell(c).name);
        }
        check_pin(c, 1, "enable pin");
      }
      for (nl::CellId c : bank.rams) check_pin(c, 0, "write-commit pin");
    }
  }

  /// Three-valued reset snapshot: storage and C-elements output their init
  /// value, primary inputs and memory read data are unknown; one pass over
  /// the combinational topo order settles everything else. Every control
  /// net must come out binary, or the controller's reset state is
  /// undefined.
  void check_reset_settling() {
    std::vector<V> val(nl.num_nets(), V::VX);
    for (nl::CellId c : nl.cells()) {
      const nl::CellData& cd = nl.cell(c);
      if (cd.kind == Kind::Ram || cd.kind == Kind::Rom) continue;
      if (cell::is_storage(cd.kind) || cell::is_state_holding(cd.kind)) {
        val[cd.outs[0].value()] = cd.init;
      }
    }
    std::vector<V> ins;
    for (nl::CellId c : nl::topo_order(nl)) {
      const nl::CellData& cd = nl.cell(c);
      if (!cell::is_combinational(cd.kind) || cd.kind == Kind::Rom) continue;
      ins.clear();
      for (nl::NetId in : cd.ins) ins.push_back(val[in.value()]);
      val[cd.outs[0].value()] = cell::eval_comb(cd.kind, ins);
    }
    std::set<uint32_t> control;
    for (nl::NetId n : r.ctrl.control_nets) control.insert(n.value());
    for (nl::NetId n : r.ctrl.enables) control.insert(n.value());
    size_t reported = 0, total = 0;
    for (uint32_t nid : control) {
      if (val[nid] != V::VX) continue;
      ++total;
      if (reported < 8) {
        ++reported;
        add(kResetUnresolved, Severity::Error,
            cat("control net '", nl.net(nl::NetId(nid)).name,
                "' does not settle to 0/1 at reset"),
            nl.net(nl::NetId(nid)).name);
      }
    }
    if (total > reported) {
      add(kResetUnresolved, Severity::Error,
          cat(total - reported,
              " further control nets do not settle at reset"));
    }
  }

  // ---- pass 2: control-network verification ------------------------------

  void pass_control() {
    model = ctl::hardware_arcs(cg, r.protocol);
    if (!level) {
      // Pulse hardware has one C-element per bank: only the round (+)
      // events exist at the gate level; the model's alternation arcs have
      // no hardware counterpart.
      std::erase_if(model, [](const ctl::ProtoArc& a) {
        return a.alternation || !a.from_plus || !a.to_plus;
      });
    }
    if (!extract()) return;
    rep.control_extracted = true;
    rep.arcs_checked = ext_set.size();
    check_live_safe();
    check_arc_sets();
    check_protocol_contracts();
  }

  bool extract() {
    ControlExtractor ex(nl);
    size_t nbanks = cg.num_banks();
    for (size_t b = 0; b < nbanks; ++b) {
      nl::NetId plus = r.ctrl.rounds[b];
      if (plus.valid()) ex.terminal[plus.value()] = {static_cast<int>(b), true};
      if (level) {
        nl::NetId minus = r.ctrl.falls[b];
        if (minus.valid()) {
          ex.terminal[minus.value()] = {static_cast<int>(b), false};
        }
      }
    }
    for (auto& [nid, t] : ex.terminal) {
      nl::CellId drv = nl.net(nl::NetId(nid)).driver;
      if (!drv.valid() || nl.cell(drv).kind != Kind::CElem) {
        add(kExtractionFailed, Severity::Error,
            cat("transition net '", nl.net(nl::NetId(nid)).name,
                "' is not driven by a C-element"),
            nl.net(nl::NetId(nid)).name);
        return false;
      }
      ex.terminal_init[nid] = nl.cell(drv).init;
    }
    for (auto& [nid, t] : ex.terminal) {
      nl::CellId drv = nl.net(nl::NetId(nid)).driver;
      for (nl::NetId in : nl.cell(drv).ins) {
        const std::vector<PathEnd>& ends = ex.trace(in);
        if (ex.failed) break;
        for (const PathEnd& p : ends) {
          nl::NetId src_net =
              p.plus || !level ? r.ctrl.rounds[static_cast<size_t>(p.bank)]
                               : r.ctrl.falls[static_cast<size_t>(p.bank)];
          V src_init = ex.terminal_init[src_net.value()];
          V dst_init = ex.terminal_init[nid];
          // The marking rule: the arc carries an initial token iff the
          // source signal's reset value, seen through the path's inversion
          // parity, differs from the target's reset value — exactly how
          // the synthesis realizes marked arcs (one marking inverter).
          bool marked =
              (p.parity ? (src_init == dst_init) : (src_init != dst_init));
          extracted.push_back({p.bank, p.plus, t.first, t.second, marked,
                               p.delays});
        }
      }
      if (ex.failed) break;
    }
    if (ex.failed) {
      add(kExtractionFailed, Severity::Error, ex.fail_msg, ex.fail_net);
      return false;
    }
    for (const ExtArc& a : extracted) {
      ext_set.insert({quad_of(a), a.marked});
      auto [it, fresh] = ext_delays.emplace(quad_of(a), a.delays);
      if (!fresh) it->second = std::max(it->second, a.delays);
    }
    return true;
  }

  /// Transition index in the extracted MG / contract BFS graph.
  int node_of(int bank, bool plus) const {
    return level ? bank * 2 + (plus ? 0 : 1) : bank;
  }

  void check_live_safe() {
    pn::MarkedGraph mg("extracted");
    size_t nbanks = cg.num_banks();
    for (size_t b = 0; b < nbanks; ++b) {
      mg.add_transition(sign_name(static_cast<int>(b), true, cg));
      if (level) mg.add_transition(sign_name(static_cast<int>(b), false, cg));
    }
    for (const auto& [q, marked] : ext_set) {
      auto [f, fp, t, tp] = q;
      mg.add_arc(pn::TransId(static_cast<uint32_t>(node_of(f, fp))),
                 pn::TransId(static_cast<uint32_t>(node_of(t, tp))),
                 marked ? 1 : 0);
    }
    if (!pn::is_live(mg)) {
      add(kNotLive, Severity::Error,
          "extracted control MG is not live (token-free cycle: the "
          "controllers deadlock)");
      return;  // is_safe requires liveness
    }
    if (!pn::is_safe(mg)) {
      add(kNotSafe, Severity::Error,
          "extracted control MG is not safe (a handshake place can hold "
          "more than one token)");
    }
  }

  void check_arc_sets() {
    std::set<std::pair<Quad, bool>> model_set;
    for (const ctl::ProtoArc& a : model) {
      model_set.insert({quad_of(a), a.marked});
    }
    auto arc_name = [&](const Quad& q, bool marked) {
      auto [f, fp, t, tp] = q;
      return cat(sign_name(f, fp, cg), " -> ", sign_name(t, tp, cg),
                 marked ? " (marked)" : " (unmarked)");
    };
    for (const auto& [q, marked] : model_set) {
      if (ext_set.count({q, marked})) continue;
      if (ext_set.count({q, !marked})) {
        add(kArcMismatch, Severity::Error,
            cat("arc ", arc_name(q, marked),
                " has the opposite initial marking in hardware"));
      } else {
        add(kArcMismatch, Severity::Error,
            cat("model arc ", arc_name(q, marked), " missing from hardware"));
      }
    }
    for (const auto& [q, marked] : ext_set) {
      if (model_set.count({q, marked}) || model_set.count({q, !marked})) {
        continue;  // marking mismatches reported once, from the model side
      }
      add(kArcMismatch, Severity::Error,
          cat("hardware arc ", arc_name(q, marked), " not in the model"));
    }
  }

  /// Minimum-token path between extracted transitions (0-1 BFS). Returns
  /// INT_MAX when unreachable.
  int min_tokens(int from_node, int to_node) const {
    size_t nodes = cg.num_banks() * (level ? 2 : 1);
    std::vector<std::vector<std::pair<int, int>>> adj(nodes);
    for (const auto& [q, marked] : ext_set) {
      auto [f, fp, t, tp] = q;
      adj[static_cast<size_t>(node_of(f, fp))].push_back(
          {node_of(t, tp), marked ? 1 : 0});
    }
    std::vector<int> dist(nodes, INT32_MAX);
    std::deque<int> dq;
    dist[static_cast<size_t>(from_node)] = 0;
    dq.push_back(from_node);
    while (!dq.empty()) {
      int u = dq.front();
      dq.pop_front();
      for (auto [v, w] : adj[static_cast<size_t>(u)]) {
        if (dist[static_cast<size_t>(u)] + w < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
          if (w == 0) {
            dq.push_front(v);
          } else {
            dq.push_back(v);
          }
        }
      }
    }
    return dist[static_cast<size_t>(to_node)];
  }

  /// Protocol contracts that hold independently of the arc enumeration —
  /// the second source of truth that catches a PR 2-class bug where model
  /// and hardware share the same wrong arc list. Checked per data edge on
  /// the *extracted* graph:
  ///  * Lockstep/Semi forbid overlapping transparency: b may open only
  ///    after a closed, i.e. a token-free path a- -> b+ must exist.
  ///  * FullyDecoupled orders captures: the k-th capture of b follows the
  ///    k-th capture of a (offset by the canonical schedule), i.e. the
  ///    minimum-token path a- -> b- carries at most the schedule offset.
  void check_protocol_contracts() {
    if (!level) return;
    bool overlap_free = r.protocol == ctl::Protocol::Lockstep ||
                        r.protocol == ctl::Protocol::SemiDecoupled;
    for (const ctl::ControlGraph::Edge& e : cg.edges()) {
      if (overlap_free) {
        int mt = min_tokens(node_of(e.from, false), node_of(e.to, true));
        if (mt != 0) {
          add(kProtocolContract, Severity::Error,
              cat("non-overlap violated on edge ", cg.bank(e.from).name,
                  " -> ", cg.bank(e.to).name, ": no token-free path ",
                  sign_name(e.from, false, cg), " -> ",
                  sign_name(e.to, true, cg),
                  " (the consumer can open before the producer closes)"));
        }
      } else {  // FullyDecoupled
        int allowed =
            ctl::first_fire_index(r.protocol, cg.bank(e.to).even, false) <
                    ctl::first_fire_index(r.protocol, cg.bank(e.from).even,
                                          false)
                ? 1
                : 0;
        int mt = min_tokens(node_of(e.from, false), node_of(e.to, false));
        if (mt > allowed) {
          add(kProtocolContract, Severity::Error,
              cat("capture ordering violated on edge ", cg.bank(e.from).name,
                  " -> ", cg.bank(e.to).name, ": min-token path ",
                  sign_name(e.from, false, cg), " -> ",
                  sign_name(e.to, false, cg), " carries ",
                  mt == INT32_MAX ? cat("no path") : cat(mt, " token(s)"),
                  ", schedule allows ", allowed));
        }
      }
    }
  }

  // ---- pass 3: matched-delay coverage ------------------------------------

  /// The adjacency Extractor re-run on the *final* netlist: one sparse STA
  /// propagation per source bank plus one from the primary inputs, worst
  /// data-endpoint arrival per destination, margin applied. LATCH and
  /// LATCHN share one liberty spec, so launching the flipped masters here
  /// reproduces the latchified netlist's timing exactly; control nets feed
  /// only enable pins (not data endpoints), so the controller never
  /// contaminates the datapath arrivals.
  void pass_timing() {
    sta::Sta sta(nl, tech);
    size_t nreal = static_cast<size_t>(real_banks());
    std::vector<std::vector<int>> watchers(nl.num_nets());
    for (size_t d = 0; d < nreal; ++d) {
      const flow::Bank& b = r.banks.banks[d];
      auto watch = [&](nl::CellId c) {
        const nl::CellData& cd = nl.cell(c);
        for (size_t i = 0; i < cd.ins.size(); ++i) {
          if (!sta::Sta::data_endpoint_pin(cd, i)) continue;
          auto& w = watchers[cd.ins[i].value()];
          if (w.empty() || w.back() != static_cast<int>(d)) {
            w.push_back(static_cast<int>(d));
          }
        }
      };
      for (nl::CellId c : b.latches) watch(c);
      for (nl::CellId c : b.rams) watch(c);
    }
    auto setup_of = [&](int bank) {
      return r.banks.banks[static_cast<size_t>(bank)].rams.empty()
                 ? tech.latch_setup()
                 : tech.dff_setup();
    };

    sta::Sta::SparseScratch scratch;
    std::vector<Ps> dest_worst(nreal, sta::kUnreached);
    std::vector<int> dests;
    std::vector<sta::Source> sources;
    auto collect = [&](int src_bank, auto&& emit) {
      for (nl::NetId n : scratch.touched) {
        Ps a = scratch.arr[n.value()];
        for (int d : watchers[n.value()]) {
          if (d == src_bank) continue;
          if (dest_worst[static_cast<size_t>(d)] == sta::kUnreached) {
            dests.push_back(d);
          }
          dest_worst[static_cast<size_t>(d)] =
              std::max(dest_worst[static_cast<size_t>(d)], a);
        }
      }
      std::sort(dests.begin(), dests.end());
      for (int d : dests) {
        emit(d, dest_worst[static_cast<size_t>(d)]);
        dest_worst[static_cast<size_t>(d)] = sta::kUnreached;
      }
      dests.clear();
    };

    for (size_t s = 0; s < nreal; ++s) {
      const flow::Bank& src = r.banks.banks[s];
      sources.clear();
      for (nl::CellId c : src.latches) {
        sources.push_back({nl.cell(c).outs[0], sta.cell_delay(c)});
      }
      for (nl::CellId c : src.rams) {
        for (nl::NetId rd : nl.cell(c).outs) {
          sources.push_back({rd, sta.cell_delay(c)});
        }
      }
      if (sources.empty()) continue;
      sta.arrivals_sparse(sources, scratch);
      collect(static_cast<int>(s), [&](int d, Ps a) {
        recomputed[{static_cast<int>(s), d}] =
            with_margin(a + setup_of(d), opt.margin_of(d));
      });
      Ps po = sta::kUnreached;
      for (nl::NetId out : nl.outputs()) {
        po = std::max(po, scratch.arr[out.value()]);
      }
      scratch.reset();
      if (po != sta::kUnreached && !src.even) {
        recomputed[{static_cast<int>(s), r.env_snk}] =
            with_margin(po, opt.margin_of(r.env_snk));
      }
    }
    // The environment source: all primary inputs. The ex-clock input has
    // no fanout in a desynchronized netlist, so it contributes nothing.
    sources.clear();
    for (nl::NetId in : nl.inputs()) sources.push_back({in, 0});
    if (!sources.empty()) {
      sta.arrivals_sparse(sources, scratch);
      collect(-1, [&](int d, Ps a) {
        recomputed[{r.env_src, d}] =
            with_margin(a + setup_of(d), opt.margin_of(d));
      });
      scratch.reset();
    }
    rep.edges_checked = recomputed.size();

    // DSN302: every recomputed launch->capture pair must be a control-graph
    // edge, or its path is guarded by no matched delay at all.
    std::set<std::pair<int, int>> cg_pairs;
    for (const ctl::ControlGraph::Edge& e : cg.edges()) {
      cg_pairs.insert({e.from, e.to});
    }
    for (const auto& [pair, d] : recomputed) {
      if (cg_pairs.count(pair)) continue;
      add(kUncoveredPath, Severity::Error,
          cat("combinational path ", cg.bank(pair.first).name, " -> ",
              cg.bank(pair.second).name, " (", d,
              "ps with margin) has no control-graph edge: no matched delay "
              "guards it"));
    }

    if (!rep.control_extracted) return;

    // DSN301/303: each synthesized line must hold at least the units the
    // recomputed delays require (controller response credited, exactly the
    // synthesis' sizing rule) plus the source bank's enable-tree skew
    // compensation.
    std::map<std::pair<int, bool>, Ps> required;  // target transition -> ps
    for (const ctl::ProtoArc& a : model) {
      if (!a.pred_side) continue;
      auto it = recomputed.find({a.from, a.to});
      Ps d = it == recomputed.end() ? 0 : it->second;
      auto [slot, fresh] = required.emplace(std::make_pair(a.to, a.to_plus), d);
      if (!fresh) slot->second = std::max(slot->second, d);
    }
    std::set<Quad> pred_quads;
    for (const ctl::ProtoArc& a : model) {
      if (a.pred_side) pred_quads.insert(quad_of(a));
    }
    for (const Quad& q : pred_quads) {
      auto it = ext_delays.find(q);
      if (it == ext_delays.end()) continue;  // missing arc: pass 2/4 report
      auto [f, fp, t, tp] = q;
      int need = ctl::matched_delay_cells(required[{t, tp}], tech) +
                 skew_units(f);
      ++rep.paths_checked;
      if (it->second < need) {
        add(kDelayLineShort, Severity::Error,
            cat("matched-delay line ", sign_name(f, fp, cg), " -> ",
                sign_name(t, tp, cg), " has ", it->second,
                " DELAY cell(s), the data path needs ", need));
      } else if (it->second > need) {
        add(kDelayLineLong, Severity::Warning,
            cat("matched-delay line ", sign_name(f, fp, cg), " -> ",
                sign_name(t, tp, cg), " has ", it->second,
                " DELAY cell(s), ", need, " suffice (area waste)"));
      }
    }
  }

  /// The enable-tree skew compensation the flow inserts for wide banks
  /// (core/desynchronizer.cpp): a bank whose enable drives more than 8
  /// storage pins gets a fanout-8 buffer tree, and every handshake
  /// consumer of its transition nets is pushed back by the tree's
  /// insertion delay in whole DELAY units. Recomputed here from the bank's
  /// sink count so the expected line lengths match the hardware exactly.
  int skew_units(int bank) const {
    if (bank >= real_banks()) return 0;  // env banks drive no storage
    const flow::Bank& b = r.banks.banks[static_cast<size_t>(bank)];
    size_t sinks = b.latches.size() + b.rams.size();
    constexpr size_t kMaxFanout = 8;
    if (sinks <= kMaxFanout) return 0;
    int levels = 0;
    while (sinks > kMaxFanout) {
      sinks = (sinks + kMaxFanout - 1) / kMaxFanout;
      ++levels;
    }
    Ps insertion = tech.delay(Kind::Buf, 1, static_cast<int>(kMaxFanout)) *
                   levels;
    return static_cast<int>(
        (insertion + tech.delay_unit() - 1) / tech.delay_unit());
  }

  // ---- pass 4: handshake completeness ------------------------------------

  void pass_handshake() {
    if (!rep.control_extracted) return;
    // DSN401: every request arc's acknowledge must exist — the model's
    // successor-side arcs (consumer back to producer) found in hardware.
    for (const ctl::ProtoArc& a : model) {
      if (a.pred_side || a.alternation) continue;
      if (ext_set.count({quad_of(a), a.marked}) ||
          ext_set.count({quad_of(a), !a.marked})) {
        continue;
      }
      add(kMissingAck, Severity::Error,
          cat("request ", cg.bank(a.to).name, " -> ", cg.bank(a.from).name,
              " has no acknowledging arc ", sign_name(a.from, a.from_plus, cg),
              " -> ", sign_name(a.to, a.to_plus, cg)));
    }
    // DSN402: RAM writers keep their ordering/closure arcs. Writers are
    // odd banks owning RAM macros; readers must capture before the write
    // commits (the reader -> writer edges), and under FullyDecoupled the
    // writer -> command-source closure edges keep the command pins stable.
    for (int w = 0; w < real_banks(); ++w) {
      const flow::Bank& wb = r.banks.banks[static_cast<size_t>(w)];
      if (wb.rams.empty() || wb.even) continue;
      for (const ctl::ControlGraph::Edge& e : cg.edges()) {
        bool reader_edge = e.from != w && e.to == w && e.from < real_banks() &&
                           cg.bank(e.from).even;
        bool closure_edge = r.protocol == ctl::Protocol::FullyDecoupled &&
                            e.from == w && e.to < real_banks() &&
                            cg.bank(e.to).even;
        if (!reader_edge && !closure_edge) continue;
        for (const ctl::ProtoArc& a : model) {
          if (a.alternation || a.from != e.from || a.to != e.to) continue;
          if (reader_edge && !a.pred_side) continue;   // ordering = pred arcs
          if (closure_edge && a.pred_side) continue;   // closure = ack arcs
          if (ext_set.count({quad_of(a), a.marked}) ||
              ext_set.count({quad_of(a), !a.marked})) {
            continue;
          }
          add(kRamClosureLost, Severity::Error,
              cat("RAM writer ", wb.name, " lost its ",
                  reader_edge ? "read-ordering" : "command-source closure",
                  " arc ", sign_name(a.from, a.from_plus, cg), " -> ",
                  sign_name(a.to, a.to_plus, cg)));
        }
      }
    }
  }

  LintReport run() {
    pass_structure();
    if (!comb_cycle) {  // Sta/topo machinery needs an acyclic netlist
      pass_control();
      pass_timing();
      pass_handshake();
    }
    return std::move(rep);
  }
};

}  // namespace

const char* code_pass(int code) {
  if (code < 200) return "structure";
  if (code < 300) return "control";
  if (code < 400) return "timing";
  return "handshake";
}

std::string format_code(int code) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "DSN%03d", code);
  return buf;
}

size_t LintReport::errors() const {
  size_t n = 0;
  for (const Diag& d : diags) n += d.severity == Severity::Error;
  return n;
}

size_t LintReport::warnings() const {
  size_t n = 0;
  for (const Diag& d : diags) n += d.severity == Severity::Warning;
  return n;
}

bool LintReport::has(int code) const {
  for (const Diag& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

LintReport lint(const flow::DesyncResult& r, const cell::Tech& tech,
                const LintOptions& opt) {
  Linter linter(r, tech, opt);
  return linter.run();
}

std::string render_text(const LintReport& rep, const std::string& circuit) {
  std::string out;
  for (const Diag& d : rep.diags) {
    out += cat(format_code(d.code), " ", severity_name(d.severity), " [",
               code_pass(d.code), "] ", d.message);
    if (!d.net.empty()) out += cat(" (net ", d.net, ")");
    if (!d.cell.empty()) out += cat(" (cell ", d.cell, ")");
    out += "\n";
  }
  out += cat(circuit, ": ", rep.errors(), " error(s), ", rep.warnings(),
             " warning(s); checked ", rep.arcs_checked, " arcs, ",
             rep.paths_checked, " delay lines, ", rep.edges_checked,
             " bank pairs\n");
  return out;
}

std::string render_json(const LintReport& rep, const std::string& circuit,
                        ctl::Protocol protocol, double margin) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", margin);
  std::string s = cat("{\"circuit\": \"", json::escape(circuit),
                      "\", \"protocol\": \"", ctl::protocol_name(protocol),
                      "\", \"margin\": ", buf,
                      ", \"clean\": ", rep.clean() ? "true" : "false",
                      ", \"errors\": ", rep.errors(),
                      ", \"warnings\": ", rep.warnings(),
                      ", \"checked\": {\"arcs\": ", rep.arcs_checked,
                      ", \"paths\": ", rep.paths_checked,
                      ", \"edges\": ", rep.edges_checked, "}, \"diags\": [");
  for (size_t i = 0; i < rep.diags.size(); ++i) {
    const Diag& d = rep.diags[i];
    s += cat(i ? ", " : "", "{\"code\": \"", format_code(d.code),
             "\", \"pass\": \"", code_pass(d.code), "\", \"severity\": \"",
             severity_name(d.severity), "\", \"message\": \"",
             json::escape(d.message), "\", \"net\": \"", json::escape(d.net),
             "\", \"cell\": \"", json::escape(d.cell), "\"}");
  }
  s += "]}";
  return s;
}

}  // namespace desyn::check
