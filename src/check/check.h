// Static verification of desynchronized circuits (`desyn_cli lint`).
//
// Every correctness guarantee elsewhere in the repo is dynamic — trace
// conformance and flow equivalence run the event simulator. This module is
// the static layer: four analysis passes over a flow::DesyncResult that
// prove (or refute) the properties the paper's construction relies on
// without simulating a single event.
//
//   structure   netlist-level sanity: floating nets, genuine combinational
//               cycles (C-element feedback excluded), storage control pins
//               not rooted at their bank's enable, control nets that do not
//               settle to a binary value at reset.
//   control     the marked graph is reverse-extracted from the synthesized
//               Muller gates (C-element input cones traced through
//               buffers/inverters/delay lines/join trees; an arc's initial
//               marking is recovered from reset values and path inversion
//               parity) and checked for liveness, safeness, arc-for-arc
//               agreement with the intended ctl::hardware_arcs model, and
//               protocol contracts that hold even if the model itself were
//               wrong (non-overlap for Lockstep/Semi, capture ordering for
//               FullyDecoupled) — the PR 2 Lockstep arc-set bug class.
//   timing      matched-delay coverage: an independent STA mirror of the
//               adjacency extraction recomputes every launch->capture bank
//               delay on the final netlist and checks each synthesized
//               delay line is long enough (margin applied, controller
//               response credited, enable-tree skew compensation included).
//   handshake   every request has an acknowledging arc and every RAM
//               writer keeps its read-ordering / command-source closure
//               arcs.
//
// Diagnostics carry stable DSN### codes (see docs/LINT.md) with net/cell
// anchors; renderers produce human text and the desyn-lint-v1 JSON object.
#pragma once

#include <string>
#include <vector>

#include "core/desynchronizer.h"

namespace desyn::check {

enum class Severity { Warning, Error };

/// Stable diagnostic codes. The numeric value is the published DSN number:
/// 1xx structure, 2xx control, 3xx timing, 4xx handshake. Codes are append-
/// only — tools and CI gates match on them.
enum Code : int {
  kFloatingNet = 101,        ///< net with fanout but no driver (and not a PI)
  kCombCycle = 102,          ///< combinational cycle outside C-element feedback
  kDanglingEnable = 103,     ///< storage control pin not rooted at its bank enable
  kResetUnresolved = 104,    ///< control net does not settle 0/1 at reset
  kExtractionFailed = 201,   ///< controller cone is not a recognizable MG
  kNotLive = 202,            ///< extracted MG has a token-free cycle
  kNotSafe = 203,            ///< extracted MG is not 1-bounded
  kArcMismatch = 204,        ///< extracted arc set differs from the model
  kProtocolContract = 205,   ///< non-overlap / capture-ordering violated
  kDelayLineShort = 301,     ///< matched-delay line shorter than the path needs
  kUncoveredPath = 302,      ///< launch->capture path with no control-graph edge
  kDelayLineLong = 303,      ///< line longer than needed (area waste; warning)
  kMissingAck = 401,         ///< request arc without its acknowledging arc
  kRamClosureLost = 402,     ///< RAM writer ordering/closure arcs missing
};

/// Pass family of a code ("structure", "control", "timing", "handshake").
const char* code_pass(int code);
/// "DSN204" formatting.
std::string format_code(int code);

struct Diag {
  int code = 0;
  Severity severity = Severity::Error;
  std::string message;  ///< human-readable, names inline
  std::string net;      ///< offending net name ("" when not net-anchored)
  std::string cell;     ///< offending cell name ("" when not cell-anchored)
};

struct LintOptions {
  /// The matched-delay margin the flow ran with (DesyncOptions::margin).
  /// DesyncResult does not carry it, so the caller passes it through; the
  /// timing pass re-derives required delay-line lengths with it.
  double margin = 1.10;
  /// Per-destination-bank overrides (DesyncOptions::margins / flow::
  /// Margins indexing). Without these the timing pass would flag every
  /// line optimize_margins legitimately shaved as DSN301.
  std::vector<double> margins;

  /// Effective margin for matched delays captured by `bank`.
  double margin_of(int bank) const {
    size_t b = static_cast<size_t>(bank);
    return bank >= 0 && b < margins.size() && margins[b] > 0 ? margins[b]
                                                             : margin;
  }
};

struct LintReport {
  std::vector<Diag> diags;
  bool structure_clean = false;   ///< pass 1 found nothing cycle-breaking
  bool control_extracted = false; ///< pass 2 rebuilt the MG successfully
  size_t arcs_checked = 0;   ///< extracted control arcs compared to the model
  size_t paths_checked = 0;  ///< matched-delay pred paths length-verified
  size_t edges_checked = 0;  ///< recomputed launch->capture bank pairs

  size_t errors() const;
  size_t warnings() const;
  bool clean() const { return diags.empty(); }
  bool has(int code) const;
};

/// Run all four passes over a flow result. Pure analysis: `r` is not
/// modified and no exception escapes for any mutation of a once-valid
/// DesyncResult (defects become diagnostics, not crashes).
LintReport lint(const flow::DesyncResult& r, const cell::Tech& tech,
                const LintOptions& opt = {});

/// Human-readable multi-line rendering ("" header line per diag plus a
/// summary); `circuit` labels the run.
std::string render_text(const LintReport& rep, const std::string& circuit);

/// One desyn-lint-v1 run object (documented in docs/LINT.md):
///   {"circuit": ..., "protocol": ..., "margin": ..., "clean": ...,
///    "errors": N, "warnings": N,
///    "checked": {"arcs": ..., "paths": ..., "edges": ...},
///    "diags": [{"code": "DSN###", "pass": ..., "severity": ...,
///               "message": ..., "net": ..., "cell": ...}]}
/// Callers wrap runs into {"schema": "desyn-lint-v1", "runs": [...]}.
std::string render_json(const LintReport& rep, const std::string& circuit,
                        ctl::Protocol protocol, double margin);

}  // namespace desyn::check
