// Gate-level controller synthesis: the Pulse protocol.
//
// Each bank gets one Muller C-element carrying a 2-phase *round token*
// signal R, plus a local pulse generator deriving the latch enable:
//
//   R_a = C( wire(R_n) for every neighbour n )      (inverted for even banks)
//   L_a = XOR(R_a, buf(buf(R_a)))                   (one pulse per toggle)
//
// where wire() is a matched-delay line for predecessors (sized to the worst
// combinational path, >= 1 DELAY cell) and a buffer for successors. Every
// neighbour pair alternates strictly (each party's next toggle waits for
// the other's previous one through the opposite wire), so no control wire
// ever carries a transition that retracts before its consumer used it: the
// control layer is delay-insensitive in the classical Muller sense. Only
// the datapath carries timing assumptions (matched delays + pulse width),
// exactly the engineering contract of matched-delay de-synchronization.
// This is the local-clock-generation controller family of Varshavsky et
// al., the paper's reference [5].
//
// Even banks start with R=1 and odd banks with R=0; odd banks fire first,
// capturing the masters' reset data — the Pulse canonical schedule
// [O+ O- E+ E-]. All latches start opaque; flow equivalence against the
// synchronous reference is checked by the verif library.
//
// The Lockstep/Semi/Fully protocols remain first-class *models*
// (protocol_mg) for liveness/safety/throughput analysis; see DESIGN.md for
// why their single-C level-sampled implementations are not robust under
// unbalanced delays.
#pragma once

#include "cell/tech.h"
#include "ctl/protocol.h"
#include "netlist/builder.h"

namespace desyn::ctl {

struct ControllerNetwork {
  std::vector<nl::NetId> enables;       ///< per bank: its latch-enable net
  std::vector<nl::NetId> rounds;        ///< per bank: its round-token net
  std::vector<nl::NetId> control_nets;  ///< every net the synthesis created
  std::vector<nl::CellId> cells;        ///< every cell the synthesis created
  size_t delay_units = 0;               ///< total DELAY cells inserted
  Ps pulse_width = 0;                   ///< nominal latch pulse width
};

/// Instantiate Pulse-protocol controllers for `cg` into the netlist behind
/// `b`. Matched delays are taken from the edges (already margin-adjusted by
/// the caller), aggregated per destination bank (the paper's per-block
/// matched delay), credited with the controller's own response time and
/// quantized to whole DELAY cells (minimum one). Throws for any other
/// protocol (they are analysis models, not hardware templates).
ControllerNetwork synthesize_controllers(nl::Builder& b,
                                         const ControlGraph& cg, Protocol p,
                                         const cell::Tech& tech);

/// The consumer-side control-path delay (inverter + C-element + pulse XOR)
/// subtracted from every matched-delay line; exposed so the analytic model
/// (flow::timed_control_model) sizes lines identically to the hardware.
Ps controller_response_credit(const cell::Tech& tech);

}  // namespace desyn::ctl
