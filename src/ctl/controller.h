// Gate-level controller synthesis for all four de-synchronization
// protocols.
//
// Pulse (the original shipped hardware): each bank gets one Muller
// C-element carrying a 2-phase *round token* signal R, plus a local pulse
// generator deriving the latch enable:
//
//   R_a = C( wire(R_n) for every neighbour n )      (inverted for even banks)
//   L_a = XOR(R_a, buf(buf(R_a)))                   (one pulse per toggle)
//
// where wire() is a matched-delay line for predecessors (sized to the worst
// combinational path, >= 1 DELAY cell) and a buffer for successors. Every
// neighbour pair alternates strictly; this is the local-clock-generation
// controller family of Varshavsky et al., the paper's reference [5].
//
// Lockstep / SemiDecoupled / FullyDecoupled (the paper's Fig. 4 family):
// synthesized by the classical Muller marked-graph construction. Every
// transition of the protocol MG (a+ / a- per bank, see ctl/protocol.h)
// becomes one C-element carrying a 2-phase signal that toggles once per
// firing; every MG arc u -> v becomes an input of v's C-element:
//
//   * unmarked arc: the source signal s_u directly,
//   * marked arc (initial token): s_u through an inverter,
//   * predecessor-side arcs additionally run through one shared
//     matched-delay line per transition (the paper's per-block matched
//     delay, sized to the worst incoming edge and credited with the
//     controller's response time),
//   * marked predecessor arcs are gated with a one-shot reset *kick*
//     C-element so the initial token matures through the delay line at
//     startup instead of appearing pre-settled — the first capture of a
//     bank therefore waits for its slowest incoming data path, exactly as
//     the timed MG model assumes for initial tokens.
//
// The latch enable is the level  EN_a = XNOR(s_{a+}, s_{a-})  for even
// banks (transparent at reset, like a master latch at CLK=0) and
// XOR(s_{a+}, s_{a-}) for odd banks: EN rises on a+ and falls on a-, so a
// bank is transparent exactly between its + and - events. For a live and
// safe MG this network is speed-independent at the control level (Muller's
// theorem); only the datapath carries timing assumptions (matched delays),
// the engineering contract of matched-delay de-synchronization.
//
// Initial states follow each protocol's canonical schedule (see
// first_fire_index): for the synchronous two-phase order [E- O+ O- E+],
// even banks start transparent and capture first; for Pulse's order
// [O+ O- E+ E-] all banks start opaque and odd banks pulse first. Flow
// equivalence against the synchronous reference is checked by the verif
// library for every protocol.
#pragma once

#include "cell/tech.h"
#include "ctl/protocol.h"
#include "netlist/builder.h"

namespace desyn::ctl {

struct ControllerNetwork {
  std::vector<nl::NetId> enables;       ///< per bank: its latch-enable net
  /// Per bank: the 2-phase token net — the round C-element output for
  /// Pulse, the a+ transition signal for the level protocols.
  std::vector<nl::NetId> rounds;
  /// Per bank, level protocols only: the a- transition signal (the capture
  /// acknowledge). Invalid ids under Pulse, whose single round net plays
  /// both roles. The flow uses rounds/falls to compensate enable-tree
  /// insertion delay on wide banks (see core/desynchronizer.cpp).
  std::vector<nl::NetId> falls;
  std::vector<nl::NetId> control_nets;  ///< every net the synthesis created
  std::vector<nl::CellId> cells;        ///< every cell the synthesis created
  size_t delay_units = 0;               ///< total DELAY cells inserted
  Ps pulse_width = 0;  ///< nominal latch pulse width (Pulse) / minimum
                       ///< transparency width (level protocols)
};

/// Instantiate protocol `p` controllers for `cg` into the netlist behind
/// `b`. Matched delays are taken from the edges (already margin-adjusted by
/// the caller), aggregated per destination (the paper's per-block matched
/// delay), credited with the controller's own response time and quantized
/// to whole DELAY cells (minimum one).
ControllerNetwork synthesize_controllers(nl::Builder& b,
                                         const ControlGraph& cg, Protocol p,
                                         const cell::Tech& tech);

/// The consumer-side control-path delay (inverter + C-element + pulse XOR)
/// subtracted from every matched-delay line; exposed so the analytic model
/// (flow::timed_control_model) sizes lines identically to the hardware.
Ps controller_response_credit(const cell::Tech& tech);

/// The controller response time the timed models add to every cross-bank
/// arc (marking inverter + C-element). One definition shared by
/// flow::timed_model and the partition optimizer's delta scorer.
Ps controller_response_delay(const cell::Tech& tech);

/// The minimum transparency / pulse width every synthesis backend sizes
/// (three buffer delays, the pulse-generator chain). Shared by the
/// synthesis (ControllerNetwork::pulse_width) and every scoring model so
/// predictions cannot drift from the hardware.
Ps min_pulse_width(const cell::Tech& tech);

/// Number of whole DELAY cells the synthesis spends on a matched delay:
/// response credit subtracted, rounded up, minimum one. The single sizing
/// rule shared by the synthesis, the timed models and the benches — keep
/// every prediction in lockstep with the hardware.
int matched_delay_cells(Ps matched, const cell::Tech& tech);

/// `cg` with every edge's matched delay replaced by the length of its
/// synthesized delay line (matched_delay_cells * delay_unit), per edge.
/// On graphs where each transition has one predecessor edge (the bench
/// rings) this equals the per-destination aggregation the synthesis
/// performs, making hardware_mg of the result the analytic twin of the
/// synthesized network.
ControlGraph quantize_matched_delays(const ControlGraph& cg,
                                     const cell::Tech& tech);

/// The arcs the synthesized network implements: protocol_arcs(cg, p) plus,
/// for FullyDecoupled, a capture-ordering refinement arc per edge (see the
/// .cpp). hardware_mg is mg_from_arcs over this list; the partition
/// optimizer's delta scorer consumes the list directly so its incremental
/// timed model is arc-for-arc the hardware model.
std::vector<ProtoArc> hardware_arcs(const ControlGraph& cg, Protocol p);

/// The timed marked graph of the network synthesize_controllers() builds:
/// the protocol model plus the fully-decoupled capture-ordering refinement
/// (see the .cpp). Use this for throughput prediction of the hardware;
/// use protocol_mg for protocol-level analysis and conformance (the
/// refinement only restricts behavior, so hardware traces conform to both).
pn::MarkedGraph hardware_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay = 0, Ps pulse_width = 0);

}  // namespace desyn::ctl
