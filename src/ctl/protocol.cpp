#include "ctl/protocol.h"

#include <algorithm>

namespace desyn::ctl {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::Lockstep: return "lockstep";
    case Protocol::SemiDecoupled: return "semi-decoupled";
    case Protocol::FullyDecoupled: return "fully-decoupled";
    case Protocol::Pulse: return "pulse";
  }
  return "?";
}

int first_fire_index(Protocol p, bool even, bool plus) {
  if (p == Protocol::Pulse) {
    // Pulse order: O+ O- E+ E- (banks start opaque; odd pulses first).
    if (even) return plus ? 2 : 3;
    return plus ? 0 : 1;
  }
  // Synchronous two-phase order: E- O+ O- E+.
  if (even) return plus ? 3 : 0;
  return plus ? 1 : 2;
}

int ControlGraph::add_bank(std::string name, bool even) {
  banks_.push_back(Bank{std::move(name), even});
  return static_cast<int>(banks_.size()) - 1;
}

int ControlGraph::add_edge(int from, int to, Ps matched_delay) {
  DESYN_ASSERT(from >= 0 && from < static_cast<int>(banks_.size()));
  DESYN_ASSERT(to >= 0 && to < static_cast<int>(banks_.size()));
  DESYN_ASSERT(banks_[static_cast<size_t>(from)].even !=
                   banks_[static_cast<size_t>(to)].even,
               "control edge must connect banks of opposite parity: ",
               banks_[static_cast<size_t>(from)].name, " -> ",
               banks_[static_cast<size_t>(to)].name);
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from == from && edges_[i].to == to) {
      edges_[i].matched_delay = std::max(edges_[i].matched_delay, matched_delay);
      return static_cast<int>(i);
    }
  }
  edges_.push_back(Edge{from, to, matched_delay});
  return static_cast<int>(edges_.size()) - 1;
}

std::vector<int> ControlGraph::preds(int bank) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.to == bank) out.push_back(e.from);
  }
  return out;
}

std::vector<int> ControlGraph::succs(int bank) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.from == bank) out.push_back(e.to);
  }
  return out;
}

int ControlGraph::find_bank(std::string_view name) const {
  for (size_t i = 0; i < banks_.size(); ++i) {
    if (banks_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void ControlGraph::validate() const {
  for (const Edge& e : edges_) {
    DESYN_ASSERT(bank(e.from).even != bank(e.to).even);
    DESYN_ASSERT(e.matched_delay >= 0);
  }
}

pn::MarkedGraph protocol_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay, Ps pulse_width) {
  cg.validate();
  pn::MarkedGraph mg(cat("ctl_", protocol_name(p)));
  std::vector<BankTrans> bt;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    BankTrans t;
    t.plus = mg.add_transition(cg.bank(static_cast<int>(i)).name + "+");
    t.minus = mg.add_transition(cg.bank(static_cast<int>(i)).name + "-");
    bt.push_back(t);
  }

  auto idx = [&](int bank, bool plus) {
    return first_fire_index(p, cg.bank(bank).even, plus);
  };
  // Marked iff the target's first firing precedes the source's.
  auto marked = [&](int ub, bool up, int vb, bool vp) {
    return idx(vb, vp) < idx(ub, up) ? 1 : 0;
  };
  auto trans = [&](int bank, bool plus) {
    return plus ? bt[static_cast<size_t>(bank)].plus
                : bt[static_cast<size_t>(bank)].minus;
  };
  auto arc = [&](int ub, bool up, int vb, bool vp, Ps delay) {
    mg.add_arc(trans(ub, up), trans(vb, vp), marked(ub, up, vb, vp), delay);
  };

  // Alternation (also the "auxiliary arcs" of Fig. 4 for boundary banks).
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    int b = static_cast<int>(i);
    arc(b, true, b, false, pulse_width);  // a+ -> a-
    arc(b, false, b, true, 0);            // a- -> a+
  }

  for (const ControlGraph::Edge& e : cg.edges()) {
    const Ps pred_d = e.matched_delay + ctrl_delay;  // via the delay line
    const Ps succ_d = ctrl_delay;                    // direct wire back
    switch (p) {
      case Protocol::FullyDecoupled:
        arc(e.from, true, e.to, false, pred_d);   // a+ -> b-
        arc(e.to, false, e.from, true, succ_d);   // b- -> a+
        break;
      case Protocol::SemiDecoupled:
        arc(e.from, true, e.to, false, pred_d);
        arc(e.to, false, e.from, true, succ_d);
        arc(e.from, false, e.to, true, pred_d);   // a- -> b+
        arc(e.to, true, e.from, false, succ_d);   // b+ -> a-
        break;
      case Protocol::Lockstep:
        arc(e.from, true, e.to, true, pred_d);    // a+ -> b+
        arc(e.from, false, e.to, false, pred_d);  // a- -> b-
        arc(e.to, true, e.from, true, succ_d);    // b+ -> a+
        arc(e.to, false, e.from, false, succ_d);  // b- -> a-
        break;
      case Protocol::Pulse:
        // Round-token rendezvous on pulse starts; pulse widths live on the
        // alternation arcs (handled below via pulse_width).
        arc(e.from, true, e.to, true, pred_d);  // a+ -> b+
        arc(e.to, true, e.from, true, succ_d);  // b+ -> a+
        break;
    }
  }
  return mg;
}

std::vector<BankTrans> bank_transitions(const pn::MarkedGraph& mg,
                                        const ControlGraph& cg) {
  std::vector<BankTrans> bt;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    BankTrans t;
    t.plus = mg.find(cg.bank(static_cast<int>(i)).name + "+");
    t.minus = mg.find(cg.bank(static_cast<int>(i)).name + "-");
    DESYN_ASSERT(t.plus.valid() && t.minus.valid());
    bt.push_back(t);
  }
  return bt;
}

std::vector<pn::TransId> canonical_schedule(const pn::MarkedGraph& mg,
                                            const ControlGraph& cg,
                                            Protocol p, int periods) {
  auto bt = bank_transitions(mg, cg);
  std::vector<pn::TransId> seq;
  for (int k = 0; k < periods; ++k) {
    for (int batch = 0; batch < 4; ++batch) {
      for (size_t i = 0; i < cg.num_banks(); ++i) {
        bool even = cg.bank(static_cast<int>(i)).even;
        for (bool plus : {true, false}) {
          if (first_fire_index(p, even, plus) == batch) {
            seq.push_back(plus ? bt[i].plus : bt[i].minus);
          }
        }
      }
    }
  }
  return seq;
}

}  // namespace desyn::ctl
