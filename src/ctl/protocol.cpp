#include "ctl/protocol.h"

#include <algorithm>

#include "pn/analysis.h"

namespace desyn::ctl {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::Lockstep: return "lockstep";
    case Protocol::SemiDecoupled: return "semi-decoupled";
    case Protocol::FullyDecoupled: return "fully-decoupled";
    case Protocol::Pulse: return "pulse";
  }
  return "?";
}

Protocol parse_protocol(std::string_view name) {
  if (name == "lockstep") return Protocol::Lockstep;
  if (name == "semi" || name == "semi-decoupled") return Protocol::SemiDecoupled;
  if (name == "fully" || name == "fully-decoupled") {
    return Protocol::FullyDecoupled;
  }
  if (name == "pulse") return Protocol::Pulse;
  fail("unknown protocol '", name,
       "' (expected lockstep|semi|fully|pulse)");
}

int first_fire_index(Protocol p, bool even, bool plus) {
  if (p == Protocol::Pulse) {
    // Pulse order: O+ O- E+ E- (banks start opaque; odd pulses first).
    if (even) return plus ? 2 : 3;
    return plus ? 0 : 1;
  }
  // Synchronous two-phase order: E- O+ O- E+.
  if (even) return plus ? 3 : 0;
  return plus ? 1 : 2;
}

int ControlGraph::add_bank(std::string name, bool even) {
  banks_.push_back(Bank{std::move(name), even});
  return static_cast<int>(banks_.size()) - 1;
}

int ControlGraph::add_edge(int from, int to, Ps matched_delay) {
  DESYN_ASSERT(from >= 0 && from < static_cast<int>(banks_.size()));
  DESYN_ASSERT(to >= 0 && to < static_cast<int>(banks_.size()));
  DESYN_ASSERT(banks_[static_cast<size_t>(from)].even !=
                   banks_[static_cast<size_t>(to)].even,
               "control edge must connect banks of opposite parity: ",
               banks_[static_cast<size_t>(from)].name, " -> ",
               banks_[static_cast<size_t>(to)].name);
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(from))
                        << 32) |
                       static_cast<uint32_t>(to);
  auto [it, inserted] =
      edge_index_.try_emplace(key, static_cast<int>(edges_.size()));
  if (!inserted) {
    Edge& e = edges_[static_cast<size_t>(it->second)];
    e.matched_delay = std::max(e.matched_delay, matched_delay);
    return it->second;
  }
  edges_.push_back(Edge{from, to, matched_delay});
  return it->second;
}

std::vector<int> ControlGraph::preds(int bank) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.to == bank) out.push_back(e.from);
  }
  return out;
}

std::vector<int> ControlGraph::succs(int bank) const {
  std::vector<int> out;
  for (const Edge& e : edges_) {
    if (e.from == bank) out.push_back(e.to);
  }
  return out;
}

int ControlGraph::find_bank(std::string_view name) const {
  for (size_t i = 0; i < banks_.size(); ++i) {
    if (banks_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void ControlGraph::validate() const {
  for (const Edge& e : edges_) {
    DESYN_ASSERT(bank(e.from).even != bank(e.to).even);
    DESYN_ASSERT(e.matched_delay >= 0);
  }
}

std::vector<ProtoArc> protocol_arcs(const ControlGraph& cg, Protocol p) {
  cg.validate();
  std::vector<ProtoArc> arcs;
  auto idx = [&](int bank, bool plus) {
    return first_fire_index(p, cg.bank(bank).even, plus);
  };
  // Marked iff the target's first firing precedes the source's.
  auto arc = [&](int ub, bool up, int vb, bool vp, bool pred, Ps matched,
                 bool alt = false) {
    arcs.push_back(ProtoArc{ub, up, vb, vp, idx(vb, vp) < idx(ub, up), pred,
                            alt, pred ? matched : 0});
  };

  // Alternation (also the "auxiliary arcs" of Fig. 4 for boundary banks).
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    int b = static_cast<int>(i);
    arc(b, true, b, false, false, 0, true);  // a+ -> a-
    arc(b, false, b, true, false, 0, true);  // a- -> a+
  }

  for (const ControlGraph::Edge& e : cg.edges()) {
    const Ps d = e.matched_delay;
    switch (p) {
      case Protocol::FullyDecoupled:
        arc(e.from, true, e.to, false, true, d);    // a+ -> b-
        arc(e.to, false, e.from, true, false, 0);   // b- -> a+
        break;
      case Protocol::SemiDecoupled:
        arc(e.from, true, e.to, false, true, d);
        arc(e.to, false, e.from, true, false, 0);
        arc(e.from, false, e.to, true, true, d);    // a- -> b+
        arc(e.to, true, e.from, false, false, 0);   // b+ -> a-
        break;
      case Protocol::Lockstep:
        // Semi-decoupled's handshake (which already forbids overlapping
        // transparency on the edge) plus same-sign rendezvous: each event
        // of a waits for the previous same-sign event of b and vice versa,
        // the emulated two-phase clock. Without the semi arcs the
        // same-sign rendezvous alone would let b open while a is still
        // transparent — a combinational race through two open latches.
        arc(e.from, true, e.to, false, true, d);    // a+ -> b-
        arc(e.to, false, e.from, true, false, 0);   // b- -> a+
        arc(e.from, false, e.to, true, true, d);    // a- -> b+
        arc(e.to, true, e.from, false, false, 0);   // b+ -> a-
        arc(e.from, true, e.to, true, true, d);     // a+ -> b+
        arc(e.from, false, e.to, false, true, d);   // a- -> b-
        arc(e.to, true, e.from, true, false, 0);    // b+ -> a+
        arc(e.to, false, e.from, false, false, 0);  // b- -> a-
        break;
      case Protocol::Pulse:
        // Round-token rendezvous on pulse starts; pulse widths live on the
        // alternation arcs (annotated by protocol_mg).
        arc(e.from, true, e.to, true, true, d);     // a+ -> b+
        arc(e.to, true, e.from, true, false, 0);    // b+ -> a+
        break;
    }
  }
  return arcs;
}

pn::MarkedGraph mg_from_arcs(std::string name, const ControlGraph& cg,
                             std::span<const ProtoArc> arcs, Ps ctrl_delay,
                             Ps pulse_width) {
  pn::MarkedGraph mg(std::move(name));
  std::vector<BankTrans> bt;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    BankTrans t;
    t.plus = mg.add_transition(cg.bank(static_cast<int>(i)).name + "+");
    t.minus = mg.add_transition(cg.bank(static_cast<int>(i)).name + "-");
    bt.push_back(t);
  }
  auto trans = [&](int bank, bool plus) {
    return plus ? bt[static_cast<size_t>(bank)].plus
                : bt[static_cast<size_t>(bank)].minus;
  };
  for (const ProtoArc& a : arcs) {
    Ps delay = a.pred_side ? a.matched_delay + ctrl_delay : ctrl_delay;
    if (a.alternation) delay = a.from_plus ? pulse_width : 0;
    mg.add_arc(trans(a.from, a.from_plus), trans(a.to, a.to_plus),
               a.marked ? 1 : 0, delay);
  }
  return mg;
}

pn::MarkedGraph protocol_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay, Ps pulse_width) {
  pn::MarkedGraph mg = mg_from_arcs(cat("ctl_", protocol_name(p)), cg,
                                    protocol_arcs(cg, p), ctrl_delay,
                                    pulse_width);
#ifndef NDEBUG
  // The header's contract: every protocol MG admits its own canonical
  // schedule. Enforce it where the markings are derived, so a bad
  // first_fire_index tweak fails here instead of as a downstream deadlock.
  DESYN_ASSERT(pn::admits_sequence(mg, canonical_schedule(mg, cg, p, 1)) < 0,
               "protocol ", protocol_name(p),
               " marked graph rejects its own canonical schedule");
#endif
  return mg;
}

std::vector<BankTrans> bank_transitions(const pn::MarkedGraph& mg,
                                        const ControlGraph& cg) {
  std::vector<BankTrans> bt;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    BankTrans t;
    t.plus = mg.find(cg.bank(static_cast<int>(i)).name + "+");
    t.minus = mg.find(cg.bank(static_cast<int>(i)).name + "-");
    DESYN_ASSERT(t.plus.valid() && t.minus.valid());
    bt.push_back(t);
  }
  return bt;
}

std::vector<pn::TransId> canonical_schedule(const pn::MarkedGraph& mg,
                                            const ControlGraph& cg,
                                            Protocol p, int periods) {
  auto bt = bank_transitions(mg, cg);
  std::vector<pn::TransId> seq;
  for (int k = 0; k < periods; ++k) {
    for (int batch = 0; batch < 4; ++batch) {
      for (size_t i = 0; i < cg.num_banks(); ++i) {
        bool even = cg.bank(static_cast<int>(i)).even;
        for (bool plus : {true, false}) {
          if (first_fire_index(p, even, plus) == batch) {
            seq.push_back(plus ? bt[i].plus : bt[i].minus);
          }
        }
      }
    }
  }
  return seq;
}

}  // namespace desyn::ctl
