#include "ctl/conformance.h"

#include "pn/analysis.h"

namespace desyn::ctl {

TraceRecorder::TraceRecorder(sim::Simulator& sim, const ControlGraph& cg,
                             std::span<const nl::NetId> enables) {
  DESYN_ASSERT(enables.size() == cg.num_banks());
  for (size_t i = 0; i < enables.size(); ++i) {
    int bank = static_cast<int>(i);
    sim.watch(enables[i], [this, bank](Ps at, sim::V v) {
      if (v == sim::V::VX) return;
      trace_.push_back(BankEvent{at, bank, v == sim::V::V1});
    });
  }
}

long check_conformance(const ControlGraph& cg, Protocol p,
                       std::span<const BankEvent> trace) {
  pn::MarkedGraph mg = protocol_mg(cg, p);
  auto bt = bank_transitions(mg, cg);
  std::vector<pn::TransId> seq;
  seq.reserve(trace.size());
  for (const BankEvent& ev : trace) {
    seq.push_back(ev.plus ? bt[static_cast<size_t>(ev.bank)].plus
                          : bt[static_cast<size_t>(ev.bank)].minus);
  }
  return pn::admits_sequence(mg, seq);
}

}  // namespace desyn::ctl
