// De-synchronization protocols: pairwise latch-bank synchronization patterns
// (paper Fig. 4) and their composition into the control marked graph of a
// whole netlist (paper Fig. 2).
//
// A *bank* is a set of latches sharing one control signal; banks are even
// (master, transparent at CLK=0 in the synchronous reference) or odd
// (slave, transparent at CLK=1). An *edge* a->b means data flows from the
// latches of a through combinational logic into the latches of b.
//
// Transitions: for every bank `a`, `a+` (becomes transparent) and `a-`
// (becomes opaque / captures). All protocols share the alternation arcs
// a+ -> a- -> a+. Per data edge a->b they add:
//
//   FullyDecoupled (the paper's overlapping model, Fig. 4):
//     a+ -> b-   (b captures only after a launched new data; carries the
//                 matched delay in the timed model)
//     b- -> a+   (a may overwrite only after b captured)
//   SemiDecoupled: FullyDecoupled plus the mirror arcs
//     a- -> b+ , b+ -> a-
//   Lockstep (non-overlapping; the shipped single-C-element hardware):
//     a+ -> b+ , a- -> b- , b+ -> a+ , b- -> a-
//
// Initial markings are derived mechanically from the canonical synchronous
// schedule (E- O+ | O- E+ per clock period): arc u->v is marked iff v's
// first firing precedes u's first firing. This reproduces the markings of
// Fig. 4 (e.g. a+ -> b- marked, b- -> a+ unmarked).
#pragma once

#include <string>
#include <vector>

#include "pn/petri.h"

namespace desyn::ctl {

enum class Protocol {
  Lockstep,        ///< non-overlapping model: a toggles with all neighbours
  SemiDecoupled,   ///< fully-decoupled plus mirror arcs
  FullyDecoupled,  ///< the paper's Fig. 4 overlapping model
  Pulse,           ///< shipped hardware: 2-phase round tokens + local pulse
                   ///< generation (strict pairwise alternation; banks start
                   ///< opaque and pulse once per round)
};
const char* protocol_name(Protocol p);

/// Position of a bank event in the protocol's canonical schedule; used to
/// derive initial markings (arc u->v is marked iff v fires first) and to
/// build canonical_schedule(). Lockstep/Semi/Fully use the synchronous
/// two-phase order [E- O+ | O- E+]; Pulse uses its pulse order
/// [O+ O- | E+ E-].
int first_fire_index(Protocol p, bool even, bool plus);

/// Bank-level control structure extracted from a latch-based netlist.
class ControlGraph {
 public:
  struct Bank {
    std::string name;
    bool even = false;  ///< transparent at CLK=0 (master)
  };
  struct Edge {
    int from = 0;
    int to = 0;
    Ps matched_delay = 0;  ///< worst combinational path from -> to
  };

  int add_bank(std::string name, bool even);
  /// Add a data edge; endpoints must have opposite parity. Duplicate edges
  /// are merged keeping the larger delay.
  int add_edge(int from, int to, Ps matched_delay = 0);

  size_t num_banks() const { return banks_.size(); }
  const Bank& bank(int i) const { return banks_[static_cast<size_t>(i)]; }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<int> preds(int bank) const;
  std::vector<int> succs(int bank) const;
  int find_bank(std::string_view name) const;

  /// Structural sanity: parity alternation on every edge.
  void validate() const;

 private:
  std::vector<Bank> banks_;
  std::vector<Edge> edges_;
};

/// Transition pair of one bank in a protocol MG.
struct BankTrans {
  pn::TransId plus;
  pn::TransId minus;
};

/// Build the (optionally timed) protocol marked graph. `ctrl_delay` is the
/// controller response time added to every cross-bank arc; matched delays
/// from the edges are added to predecessor-side arcs. For Pulse,
/// `pulse_width` annotates the a+ -> a- alternation arcs (the local pulse).
pn::MarkedGraph protocol_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay = 0, Ps pulse_width = 0);

/// Transition handles per bank, in bank order ("<name>+"/"<name>-").
std::vector<BankTrans> bank_transitions(const pn::MarkedGraph& mg,
                                        const ControlGraph& cg);

/// The protocol's canonical schedule as a firing sequence: `periods`
/// repetitions of the four event batches in first_fire_index() order.
/// Every protocol MG must admit its own canonical schedule; for
/// Lockstep/Semi/Fully this is the synchronous schedule itself.
std::vector<pn::TransId> canonical_schedule(const pn::MarkedGraph& mg,
                                            const ControlGraph& cg,
                                            Protocol p, int periods);

}  // namespace desyn::ctl
