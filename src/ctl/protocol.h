// De-synchronization protocols: pairwise latch-bank synchronization patterns
// (paper Fig. 4) and their composition into the control marked graph of a
// whole netlist (paper Fig. 2).
//
// A *bank* is a set of latches sharing one control signal; banks are even
// (master, transparent at CLK=0 in the synchronous reference) or odd
// (slave, transparent at CLK=1). An *edge* a->b means data flows from the
// latches of a through combinational logic into the latches of b.
//
// Transitions: for every bank `a`, `a+` (becomes transparent) and `a-`
// (becomes opaque / captures). All protocols share the alternation arcs
// a+ -> a- -> a+. Per data edge a->b they add:
//
//   FullyDecoupled (the paper's overlapping model, Fig. 4):
//     a+ -> b-   (b captures only after a launched new data; carries the
//                 matched delay in the timed model)
//     b- -> a+   (a may overwrite only after b captured)
//   SemiDecoupled: FullyDecoupled plus the mirror arcs
//     a- -> b+ , b+ -> a-
//     (the mirrors forbid overlapping transparency on the edge: b opens
//      only after a closed)
//   Lockstep (non-overlapping; the emulated two-phase clock): SemiDecoupled
//   plus the same-sign rendezvous arcs
//     a+ -> b+ , a- -> b- , b+ -> a+ , b- -> a-
//
// Initial markings are derived mechanically from the canonical synchronous
// schedule (E- O+ | O- E+ per clock period): arc u->v is marked iff v's
// first firing precedes u's first firing. This reproduces the markings of
// Fig. 4 (e.g. a+ -> b- marked, b- -> a+ unmarked).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "pn/petri.h"

namespace desyn::ctl {

enum class Protocol {
  Lockstep,        ///< non-overlapping model: a toggles with all neighbours
  SemiDecoupled,   ///< fully-decoupled plus mirror arcs
  FullyDecoupled,  ///< the paper's Fig. 4 overlapping model
  Pulse,           ///< shipped hardware: 2-phase round tokens + local pulse
                   ///< generation (strict pairwise alternation; banks start
                   ///< opaque and pulse once per round)
};
const char* protocol_name(Protocol p);

/// All four protocols, least to most concurrent then Pulse — the one list
/// sweeps, benches and parametrized tests iterate so a new protocol cannot
/// silently drop out of coverage.
inline constexpr Protocol kAllProtocols[] = {
    Protocol::Lockstep, Protocol::SemiDecoupled, Protocol::FullyDecoupled,
    Protocol::Pulse};

/// Parse a protocol name as the CLI accepts it: "lockstep", "semi" /
/// "semi-decoupled", "fully" / "fully-decoupled", "pulse". Throws Error on
/// anything else.
Protocol parse_protocol(std::string_view name);

/// Position of a bank event in the protocol's canonical schedule; used to
/// derive initial markings (arc u->v is marked iff v fires first) and to
/// build canonical_schedule(). Lockstep/Semi/Fully use the synchronous
/// two-phase order [E- O+ | O- E+]; Pulse uses its pulse order
/// [O+ O- | E+ E-].
int first_fire_index(Protocol p, bool even, bool plus);

/// Bank-level control structure extracted from a latch-based netlist.
class ControlGraph {
 public:
  struct Bank {
    std::string name;
    bool even = false;  ///< transparent at CLK=0 (master)
  };
  struct Edge {
    int from = 0;
    int to = 0;
    Ps matched_delay = 0;  ///< worst combinational path from -> to
  };

  int add_bank(std::string name, bool even);
  /// Add a data edge; endpoints must have opposite parity. Duplicate edges
  /// are merged keeping the larger delay.
  int add_edge(int from, int to, Ps matched_delay = 0);

  size_t num_banks() const { return banks_.size(); }
  const Bank& bank(int i) const { return banks_[static_cast<size_t>(i)]; }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<int> preds(int bank) const;
  std::vector<int> succs(int bank) const;
  int find_bank(std::string_view name) const;

  /// Structural sanity: parity alternation on every edge.
  void validate() const;

 private:
  std::vector<Bank> banks_;
  std::vector<Edge> edges_;
  /// (from << 32 | to) -> index into edges_: keeps add_edge O(1) so graph
  /// construction stays linear even for the optimizer's quotient rebuilds.
  std::unordered_map<uint64_t, int> edge_index_;
};

/// Transition pair of one bank in a protocol MG.
struct BankTrans {
  pn::TransId plus;
  pn::TransId minus;
};

/// One arc of a protocol marked graph, in bank-event terms. Both the MG
/// builder (protocol_mg) and the gate-level synthesis consume this
/// enumeration, so the model and the hardware derive structure and initial
/// markings from a single source of truth.
struct ProtoArc {
  int from = 0;              ///< source bank
  bool from_plus = false;    ///< source event sign
  int to = 0;                ///< target bank
  bool to_plus = false;      ///< target event sign
  bool marked = false;       ///< carries an initial token (target fires first)
  bool pred_side = false;    ///< producer-to-consumer arc: carries the edge's
                             ///< matched delay (synthesized as a delay line)
  bool alternation = false;  ///< the a+ <-> a- arc pair of a single bank
  Ps matched_delay = 0;      ///< the edge's matched delay (pred_side only)
};

/// Every arc of the protocol MG for (cg, p), alternation arcs first, then
/// per-edge arcs in cg.edges() order.
std::vector<ProtoArc> protocol_arcs(const ControlGraph& cg, Protocol p);

/// Build a timed marked graph from an explicit arc list — the one
/// arcs-to-MG translation (transition naming, marking, and the delay
/// annotation rule: pred arcs carry matched + ctrl, succ arcs ctrl, the
/// a+ -> a- alternation pulse_width) shared by protocol_mg and
/// ctl::hardware_mg so model and hardware predictions cannot drift apart.
pn::MarkedGraph mg_from_arcs(std::string name, const ControlGraph& cg,
                             std::span<const ProtoArc> arcs, Ps ctrl_delay,
                             Ps pulse_width);

/// Build the (optionally timed) protocol marked graph. `ctrl_delay` is the
/// controller response time added to every cross-bank arc; matched delays
/// from the edges are added to predecessor-side arcs. For Pulse,
/// `pulse_width` annotates the a+ -> a- alternation arcs (the local pulse).
/// In debug builds (!NDEBUG) the result is checked to admit its own
/// canonical schedule, so a broken first_fire_index/marking derivation
/// fails at construction time rather than as a downstream conformance or
/// deadlock mystery.
pn::MarkedGraph protocol_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay = 0, Ps pulse_width = 0);

/// Transition handles per bank, in bank order ("<name>+"/"<name>-").
std::vector<BankTrans> bank_transitions(const pn::MarkedGraph& mg,
                                        const ControlGraph& cg);

/// The protocol's canonical schedule as a firing sequence: `periods`
/// repetitions of the four event batches in first_fire_index() order.
/// Every protocol MG must admit its own canonical schedule; for
/// Lockstep/Semi/Fully this is the synchronous schedule itself.
std::vector<pn::TransId> canonical_schedule(const pn::MarkedGraph& mg,
                                            const ControlGraph& cg,
                                            Protocol p, int periods);

}  // namespace desyn::ctl
