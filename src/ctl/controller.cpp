#include "ctl/controller.h"

#include <algorithm>

namespace desyn::ctl {

namespace {

/// Reduce `inputs` to at most kMaxArity with a C-element tree. Inputs move
/// monotonically between consecutive rendezvous (each toggles exactly once
/// per round), so a tree of C-elements implements the same join as one wide
/// C-element, with latency the matched-delay margin absorbs.
std::vector<nl::NetId> celem_tree(nl::Netlist& nl, ControllerNetwork& net,
                                  std::vector<nl::NetId> inputs,
                                  const std::string& bank_name, cell::V init) {
  int level = 0;
  while (static_cast<int>(inputs.size()) > cell::kMaxArity) {
    std::vector<nl::NetId> next;
    for (size_t k = 0; k < inputs.size(); k += cell::kMaxArity) {
      size_t n = std::min<size_t>(cell::kMaxArity, inputs.size() - k);
      if (n == 1) {
        next.push_back(inputs[k]);
        continue;
      }
      nl::NetId join =
          nl.add_net(cat("ctl.", bank_name, ".join", level, "_",
                         k / cell::kMaxArity));
      nl::CellId jc = nl.add_cell(
          cell::Kind::CElem, "",
          std::vector<nl::NetId>(inputs.begin() + static_cast<long>(k),
                                 inputs.begin() + static_cast<long>(k + n)),
          {join}, init);
      net.cells.push_back(jc);
      net.control_nets.push_back(join);
      next.push_back(join);
    }
    inputs = std::move(next);
    ++level;
  }
  return inputs;
}

}  // namespace

Ps controller_response_credit(const cell::Tech& tech) {
  // A request travels line -> (inverter) -> C-element -> pulse XOR before
  // the capture edge, while the producer's data left its latch right after
  // its own pulse XOR; these stages are part of the matched path.
  return tech.delay(cell::Kind::Inv, 1, 1) +
         tech.delay(cell::Kind::CElem, 2, 2) +
         tech.delay(cell::Kind::Xor, 2, 1);
}

ControllerNetwork synthesize_controllers(nl::Builder& b,
                                         const ControlGraph& cg, Protocol p,
                                         const cell::Tech& tech) {
  if (p != Protocol::Pulse) {
    fail("gate-level controllers are implemented for the pulse protocol; ",
         protocol_name(p),
         " is available as an analysis model (protocol_mg)");
  }
  cg.validate();
  nl::Netlist& nl = b.netlist();
  ControllerNetwork net;

  // Pre-create round nets so cross references resolve in any bank order.
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    nl::NetId r = nl.add_net(cat("ctl.", cg.bank(static_cast<int>(i)).name, ".r"));
    net.rounds.push_back(r);
    net.control_nets.push_back(r);
  }

  const Ps unit = tech.delay_unit();
  DESYN_ASSERT(unit > 0);

  const Ps response_credit = controller_response_credit(tech);

  for (size_t i = 0; i < cg.num_banks(); ++i) {
    const int bank = static_cast<int>(i);
    const std::string& bname = cg.bank(bank).name;
    const bool even = cg.bank(bank).even;
    const cell::V init = even ? cell::V::V1 : cell::V::V0;

    // Predecessor round tokens: join first (C-element tree), then one
    // shared matched-delay line per bank sized to the worst incoming edge —
    // the paper's per-block matched delay.
    std::vector<nl::NetId> pred_tokens;
    Ps worst = 0;
    for (const ControlGraph::Edge& e : cg.edges()) {
      if (e.to != bank) continue;
      pred_tokens.push_back(net.rounds[static_cast<size_t>(e.from)]);
      worst = std::max(worst, e.matched_delay);
    }
    std::vector<nl::NetId> inputs;
    if (!pred_tokens.empty()) {
      // Predecessors of an even bank are odd (round init 0) and vice versa,
      // so the join's initial value is the opposite parity.
      cell::V join_init = even ? cell::V::V0 : cell::V::V1;
      if (pred_tokens.size() > 1) {
        pred_tokens = celem_tree(nl, net, std::move(pred_tokens), bname + ".req",
                                 join_init);
        if (pred_tokens.size() > 1) {
          nl::NetId j = nl.add_net(cat("ctl.", bname, ".req"));
          net.cells.push_back(nl.add_cell(cell::Kind::CElem, "", pred_tokens,
                                          {j}, join_init));
          net.control_nets.push_back(j);
          pred_tokens = {j};
        }
      }
      nl::NetId tap = pred_tokens[0];
      const int units = std::max<int>(
          1, static_cast<int>(
                 (std::max<Ps>(0, worst - response_credit) + unit - 1) / unit));
      for (int k = 0; k < units; ++k) {
        nl::NetId next = nl.add_net(cat("ctl.", bname, ".d", k));
        nl::CellId c = nl.add_cell(cell::Kind::Delay, "", {tap}, {next});
        net.cells.push_back(c);
        net.control_nets.push_back(next);
        ++net.delay_units;
        tap = next;
      }
      inputs.push_back(tap);
    }
    // Successor round tokens through buffers (spatial wiring).
    for (const ControlGraph::Edge& e : cg.edges()) {
      if (e.from != bank) continue;
      nl::NetId ack =
          nl.add_net(cat("ctl.", cg.bank(e.to).name, ".ack.to.", bname));
      nl::CellId bc = nl.add_cell(cell::Kind::Buf, "",
                                  {net.rounds[static_cast<size_t>(e.to)]}, {ack});
      net.cells.push_back(bc);
      net.control_nets.push_back(ack);
      inputs.push_back(ack);
    }
    DESYN_ASSERT(!inputs.empty(), "bank ", bname, " has no control neighbours");

    // Even banks see inverted tokens: their C toggles after the (odd)
    // neighbours toggled, yielding the strict pairwise alternation.
    if (even) {
      std::vector<nl::NetId> inverted;
      for (nl::NetId in : inputs) {
        nl::NetId inv = nl.add_net("");
        nl::CellId ic = nl.add_cell(cell::Kind::Inv, "", {in}, {inv});
        net.cells.push_back(ic);
        net.control_nets.push_back(inv);
        inverted.push_back(inv);
      }
      inputs = std::move(inverted);
    }
    if (inputs.size() == 1) inputs.push_back(inputs[0]);  // C(a,a): follower
    inputs = celem_tree(nl, net, std::move(inputs), bname, init);
    if (inputs.size() == 1) inputs.push_back(inputs[0]);

    nl::CellId c = nl.add_cell(cell::Kind::CElem, cat("ctl.", bname), inputs,
                               {net.rounds[i]}, init);
    net.cells.push_back(c);

    // Local pulse generator: La = XOR(R, buf^3(R)) pulses once per toggle;
    // width = three buffers. The width must exceed the XOR's own loaded
    // delay (or the pulse is inertially swallowed); the flow additionally
    // rebuffers high-fanout enables with a distribution tree.
    nl::NetId d1 = nl.add_net(cat("ctl.", bname, ".p1"));
    nl::NetId d2 = nl.add_net(cat("ctl.", bname, ".p2"));
    nl::NetId d3 = nl.add_net(cat("ctl.", bname, ".p3"));
    nl::NetId en = nl.add_net(cat("ctl.", bname, ".en"));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {net.rounds[i]}, {d1}));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {d1}, {d2}));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {d2}, {d3}));
    net.cells.push_back(nl.add_cell(cell::Kind::Xor, cat("ctl.", bname, ".pg"),
                                    {net.rounds[i], d3}, {en}));
    net.control_nets.push_back(d1);
    net.control_nets.push_back(d2);
    net.control_nets.push_back(d3);
    net.control_nets.push_back(en);
    net.enables.push_back(en);
  }
  net.pulse_width = 3 * tech.spec(cell::Kind::Buf).delay;
  return net;
}

}  // namespace desyn::ctl
