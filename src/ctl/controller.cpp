#include "ctl/controller.h"

#include <algorithm>
#include <array>

#include "pn/analysis.h"

namespace desyn::ctl {

namespace {

/// Reduce `inputs` to at most kMaxArity with a C-element tree. Inputs move
/// monotonically between consecutive rendezvous (each toggles exactly once
/// per round) and share the reset value `init`, so a tree of C-elements
/// implements the same join as one wide C-element, with latency the
/// matched-delay margin absorbs.
std::vector<nl::NetId> celem_tree(nl::Netlist& nl, ControllerNetwork& net,
                                  std::vector<nl::NetId> inputs,
                                  const std::string& bank_name, cell::V init) {
  int level = 0;
  while (static_cast<int>(inputs.size()) > cell::kMaxArity) {
    std::vector<nl::NetId> next;
    for (size_t k = 0; k < inputs.size(); k += cell::kMaxArity) {
      size_t n = std::min<size_t>(cell::kMaxArity, inputs.size() - k);
      if (n == 1) {
        next.push_back(inputs[k]);
        continue;
      }
      nl::NetId join =
          nl.add_net(cat("ctl.", bank_name, ".join", level, "_",
                         k / cell::kMaxArity));
      nl::CellId jc = nl.add_cell(
          cell::Kind::CElem, "",
          std::vector<nl::NetId>(inputs.begin() + static_cast<long>(k),
                                 inputs.begin() + static_cast<long>(k + n)),
          {join}, init);
      net.cells.push_back(jc);
      net.control_nets.push_back(join);
      next.push_back(join);
    }
    inputs = std::move(next);
    ++level;
  }
  return inputs;
}

/// Join same-init `inputs` down to a single net (identity for one input).
nl::NetId join_to_one(nl::Netlist& nl, ControllerNetwork& net,
                      std::vector<nl::NetId> inputs,
                      const std::string& name, cell::V init) {
  if (inputs.size() == 1) return inputs[0];
  inputs = celem_tree(nl, net, std::move(inputs), name, init);
  if (inputs.size() == 1) return inputs[0];
  nl::NetId j = nl.add_net(cat("ctl.", name, ".join"));
  net.cells.push_back(nl.add_cell(cell::Kind::CElem, "", std::move(inputs),
                                  {j}, init));
  net.control_nets.push_back(j);
  return j;
}

}  // namespace

/// The arcs the synthesized network implements: the protocol model, plus —
/// for FullyDecoupled — a capture-ordering refinement (b- after a- through
/// the matched line). The Fig. 4 model relies on a producer's output being
/// settled when a consumer captures, but fully-decoupled transparency
/// windows overlap, so data two banks upstream can race through a
/// still-transparent producer into the consumer's capture. Semi and
/// lockstep exclude the overlap via their a- -> b+ mirror arcs; fully
/// keeps the overlap and orders the captures instead. Restricting the
/// network preserves conformance (every hardware trace stays a firing
/// sequence of the protocol model).
std::vector<ProtoArc> hardware_arcs(const ControlGraph& cg, Protocol p) {
  std::vector<ProtoArc> arcs = protocol_arcs(cg, p);
  if (p == Protocol::FullyDecoupled) {
    for (const ControlGraph::Edge& e : cg.edges()) {
      bool marked = first_fire_index(p, cg.bank(e.to).even, false) <
                    first_fire_index(p, cg.bank(e.from).even, false);
      arcs.push_back(ProtoArc{e.from, false, e.to, false, marked, true, false,
                              e.matched_delay});
    }
  }
  return arcs;
}

namespace {

ControllerNetwork synthesize_pulse(nl::Builder& b, const ControlGraph& cg,
                                   const cell::Tech& tech) {
  nl::Netlist& nl = b.netlist();
  ControllerNetwork net;

  // Pre-create round nets so cross references resolve in any bank order.
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    nl::NetId r = nl.add_net(cat("ctl.", cg.bank(static_cast<int>(i)).name, ".r"));
    net.rounds.push_back(r);
    net.falls.push_back(nl::NetId::invalid());  // R plays both roles
    net.control_nets.push_back(r);
  }

  for (size_t i = 0; i < cg.num_banks(); ++i) {
    const int bank = static_cast<int>(i);
    const std::string& bname = cg.bank(bank).name;
    const bool even = cg.bank(bank).even;
    const cell::V init = even ? cell::V::V1 : cell::V::V0;

    // Predecessor round tokens: join first (C-element tree), then one
    // shared matched-delay line per bank sized to the worst incoming edge —
    // the paper's per-block matched delay.
    std::vector<nl::NetId> pred_tokens;
    Ps worst = 0;
    for (const ControlGraph::Edge& e : cg.edges()) {
      if (e.to != bank) continue;
      pred_tokens.push_back(net.rounds[static_cast<size_t>(e.from)]);
      worst = std::max(worst, e.matched_delay);
    }
    std::vector<nl::NetId> inputs;
    if (!pred_tokens.empty()) {
      // Predecessors of an even bank are odd (round init 0) and vice versa,
      // so the join's initial value is the opposite parity.
      cell::V join_init = even ? cell::V::V0 : cell::V::V1;
      nl::NetId tap = join_to_one(nl, net, std::move(pred_tokens),
                                  bname + ".req", join_init);
      const int units = matched_delay_cells(worst, tech);
      for (int k = 0; k < units; ++k) {
        nl::NetId next = nl.add_net(cat("ctl.", bname, ".d", k));
        nl::CellId c = nl.add_cell(cell::Kind::Delay, "", {tap}, {next});
        net.cells.push_back(c);
        net.control_nets.push_back(next);
        ++net.delay_units;
        tap = next;
      }
      inputs.push_back(tap);
    }
    // Successor round tokens through buffers (spatial wiring).
    for (const ControlGraph::Edge& e : cg.edges()) {
      if (e.from != bank) continue;
      nl::NetId ack =
          nl.add_net(cat("ctl.", cg.bank(e.to).name, ".ack.to.", bname));
      nl::CellId bc = nl.add_cell(cell::Kind::Buf, "",
                                  {net.rounds[static_cast<size_t>(e.to)]}, {ack});
      net.cells.push_back(bc);
      net.control_nets.push_back(ack);
      inputs.push_back(ack);
    }
    DESYN_ASSERT(!inputs.empty(), "bank ", bname, " has no control neighbours");

    // Even banks see inverted tokens: their C toggles after the (odd)
    // neighbours toggled, yielding the strict pairwise alternation.
    if (even) {
      std::vector<nl::NetId> inverted;
      for (nl::NetId in : inputs) {
        nl::NetId inv = nl.add_net("");
        nl::CellId ic = nl.add_cell(cell::Kind::Inv, "", {in}, {inv});
        net.cells.push_back(ic);
        net.control_nets.push_back(inv);
        inverted.push_back(inv);
      }
      inputs = std::move(inverted);
    }
    if (inputs.size() == 1) inputs.push_back(inputs[0]);  // C(a,a): follower
    inputs = celem_tree(nl, net, std::move(inputs), bname, init);
    if (inputs.size() == 1) inputs.push_back(inputs[0]);

    nl::CellId c = nl.add_cell(cell::Kind::CElem, cat("ctl.", bname), inputs,
                               {net.rounds[i]}, init);
    net.cells.push_back(c);

    // Local pulse generator: La = XOR(R, buf^3(R)) pulses once per toggle;
    // width = three buffers. The width must exceed the XOR's own loaded
    // delay (or the pulse is inertially swallowed); the flow additionally
    // rebuffers high-fanout enables with a distribution tree.
    nl::NetId d1 = nl.add_net(cat("ctl.", bname, ".p1"));
    nl::NetId d2 = nl.add_net(cat("ctl.", bname, ".p2"));
    nl::NetId d3 = nl.add_net(cat("ctl.", bname, ".p3"));
    nl::NetId en = nl.add_net(cat("ctl.", bname, ".en"));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {net.rounds[i]}, {d1}));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {d1}, {d2}));
    net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {d2}, {d3}));
    net.cells.push_back(nl.add_cell(cell::Kind::Xor, cat("ctl.", bname, ".pg"),
                                    {net.rounds[i], d3}, {en}));
    net.control_nets.push_back(d1);
    net.control_nets.push_back(d2);
    net.control_nets.push_back(d3);
    net.control_nets.push_back(en);
    net.enables.push_back(en);
  }
  net.pulse_width = min_pulse_width(tech);
  return net;
}

/// Muller construction for the Lockstep/Semi/Fully protocols: one C-element
/// per MG transition, one inverter per marked arc, one delay line per
/// transition with predecessor arcs, a level enable per bank. See the
/// header comment for the theory.
ControllerNetwork synthesize_level(nl::Builder& b, const ControlGraph& cg,
                                   Protocol p, const cell::Tech& tech) {
  nl::Netlist& nl = b.netlist();
  ControllerNetwork net;

  // Transition signals s[bank][sign] (sign 1 = plus), all reset to 0;
  // pre-created so arcs resolve in any order.
  std::vector<std::array<nl::NetId, 2>> s(cg.num_banks());
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    const std::string& bname = cg.bank(static_cast<int>(i)).name;
    s[i][1] = nl.add_net(cat("ctl.", bname, ".tp"));
    s[i][0] = nl.add_net(cat("ctl.", bname, ".tm"));
    net.rounds.push_back(s[i][1]);
    net.falls.push_back(s[i][0]);
    net.control_nets.push_back(s[i][1]);
    net.control_nets.push_back(s[i][0]);
  }

  // One inverter per marked arc source, shared between its targets.
  std::vector<std::array<nl::NetId, 2>> inv_of(
      cg.num_banks(), {nl::NetId::invalid(), nl::NetId::invalid()});
  auto inverted = [&](int bank, bool plus) {
    nl::NetId& cached = inv_of[static_cast<size_t>(bank)][plus ? 1 : 0];
    if (!cached.valid()) {
      cached = nl.add_net("");
      net.cells.push_back(nl.add_cell(
          cell::Kind::Inv, "", {s[static_cast<size_t>(bank)][plus ? 1 : 0]},
          {cached}));
      net.control_nets.push_back(cached);
    }
    return cached;
  };

  // One-shot reset kick: rises once, a cell delay after reset release.
  // Gating the marked (initially-tokened) predecessor joins with it makes
  // the initial tokens travel the delay lines as real transitions, so the
  // first capture of every bank waits for its matched data path.
  nl::NetId kick = nl::NetId::invalid();
  auto ensure_kick = [&]() {
    if (kick.valid()) return kick;
    nl::NetId hi = nl.add_net("ctl.kick.hi");
    net.cells.push_back(nl.add_cell(cell::Kind::TieHi, "", {}, {hi}));
    kick = nl.add_net("ctl.kick");
    net.cells.push_back(nl.add_cell(cell::Kind::CElem, "ctl.kick", {hi, hi},
                                    {kick}, cell::V::V0));
    net.control_nets.push_back(hi);
    net.control_nets.push_back(kick);
    return kick;
  };

  // Group the protocol arcs by target transition. Predecessor-side arcs
  // into one transition join into one delay line per marking class (the
  // marking fixes the reset value, and C-joins need a uniform one); the
  // line is sized to the transition's worst incoming edge, mirroring the
  // per-destination aggregation of the timed model.
  struct TransIn {
    std::vector<nl::NetId> direct;  ///< succ/alternation arcs, post-invert
    std::vector<cell::V> direct_init;
    std::vector<nl::NetId> pred[2];  ///< pred-side arcs, by marking class
    Ps worst = 0;
  };
  std::vector<std::array<TransIn, 2>> in(cg.num_banks());
  for (const ProtoArc& a : hardware_arcs(cg, p)) {
    nl::NetId x = a.marked ? inverted(a.from, a.from_plus)
                           : s[static_cast<size_t>(a.from)][a.from_plus ? 1 : 0];
    if (a.alternation && a.from_plus) {
      // Minimum transparency width on the a+ -> a- leg (three buffers, as
      // the Pulse generator): without it a fully-decoupled bank's window
      // can shrink to one C-element delay — narrower than the latch
      // propagation delay, and narrow enough that the enable XOR's own
      // loaded delay inertially swallows the window entirely.
      const std::string& bname = cg.bank(a.from).name;
      for (int k = 0; k < 3; ++k) {
        nl::NetId next = nl.add_net(cat("ctl.", bname, ".w", k));
        net.cells.push_back(nl.add_cell(cell::Kind::Buf, "", {x}, {next}));
        net.control_nets.push_back(next);
        x = next;
      }
    }
    TransIn& ti = in[static_cast<size_t>(a.to)][a.to_plus ? 1 : 0];
    if (a.pred_side) {
      ti.pred[a.marked ? 1 : 0].push_back(x);
      ti.worst = std::max(ti.worst, a.matched_delay);
    } else {
      ti.direct.push_back(x);
      ti.direct_init.push_back(a.marked ? cell::V::V1 : cell::V::V0);
    }
  }

  for (size_t i = 0; i < cg.num_banks(); ++i) {
    const std::string& bname = cg.bank(static_cast<int>(i)).name;
    for (int sign = 0; sign < 2; ++sign) {
      TransIn& ti = in[i][sign];
      const std::string tname = cat(bname, sign ? "+" : "-");
      std::vector<nl::NetId> inputs = ti.direct;
      std::vector<cell::V> inits = ti.direct_init;
      for (int m = 0; m < 2; ++m) {
        if (ti.pred[m].empty()) continue;
        const bool marked = m == 1;
        nl::NetId tap = join_to_one(nl, net, std::move(ti.pred[m]),
                                    cat(tname, ".req", m),
                                    marked ? cell::V::V1 : cell::V::V0);
        if (marked) {
          nl::NetId gated = nl.add_net(cat("ctl.", tname, ".tok"));
          net.cells.push_back(nl.add_cell(cell::Kind::And, "",
                                          {tap, ensure_kick()}, {gated}));
          net.control_nets.push_back(gated);
          tap = gated;
        }
        const int units = matched_delay_cells(ti.worst, tech);
        for (int k = 0; k < units; ++k) {
          nl::NetId next = nl.add_net(cat("ctl.", tname, ".d", m, "_", k));
          net.cells.push_back(nl.add_cell(cell::Kind::Delay, "", {tap}, {next}));
          net.control_nets.push_back(next);
          ++net.delay_units;
          tap = next;
        }
        inputs.push_back(tap);
        inits.push_back(cell::V::V0);  // settles 0 whether gated or not
      }
      DESYN_ASSERT(!inputs.empty(), "transition ", tname,
                   " has no control inputs");
      if (inputs.size() > static_cast<size_t>(cell::kMaxArity)) {
        // Wide join: C-trees are only valid over same-reset-value inputs,
        // so collapse each reset-value class to one net first.
        std::vector<nl::NetId> classes;
        for (cell::V v : {cell::V::V0, cell::V::V1}) {
          std::vector<nl::NetId> group;
          for (size_t k = 0; k < inputs.size(); ++k) {
            if (inits[k] == v) group.push_back(inputs[k]);
          }
          if (group.empty()) continue;
          classes.push_back(
              join_to_one(nl, net, std::move(group),
                          cat(tname, v == cell::V::V1 ? ".tok1" : ".tok0"), v));
        }
        inputs = std::move(classes);
      }
      if (inputs.size() == 1) inputs.push_back(inputs[0]);  // C(a,a)
      net.cells.push_back(nl.add_cell(cell::Kind::CElem, cat("ctl.", tname),
                                      std::move(inputs), {s[i][sign]},
                                      cell::V::V0));
    }

    // Level enable: rises on a+, falls on a-. Even banks (masters) start
    // transparent — XNOR of the two all-zero transition signals — exactly
    // the synchronous reference at CLK=0; odd banks start opaque.
    nl::NetId en = nl.add_net(cat("ctl.", bname, ".en"));
    net.cells.push_back(
        nl.add_cell(cg.bank(static_cast<int>(i)).even ? cell::Kind::Xnor
                                                      : cell::Kind::Xor,
                    cat("ctl.", bname, ".eg"), {s[i][1], s[i][0]}, {en}));
    net.control_nets.push_back(en);
    net.enables.push_back(en);
  }
  // The a+ -> a- minimum-width leg; annotates the same alternation arcs in
  // the timed MG model.
  net.pulse_width = min_pulse_width(tech);
  return net;
}

}  // namespace

Ps controller_response_credit(const cell::Tech& tech) {
  // A request travels line -> (inverter) -> C-element -> pulse XOR before
  // the capture edge, while the producer's data left its latch right after
  // its own pulse XOR; these stages are part of the matched path.
  return tech.delay(cell::Kind::Inv, 1, 1) +
         tech.delay(cell::Kind::CElem, 2, 2) +
         tech.delay(cell::Kind::Xor, 2, 1);
}

Ps controller_response_delay(const cell::Tech& tech) {
  return tech.delay(cell::Kind::Inv, 1, 1) +
         tech.delay(cell::Kind::CElem, 2, 2);
}

Ps min_pulse_width(const cell::Tech& tech) {
  return 3 * tech.spec(cell::Kind::Buf).delay;
}

int matched_delay_cells(Ps matched, const cell::Tech& tech) {
  const Ps unit = tech.delay_unit();
  DESYN_ASSERT(unit > 0);
  const Ps credit = controller_response_credit(tech);
  return std::max<int>(
      1,
      static_cast<int>((std::max<Ps>(0, matched - credit) + unit - 1) / unit));
}

ControlGraph quantize_matched_delays(const ControlGraph& cg,
                                     const cell::Tech& tech) {
  ControlGraph q;
  for (size_t i = 0; i < cg.num_banks(); ++i) {
    q.add_bank(cg.bank(static_cast<int>(i)).name,
               cg.bank(static_cast<int>(i)).even);
  }
  for (const ControlGraph::Edge& e : cg.edges()) {
    q.add_edge(e.from, e.to,
               matched_delay_cells(e.matched_delay, tech) * tech.delay_unit());
  }
  return q;
}

pn::MarkedGraph hardware_mg(const ControlGraph& cg, Protocol p,
                            Ps ctrl_delay, Ps pulse_width) {
  return mg_from_arcs(cat("hw_", protocol_name(p)), cg, hardware_arcs(cg, p),
                      ctrl_delay, pulse_width);
}

ControllerNetwork synthesize_controllers(nl::Builder& b,
                                         const ControlGraph& cg, Protocol p,
                                         const cell::Tech& tech) {
  cg.validate();
#ifndef NDEBUG
  // Malformed protocol models must fail fast here, at synthesis time, not
  // later as a lint finding or a simulation deadlock. protocol_mg() already
  // asserts the MG admits its own canonical schedule; on top of that both
  // the abstract model and the hardware refinement must be live (no
  // token-free cycle: the network cannot deadlock) and safe (1-bounded:
  // a single wire per arc can carry the marking). is_safe() runs one
  // shortest-path query per arc, so it is gated on graph size — big
  // fabrics (4k+ transitions) still get the linear liveness check.
  {
    pn::MarkedGraph model = protocol_mg(cg, p);
    DESYN_ASSERT(pn::is_live(model), "protocol MG not live: ",
                 protocol_name(p));
    pn::MarkedGraph hw = hardware_mg(cg, p);
    DESYN_ASSERT(pn::is_live(hw), "hardware MG not live: ", protocol_name(p));
    constexpr uint32_t kSafeCheckMaxArcs = 4096;
    if (hw.num_arcs() <= kSafeCheckMaxArcs) {
      DESYN_ASSERT(pn::is_safe(model), "protocol MG not safe: ",
                   protocol_name(p));
      DESYN_ASSERT(pn::is_safe(hw), "hardware MG not safe: ",
                   protocol_name(p));
    }
  }
#endif
  if (p == Protocol::Pulse) return synthesize_pulse(b, cg, tech);
  return synthesize_level(b, cg, p, tech);
}

}  // namespace desyn::ctl
