// Conformance checking: does the gate-level controller network behave as a
// firing sequence of its protocol marked graph?
//
// A TraceRecorder watches the bank-enable nets during simulation; each
// 0->1 / 1->0 transition of bank b is the event b+ / b-. After the run,
// check_conformance() replays the recorded trace through the protocol MG's
// token game; any disabled firing is a conformance violation.
#pragma once

#include "ctl/controller.h"
#include "sim/sim.h"

namespace desyn::ctl {

struct BankEvent {
  Ps at = 0;
  int bank = 0;
  bool plus = false;  ///< true: enable rose (bank became transparent)
};

class TraceRecorder {
 public:
  /// Registers watchers on every bank enable. Must be constructed before
  /// the simulation run it should observe.
  TraceRecorder(sim::Simulator& sim, const ControlGraph& cg,
                std::span<const nl::NetId> enables);

  const std::vector<BankEvent>& trace() const { return trace_; }

 private:
  std::vector<BankEvent> trace_;
};

/// Replay `trace` on the protocol MG for (cg, p). Returns the index of the
/// first non-admissible event, or -1 if the whole trace conforms.
long check_conformance(const ControlGraph& cg, Protocol p,
                       std::span<const BankEvent> trace);

}  // namespace desyn::ctl
