// The persistent desyn server: a flow engine behind a unix socket.
//
// Protocol (schema "desyn-svc-v1"): line-delimited JSON, one request per
// line, one response per line, over an AF_UNIX stream socket. A request
// names a circuit and the flow knobs:
//
//   {"verilog": "<structural verilog>", "clock": "clk",
//    "strategy": "prefix:1", "margin": 1.1, "protocol": "pulse"}
//
// strategy/margin/protocol are optional (defaults: prefix, 1.1, pulse).
// An optional "timeout_ms" (integer, [0, 3600000], 0 = none) arms a
// per-request deadline: the flow is cancelled cooperatively at stage
// boundaries and inside the MCR solver loops once it expires.
// A successful response reuses the desyn-sweep-v2 cell vocabulary and
// carries the emitted circuit:
//
//   {"schema": "desyn-svc-v1", "cached": <bool>, "result":
//     {"circuit": ..., "strategy": ..., "protocol": ..., "margin": ...,
//      "banks": ..., "controller_cells": ..., "delay_cells": ...,
//      "sync_cells": ..., "desync_cells": ...,
//      "predicted_period_ps": ..., "verilog": "..."}}
//
// An optional boolean request field "lint" additionally runs the static
// verifier (src/check) on the desynchronized design and appends its
// desyn-lint-v1 run object (docs/LINT.md) to the result:
//
//   {..., "verilog": "...", "lint": {"circuit": ..., "clean": <bool>,
//                                    "errors": N, "diags": [...], ...}}
//
// The lint report is itself a content-addressed engine stage, so a
// re-submitted design pays nothing for asking again.
//
// "cached" reports whether the engine served the submission from its
// result cache; the "result" object is byte-identical either way. Every
// failure is a typed error response — the connection (and the server)
// survives malformed input:
//
//   {"schema": "desyn-svc-v1", "error": {"kind": "<kind>",
//                                        "message": "..."}}
//
//   parse      the line is not valid JSON
//   request    the JSON is missing/invalid fields (bad strategy name,
//              unknown clock net, unreadable circuit, margin out of range)
//   flow       the flow itself rejected the design (e.g. multiple clocks)
//   deadline   the request's timeout_ms expired mid-flow
//   cancelled  the request was cancelled (server drain)
//   busy       the server shed the connection at admission (max_pending);
//              retryable — submissions are content-addressed
//   limit      a request line exceeded max_request_bytes (connection is
//              then dropped)
//   internal   an injected fault or unexpected exception; retryable
//
// Concurrency and graceful degradation: one acceptor thread admits
// connections into a bounded queue; a fixed pool of worker threads drains
// it, one connection at a time, exceptions isolated per connection. When
// the queue is full the acceptor writes a typed `busy` response and
// closes — no client can grow server state unboundedly. Accepted sockets
// carry SO_RCVTIMEO/SO_SNDTIMEO deadlines so a stalled or idle peer
// cannot pin a worker. All workers share one Engine (stage artifacts
// computed for one client are served to every other). docs/ROBUSTNESS.md
// covers the failure model end to end.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/cancel.h"
#include "flow/engine.h"

namespace desyn::svc {

struct ServerOptions {
  std::string socket_path;  ///< required: where to bind the unix socket
  int threads = 2;          ///< worker pool size
  size_t capacity = 96;     ///< engine artifact-store capacity (entries)
  std::string cache_dir;    ///< optional on-disk artifact tier
  int max_pending = 16;     ///< admitted connections awaiting a worker
                            ///< before the acceptor sheds with `busy`
  int io_timeout_ms = 30000;  ///< per-connection socket read/write
                              ///< deadline; 0 = none
  size_t max_request_bytes = 16u << 20;  ///< request-line cap (`limit`)
};

class Server {
 public:
  /// `tech` must outlive the server.
  Server(const cell::Tech& tech, const ServerOptions& opt);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket and launch the acceptor + worker pool.
  /// Throws Error when the socket cannot be created (path too long, bind
  /// failure). A stale socket file at the path is replaced.
  void start();

  /// Shut the listener down, join acceptor + workers, unlink the socket
  /// file. Idempotent. In-flight requests finish (their responses are
  /// written); idle and queued connections are dropped.
  void stop();

  /// Cancels every in-flight request (they answer with a typed
  /// `cancelled` error). Pair with stop() for a bounded-time drain when a
  /// second SIGTERM demands immediate shutdown.
  void cancel_inflight();

  bool running() const { return listen_fd_ >= 0; }
  const std::string& socket_path() const { return opt_.socket_path; }
  flow::Engine& engine() { return engine_; }

  /// Handle one request line (without trailing newline) and return the
  /// response line (without trailing newline). Exposed so tests can
  /// exercise the protocol without a socket, and the CLI's single-shot
  /// path can share the exact response bytes.
  std::string handle_request(const std::string& line);

 private:
  void acceptor();
  void worker();
  void serve_connection(int fd);
  bool write_line(int fd, std::string line);

  const cell::Tech& tech_;
  ServerOptions opt_;
  flow::Engine engine_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conn_mu_;  ///< guards conns_/pending_/inflight_/stopping_
  std::condition_variable pending_cv_;
  std::deque<int> pending_;  ///< admitted, waiting for a worker
  std::set<int> conns_;      ///< connections currently being served
  std::set<CancelToken*> inflight_;  ///< tokens of requests mid-flow
  bool stopping_ = false;
};

}  // namespace desyn::svc
