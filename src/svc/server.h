// The persistent desyn server: a flow engine behind a unix socket.
//
// Protocol (schema "desyn-svc-v1"): line-delimited JSON, one request per
// line, one response per line, over an AF_UNIX stream socket. A request
// names a circuit and the flow knobs:
//
//   {"verilog": "<structural verilog>", "clock": "clk",
//    "strategy": "prefix:1", "margin": 1.1, "protocol": "pulse"}
//
// strategy/margin/protocol are optional (defaults: prefix, 1.1, pulse).
// A successful response reuses the desyn-sweep-v2 cell vocabulary and
// carries the emitted circuit:
//
//   {"schema": "desyn-svc-v1", "cached": <bool>, "result":
//     {"circuit": ..., "strategy": ..., "protocol": ..., "margin": ...,
//      "banks": ..., "controller_cells": ..., "delay_cells": ...,
//      "sync_cells": ..., "desync_cells": ...,
//      "predicted_period_ps": ..., "verilog": "..."}}
//
// An optional boolean request field "lint" additionally runs the static
// verifier (src/check) on the desynchronized design and appends its
// desyn-lint-v1 run object (docs/LINT.md) to the result:
//
//   {..., "verilog": "...", "lint": {"circuit": ..., "clean": <bool>,
//                                    "errors": N, "diags": [...], ...}}
//
// The lint report is itself a content-addressed engine stage, so a
// re-submitted design pays nothing for asking again.
//
// "cached" reports whether the engine served the submission from its
// result cache; the "result" object is byte-identical either way. Every
// failure is a typed error response — the connection (and the server)
// survives malformed input:
//
//   {"schema": "desyn-svc-v1", "error": {"kind": "parse|request|flow",
//                                        "message": "..."}}
//
//   parse    the line is not valid JSON
//   request  the JSON is missing/invalid fields (bad strategy name,
//            unknown clock net, unreadable circuit, margin out of range)
//   flow     the flow itself rejected the design (e.g. multiple clocks)
//
// Concurrency: a small fixed pool of worker threads accepts and serves
// connections; all workers share one Engine (stage artifacts computed for
// one client are served to every other).
#pragma once

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "flow/engine.h"

namespace desyn::svc {

struct ServerOptions {
  std::string socket_path;  ///< required: where to bind the unix socket
  int threads = 2;          ///< worker pool size
  size_t capacity = 96;     ///< engine artifact-store capacity (entries)
  std::string cache_dir;    ///< optional on-disk artifact tier
};

class Server {
 public:
  /// `tech` must outlive the server.
  Server(const cell::Tech& tech, const ServerOptions& opt);
  ~Server();  ///< stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen on the socket and launch the worker pool. Throws Error
  /// when the socket cannot be created (path too long, bind failure). A
  /// stale socket file at the path is replaced.
  void start();

  /// Shut the listener down, join the workers, unlink the socket file.
  /// Idempotent. In-flight requests finish (their responses are written);
  /// idle and queued connections are dropped.
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  const std::string& socket_path() const { return opt_.socket_path; }
  flow::Engine& engine() { return engine_; }

  /// Handle one request line (without trailing newline) and return the
  /// response line (without trailing newline). Exposed so tests can
  /// exercise the protocol without a socket, and the CLI's single-shot
  /// path can share the exact response bytes.
  std::string handle_request(const std::string& line);

 private:
  void worker();
  void serve_connection(int fd);

  const cell::Tech& tech_;
  ServerOptions opt_;
  flow::Engine engine_;
  int listen_fd_ = -1;
  std::vector<std::thread> workers_;
  std::mutex conn_mu_;   ///< guards conns_ + stopping_
  std::set<int> conns_;  ///< accepted connections still being served
  bool stopping_ = false;
};

}  // namespace desyn::svc
