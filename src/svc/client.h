// Thin blocking client for the desyn server (see server.h for the
// protocol). One connection, sequential request/response round trips —
// what the CLI's `submit` subcommand and the stress tests need — plus a
// retrying submit for flaky transports: submissions are content-addressed
// and side-effect-free on the server, so replaying one is always safe.
#pragma once

#include <cstdint>
#include <string>

#include "base/common.h"

namespace desyn::svc {

/// A failure worth retrying: the server was unreachable, shed load, or
/// the connection died mid-round-trip — nothing that indicts the request
/// itself. Typed errors about the request (parse/request/flow/deadline)
/// are NOT transient and surface as plain Error.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

class Client {
 public:
  /// Connect to the server's unix socket. Throws TransientError when the
  /// socket is absent or refuses the connection (the server may still be
  /// starting — callers with retry treat this as try-again). A positive
  /// `io_timeout_ms` arms SO_RCVTIMEO/SO_SNDTIMEO on the connection.
  explicit Client(const std::string& socket_path, int io_timeout_ms = 0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line and block for the response line. `request`
  /// must not contain '\n' (the protocol's line delimiter); the returned
  /// response has its delimiter stripped. Throws TransientError when the
  /// server hangs up mid-round-trip or the io deadline expires.
  std::string roundtrip(const std::string& request);

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last response line
};

/// Build a desyn-svc-v1 request line from the flow inputs. `sim_jobs`
/// rides along as DesyncOptions::sim_jobs (byte-identical results at any
/// value, so it never affects the server's cache identity); the default 1
/// is omitted from the line, keeping pre-sim_jobs request bytes stable.
/// Likewise `timeout_ms` (a per-request deadline, 0 = none) is omitted
/// when defaulted.
std::string make_request(const std::string& verilog, const std::string& clock,
                         const std::string& strategy, double margin,
                         const std::string& protocol, int sim_jobs = 1,
                         int64_t timeout_ms = 0);

/// Extract the raw bytes of the "result" object from a successful
/// response line — exactly as the server emitted them, so saved results
/// compare byte-identically across cached and cold submissions. Throws
/// Error (quoting any server error) when the response is not a success.
std::string extract_result(const std::string& response);

struct RetryOptions {
  int retries = 0;        ///< extra attempts after the first
  int io_timeout_ms = 0;  ///< per-attempt socket deadline; 0 = none
  int base_delay_ms = 50;  ///< backoff base (doubles per attempt)
  uint64_t seed = 0;       ///< deterministic jitter seed
};

/// Submit `request` with up to 1 + retries attempts, each on a fresh
/// connection. Retried failures: TransientError (unreachable, timeout,
/// mid-stream hangup) and the server's retryable typed errors (`busy`,
/// `internal`). Request-indicting errors (parse/request/flow/deadline/
/// cancelled/limit) return immediately — retrying cannot fix them.
/// Backoff between attempts is exponential with deterministic jitter:
/// base_delay_ms << attempt, plus up to 50% jitter from `seed`.
/// Returns the response line; rethrows the last failure when every
/// attempt burned.
std::string submit_with_retry(const std::string& socket_path,
                              const std::string& request,
                              const RetryOptions& opt = {});

}  // namespace desyn::svc
