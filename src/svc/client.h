// Thin blocking client for the desyn server (see server.h for the
// protocol). One connection, sequential request/response round trips —
// what the CLI's `submit` subcommand and the stress tests need.
#pragma once

#include <string>

namespace desyn::svc {

class Client {
 public:
  /// Connect to the server's unix socket. Throws Error when the socket is
  /// absent or refuses the connection.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line and block for the response line. `request`
  /// must not contain '\n' (the protocol's line delimiter); the returned
  /// response has its delimiter stripped. Throws Error when the server
  /// hangs up mid-round-trip.
  std::string roundtrip(const std::string& request);

 private:
  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last response line
};

/// Build a desyn-svc-v1 request line from the flow inputs. `sim_jobs`
/// rides along as DesyncOptions::sim_jobs (byte-identical results at any
/// value, so it never affects the server's cache identity); the default 1
/// is omitted from the line, keeping pre-sim_jobs request bytes stable.
std::string make_request(const std::string& verilog, const std::string& clock,
                         const std::string& strategy, double margin,
                         const std::string& protocol, int sim_jobs = 1);

/// Extract the raw bytes of the "result" object from a successful
/// response line — exactly as the server emitted them, so saved results
/// compare byte-identically across cached and cold submissions. Throws
/// Error (quoting any server error) when the response is not a success.
std::string extract_result(const std::string& response);

}  // namespace desyn::svc
