#include "svc/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "base/common.h"
#include "base/json.h"

namespace desyn::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path too long: ", socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket(): ", std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    fail("connect(", socket_path, "): ", std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(const std::string& request) {
  DESYN_ASSERT(request.find('\n') == std::string::npos,
               "request must be a single line");
  std::string line = request;
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    ssize_t w = ::write(fd_, line.data() + off, line.size() - off);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) fail("server closed the connection while writing");
    off += static_cast<size_t>(w);
  }
  char chunk[65536];
  for (;;) {
    size_t eol = buf_.find('\n');
    if (eol != std::string::npos) {
      std::string response = buf_.substr(0, eol);
      buf_.erase(0, eol + 1);
      return response;
    }
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) fail("server closed the connection while reading");
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

std::string make_request(const std::string& verilog, const std::string& clock,
                         const std::string& strategy, double margin,
                         const std::string& protocol, int sim_jobs) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", margin);
  // The default is omitted so request lines (and anything keyed on them)
  // are byte-identical to pre-sim_jobs clients.
  std::string jobs_field =
      sim_jobs != 1 ? cat(", \"sim_jobs\": ", sim_jobs) : std::string();
  return cat("{\"verilog\": \"", json::escape(verilog), "\", \"clock\": \"",
             json::escape(clock), "\", \"strategy\": \"",
             json::escape(strategy), "\", \"margin\": ", buf,
             ", \"protocol\": \"", json::escape(protocol), "\"", jobs_field,
             "}");
}

std::string extract_result(const std::string& response) {
  // The response layout is fixed (server.cpp): ... , "result": {...}}
  // Raw extraction — not a parse/re-serialize round trip — keeps the
  // saved bytes exactly what the server emitted.
  json::Value v = json::parse(response);  // reject garbage first
  if (const json::Value* err = v.get("error")) {
    fail("server error (", err->get_string("kind", "?"),
         "): ", err->get_string("message", "?"));
  }
  const std::string marker = "\"result\": ";
  size_t pos = response.find(marker);
  if (!v.get("result") || pos == std::string::npos || response.empty() ||
      response.back() != '}') {
    fail("malformed server response");
  }
  return response.substr(pos + marker.size(),
                         response.size() - (pos + marker.size()) - 1);
}

}  // namespace desyn::svc
