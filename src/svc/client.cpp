#include "svc/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "base/json.h"

namespace desyn::svc {

Client::Client(const std::string& socket_path, int io_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path too long: ", socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket(): ", std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw TransientError(
        cat("connect(", socket_path, "): ", std::strerror(err)));
  }
  if (io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::roundtrip(const std::string& request) {
  DESYN_ASSERT(request.find('\n') == std::string::npos,
               "request must be a single line");
  std::string line = request;
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a server that dropped us must surface as EPIPE (a
    // transient error), not a SIGPIPE that kills the client.
    ssize_t w = ::send(fd_, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      throw TransientError("server closed the connection while writing");
    }
    off += static_cast<size_t>(w);
  }
  char chunk[65536];
  for (;;) {
    size_t eol = buf_.find('\n');
    if (eol != std::string::npos) {
      std::string response = buf_.substr(0, eol);
      buf_.erase(0, eol + 1);
      return response;
    }
    ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      throw TransientError("timed out waiting for the server's response");
    }
    if (n <= 0) {
      throw TransientError("server closed the connection while reading");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

std::string make_request(const std::string& verilog, const std::string& clock,
                         const std::string& strategy, double margin,
                         const std::string& protocol, int sim_jobs,
                         int64_t timeout_ms) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", margin);
  // Defaults are omitted so request lines (and anything keyed on them)
  // are byte-identical to older clients that never sent the field.
  std::string jobs_field =
      sim_jobs != 1 ? cat(", \"sim_jobs\": ", sim_jobs) : std::string();
  std::string timeout_field =
      timeout_ms > 0 ? cat(", \"timeout_ms\": ", timeout_ms) : std::string();
  return cat("{\"verilog\": \"", json::escape(verilog), "\", \"clock\": \"",
             json::escape(clock), "\", \"strategy\": \"",
             json::escape(strategy), "\", \"margin\": ", buf,
             ", \"protocol\": \"", json::escape(protocol), "\"", jobs_field,
             timeout_field, "}");
}

std::string extract_result(const std::string& response) {
  // The response layout is fixed (server.cpp): ... , "result": {...}}
  // Raw extraction — not a parse/re-serialize round trip — keeps the
  // saved bytes exactly what the server emitted.
  json::Value v = json::parse(response);  // reject garbage first
  if (const json::Value* err = v.get("error")) {
    fail("server error (", err->get_string("kind", "?"),
         "): ", err->get_string("message", "?"));
  }
  const std::string marker = "\"result\": ";
  size_t pos = response.find(marker);
  if (!v.get("result") || pos == std::string::npos || response.empty() ||
      response.back() != '}') {
    fail("malformed server response");
  }
  return response.substr(pos + marker.size(),
                         response.size() - (pos + marker.size()) - 1);
}

namespace {

/// Server-reported error kinds that a retry can plausibly fix. Everything
/// else indicts the request and is returned to the caller untouched.
bool retryable_response(const std::string& response) {
  try {
    json::Value v = json::parse(response);
    const json::Value* err = v.get("error");
    if (!err) return false;
    std::string kind = err->get_string("kind", "");
    return kind == "busy" || kind == "internal";
  } catch (const std::exception&) {
    return false;  // not even JSON: surface it, don't loop on garbage
  }
}

}  // namespace

std::string submit_with_retry(const std::string& socket_path,
                              const std::string& request,
                              const RetryOptions& opt) {
  Rng jitter(opt.seed ^ 0x7261657472797273ull);  // distinct per-seed stream
  for (int attempt = 0;; ++attempt) {
    try {
      // A fresh connection per attempt: the previous one may be
      // half-dead, and reconnecting is what clears svc.accept/read/write
      // style failures.
      Client client(socket_path, opt.io_timeout_ms);
      std::string response = client.roundtrip(request);
      if (attempt < opt.retries && retryable_response(response)) {
        throw TransientError(cat("retryable server response: ", response));
      }
      return response;
    } catch (const TransientError&) {
      if (attempt >= opt.retries) throw;
    }
    // Exponential backoff, capped, with deterministic jitter so a stampede
    // of identical clients still decorrelates.
    int64_t delay = static_cast<int64_t>(opt.base_delay_ms)
                    << std::min(attempt, 6);
    delay += static_cast<int64_t>(jitter.below(
        static_cast<uint64_t>(delay / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

}  // namespace desyn::svc
