#include "svc/server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "base/fault.h"
#include "base/json.h"
#include "check/check.h"
#include "netlist/reader.h"

namespace desyn::svc {

namespace {

constexpr int64_t kMaxTimeoutMs = 3'600'000;  // request "timeout_ms" cap

std::string error_response(const char* kind, const std::string& message) {
  return cat("{\"schema\": \"desyn-svc-v1\", \"error\": {\"kind\": \"", kind,
             "\", \"message\": \"", json::escape(message), "\"}}");
}

/// The "result" object (sweep-v2 vocabulary + the emitted circuit). The
/// bytes are deterministic and independent of cache state — the CI smoke
/// job compares two submissions' saved results with cmp.
std::string result_object(const std::string& circuit,
                          const std::string& strategy, const char* protocol,
                          double margin, const flow::FlowOutcome& out,
                          const std::string& lint_json) {
  char buf[160];
  std::string s = cat("{\"circuit\": \"", json::escape(circuit),
                      "\", \"strategy\": \"", json::escape(strategy),
                      "\", \"protocol\": \"", protocol, "\",");
  std::snprintf(buf, sizeof buf, " \"margin\": %.4f,", margin);
  s += buf;
  s += cat(" \"banks\": ", out.stats.banks,
           ", \"controller_cells\": ", out.stats.controller_cells,
           ", \"delay_cells\": ", out.stats.delay_cells,
           ", \"sync_cells\": ", out.stats.cells_in,
           ", \"desync_cells\": ", out.stats.cells_out, ",");
  std::snprintf(buf, sizeof buf, " \"predicted_period_ps\": %.6f,",
                out.stats.predicted_period_ps);
  s += buf;
  s += cat(" \"verilog\": \"", json::escape(*out.verilog), "\"");
  if (!lint_json.empty()) s += cat(", \"lint\": ", lint_json);
  s += "}";
  return s;
}

void set_io_deadlines(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

Server::Server(const cell::Tech& tech, const ServerOptions& opt)
    : tech_(tech),
      opt_(opt),
      engine_(tech, flow::EngineOptions{opt.capacity, opt.cache_dir}) {
  DESYN_ASSERT(opt_.threads > 0);
  DESYN_ASSERT(opt_.max_pending > 0);
  DESYN_ASSERT(opt_.max_request_bytes > 0);
}

Server::~Server() { stop(); }

std::string Server::handle_request(const std::string& line) {
  json::Value req;
  try {
    req = json::parse(line);
  } catch (const std::exception& e) {
    return error_response("parse", e.what());
  }

  // Decode + validate the request fields.
  flow::DesyncOptions opt;
  std::string strategy_label;
  const char* protocol_name = nullptr;
  nl::NetId clock;
  std::unique_ptr<nl::Netlist> ff;
  int64_t timeout_ms = 0;
  try {
    if (!req.is_object()) fail("request must be a JSON object");
    const json::Value* verilog = req.get("verilog");
    if (!verilog || !verilog->is_string()) {
      fail("missing string field 'verilog'");
    }
    const json::Value* clock_name = req.get("clock");
    if (!clock_name || !clock_name->is_string()) {
      fail("missing string field 'clock'");
    }
    opt.strategy =
        flow::PartitionSpec::parse(req.get_string("strategy", "prefix"));
    strategy_label = opt.strategy.label();
    opt.margin = req.get_number("margin", 1.1);
    if (!(opt.margin >= 1.0) || !(opt.margin <= 100.0)) {
      fail("margin must be in [1, 100]");
    }
    opt.protocol = ctl::parse_protocol(req.get_string("protocol", "pulse"));
    protocol_name = ctl::protocol_name(opt.protocol);
    // Parallelism knobs travel with the submission like margin/protocol
    // do, but never enter a cache key (results are byte-identical at any
    // job count — the cached re-run must still hit).
    const double sim_jobs = req.get_number("sim_jobs", 1);
    if (sim_jobs < 1 || sim_jobs > 1024 ||
        sim_jobs != static_cast<int>(sim_jobs)) {
      fail("sim_jobs must be an integer in [1, 1024]");
    }
    opt.sim_jobs = static_cast<int>(sim_jobs);
    // Like the job knobs, a deadline shapes execution, never the result,
    // so it stays out of every cache key (see base/cancel.h).
    const double t = req.get_number("timeout_ms", 0);
    if (t < 0 || t > static_cast<double>(kMaxTimeoutMs) ||
        t != static_cast<int64_t>(t)) {
      fail("timeout_ms must be an integer in [0, ", kMaxTimeoutMs, "]");
    }
    timeout_ms = static_cast<int64_t>(t);
    ff = std::make_unique<nl::Netlist>(
        nl::read_verilog(verilog->string, "<request>"));
    clock = ff->find_net(clock_name->string);
    if (!clock.valid()) {
      fail("no net named '", clock_name->string, "' in the circuit");
    }
  } catch (const std::exception& e) {
    return error_response("request", e.what());
  }

  // Arm the request's cancel token and register it so cancel_inflight()
  // can trip it from another thread; the scope installs it thread-locally
  // for every cancel_point() below us.
  CancelToken token;
  token.set_deadline_after_ms(timeout_ms);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    inflight_.insert(&token);
  }
  struct Deregister {
    Server* s;
    CancelToken* t;
    ~Deregister() {
      std::lock_guard<std::mutex> lock(s->conn_mu_);
      s->inflight_.erase(t);
    }
  } deregister{this, &token};
  CancelScope scope(&token);

  // Run (or serve) the flow; "lint": true additionally runs the static
  // verifier (a cached engine stage) and embeds its run object.
  flow::FlowOutcome out;
  std::string lint_json;
  try {
    out = engine_.run(*ff, clock, opt);
    if (req.get_bool("lint", false)) {
      std::shared_ptr<const check::LintReport> rep =
          engine_.lint(*ff, clock, opt);
      lint_json =
          check::render_json(*rep, ff->name(), opt.protocol, opt.margin);
    }
  } catch (const DeadlineError&) {
    return error_response(
        "deadline", cat("timeout_ms=", timeout_ms, " expired mid-flow"));
  } catch (const CancelledError&) {
    return error_response("cancelled", "request cancelled by server drain");
  } catch (const fault::InjectedFault& e) {
    // Injected faults surface as retryable internal errors: the flow left
    // no partial state (stage artifacts publish atomically), so a
    // resubmission is safe and — deterministic firing windows permitting —
    // succeeds.
    return error_response("internal", e.what());
  } catch (const std::exception& e) {
    return error_response("flow", e.what());
  }
  return cat("{\"schema\": \"desyn-svc-v1\", \"cached\": ",
             out.cached ? "true" : "false", ", \"result\": ",
             result_object(ff->name(), strategy_label, protocol_name,
                           opt.margin, out, lint_json),
             "}");
}

void Server::start() {
  DESYN_ASSERT(listen_fd_ < 0, "server already running");
  if (opt_.socket_path.empty()) fail("server needs a socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path too long: ", opt_.socket_path);
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(): ", std::strerror(errno));
  ::unlink(opt_.socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    fail("bind(", opt_.socket_path, "): ", std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    int err = errno;
    ::close(fd);
    ::unlink(opt_.socket_path.c_str());
    fail("listen(): ", std::strerror(err));
  }
  listen_fd_ = fd;
  workers_.reserve(static_cast<size_t>(opt_.threads));
  for (int i = 0; i < opt_.threads; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
  acceptor_ = std::thread([this] { acceptor(); });
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  // The acceptor blocked in accept() returns with an error once the
  // listener is shut down; the fd stays open until every thread has
  // exited so none of them can race against a re-used descriptor number.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    // Workers blocked in read() on an idle connection would never notice
    // the listener going away: half-close every live connection so their
    // reads return 0. SHUT_RD only — a worker mid-request can still write
    // its response before dropping the connection.
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_ = true;
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
  }
  pending_cv_.notify_all();
  acceptor_.join();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opt_.socket_path.c_str());
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (int fd : pending_) ::close(fd);  // admitted but never served: drop
  pending_.clear();
  stopping_ = false;  // the server may be start()ed again
}

void Server::cancel_inflight() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (CancelToken* t : inflight_) t->cancel();
}

void Server::acceptor() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatally broken)
    }
    if (fault::should_fail("svc.accept")) {
      ::close(fd);  // modeled accept-path failure: the peer sees EOF
      continue;
    }
    set_io_deadlines(fd, opt_.io_timeout_ms);
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_) {  // raced with stop(): drop, don't serve
        ::close(fd);
        continue;
      }
      if (pending_.size() >= static_cast<size_t>(opt_.max_pending)) {
        shed = true;  // respond outside the lock
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      // Graceful degradation: a typed, retryable refusal instead of an
      // unbounded queue. Written from the acceptor — cheap by design.
      write_line(fd, error_response(
                         "busy", cat("server at capacity (", opt_.max_pending,
                                     " connections queued); retry later")));
      ::close(fd);
      continue;
    }
    pending_cv_.notify_one();
  }
}

void Server::worker() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      pending_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // queued connections are stop()'s to close
      fd = pending_.front();
      pending_.pop_front();
      conns_.insert(fd);
    }
    try {
      serve_connection(fd);
    } catch (...) {
      // Worker isolation: no request may take the thread (and with it a
      // pool slot) down. The connection is dropped; the pool survives.
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.erase(fd);
    }
    ::close(fd);
  }
}

bool Server::write_line(int fd, std::string line) {
  if (fault::should_fail("svc.write")) return false;  // modeled write failure
  line += '\n';
  size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response must not SIGPIPE the
    // server; the write fails with EPIPE and the connection is dropped.
    ssize_t w = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;  // client gone or SO_SNDTIMEO expired
    off += static_cast<size_t>(w);
  }
  return true;
}

void Server::serve_connection(int fd) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    if (fault::should_fail("svc.read")) return;  // modeled read failure
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN/EWOULDBLOCK here is SO_RCVTIMEO: the peer sat idle (or
    // stalled mid-line) past the deadline. Drop it — a worker is too
    // valuable to leave parked on a silent connection.
    if (n <= 0) return;
    buf.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t eol; (eol = buf.find('\n', start)) != std::string::npos;
         start = eol + 1) {
      std::string line = buf.substr(start, eol - start);
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      if (line.size() > opt_.max_request_bytes) {
        write_line(fd, error_response(
                           "limit", cat("request line exceeds ",
                                        opt_.max_request_bytes, " bytes")));
        return;
      }
      if (!write_line(fd, handle_request(line))) return;
    }
    buf.erase(0, start);
    if (buf.size() > opt_.max_request_bytes) {
      // A partial line already past the cap: reject now rather than
      // buffering an unbounded request — the rest of the oversized line
      // cannot be resynchronized against, so the connection drops.
      write_line(fd, error_response(
                         "limit", cat("request line exceeds ",
                                      opt_.max_request_bytes, " bytes")));
      return;
    }
  }
}

}  // namespace desyn::svc
