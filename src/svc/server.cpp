#include "svc/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "base/json.h"
#include "check/check.h"
#include "netlist/reader.h"

namespace desyn::svc {

namespace {

std::string error_response(const char* kind, const std::string& message) {
  return cat("{\"schema\": \"desyn-svc-v1\", \"error\": {\"kind\": \"", kind,
             "\", \"message\": \"", json::escape(message), "\"}}");
}

/// The "result" object (sweep-v2 vocabulary + the emitted circuit). The
/// bytes are deterministic and independent of cache state — the CI smoke
/// job compares two submissions' saved results with cmp.
std::string result_object(const std::string& circuit,
                          const std::string& strategy, const char* protocol,
                          double margin, const flow::FlowOutcome& out,
                          const std::string& lint_json) {
  char buf[160];
  std::string s = cat("{\"circuit\": \"", json::escape(circuit),
                      "\", \"strategy\": \"", json::escape(strategy),
                      "\", \"protocol\": \"", protocol, "\",");
  std::snprintf(buf, sizeof buf, " \"margin\": %.4f,", margin);
  s += buf;
  s += cat(" \"banks\": ", out.stats.banks,
           ", \"controller_cells\": ", out.stats.controller_cells,
           ", \"delay_cells\": ", out.stats.delay_cells,
           ", \"sync_cells\": ", out.stats.cells_in,
           ", \"desync_cells\": ", out.stats.cells_out, ",");
  std::snprintf(buf, sizeof buf, " \"predicted_period_ps\": %.6f,",
                out.stats.predicted_period_ps);
  s += buf;
  s += cat(" \"verilog\": \"", json::escape(*out.verilog), "\"");
  if (!lint_json.empty()) s += cat(", \"lint\": ", lint_json);
  s += "}";
  return s;
}

}  // namespace

Server::Server(const cell::Tech& tech, const ServerOptions& opt)
    : tech_(tech),
      opt_(opt),
      engine_(tech, flow::EngineOptions{opt.capacity, opt.cache_dir}) {
  DESYN_ASSERT(opt_.threads > 0);
}

Server::~Server() { stop(); }

std::string Server::handle_request(const std::string& line) {
  json::Value req;
  try {
    req = json::parse(line);
  } catch (const std::exception& e) {
    return error_response("parse", e.what());
  }

  // Decode + validate the request fields.
  flow::DesyncOptions opt;
  std::string strategy_label;
  const char* protocol_name = nullptr;
  nl::NetId clock;
  std::unique_ptr<nl::Netlist> ff;
  try {
    if (!req.is_object()) fail("request must be a JSON object");
    const json::Value* verilog = req.get("verilog");
    if (!verilog || !verilog->is_string()) {
      fail("missing string field 'verilog'");
    }
    const json::Value* clock_name = req.get("clock");
    if (!clock_name || !clock_name->is_string()) {
      fail("missing string field 'clock'");
    }
    opt.strategy =
        flow::PartitionSpec::parse(req.get_string("strategy", "prefix"));
    strategy_label = opt.strategy.label();
    opt.margin = req.get_number("margin", 1.1);
    if (!(opt.margin >= 1.0) || !(opt.margin <= 100.0)) {
      fail("margin must be in [1, 100]");
    }
    opt.protocol = ctl::parse_protocol(req.get_string("protocol", "pulse"));
    protocol_name = ctl::protocol_name(opt.protocol);
    // Parallelism knobs travel with the submission like margin/protocol
    // do, but never enter a cache key (results are byte-identical at any
    // job count — the cached re-run must still hit).
    const double sim_jobs = req.get_number("sim_jobs", 1);
    if (sim_jobs < 1 || sim_jobs > 1024 ||
        sim_jobs != static_cast<int>(sim_jobs)) {
      fail("sim_jobs must be an integer in [1, 1024]");
    }
    opt.sim_jobs = static_cast<int>(sim_jobs);
    ff = std::make_unique<nl::Netlist>(
        nl::read_verilog(verilog->string, "<request>"));
    clock = ff->find_net(clock_name->string);
    if (!clock.valid()) {
      fail("no net named '", clock_name->string, "' in the circuit");
    }
  } catch (const std::exception& e) {
    return error_response("request", e.what());
  }

  // Run (or serve) the flow; "lint": true additionally runs the static
  // verifier (a cached engine stage) and embeds its run object.
  flow::FlowOutcome out;
  std::string lint_json;
  try {
    out = engine_.run(*ff, clock, opt);
    if (req.get_bool("lint", false)) {
      std::shared_ptr<const check::LintReport> rep =
          engine_.lint(*ff, clock, opt);
      lint_json =
          check::render_json(*rep, ff->name(), opt.protocol, opt.margin);
    }
  } catch (const std::exception& e) {
    return error_response("flow", e.what());
  }
  return cat("{\"schema\": \"desyn-svc-v1\", \"cached\": ",
             out.cached ? "true" : "false", ", \"result\": ",
             result_object(ff->name(), strategy_label, protocol_name,
                           opt.margin, out, lint_json),
             "}");
}

void Server::start() {
  DESYN_ASSERT(listen_fd_ < 0, "server already running");
  if (opt_.socket_path.empty()) fail("server needs a socket path");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opt_.socket_path.size() >= sizeof(addr.sun_path)) {
    fail("socket path too long: ", opt_.socket_path);
  }
  std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
              opt_.socket_path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket(): ", std::strerror(errno));
  ::unlink(opt_.socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    fail("bind(", opt_.socket_path, "): ", std::strerror(err));
  }
  if (::listen(fd, 64) < 0) {
    int err = errno;
    ::close(fd);
    ::unlink(opt_.socket_path.c_str());
    fail("listen(): ", std::strerror(err));
  }
  listen_fd_ = fd;
  workers_.reserve(static_cast<size_t>(opt_.threads));
  for (int i = 0; i < opt_.threads; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

void Server::stop() {
  if (listen_fd_ < 0) return;
  // Workers blocked in accept() return with an error once the listener is
  // shut down; the fd stays open until they have all exited so none of
  // them can race against a re-used descriptor number.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    // Workers blocked in read() on an idle connection would never notice
    // the listener going away: half-close every live connection so their
    // reads return 0. SHUT_RD only — a worker mid-request can still write
    // its response before dropping the connection.
    std::lock_guard<std::mutex> lock(conn_mu_);
    stopping_ = true;
    for (int fd : conns_) ::shutdown(fd, SHUT_RD);
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opt_.socket_path.c_str());
  std::lock_guard<std::mutex> lock(conn_mu_);
  stopping_ = false;  // the server may be start()ed again
}

void Server::worker() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatally broken): worker exits
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_) {  // queued behind stop(): drop, don't serve
        ::close(fd);
        continue;
      }
      conns_.insert(fd);
    }
    serve_connection(fd);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.erase(fd);
    }
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // client closed (or error): drop the connection
    buf.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t eol; (eol = buf.find('\n', start)) != std::string::npos;
         start = eol + 1) {
      std::string line = buf.substr(start, eol - start);
      if (line.empty()) continue;  // blank lines are keep-alive no-ops
      std::string response = handle_request(line);
      response += '\n';
      size_t off = 0;
      while (off < response.size()) {
        ssize_t w = ::write(fd, response.data() + off, response.size() - off);
        if (w < 0 && errno == EINTR) continue;
        if (w <= 0) return;  // client gone mid-response
        off += static_cast<size_t>(w);
      }
    }
    buf.erase(0, start);
  }
}

}  // namespace desyn::svc
