#include "rtl/bus.h"

namespace desyn::rtl {

RegFile regfile(Word& w, nl::NetId clk, int regs, int width,
                const Bus& waddr, const Bus& wdata, nl::NetId we,
                const std::vector<Bus>& raddrs, std::string_view name) {
  DESYN_ASSERT(regs >= 2 && (regs & (regs - 1)) == 0, "regs must be 2^k");
  DESYN_ASSERT((size_t{1} << waddr.size()) >= static_cast<size_t>(regs));
  nl::Builder& b = w.builder();

  Bus wsel = w.decode(waddr);
  std::vector<Bus> qs(static_cast<size_t>(regs));
  // Register 0 is constant zero.
  qs[0] = w.constant(0, width);
  for (int r = 1; r < regs; ++r) {
    nl::NetId en = b.and_({we, wsel[static_cast<size_t>(r)]});
    // Write port: per-bit recirculating mux (hold unless selected).
    Bus cur(static_cast<size_t>(width));
    Bus d(static_cast<size_t>(width));
    // Create q nets first so the recirculating mux can reference them. The
    // "<name>.x<r>_*" naming keeps the whole file in one control bank
    // (prefix "<name>"), like a register-file macro.
    Bus q;
    for (int i = 0; i < width; ++i) {
      q.push_back(b.netlist().add_net(cat(name, ".x", r, "_q", i)));
    }
    for (int i = 0; i < width; ++i) {
      d[static_cast<size_t>(i)] =
          b.mux2(q[static_cast<size_t>(i)], wdata[static_cast<size_t>(i)], en);
      b.netlist().add_cell(cell::Kind::Dff, cat(name, ".x", r, "_r", i),
                           {d[static_cast<size_t>(i)], clk},
                           {q[static_cast<size_t>(i)]}, cell::V::V0);
    }
    (void)cur;
    qs[static_cast<size_t>(r)] = q;
  }

  RegFile rf;
  for (const Bus& ra : raddrs) {
    Bus sel = w.slice(ra, 0, static_cast<int>(ra.size()));
    // Truncate the select to log2(regs) bits.
    int bits = 0;
    while ((1 << bits) < regs) ++bits;
    rf.read_data.push_back(w.mux_n(qs, w.slice(sel, 0, bits)));
  }
  return rf;
}

}  // namespace desyn::rtl
