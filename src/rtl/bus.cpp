#include "rtl/bus.h"

namespace desyn::rtl {

using nl::NetId;

Bus Word::input(std::string_view name, int width) {
  Bus bus;
  for (int i = 0; i < width; ++i) bus.push_back(b_.input(cat(name, i)));
  return bus;
}

void Word::output(const Bus& bus) {
  for (NetId n : bus) b_.output(n);
}

Bus Word::constant(uint64_t value, int width) {
  Bus bus;
  for (int i = 0; i < width; ++i) {
    bus.push_back((value >> i) & 1 ? b_.hi() : b_.lo());
  }
  return bus;
}

Bus Word::not_(const Bus& a) {
  Bus out;
  for (NetId n : a) out.push_back(b_.inv(n));
  return out;
}

Bus Word::and_(const Bus& a, const Bus& x) {
  DESYN_ASSERT(a.size() == x.size());
  Bus out;
  for (size_t i = 0; i < a.size(); ++i) out.push_back(b_.and_({a[i], x[i]}));
  return out;
}

Bus Word::or_(const Bus& a, const Bus& x) {
  DESYN_ASSERT(a.size() == x.size());
  Bus out;
  for (size_t i = 0; i < a.size(); ++i) out.push_back(b_.or_({a[i], x[i]}));
  return out;
}

Bus Word::xor_(const Bus& a, const Bus& x) {
  DESYN_ASSERT(a.size() == x.size());
  Bus out;
  for (size_t i = 0; i < a.size(); ++i) out.push_back(b_.xor_(a[i], x[i]));
  return out;
}

Bus Word::mux(const Bus& a, const Bus& x, NetId sel) {
  DESYN_ASSERT(a.size() == x.size());
  Bus out;
  for (size_t i = 0; i < a.size(); ++i) out.push_back(b_.mux2(a[i], x[i], sel));
  return out;
}

Bus Word::add(const Bus& a, const Bus& x, NetId cin, NetId* cout) {
  DESYN_ASSERT(a.size() == x.size());
  Bus sum;
  NetId carry = cin.valid() ? cin : b_.lo();
  for (size_t i = 0; i < a.size(); ++i) {
    NetId axor = b_.xor_(a[i], x[i]);
    sum.push_back(b_.xor_(axor, carry));
    // carry' = (a & x) | (carry & (a ^ x)) via AOI-friendly gates.
    NetId g = b_.and_({a[i], x[i]});
    NetId p = b_.and_({axor, carry});
    carry = b_.or_({g, p});
  }
  if (cout) *cout = carry;
  return sum;
}

Bus Word::sub(const Bus& a, const Bus& x, NetId* cout) {
  return add(a, not_(x), b_.hi(), cout);
}

NetId Word::eq(const Bus& a, const Bus& x) {
  DESYN_ASSERT(a.size() == x.size());
  std::vector<NetId> bits;
  for (size_t i = 0; i < a.size(); ++i) bits.push_back(b_.xnor_(a[i], x[i]));
  return b_.and_(bits);
}

NetId Word::is_zero(const Bus& a) { return b_.nor_(a); }

NetId Word::ult(const Bus& a, const Bus& x) {
  NetId cout;
  sub(a, x, &cout);
  return b_.inv(cout);  // no carry-out => borrow => a < x
}

NetId Word::slt(const Bus& a, const Bus& x) {
  NetId cout;
  Bus d = sub(a, x, &cout);
  // slt = sign(diff) XOR overflow; overflow = (sign(a)!=sign(x)) && sign(d)!=sign(a)
  NetId sa = a.back(), sx = x.back(), sd = d.back();
  NetId diff_sign = b_.xor_(sa, sx);
  NetId ovf = b_.and_({diff_sign, b_.xor_(sd, sa)});
  return b_.xor_(sd, ovf);
}

Bus Word::decode(const Bus& sel) {
  size_t n = size_t{1} << sel.size();
  Bus inv;
  for (NetId s : sel) inv.push_back(b_.inv(s));
  Bus out;
  for (size_t v = 0; v < n; ++v) {
    std::vector<NetId> terms;
    for (size_t i = 0; i < sel.size(); ++i) {
      terms.push_back((v >> i) & 1 ? sel[i] : inv[i]);
    }
    out.push_back(terms.size() == 1 ? b_.buf(terms[0]) : b_.and_(terms));
  }
  return out;
}

Bus Word::mux_n(const std::vector<Bus>& choices, const Bus& sel) {
  DESYN_ASSERT(!choices.empty());
  size_t width = choices[0].size();
  Bus onehot = decode(sel);
  Bus out;
  for (size_t bit = 0; bit < width; ++bit) {
    std::vector<NetId> terms;
    for (size_t c = 0; c < choices.size(); ++c) {
      DESYN_ASSERT(choices[c].size() == width);
      terms.push_back(b_.and_({onehot[c], choices[c][bit]}));
    }
    out.push_back(terms.size() == 1 ? b_.buf(terms[0]) : b_.or_(terms));
  }
  return out;
}

Bus Word::shl_const(const Bus& a, int amount) {
  Bus out;
  for (size_t i = 0; i < a.size(); ++i) {
    int src = static_cast<int>(i) - amount;
    out.push_back(src >= 0 ? a[static_cast<size_t>(src)] : b_.lo());
  }
  return out;
}

Bus Word::reg(const Bus& d, NetId clk, uint64_t init, std::string_view name) {
  // "_r" (not ".r") keeps all fields named "<stage>.<field>" in the same
  // "<stage>" control bank under prefix grouping.
  Bus q;
  for (size_t i = 0; i < d.size(); ++i) {
    q.push_back(b_.dff(d[i], clk,
                       (init >> i) & 1 ? cell::V::V1 : cell::V::V0,
                       cat(name, "_r", i)));
  }
  return q;
}

Bus Word::slice(const Bus& a, int lo, int width) const {
  DESYN_ASSERT(lo >= 0 && lo + width <= static_cast<int>(a.size()));
  return Bus(a.begin() + lo, a.begin() + lo + width);
}

Bus Word::cat2(const Bus& lo, const Bus& hi) const {
  Bus out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Bus Word::sign_extend(const Bus& a, int width) {
  Bus out = a;
  while (static_cast<int>(out.size()) < width) out.push_back(a.back());
  return out;
}

Bus Word::zero_extend(const Bus& a, int width) {
  Bus out = a;
  while (static_cast<int>(out.size()) < width) out.push_back(b_.lo());
  return out;
}

Bus Word::gate(const Bus& a, NetId en) {
  Bus out;
  for (NetId n : a) out.push_back(b_.and_({n, en}));
  return out;
}

}  // namespace desyn::rtl
