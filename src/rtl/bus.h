// Word-level construction on top of the gate-level Builder.
//
// A Bus is a vector of nets, LSB first. Word wraps a Builder and provides
// the vocabulary needed to assemble datapaths (the DLX generator and the
// benchmark circuits are its clients); everything lowers to library gates.
#pragma once

#include "netlist/builder.h"

namespace desyn::rtl {

using Bus = std::vector<nl::NetId>;

class Word {
 public:
  explicit Word(nl::Builder& b) : b_(b) {}

  nl::Builder& builder() { return b_; }

  // ---- ports / constants ---------------------------------------------------
  Bus input(std::string_view name, int width);
  void output(const Bus& bus);
  Bus constant(uint64_t value, int width);

  // ---- bitwise ---------------------------------------------------------------
  Bus not_(const Bus& a);
  Bus and_(const Bus& a, const Bus& x);
  Bus or_(const Bus& a, const Bus& x);
  Bus xor_(const Bus& a, const Bus& x);
  /// Bitwise select: sel ? b : a.
  Bus mux(const Bus& a, const Bus& x, nl::NetId sel);

  // ---- arithmetic -------------------------------------------------------------
  /// Ripple-carry sum; carry-out stored in *cout when non-null.
  Bus add(const Bus& a, const Bus& x, nl::NetId cin = nl::NetId::invalid(),
          nl::NetId* cout = nullptr);
  /// a - x (two's complement).
  Bus sub(const Bus& a, const Bus& x, nl::NetId* cout = nullptr);

  // ---- comparison --------------------------------------------------------------
  nl::NetId eq(const Bus& a, const Bus& x);
  nl::NetId is_zero(const Bus& a);
  /// Unsigned a < x.
  nl::NetId ult(const Bus& a, const Bus& x);
  /// Signed a < x.
  nl::NetId slt(const Bus& a, const Bus& x);

  // ---- selection ----------------------------------------------------------------
  /// One-hot decode of `sel` (2^width outputs).
  Bus decode(const Bus& sel);
  /// Wide mux: choices[i] selected when sel == i. Missing choices read 0.
  Bus mux_n(const std::vector<Bus>& choices, const Bus& sel);

  // ---- shifts (constant amount) ---------------------------------------------------
  Bus shl_const(const Bus& a, int amount);

  // ---- storage ------------------------------------------------------------------
  /// Bank of D flip-flops named "<name>.r<i>" (bank grouping keys on the
  /// prefix, so all bits land in one control bank).
  Bus reg(const Bus& d, nl::NetId clk, uint64_t init, std::string_view name);

  // ---- misc ---------------------------------------------------------------------
  Bus slice(const Bus& a, int lo, int width) const;
  Bus cat2(const Bus& lo, const Bus& hi) const;  // lo bits first
  Bus sign_extend(const Bus& a, int width);
  Bus zero_extend(const Bus& a, int width);
  /// AND every bit of `a` with `en`.
  Bus gate(const Bus& a, nl::NetId en);

 private:
  nl::Builder& b_;
};

/// Register file with one write port and `read_ports` combinational read
/// ports, built from flip-flops + decoder + mux trees. Register 0 is
/// hardwired to zero (reads return 0; writes to it are ignored).
struct RegFile {
  std::vector<Bus> read_data;  ///< per read port
};
RegFile regfile(Word& w, nl::NetId clk, int regs, int width,
                const Bus& waddr, const Bus& wdata, nl::NetId we,
                const std::vector<Bus>& raddrs, std::string_view name);

}  // namespace desyn::rtl
