#include "circuits/circuits.h"

#include "base/rng.h"

namespace desyn::circuits {

using nl::Builder;
using nl::NetId;
using rtl::Bus;
using rtl::Word;

Circuit pipeline(int stages, int width, int levels) {
  Circuit c{nl::Netlist(cat("pipe_s", stages, "_w", width, "_l", levels)),
            nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  Bus data = w.input("din", width);
  for (int s = 0; s < stages; ++s) {
    Bus regd = w.reg(data, c.clock, 0, cat("st", s, ".d"));
    // Mixing logic: rotate + xor with inverted neighbour, `levels` deep.
    Bus x = regd;
    for (int l = 0; l < levels; ++l) {
      Bus rot;
      for (int i = 0; i < width; ++i) {
        rot.push_back(x[static_cast<size_t>((i + 1) % width)]);
      }
      x = w.xor_(x, w.not_(rot));
    }
    data = x;
  }
  w.output(data);
  return c;
}

Circuit lfsr(int width) {
  DESYN_ASSERT(width >= 4);
  Circuit c{nl::Netlist(cat("lfsr", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  // State register with a nonzero reset value.
  Bus next;
  for (int i = 0; i < width; ++i) next.push_back(c.netlist.add_net(cat("fb", i)));
  Bus q = w.reg(next, c.clock, 1, "lfsr.q");
  NetId out = q.back();
  // Galois taps at bits 0, 2, 3.
  for (int i = 0; i < width; ++i) {
    NetId in = i == 0 ? out : q[static_cast<size_t>(i - 1)];
    NetId v = (i == 2 || i == 3) ? b.xor_(in, out) : b.buf(in);
    c.netlist.add_cell(cell::Kind::Buf, "", {v}, {next[static_cast<size_t>(i)]});
  }
  w.output(q);
  return c;
}

Circuit counter_bank(int counters, int width) {
  Circuit c{nl::Netlist(cat("counters", counters, "x", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  NetId en = b.input("en");
  for (int k = 0; k < counters; ++k) {
    Bus next;
    for (int i = 0; i < width; ++i) {
      next.push_back(c.netlist.add_net(cat("c", k, "next", i)));
    }
    Bus q = w.reg(next, c.clock, static_cast<uint64_t>(k), cat("cnt", k, ".q"));
    Bus inc = w.add(q, w.zero_extend({en}, width));
    for (int i = 0; i < width; ++i) {
      c.netlist.add_cell(cell::Kind::Buf, "", {inc[static_cast<size_t>(i)]},
                         {next[static_cast<size_t>(i)]});
    }
    b.output(q.back());
  }
  return c;
}

Circuit fir_filter(int taps, int width) {
  Circuit c{nl::Netlist(cat("fir", taps, "_w", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  Bus x = w.input("x", width);
  const int acc_w = width + 4;
  Bus xin = w.reg(x, c.clock, 0, "in.x");
  Bus xe = w.zero_extend(xin, acc_w);
  // Transposed form: acc_k = delay(acc_{k+1}) + c_k * x, c_k in {1,2,3}.
  Bus acc = w.constant(0, acc_w);
  for (int t = taps - 1; t >= 0; --t) {
    Bus coef_term;
    switch (t % 3) {
      case 0: coef_term = xe; break;
      case 1: coef_term = w.shl_const(xe, 1); break;
      default: coef_term = w.add(xe, w.shl_const(xe, 1)); break;
    }
    Bus sum = w.add(acc, coef_term);
    acc = w.reg(sum, c.clock, 0, cat("tap", t, ".acc"));
  }
  w.output(acc);
  return c;
}

Circuit crc32() {
  Circuit c{nl::Netlist("crc32"), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  NetId din = b.input("din");
  Bus next;
  for (int i = 0; i < 32; ++i) next.push_back(c.netlist.add_net(cat("fb", i)));
  Bus q = w.reg(next, c.clock, 0xffffffffull, "crc.q");
  NetId fb = b.xor_(q.back(), din, "crc.fb");
  const uint32_t poly = 0x04C11DB7u;
  for (int i = 0; i < 32; ++i) {
    NetId shifted = i == 0 ? b.lo() : q[static_cast<size_t>(i - 1)];
    NetId v = (poly >> i) & 1 ? b.xor_(shifted, fb) : b.buf(shifted);
    c.netlist.add_cell(cell::Kind::Buf, "", {v}, {next[static_cast<size_t>(i)]});
  }
  w.output(q);
  return c;
}

namespace {

/// Left-rotate a bus by one position (bit i reads old bit i+1).
Bus rotate1(const Bus& x) {
  Bus rot;
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) rot.push_back(x[(i + 1) % n]);
  return rot;
}

/// Drive each pre-created net of `dst` from the corresponding net of `src`
/// (the indirection that lets feedback edges be wired after their target).
void drive(nl::Netlist& nl, const Bus& src, const Bus& dst) {
  DESYN_ASSERT(src.size() == dst.size());
  for (size_t i = 0; i < src.size(); ++i) {
    nl.add_cell(cell::Kind::Buf, "", {src[i]}, {dst[i]});
  }
}

}  // namespace

Circuit random_pipeline(uint64_t seed, int stages, int width) {
  DESYN_ASSERT(stages >= 2 && width >= 2);
  Circuit c{nl::Netlist(cat("rpipe", stages, "x", width, "_s", seed)),
            nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  // Counter-based draws (base/rng.h): the k-th draw is a pure function of
  // (seed, k), so the generated circuit is reproducible from the seed alone
  // with no hidden stream state.
  CounterRng rng(seed);
  c.clock = b.input("clk");
  Bus din = w.input("din", width);
  // Pre-created stage-input nets let skip and feedback taps be wired after
  // every register exists; taps read register outputs only, so the
  // combinational logic stays acyclic no matter which edges are drawn.
  std::vector<Bus> sin(static_cast<size_t>(stages));
  std::vector<Bus> q(static_cast<size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    for (int i = 0; i < width; ++i) {
      sin[static_cast<size_t>(s)].push_back(
          c.netlist.add_net(cat("s", s, "in", i)));
    }
    q[static_cast<size_t>(s)] = w.reg(sin[static_cast<size_t>(s)], c.clock,
                                      rng.next(), cat("st", s, ".d"));
  }
  for (int s = 0; s < stages; ++s) {
    Bus x = s == 0 ? din : q[static_cast<size_t>(s - 1)];
    x = w.xor_(x, w.not_(rotate1(x)));
    if (s >= 2 && rng.flip(0.5)) {  // skip edge from a strictly earlier stage
      x = w.xor_(x, q[static_cast<size_t>(rng.below(
                        static_cast<uint64_t>(s - 1)))]);
    }
    if (rng.flip(0.35)) {  // feedback edge from this or a later stage
      x = w.xor_(x, q[static_cast<size_t>(s) +
                      static_cast<size_t>(rng.below(
                          static_cast<uint64_t>(stages - s)))]);
    }
    drive(c.netlist, x, sin[static_cast<size_t>(s)]);
  }
  w.output(q[static_cast<size_t>(stages - 1)]);
  return c;
}

Circuit register_mesh(int rows, int cols, int width) {
  DESYN_ASSERT(rows >= 2 && cols >= 2 && width >= 1);
  Circuit c{nl::Netlist(cat("mesh", rows, "x", cols, "x", width)),
            nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  NetId din = b.input("din");
  Rng rng(static_cast<uint64_t>(rows) * 7919 +
          static_cast<uint64_t>(cols) * 131 + static_cast<uint64_t>(width));
  auto at = [cols](int r, int cc) {
    return static_cast<size_t>(r) * static_cast<size_t>(cols) +
           static_cast<size_t>(cc);
  };
  std::vector<Bus> next(static_cast<size_t>(rows) *
                        static_cast<size_t>(cols));
  std::vector<Bus> q(next.size());
  for (int r = 0; r < rows; ++r) {
    for (int cc = 0; cc < cols; ++cc) {
      for (int i = 0; i < width; ++i) {
        next[at(r, cc)].push_back(c.netlist.add_net(cat("n", r, "x", cc, "b", i)));
      }
      q[at(r, cc)] = w.reg(next[at(r, cc)], c.clock, rng.next(),
                           cat("m", r, "x", cc, ".q"));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int cc = 0; cc < cols; ++cc) {
      const Bus& west = q[at(r, (cc + cols - 1) % cols)];
      const Bus& north = q[at((r + rows - 1) % rows, cc)];
      Bus x = w.xor_(q[at(r, cc)], rotate1(west));
      x = w.xor_(x, north);
      if (r == 0 && cc == 0) {
        x = w.xor_(x, w.zero_extend({din}, width));
      }
      drive(c.netlist, x, next[at(r, cc)]);
    }
  }
  w.output(q[at(rows - 1, cols - 1)]);
  return c;
}

std::vector<Suite> scaling_suite() {
  std::vector<Suite> s;
  s.push_back({"pipe4x8", pipeline(4, 8, 2)});
  s.push_back({"pipe8x16", pipeline(8, 16, 3)});
  s.push_back({"pipe16x32", pipeline(16, 32, 4)});
  s.push_back({"lfsr16", lfsr(16)});
  s.push_back({"lfsr64", lfsr(64)});
  s.push_back({"counters4x8", counter_bank(4, 8)});
  s.push_back({"crc32", crc32()});
  s.push_back({"fir8x12", fir_filter(8, 12)});
  s.push_back({"fir16x16", fir_filter(16, 16)});
  s.push_back({"rpipe32x8", random_pipeline(7, 32, 8)});
  s.push_back({"mesh6x6x2", register_mesh(6, 6, 2)});
  return s;
}

}  // namespace desyn::circuits
