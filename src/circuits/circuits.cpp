#include "circuits/circuits.h"

namespace desyn::circuits {

using nl::Builder;
using nl::NetId;
using rtl::Bus;
using rtl::Word;

Circuit pipeline(int stages, int width, int levels) {
  Circuit c{nl::Netlist(cat("pipe_s", stages, "_w", width, "_l", levels)),
            nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  Bus data = w.input("din", width);
  for (int s = 0; s < stages; ++s) {
    Bus regd = w.reg(data, c.clock, 0, cat("st", s, ".d"));
    // Mixing logic: rotate + xor with inverted neighbour, `levels` deep.
    Bus x = regd;
    for (int l = 0; l < levels; ++l) {
      Bus rot;
      for (int i = 0; i < width; ++i) {
        rot.push_back(x[static_cast<size_t>((i + 1) % width)]);
      }
      x = w.xor_(x, w.not_(rot));
    }
    data = x;
  }
  w.output(data);
  return c;
}

Circuit lfsr(int width) {
  DESYN_ASSERT(width >= 4);
  Circuit c{nl::Netlist(cat("lfsr", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  // State register with a nonzero reset value.
  Bus next;
  for (int i = 0; i < width; ++i) next.push_back(c.netlist.add_net(cat("fb", i)));
  Bus q = w.reg(next, c.clock, 1, "lfsr.q");
  NetId out = q.back();
  // Galois taps at bits 0, 2, 3.
  for (int i = 0; i < width; ++i) {
    NetId in = i == 0 ? out : q[static_cast<size_t>(i - 1)];
    NetId v = (i == 2 || i == 3) ? b.xor_(in, out) : b.buf(in);
    c.netlist.add_cell(cell::Kind::Buf, "", {v}, {next[static_cast<size_t>(i)]});
  }
  w.output(q);
  return c;
}

Circuit counter_bank(int counters, int width) {
  Circuit c{nl::Netlist(cat("counters", counters, "x", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  NetId en = b.input("en");
  for (int k = 0; k < counters; ++k) {
    Bus next;
    for (int i = 0; i < width; ++i) {
      next.push_back(c.netlist.add_net(cat("c", k, "next", i)));
    }
    Bus q = w.reg(next, c.clock, static_cast<uint64_t>(k), cat("cnt", k, ".q"));
    Bus inc = w.add(q, w.zero_extend({en}, width));
    for (int i = 0; i < width; ++i) {
      c.netlist.add_cell(cell::Kind::Buf, "", {inc[static_cast<size_t>(i)]},
                         {next[static_cast<size_t>(i)]});
    }
    b.output(q.back());
  }
  return c;
}

Circuit fir_filter(int taps, int width) {
  Circuit c{nl::Netlist(cat("fir", taps, "_w", width)), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  Bus x = w.input("x", width);
  const int acc_w = width + 4;
  Bus xin = w.reg(x, c.clock, 0, "in.x");
  Bus xe = w.zero_extend(xin, acc_w);
  // Transposed form: acc_k = delay(acc_{k+1}) + c_k * x, c_k in {1,2,3}.
  Bus acc = w.constant(0, acc_w);
  for (int t = taps - 1; t >= 0; --t) {
    Bus coef_term;
    switch (t % 3) {
      case 0: coef_term = xe; break;
      case 1: coef_term = w.shl_const(xe, 1); break;
      default: coef_term = w.add(xe, w.shl_const(xe, 1)); break;
    }
    Bus sum = w.add(acc, coef_term);
    acc = w.reg(sum, c.clock, 0, cat("tap", t, ".acc"));
  }
  w.output(acc);
  return c;
}

Circuit crc32() {
  Circuit c{nl::Netlist("crc32"), nl::NetId()};
  Builder b(c.netlist);
  Word w(b);
  c.clock = b.input("clk");
  NetId din = b.input("din");
  Bus next;
  for (int i = 0; i < 32; ++i) next.push_back(c.netlist.add_net(cat("fb", i)));
  Bus q = w.reg(next, c.clock, 0xffffffffull, "crc.q");
  NetId fb = b.xor_(q.back(), din, "crc.fb");
  const uint32_t poly = 0x04C11DB7u;
  for (int i = 0; i < 32; ++i) {
    NetId shifted = i == 0 ? b.lo() : q[static_cast<size_t>(i - 1)];
    NetId v = (poly >> i) & 1 ? b.xor_(shifted, fb) : b.buf(shifted);
    c.netlist.add_cell(cell::Kind::Buf, "", {v}, {next[static_cast<size_t>(i)]});
  }
  w.output(q);
  return c;
}

std::vector<Suite> scaling_suite() {
  std::vector<Suite> s;
  s.push_back({"pipe4x8", pipeline(4, 8, 2)});
  s.push_back({"pipe8x16", pipeline(8, 16, 3)});
  s.push_back({"pipe16x32", pipeline(16, 32, 4)});
  s.push_back({"lfsr16", lfsr(16)});
  s.push_back({"lfsr64", lfsr(64)});
  s.push_back({"counters4x8", counter_bank(4, 8)});
  s.push_back({"crc32", crc32()});
  s.push_back({"fir8x12", fir_filter(8, 12)});
  s.push_back({"fir16x16", fir_filter(16, 16)});
  return s;
}

}  // namespace desyn::circuits
