// Parametric benchmark circuits: single-clock FF designs exercising the
// flow at different shapes and sizes (used by tests, benches and examples).
#pragma once

#include "rtl/bus.h"

namespace desyn::circuits {

struct Circuit {
  nl::Netlist netlist;
  nl::NetId clock;
};

/// Linear pipeline: `stages` register banks of `width` bits separated by
/// `levels` levels of XOR/INV mixing logic.
Circuit pipeline(int stages, int width, int levels);

/// Galois LFSR (x^w + x^3 + x^2 + 1-ish taps): a feedback-heavy design.
Circuit lfsr(int width);

/// Bank of independent `width`-bit up-counters (parallel control domains).
Circuit counter_bank(int counters, int width);

/// Transposed-form FIR filter with constant power-of-two coefficient sums
/// (shift-add, no multipliers): `taps` stages over a `width`-bit input.
Circuit fir_filter(int taps, int width);

/// CRC-32 (Ethernet polynomial) over one input bit per cycle: a dense XOR
/// feedback structure, the opposite shape of a feed-forward pipeline.
Circuit crc32();

/// One suite entry for the scaling study.
struct Suite {
  std::string name;
  Circuit circuit;
};
/// The circuit mix used by bench A2 (overhead vs size).
std::vector<Suite> scaling_suite();

}  // namespace desyn::circuits
