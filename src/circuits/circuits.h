// Parametric benchmark circuits: single-clock FF designs exercising the
// flow at different shapes and sizes (used by tests, benches and examples).
#pragma once

#include "rtl/bus.h"

namespace desyn::circuits {

struct Circuit {
  nl::Netlist netlist;
  nl::NetId clock;
};

/// Linear pipeline: `stages` register banks of `width` bits separated by
/// `levels` levels of XOR/INV mixing logic.
Circuit pipeline(int stages, int width, int levels);

/// Galois LFSR (x^w + x^3 + x^2 + 1-ish taps): a feedback-heavy design.
Circuit lfsr(int width);

/// Bank of independent `width`-bit up-counters (parallel control domains).
Circuit counter_bank(int counters, int width);

/// Transposed-form FIR filter with constant power-of-two coefficient sums
/// (shift-add, no multipliers): `taps` stages over a `width`-bit input.
Circuit fir_filter(int taps, int width);

/// CRC-32 (Ethernet polynomial) over one input bit per cycle: a dense XOR
/// feedback structure, the opposite shape of a feed-forward pipeline.
Circuit crc32();

/// Seeded random deep pipeline: `stages` register banks of `width` bits
/// with rotate/XOR mixing, plus randomly drawn skip (feed-forward to a
/// later stage's logic from an earlier register) and feedback (from a
/// same-or-later register) edges. All cross-stage taps read register
/// outputs, so the combinational logic is acyclic by construction no
/// matter which edges the seed draws. Deterministic per (seed, stages,
/// width); scales to thousands of cells (e.g. 1024 stages).
Circuit random_pipeline(uint64_t seed, int stages, int width);

/// Torus register fabric: `rows` x `cols` cells of `width` bits; each
/// cell's next state mixes its own value with its west and north
/// neighbours (wrap-around), forming a dense mesh of short
/// register-to-register feedback loops — the worst case for handshake
/// cycle structure. One serial input perturbs cell (0,0); the opposite
/// corner drives the outputs. Each cell is its own control bank, so a
/// rows*cols fabric yields a control model with ~2*rows*cols transitions.
Circuit register_mesh(int rows, int cols, int width);

/// One suite entry for the scaling study.
struct Suite {
  std::string name;
  Circuit circuit;
};
/// The circuit mix used by bench A2 (overhead vs size).
std::vector<Suite> scaling_suite();

}  // namespace desyn::circuits
