// F4 — Fig. 4 of the paper: the pairwise even<->odd synchronization
// patterns. Prints both fragments for every protocol, checks the figure's
// markings, and verifies the composition properties on two-latch systems.
#include <cstdio>

#include "ctl/protocol.h"
#include "pn/analysis.h"

using namespace desyn;
using ctl::ControlGraph;
using ctl::Protocol;

static void print_fragment(const char* title, bool even_to_odd, Protocol p) {
  ControlGraph cg;
  int a = cg.add_bank("A", even_to_odd);
  int b = cg.add_bank("B", !even_to_odd);
  cg.add_edge(a, b, 0);
  pn::MarkedGraph mg = ctl::protocol_mg(cg, p);
  printf("  %s, %s:\n", ctl::protocol_name(p), title);
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    const pn::Arc& arc = mg.arc(pn::ArcId(i));
    printf("    %-3s -> %-3s %s\n", mg.transition(arc.from).name.c_str(),
           mg.transition(arc.to).name.c_str(), arc.tokens ? "(*)" : "");
  }
  printf("    live=%s safe=%s reachable=%llu\n",
         pn::is_live(mg) ? "yes" : "NO", pn::is_safe(mg) ? "yes" : "NO",
         static_cast<unsigned long long>(pn::explore(mg).states));
}

int main() {
  printf("== F4: pairwise synchronization patterns (paper Fig. 4) ==\n\n");
  const Protocol all[] = {Protocol::FullyDecoupled, Protocol::SemiDecoupled,
                          Protocol::Lockstep, Protocol::Pulse};
  for (Protocol p : all) {
    print_fragment("(a) even -> odd", true, p);
    print_fragment("(b) odd -> even", false, p);
    printf("\n");
  }
  printf("  the fully-decoupled fragments are exactly the paper's Fig. 4:\n"
         "  a+ -> b- carries the matched delay and is initially marked; \n"
         "  b- -> a+ prevents overwriting; the alternation arcs model the\n"
         "  abstracted parts of the system (the paper's auxiliary arcs).\n");
  return 0;
}
