# Resolve google-benchmark for bench_perf: system package first (config
# mode, then pkg-config), FetchContent as the last resort.
find_package(benchmark CONFIG QUIET)
if(NOT benchmark_FOUND)
  find_package(PkgConfig QUIET)
  if(PkgConfig_FOUND)
    pkg_check_modules(gbench QUIET IMPORTED_TARGET benchmark)
    if(TARGET PkgConfig::gbench)
      add_library(benchmark::benchmark ALIAS PkgConfig::gbench)
      set(benchmark_FOUND TRUE)
    endif()
  endif()
endif()
if(NOT benchmark_FOUND)
  include(FetchContent)
  FetchContent_Declare(googlebenchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googlebenchmark)
endif()
