// Partition-strategy Pareto study: controller + matched-delay gate cost
// versus predicted cycle time across bank partitioning strategies, on the
// three large acceptance designs (the DLX case study, rpipe32x8 and
// mesh6x6x2). The MCR-guided optimizer (auto:B) should dominate the fixed
// strategies: fewer control cells than per-flip-flop at a predicted period
// within B of the Prefix baseline. Results are recorded in docs/PERF.md.
//
// Cost reported is the real synthesized control network (controller logic
// + DELAY cells, ctl::synthesize_controllers output), not an estimate;
// predicted periods are Howard max-cycle-ratio of the timed control model.
#include <cstdio>
#include <string>
#include <vector>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "pn/mcr.h"

using namespace desyn;

namespace {

struct Design {
  std::string name;
  nl::Netlist netlist;
  nl::NetId clock;
};

std::vector<Design> designs() {
  std::vector<Design> out;
  {
    dlx::DlxConfig cfg;
    nl::Netlist nl("dlx");
    dlx::build_dlx(nl, cfg, dlx::fibonacci_program(8));
    nl::NetId clk = nl.find_net("clk");
    out.push_back({"dlx", std::move(nl), clk});
  }
  for (circuits::Suite& s : circuits::scaling_suite()) {
    if (s.name == "rpipe32x8" || s.name == "mesh6x6x2") {
      out.push_back({s.name, std::move(s.circuit.netlist), s.circuit.clock});
    }
  }
  return out;
}

}  // namespace

int main() {
  const cell::Tech& tech = cell::Tech::generic90();
  const ctl::Protocol protocol = ctl::Protocol::SemiDecoupled;
  const char* strategies[] = {"prefix",    "perff",     "single",
                              "auto:1.02", "auto:1.05", "auto:1.2"};

  std::printf(
      "Partition Pareto (protocol %s): control cells vs predicted period\n\n",
      ctl::protocol_name(protocol));
  std::printf("%-10s %-10s %6s %10s %11s %10s\n", "design", "strategy",
              "banks", "ctl+delay", "pred(ps)", "vs prefix");
  for (Design& d : designs()) {
    double prefix_period = 0;
    for (const char* strat : strategies) {
      flow::DesyncOptions opt;
      opt.strategy = flow::PartitionSpec::parse(strat);
      opt.protocol = protocol;
      flow::DesyncResult dr =
          flow::desynchronize(d.netlist, d.clock, tech, opt);
      double pred =
          pn::max_cycle_ratio(flow::timed_control_model(dr, tech)).ratio;
      if (std::string(strat) == "prefix") prefix_period = pred;
      std::printf("%-10s %-10s %6zu %10zu %11.0f %9.2fx\n", d.name.c_str(),
                  strat, dr.cg.num_banks(),
                  dr.ctrl.cells.size(), pred,
                  prefix_period > 0 ? pred / prefix_period : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
