// Partition-strategy Pareto study and optimizer-scaling benchmark:
// controller + matched-delay gate cost versus predicted cycle time across
// bank partitioning strategies, on the acceptance designs (the DLX case
// study, rpipe32x8, mesh6x6x2) *and* the large fabrics the incremental
// optimizer unlocked (mesh16x16x1, mesh32x32x1, rpipe1024x4 — thousands
// of per-flip-flop control transitions). The MCR-guided optimizer
// (auto:B) should dominate the fixed strategies: fewer control cells than
// per-flip-flop at a predicted period within B of the Prefix baseline.
// Results are recorded in docs/PERF.md.
//
// Cost reported is the real synthesized control network (controller logic
// + DELAY cells, ctl::synthesize_controllers output), not an estimate;
// predicted periods are Howard max-cycle-ratio of the timed control model.
// auto:* rows additionally report the optimizer's scaling counters
// (candidates / pruned / warm / cold solves) and wall time.
//
//   bench_partition [--only d1,d2] [--strategies s1,s2] [--opt-jobs N]
//                   [--json <path>] [--budget-ms M]
//
// --only filters the design list by name; --budget-ms M makes the bench
// exit nonzero if any auto:* case exceeds M wall milliseconds — the CI
// regression gate for the optimizer's scaling.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "base/cli_args.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "pn/mcr.h"

using namespace desyn;

namespace {

struct Design {
  std::string name;
  nl::Netlist netlist;
  nl::NetId clock;
};

std::vector<Design> designs(const std::vector<std::string>& only) {
  auto wanted = [&](const std::string& n) {
    if (only.empty()) return true;
    for (const std::string& o : only) {
      if (o == n) return true;
    }
    return false;
  };
  std::vector<Design> out;
  if (wanted("dlx")) {
    dlx::DlxConfig cfg;
    nl::Netlist nl("dlx");
    dlx::build_dlx(nl, cfg, dlx::fibonacci_program(8));
    nl::NetId clk = nl.find_net("clk");
    out.push_back({"dlx", std::move(nl), clk});
  }
  for (circuits::Suite& s : circuits::scaling_suite()) {
    if ((s.name == "rpipe32x8" || s.name == "mesh6x6x2") && wanted(s.name)) {
      out.push_back({s.name, std::move(s.circuit.netlist), s.circuit.clock});
    }
  }
  struct Gen {
    const char* name;
    circuits::Circuit (*make)();
  };
  const Gen large[] = {
      {"mesh16x16x1", [] { return circuits::register_mesh(16, 16, 1); }},
      {"mesh32x32x1", [] { return circuits::register_mesh(32, 32, 1); }},
      {"rpipe1024x4", [] { return circuits::random_pipeline(13, 1024, 4); }},
  };
  for (const Gen& g : large) {
    if (!wanted(g.name)) continue;
    circuits::Circuit c = g.make();
    out.push_back({g.name, std::move(c.netlist), c.clock});
  }
  return out;
}

struct Case {
  std::string design;
  std::string strategy;
  size_t banks = 0;
  size_t cells = 0;      ///< synthesized controller + matched-delay cells
  double predicted = 0;  ///< predicted period (ps)
  double vs_prefix = 0;
  double wall_ms = 0;
  bool is_auto = false;
  flow::OptimizeStats stats;  ///< auto rows only
  int merges = 0, moves = 0;
};

void write_json(const std::string& path, const std::vector<Case>& cases,
                int opt_jobs) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[128];
  out << "{\n  \"schema\": \"desyn-bench-v1\",\n"
      << "  \"bench\": \"bench_partition\",\n"
      << "  \"opt_jobs\": " << opt_jobs << ",\n  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    out << "    {\"design\": \"" << c.design << "\", \"strategy\": \""
        << c.strategy << "\", \"banks\": " << c.banks
        << ", \"cells\": " << c.cells << ",";
    std::snprintf(buf, sizeof buf,
                  " \"predicted_ps\": %.6f, \"vs_prefix\": %.4f, "
                  "\"wall_ms\": %.3f",
                  c.predicted, c.vs_prefix, c.wall_ms);
    out << buf;
    if (c.is_auto) {
      out << ",\n     \"candidates\": " << c.stats.candidates
          << ", \"pruned\": " << c.stats.pruned
          << ", \"warm_solves\": " << c.stats.warm_solves
          << ", \"cold_solves\": " << c.stats.cold_solves
          << ", \"waves\": " << c.stats.waves << ", \"merges\": " << c.merges
          << ", \"moves\": " << c.moves;
    }
    out << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> only;
  std::vector<std::string> strategies = {"prefix",    "perff",     "single",
                                         "auto:1.02", "auto:1.05", "auto:1.2"};
  std::string json_path;
  int opt_jobs = 1;
  double budget_ms = 0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--only") {
      only = cli::split_list(cli::need_value(argc, argv, i, "--only"));
    } else if (a == "--strategies") {
      strategies =
          cli::split_list(cli::need_value(argc, argv, i, "--strategies"));
    } else if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else if (a == "--opt-jobs") {
      opt_jobs = cli::parse_count(
          cli::need_value(argc, argv, i, "--opt-jobs"), "--opt-jobs value");
    } else if (a == "--budget-ms") {
      budget_ms = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--budget-ms"), "--budget-ms value");
    } else {
      fail("unknown option '", a, "'");
    }
  }

  const cell::Tech& tech = cell::Tech::generic90();
  const ctl::Protocol protocol = ctl::Protocol::SemiDecoupled;

  std::printf(
      "Partition Pareto (protocol %s): control cells vs predicted period\n\n",
      ctl::protocol_name(protocol));
  std::printf("%-12s %-10s %6s %10s %11s %10s %10s  %s\n", "design",
              "strategy", "banks", "ctl+delay", "pred(ps)", "vs prefix",
              "wall(ms)", "optimizer (cand/pruned/warm/cold)");
  std::vector<Case> cases;
  bool over_budget = false;
  for (Design& d : designs(only)) {
    double prefix_period = 0;
    for (const std::string& strat : strategies) {
      Case c;
      c.design = d.name;
      c.strategy = strat;
      flow::DesyncOptions opt;
      opt.strategy = flow::PartitionSpec::parse(strat);
      opt.protocol = protocol;
      opt.opt_jobs = opt_jobs;
      c.is_auto = opt.strategy.mode == flow::PartitionSpec::Mode::Auto;
      auto t0 = std::chrono::steady_clock::now();
      if (c.is_auto) {
        // Run the optimizer directly so its scaling counters are
        // reportable, then drive the flow with the resulting partition.
        flow::PartitionOptOptions popt;
        popt.period_budget = opt.strategy.auto_budget;
        popt.protocol = protocol;
        popt.jobs = opt_jobs;
        flow::PartitionOptResult r =
            flow::optimize_partition(d.netlist, d.clock, tech, popt);
        c.stats = r.stats;
        c.merges = r.merges;
        c.moves = r.moves;
        opt.strategy = flow::PartitionSpec::explicit_(std::move(r.partition));
      }
      flow::DesyncResult dr =
          flow::desynchronize(d.netlist, d.clock, tech, opt);
      c.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      c.banks = dr.cg.num_banks();
      c.cells = dr.ctrl.cells.size();
      c.predicted =
          pn::max_cycle_ratio(flow::timed_control_model(dr, tech)).ratio;
      if (strat == "prefix") prefix_period = c.predicted;
      c.vs_prefix = prefix_period > 0 ? c.predicted / prefix_period : 0.0;
      if (c.is_auto && budget_ms > 0 && c.wall_ms > budget_ms) {
        over_budget = true;
      }
      char optbuf[96] = "";
      if (c.is_auto) {
        std::snprintf(optbuf, sizeof optbuf, "%zu/%zu/%zu/%zu",
                      c.stats.candidates, c.stats.pruned, c.stats.warm_solves,
                      c.stats.cold_solves);
      }
      std::printf("%-12s %-10s %6zu %10zu %11.0f %9.2fx %10.1f  %s\n",
                  d.name.c_str(), strat.c_str(), c.banks, c.cells, c.predicted,
                  c.vs_prefix, c.wall_ms, optbuf);
      cases.push_back(std::move(c));
    }
    std::printf("\n");
  }
  if (!json_path.empty()) write_json(json_path, cases, opt_jobs);
  if (over_budget) {
    std::printf("FAIL: an auto:* case exceeded the %.0f ms wall budget\n",
                budget_ms);
    return 1;
  }
  return 0;
}
