// bench_mc — the structure-shared batch Howard solver (pn::McrBatch) vs.
// a cold solve per sample, on the mesh16x16x1 timed control model (~256
// control banks, the partition-optimizer scale target).
//
//   bench_mc [--samples N] [--json <path>] [--min-speedup X]
//
// A Monte-Carlo variation sweep solves the same marked graph under N
// sampled delay assignments. The baseline is N independent cold solves
// (McrBatch::solve_one_cold: fresh context, full structure build + cold
// Howard per row); the contender builds the structure once and warm-starts
// each sample from its block predecessor. Every batch ratio is asserted
// bit-equal to its cold oracle before any time is reported, and the
// parallel rows are asserted byte-identical to the serial ones.
//
// --min-speedup gates the serial (jobs = 1) batch-vs-cold ratio — CI uses
// 8 at 256 samples — so the structure sharing itself is gated, not thread
// scaling (which a loaded single-CPU runner cannot promise). --json writes
// the rows as a machine-readable report (schema desyn-bench-v1).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/cli_args.h"
#include "base/rng.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "core/partition.h"
#include "pn/mcr.h"

using namespace desyn;

namespace {

struct Row {
  std::string name;
  double cold_ms = 0;
  double fast_ms = 0;
  double speedup = 0;
  bool identical = false;  ///< bit-equal ratios vs. the cold oracle
};

template <typename F>
double time_ms(F&& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                size_t samples, size_t nodes, size_t arcs) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[160];
  out << "{\n  \"schema\": \"desyn-bench-v1\",\n"
      << "  \"bench\": \"bench_mc\",\n"
      << "  \"samples\": " << samples << ", \"nodes\": " << nodes
      << ", \"arcs\": " << arcs << ",\n  \"cases\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"case\": \"" << r.name << "\",";
    std::snprintf(buf, sizeof buf,
                  " \"cold_ms\": %.3f, \"fast_ms\": %.3f, \"speedup\": %.2f,",
                  r.cold_ms, r.fast_ms, r.speedup);
    out << buf << " \"identical\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  size_t samples = 256;
  std::string json_path;
  double min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--samples") {
      samples = static_cast<size_t>(cli::parse_count(
          cli::need_value(argc, argv, i, "--samples"), "--samples value"));
    } else if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else if (a == "--min-speedup") {
      min_speedup = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--min-speedup"),
          "--min-speedup value");
    } else {
      std::fprintf(
          stderr,
          "usage: bench_mc [--samples N] [--json <path>] [--min-speedup X]\n");
      return 2;
    }
  }

  const cell::Tech& tech = cell::Tech::generic90();
  circuits::Circuit c = circuits::register_mesh(16, 16, 1);
  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, tech);
  pn::McrFlat flat = pn::flatten(flow::timed_control_model(dr, tech));
  const size_t na = flat.from.size();

  // The sampled delay matrix: every arc of every sample gets an independent
  // +/-10% factor from a counter-based draw, mimicking the variation
  // model's per-element sampling (the solver cost is identical).
  std::vector<Ps> delays(samples * na);
  for (size_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < na; ++j) {
      double f = 0.9 + 0.2 * rng_unit(42, j, s);
      delays[s * na + j] =
          static_cast<Ps>(std::llround(static_cast<double>(flat.delay[j]) * f));
    }
  }

  std::printf("== bench_mc: batched Howard on %s (%u nodes, %zu arcs, "
              "%zu samples) ==\n\n",
              c.netlist.name().c_str(), flat.num_nodes, na, samples);

  pn::McrBatch batch(flat.view());

  // Baseline: one independent cold solve per sample.
  std::vector<pn::CycleRatioResult> cold(samples);
  double cold_ms = time_ms([&] {
    for (size_t s = 0; s < samples; ++s) {
      cold[s] = batch.solve_one_cold(
          std::span<const Ps>(delays).subspan(s * na, na));
    }
  });

  std::vector<Row> rows;
  std::vector<pn::CycleRatioResult> serial;
  for (int jobs : {1, 2, 4}) {
    std::vector<pn::CycleRatioResult> res;
    double ms =
        time_ms([&] { res = batch.solve_all(delays, samples, jobs); });
    bool identical = res.size() == samples;
    for (size_t s = 0; identical && s < samples; ++s) {
      identical = res[s].ratio == cold[s].ratio &&
                  (jobs == 1 || res[s].cycle_arcs == serial[s].cycle_arcs);
    }
    if (jobs == 1) serial = std::move(res);
    rows.push_back({cat("batch-j", jobs), cold_ms, ms, cold_ms / ms,
                    identical});
  }

  std::printf("  %-10s %10s %10s %9s %10s\n", "case", "cold(ms)", "fast(ms)",
              "speedup", "identical");
  bool ok = true;
  for (const Row& r : rows) {
    std::printf("  %-10s %10.3f %10.3f %8.1fx %10s\n", r.name.c_str(),
                r.cold_ms, r.fast_ms, r.speedup, r.identical ? "yes" : "NO");
    ok = ok && r.identical;
  }
  if (!json_path.empty()) {
    write_json(json_path, rows, samples, flat.num_nodes, na);
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: batch ratios diverged from cold solves\n");
    return 1;
  }
  if (min_speedup > 0 && rows[0].speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: serial batch speedup %.1fx < required %.1fx\n",
                 rows[0].speedup, min_speedup);
    return 1;
  }
  std::printf("\nbatch %.1fx serial, %.1fx at 2 jobs, %.1fx at 4 jobs vs "
              "%zu cold solves\n",
              rows[0].speedup, rows[1].speedup, rows[2].speedup, samples);
  return 0;
}
