// A3 — ablation: analytic vs. measured cycle time. The timed protocol
// model's maximum cycle ratio predicts the event-driven simulation period.
#include <cstdio>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "pn/mcr.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& t = Tech::generic90();
  printf("== A3: analytic (max-cycle-ratio) vs. measured desync period ==\n\n");
  printf("  %-12s %12s %12s %8s\n", "circuit", "analytic", "measured", "err");
  for (auto& s : circuits::scaling_suite()) {
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    auto mcr = pn::max_cycle_ratio(flow::timed_control_model(dr, t));

    verif::FlowEqOptions opt;
    opt.rounds = 25;
    auto r = verif::check_flow_equivalence(s.circuit.netlist, s.circuit.clock,
                                           verif::random_stimulus(5), t, opt);
    double err = 100.0 * (r.desync_period - mcr.ratio) / mcr.ratio;
    printf("  %-12s %10.0fps %10.0fps %7.1f%%  %s\n", s.name.c_str(),
           mcr.ratio, r.desync_period, err,
           r.equivalent ? "" : "(NOT EQUIVALENT)");
  }
  printf("\n  the model abstracts fanout-dependent gate delays and the\n"
         "  pulse-generation path, so small positive errors are expected.\n");
  return 0;
}
