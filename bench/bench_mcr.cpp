// A3 — ablation: analytic vs. measured cycle time, plus the MCR solver
// benchmark. Section 1 checks that the timed protocol model's maximum
// cycle ratio predicts the event-driven simulation period. Section 2 races
// Howard's policy iteration (the production solver) against the
// binary-search reference on every suite control model and on large
// generated fabrics (thousands of transitions), asserting agreement to
// 1e-6; docs/PERF.md records the baseline numbers.
//
//   bench_mcr [--json <path>]
//
// --json writes the solver-race rows as a machine-readable report (schema
// desyn-bench-v1) so per-commit perf trajectories can be tracked; CI
// uploads it as an artifact.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "base/cli_args.h"
#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "pn/mcr.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

namespace {

template <typename F>
double time_ms(F&& f, int reps) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) f();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
}

struct RaceRow {
  std::string model;
  size_t transitions = 0, arcs = 0;
  double howard_ms = 0, ref_ms = 0;
  double ratio = 0;
  bool agree = false;
};

/// Time both solvers on one model, verify they agree to 1e-6, print a row.
/// Returns false on disagreement (the bench then exits nonzero).
bool race_solvers(const char* name, const pn::MarkedGraph& mg, int reps_h,
                  int reps_r, std::vector<RaceRow>* rows) {
  pn::CycleRatioResult h, r;
  double th = time_ms([&] { h = pn::max_cycle_ratio(mg); }, reps_h);
  double tr = time_ms([&] { r = pn::max_cycle_ratio_reference(mg); }, reps_r);
  bool agree = std::abs(h.ratio - r.ratio) <= 1e-6 * (1.0 + h.ratio);
  printf("  %-16s %6zu %6zu %10.3f %10.3f %8.0fx  %s\n", name,
         mg.num_transitions(), mg.num_arcs(), th, tr, tr / th,
         agree ? "" : "DISAGREE");
  rows->push_back({name, mg.num_transitions(), mg.num_arcs(), th, tr, h.ratio,
                   agree});
  return agree;
}

void write_json(const std::string& path, const std::vector<RaceRow>& rows) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[160];
  out << "{\n  \"schema\": \"desyn-bench-v1\",\n"
      << "  \"bench\": \"bench_mcr\",\n  \"cases\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RaceRow& r = rows[i];
    out << "    {\"model\": \"" << r.model
        << "\", \"transitions\": " << r.transitions
        << ", \"arcs\": " << r.arcs << ",";
    std::snprintf(buf, sizeof buf,
                  " \"howard_ms\": %.6f, \"reference_ms\": %.6f, "
                  "\"ratio_ps\": %.6f, \"agree\": %s",
                  r.howard_ms, r.ref_ms, r.ratio, r.agree ? "true" : "false");
    out << buf << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else {
      fprintf(stderr, "usage: bench_mcr [--json <path>]\n");
      return 2;
    }
  }
  const Tech& t = Tech::generic90();
  printf("== A3: analytic (max-cycle-ratio) vs. measured desync period ==\n\n");
  printf("  %-16s %12s %12s %8s\n", "circuit", "analytic", "measured", "err");
  for (auto& s : circuits::scaling_suite()) {
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    auto mcr = pn::max_cycle_ratio(flow::timed_control_model(dr, t));

    verif::FlowEqOptions opt;
    opt.rounds = 25;
    auto r = verif::check_flow_equivalence(s.circuit.netlist, s.circuit.clock,
                                           verif::random_stimulus(5), t, opt);
    double err = 100.0 * (r.desync_period - mcr.ratio) / mcr.ratio;
    printf("  %-16s %10.0fps %10.0fps %7.1f%%  %s\n", s.name.c_str(),
           mcr.ratio, r.desync_period, err,
           r.equivalent ? "" : "(NOT EQUIVALENT)");
  }
  printf("\n  the model abstracts fanout-dependent gate delays and the\n"
         "  pulse-generation path, so small positive errors are expected.\n");

  printf("\n== MCR solvers: Howard policy iteration vs. binary-search "
         "reference ==\n\n");
  printf("  %-16s %6s %6s %10s %10s %9s\n", "model", "trans", "arcs",
         "howard(ms)", "ref(ms)", "speedup");
  bool ok = true;
  std::vector<RaceRow> rows;
  for (auto& s : circuits::scaling_suite()) {
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    pn::MarkedGraph mg = flow::timed_control_model(dr, t);
    ok &= race_solvers(s.name.c_str(), mg, 50, 5, &rows);
  }
  // Large generated fabrics: thousands of control-model transitions, the
  // regime the reference's O(64 n m) cannot survive.
  {
    auto c = circuits::register_mesh(32, 32, 1);
    flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, t);
    ok &= race_solvers("mesh32x32x1", flow::timed_control_model(dr, t), 5, 1,
                       &rows);
  }
  {
    auto c = circuits::random_pipeline(13, 1024, 4);
    flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, t);
    ok &= race_solvers("rpipe1024x4", flow::timed_control_model(dr, t), 5, 1,
                       &rows);
  }
  if (!json_path.empty()) write_json(json_path, rows);
  if (!ok) {
    printf("\n  SOLVER DISAGREEMENT (see rows above)\n");
    return 1;
  }
  printf("\n  both solvers agree to 1e-6 on every model; Howard's policy\n"
         "  iteration visits each arc a handful of times instead of 64\n"
         "  Bellman-Ford sweeps, hence the widening gap with size.\n");
  return 0;
}
