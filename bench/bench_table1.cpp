// T1 — Table 1 of the paper: synchronous vs. de-synchronized DLX.
//
// Reproduces the same three rows (cycle time, dynamic power, area) for a
// from-scratch gate-level DLX running the standard workload mix. Absolute
// values differ from the paper (their 0.25um commercial flow vs. our
// generic90 models); the claim under reproduction is the *shape*: the
// de-synchronized processor pays low-single-digit-percent overheads.
#include <cstdio>

#include "core/clocktree.h"
#include "core/desynchronizer.h"
#include "core/report.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "sim/power.h"
#include "sta/sta.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

namespace {

struct Measured {
  Ps cycle = 0;
  double power = 0;
  double clock_power = 0;
};

Measured run_sync(const nl::Netlist& ff, nl::NetId clock, int cycles,
                  Um2* area, size_t* cells) {
  const Tech& t = Tech::generic90();
  nl::Netlist snl = ff;
  flow::ClockTree tree = flow::build_clock_tree(snl, clock, t);
  sta::Sta sta(ff, t);
  // Standard sign-off: 5% clock-uncertainty margin over the STA minimum
  // (the matched-delay margin plays the same role on the desync side).
  Ps period = sta.min_clock_period().min_period * 21 / 20;
  period += period % 2;

  sim::Simulator sim(snl, t);
  sim.add_clock(clock, period, period / 2);
  sim.run_until(period * 10);  // warm-up
  sim.clear_activity();
  sim.run_until(period * (10 + cycles));
  DESYN_ASSERT(sim.setup_violation_count() == 0);

  sim::PowerReport p = sim::estimate_power(sim, t, tree.nets, tree.nets);
  *area = flow::total_area(snl, t);
  *cells = snl.num_live_cells();
  return {period, p.total_mw, p.clock_network_mw};
}

Measured run_desync(const nl::Netlist& ff, nl::NetId clock, int rounds,
                    Um2* area, size_t* cells) {
  const Tech& t = Tech::generic90();
  // Same 5% engineering margin as the synchronous sign-off (clock
  // uncertainty there, matched-delay margin here): apples to apples.
  flow::DesyncOptions opt;
  opt.margin = 1.05;
  flow::DesyncResult dr = flow::desynchronize(ff, clock, t, opt);
  sim::Simulator sim(dr.netlist, t);

  // Round completion observed at the pc bank's master pulse.
  int pc_bank = -1;
  for (size_t i = 0; i < dr.banks.banks.size(); ++i) {
    if (dr.banks.banks[i].name == "pc.m") pc_bank = static_cast<int>(i);
  }
  DESYN_ASSERT(pc_bank >= 0);
  std::vector<Ps> captures;
  sim.watch(dr.enable(pc_bank), [&](Ps at, sim::V v) {
    if (v == sim::V::V0) captures.push_back(at);
  });

  Ps t_end = 0;
  while (captures.size() < 10) {
    t_end += 500000;
    sim.run_until(t_end);
  }
  sim.clear_activity();
  size_t warm = captures.size();
  while (captures.size() < warm + static_cast<size_t>(rounds)) {
    t_end += 500000;
    sim.run_until(t_end);
  }
  DESYN_ASSERT(sim.setup_violation_count() == 0);

  Ps cycle = (captures.back() - captures[warm - 1]) /
             static_cast<Ps>(captures.size() - warm);
  sim::PowerReport p = sim::estimate_power(sim, t, dr.ctrl.control_nets);
  *area = flow::total_area(dr.netlist, t);
  *cells = dr.netlist.num_live_cells();
  return {cycle, p.total_mw, p.clock_network_mw};
}

}  // namespace

int main() {
  dlx::DlxConfig cfg;
  printf("== T1: Sync vs. De-Synchronized DLX (paper Table 1) ==\n");
  printf("   DLX: 5-stage, 32-bit, %d registers, %d-word imem, %d-word dmem\n\n",
         cfg.regs, 1 << cfg.imem_bits, 1 << cfg.dmem_bits);

  flow::ImplReport sync_rep{"Sync DLX", 0, 0, 0, 0, 0};
  flow::ImplReport desync_rep{"De-Sync DLX", 0, 0, 0, 0, 0};
  int n = 0;

  for (const dlx::Workload& wl : dlx::standard_workloads()) {
    nl::Netlist nl("dlx");
    dlx::build_dlx(nl, cfg, wl.words);
    nl::NetId clock = nl.find_net("clk");

    Um2 sa = 0, da = 0;
    size_t sc = 0, dc = 0;
    Measured s = run_sync(nl, clock, wl.cycles, &sa, &sc);
    Measured d = run_desync(nl, clock, wl.cycles, &da, &dc);
    printf("  workload %-9s sync: %5.2fns %6.2fmW   desync: %5.2fns %6.2fmW\n",
           wl.name, s.cycle / 1000.0, s.power, d.cycle / 1000.0, d.power);

    sync_rep.cycle_time = s.cycle;
    sync_rep.power_mw += s.power;
    sync_rep.clock_power_mw += s.clock_power;
    sync_rep.area = sa;
    sync_rep.cells = sc;
    desync_rep.cycle_time = d.cycle;
    desync_rep.power_mw += d.power;
    desync_rep.clock_power_mw += d.clock_power;
    desync_rep.area = da;
    desync_rep.cells = dc;
    ++n;
  }
  sync_rep.power_mw /= n;
  sync_rep.clock_power_mw /= n;
  desync_rep.power_mw /= n;
  desync_rep.clock_power_mw /= n;

  printf("\n%s\n", flow::format_comparison(sync_rep, desync_rep).c_str());
  printf("  paper (0.25um commercial flow): cycle 4.40->4.45ns (+1.1%%), "
         "power 70.9->71.2mW (+0.4%%), area 372656->378058um2 (+1.4%%)\n");

  // Correctness stamp: the desynchronized DLX is flow-equivalent.
  nl::Netlist nl("dlx");
  dlx::build_dlx(nl, cfg, dlx::fibonacci_program(8));
  verif::FlowEqOptions opt;
  opt.rounds = 40;
  auto eq = verif::check_flow_equivalence(nl, nl.find_net("clk"),
                                          verif::constant_stimulus(cell::V::V0),
                                          Tech::generic90(), opt);
  printf("\n  flow equivalence (fib, 40 rounds, %zu registers): %s\n",
         eq.registers_compared, eq.equivalent ? "PASS" : eq.mismatch.c_str());
  return eq.equivalent ? 0 : 1;
}
