// P1 — library performance (google-benchmark): how fast the flow itself
// runs (STA, event simulation, desynchronization, model analytics).
#include <benchmark/benchmark.h>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "dlx/cpu_builder.h"
#include "dlx/programs.h"
#include "pn/mcr.h"
#include "sim/sim.h"
#include "sta/sta.h"

using namespace desyn;
using cell::Tech;

static void BM_StaDlx(benchmark::State& state) {
  nl::Netlist nl("dlx");
  dlx::build_dlx(nl, {}, dlx::fibonacci_program(10));
  const Tech& t = Tech::generic90();
  for (auto _ : state) {
    sta::Sta sta(nl, t);
    benchmark::DoNotOptimize(sta.min_clock_period().min_period);
  }
  state.counters["cells"] = static_cast<double>(nl.num_live_cells());
}
BENCHMARK(BM_StaDlx);

static void BM_SimulatePipeline(benchmark::State& state) {
  circuits::Circuit c =
      circuits::pipeline(static_cast<int>(state.range(0)), 16, 3);
  const Tech& t = Tech::generic90();
  uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulator sim(c.netlist, t);
    sim.add_clock(c.clock, 2000, 1000);
    sim::poke_word(sim, c.netlist.inputs(), 0x2aaaa, 0);  // skip clk bit 0? no
    sim.run_until(100000);
    events += sim.events_processed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatePipeline)->Arg(4)->Arg(16);

static void BM_DesynchronizeDlx(benchmark::State& state) {
  nl::Netlist nl("dlx");
  dlx::build_dlx(nl, {}, dlx::fibonacci_program(10));
  const Tech& t = Tech::generic90();
  for (auto _ : state) {
    flow::DesyncResult dr = flow::desynchronize(nl, nl.find_net("clk"), t);
    benchmark::DoNotOptimize(dr.netlist.num_live_cells());
  }
}
BENCHMARK(BM_DesynchronizeDlx);

static void BM_MaxCycleRatio(benchmark::State& state) {
  nl::Netlist nl("dlx");
  dlx::build_dlx(nl, {}, dlx::fibonacci_program(10));
  const Tech& t = Tech::generic90();
  flow::DesyncResult dr = flow::desynchronize(nl, nl.find_net("clk"), t);
  pn::MarkedGraph mg = flow::timed_control_model(dr, t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pn::max_cycle_ratio(mg).ratio);
  }
}
BENCHMARK(BM_MaxCycleRatio);

// Sharded event simulation of the desynchronized 32x32 register fabric:
// one domain per mesh cell (1024 bank-pair groups + env + remainder),
// events/s across --sim-jobs. Results are byte-identical at every job
// count; this benchmark measures only the speed. The simulator is built
// once and advanced in slices so construction (fanout flattening, domain
// CSR) stays out of the measured loop. Speedup requires cores: on a
// single-CPU container the parking barrier keeps jobs > 1 near 1x instead
// of collapsing (docs/PERF.md records both).
static void BM_SimulateDesyncMeshSharded(benchmark::State& state) {
  const Tech& t = Tech::generic90();
  // Static: desynchronizing the 4k-transition fabric dominates setup and
  // is identical for every arg (the flow engine also caches it).
  static const flow::DesyncResult* dr = [&t] {
    circuits::Circuit c = circuits::register_mesh(32, 32, 1);
    return new flow::DesyncResult(
        flow::desynchronize(c.netlist, c.clock, t));
  }();
  const int jobs = static_cast<int>(state.range(0));
  sim::Simulator sim(dr->netlist, t,
                     sim::SimOptions{jobs, flow::sim_domains(*dr)});
  uint64_t events = 0;
  Ps horizon = 0;
  for (auto _ : state) {
    const uint64_t before = sim.events_processed();
    horizon += 5'000;
    sim.run_until(horizon);
    events += sim.events_processed() - before;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["domains"] = static_cast<double>(sim.num_domains());
  state.counters["par_phases"] = static_cast<double>(sim.parallel_phases());
}
BENCHMARK(BM_SimulateDesyncMeshSharded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
