// bench_flow — the staged flow engine: cold submission vs. cache-served
// re-submission vs. ECO re-run on the large mesh fabric (mesh16x16x1,
// ~256 control banks — the partition-optimizer scale target).
//
//   bench_flow [--json <path>] [--min-speedup X]
//
// Four scenarios, each verified byte-identical to a cold flow before its
// time is reported (a fast wrong answer would be worthless):
//
//   resubmit    the same design again: a pure result-cache hit (one
//               content hash + one LRU lookup). --min-speedup gates the
//               cold/warm ratio (CI uses 10).
//   eco-delay   one Buf flipped to an Inv — the classic polarity-fix ECO,
//               a single-delay edit (-12ps) that stays inside its 120ps
//               DELAY quantization bucket. Only the edited cone's source
//               bank re-runs STA, the synthesized controllers are
//               field-patched, and Howard warm-restarts.
//   eco-requant one cell flipped to a DELAY (+90ps+): the matched-delay
//               chains resize, so controller synthesis honestly re-runs —
//               the worst-case ECO, bounded below cold only by the skipped
//               partition and full-STA stages.
//   eco-init    one flip-flop's init value flipped — no delay moves, the
//               control graph hash is unchanged: the previous synth
//               netlist is field-patched and the MCR stage is a cache hit.
//
// --json writes the rows as a machine-readable report (schema
// desyn-bench-v1); CI uploads it as an artifact.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/cli_args.h"
#include "circuits/circuits.h"
#include "flow/engine.h"
#include "netlist/writer.h"

using namespace desyn;

namespace {

struct Row {
  std::string name;
  double cold_ms = 0;
  double fast_ms = 0;  ///< warm / ECO time
  double speedup = 0;
  size_t banks_retimed = 0;  ///< ECO rows: source-bank STA re-runs
  bool identical = false;    ///< byte-identical to a cold flow
};

template <typename F>
double time_ms(F&& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Cold-flow oracle: a throwaway engine, so nothing is cached.
std::string cold_verilog(const cell::Tech& tech, const nl::Netlist& ff,
                         nl::NetId clock, const flow::DesyncOptions& opt) {
  flow::Engine fresh(tech);
  return *fresh.run(ff, clock, opt).verilog;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[160];
  out << "{\n  \"schema\": \"desyn-bench-v1\",\n"
      << "  \"bench\": \"bench_flow\",\n  \"cases\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"case\": \"" << r.name << "\",";
    std::snprintf(buf, sizeof buf,
                  " \"cold_ms\": %.3f, \"fast_ms\": %.3f, \"speedup\": %.2f,",
                  r.cold_ms, r.fast_ms, r.speedup);
    out << buf << " \"banks_retimed\": " << r.banks_retimed
        << ", \"identical\": " << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else if (a == "--min-speedup") {
      min_speedup = cli::parse_nonneg(
          cli::need_value(argc, argv, i, "--min-speedup"),
          "--min-speedup value");
    } else {
      std::fprintf(stderr,
                   "usage: bench_flow [--json <path>] [--min-speedup X]\n");
      return 2;
    }
  }

  const cell::Tech& tech = cell::Tech::generic90();
  circuits::Circuit base = circuits::register_mesh(16, 16, 1);
  flow::DesyncOptions opt;  // prefix strategy, pulse protocol
  // 20% matched-delay margin: with the default 1.10 one of the mesh's edited
  // control edges lands exactly on a 120ps DELAY-quantization boundary, which
  // would turn the eco-delay scenario into a requantization. 1.20 keeps the
  // -12ps Buf->Inv edit inside its bucket on every affected edge.
  opt.margin = 1.20;
  std::vector<Row> rows;

  std::printf("== bench_flow: staged engine on %s (%zu cells) ==\n\n",
              base.netlist.name().c_str(), base.netlist.num_live_cells());

  flow::Engine engine(tech);

  // --- resubmit: cold, then the identical design again -------------------
  flow::FlowOutcome cold;
  double cold_ms =
      time_ms([&] { cold = engine.run(base.netlist, base.clock, opt); });
  DESYN_ASSERT(!cold.cached, "first submission must run the stages");

  const int kWarmReps = 10;
  flow::FlowOutcome warm;
  double warm_ms = time_ms([&] {
                     for (int i = 0; i < kWarmReps; ++i) {
                       warm = engine.run(base.netlist, base.clock, opt);
                     }
                   }) /
                   kWarmReps;
  DESYN_ASSERT(warm.cached, "re-submission must be a result-cache hit");
  rows.push_back({"resubmit", cold_ms, warm_ms, cold_ms / warm_ms, 0,
                  *warm.verilog == *cold.verilog});

  // --- eco-delay: polarity fix, one Buf becomes an Inv -------------------
  nl::CellId buf_cell;
  for (nl::CellId c : base.netlist.cells()) {
    const nl::CellData& cd = base.netlist.cell(c);
    if (cd.kind == cell::Kind::Buf && cd.ins.size() == 1 &&
        cd.outs.size() == 1) {
      buf_cell = c;
      break;
    }
  }
  DESYN_ASSERT(buf_cell.valid(), "mesh has no Buf cell to edit");

  nl::Netlist inv_edit = base.netlist;
  inv_edit.set_kind(buf_cell, cell::Kind::Inv);

  flow::StageCounters before = engine.counters();
  flow::FlowOutcome eco1;
  double eco1_ms =
      time_ms([&] { eco1 = engine.run(inv_edit, base.clock, opt); });
  flow::StageCounters after = engine.counters();
  DESYN_ASSERT(after.adjacency_eco == before.adjacency_eco + 1,
               "delay edit must take the cone-limited STA path");
  DESYN_ASSERT(after.synth_patched == before.synth_patched + 1,
               "in-bucket delay edit must take the synth field-patch path");
  rows.push_back({"eco-delay", cold_ms, eco1_ms, cold_ms / eco1_ms,
                  after.eco_banks_retimed - before.eco_banks_retimed,
                  *eco1.verilog ==
                      cold_verilog(tech, inv_edit, base.clock, opt)});

  // --- eco-requant: the edited cell becomes a DELAY (+90ps or more) ------
  nl::Netlist delay_edit = inv_edit;
  delay_edit.set_kind(buf_cell, cell::Kind::Delay);

  before = engine.counters();
  flow::FlowOutcome eco2;
  double eco2_ms =
      time_ms([&] { eco2 = engine.run(delay_edit, base.clock, opt); });
  after = engine.counters();
  DESYN_ASSERT(after.adjacency_eco == before.adjacency_eco + 1,
               "delay edit must take the cone-limited STA path");
  DESYN_ASSERT(after.synth_runs == before.synth_runs + 1,
               "bucket-crossing delay edit must re-synthesize");
  rows.push_back({"eco-requant", cold_ms, eco2_ms, cold_ms / eco2_ms,
                  after.eco_banks_retimed - before.eco_banks_retimed,
                  *eco2.verilog ==
                      cold_verilog(tech, delay_edit, base.clock, opt)});

  // --- eco-init: one flip-flop init flips (relative to eco-requant) ------
  nl::Netlist init_edit = delay_edit;
  nl::CellId ff_cell;
  for (nl::CellId c : init_edit.cells()) {
    if (init_edit.cell(c).kind == cell::Kind::Dff) {
      ff_cell = c;
      break;
    }
  }
  DESYN_ASSERT(ff_cell.valid(), "mesh has no Dff cell to edit");
  init_edit.set_init(ff_cell, init_edit.cell(ff_cell).init == cell::V::V0
                                  ? cell::V::V1
                                  : cell::V::V0);

  before = engine.counters();
  flow::FlowOutcome eco3;
  double eco3_ms =
      time_ms([&] { eco3 = engine.run(init_edit, base.clock, opt); });
  after = engine.counters();
  DESYN_ASSERT(after.synth_patched == before.synth_patched + 1,
               "init edit must take the synth field-patch path");
  rows.push_back({"eco-init", cold_ms, eco3_ms, cold_ms / eco3_ms,
                  after.eco_banks_retimed - before.eco_banks_retimed,
                  *eco3.verilog ==
                      cold_verilog(tech, init_edit, base.clock, opt)});

  std::printf("  %-10s %10s %10s %9s %8s %10s\n", "case", "cold(ms)",
              "fast(ms)", "speedup", "retimed", "identical");
  bool ok = true;
  for (const Row& r : rows) {
    std::printf("  %-10s %10.3f %10.3f %8.1fx %8zu %10s\n", r.name.c_str(),
                r.cold_ms, r.fast_ms, r.speedup, r.banks_retimed,
                r.identical ? "yes" : "NO");
    ok = ok && r.identical;
  }
  if (!json_path.empty()) write_json(json_path, rows);
  if (!ok) {
    std::fprintf(stderr, "FAIL: a fast path diverged from the cold flow\n");
    return 1;
  }
  if (min_speedup > 0 && rows[0].speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: resubmit speedup %.1fx < required %.1fx\n",
                 rows[0].speedup, min_speedup);
    return 1;
  }
  std::printf(
      "\nresubmit %.1fx, eco-delay %.1fx, eco-requant %.1fx, eco-init %.1fx "
      "vs cold\n",
      rows[0].speedup, rows[1].speedup, rows[2].speedup, rows[3].speedup);
  return 0;
}
