// A1 — ablation: controller protocol comparison. Analytic cycle time (max
// cycle ratio of the timed protocol model) for all four protocols over
// pipeline rings of growing depth, plus the measured gate-level period of
// the shipped Pulse controllers.
#include <cstdio>

#include "ctl/conformance.h"
#include "ctl/controller.h"
#include "pn/mcr.h"
#include "sim/sim.h"

using namespace desyn;
using cell::Tech;
using ctl::ControlGraph;
using ctl::Protocol;

static ControlGraph ring(int n, Ps delay) {
  ControlGraph cg;
  for (int i = 0; i < n; ++i) cg.add_bank(cat("B", i), i % 2 == 0);
  for (int i = 0; i < n; ++i) {
    cg.add_edge(i, (i + 1) % n, i % 2 == 0 ? 100 : delay);
  }
  return cg;
}

int main() {
  const Tech& t = Tech::generic90();
  const Ps ctrl = t.delay(cell::Kind::CElem, 2, 2);
  const Ps cl = 900;  // slave->master combinational delay per stage

  printf("== A1: protocol comparison, M/S pipeline rings (CL=%lldps) ==\n\n",
         static_cast<long long>(cl));
  printf("  %-6s %12s %12s %12s %12s %14s\n", "banks", "lockstep", "semi",
         "fully", "pulse", "pulse(gates)");
  for (int n : {4, 8, 12, 16, 24, 32}) {
    ControlGraph cg = ring(n, cl);
    // Quantized delays, as the hardware lines are.
    ControlGraph q;
    for (size_t i = 0; i < cg.num_banks(); ++i) {
      q.add_bank(cg.bank(static_cast<int>(i)).name,
                 cg.bank(static_cast<int>(i)).even);
    }
    for (const auto& e : cg.edges()) {
      Ps cells = std::max<Ps>(1, (e.matched_delay + t.delay_unit() - 1) /
                                     t.delay_unit());
      q.add_edge(e.from, e.to, cells * t.delay_unit());
    }
    double periods[4];
    const Protocol protos[] = {Protocol::Lockstep, Protocol::SemiDecoupled,
                               Protocol::FullyDecoupled, Protocol::Pulse};
    for (int p = 0; p < 4; ++p) {
      Ps pw = protos[p] == Protocol::Pulse ? 3 * t.spec(cell::Kind::Buf).delay
                                           : 0;
      periods[p] =
          pn::max_cycle_ratio(ctl::protocol_mg(q, protos[p], ctrl, pw)).ratio;
    }

    // Gate-level measurement for Pulse.
    nl::Netlist nl("ctrl");
    nl::Builder b(nl);
    ctl::ControllerNetwork net =
        ctl::synthesize_controllers(b, cg, Protocol::Pulse, t);
    sim::Simulator sim(nl, t);
    std::vector<Ps> rises;
    sim.watch(net.enables[0], [&](Ps at, sim::V v) {
      if (v == sim::V::V1) rises.push_back(at);
    });
    sim.run_until(400000);
    double measured =
        rises.size() > 9
            ? static_cast<double>(rises.back() - rises[rises.size() - 9]) / 8
            : -1;

    printf("  %-6d %10.0fps %10.0fps %10.0fps %10.0fps %12.0fps\n", n,
           periods[0], periods[1], periods[2], periods[3], measured);
  }
  printf("\n  the decoupled protocols admit more concurrency (lower bound on\n"
         "  the period); on homogeneous rings all converge to the per-stage\n"
         "  bound CL + controller overhead, which the gate-level pulse\n"
         "  network tracks.\n");
  return 0;
}
