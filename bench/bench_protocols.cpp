// A1 — ablation: controller protocol comparison. Analytic cycle time (max
// cycle ratio of the timed model) for all four protocols over pipeline
// rings of growing depth, plus the measured gate-level period of the
// synthesized controller network for every protocol — since the
// Lockstep/Semi/Fully controllers are real hardware too, the ablation
// benchmarks gates against model across the whole family. The measured
// period must sit on or above the MCR bound (the model abstracts join
// trees, fanout-loaded gates and the token-gating AND).
#include <cstdio>

#include "ctl/conformance.h"
#include "ctl/controller.h"
#include "pn/mcr.h"
#include "sim/sim.h"

using namespace desyn;
using cell::Tech;
using ctl::ControlGraph;
using ctl::Protocol;

static ControlGraph ring(int n, Ps delay) {
  ControlGraph cg;
  for (int i = 0; i < n; ++i) cg.add_bank(cat("B", i), i % 2 == 0);
  for (int i = 0; i < n; ++i) {
    cg.add_edge(i, (i + 1) % n, i % 2 == 0 ? 100 : delay);
  }
  return cg;
}

/// Steady-state period of the synthesized network, from the last eight
/// rises of bank 0's enable.
static double measure_gates(const ControlGraph& cg, Protocol p,
                            const Tech& t) {
  nl::Netlist nl("ctrl");
  nl::Builder b(nl);
  ctl::ControllerNetwork net = ctl::synthesize_controllers(b, cg, p, t);
  sim::Simulator sim(nl, t);
  std::vector<Ps> rises;
  sim.watch(net.enables[0], [&](Ps at, sim::V v) {
    if (v == sim::V::V1) rises.push_back(at);
  });
  sim.run_until(400000);
  if (rises.size() <= 9) return -1;
  return static_cast<double>(rises.back() - rises[rises.size() - 9]) / 8;
}

int main() {
  const Tech& t = Tech::generic90();
  const Ps ctrl = t.delay(cell::Kind::Inv, 1, 1) +
                  t.delay(cell::Kind::CElem, 2, 2);
  const Ps cl = 900;  // slave->master combinational delay per stage

  printf("== A1: protocol comparison, M/S pipeline rings (CL=%lldps) ==\n\n",
         static_cast<long long>(cl));
  printf("  %-6s %-15s %12s %12s %11s\n", "banks", "protocol", "analytic",
         "gates", "gates/mcr");
  for (int n : {4, 8, 12, 16, 24, 32}) {
    ControlGraph cg = ring(n, cl);
    ControlGraph q = ctl::quantize_matched_delays(cg, t);
    for (Protocol p : ctl::kAllProtocols) {
      Ps pw = 3 * t.spec(cell::Kind::Buf).delay;
      double analytic =
          pn::max_cycle_ratio(ctl::hardware_mg(q, p, ctrl, pw)).ratio;
      double gates = measure_gates(cg, p, t);
      printf("  %-6d %-15s %10.0fps %10.0fps %11.2f\n", n,
             ctl::protocol_name(p), analytic, gates,
             gates > 0 ? gates / analytic : 0.0);
    }
    printf("\n");
  }
  printf("  the decoupled protocols admit more concurrency (lower bound on\n"
         "  the period); on homogeneous rings all converge to the per-stage\n"
         "  bound CL + controller overhead, which each gate-level network\n"
         "  tracks from above (gates/mcr >= 1, within the abstraction\n"
         "  slack of the MG model).\n");
  return 0;
}
