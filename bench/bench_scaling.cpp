// A2 — ablation: de-synchronization overhead vs. circuit size and shape.
// For every suite circuit: sync vs. desync cycle time / power / area (the
// per-circuit miniature of Table 1), with flow equivalence asserted.
#include <chrono>
#include <cstdio>

#include "circuits/circuits.h"
#include "core/clocktree.h"
#include "core/report.h"
#include "netlist/query.h"
#include "sim/sim.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& t = Tech::generic90();
  printf("== A2: overhead scaling across the circuit suite ==\n\n");
  printf("  %-12s %11s | %9s %9s %6s | %8s %8s %6s | %9s %9s %6s | %s\n",
         "circuit", "cells(s/d)", "Tsync", "Tdesync", "d%", "Psync",
         "Pdesync", "d%", "Async", "Adesync", "d%", "equiv");

  for (auto& s : circuits::scaling_suite()) {
    verif::FlowEqOptions opt;
    opt.rounds = 25;
    auto r = verif::check_flow_equivalence(s.circuit.netlist, s.circuit.clock,
                                           verif::random_stimulus(3), t, opt);

    // Areas: sync pays for a clock tree; desync for controllers and lines.
    nl::Netlist sync_nl = s.circuit.netlist;
    flow::ClockTree tree =
        flow::build_clock_tree(sync_nl, s.circuit.clock, t);
    (void)tree;
    Um2 a_sync = flow::total_area(sync_nl, t);
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    Um2 a_desync = flow::total_area(dr.netlist, t);

    auto pct = [](double a, double b) { return 100.0 * (b - a) / a; };
    // Gate counts come from the flow-equivalence run itself: the sync side
    // includes its clock tree, the desync side controllers + delay lines.
    printf("  %-12s %5zu/%5zu | %7lldps %7.0fps %5.1f%% | %6.2fmW %6.2fmW "
           "%5.1f%% | %7.0fu2 %7.0fu2 %5.1f%% | %s\n",
           s.name.c_str(), r.sync_cells, r.desync_cells,
           static_cast<long long>(r.sync_period),
           r.desync_period,
           pct(static_cast<double>(r.sync_period), r.desync_period),
           r.sync_power_mw, r.desync_power_mw,
           pct(r.sync_power_mw, r.desync_power_mw), a_sync, a_desync,
           pct(a_sync, a_desync), r.equivalent ? "PASS" : "FAIL");
  }
  printf("\n  the fixed controller latency and per-bank hardware amortize\n"
         "  with circuit size: relative overheads shrink from the tiny\n"
         "  circuits toward the DLX-class result of bench_table1 (a few\n"
         "  percent) — the regime the paper reports.\n");

  // Sharded-simulation throughput: events/s of the desynchronized circuit
  // under its derived domain map, serial oracle vs 4 worker threads. The
  // two runs are byte-identical by contract; only the rate may differ
  // (and only when the host actually has cores to run the shards on).
  printf("\n== sharded event simulation: events/s at --sim-jobs 1 vs 4 ==\n\n");
  printf("  %-12s %7s | %12s %12s %8s\n", "circuit", "domains", "jobs=1",
         "jobs=4", "ratio");
  constexpr Ps kHorizon = 100'000;
  for (auto& s : circuits::scaling_suite()) {
    flow::DesyncResult dr =
        flow::desynchronize(s.circuit.netlist, s.circuit.clock, t);
    const sim::DomainMap map = flow::sim_domains(dr);
    auto rate = [&](int jobs) {
      sim::Simulator sim(dr.netlist, t, sim::SimOptions{jobs, map});
      auto t0 = std::chrono::steady_clock::now();
      sim.run_until(kHorizon);
      double secs = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      return static_cast<double>(sim.events_processed()) / secs;
    };
    double r1 = rate(1);
    double r4 = rate(4);
    printf("  %-12s %7u | %10.0f/s %10.0f/s %7.2fx\n", s.name.c_str(),
           map.num_domains, r1, r4, r4 / r1);
  }
  return 0;
}
