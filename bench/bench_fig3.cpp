// F3 — Fig. 3 of the paper: pipeline de-synchronization — the timing
// diagram of the latch control signals and the corresponding marked-graph
// unfolding. Regenerated from a gate-level simulation of a de-synchronized
// 2-stage (4-bank: A=st0.m, B=st0.s, C=st1.m, D=st1.s) pipeline, plus the
// analytic earliest-firing schedule of the protocol model.
#include <cstdio>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "pn/mcr.h"
#include "sim/sim.h"

using namespace desyn;
using cell::Tech;

int main() {
  printf("== F3: pipeline de-synchronization timing diagram (paper Fig. 3) ==\n\n");
  circuits::Circuit c = circuits::pipeline(2, 8, 3);
  const Tech& t = Tech::generic90();
  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, t);

  const Ps t0 = 2000, t1 = 12000, dt = 100;
  sim::Simulator sim2(dr.netlist, t);
  std::vector<std::vector<std::pair<Ps, bool>>> waves(dr.cg.num_banks());
  for (size_t i = 0; i < dr.cg.num_banks(); ++i) {
    sim2.watch(dr.enable(static_cast<int>(i)), [&waves, i](Ps at, sim::V v) {
      if (v != sim::V::VX) waves[i].emplace_back(at, v == sim::V::V1);
    });
  }
  sim2.run_until(t1);

  printf("  latch enables, %lld..%lldps (one column = %lldps):\n\n",
         static_cast<long long>(t0), static_cast<long long>(t1),
         static_cast<long long>(dt));
  for (size_t i = 0; i < dr.cg.num_banks(); ++i) {
    printf("  %-10s ", dr.cg.bank(static_cast<int>(i)).name.c_str());
    bool level = false;
    size_t k = 0;
    for (Ps at = t0; at < t1; at += dt) {
      while (k < waves[i].size() && waves[i][k].first <= at) {
        level = waves[i][k].second;
        ++k;
      }
      // reset k-scan cheaply: waves are sorted; track from start each row
      putchar(level ? '#' : '.');
    }
    printf("\n");
    (void)level;
  }

  printf("\n  each '#' pulse = one latch transparency window; data items\n"
         "  ripple through while earlier values have already been captured\n"
         "  downstream (no overwriting) — the behaviour of paper Fig. 3.\n");

  // Marked-graph unfolding (earliest-firing schedule) of the model.
  pn::MarkedGraph mg = flow::timed_control_model(dr, t);
  auto sched = pn::earliest_schedule(mg, 4);
  printf("\n  protocol-model unfolding (first 4 firings, ps):\n");
  for (uint32_t tr = 0; tr < mg.num_transitions(); ++tr) {
    printf("    %-12s", mg.transition(pn::TransId(tr)).name.c_str());
    for (int k = 0; k < 4; ++k) {
      printf(" %7lld", static_cast<long long>(sched[tr][static_cast<size_t>(k)]));
    }
    printf("\n");
  }
  auto mcr = pn::max_cycle_ratio(mg);
  printf("\n  analytic cycle time (max cycle ratio): %.0fps\n", mcr.ratio);
  return 0;
}
