// F1 — Fig. 1 of the paper: the structural transformation from a clocked
// FF circuit (a) to a latch-based circuit with local controllers (b).
// Regenerated as a structural inventory of the same design before/after.
#include <cstdio>

#include "circuits/circuits.h"
#include "core/clocktree.h"
#include "core/desynchronizer.h"
#include "netlist/query.h"

using namespace desyn;
using cell::Kind;
using cell::Tech;

static void print_inventory(const char* title, const nl::Netlist& nl) {
  nl::Stats s = nl::stats(nl, Tech::generic90());
  printf("  %-28s cells=%5zu area=%9.0fum2 | FF=%zu latch=%zu C-elem=%zu "
         "delay=%zu buf=%zu\n",
         title, s.cells, s.area, s.flipflops, s.latches, s.celems,
         s.delay_cells, s.count(Kind::Buf));
}

int main() {
  printf("== F1: FF circuit + clock tree  ->  latches + local controllers ==\n\n");
  circuits::Circuit c = circuits::pipeline(3, 8, 2);
  const Tech& t = Tech::generic90();

  print_inventory("original FF netlist", c.netlist);

  nl::Netlist sync_nl = c.netlist;
  flow::ClockTree tree = flow::build_clock_tree(sync_nl, c.clock, t);
  print_inventory("sync implementation (a)", sync_nl);
  printf("      clock tree: %zu buffers, %d levels, %lldps insertion\n",
         tree.buffers.size(), tree.levels,
         static_cast<long long>(tree.insertion_delay));

  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, t);
  print_inventory("de-synchronized (b)", dr.netlist);
  printf("      banks: %zu (", dr.cg.num_banks());
  for (size_t i = 0; i < dr.cg.num_banks(); ++i) {
    printf("%s%s", i ? " " : "", dr.cg.bank(static_cast<int>(i)).name.c_str());
  }
  printf(")\n      matched-delay lines: %zu DELAY cells total\n",
         dr.ctrl.delay_units);
  printf("\n  every flip-flop became a master/slave latch pair; the clock\n"
         "  tree was replaced by one pulse controller per bank plus\n"
         "  matched-delay request lines (paper Fig. 1b).\n");
  return 0;
}
