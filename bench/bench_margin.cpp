// A4 — ablation: matched-delay margin sweep. The margin multiplies every
// STA-sized matched delay; larger margins buy robustness (setup slack at
// the latches) for cycle time. The sweep reports measured period, setup
// violations and flow equivalence at each point.
//
//   bench_margin [--json <path>]
//
// --json writes the rows as a machine-readable report (schema
// desyn-bench-v1); CI uploads it next to bench_mc's so the margin/period
// trade-off and the Monte-Carlo throughput numbers travel together.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/cli_args.h"
#include "circuits/circuits.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

namespace {

struct Row {
  std::string circuit;
  double margin = 0;
  double period = 0;
  size_t sync_viol = 0;
  size_t desync_viol = 0;
  bool equivalent = false;
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  if (!out) fail("cannot write ", path);
  char buf[160];
  out << "{\n  \"schema\": \"desyn-bench-v1\",\n"
      << "  \"bench\": \"bench_margin\",\n  \"cases\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"circuit\": \"" << r.circuit << "\",";
    std::snprintf(buf, sizeof buf,
                  " \"margin\": %.2f, \"measured_period_ps\": %.1f,", r.margin,
                  r.period);
    out << buf << " \"sync_violations\": " << r.sync_viol
        << ", \"desync_violations\": " << r.desync_viol
        << ", \"equivalent\": " << (r.equivalent ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json") {
      json_path = cli::need_value(argc, argv, i, "--json");
    } else {
      std::fprintf(stderr, "usage: bench_margin [--json <path>]\n");
      return 2;
    }
  }

  const Tech& t = Tech::generic90();
  std::vector<Row> rows;
  printf("== A4: matched-delay margin sweep (pipe8x16 + fir8x12) ==\n\n");
  for (const char* which : {"pipe", "fir"}) {
    circuits::Circuit c = which[0] == 'p' ? circuits::pipeline(8, 16, 3)
                                          : circuits::fir_filter(8, 12);
    printf("  %s:\n", c.netlist.name().c_str());
    printf("    %-8s %12s %10s %10s %8s\n", "margin", "period", "sync-viol",
           "desync-viol", "equiv");
    for (double margin : {1.0, 1.05, 1.15, 1.3, 1.5}) {
      verif::FlowEqOptions opt;
      opt.rounds = 25;
      opt.desync.margin = margin;
      auto r = verif::check_flow_equivalence(
          c.netlist, c.clock, verif::random_stimulus(17), t, opt);
      printf("    %-8.2f %10.0fps %10llu %10llu %8s\n", margin,
             r.desync_period,
             static_cast<unsigned long long>(r.sync_setup_violations),
             static_cast<unsigned long long>(r.desync_setup_violations),
             r.equivalent ? "PASS" : "FAIL");
      rows.push_back({c.netlist.name(), margin, r.desync_period,
                      r.sync_setup_violations, r.desync_setup_violations,
                      r.equivalent});
    }
  }
  printf("\n  with exact delay models even margin 1.0 is safe (the line\n"
         "  quantization to whole DELAY cells already over-provisions); real\n"
         "  flows keep 10-15%% for process variation, as the paper did.\n");
  if (!json_path.empty()) write_json(json_path, rows);
  return 0;
}
