// A4 — ablation: matched-delay margin sweep. The margin multiplies every
// STA-sized matched delay; larger margins buy robustness (setup slack at
// the latches) for cycle time. The sweep reports measured period, setup
// violations and flow equivalence at each point.
#include <cstdio>

#include "circuits/circuits.h"
#include "verif/flow_equivalence.h"

using namespace desyn;
using cell::Tech;

int main() {
  const Tech& t = Tech::generic90();
  printf("== A4: matched-delay margin sweep (pipe8x16 + fir8x12) ==\n\n");
  for (const char* which : {"pipe", "fir"}) {
    circuits::Circuit c = which[0] == 'p' ? circuits::pipeline(8, 16, 3)
                                          : circuits::fir_filter(8, 12);
    printf("  %s:\n", c.netlist.name().c_str());
    printf("    %-8s %12s %10s %10s %8s\n", "margin", "period", "sync-viol",
           "desync-viol", "equiv");
    for (double margin : {1.0, 1.05, 1.15, 1.3, 1.5}) {
      verif::FlowEqOptions opt;
      opt.rounds = 25;
      opt.desync.margin = margin;
      auto r = verif::check_flow_equivalence(
          c.netlist, c.clock, verif::random_stimulus(17), t, opt);
      printf("    %-8.2f %10.0fps %10llu %10llu %8s\n", margin,
             r.desync_period,
             static_cast<unsigned long long>(r.sync_setup_violations),
             static_cast<unsigned long long>(r.desync_setup_violations),
             r.equivalent ? "PASS" : "FAIL");
    }
  }
  printf("\n  with exact delay models even margin 1.0 is safe (the line\n"
         "  quantization to whole DELAY cells already over-provisions); real\n"
         "  flows keep 10-15%% for process variation, as the paper did.\n");
  return 0;
}
