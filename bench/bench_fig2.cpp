// F2 — Fig. 2 of the paper: a latch-based netlist and its
// de-synchronization model (composed marked graph), with the properties the
// theory requires (liveness, safety) checked mechanically.
#include <cstdio>

#include "ctl/protocol.h"
#include "pn/analysis.h"

using namespace desyn;
using ctl::ControlGraph;
using ctl::Protocol;

int main() {
  printf("== F2: netlist -> de-synchronization marked graph (paper Fig. 2) ==\n\n");
  // A seven-latch netlist with the even/odd structure of the figure:
  // two parallel input latches feeding a reconvergent middle stage that
  // fans out to two output latches.
  ControlGraph cg;
  int A = cg.add_bank("A", true);
  int D = cg.add_bank("D", true);
  int B = cg.add_bank("B", false);
  int C = cg.add_bank("C", false);
  int E = cg.add_bank("E", true);
  int F = cg.add_bank("F", false);
  int G = cg.add_bank("G", false);
  cg.add_edge(A, B, 0);
  cg.add_edge(D, C, 0);
  cg.add_edge(B, E, 0);
  cg.add_edge(C, E, 0);
  cg.add_edge(E, F, 0);
  cg.add_edge(E, G, 0);
  cg.add_edge(F, A, 0);  // environment loop closing the system
  cg.add_edge(G, D, 0);

  pn::MarkedGraph mg = ctl::protocol_mg(cg, Protocol::FullyDecoupled);
  printf("  transitions: %zu (a+/a- per latch)\n", mg.num_transitions());
  printf("  arcs: %zu\n", mg.num_arcs());
  for (uint32_t i = 0; i < mg.num_arcs(); ++i) {
    const pn::Arc& a = mg.arc(pn::ArcId(i));
    printf("    %-3s -> %-3s %s\n", mg.transition(a.from).name.c_str(),
           mg.transition(a.to).name.c_str(), a.tokens ? "(*)" : "");
  }
  printf("\n  live: %s   safe: %s\n", pn::is_live(mg) ? "yes" : "NO",
         pn::is_safe(mg) ? "yes" : "NO");
  auto reach = pn::explore(mg);
  printf("  reachable markings: %llu (complete=%d, max tokens/place=%d)\n",
         static_cast<unsigned long long>(reach.states), reach.complete,
         reach.max_tokens);
  auto seq = ctl::canonical_schedule(mg, cg, Protocol::FullyDecoupled, 3);
  printf("  synchronous schedule admissible: %s\n",
         pn::admits_sequence(mg, seq) == -1 ? "yes" : "NO");
  printf("\n  graphviz (render with dot -Tpng):\n%s\n", mg.to_dot().c_str());
  return 0;
}
