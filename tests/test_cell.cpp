#include "cell/cells.h"

#include <gtest/gtest.h>

#include "cell/liberty.h"
#include "cell/tech.h"

namespace desyn::cell {
namespace {

V v(int x) { return x == 0 ? V::V0 : (x == 1 ? V::V1 : V::VX); }

TEST(Eval, BasicGates) {
  V in01[] = {v(0), v(1)};
  V in11[] = {v(1), v(1)};
  V in00[] = {v(0), v(0)};
  EXPECT_EQ(eval_comb(Kind::And, in01), V::V0);
  EXPECT_EQ(eval_comb(Kind::And, in11), V::V1);
  EXPECT_EQ(eval_comb(Kind::Or, in01), V::V1);
  EXPECT_EQ(eval_comb(Kind::Or, in00), V::V0);
  EXPECT_EQ(eval_comb(Kind::Nand, in11), V::V0);
  EXPECT_EQ(eval_comb(Kind::Nor, in00), V::V1);
  EXPECT_EQ(eval_comb(Kind::Xor, in01), V::V1);
  EXPECT_EQ(eval_comb(Kind::Xnor, in01), V::V0);
}

TEST(Eval, XPropagation) {
  V x1[] = {v(2), v(1)};
  V x0[] = {v(2), v(0)};
  // Controlling values dominate X.
  EXPECT_EQ(eval_comb(Kind::And, x0), V::V0);
  EXPECT_EQ(eval_comb(Kind::Or, x1), V::V1);
  // Non-controlling leave X.
  EXPECT_EQ(eval_comb(Kind::And, x1), V::VX);
  EXPECT_EQ(eval_comb(Kind::Or, x0), V::VX);
  EXPECT_EQ(eval_comb(Kind::Xor, x1), V::VX);
}

TEST(Eval, WideGates) {
  std::vector<V> ins(8, V::V1);
  EXPECT_EQ(eval_comb(Kind::And, ins), V::V1);
  ins[7] = V::V0;
  EXPECT_EQ(eval_comb(Kind::And, ins), V::V0);
  EXPECT_EQ(eval_comb(Kind::Or, ins), V::V1);
}

TEST(Eval, Mux2TruthTable) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      V ins[] = {v(a), v(b), v(0)};
      EXPECT_EQ(eval_comb(Kind::Mux2, ins), v(a));
      V ins1[] = {v(a), v(b), v(1)};
      EXPECT_EQ(eval_comb(Kind::Mux2, ins1), v(b));
    }
  }
  // X select: known only when both data agree.
  V agree[] = {v(1), v(1), v(2)};
  V differ[] = {v(0), v(1), v(2)};
  EXPECT_EQ(eval_comb(Kind::Mux2, agree), V::V1);
  EXPECT_EQ(eval_comb(Kind::Mux2, differ), V::VX);
}

TEST(Eval, Aoi21Oai21) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        V ins[] = {v(a), v(b), v(c)};
        int aoi = !((a && b) || c);
        int oai = !((a || b) && c);
        EXPECT_EQ(eval_comb(Kind::Aoi21, ins), v(aoi));
        EXPECT_EQ(eval_comb(Kind::Oai21, ins), v(oai));
      }
    }
  }
}

TEST(Eval, Ties) {
  EXPECT_EQ(eval_comb(Kind::TieLo, {}), V::V0);
  EXPECT_EQ(eval_comb(Kind::TieHi, {}), V::V1);
}

TEST(CElem, RiseFallHold) {
  V all1[] = {v(1), v(1)};
  V all0[] = {v(0), v(0)};
  V mixed[] = {v(0), v(1)};
  EXPECT_EQ(eval_state_holding(Kind::CElem, all1, V::V0), V::V1);
  EXPECT_EQ(eval_state_holding(Kind::CElem, all0, V::V1), V::V0);
  EXPECT_EQ(eval_state_holding(Kind::CElem, mixed, V::V0), V::V0);
  EXPECT_EQ(eval_state_holding(Kind::CElem, mixed, V::V1), V::V1);
  // X input: cannot rise/fall, holds.
  V withx[] = {v(2), v(1)};
  EXPECT_EQ(eval_state_holding(Kind::CElem, withx, V::V0), V::V0);
}

TEST(Gc, SetResetHoldConflict) {
  V set[] = {v(1), v(0)};
  V reset[] = {v(0), v(1)};
  V hold[] = {v(0), v(0)};
  V conflict[] = {v(1), v(1)};
  EXPECT_EQ(eval_state_holding(Kind::Gc, set, V::V0), V::V1);
  EXPECT_EQ(eval_state_holding(Kind::Gc, reset, V::V1), V::V0);
  EXPECT_EQ(eval_state_holding(Kind::Gc, hold, V::V1), V::V1);
  EXPECT_EQ(eval_state_holding(Kind::Gc, hold, V::V0), V::V0);
  EXPECT_EQ(eval_state_holding(Kind::Gc, conflict, V::V0), V::VX);
}

TEST(Kinds, Classification) {
  EXPECT_TRUE(is_combinational(Kind::And));
  EXPECT_TRUE(is_combinational(Kind::Rom));
  EXPECT_FALSE(is_combinational(Kind::Ram));
  EXPECT_FALSE(is_combinational(Kind::CElem));
  EXPECT_TRUE(is_storage(Kind::Dff));
  EXPECT_TRUE(is_storage(Kind::Ram));
  EXPECT_TRUE(is_state_holding(Kind::Gc));
  EXPECT_TRUE(is_latch(Kind::LatchN));
  EXPECT_FALSE(is_latch(Kind::Dff));
}

TEST(Kinds, PinCounts) {
  EXPECT_EQ(num_inputs(Kind::Mux2, 3), 3);
  EXPECT_EQ(num_inputs(Kind::And, 5), 5);
  EXPECT_EQ(num_inputs(Kind::Rom, 0, 6, 8), 6);
  EXPECT_EQ(num_inputs(Kind::Ram, 0, 4, 8), 2 + 4 + 8 + 4);
  EXPECT_EQ(num_outputs(Kind::Ram, 4, 8), 8);
  EXPECT_EQ(num_outputs(Kind::And), 1);
}

TEST(Kinds, RamPinNames) {
  EXPECT_EQ(input_pin_name(Kind::Ram, 0, 2, 4), "CK");
  EXPECT_EQ(input_pin_name(Kind::Ram, 1, 2, 4), "WE");
  EXPECT_EQ(input_pin_name(Kind::Ram, 2, 2, 4), "WA0");
  EXPECT_EQ(input_pin_name(Kind::Ram, 4, 2, 4), "WD0");
  EXPECT_EQ(input_pin_name(Kind::Ram, 8, 2, 4), "RA0");
  EXPECT_EQ(output_pin_name(Kind::Ram, 3, 2, 4), "RD3");
}

TEST(Tech, Generic90Loads) {
  const Tech& t = Tech::generic90();
  EXPECT_EQ(t.name(), "generic90");
  EXPECT_GT(t.spec(Kind::Inv).delay, 0);
  EXPECT_GT(t.spec(Kind::Dff).area, t.spec(Kind::Inv).area);
  EXPECT_GT(t.delay_unit(), 0);
}

TEST(Tech, DelayScalesWithArityAndFanout) {
  const Tech& t = Tech::generic90();
  EXPECT_GT(t.delay(Kind::And, 4, 1), t.delay(Kind::And, 2, 1));
  EXPECT_GT(t.delay(Kind::And, 2, 8), t.delay(Kind::And, 2, 1));
  EXPECT_EQ(t.delay(Kind::Inv, 1, 1), t.spec(Kind::Inv).delay);
}

TEST(Tech, MacroAreaScalesWithBits) {
  const Tech& t = Tech::generic90();
  Um2 rom_small = t.area(Kind::Rom, 4, 4, 8);   // 16 x 8
  Um2 rom_big = t.area(Kind::Rom, 5, 5, 8);     // 32 x 8
  EXPECT_DOUBLE_EQ(rom_big, 2.0 * rom_small);
  EXPECT_GT(t.area(Kind::Ram, 4, 4, 8), t.area(Kind::Rom, 4, 4, 8));
}

TEST(Liberty, RejectsMalformed) {
  EXPECT_THROW(parse_liberty("module x {}"), Error);
  EXPECT_THROW(parse_liberty("library x { cell BOGUS { delay 1 } }"), Error);
  EXPECT_THROW(parse_liberty("library x { voltage }"), Error);
  // Missing cells.
  EXPECT_THROW(parse_liberty("library x { voltage 1.0 }"), Error);
}

TEST(Liberty, ParsesCommentsAndValues) {
  std::string text(generic90_liberty_text());
  Tech t = parse_liberty(text);
  EXPECT_EQ(t.name(), "generic90");
  EXPECT_DOUBLE_EQ(t.voltage(), 1.0);
  EXPECT_EQ(t.spec(Kind::Delay).delay, 120);
  EXPECT_EQ(t.dff_setup(), 45);
  EXPECT_EQ(t.latch_setup(), 30);
}

TEST(Liberty, DuplicateCellRejected) {
  std::string text = "library x { cell INV { delay 1 } cell INV { delay 2 } }";
  EXPECT_THROW(parse_liberty(text), Error);
}

}  // namespace
}  // namespace desyn::cell

namespace desyn::cell {
namespace {

TEST(Tech, ClockEnergyAndGlobalWireFactorParsed) {
  const Tech& t = Tech::generic90();
  EXPECT_GT(t.spec(Kind::Dff).clock_energy, 0.0);
  EXPECT_DOUBLE_EQ(t.spec(Kind::Dff).clock_energy,
                   2.0 * t.spec(Kind::Latch).clock_energy);
  EXPECT_DOUBLE_EQ(t.spec(Kind::And).clock_energy, 0.0);
  EXPECT_GT(t.global_wire_factor(), 1.0);
}

TEST(Liberty, CustomClockEnergyAccepted) {
  std::string text(generic90_liberty_text());
  // Patch the DFF clock energy and reparse.
  size_t pos = text.find("clock_energy 2.6");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 16, "clock_energy 9.9");
  Tech t = parse_liberty(text);
  EXPECT_DOUBLE_EQ(t.spec(Kind::Dff).clock_energy, 9.9);
}

}  // namespace
}  // namespace desyn::cell
