#include "core/desynchronizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/clocktree.h"
#include "ctl/conformance.h"
#include "core/report.h"
#include "netlist/builder.h"
#include "netlist/reader.h"
#include "netlist/writer.h"
#include "pn/analysis.h"
#include "pn/mcr.h"
#include "sim/sim.h"
#include "verif/flow_equivalence.h"

namespace desyn::flow {
namespace {

using cell::Kind;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

/// 3-stage XOR/INV pipeline: din -> r0 -> logic -> r1 -> logic -> r2 -> out.
Netlist pipeline3(NetId* clock_out) {
  Netlist nl("pipe3");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d0 = b.input("din0");
  NetId d1 = b.input("din1");
  NetId q0a = b.dff(d0, clk, V::V0, "s0.a");
  NetId q0b = b.dff(d1, clk, V::V0, "s0.b");
  NetId x1 = b.xor_(q0a, q0b);
  NetId q1 = b.dff(x1, clk, V::V0, "s1.a");
  NetId q1b = b.dff(q0b, clk, V::V1, "s1.b");
  NetId x2 = b.and_({b.inv(q1), q1b});
  NetId q2 = b.dff(x2, clk, V::V0, "s2.a");
  b.output(q2);
  *clock_out = clk;
  return nl;
}

/// 4-bit ripple counter with enable: tests feedback loops through the flow.
Netlist counter4(NetId* clock_out) {
  Netlist nl("counter4");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId en = b.input("en");
  std::vector<NetId> q(4);
  // Build incrementer: q + en.
  std::vector<NetId> qnets(4);
  for (int i = 0; i < 4; ++i) qnets[i] = nl.add_net(cat("cnt.q", i));
  NetId carry = en;
  for (int i = 0; i < 4; ++i) {
    NetId sum = b.xor_(qnets[i], carry);
    carry = b.and_({qnets[i], carry});
    nl.add_cell(Kind::Dff, cat("cnt.r", i), {sum, clk}, {qnets[i]}, V::V0);
  }
  b.output(qnets[3]);
  *clock_out = clk;
  return nl;
}

/// Small design with a RAM macro: write counter data, read it back shifted.
Netlist ram_loop(NetId* clock_out) {
  Netlist nl("ramloop");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId din = b.input("din");
  // 2-bit write/read address counters (offset by constant wiring).
  std::vector<NetId> wa(2), ra(2);
  for (int i = 0; i < 2; ++i) wa[i] = nl.add_net(cat("adr.q", i));
  NetId carry = b.hi();
  for (int i = 0; i < 2; ++i) {
    NetId sum = b.xor_(wa[i], carry);
    carry = b.and_({wa[i], carry});
    nl.add_cell(Kind::Dff, cat("adr.r", i), {sum, clk}, {wa[i]}, V::V0);
  }
  ra[0] = b.inv(wa[0], "adr.ra0");
  ra[1] = wa[1];
  std::vector<NetId> wd = {din, b.inv(din)};
  auto rd = b.ram(clk, b.hi(), wa, wd, ra, 2, "mem");
  NetId q = b.dff(b.xor_(rd[0], rd[1]), clk, V::V0, "out.r");
  b.output(q);
  *clock_out = clk;
  return nl;
}

/// Random registered DAG: `regs` flip-flops, random logic between stages.
Netlist random_circuit(uint64_t seed, int regs, NetId* clock_out) {
  Rng rng(seed);
  Netlist nl(cat("rand", seed));
  Builder b(nl);
  NetId clk = b.input("clk");
  std::vector<NetId> pool;
  for (int i = 0; i < 3; ++i) pool.push_back(b.input(cat("in", i)));
  std::vector<std::pair<NetId, NetId>> pending;  // (d, q placeholder)
  std::vector<NetId> qnets;
  for (int i = 0; i < regs; ++i) qnets.push_back(nl.add_net(cat("g", i / 4, ".q", i)));
  for (NetId q : qnets) pool.push_back(q);
  for (int i = 0; i < regs; ++i) {
    // Build a random 2-3 level cone from the pool.
    NetId a = pool[rng.below(pool.size())];
    NetId c = pool[rng.below(pool.size())];
    NetId d = pool[rng.below(pool.size())];
    NetId x;
    switch (rng.below(4)) {
      case 0: x = b.xor_(a, c); break;
      case 1: x = b.and_({a, c, d}); break;
      case 2: x = b.mux2(a, c, d); break;
      default: x = b.nor_({a, c}); break;
    }
    nl.add_cell(Kind::Dff, cat("g", i / 4, ".r", i), {x, clk}, {qnets[static_cast<size_t>(i)]},
                rng.flip() ? V::V1 : V::V0);
  }
  b.output(qnets.back());
  (void)pending;
  *clock_out = clk;
  return nl;
}

TEST(Latchify, ConvertsFfsToLatchPairs) {
  NetId clk;
  Netlist nl = pipeline3(&clk);
  size_t ffs = 0;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == Kind::Dff) ++ffs;
  }
  LatchifyResult lr = latchify(nl, clk, Partition::prefix(nl));
  nl.check();
  size_t latches = 0, masters = 0;
  for (nl::CellId c : nl.cells()) {
    if (nl.cell(c).kind == Kind::Dff) FAIL() << "DFF survived latchify";
    if (cell::is_latch(nl.cell(c).kind)) ++latches;
    if (nl.cell(c).kind == Kind::LatchN) ++masters;
  }
  EXPECT_EQ(latches, 2 * ffs);
  EXPECT_EQ(masters, ffs);
  // Prefix grouping: s0, s1, s2 -> 3 bank pairs.
  EXPECT_EQ(lr.banks.size(), 6u);
  EXPECT_TRUE(lr.banks[0].even);
  EXPECT_FALSE(lr.banks[1].even);
}

TEST(Latchify, LatchBasedSyncMatchesFfSync) {
  // The latchified netlist clocked by the same clock is cycle-equivalent to
  // the FF netlist (Fig. 1a vs 1b).
  NetId clk;
  Netlist ff = pipeline3(&clk);
  Netlist latched = ff;
  latchify(latched, clk, Partition::prefix(latched));

  const Tech& t = Tech::generic90();
  sim::Simulator s1(ff, t);
  sim::Simulator s2(latched, t);
  NetId out1 = ff.outputs()[0];
  NetId out2 = latched.outputs()[0];
  Rng rng(42);
  Ps period = 2000;
  for (sim::Simulator* s : {&s1, &s2}) {
    s->set_input(s->netlist().find_net("clk"), V::V0, 0);
  }
  std::vector<V> v1, v2;
  for (int k = 0; k < 30; ++k) {
    V a = rng.flip() ? V::V1 : V::V0;
    V bb = rng.flip() ? V::V1 : V::V0;
    for (sim::Simulator* s : {&s1, &s2}) {
      const Netlist& n = s->netlist();
      s->set_input(n.find_net("din0"), a, s->now());
      s->set_input(n.find_net("din1"), bb, s->now());
      s->run_until((k + 1) * period - 10);
      s->set_input(n.find_net("clk"), V::V1, (k + 1) * period);
      s->set_input(n.find_net("clk"), V::V0, (k + 1) * period + period / 2);
      s->run_until((k + 1) * period + period / 2 - 10);
    }
    v1.push_back(s1.value(out1));
    v2.push_back(s2.value(out2));
  }
  EXPECT_EQ(v1, v2);
}

TEST(ClockTree, FanoutBoundedAndRewired) {
  Netlist nl("t");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d = b.input("d");
  std::vector<NetId> qs;
  for (int i = 0; i < 37; ++i) qs.push_back(b.dff(i ? qs.back() : d, clk, V::V0));
  b.output(qs.back());
  const Tech& t = Tech::generic90();
  ClockTree tree = build_clock_tree(nl, clk, t, 4);
  nl.check();
  EXPECT_GT(tree.buffers.size(), 9u);  // ceil(37/4)=10 leaves at least
  EXPECT_GT(tree.levels, 1);
  EXPECT_GT(tree.insertion_delay, 0);
  // Every net in the design now drives at most 4 clock-ish pins; in
  // particular the clock input itself.
  EXPECT_LE(nl.net(clk).fanout.size(), 4u);
  for (nl::CellId c : tree.buffers) {
    EXPECT_LE(nl.net(nl.cell(c).outs[0]).fanout.size(), 4u);
  }
}

TEST(Desynchronizer, BuildsWellFormedNetlist) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  const Tech& t = Tech::generic90();
  DesyncResult dr = desynchronize(ff, clk, t);
  dr.netlist.check();
  // No storage element is still clocked by the original clock.
  EXPECT_TRUE(dr.netlist.net(clk).fanout.empty());
  // Controllers exist: one C-element per bank at least.
  size_t celems = 0, delays = 0;
  for (nl::CellId c : dr.netlist.cells()) {
    if (dr.netlist.cell(c).kind == Kind::CElem) ++celems;
    if (dr.netlist.cell(c).kind == Kind::Delay) ++delays;
  }
  EXPECT_GE(celems, dr.cg.num_banks());
  EXPECT_GE(delays, dr.cg.edges().size());
  // The control graph is live and safe under the Pulse protocol.
  pn::MarkedGraph mg = ctl::protocol_mg(dr.cg, ctl::Protocol::Pulse);
  EXPECT_TRUE(pn::is_live(mg));
  EXPECT_TRUE(pn::is_safe(mg));
}

TEST(Desynchronizer, MatchedDelaysCoverCombinationalPaths) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  const Tech& t = Tech::generic90();
  DesyncOptions dopt;
  dopt.margin = 1.25;
  DesyncResult dr = desynchronize(ff, clk, t, dopt);
  // Every slave->master edge (real combinational logic) has a delay at
  // least the latch delay + setup.
  for (const auto& e : dr.cg.edges()) {
    if (e.from == dr.env_src || e.from == dr.env_snk || e.to == dr.env_src ||
        e.to == dr.env_snk) {
      continue;
    }
    EXPECT_GE(e.matched_delay, t.spec(Kind::Latch).delay + t.latch_setup())
        << dr.cg.bank(e.from).name << " -> " << dr.cg.bank(e.to).name;
  }
}

struct EqCase {
  const char* name;
  Netlist (*build)(NetId*);
  int rounds;
};

class FlowEquivalence : public ::testing::TestWithParam<EqCase> {};

TEST_P(FlowEquivalence, SyncAndDesyncCaptureSameStreams) {
  EqCase c = GetParam();
  NetId clk;
  Netlist ff = c.build(&clk);
  verif::FlowEqOptions opt;
  opt.rounds = c.rounds;
  auto res = verif::check_flow_equivalence(
      ff, clk, verif::random_stimulus(7), Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
  EXPECT_GT(res.captures_compared, 0u);
  EXPECT_GT(res.desync_period, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, FlowEquivalence,
    ::testing::Values(EqCase{"pipe3", pipeline3, 40},
                      EqCase{"counter4", counter4, 40},
                      EqCase{"ramloop", ram_loop, 30}),
    [](const ::testing::TestParamInfo<EqCase>& info) {
      return info.param.name;
    });

constexpr auto& kProtocols = ctl::kAllProtocols;

std::string protocol_suffix(ctl::Protocol p) {
  std::string n = ctl::protocol_name(p);
  n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
  return n;
}

class ProtocolFlowEquivalence
    : public ::testing::TestWithParam<std::tuple<ctl::Protocol, EqCase>> {};

TEST_P(ProtocolFlowEquivalence, EveryProtocolPreservesFlows) {
  auto [proto, c] = GetParam();
  NetId clk;
  Netlist ff = c.build(&clk);
  verif::FlowEqOptions opt;
  opt.rounds = c.rounds;
  opt.desync.protocol = proto;
  auto res = verif::check_flow_equivalence(
      ff, clk, verif::random_stimulus(7), Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent)
      << ctl::protocol_name(proto) << ": " << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u) << ctl::protocol_name(proto);
  EXPECT_GT(res.captures_compared, 0u);
  EXPECT_GT(res.desync_period, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsByCircuits, ProtocolFlowEquivalence,
    ::testing::Combine(::testing::ValuesIn(kProtocols),
                       ::testing::Values(EqCase{"pipe3", pipeline3, 30},
                                         EqCase{"counter4", counter4, 30},
                                         EqCase{"ramloop", ram_loop, 25})),
    [](const ::testing::TestParamInfo<std::tuple<ctl::Protocol, EqCase>>&
           info) {
      return protocol_suffix(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name;
    });

class FlowConformance : public ::testing::TestWithParam<ctl::Protocol> {};

TEST_P(FlowConformance, SynthesizedControllersConformInsideFullFlow) {
  // The densest control graph of the local circuit zoo (RAM read/write
  // ordering edges included): the controller network the flow instantiates
  // must trace a firing sequence of its own protocol MG.
  ctl::Protocol proto = GetParam();
  NetId clk;
  Netlist ff = ram_loop(&clk);
  DesyncOptions opt;
  opt.protocol = proto;
  DesyncResult dr = desynchronize(ff, clk, Tech::generic90(), opt);
  sim::Simulator sim(dr.netlist, Tech::generic90());
  ctl::TraceRecorder rec(sim, dr.cg, dr.ctrl.enables);
  sim.run_until(200000);
  for (nl::NetId en : dr.ctrl.enables) {
    EXPECT_GT(sim.toggles(en), 10u)
        << ctl::protocol_name(proto) << " " << dr.netlist.net(en).name;
  }
  EXPECT_EQ(ctl::check_conformance(dr.cg, proto, rec.trace()), -1)
      << ctl::protocol_name(proto);
}

INSTANTIATE_TEST_SUITE_P(Protocols, FlowConformance,
                         ::testing::ValuesIn(kProtocols),
                         [](const ::testing::TestParamInfo<ctl::Protocol>& i) {
                           return protocol_suffix(i.param);
                         });

TEST(Desynchronizer, MultiClockDesignRejectedWithTypedError) {
  Netlist nl("mc");
  Builder b(nl);
  NetId c1 = b.input("clk_a");
  NetId c2 = b.input("clk_b");
  NetId c3 = b.input("clk_c");
  NetId d = b.input("d");
  NetId q1 = b.dff(d, c1, V::V0, "r1");
  NetId q2 = b.dff(q1, c2, V::V0, "r2");
  NetId q3 = b.dff(q2, c3, V::V0, "r3");
  b.output(q3);
  try {
    desynchronize(nl, c1, Tech::generic90());
    FAIL() << "expected MultiClockError";
  } catch (const MultiClockError& e) {
    EXPECT_EQ(e.clocks(), (std::vector<std::string>{"clk_b", "clk_c"}));
    EXPECT_NE(std::string(e.what()).find("clk_b"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("clk_c"), std::string::npos);
  }
  // Still an Error subtype: existing catch sites keep working.
  EXPECT_THROW(desynchronize(nl, c1, Tech::generic90()), Error);
}

class RandomFlowEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomFlowEquivalence, RandomCircuitsStayFlowEquivalent) {
  NetId clk;
  Netlist ff = random_circuit(GetParam(), 12, &clk);
  verif::FlowEqOptions opt;
  opt.rounds = 25;
  auto res = verif::check_flow_equivalence(
      ff, clk, verif::random_stimulus(GetParam() * 13 + 5), Tech::generic90(),
      opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(TimedModel, McrPredictsMeasuredPeriod) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  const Tech& t = Tech::generic90();
  DesyncResult dr = desynchronize(ff, clk, t);
  auto mcr = pn::max_cycle_ratio(timed_control_model(dr, t));
  EXPECT_GT(mcr.ratio, 0.0);

  verif::FlowEqOptions opt;
  opt.rounds = 30;
  auto res = verif::check_flow_equivalence(ff, clk, verif::random_stimulus(3),
                                           t, opt);
  ASSERT_TRUE(res.equivalent) << res.mismatch;
  // Analytic vs measured within 30%.
  EXPECT_NEAR(res.desync_period, mcr.ratio, 0.30 * mcr.ratio);
}

TEST(Report, ComparisonTableFormats) {
  ImplReport s{"Sync", 4400, 70.9, 20.0, 372656, 50000};
  ImplReport d{"Desync", 4450, 71.2, 4.0, 378058, 52000};
  std::string table = format_comparison(s, d);
  EXPECT_NE(table.find("Cycle Time"), std::string::npos);
  EXPECT_NE(table.find("4.40ns"), std::string::npos);
  EXPECT_NE(table.find("Area"), std::string::npos);
}

}  // namespace
}  // namespace desyn::flow

namespace desyn::flow {
namespace {

/// Random registered circuit with an embedded RAM macro.
Netlist random_ram_circuit(uint64_t seed, NetId* clock_out) {
  Rng rng(seed);
  Netlist nl(cat("randram", seed));
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId din = b.input("din");
  // Two-bit address counter.
  std::vector<NetId> addr(2);
  for (int i = 0; i < 2; ++i) addr[i] = nl.add_net(cat("ctr.q", i));
  NetId carry = b.hi();
  for (int i = 0; i < 2; ++i) {
    NetId sum = b.xor_(addr[i], carry);
    carry = b.and_({addr[i], carry});
    nl.add_cell(Kind::Dff, cat("ctr.r", i), {sum, clk}, {addr[i]}, V::V0);
  }
  // Write a mix of din and counter bits; read back at a rotated address.
  std::vector<NetId> wd = {b.xor_(din, addr[0]), b.mux2(din, addr[1], addr[0]),
                           addr[rng.below(2)]};
  std::vector<NetId> ra = {addr[1], addr[0]};
  NetId we = rng.flip() ? b.hi() : b.inv(addr[0], "weql");
  auto rd = b.ram(clk, we, addr, wd, ra, 3, "m");
  NetId q0 = b.dff(b.xor_(rd[0], rd[2]), clk, V::V0, "out.a");
  NetId q1 = b.dff(b.and_({rd[1], q0}), clk, V::V1, "out.b");
  b.output(q1);
  *clock_out = clk;
  return nl;
}

class RamFlowEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RamFlowEquivalence, RamCircuitsStayFlowEquivalent) {
  NetId clk;
  Netlist ff = random_ram_circuit(GetParam(), &clk);
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  auto res = verif::check_flow_equivalence(
      ff, clk, verif::random_stimulus(GetParam() + 99), Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RamFlowEquivalence,
                         ::testing::Range<uint64_t>(20, 28));

class StrategyFlowEquivalence
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyFlowEquivalence, AllBankGranularitiesWork) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  opt.desync.strategy = PartitionSpec::parse(GetParam());
  auto res = verif::check_flow_equivalence(ff, clk, verif::random_stimulus(4),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyFlowEquivalence,
                         ::testing::Values("prefix", "prefix:2", "perff",
                                           "single", "auto:1.05"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (c == ':' || c == '.') c = '_';
                           }
                           return n;
                         });

TEST(Desynchronizer, PerFlipFlopSpecDrivesDesyncOptions) {
  // The BankStrategy enum shim is gone; the parsed spec is the one way to
  // pick a classic strategy through DesyncOptions.
  NetId clk;
  Netlist ff = pipeline3(&clk);
  DesyncOptions opt;
  opt.strategy = PartitionSpec::parse("perff");
  DesyncResult dr = desynchronize(ff, clk, Tech::generic90(), opt);
  EXPECT_EQ(dr.partition.num_groups(), 5u);  // one group per flip-flop
  EXPECT_EQ(dr.cg.num_banks(), 12u);         // 5 pairs + env pair
}

TEST(Desynchronizer, TightMarginStillEquivalent) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  verif::FlowEqOptions opt;
  opt.rounds = 30;
  opt.desync.margin = 1.0;  // exact delay models: quantization is the guard
  auto res = verif::check_flow_equivalence(ff, clk, verif::random_stimulus(8),
                                           Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent) << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
}

TEST(Desynchronizer, VerilogRoundTripOfDesyncNetlist) {
  // The flow's output survives a Verilog write/read cycle bit-for-bit.
  NetId clk;
  Netlist ff = counter4(&clk);
  DesyncResult dr = desynchronize(ff, clk, cell::Tech::generic90());
  std::string v1 = nl::to_verilog(dr.netlist);
  Netlist back = nl::read_verilog(v1);
  back.check();
  EXPECT_EQ(nl::to_verilog(back), v1);
  EXPECT_EQ(back.num_live_cells(), dr.netlist.num_live_cells());
  // And it still runs: the round tokens oscillate.
  sim::Simulator sim(back, cell::Tech::generic90());
  nl::NetId r = back.find_net("ctl.cnt.m.r");
  ASSERT_TRUE(r.valid());
  sim.run_until(100000);
  EXPECT_GT(sim.toggles(r), 10u);
}

TEST(ClockTree, InsertionDelayMatchesSimulatedArrival) {
  Netlist nl("t");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d = b.input("d");
  std::vector<NetId> qs;
  for (int i = 0; i < 70; ++i) qs.push_back(b.dff(i ? qs.back() : d, clk, V::V0));
  b.output(qs.back());
  const cell::Tech& t = cell::Tech::generic90();
  ClockTree tree = build_clock_tree(nl, clk, t);
  ASSERT_GT(tree.levels, 0);

  sim::Simulator sim(nl, t);
  // Measure the arrival of the rising edge at a leaf (any DFF CK net).
  nl::CellId ff = nl.net(qs[0]).driver;
  nl::NetId leaf = nl.cell(ff).ins[1];
  Ps seen = -1;
  sim.watch(leaf, [&](Ps at, sim::V v) {
    if (v == sim::V::V1 && seen < 0) seen = at;
  });
  sim.set_input(clk, sim::V::V0, 0);
  sim.set_input(clk, sim::V::V1, 1000);
  sim.run_until(3000);
  ASSERT_GE(seen, 0);
  EXPECT_EQ(seen - 1000, tree.insertion_delay);
}

}  // namespace
}  // namespace desyn::flow
