// The robustness layer: deterministic fault injection (base/fault.h),
// deadlines + cooperative cancellation (base/cancel.h), the crash-safe
// disk tier, and the hardened server/client pair.
//
// The heart of the file is the fault-sweep property: for every registered
// fault site and several firing offsets, an injected single fault yields
// either a byte-identical result (after retry/recovery) or a typed error —
// never a corrupt artifact, a hung worker, or a wrong answer — and a
// fresh engine over the same cache directory afterwards self-heals to the
// fault-free bytes.
#include "base/fault.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "base/cancel.h"
#include "circuits/circuits.h"
#include "flow/engine.h"
#include "netlist/builder.h"
#include "netlist/writer.h"
#include "svc/client.h"
#include "svc/server.h"

namespace desyn {
namespace {

namespace fs = std::filesystem;
using cell::Tech;
using cell::V;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

Netlist pipeline3(NetId* clock_out) {
  Netlist nl("pipe3");
  Builder b(nl);
  NetId clk = b.input("clk");
  NetId d0 = b.input("din0");
  NetId d1 = b.input("din1");
  NetId q0a = b.dff(d0, clk, V::V0, "s0.a");
  NetId q0b = b.dff(d1, clk, V::V0, "s0.b");
  NetId q1 = b.dff(b.xor_(q0a, q0b), clk, V::V0, "s1.a");
  NetId q2 = b.dff(b.inv(q1), clk, V::V0, "s2.a");
  b.output(q2);
  *clock_out = clk;
  return nl;
}

std::string fresh_dir(const std::string& tag) {
  fs::path p = fs::path(::testing::TempDir()) /
               cat("desyn_fault_", tag, "_", ::getpid());
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string fresh_socket(const char* tag) {
  std::string p = cat("/tmp/desyn_fault_", tag, "_", ::getpid(), ".sock");
  ::unlink(p.c_str());
  return p;
}

/// RAII disarm so a failing assertion cannot leak an armed spec into the
/// next test.
struct ArmedSpec {
  explicit ArmedSpec(const fault::Spec& s) { fault::arm(s); }
  ~ArmedSpec() { fault::disarm(); }
};

/// The fault-free oracle: one flow run in a throwaway dir.
std::string reference_verilog(const Netlist& ff, NetId clk) {
  flow::Engine engine(Tech::generic90());
  return *engine.run(ff, clk, flow::DesyncOptions()).verilog;
}

// ---------------------------------------------------------------------------
// Spec parsing + firing determinism
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParseRoundTrip) {
  struct Case {
    const char* text;
    const char* canonical;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"site=svc.read", "site=svc.read"},
           {"site=svc.read,hit=3,count=2", "site=svc.read,hit=3,count=2"},
           {"site=artifact.disk.*,count=0", "site=artifact.disk.*,count=0"},
           {"site=engine.stage.mcr,action=kill",
            "site=engine.stage.mcr,action=kill"},
           {"site=svc.write,p=0.5,seed=7", "site=svc.write,p=0.5,seed=7"},
       }) {
    fault::Spec s = fault::Spec::parse(c.text);
    EXPECT_EQ(s.to_string(), c.canonical) << c.text;
    // to_string() -> parse() is the identity on the canonical form.
    EXPECT_EQ(fault::Spec::parse(s.to_string()).to_string(), c.canonical);
  }
  EXPECT_THROW(fault::Spec::parse(""), Error);
  EXPECT_THROW(fault::Spec::parse("hit=1"), Error);           // no site
  EXPECT_THROW(fault::Spec::parse("site=x,hit=abc"), Error);  // bad value
  EXPECT_THROW(fault::Spec::parse("site=x,p=1.5"), Error);    // p > 1
  EXPECT_THROW(fault::Spec::parse("site=x,bogus=1"), Error);  // unknown key
  EXPECT_THROW(fault::Spec::parse("site=x,action=maybe"), Error);
}

TEST(FaultSpec, ArmRejectsUnknownSites) {
  fault::Spec s;
  s.site = "no.such.site";
  EXPECT_THROW(fault::arm(s), Error);
  s.site = "no.such.prefix.*";
  EXPECT_THROW(fault::arm(s), Error);
  EXPECT_FALSE(fault::armed());
  // Prefix matching any catalog entry is accepted.
  s.site = "artifact.*";
  fault::arm(s);
  EXPECT_TRUE(fault::armed());
  fault::disarm();
  EXPECT_FALSE(fault::armed());
}

TEST(FaultSpec, WindowFiringIsPure) {
  fault::Spec s;
  s.site = "svc.read";
  s.hit = 2;
  s.count = 3;
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(s.fires("svc.read", k), k >= 2 && k < 5) << k;
    EXPECT_FALSE(s.fires("svc.write", k));
  }
  s.count = 0;  // unlimited
  EXPECT_TRUE(s.fires("svc.read", 1u << 20));
  EXPECT_FALSE(s.fires("svc.read", 1));
}

TEST(FaultSpec, ProbabilisticFiringIsDeterministicPerSeed) {
  fault::Spec s;
  s.site = "svc.*";
  s.p = 0.5;
  s.seed = 42;
  uint64_t fired = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    bool f = s.fires("svc.read", k);
    EXPECT_EQ(f, s.fires("svc.read", k));  // pure: same (spec, site, k)
    fired += f;
  }
  EXPECT_GT(fired, 350u);  // roughly p=0.5 of 1000
  EXPECT_LT(fired, 650u);
  // Different site or seed: a different (deterministic) stream.
  fault::Spec s2 = s;
  s2.seed = 43;
  bool any_differ = false;
  for (uint64_t k = 0; k < 64; ++k) {
    any_differ |= s.fires("svc.read", k) != s2.fires("svc.read", k);
    any_differ |= s.fires("svc.read", k) != s.fires("svc.write", k);
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultProbe, DisarmedIsNoopAndArmedCounts) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(fault::should_fail("svc.read"));
  EXPECT_NO_THROW(fault::maybe_throw("engine.stage.synth"));

  fault::Spec s;
  s.site = "svc.read";
  s.hit = 1;  // second arrival
  ArmedSpec armed(s);
  EXPECT_FALSE(fault::should_fail("svc.read"));  // hit 0: in window? no
  EXPECT_TRUE(fault::should_fail("svc.read"));   // hit 1: fires
  EXPECT_FALSE(fault::should_fail("svc.read"));  // hit 2: window passed
  EXPECT_FALSE(fault::should_fail("svc.write")); // other sites count alone
  fault::SiteStats st = fault::stats("svc.read");
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.fired, 1u);
  EXPECT_EQ(fault::stats("svc.write").hits, 1u);
  // The firing window [1, 2) has passed: maybe_throw is a counted no-op.
  EXPECT_NO_THROW(fault::maybe_throw("svc.read"));
  EXPECT_EQ(fault::stats("svc.read").hits, 4u);
  EXPECT_EQ(fault::stats("svc.read").fired, 1u);
}

TEST(FaultProbe, MaybeThrowCarriesTheSite) {
  fault::Spec s;
  s.site = "engine.stage.*";
  ArmedSpec armed(s);
  try {
    fault::maybe_throw("engine.stage.synth");
    FAIL() << "probe did not fire";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.site(), "engine.stage.synth");
  }
}

// ---------------------------------------------------------------------------
// Cancellation + deadlines
// ---------------------------------------------------------------------------

TEST(Cancel, TokenTripsCancelPoints) {
  EXPECT_NO_THROW(cancel_point());  // no scope installed: free
  CancelToken t;
  CancelScope scope(&t);
  EXPECT_NO_THROW(cancel_point());
  t.cancel();
  EXPECT_THROW(cancel_point(), CancelledError);
}

TEST(Cancel, ExpiredDeadlineThrowsDeadlineError) {
  CancelToken t;
  t.set_deadline_after_ms(1);
  CancelScope scope(&t);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW(cancel_point(), DeadlineError);
}

TEST(Cancel, CancelledTokenAbortsEngineRun) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  flow::Engine engine(Tech::generic90());
  CancelToken t;
  t.cancel();
  CancelScope scope(&t);
  EXPECT_THROW(engine.run(ff, clk, flow::DesyncOptions()), CancelledError);
}

// ---------------------------------------------------------------------------
// The fault-sweep property
// ---------------------------------------------------------------------------

/// Every disk + engine fault site, several firing offsets: one injected
/// fault must produce either a typed error or a byte-identical success;
/// the retried run and a fresh engine over the same (possibly faulted)
/// cache dir must both reproduce the fault-free bytes; and the directory
/// must scrub clean afterwards.
TEST(FaultSweep, EveryDiskAndEngineSiteRecoversByteIdentical) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  const std::string want = reference_verilog(ff, clk);
  const flow::DesyncOptions opt;

  size_t case_idx = 0;
  for (const std::string& site : fault::all_sites()) {
    if (starts_with(site, "svc.")) continue;  // socket sites: next test
    for (uint64_t hit : {uint64_t{0}, uint64_t{1}}) {
      SCOPED_TRACE(cat(site, " hit=", hit));
      const std::string dir = fresh_dir(cat("sweep", case_idx++));
      fault::Spec spec;
      spec.site = site;
      spec.hit = hit;
      spec.count = 1;

      {
        ArmedSpec armed(spec);
        flow::Engine engine(Tech::generic90(), flow::EngineOptions{96, dir});
        // First submission: success (disk faults degrade gracefully) or a
        // typed InjectedFault (engine-stage sites) — anything else fails.
        try {
          flow::FlowOutcome out = engine.run(ff, clk, opt);
          EXPECT_EQ(*out.verilog, want);
        } catch (const fault::InjectedFault& e) {
          EXPECT_EQ(e.site(), site);
        }
        // Retry on the same engine: the single-shot window has passed, so
        // the resubmission must succeed byte-identically.
        flow::FlowOutcome redo = engine.run(ff, clk, opt);
        EXPECT_EQ(*redo.verilog, want);
      }

      // Recovery: a fresh engine over the same directory (scrub-on-open)
      // self-heals and serves the fault-free bytes.
      flow::Engine fresh(Tech::generic90(), flow::EngineOptions{96, dir});
      flow::FlowOutcome healed = fresh.run(ff, clk, opt);
      EXPECT_EQ(*healed.verilog, want);

      // No corruption survives: every entry still on disk verifies.
      flow::CacheScan scan = flow::scan_cache_dir(dir, /*verify=*/true);
      EXPECT_EQ(scan.corrupt, 0u);
      EXPECT_EQ(scan.tmp_orphans, 0u);
      fs::remove_all(dir);
    }
  }
}

// ---------------------------------------------------------------------------
// kill -9 mid-write crash recovery
// ---------------------------------------------------------------------------

/// A writer killed (for real, SIGKILL via action=kill) at the fsync probe
/// leaves an orphan tmp file; a fresh engine over the directory reaps it,
/// recomputes, and serves bytes identical to the fault-free run.
TEST(CrashRecovery, KillNineMidWriteSelfHeals) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  const std::string want = reference_verilog(ff, clk);
  const std::string dir = fresh_dir("crash");

  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: die by SIGKILL at the first disk-entry fsync, leaving the
    // tmp file behind. _exit codes signal a miswired test, not a failure
    // of the property.
    try {
      fault::arm(fault::Spec::parse(
          "site=artifact.disk.write.fsync,action=kill"));
      flow::Engine engine(Tech::generic90(), flow::EngineOptions{96, dir});
      engine.run(ff, clk, flow::DesyncOptions());
      ::_exit(42);  // survived a run that must have been killed
    } catch (...) {
      ::_exit(43);
    }
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << status;
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The crash left an orphan tmp from the (now dead) child pid.
  flow::CacheScan scan = flow::scan_cache_dir(dir, /*verify=*/true);
  EXPECT_GE(scan.tmp_total, 1u);
  EXPECT_EQ(scan.tmp_orphans, scan.tmp_total);
  EXPECT_EQ(scan.corrupt, 0u);  // atomic publish: no visible torn entry

  // A fresh engine reaps the orphan on open and self-heals byte-for-byte.
  flow::Engine engine(Tech::generic90(), flow::EngineOptions{96, dir});
  EXPECT_GE(engine.store_stats().tmp_reaped, 1u);
  flow::FlowOutcome healed = engine.run(ff, clk, flow::DesyncOptions());
  EXPECT_EQ(*healed.verilog, want);
  flow::CacheScan after = flow::scan_cache_dir(dir, /*verify=*/true);
  EXPECT_EQ(after.tmp_total, 0u);
  EXPECT_EQ(after.corrupt, 0u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash-safe store mechanics
// ---------------------------------------------------------------------------

TEST(ArtifactScrub, OrphanTmpReapedAliveWriterKept) {
  const std::string dir = fresh_dir("tmps");
  // A dead writer's tmp: fork a child that exits immediately; its pid is
  // definitely dead (and reaped) when we scan.
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) ::_exit(0);
  ASSERT_EQ(::waitpid(child, nullptr, 0), child);
  std::ofstream(cat(dir, "/result-abc.art.tmp.", child, ".0")) << "torn";
  // A live writer's tmp (our own pid): must be left alone.
  std::ofstream(cat(dir, "/result-def.art.tmp.", ::getpid(), ".1")) << "wip";

  flow::CacheScan scan = flow::scan_cache_dir(dir, /*verify=*/false);
  EXPECT_EQ(scan.tmp_total, 2u);
  EXPECT_EQ(scan.tmp_orphans, 1u);

  flow::ArtifactStore store(
      flow::ArtifactStore::Options{4, dir, /*scrub_on_open=*/true});
  EXPECT_EQ(store.stats().tmp_reaped, 1u);
  EXPECT_FALSE(fs::exists(cat(dir, "/result-abc.art.tmp.", child, ".0")));
  EXPECT_TRUE(fs::exists(cat(dir, "/result-def.art.tmp.", ::getpid(), ".1")));
  fs::remove_all(dir);
}

TEST(ArtifactScrub, ScrubOnOpenCountsAndDiscardsCorruptEntries) {
  const std::string dir = fresh_dir("scrub");
  struct Blob : flow::Artifact {
    std::string text;
  };
  Hash256 key = sha256("scrub-me");
  {
    flow::ArtifactStore store(flow::ArtifactStore::Options{4, dir});
    auto b = std::make_shared<Blob>();
    b->text = "payload";
    store.put("result", key, b, "payload");
  }
  // Vandalize the entry on disk.
  flow::CacheScan scan = flow::scan_cache_dir(dir, /*verify=*/true);
  ASSERT_EQ(scan.entries, 1u);
  ASSERT_EQ(scan.corrupt, 0u);
  std::string path;
  for (const auto& de : fs::directory_iterator(dir)) path = de.path().string();
  std::ofstream(path, std::ios::app) << "garbage";
  EXPECT_EQ(flow::scan_cache_dir(dir, true).corrupt, 1u);

  // Scrub-on-open discards it and counts it as a corrupt disk entry.
  flow::ArtifactStore store(flow::ArtifactStore::Options{4, dir});
  EXPECT_EQ(store.stats().disk_corrupt, 1u);
  EXPECT_EQ(flow::scan_cache_dir(dir, true).entries, 0u);

  // scrub_cache_dir is the offline equivalent (desyn_cli cache scrub).
  std::ofstream(cat(dir, "/result-feed.art")) << "not even a header";
  flow::ScrubResult r = flow::scrub_cache_dir(dir);
  EXPECT_EQ(r.corrupt_removed, 1u);
  EXPECT_EQ(flow::scan_cache_dir(dir, true).corrupt, 0u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Server robustness: socket faults + retry, deadlines, shed, caps
// ---------------------------------------------------------------------------

svc::ServerOptions server_options(const std::string& path, int threads = 2) {
  svc::ServerOptions o;
  o.socket_path = path;
  o.threads = threads;
  return o;
}

svc::RetryOptions fast_retry(int retries) {
  svc::RetryOptions r;
  r.retries = retries;
  r.base_delay_ms = 5;
  return r;
}

/// Each svc socket fault site, injected once: a submit with retry still
/// lands the byte-identical result.
TEST(SvcFaults, SocketFaultsRetryToByteIdenticalResults) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  std::string req =
      svc::make_request(nl::to_verilog(ff), "clk", "prefix", 1.1, "pulse");

  for (const char* site : {"svc.accept", "svc.read", "svc.write"}) {
    SCOPED_TRACE(site);
    std::string path = fresh_socket("fault");
    svc::Server server(Tech::generic90(), server_options(path));
    server.start();
    std::string oracle =
        svc::extract_result(server.handle_request(req));  // fault-free

    fault::Spec spec;
    spec.site = site;
    spec.count = 1;
    ArmedSpec armed(spec);
    std::string resp = svc::submit_with_retry(path, req, fast_retry(3));
    EXPECT_EQ(svc::extract_result(resp), oracle);
    EXPECT_GE(fault::stats(site).fired, 1u);
    server.stop();
  }
}

TEST(SvcFaults, InjectedEngineFaultIsTypedInternalAndRetryable) {
  NetId clk;
  Netlist ff = pipeline3(&clk);
  std::string req =
      svc::make_request(nl::to_verilog(ff), "clk", "prefix", 1.1, "pulse");
  std::string path = fresh_socket("internal");
  svc::Server server(Tech::generic90(), server_options(path));
  server.start();

  // The oracle must come AFTER the faulted attempts: a cached result never
  // reaches the mcr stage, so precomputing it would defuse the probe.
  fault::Spec spec;
  spec.site = "engine.stage.mcr";
  spec.count = 1;
  ArmedSpec armed(spec);
  // Without retry: the injected fault surfaces as a typed internal error
  // (retryable — stages publish atomically, so nothing is half-done).
  {
    svc::Client client(path);
    std::string resp = client.roundtrip(req);
    EXPECT_NE(resp.find("\"kind\": \"internal\""), std::string::npos) << resp;
  }
  EXPECT_EQ(fault::stats("engine.stage.mcr").fired, 1u);
  // A resubmission is past the single-shot window and succeeds; the
  // in-process rerun then serves the identical bytes from the cache.
  std::string resp = svc::submit_with_retry(path, req, fast_retry(3));
  std::string oracle = svc::extract_result(server.handle_request(req));
  EXPECT_EQ(svc::extract_result(resp), oracle);
  server.stop();
}

TEST(SvcDeadline, TimeoutProducesTypedDeadlineError) {
  // A circuit whose auto-partitioned flow takes well over a millisecond,
  // so a 1 ms deadline reliably trips a cancel point mid-flow.
  circuits::Circuit mesh = circuits::register_mesh(6, 6, 2);
  std::string req = svc::make_request(nl::to_verilog(mesh.netlist),
                                      mesh.netlist.net(mesh.clock).name,
                                      "auto:1.05", 1.1, "pulse", 1,
                                      /*timeout_ms=*/1);
  svc::Server server(Tech::generic90(),
                     server_options(fresh_socket("deadline")));
  std::string resp = server.handle_request(req);
  EXPECT_NE(resp.find("\"kind\": \"deadline\""), std::string::npos) << resp;

  // Bad timeout values are typed request errors.
  std::string bad = svc::make_request(nl::to_verilog(mesh.netlist),
                                      mesh.netlist.net(mesh.clock).name,
                                      "prefix", 1.1, "pulse");
  bad = bad.substr(0, bad.size() - 1) + ", \"timeout_ms\": -5}";
  EXPECT_NE(server.handle_request(bad).find("\"kind\": \"request\""),
            std::string::npos);
}

TEST(SvcShed, QueueFullGetsTypedBusyResponse) {
  std::string path = fresh_socket("busy");
  svc::ServerOptions opt = server_options(path, /*threads=*/1);
  opt.max_pending = 1;
  svc::Server server(Tech::generic90(), opt);
  server.start();

  // Occupy the single worker with an idle-but-served connection, then
  // fill the one pending slot with another.
  svc::Client held(path);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  svc::Client queued(path);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The next admission must be shed with a typed, retryable busy error.
  svc::Client shed(path);
  std::string resp = shed.roundtrip("{}");
  EXPECT_NE(resp.find("\"kind\": \"busy\""), std::string::npos) << resp;
  server.stop();
}

TEST(SvcLimits, OversizedRequestIsTypedLimitError) {
  std::string path = fresh_socket("limit");
  svc::ServerOptions opt = server_options(path);
  opt.max_request_bytes = 1024;
  svc::Server server(Tech::generic90(), opt);
  server.start();
  svc::Client client(path);
  std::string huge = cat("{\"verilog\": \"", std::string(4096, 'x'), "\"}");
  std::string resp = client.roundtrip(huge);
  EXPECT_NE(resp.find("\"kind\": \"limit\""), std::string::npos) << resp;
  server.stop();
}

TEST(SvcLimits, IdleConnectionIsDroppedAtIoDeadline) {
  std::string path = fresh_socket("idle");
  svc::ServerOptions opt = server_options(path);
  opt.io_timeout_ms = 100;
  svc::Server server(Tech::generic90(), opt);
  server.start();
  svc::Client client(path);
  // A blank line is a keep-alive no-op: the server reads it, answers
  // nothing, and its next read hits SO_RCVTIMEO 100 ms later — the idle
  // connection is dropped, and the waiting client sees the hangup.
  EXPECT_THROW(client.roundtrip(""), svc::TransientError);
  server.stop();
}

TEST(SvcCancel, CancelInflightAnswersTyped) {
  circuits::Circuit mesh = circuits::register_mesh(6, 6, 2);
  std::string req = svc::make_request(nl::to_verilog(mesh.netlist),
                                      mesh.netlist.net(mesh.clock).name,
                                      "auto:1.05", 1.1, "pulse");
  std::string path = fresh_socket("cancel");
  svc::Server server(Tech::generic90(), server_options(path));
  server.start();
  std::string resp;
  std::atomic<bool> done{false};
  std::thread submitter([&] {
    svc::Client client(path);
    resp = client.roundtrip(req);
    done.store(true);
  });
  // Hammer cancel_inflight until the round trip completes: the request's
  // token is registered before the flow starts, so some cancel lands
  // within ~1 ms of registration and the first cancel point trips it.
  while (!done.load()) {
    server.cancel_inflight();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  submitter.join();
  EXPECT_NE(resp.find("\"kind\": \"cancelled\""), std::string::npos) << resp;
  server.stop();
}

}  // namespace
}  // namespace desyn
