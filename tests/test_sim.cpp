#include "sim/sim.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/circuits.h"
#include "core/desynchronizer.h"
#include "netlist/builder.h"
#include "sim/power.h"
#include "sim/vcd.h"

namespace desyn::sim {
namespace {

using cell::Kind;
using cell::Tech;
using nl::Builder;
using nl::Netlist;
using nl::NetId;

TEST(Sim, CombinationalPropagationTiming) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId a = b.input("a");
  NetId c = b.input("c");
  NetId y = b.and_({a, c}, "y");
  b.output(y);

  Simulator sim(nl, t);
  std::vector<std::pair<Ps, V>> changes;
  sim.watch(y, [&](Ps at, V v) { changes.emplace_back(at, v); });
  sim.set_input(a, V::V1, 0);
  sim.set_input(c, V::V0, 0);
  sim.run_until(1000);
  EXPECT_EQ(sim.value(y), V::V0);
  sim.set_input(c, V::V1, 1000);
  sim.run_until(2000);
  EXPECT_EQ(sim.value(y), V::V1);
  Ps d_and = t.delay(Kind::And, 2, 0);
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.back().first, 1000 + d_and);
  EXPECT_EQ(changes.back().second, V::V1);
}

TEST(Sim, InertialGlitchSwallowed) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId a = b.input("a");
  NetId y = b.buf(a, "y");
  b.output(y);

  Simulator sim(nl, t);
  int y_changes = 0;
  sim.watch(y, [&](Ps, V) { ++y_changes; });
  sim.set_input(a, V::V0, 0);
  sim.run_until(500);
  // Pulse narrower than the buffer delay: swallowed.
  Ps d = t.delay(Kind::Buf, 1, 0);
  ASSERT_GT(d, 2);
  sim.set_input(a, V::V1, 1000);
  sim.set_input(a, V::V0, 1000 + d / 2);
  sim.run_until(3000);
  EXPECT_EQ(sim.value(y), V::V0);
  // Only the initial X->0 settle may have fired; no 0->1->0 pair.
  EXPECT_LE(y_changes, 1);
}

TEST(Sim, DffShiftRegister) {
  Netlist nl("t");
  Builder b(nl);
  NetId d = b.input("d");
  NetId ck = b.input("ck");
  NetId q0 = b.dff(d, ck, V::V0, "q0");
  NetId q1 = b.dff(q0, ck, V::V0, "q1");
  NetId q2 = b.dff(q1, ck, V::V0, "q2");
  b.output(q2);

  Simulator sim(nl, Tech::generic90());
  sim.set_input(d, V::V1, 0);
  sim.add_clock(ck, 1000, 500);  // edges at 500, 1500, 2500, ...
  sim.run_until(400);
  EXPECT_EQ(sim.value(q2), V::V0);
  sim.run_until(1400);  // after 1st edge
  EXPECT_EQ(sim.value(q0), V::V1);
  EXPECT_EQ(sim.value(q2), V::V0);
  sim.run_until(3400);  // after 3rd edge
  EXPECT_EQ(sim.value(q2), V::V1);
  EXPECT_EQ(sim.setup_violation_count(), 0u);
}

TEST(Sim, ClockGeneratorTogglesAtPeriod) {
  Netlist nl("t");
  Builder b(nl);
  NetId ck = b.input("ck");
  b.output(b.buf(ck));
  Simulator sim(nl, Tech::generic90());
  std::vector<Ps> rises;
  sim.watch(ck, [&](Ps at, V v) {
    if (v == V::V1) rises.push_back(at);
  });
  sim.add_clock(ck, 2000, 1000);
  sim.run_until(9999);
  ASSERT_EQ(rises.size(), 5u);  // 1000, 3000, 5000, 7000, 9000
  EXPECT_EQ(rises[0], 1000);
  EXPECT_EQ(rises[4], 9000);
}

TEST(Sim, LatchTransparency) {
  Netlist nl("t");
  Builder b(nl);
  NetId d = b.input("d");
  NetId en = b.input("en");
  NetId q = b.latch(d, en, V::V0, "q");
  b.output(q);

  Simulator sim(nl, Tech::generic90());
  sim.set_input(en, V::V0, 0);
  sim.set_input(d, V::V0, 0);
  sim.run_until(1000);
  // Opaque: D changes do not pass.
  sim.set_input(d, V::V1, 1000);
  sim.run_until(2000);
  EXPECT_EQ(sim.value(q), V::V0);
  // Transparent: Q follows D.
  sim.set_input(en, V::V1, 2000);
  sim.run_until(3000);
  EXPECT_EQ(sim.value(q), V::V1);
  sim.set_input(d, V::V0, 3000);
  sim.run_until(4000);
  EXPECT_EQ(sim.value(q), V::V0);
  // Close, then change D: Q holds.
  sim.set_input(en, V::V0, 4000);
  sim.set_input(d, V::V1, 5000);
  sim.run_until(6000);
  EXPECT_EQ(sim.value(q), V::V0);
}

TEST(Sim, LatchNOppositePolarity) {
  Netlist nl("t");
  Builder b(nl);
  NetId d = b.input("d");
  NetId en = b.input("en");
  NetId q = b.latchn(d, en, V::V0, "q");
  b.output(q);
  Simulator sim(nl, Tech::generic90());
  sim.set_input(en, V::V1, 0);  // opaque for LatchN
  sim.set_input(d, V::V1, 0);
  sim.run_until(1000);
  EXPECT_EQ(sim.value(q), V::V0);
  sim.set_input(en, V::V0, 1000);  // transparent
  sim.run_until(2000);
  EXPECT_EQ(sim.value(q), V::V1);
}

TEST(Sim, LatchInitiallyTransparentFollowsAtReset) {
  Netlist nl("t");
  Builder b(nl);
  // EN tied high, D tied high, but init = 0: the settle kick must bring Q
  // to 1 shortly after t=0 (models reset release into a transparent latch).
  NetId q = b.latch(b.hi(), b.hi(), V::V0, "q");
  b.output(q);
  Simulator sim(nl, Tech::generic90());
  EXPECT_EQ(sim.value(q), V::V0);
  sim.run_until(1000);
  EXPECT_EQ(sim.value(q), V::V1);
}

TEST(Sim, RomRead) {
  Netlist nl("t");
  Builder b(nl);
  std::vector<NetId> addr = {b.input("a0"), b.input("a1")};
  auto data = b.rom(addr, 8, {0x11, 0x22, 0x33, 0x44}, "rom");
  for (NetId n : data) b.output(n);
  Simulator sim(nl, Tech::generic90());
  auto read_byte = [&] {
    uint64_t v = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (sim.value(data[i]) == V::V1) v |= (1ull << i);
    }
    return v;
  };
  sim.set_input(addr[0], V::V0, 0);
  sim.set_input(addr[1], V::V1, 0);
  sim.run_until(1000);
  EXPECT_EQ(read_byte(), 0x33u);  // address 2
  sim.set_input(addr[0], V::V1, 1000);
  sim.run_until(2000);
  EXPECT_EQ(read_byte(), 0x44u);  // address 3
}

TEST(Sim, RamWriteThenRead) {
  Netlist nl("t");
  Builder b(nl);
  NetId ck = b.input("ck");
  NetId we = b.input("we");
  std::vector<NetId> wa = {b.input("wa0"), b.input("wa1")};
  std::vector<NetId> wd;
  for (int i = 0; i < 4; ++i) wd.push_back(b.input(cat("wd", i)));
  std::vector<NetId> ra = {b.input("ra0"), b.input("ra1")};
  auto rd = b.ram(ck, we, wa, wd, ra, 4, "m");
  for (NetId n : rd) b.output(n);

  Simulator sim(nl, Tech::generic90());
  nl::CellId ram = nl.find_cell("m");
  // Write 0b1010 to address 1.
  sim.set_input(ck, V::V0, 0);
  sim.set_input(we, V::V1, 0);
  sim.set_input(wa[0], V::V1, 0);
  sim.set_input(wa[1], V::V0, 0);
  for (int i = 0; i < 4; ++i) {
    sim.set_input(wd[i], (i % 2) ? V::V1 : V::V0, 0);
  }
  sim.set_input(ra[0], V::V1, 0);
  sim.set_input(ra[1], V::V0, 0);
  sim.run_until(500);
  sim.set_input(ck, V::V1, 1000);
  sim.run_until(2000);
  EXPECT_EQ(sim.ram_word(ram, 1), 0b1010u);
  // Write-through: read address == write address updates outputs.
  uint64_t out = 0;
  for (size_t i = 0; i < rd.size(); ++i) {
    if (sim.value(rd[i]) == V::V1) out |= (1ull << i);
  }
  EXPECT_EQ(out, 0b1010u);
  // WE low: no write.
  sim.set_input(we, V::V0, 2000);
  sim.set_input(wd[0], V::V1, 2000);
  sim.set_input(ck, V::V0, 2500);
  sim.set_input(ck, V::V1, 3000);
  sim.run_until(4000);
  EXPECT_EQ(sim.ram_word(ram, 1), 0b1010u);
}

TEST(Sim, CElemRendezvous) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId c = b.input("c");
  NetId y = b.celem({a, c}, V::V0, "y");
  b.output(y);
  Simulator sim(nl, Tech::generic90());
  sim.set_input(a, V::V0, 0);
  sim.set_input(c, V::V0, 0);
  sim.run_until(100);
  sim.set_input(a, V::V1, 100);
  sim.run_until(1000);
  EXPECT_EQ(sim.value(y), V::V0);  // only one input high: hold
  sim.set_input(c, V::V1, 1000);
  sim.run_until(2000);
  EXPECT_EQ(sim.value(y), V::V1);  // both high: rise
  sim.set_input(a, V::V0, 2000);
  sim.run_until(3000);
  EXPECT_EQ(sim.value(y), V::V1);  // hold
  sim.set_input(c, V::V0, 3000);
  sim.run_until(4000);
  EXPECT_EQ(sim.value(y), V::V0);  // both low: fall
}

TEST(Sim, GcSetResetOverTime) {
  Netlist nl("t");
  Builder b(nl);
  NetId s = b.input("s");
  NetId r = b.input("r");
  NetId y = b.gc(s, r, V::V0, "y");
  b.output(y);
  Simulator sim(nl, Tech::generic90());
  sim.set_input(s, V::V0, 0);
  sim.set_input(r, V::V0, 0);
  sim.run_until(100);
  sim.set_input(s, V::V1, 100);
  sim.run_until(1000);
  EXPECT_EQ(sim.value(y), V::V1);
  sim.set_input(s, V::V0, 1000);
  sim.run_until(2000);
  EXPECT_EQ(sim.value(y), V::V1);  // hold
  sim.set_input(r, V::V1, 2000);
  sim.run_until(3000);
  EXPECT_EQ(sim.value(y), V::V0);
}

TEST(Sim, LatchOscillatorRuns) {
  Netlist nl("t");
  Builder b(nl);
  NetId q = nl.add_net("q");
  NetId nq = b.inv(q, "nq");
  NetId en = b.hi();
  nl.add_cell(Kind::Latch, "l", {nq, en}, {q});
  b.output(q);

  Simulator sim(nl, Tech::generic90());
  int toggles_seen = 0;
  sim.watch(q, [&](Ps, V) { ++toggles_seen; });
  bool quiet = sim.run_until_quiet(20000);
  EXPECT_FALSE(quiet);  // oscillators never quiesce
  EXPECT_GT(toggles_seen, 10);
  EXPECT_GT(sim.toggles(q), 10u);
}

TEST(Sim, SetupViolationDetected) {
  Netlist nl("t");
  Builder b(nl);
  const Tech& t = Tech::generic90();
  NetId d = b.input("d");
  NetId ck = b.input("ck");
  NetId q = b.dff(d, ck, V::V0, "q");
  b.output(q);
  Simulator sim(nl, t);
  sim.set_input(d, V::V0, 0);
  sim.set_input(ck, V::V0, 0);
  sim.run_until(500);
  // D changes 10ps before the capture edge: violates the 45ps setup.
  sim.set_input(d, V::V1, 990);
  sim.set_input(ck, V::V1, 1000);
  sim.run_until(2000);
  ASSERT_EQ(sim.setup_violation_count(), 1u);
  EXPECT_EQ(sim.setup_violations()[0].data_net, d);
  EXPECT_EQ(sim.setup_violations()[0].slack, (1000 - 990) - t.dff_setup());
}

TEST(Sim, PowerEstimation) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId y = b.buf(a, "y");
  b.output(y);
  Simulator sim(nl, Tech::generic90());
  sim.set_input(a, V::V0, 0);
  sim.run_until(100);
  sim.clear_activity();
  for (int i = 1; i <= 10; ++i) {
    sim.set_input(a, i % 2 ? V::V1 : V::V0, 100 + i * 1000);
  }
  sim.run_until(20100);
  PowerReport rep = estimate_power(sim, Tech::generic90());
  EXPECT_GT(rep.total_mw, 0.0);
  EXPECT_GT(rep.net_switching_mw, 0.0);
  EXPECT_GT(rep.cell_internal_mw, 0.0);
  EXPECT_EQ(rep.window, 20000);
  EXPECT_DOUBLE_EQ(rep.clock_network_mw, 0.0);
  NetId clk_like[] = {a};
  PowerReport rep2 = estimate_power(sim, Tech::generic90(), clk_like);
  EXPECT_GT(rep2.clock_network_mw, 0.0);
  EXPECT_LT(rep2.clock_network_mw, rep2.total_mw);
}

TEST(Sim, VcdOutputWellFormed) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  NetId y = b.inv(a, "y");
  b.output(y);
  Simulator sim(nl, Tech::generic90());
  std::ostringstream os;
  VcdWriter vcd(sim, os, {a, y});
  sim.set_input(a, V::V0, 0);
  sim.set_input(a, V::V1, 1000);
  sim.run_until(2000);
  vcd.finish();
  std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1ps"), std::string::npos);
  EXPECT_NE(s.find("$var wire 1 ! a"), std::string::npos);
  EXPECT_NE(s.find("#1000"), std::string::npos);
  EXPECT_NE(s.find("1!"), std::string::npos);
}

TEST(Sim, ActivityWindowReset) {
  Netlist nl("t");
  Builder b(nl);
  NetId a = b.input("a");
  b.output(b.buf(a));
  Simulator sim(nl, Tech::generic90());
  sim.set_input(a, V::V0, 0);
  sim.set_input(a, V::V1, 100);
  sim.set_input(a, V::V0, 200);
  sim.run_until(300);
  EXPECT_EQ(sim.toggles(a), 2u);
  sim.clear_activity();
  EXPECT_EQ(sim.toggles(a), 0u);
  EXPECT_EQ(sim.activity_window_start(), 300);
}

// ---------------------------------------------------------------------------
// Determinism: the event queue breaks time ties FIFO by sequence number, so
// a simulation is a pure function of (netlist, stimulus). These tests guard
// that property against queue rearchitectures.
// ---------------------------------------------------------------------------

struct SimTrace {
  std::vector<uint64_t> toggles;
  std::vector<V> values;
  uint64_t events = 0;
  uint64_t violations = 0;

  static SimTrace of(const Simulator& sim) {
    SimTrace t;
    const nl::Netlist& netl = sim.netlist();
    for (uint32_t n = 0; n < netl.num_nets(); ++n) {
      t.toggles.push_back(sim.toggles(NetId(n)));
      t.values.push_back(sim.value(NetId(n)));
    }
    t.events = sim.events_processed();
    t.violations = sim.setup_violation_count();
    return t;
  }

  friend bool operator==(const SimTrace& a, const SimTrace& b) {
    return a.toggles == b.toggles && a.values == b.values &&
           a.events == b.events && a.violations == b.violations;
  }
};

TEST(Sim, DeterministicReplaySelfTimed) {
  // A desynchronized circuit is the hardest case: no global clock, the
  // controllers self-oscillate, and many events share timestamps.
  circuits::Circuit c = circuits::pipeline(4, 8, 2);
  const cell::Tech& t = cell::Tech::generic90();
  flow::DesyncResult dr = flow::desynchronize(c.netlist, c.clock, t);

  auto run = [&] {
    Simulator sim(dr.netlist, t);
    poke_word(sim, dr.netlist.inputs(), 0x5a, 0);
    sim.run_until(50000);
    return SimTrace::of(sim);
  };
  SimTrace first = run();
  EXPECT_GT(first.events, 100u);  // the circuit actually ran
  EXPECT_TRUE(first == run());
}

TEST(Sim, ChunkedRunMatchesOneShot) {
  // run_until() in odd-sized increments must be indistinguishable from one
  // call — the queue cursor may rest at any intermediate time. Stimulus is
  // scheduled far ahead so events also cross the calendar-queue horizon.
  const cell::Tech& t = cell::Tech::generic90();
  auto stimulate = [&](Simulator& sim, const circuits::Circuit& c) {
    sim.add_clock(c.clock, 2000, 1000);
    uint64_t word = 0x13;
    for (Ps at = 0; at < 30000; at += 7600) {
      poke_word(sim, sim.netlist().inputs(), word, at);
      word = word * 2862933555777941757ull + 3037000493ull;
    }
  };

  circuits::Circuit c = circuits::pipeline(3, 8, 2);
  Simulator oneshot(c.netlist, t);
  stimulate(oneshot, c);
  oneshot.run_until(40000);

  Simulator chunked(c.netlist, t);
  stimulate(chunked, c);
  for (Ps at = 137; at < 40000; at += 137) chunked.run_until(at);
  chunked.run_until(40000);

  EXPECT_GT(oneshot.events_processed(), 100u);
  EXPECT_TRUE(SimTrace::of(oneshot) == SimTrace::of(chunked));
}

TEST(Sim, StimulusAcrossRunsKeepsFifoOrder) {
  // Two stimulus events on the same net at the same picosecond must apply
  // in scheduling order even when the first is queued beyond the calendar
  // horizon and a bounded run_until() rests the cursor in between (the
  // second push then lands inside the wheel window directly).
  Netlist netl("fifo");
  Builder b(netl);
  NetId a = b.input("a");
  b.output(b.buf(a, "y"));
  const cell::Tech& t = cell::Tech::generic90();

  Simulator sim(netl, t);
  sim.set_input(a, V::V1, 5000);  // far beyond the wheel window
  sim.run_until(4000);            // cursor rests just short of the event
  sim.set_input(a, V::V0, 5000);  // same instant, scheduled later
  sim.run_until(10000);
  EXPECT_EQ(sim.value(a), V::V0);  // later-scheduled value wins the tie
}

TEST(Sim, RunUntilQuietMatchesBoundedRun) {
  // Quiescing via run_until_quiet must leave the same state as running past
  // the quiesce point with run_until.
  Netlist netl("q");
  Builder b(netl);
  NetId a = b.input("a");
  NetId y = a;
  for (int i = 0; i < 8; ++i) y = b.inv(y, cat("n", i));
  b.output(y);
  const cell::Tech& t = cell::Tech::generic90();

  Simulator s1(netl, t);
  s1.set_input(a, V::V1, 10);
  EXPECT_TRUE(s1.run_until_quiet(100000));

  Simulator s2(netl, t);
  s2.set_input(a, V::V1, 10);
  s2.run_until(100000);
  EXPECT_EQ(s1.value(y), s2.value(y));
  EXPECT_EQ(s1.events_processed(), s2.events_processed());
}

}  // namespace
}  // namespace desyn::sim

namespace desyn::sim {
namespace {

TEST(Power, StorageClockPinsBurnInternalEnergy) {
  // Two identical circuits, one with the FF clocked, one with the clock
  // held still: the clocked one must burn the DFF's clock energy even
  // though D (and hence Q) never toggles.
  nl::Netlist netl("t");
  nl::Builder b(netl);
  nl::NetId d = b.input("d");
  nl::NetId ck = b.input("ck");
  b.output(b.dff(d, ck, V::V0, "r"));

  const cell::Tech& t = cell::Tech::generic90();
  Simulator sim(netl, t);
  sim.set_input(d, V::V0, 0);
  sim.add_clock(ck, 2000, 1000);
  sim.run_until(100);
  sim.clear_activity();
  sim.run_until(20100);
  PowerReport with_clock = estimate_power(sim, t);
  EXPECT_GT(with_clock.cell_internal_mw, 0.0);

  // Global wire factor raises the switching share when the net is global.
  nl::NetId globals[] = {ck};
  PowerReport global = estimate_power(sim, t, {}, globals);
  EXPECT_GT(global.net_switching_mw, with_clock.net_switching_mw);
}

}  // namespace
}  // namespace desyn::sim
