#include "dlx/cpu_builder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dlx/programs.h"
#include "sim/sim.h"
#include "sta/sta.h"
#include "verif/flow_equivalence.h"

namespace desyn::dlx {
namespace {

using cell::Tech;
using cell::V;

TEST(Isa, EncodeDecodeRoundTrip) {
  std::vector<Ins> cases = {
      {Op::NOP, 0, 0, 0, 0},       {Op::ADD, 3, 1, 2, 0},
      {Op::SUB, 7, 5, 6, 0},       {Op::SLT, 1, 2, 3, 0},
      {Op::ADDI, 0, 4, 5, -12},    {Op::ANDI, 0, 4, 5, 0xff},
      {Op::LUI, 0, 0, 9, 0x1234},  {Op::LW, 0, 2, 8, 7},
      {Op::SW, 0, 2, 8, -3},       {Op::BEQ, 0, 1, 2, -5},
      {Op::BNE, 0, 1, 2, 9},       {Op::J, 0, 0, 0, 77},
  };
  for (const Ins& i : cases) {
    Ins d = decode(encode(i));
    EXPECT_EQ(d.op, i.op) << to_string(i);
    if (i.op != Op::NOP && i.op != Op::J && i.op != Op::LUI) {
      EXPECT_EQ(d.rs, i.rs) << to_string(i);
    }
    switch (i.op) {
      case Op::ADD: case Op::SUB: case Op::AND_: case Op::OR_:
      case Op::XOR_: case Op::SLT:
        EXPECT_EQ(d.rd, i.rd);
        EXPECT_EQ(d.rt, i.rt);
        break;
      case Op::NOP:
        break;
      default:
        EXPECT_EQ(d.imm, i.imm) << to_string(i);
    }
  }
  EXPECT_EQ(to_string(decode(encode({Op::ADD, 3, 1, 2, 0}))),
            "add r3, r1, r2");
}

TEST(Assembler, InsertsRawHazardNops) {
  Asm a;
  a.opi(Op::ADDI, 1, 0, 5);
  a.op3(Op::ADD, 2, 1, 1);  // reads r1 immediately: needs 3 NOPs
  const auto& prog = a.instructions();
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[1].op, Op::NOP);
  EXPECT_EQ(prog[2].op, Op::NOP);
  EXPECT_EQ(prog[3].op, Op::NOP);
  EXPECT_EQ(prog[4].op, Op::ADD);
}

TEST(Assembler, BranchGetsDelaySlots) {
  Asm a;
  int l = a.label();
  a.branch_to(Op::BNE, 0, 0, l);
  const auto& prog = a.instructions();
  ASSERT_EQ(prog.size(), 3u);
  EXPECT_EQ(prog[0].op, Op::BNE);
  EXPECT_EQ(prog[0].imm, -1);  // target == own index: pc+1-1... loops to 0
  EXPECT_EQ(prog[1].op, Op::NOP);
  EXPECT_EQ(prog[2].op, Op::NOP);
}

TEST(Iss, FibonacciProducesSequence) {
  DlxConfig cfg;
  Iss iss(cfg, fibonacci_program(10));
  iss.run(400);
  uint32_t fib[10] = {0, 1, 1, 2, 3, 5, 8, 13, 21, 34};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(iss.dmem(static_cast<uint32_t>(i)), fib[i]) << "i=" << i;
  }
}

TEST(Iss, ChecksumStoresSumAndXor) {
  DlxConfig cfg;
  int n = 10;
  Iss iss(cfg, checksum_program(n));
  iss.run(600);
  uint32_t sum = 0, x = 0;
  for (int i = 0; i < n; ++i) {
    uint32_t v = static_cast<uint32_t>(7 + 3 * i);
    sum += v;
    x ^= v;
  }
  EXPECT_EQ(iss.dmem(static_cast<uint32_t>(n)), sum);
  EXPECT_EQ(iss.dmem(static_cast<uint32_t>(n + 1)), x);
}

TEST(Iss, SortSortsTheArray) {
  DlxConfig cfg;
  int n = 6;
  Iss iss(cfg, sort_program(n));
  iss.run(4000);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_LE(iss.dmem(static_cast<uint32_t>(i)),
              iss.dmem(static_cast<uint32_t>(i + 1)))
        << "position " << i;
  }
}

TEST(Iss, MemcpyCopiesBlock) {
  DlxConfig cfg;
  int n = 10;
  Iss iss(cfg, memcpy_program(n));
  iss.run(600);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(iss.dmem(static_cast<uint32_t>(i)),
              iss.dmem(static_cast<uint32_t>(i + n)));
    EXPECT_NE(iss.dmem(static_cast<uint32_t>(i)), 0u);
  }
}

/// Gate-level vs ISS co-simulation: after enough cycles (programs end in a
/// halt spin) the architectural state of both must be identical.
class CoSim : public ::testing::TestWithParam<int> {};

TEST_P(CoSim, NetlistMatchesIss) {
  DlxConfig cfg;
  Workload wl = standard_workloads()[static_cast<size_t>(GetParam())];
  nl::Netlist nl("dlx");
  DlxInfo info = build_dlx(nl, cfg, wl.words);

  const Tech& t = Tech::generic90();
  sta::Sta sta(nl, t);
  Ps period = sta.min_clock_period().min_period * 11 / 10;
  period += period % 2;

  sim::Simulator sim(nl, t);
  sim.add_clock(info.clk, period, period / 2);
  sim.run_until(period * (wl.cycles + 1));
  EXPECT_EQ(sim.setup_violation_count(), 0u);

  Iss iss(cfg, wl.words);
  iss.run(wl.cycles);

  // Architectural registers.
  for (int r = 1; r < cfg.regs; ++r) {
    rtl::Bus bits;
    for (int i = 0; i < 32; ++i) bits.push_back(reg_bit_net(nl, r, i));
    bool has_x = false;
    uint64_t hw = sim::read_word(sim, bits, &has_x);
    EXPECT_FALSE(has_x) << "r" << r;
    EXPECT_EQ(hw, iss.reg(r)) << wl.name << " r" << r;
  }
  // Data memory.
  for (uint32_t a = 0; a < (1u << cfg.dmem_bits); ++a) {
    EXPECT_EQ(sim.ram_word(info.dmem, a), iss.dmem(a))
        << wl.name << " dmem[" << a << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, CoSim, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return standard_workloads()
                               [static_cast<size_t>(info.param)].name;
                         });

class DlxDesyncProtocol : public ::testing::TestWithParam<ctl::Protocol> {};

TEST_P(DlxDesyncProtocol, FlowEquivalentOnFibonacci) {
  DlxConfig cfg;
  cfg.regs = 8;      // compact config keeps the double simulation quick
  cfg.imem_bits = 7;
  cfg.dmem_bits = 5;
  nl::Netlist nl("dlx");
  build_dlx(nl, cfg, fibonacci_program(6));
  verif::FlowEqOptions opt;
  opt.rounds = 60;
  opt.desync.protocol = GetParam();
  auto res = verif::check_flow_equivalence(
      nl, nl.find_net("clk"), verif::constant_stimulus(V::V0),
      Tech::generic90(), opt);
  EXPECT_TRUE(res.equivalent)
      << ctl::protocol_name(GetParam()) << ": " << res.mismatch;
  EXPECT_EQ(res.desync_setup_violations, 0u);
  // The de-synchronized processor runs at a comparable cycle time.
  EXPECT_LT(res.desync_period, 1.6 * static_cast<double>(res.sync_period));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, DlxDesyncProtocol, ::testing::ValuesIn(ctl::kAllProtocols),
    [](const ::testing::TestParamInfo<ctl::Protocol>& info) {
      std::string n = ctl::protocol_name(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

TEST(DlxDesync, SingleClockInvariantHoldsAfterLatchify) {
  // The flow's multi-clock guard assumes the DLX builder produces a
  // single-clock design; verify the invariant structurally rather than
  // trusting it.
  DlxConfig cfg;
  cfg.regs = 8;
  cfg.imem_bits = 7;
  cfg.dmem_bits = 5;
  nl::Netlist nl("dlx");
  build_dlx(nl, cfg, fibonacci_program(6));
  nl::NetId clk = nl.find_net("clk");
  ASSERT_TRUE(clk.valid());
  for (nl::CellId c : nl.cells()) {
    const nl::CellData& cd = nl.cell(c);
    if (cd.kind == cell::Kind::Dff) {
      EXPECT_EQ(cd.ins[1], clk) << cd.name;
    }
    if (cd.kind == cell::Kind::Ram) {
      EXPECT_EQ(cd.ins[0], clk) << cd.name;
    }
  }
  // latchify (the function that throws MultiClockError) accepts it, and
  // afterwards every storage control pin is still the one clock.
  flow::LatchifyResult lr =
      flow::latchify(nl, clk, flow::Partition::prefix(nl));
  EXPECT_FALSE(lr.banks.empty());
  for (nl::CellId c : nl.cells()) {
    const nl::CellData& cd = nl.cell(c);
    EXPECT_NE(cd.kind, cell::Kind::Dff) << "DFF survived latchify";
    if (cell::is_latch(cd.kind)) {
      EXPECT_EQ(cd.ins[1], clk) << cd.name;
    }
    if (cd.kind == cell::Kind::Ram) {
      EXPECT_EQ(cd.ins[0], clk) << cd.name;
    }
  }
}

}  // namespace
}  // namespace desyn::dlx

namespace desyn::dlx {
namespace {

/// Random (hazard-scheduled) straight-line programs with occasional forward
/// branches: a strong property check of ISS vs. gate-level agreement.
std::vector<uint32_t> random_program(uint64_t seed, int length) {
  Rng rng(seed);
  Asm a;
  std::vector<int> fixups;
  for (int i = 0; i < length; ++i) {
    int rd = static_cast<int>(rng.range(1, 7));
    int rs = static_cast<int>(rng.range(0, 7));
    int rt = static_cast<int>(rng.range(0, 7));
    switch (rng.below(10)) {
      case 0: a.op3(Op::ADD, rd, rs, rt); break;
      case 1: a.op3(Op::SUB, rd, rs, rt); break;
      case 2: a.op3(Op::XOR_, rd, rs, rt); break;
      case 3: a.op3(Op::SLT, rd, rs, rt); break;
      case 4: a.opi(Op::ADDI, rd, rs, static_cast<int32_t>(rng.range(-20, 20))); break;
      case 5: a.opi(Op::ORI, rd, rs, static_cast<int32_t>(rng.range(0, 255))); break;
      case 6: a.opi(Op::LUI, rd, 0, static_cast<int32_t>(rng.range(0, 100))); break;
      case 7:
        a.emit({Op::SW, 0, 0, rt, static_cast<int32_t>(rng.range(0, 31))});
        break;
      case 8:
        a.emit({Op::LW, 0, 0, rd, static_cast<int32_t>(rng.range(0, 31))});
        break;
      default:
        // Forward branch over the next chunk; bound() later.
        fixups.push_back(a.branch_fwd(rng.flip() ? Op::BEQ : Op::BNE, rs, rt));
        break;
    }
    // Bind any pending forward branch a few instructions later.
    if (!fixups.empty() && a.here() - fixups.front() > 8) {
      a.bind(fixups.front());
      fixups.erase(fixups.begin());
    }
  }
  for (int f : fixups) a.bind(f);
  a.halt();
  return a.assemble();
}

class RandomCoSim : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCoSim, RandomProgramsAgree) {
  DlxConfig cfg;
  std::vector<uint32_t> prog = random_program(GetParam(), 40);
  ASSERT_LE(prog.size(), 1u << cfg.imem_bits);
  int cycles = static_cast<int>(prog.size()) + 30;

  nl::Netlist nl("dlx");
  DlxInfo info = build_dlx(nl, cfg, prog);
  const Tech& t = Tech::generic90();
  sta::Sta sta(nl, t);
  Ps period = sta.min_clock_period().min_period * 11 / 10;
  period += period % 2;
  sim::Simulator sim(nl, t);
  sim.add_clock(info.clk, period, period / 2);
  sim.run_until(period * (cycles + 1));
  EXPECT_EQ(sim.setup_violation_count(), 0u);

  Iss iss(cfg, prog);
  iss.run(cycles);
  for (int r = 1; r < 8; ++r) {
    rtl::Bus bits;
    for (int i = 0; i < 32; ++i) bits.push_back(reg_bit_net(nl, r, i));
    bool has_x = false;
    uint64_t hw = sim::read_word(sim, bits, &has_x);
    EXPECT_FALSE(has_x) << "seed " << GetParam() << " r" << r;
    EXPECT_EQ(hw, iss.reg(r)) << "seed " << GetParam() << " r" << r;
  }
  for (uint32_t ad = 0; ad < 32; ++ad) {
    EXPECT_EQ(sim.ram_word(info.dmem, ad), iss.dmem(ad))
        << "seed " << GetParam() << " dmem[" << ad << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoSim,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace desyn::dlx
